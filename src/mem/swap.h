/**
 * @file
 * Swap device with tag-preserving metadata.
 *
 * External storage does not carry tag bits, so naively paging a frame
 * out and back in would destroy every capability on it — silently
 * breaking pointers in swapped processes.  CheriBSD's swap pager instead
 * scans evicted pages, records which granules were tagged (together with
 * the capability pattern), and on swap-in *rederives* fresh architectural
 * capabilities from an appropriate root.  The architectural provenance
 * chain is broken, but the abstract capability is preserved (paper
 * section 3, "Swapping").
 *
 * SwapPolicy::Naive models the broken alternative and is used by tests
 * and the ablation bench to show why the metadata is necessary.
 */

#ifndef CHERI_MEM_SWAP_H
#define CHERI_MEM_SWAP_H

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cap/capability.h"
#include "mem/phys_mem.h"

namespace cheri
{

/** How the swap subsystem treats capability tags. */
enum class SwapPolicy
{
    /** Record tag metadata at swap-out; rederive at swap-in (CheriBSD). */
    PreserveTags,
    /** Store raw bytes only; all tags are lost (the failure mode). */
    Naive,
};

/**
 * A paging store: raw page images plus, under PreserveTags, the tagged
 * granules of each page saved as untagged capability patterns.
 */
class SwapDevice
{
  public:
    explicit SwapDevice(SwapPolicy policy = SwapPolicy::PreserveTags)
        : _policy(policy)
    {
    }

    SwapPolicy policy() const { return _policy; }

    /**
     * Write @p frame out, returning the slot id.  Tags never reach the
     * device's data area; under PreserveTags they are captured in the
     * slot's metadata instead.
     */
    u64 swapOut(const Frame &frame);

    /**
     * Read slot @p slot back into @p frame.  Raw bytes are restored
     * as-is (untagged).  Under PreserveTags, each recorded granule is
     * rederived from @p root via CBuildCap; granules whose pattern the
     * root cannot legitimately cover stay untagged (rederivation must
     * never escalate).  The slot is released.
     */
    void swapIn(u64 slot, Frame &frame, const Capability &root);

    /**
     * Revocation support: drop recorded tag metadata in @p slot for
     * patterns whose base lies in [lo, hi), so the capability is not
     * rederived at swap-in.  Returns entries dropped.
     */
    u64 revokeMatchingInSlot(
        u64 slot, const std::function<bool(const Capability &)> &pred);

    /** Slots currently occupied. */
    u64 usedSlots() const { return slots.size(); }

    /** Total swap-out operations performed. */
    u64 totalSwapOuts() const { return swapOuts; }

    /** Tagged granules recorded across all swap-outs so far. */
    u64 totalTagsPreserved() const { return tagsPreserved; }

  private:
    struct Slot
    {
        std::array<u8, pageSize> bytes;
        /** (granule offset, untagged capability pattern) pairs. */
        std::vector<std::pair<u64, Capability>> tagMeta;
    };

    SwapPolicy _policy;
    std::unordered_map<u64, Slot> slots;
    u64 nextSlot = 0;
    u64 swapOuts = 0;
    u64 tagsPreserved = 0;
};

} // namespace cheri

#endif // CHERI_MEM_SWAP_H
