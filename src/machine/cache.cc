#include "machine/cache.h"

#include <cassert>

namespace cheri
{

Cache::Cache(u64 size_bytes, u32 ways, u64 line_bytes)
    : lineBytes(line_bytes), numSets(size_bytes / (ways * line_bytes)),
      ways(ways), sets(numSets * ways)
{
    assert(numSets > 0);
}

bool
Cache::access(u64 addr)
{
    ++tick;
    u64 line = addr / lineBytes;
    u64 set = line % numSets;
    u64 tag = line / numSets;
    Way *base = &sets[set * ways];
    for (u32 w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = tick;
            ++_hits;
            return true;
        }
    }
    // Miss: fill into the LRU way.
    Way *victim = base;
    for (u32 w = 1; w < ways; ++w) {
        if (!base[w].valid || base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick;
    ++_misses;
    return false;
}

void
Cache::flush()
{
    for (Way &w : sets)
        w.valid = false;
}

CacheHierarchy::CacheHierarchy()
    : l1i(32 * 1024, 4), l1d(32 * 1024, 4), l2(256 * 1024, 8)
{
}

HitLevel
CacheHierarchy::access(u64 addr, u64 size, Access kind)
{
    HitLevel worst = HitLevel::L1;
    const u64 line = 64;
    u64 first = addr / line;
    u64 last = (addr + (size ? size - 1 : 0)) / line;
    for (u64 l = first; l <= last; ++l) {
        u64 a = l * line;
        Cache &l1 = kind == Access::InstrFetch ? l1i : l1d;
        if (l1.access(a))
            continue;
        if (l2.access(a)) {
            if (worst == HitLevel::L1)
                worst = HitLevel::L2;
            continue;
        }
        worst = HitLevel::Memory;
    }
    return worst;
}

void
CacheHierarchy::flush()
{
    l1i.flush();
    l1d.flush();
    l2.flush();
}

} // namespace cheri
