/**
 * @file
 * Signal delivery tests: capability frames on the user stack
 * (Figure 2), handler-visible modification, tamper detection, masks,
 * and default actions.
 */

#include <gtest/gtest.h>

#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

class SignalBothAbis : public ::testing::TestWithParam<Abi>
{
  protected:
    GuestSystem sys{GetParam()};
    GuestContext &ctx() { return *sys.ctx; }
    Process &proc() { return *sys.proc; }
    Kernel &kern() { return sys.kern; }
};

TEST_P(SignalBothAbis, HandlerRunsOnDelivery)
{
    int runs = 0;
    u64 hid = proc().registerHandler(
        [&](Process &, SigFrame &f) {
            ++runs;
            EXPECT_EQ(f.signo, SIG_USR1);
        });
    ASSERT_EQ(kern().sysSigaction(proc(), SIG_USR1,
                                  {SigAction::Kind::Handler, hid})
                  .error,
              E_OK);
    ASSERT_EQ(kern().sysKill(proc(), proc().pid(), SIG_USR1).error, E_OK);
    EXPECT_EQ(kern().deliverSignals(proc()), 1u);
    EXPECT_EQ(runs, 1);
    EXPECT_FALSE(proc().exited());
}

TEST_P(SignalBothAbis, RegistersRestoredAfterHandler)
{
    ThreadRegs before = proc().regs();
    u64 hid = proc().registerHandler([&](Process &p, SigFrame &) {
        // Clobber the live registers inside the handler.
        p.regs().c[7] = Capability::fromAddress(0xDEAD);
        p.regs().x[9] = 999;
    });
    kern().sysSigaction(proc(), SIG_USR1, {SigAction::Kind::Handler, hid});
    kern().sysKill(proc(), proc().pid(), SIG_USR1);
    kern().deliverSignals(proc());
    EXPECT_EQ(proc().regs().c[7], before.c[7]);
    EXPECT_EQ(proc().regs().stack(), before.stack());
}

TEST_P(SignalBothAbis, MaskBlocksDelivery)
{
    int runs = 0;
    u64 hid = proc().registerHandler(
        [&](Process &, SigFrame &) { ++runs; });
    kern().sysSigaction(proc(), SIG_USR1, {SigAction::Kind::Handler, hid});
    kern().sysSigprocmask(proc(), 1u << SIG_USR1, 0);
    kern().sysKill(proc(), proc().pid(), SIG_USR1);
    EXPECT_EQ(kern().deliverSignals(proc()), 0u);
    EXPECT_EQ(runs, 0);
    kern().sysSigprocmask(proc(), 0, 1u << SIG_USR1);
    EXPECT_EQ(kern().deliverSignals(proc()), 1u);
    EXPECT_EQ(runs, 1);
}

TEST_P(SignalBothAbis, DefaultTermDies)
{
    kern().sysKill(proc(), proc().pid(), SIG_TERM);
    kern().deliverSignals(proc());
    EXPECT_TRUE(proc().exited());
    ASSERT_TRUE(proc().death().has_value());
    EXPECT_EQ(proc().death()->signal, SIG_TERM);
}

TEST_P(SignalBothAbis, SigchldIgnoredByDefault)
{
    kern().sysKill(proc(), proc().pid(), SIG_CHLD);
    kern().deliverSignals(proc());
    EXPECT_FALSE(proc().exited());
}

TEST_P(SignalBothAbis, CannotCatchSigkill)
{
    u64 hid = proc().registerHandler([](Process &, SigFrame &) {});
    EXPECT_EQ(kern().sysSigaction(proc(), SIG_KILL,
                                  {SigAction::Kind::Handler, hid})
                  .error,
              E_INVAL);
}

TEST_P(SignalBothAbis, TrampolineInstalledDuringHandler)
{
    u64 hid = proc().registerHandler([&](Process &p, SigFrame &) {
        EXPECT_EQ(p.regs().c[regLink].address(),
                  p.trampolineCap.address());
    });
    kern().sysSigaction(proc(), SIG_USR1, {SigAction::Kind::Handler, hid});
    kern().sysKill(proc(), proc().pid(), SIG_USR1);
    kern().deliverSignals(proc());
}

INSTANTIATE_TEST_SUITE_P(Abis, SignalBothAbis,
                         ::testing::Values(Abi::Mips64, Abi::CheriAbi),
                         [](const auto &info) {
                             return info.param == Abi::CheriAbi
                                        ? "cheriabi"
                                        : "mips64";
                         });

class SignalCheri : public ::testing::Test
{
  protected:
    GuestSystem sys{Abi::CheriAbi};
    GuestContext &ctx() { return *sys.ctx; }
    Process &proc() { return *sys.proc; }
    Kernel &kern() { return sys.kern; }
};

TEST_F(SignalCheri, FrameHoldsTaggedCapabilities)
{
    // Plant a recognizable capability in a register, then check the
    // in-memory frame during delivery.
    GuestPtr buf = ctx().mmap(pageSize);
    proc().regs().c[5] = buf.cap;
    u64 hid = proc().registerHandler([&](Process &p, SigFrame &f) {
        // Frame layout: header(48) + pcc, ddc, c[0..31] at 16 bytes.
        u64 slot_va = f.frameVa + 48 + (2 + 5) * capSize;
        Result<Capability> saved = p.as().readCap(slot_va);
        ASSERT_TRUE(saved.ok());
        EXPECT_TRUE(saved.value().tag())
            << "capability registers must be spilled with tags";
        EXPECT_EQ(saved.value(), buf.cap);
    });
    kern().sysSigaction(proc(), SIG_USR1, {SigAction::Kind::Handler, hid});
    kern().sysKill(proc(), proc().pid(), SIG_USR1);
    ASSERT_EQ(kern().deliverSignals(proc()), 1u);
    // And it is restored, tag intact.
    EXPECT_EQ(proc().regs().c[5], buf.cap);
}

TEST_F(SignalCheri, HandlerMayModifySavedState)
{
    GuestPtr buf = ctx().mmap(pageSize);
    GuestPtr other = ctx().mmap(pageSize);
    proc().regs().c[5] = buf.cap;
    u64 hid = proc().registerHandler([&](Process &p, SigFrame &f) {
        // Rewrite the saved c5 slot in memory: sigreturn should
        // restore the *modified* value (capability chain preserved via
        // the frame).
        u64 slot_va = f.frameVa + 48 + (2 + 5) * capSize;
        CapCheck w = p.as().writeCap(slot_va, other.cap);
        ASSERT_FALSE(w.has_value());
    });
    kern().sysSigaction(proc(), SIG_USR1, {SigAction::Kind::Handler, hid});
    kern().sysKill(proc(), proc().pid(), SIG_USR1);
    kern().deliverSignals(proc());
    EXPECT_EQ(proc().regs().c[5], other.cap);
    EXPECT_TRUE(proc().regs().c[5].tag());
}

TEST_F(SignalCheri, TamperedFrameLosesTag)
{
    GuestPtr buf = ctx().mmap(pageSize);
    proc().regs().c[5] = buf.cap;
    u64 hid = proc().registerHandler([&](Process &p, SigFrame &f) {
        // Overwrite one byte of the saved capability with data: the
        // forged value must come back untagged.
        u64 slot_va = f.frameVa + 48 + (2 + 5) * capSize;
        u8 evil = 0xFF;
        CapCheck w = p.as().writeBytes(slot_va + 3, &evil, 1);
        ASSERT_FALSE(w.has_value());
    });
    kern().sysSigaction(proc(), SIG_USR1, {SigAction::Kind::Handler, hid});
    kern().sysKill(proc(), proc().pid(), SIG_USR1);
    kern().deliverSignals(proc());
    EXPECT_FALSE(proc().regs().c[5].tag())
        << "byte-tampered signal frame must not yield a live capability";
}

TEST_F(SignalCheri, CapFaultBecomesCatchableSigprot)
{
    int caught = 0;
    u64 hid = proc().registerHandler([&](Process &, SigFrame &f) {
        ++caught;
        EXPECT_EQ(f.signo, SIG_PROT);
    });
    kern().sysSigaction(proc(), SIG_PROT, {SigAction::Kind::Handler, hid});
    GuestPtr buf = ctx().mmap(pageSize);
    int rc = runGuest(ctx(), [&](GuestContext &c) {
        // Walk off the end of a bounded heap-ish capability.
        auto narrow = buf.cap.setBounds(8);
        GuestPtr p{narrow.value()};
        c.load<u64>(p, 16); // out of bounds -> trap
        return 0;
    });
    EXPECT_EQ(caught, 1);
    EXPECT_FALSE(proc().exited()) << "handled SIG_PROT should not kill";
    (void)rc;
}

TEST_F(SignalCheri, UnhandledCapFaultKillsWithSigprot)
{
    GuestPtr buf = ctx().mmap(pageSize);
    int rc = runGuest(ctx(), [&](GuestContext &c) {
        auto narrow = buf.cap.setBounds(8);
        GuestPtr p{narrow.value()};
        c.load<u64>(p, 16);
        return 0;
    });
    EXPECT_EQ(rc, 128 + SIG_PROT);
    ASSERT_TRUE(proc().death().has_value());
    EXPECT_EQ(proc().death()->signal, SIG_PROT);
    EXPECT_EQ(proc().death()->fault, CapFault::LengthViolation);
}

} // namespace
} // namespace cheri
