file(REMOVE_RECURSE
  "CMakeFiles/clc_ablation.dir/clc_ablation.cc.o"
  "CMakeFiles/clc_ablation.dir/clc_ablation.cc.o.d"
  "clc_ablation"
  "clc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
