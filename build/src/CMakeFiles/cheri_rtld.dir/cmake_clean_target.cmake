file(REMOVE_RECURSE
  "libcheri_rtld.a"
)
