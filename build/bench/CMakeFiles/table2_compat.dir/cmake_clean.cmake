file(REMOVE_RECURSE
  "CMakeFiles/table2_compat.dir/table2_compat.cc.o"
  "CMakeFiles/table2_compat.dir/table2_compat.cc.o.d"
  "table2_compat"
  "table2_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
