#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "obs/json.h"

namespace cheri::obs
{

void
Histogram::record(u64 v)
{
    ++buckets[bucketOf(v)];
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
}

unsigned
Histogram::bucketOf(u64 v)
{
    unsigned b = static_cast<unsigned>(std::bit_width(v));
    return std::min(b, numBuckets - 1);
}

u64
Histogram::bucketLo(unsigned i)
{
    return i == 0 ? 0 : u64{1} << (i - 1);
}

void
Metrics::recordSyscall(u64 num, Abi abi, u64 cycles, bool failed)
{
    if (num >= numSysNums)
        num = 0; // unknown numbers accumulate in the invalid slot
    SyscallStats &s = sys[abiIndex(abi)][num];
    ++s.calls;
    if (failed)
        ++s.errors;
    s.cycles.record(cycles);
}

const SyscallStats &
Metrics::syscall(u64 num, Abi abi) const
{
    return sys[abiIndex(abi)][num < numSysNums ? num : 0];
}

void
Metrics::recordFault(CapFault cause, u64 pc, u64 addr,
                     const Capability *via, Abi abi)
{
    unsigned ci = static_cast<unsigned>(cause);
    if (ci < faultsByCause.size())
        ++faultsByCause[ci];
    if (_faults.size() >= maxFaultRecords) {
        ++faultsDropped;
        return;
    }
    FaultRecord rec;
    rec.cause = cause;
    rec.pc = pc;
    rec.addr = addr;
    rec.abi = abi;
    rec.sysnum = static_cast<u16>(currentSys);
    if (via) {
        // Exact match on the capability's bounds first; otherwise the
        // tightest recorded region containing it (a narrowed child of
        // a traced allocation).
        auto it = provenance.find({via->base(), via->length()});
        if (it != provenance.end()) {
            rec.provenance = it->second;
            rec.provenanceKnown = true;
        } else {
            u64 best = ~u64{0};
            for (const auto &[range, src] : provenance) {
                const auto &[rbase, rlen] = range;
                if (rbase <= via->base() && via->length() <= rlen &&
                    via->base() - rbase <= rlen - via->length() &&
                    rlen < best) {
                    best = rlen;
                    rec.provenance = src;
                    rec.provenanceKnown = true;
                }
            }
        }
    }
    _faults.push_back(rec);
}

u64
Metrics::faultCount(CapFault cause) const
{
    unsigned ci = static_cast<unsigned>(cause);
    return ci < faultsByCause.size() ? faultsByCause[ci] : 0;
}

void
Metrics::captureCost(std::string label, const CostModel &cost)
{
    CostSnapshot snap;
    snap.label = std::move(label);
    snap.abi = cost.abi();
    snap.instructions = cost.instructions();
    snap.cycles = cost.cycles();
    snap.l1dMisses = cost.l1dMisses();
    snap.l2Misses = cost.l2Misses();
    snap.codeBytes = cost.codeBytes();
    snap.itlbMisses = cost.itlbMisses();
    snap.dtlbMisses = cost.dtlbMisses();
    costs.push_back(std::move(snap));
}

void
Metrics::derive(DeriveSource source, const Capability &cap)
{
    ++deriveCounts[static_cast<unsigned>(source)];
    if (cap.tag())
        provenance[{cap.base(), cap.length()}] = source;
    if (next)
        next->derive(source, cap);
}

void
Metrics::reset()
{
    sys = {};
    insnMix = {};
    // Zeroed in place: MemAccess counter-block pointers stay valid.
    tlb = {};
    _faults.clear();
    faultsDropped = 0;
    faultsByCause = {};
    mem = {};
    rev = {};
    schd = {};
    fdio = {};
    _threadSteps.clear();
    chk = {};
    snp = {};
    hard = {};
    costs.clear();
    deriveCounts = {};
    provenance.clear();
    currentSys = 0;
}

namespace
{

void
emitHistogram(JsonWriter &w, const Histogram &h)
{
    w.beginObject();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.count ? h.min : 0);
    w.key("max").value(h.max);
    w.key("mean").value(h.mean());
    w.key("buckets").beginArray();
    for (unsigned i = 0; i < Histogram::numBuckets; ++i) {
        if (!h.buckets[i])
            continue;
        w.beginObject();
        w.key("lo").value(Histogram::bucketLo(i));
        w.key("count").value(h.buckets[i]);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

constexpr Abi allAbis[] = {Abi::Mips64, Abi::CheriAbi, Abi::Hybrid};

} // namespace

std::string
Metrics::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value(std::string_view("cheri.metrics.v9"));

    w.key("syscalls").beginArray();
    for (Abi abi : allAbis) {
        for (unsigned n = 0; n < numSysNums; ++n) {
            const SyscallStats &s = sys[abiIndex(abi)][n];
            if (!s.calls)
                continue;
            w.beginObject();
            w.key("num").value(n);
            w.key("name").value(sysNumName(n));
            w.key("abi").value(abiName(abi));
            w.key("ptr_args").value(
                static_cast<unsigned>(syscallTable[n].nPtrArgs));
            w.key("calls").value(s.calls);
            w.key("errors").value(s.errors);
            w.key("cycles");
            emitHistogram(w, s.cycles);
            w.endObject();
        }
    }
    w.endArray();

    w.key("faults").beginArray();
    for (const FaultRecord &f : _faults) {
        w.beginObject();
        w.key("cause").value(capFaultName(f.cause));
        w.key("pc").value(f.pc);
        w.key("addr").value(f.addr);
        w.key("abi").value(abiName(f.abi));
        if (f.sysnum) // only when the fault hit mid-syscall
            w.key("syscall").value(sysNumName(f.sysnum));
        if (f.provenanceKnown)
            w.key("provenance").value(deriveSourceName(f.provenance));
        w.endObject();
    }
    w.endArray();
    if (faultsDropped)
        w.key("faults_dropped").value(faultsDropped);

    w.key("insn_mix").beginArray();
    for (unsigned op = 0; op < maxOps; ++op) {
        u64 total = 0;
        for (Abi abi : allAbis)
            total += insnMix[abiIndex(abi)][op];
        if (!total)
            continue;
        w.beginObject();
        if (opNamer)
            w.key("op").value(opNamer(op));
        else
            w.key("op").value(static_cast<u64>(op));
        for (Abi abi : allAbis) {
            if (u64 c = insnMix[abiIndex(abi)][op])
                w.key(abiName(abi)).value(c);
        }
        w.endObject();
    }
    w.endArray();

    w.key("cost").beginArray();
    for (const CostSnapshot &c : costs) {
        w.beginObject();
        w.key("label").value(std::string_view(c.label));
        w.key("abi").value(abiName(c.abi));
        w.key("instructions").value(c.instructions);
        w.key("cycles").value(c.cycles);
        w.key("l1d_misses").value(c.l1dMisses);
        w.key("l2_misses").value(c.l2Misses);
        w.key("code_bytes").value(c.codeBytes);
        w.key("itlb_misses").value(c.itlbMisses);
        w.key("dtlb_misses").value(c.dtlbMisses);
        w.endObject();
    }
    w.endArray();

    // Per-ABI software-TLB counters (v2 schema addition).
    w.key("tlb").beginArray();
    for (Abi abi : allAbis) {
        const auto &blk = tlb[abiIndex(abi)];
        u64 total = 0;
        for (u64 v : blk)
            total += v;
        if (!total)
            continue;
        w.beginObject();
        w.key("abi").value(abiName(abi));
        w.key("data_hits").value(blk[TlbDataHit]);
        w.key("data_misses").value(blk[TlbDataMiss]);
        w.key("fetch_hits").value(blk[TlbFetchHit]);
        w.key("fetch_misses").value(blk[TlbFetchMiss]);
        w.key("invalidations").value(blk[TlbInvalidation]);
        w.endObject();
    }
    w.endArray();

    // Memory-pressure counters (v3 schema addition).
    w.key("memory").beginObject();
    w.key("reclaim_passes").value(mem.reclaimPasses);
    w.key("pages_reclaimed").value(mem.pagesReclaimed);
    w.key("oom_kills").value(mem.oomKills);
    w.key("enomem").value(mem.enomemErrors);
    w.endObject();

    // Revocation-epoch counters (v5 schema addition).
    w.key("revocation").beginObject();
    w.key("epochs_opened").value(rev.epochsOpened);
    w.key("epochs_closed").value(rev.epochsClosed);
    w.key("epochs_aborted").value(rev.epochsAborted);
    w.key("pages_scanned").value(rev.pagesScanned);
    w.key("pages_skipped_clean").value(rev.pagesSkippedClean);
    w.key("granules_visited").value(rev.granulesVisited);
    w.key("tags_revoked").value(rev.tagsRevoked);
    w.key("incremental_slices").value(rev.incrementalSlices);
    w.key("sync_sweeps").value(rev.syncSweeps);
    w.key("cycles_in_epochs").value(rev.cyclesInEpochs);
    w.endObject();

    // Scheduler counters (v6 schema addition).  decode_hit_rate is the
    // fraction of instruction fetches served by the per-context decode
    // micro-caches — the retention the unified engine buys.
    w.key("sched").beginObject();
    w.key("context_switches").value(schd.contextSwitches);
    w.key("preemptions").value(schd.preemptions);
    w.key("slices").value(schd.slices);
    w.key("blocks_wait4").value(schd.blocksWait4);
    w.key("blocks_event").value(schd.blocksEvent);
    w.key("blocks_sleep").value(schd.blocksSleep);
    w.key("blocks_fd").value(schd.blocksFd);
    w.key("wakes").value(schd.wakes);
    w.key("max_run_queue_depth").value(schd.maxRunQueueDepth);
    w.key("idle_advances").value(schd.idleAdvances);
    w.key("steps_executed").value(schd.stepsExecuted);
    {
        u64 hits = 0, misses = 0;
        for (Abi abi : allAbis) {
            hits += tlb[abiIndex(abi)][TlbFetchHit];
            misses += tlb[abiIndex(abi)][TlbFetchMiss];
        }
        double rate = (hits + misses)
                          ? static_cast<double>(hits) /
                                static_cast<double>(hits + misses)
                          : 0.0;
        w.key("decode_hit_rate").value(rate);
    }
    w.key("threads").beginArray();
    for (const auto &[key, steps] : _threadSteps) {
        w.beginObject();
        w.key("pid").value(key.first);
        w.key("tid").value(key.second);
        w.key("steps").value(steps);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    // Blocking FD I/O counters (v7 schema addition): how often the
    // pipe/pty/select paths parked, woke, or degraded to E_AGAIN.
    w.key("fd").beginObject();
    w.key("blocks").value(fdio.blocks);
    w.key("wakes").value(fdio.wakes);
    w.key("eagain_errors").value(fdio.eagainErrors);
    w.key("epipe_errors").value(fdio.epipeErrors);
    w.key("partial_writes").value(fdio.partialWrites);
    w.key("select_timeouts").value(fdio.selectTimeouts);
    w.endObject();

    // Checking-layer counters (v4 schema addition).
    w.key("check").beginObject();
    w.key("oracle_runs").value(chk.oracleRuns);
    w.key("oracle_violations").value(chk.oracleViolations);
    w.key("fuzz_cases").value(chk.fuzzCases);
    w.key("fuzz_divergences").value(chk.fuzzDivergences);
    w.endObject();

    // Snapshot/replay counters (v8 schema addition).
    w.key("snapshot").beginObject();
    w.key("snapshots_taken").value(snp.snapshotsTaken);
    w.key("snapshot_bytes").value(snp.snapshotBytes);
    w.key("restores").value(snp.restores);
    w.key("restore_failures").value(snp.restoreFailures);
    w.key("records").value(snp.records);
    w.key("replays").value(snp.replays);
    w.key("replay_divergences").value(snp.replayDivergences);
    w.key("log_entries").value(snp.logEntries);
    w.endObject();

    // Kernel-hardening counters (v9 schema addition): structured
    // panics, deadlock-watchdog verdicts, machine-check degradations.
    w.key("hardening").beginObject();
    w.key("panics").value(hard.panics);
    w.key("deadlocks_detected").value(hard.deadlocksDetected);
    w.key("deadlocks_killed").value(hard.deadlocksKilled);
    w.key("machine_checks").value(hard.machineChecks);
    w.endObject();

    w.key("derives").beginObject();
    for (unsigned s = 0; s < numDeriveSources; ++s) {
        if (deriveCounts[s]) {
            w.key(deriveSourceName(static_cast<DeriveSource>(s)))
                .value(deriveCounts[s]);
        }
    }
    w.endObject();

    w.endObject();
    return w.str();
}

std::string
Metrics::toCsv() const
{
    std::string out = "num,name,abi,ptr_args,calls,errors,"
                      "cycles_min,cycles_max,cycles_mean\n";
    for (Abi abi : allAbis) {
        for (unsigned n = 0; n < numSysNums; ++n) {
            const SyscallStats &s = sys[abiIndex(abi)][n];
            if (!s.calls)
                continue;
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                "%u,%.*s,%.*s,%u,%llu,%llu,%llu,%llu,%.1f\n", n,
                static_cast<int>(sysNumName(n).size()),
                sysNumName(n).data(),
                static_cast<int>(abiName(abi).size()),
                abiName(abi).data(),
                static_cast<unsigned>(syscallTable[n].nPtrArgs),
                static_cast<unsigned long long>(s.calls),
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.cycles.count ? s.cycles.min
                                                              : 0),
                static_cast<unsigned long long>(s.cycles.max),
                s.cycles.mean());
            out += buf;
        }
    }
    // Second table: per-ABI software-TLB counters (v2 addition).
    bool any_tlb = false;
    for (Abi abi : allAbis) {
        for (u64 v : tlb[abiIndex(abi)])
            any_tlb = any_tlb || v != 0;
    }
    if (any_tlb) {
        out += "\nabi,tlb_data_hits,tlb_data_misses,tlb_fetch_hits,"
               "tlb_fetch_misses,tlb_invalidations\n";
        for (Abi abi : allAbis) {
            const auto &blk = tlb[abiIndex(abi)];
            u64 total = 0;
            for (u64 v : blk)
                total += v;
            if (!total)
                continue;
            char buf[192];
            std::snprintf(
                buf, sizeof(buf), "%.*s,%llu,%llu,%llu,%llu,%llu\n",
                static_cast<int>(abiName(abi).size()),
                abiName(abi).data(),
                static_cast<unsigned long long>(blk[TlbDataHit]),
                static_cast<unsigned long long>(blk[TlbDataMiss]),
                static_cast<unsigned long long>(blk[TlbFetchHit]),
                static_cast<unsigned long long>(blk[TlbFetchMiss]),
                static_cast<unsigned long long>(blk[TlbInvalidation]));
            out += buf;
        }
    }
    return out;
}

} // namespace cheri::obs
