# Empty compiler generated dependencies file for table1_testsuites.
# This may be replaced when dependencies are built.
