/**
 * @file
 * System-call micro-benchmarks (paper section 5.2).
 *
 * The paper reports the worst case at fork (+3.4% under CheriABI,
 * from the wider capability register context) and the best at select
 * (-9.8%: four pointer arguments that the legacy kernel must wrap in
 * freshly constructed capabilities, while CheriABI passes capabilities
 * directly).  This bench measures simulated cycles per call for a
 * battery of syscalls under both ABIs.
 *
 * Every call enters the kernel through the numbered syscall ABI
 * (Kernel::dispatch), so one shared Metrics registry accumulates
 * per-syscall call counts and cycle histograms split by ABI; the run
 * ends by emitting the registry as structured JSON.
 */

#include <cstdint>
#include <cstring>
#include <functional>

#include "bench_util.h"
#include "guest/context.h"
#include "libc/malloc.h"
#include "obs/metrics.h"
#include "os/sys_invoke.h"

using namespace cheri;

namespace
{

struct MicroBench
{
    std::string name;
    /** Returns cycles per iteration. */
    std::function<u64(GuestContext &, GuestMalloc &, u64)> run;
};

u64
measure(const MicroBench &mb, Abi abi, u64 iters, obs::Metrics *mx)
{
    Kernel kern;
    kern.setMetrics(mx);
    SelfObject prog;
    prog.name = mb.name;
    Process *proc = kern.spawn(abi, mb.name);
    if (kern.execve(*proc, prog, {mb.name}, {}) != E_OK)
        return 0;
    GuestContext ctx(kern, *proc);
    GuestMalloc heap(ctx);
    return mb.run(ctx, heap, iters);
}

/** pipe(2) through the numbered ABI: the kernel copies the two
 *  descriptors out through the pointer argument. */
void
guestPipe(GuestContext &ctx, GuestMalloc &heap, int fds[2])
{
    GuestPtr out = heap.malloc(2 * sizeof(std::int32_t));
    ctx.pipe(out);
    fds[0] = ctx.load<std::int32_t>(out, 0);
    fds[1] = ctx.load<std::int32_t>(out, sizeof(std::int32_t));
}

} // namespace

int
main(int argc, char **argv)
{
    bool json_only = argc > 1 && std::strcmp(argv[1], "--json") == 0;
    const u64 iters = 400;
    std::vector<MicroBench> benches;

    benches.push_back({"getpid", [](GuestContext &ctx, GuestMalloc &,
                                    u64 n) {
        ctx.cost().reset();
        for (u64 i = 0; i < n; ++i)
            ctx.getpid();
        return ctx.cost().cycles() / n;
    }});

    benches.push_back({"read-1k", [](GuestContext &ctx, GuestMalloc &heap,
                                     u64 n) {
        s64 fd = ctx.open("/tmp/micro", O_RDWR | O_CREAT);
        GuestPtr buf = heap.malloc(1024);
        ctx.write(static_cast<int>(fd), buf, 1024);
        ctx.cost().reset();
        for (u64 i = 0; i < n; ++i) {
            ctx.lseek(static_cast<int>(fd), 0, 0);
            ctx.read(static_cast<int>(fd), buf, 1024);
        }
        return ctx.cost().cycles() / n;
    }});

    benches.push_back({"write-1k", [](GuestContext &ctx,
                                      GuestMalloc &heap, u64 n) {
        s64 fd = ctx.open("/tmp/micro2", O_RDWR | O_CREAT | O_TRUNC);
        GuestPtr buf = heap.malloc(1024);
        ctx.cost().reset();
        for (u64 i = 0; i < n; ++i) {
            ctx.lseek(static_cast<int>(fd), 0, 0);
            ctx.write(static_cast<int>(fd), buf, 1024);
        }
        return ctx.cost().cycles() / n;
    }});

    benches.push_back({"pipe-pingpong", [](GuestContext &ctx,
                                           GuestMalloc &heap, u64 n) {
        int fds[2];
        guestPipe(ctx, heap, fds);
        GuestPtr buf = heap.malloc(64);
        ctx.cost().reset();
        for (u64 i = 0; i < n; ++i) {
            ctx.write(fds[1], buf, 64);
            ctx.read(fds[0], buf, 64);
        }
        return ctx.cost().cycles() / n;
    }});

    benches.push_back({"select", [](GuestContext &ctx, GuestMalloc &heap,
                                    u64 n) {
        int fds[2];
        guestPipe(ctx, heap, fds);
        GuestPtr sets = heap.malloc(256);
        ctx.cost().reset();
        for (u64 i = 0; i < n; ++i) {
            ctx.store<u64>(sets, 0, u64{1} << fds[0]);
            ctx.store<u64>(sets, 64, u64{1} << fds[1]);
            ctx.store<u64>(sets, 128, 0);
            ctx.select(8, sets, sets + 64, sets + 128, sets + 192);
        }
        return ctx.cost().cycles() / n;
    }});

    benches.push_back({"sigtramp", [](GuestContext &ctx, GuestMalloc &,
                                      u64 n) {
        Process &proc = ctx.proc();
        u64 hid = proc.registerHandler([](Process &, SigFrame &) {});
        ctx.kernel().sysSigaction(proc, SIG_USR1,
                                  {SigAction::Kind::Handler, hid});
        ctx.cost().reset();
        for (u64 i = 0; i < n; ++i) {
            ctx.kill(proc.pid(), SIG_USR1);
            ctx.kernel().deliverSignals(proc);
        }
        return ctx.cost().cycles() / n;
    }});

    benches.push_back({"mmap+munmap", [](GuestContext &ctx,
                                         GuestMalloc &, u64 n) {
        ctx.cost().reset();
        for (u64 i = 0; i < n; ++i) {
            GuestPtr p = ctx.mmap(4 * pageSize);
            ctx.munmap(p, 4 * pageSize);
        }
        return ctx.cost().cycles() / n;
    }});

    benches.push_back({"fork", [](GuestContext &ctx, GuestMalloc &,
                                  u64 n) {
        Kernel &kern = ctx.kernel();
        ctx.cost().reset();
        for (u64 i = 0; i < n; ++i) {
            SysInvokeResult r = sysInvoke(kern, ctx.proc(), SysNum::Fork);
            Process *child = kern.findProcess(r.res.value);
            if (!child)
                break;
            kern.exitProcess(*child, 0);
            kern.wait4(ctx.proc(), child->pid());
        }
        return ctx.cost().cycles() / n;
    }});

    obs::Metrics metrics;
    std::vector<std::array<u64, 2>> cycles(benches.size());
    for (size_t i = 0; i < benches.size(); ++i) {
        cycles[i][0] = measure(benches[i], Abi::Mips64, iters, &metrics);
        cycles[i][1] = measure(benches[i], Abi::CheriAbi, iters, &metrics);
    }

    if (json_only) {
        std::printf("%s\n", metrics.toJson().c_str());
        return 0;
    }

    bench::banner("System-call micro-benchmarks (simulated cycles/call)");
    std::printf("%-16s %12s %12s %9s\n", "syscall", "mips64", "cheriabi",
                "delta");
    for (size_t i = 0; i < benches.size(); ++i) {
        u64 m = cycles[i][0];
        u64 c = cycles[i][1];
        double pct = m ? (static_cast<double>(c) - static_cast<double>(m)) /
                             static_cast<double>(m) * 100.0
                       : 0.0;
        std::printf("%-16s %12lu %12lu %+8.1f%%\n",
                    benches[i].name.c_str(),
                    static_cast<unsigned long>(m),
                    static_cast<unsigned long>(c), pct);
    }
    bench::note("\nPaper (section 5.2): from +3.4% (fork, worst case) "
                "to -9.8% (select,\nbest case: four pointer arguments "
                "the legacy kernel must wrap in\ncapabilities).");

    bench::banner("Per-syscall metrics (JSON, cheri.metrics.v9)");
    std::printf("%s\n", metrics.toJson().c_str());
    return 0;
}
