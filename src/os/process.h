/**
 * @file
 * Processes: the unit of abstract-capability ownership.
 *
 * Each process owns an address space (one abstract principal), a file
 * table, signal state, and one thread of capability register state.
 * A process runs under one of the two ABIs the kernel supports — legacy
 * mips64 (integer pointers, address-space-wide DDC) or CheriABI (pure
 * capabilities, DDC == NULL) — chosen at execve time, exactly as
 * CheriBSD runs both userspace flavors side by side.
 */

#ifndef CHERI_OS_PROCESS_H
#define CHERI_OS_PROCESS_H

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "machine/cost_model.h"
#include "machine/regs.h"
#include "mem/access.h"
#include "mem/vm.h"
#include "os/signal.h"
#include "os/vfs.h"
#include "rtld/rtld.h"

namespace cheri
{

class Kernel;

namespace snap
{
struct Access;
}

/** Why a process died, when it did not exit normally. */
struct DeathInfo
{
    int signal = 0;
    CapFault fault = CapFault::None;
    u64 faultAddr = 0;
    std::string detail;
    /** The offending capability, when the trap carried one — lets the
     *  observability layer attribute the fault to its DeriveSource. */
    Capability faultCap;
    bool faultCapKnown = false;
    /** The deadlock watchdog killed this process to break a wait-for
     *  cycle; wait4 surfaces the reap as E_DEADLK. */
    bool deadlock = false;
};

/** One kernel-scheduled thread context within a process. */
struct ThreadRecord
{
    u64 tid = 0;
    /** Register file while the thread is switched out.  Saved and
     *  restored by the kernel with tags intact (paper Figure 2). */
    ThreadRegs saved;
    /** This thread's stack capability (bounded to its own stack). */
    Capability stackCap;
    bool live = true;
};

class Process
{
  public:
    Process(Kernel &kernel, u64 pid, u64 ppid, Abi abi, std::string name,
            std::unique_ptr<AddressSpace> as, MachineFeatures features);

    // (The cost model inherits the address space's capability format.)

    /** @name Identity */
    /// @{
    u64 pid() const { return _pid; }
    u64 ppid() const { return _ppid; }
    Abi abi() const { return _abi; }
    const std::string &name() const { return _name; }
    /// @}

    AddressSpace &as() { return *_as; }
    const AddressSpace &as() const { return *_as; }

    /** The unified guest-memory access path (software TLB) for this
     *  process; all kernel and interpreter accesses to this process's
     *  memory go through here. */
    MemAccess &mem() { return _mem; }

    /** Register state of the *currently running* thread. */
    ThreadRegs &regs() { return _regs; }
    const ThreadRegs &regs() const { return _regs; }

    /** @name Threads */
    /// @{
    u64 currentTid() const { return curThread; }
    u64 threadCount() const;
    ThreadRecord *threadById(u64 tid);
    /** Visit every thread record (live and exited) read-only — the
     *  checking layer audits saved register files of switched-out
     *  threads, which hold tagged capabilities the kernel must have
     *  preserved intact. */
    void
    forEachThread(const std::function<void(const ThreadRecord &)> &fn) const
    {
        for (const auto &t : threads)
            fn(t);
    }
    /** Mutable variant: the revocation sweep clears tags in the saved
     *  register files of switched-out threads in place. */
    void
    forEachThread(const std::function<void(ThreadRecord &)> &fn)
    {
        for (auto &t : threads)
            fn(t);
    }
    /// @}

    /** Per-process execution cost counters (per-ABI). */
    CostModel &cost() { return _cost; }

    /** @name File descriptors */
    /// @{
    int allocFd(OpenFileRef file);
    OpenFileRef fd(int n) const;
    int closeFd(int n);
    /** Close every open descriptor (process-exit teardown): each
     *  last-close fires its channel's wake edges, so readers blocked
     *  on a dying writer see EOF and writers see EPIPE. */
    void closeAllFds();
    u64 fdCount() const;
    /** Share or copy the table into @p child (fork semantics: open-file
     *  descriptions are shared, the table itself is copied). */
    void cloneFdsInto(Process &child) const;
    /// @}

    /** @name Signal state */
    /// @{
    SigAction &sigaction(int sig) { return sigActions.at(sig); }
    /** Register guest handler code; returns its handler id. */
    u64 registerHandler(SigHandler fn);
    const SigHandler *handlerById(u64 id) const;
    void raiseSignal(int sig);
    u64 pendingSignals() const { return sigPending; }
    void clearPending(int sig) { sigPending &= ~(u64{1} << sig); }
    u64 sigMask = 0;
    /// @}

    /** @name Lifecycle */
    /// @{
    bool exited() const { return _exited; }
    int exitStatus() const { return _exitStatus; }
    const std::optional<DeathInfo> &death() const { return _death; }
    void exit(int status);
    void die(const DeathInfo &info);
    /// @}

    /** Image linked into this process by execve. */
    LinkedImage image;

    /** @name CheriABI startup capabilities (Figure 1)
     * Under mips64 these hold untagged address-only capabilities.
     */
    /// @{
    Capability stackCap;
    Capability argvCap;
    Capability envvCap;
    Capability auxvCap;
    Capability trampolineCap;
    int argc = 0;
    int envc = 0;
    /// @}

    /**
     * The DDC this process runs with: NULL for CheriABI (no ambient
     * authority), the address-space root for mips64.
     */
    const Capability &ddc() const { return _regs.ddc; }

    /** Heap management state for the guest allocator. */
    u64 heapHint = 0x40000000;

    /** Legacy brk state (mips64 only; CheriABI excludes sbrk). */
    u64 brkBase = 0;
    u64 brkCur = 0;
    u64 brkLimit = 0;

    /**
     * Signal frames currently spilled on the kernel side of a handler
     * invocation (innermost last).  While a handler runs, the
     * *interrupted* context's capabilities live in this kernel copy,
     * not in the register file — so the revocation sweep must reach
     * them here or a revoked capability would be resurrected by
     * sigreturn.
     */
    std::vector<SigFrame *> liveSigFrames;

    Kernel &kernel() { return kern; }

  private:
    Kernel &kern;
    u64 _pid;
    u64 _ppid;
    Abi _abi;
    std::string _name;
    std::unique_ptr<AddressSpace> _as;
    ThreadRegs _regs;
    CostModel _cost;
    MemAccess _mem;
    std::vector<OpenFileRef> fds;
    /** Thread records need stable addresses: growth must not move
     *  existing elements (callers hold ThreadRecord pointers across
     *  creation), hence a deque rather than a vector. */
    std::deque<ThreadRecord> threads;
    u64 curThread = 0;
    u64 nextTid = 1;
    std::array<SigAction, numSignals> sigActions{};
    std::vector<SigHandler> handlers;
    u64 sigPending = 0;
    bool _exited = false;
    int _exitStatus = 0;
    std::optional<DeathInfo> _death;

    friend class Kernel;
    /** Checkpoint/restore rebuilds processes field by field. */
    friend struct snap::Access;
};

} // namespace cheri

#endif // CHERI_OS_PROCESS_H
