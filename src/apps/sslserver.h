/**
 * @file
 * mini_s_server: the openssl s_server analogue traced for Figure 5.
 *
 * The paper reconstructs a process's abstract capability from a trace
 * of an `openssl s_server` run covering startup, a client connection,
 * authentication, and the exchange of a small file — chosen because it
 * "exercises the majority of the changes": thread-local storage,
 * dynamic linking against multiple libraries, considerable memory
 * allocation and pointer manipulation, and system calls.  This
 * analogue does all of those things: it is dynamically linked against
 * mini libssl/libcrypto, performs a toy handshake (nonce exchange,
 * modular-exponentiation key agreement, keystream cipher), keeps
 * per-session state in TLS-the-storage, allocates heavily, and serves
 * a file over a pty pair using read/write/select/kevent.
 */

#ifndef CHERI_APPS_SSLSERVER_H
#define CHERI_APPS_SSLSERVER_H

#include "guest/context.h"
#include "trace/analysis.h"

namespace cheri::apps
{

/** Outcome of one served session. */
struct SslServerReport
{
    bool handshakeOk = false;
    u64 bytesServed = 0;
    u64 sessionsServed = 0;
    u64 allocations = 0;
};

/**
 * Boot a kernel, link and exec mini_s_server under @p abi, run a
 * client session against it, and return the report.  When @p trace is
 * non-null every capability derivation is recorded (Figure 5 input).
 */
SslServerReport runSslServer(Abi abi, TraceSink *trace = nullptr);

} // namespace cheri::apps

#endif // CHERI_APPS_SSLSERVER_H
