#include "os/coredump.h"

#include <cstring>

#include "os/process.h"

namespace cheri
{

namespace
{

constexpr char coreMagic[8] = {'M', 'B', 'S', 'D', 'C', 'O', 'R', 'E'};

/** Append POD @p v to @p out. */
template <typename T>
void
put(std::vector<u8> &out, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const u8 *p = reinterpret_cast<const u8 *>(&v);
    out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
bool
get(const std::vector<u8> &in, size_t &off, T *v)
{
    if (off + sizeof(T) > in.size())
        return false;
    std::memcpy(v, in.data() + off, sizeof(T));
    off += sizeof(T);
    return true;
}

/**
 * Serialized capability *value*: everything a debugger wants to see.
 * This is data about a capability, not a capability — reading a core
 * file can never mint authority.
 */
struct CapRecord
{
    u8 tag;
    u8 sealed;
    u32 perms;
    u32 otype;
    u64 base;
    u64 top; // saturated to 2^64-1
    u64 address;
};

CapRecord
recordOf(const Capability &c)
{
    CapRecord r{};
    r.tag = c.tag();
    r.sealed = c.sealed();
    r.perms = c.perms();
    r.otype = c.otype();
    r.base = c.base();
    r.top = c.top() > u128{~u64{0}} ? ~u64{0}
                                    : static_cast<u64>(c.top());
    r.address = c.address();
    return r;
}

/** Rebuild the *value* (always untagged) for display. */
Capability
valueOf(const CapRecord &r)
{
    // Reconstruct a same-shaped untagged capability via root-derived
    // bounds; the tag/perm metadata rides alongside in CoreDump.
    Capability c = Capability::root().setAddress(r.base);
    auto b = c.setBounds(r.top - r.base);
    Capability shaped = b.ok() ? b.value() : c;
    auto p = shaped.andPerms(r.perms);
    if (p.ok())
        shaped = p.value();
    return shaped.setAddress(r.address).withoutTag();
}

} // namespace

void
writeCoreFile(const Process &proc, VNode &node)
{
    std::vector<u8> out;
    out.insert(out.end(), coreMagic, coreMagic + 8);
    put(out, proc.pid());
    u64 name_len = proc.name().size();
    put(out, name_len);
    out.insert(out.end(), proc.name().begin(), proc.name().end());
    const auto &death = proc.death();
    put<u32>(out, death ? static_cast<u32>(death->signal) : 0);
    put<u32>(out, death ? static_cast<u32>(death->fault) : 0);
    put<u64>(out, death ? death->faultAddr : 0);
    // Register file: pcc, ddc, c[0..31], x[0..31].
    put(out, recordOf(proc.regs().pcc));
    put(out, recordOf(proc.regs().ddc));
    for (const Capability &c : proc.regs().c)
        put(out, recordOf(c));
    for (u64 x : proc.regs().x)
        put(out, x);
    // Memory map.
    std::vector<Mapping> maps;
    proc.as().forEachMapping(
        [&](const Mapping &m) { maps.push_back(m); });
    put<u64>(out, maps.size());
    for (const Mapping &m : maps) {
        put(out, m.start);
        put(out, m.len);
        put(out, m.prot);
        put<u32>(out, static_cast<u32>(m.kind));
        u64 nlen = m.name.size();
        put(out, nlen);
        out.insert(out.end(), m.name.begin(), m.name.end());
    }
    node.data = std::move(out);
}

std::optional<CoreDump>
readCoreFile(const VNode &node)
{
    const std::vector<u8> &in = node.data;
    size_t off = 0;
    char magic[8];
    if (in.size() < 8)
        return std::nullopt;
    std::memcpy(magic, in.data(), 8);
    off = 8;
    if (std::memcmp(magic, coreMagic, 8) != 0)
        return std::nullopt;
    CoreDump core;
    u64 name_len = 0;
    if (!get(in, off, &core.pid) || !get(in, off, &name_len))
        return std::nullopt;
    if (off + name_len > in.size())
        return std::nullopt;
    core.name.assign(reinterpret_cast<const char *>(in.data() + off),
                     name_len);
    off += name_len;
    u32 sig = 0, fault = 0;
    if (!get(in, off, &sig) || !get(in, off, &fault) ||
        !get(in, off, &core.faultAddr)) {
        return std::nullopt;
    }
    core.signal = static_cast<int>(sig);
    core.fault = static_cast<CapFault>(fault);
    auto read_cap = [&](Capability *c) {
        CapRecord r;
        if (!get(in, off, &r))
            return false;
        *c = valueOf(r);
        return true;
    };
    if (!read_cap(&core.regs.pcc) || !read_cap(&core.regs.ddc))
        return std::nullopt;
    for (Capability &c : core.regs.c) {
        if (!read_cap(&c))
            return std::nullopt;
    }
    for (u64 &x : core.regs.x) {
        if (!get(in, off, &x))
            return std::nullopt;
    }
    u64 nmaps = 0;
    if (!get(in, off, &nmaps))
        return std::nullopt;
    for (u64 i = 0; i < nmaps; ++i) {
        Mapping m;
        u32 kind = 0;
        u64 nlen = 0;
        if (!get(in, off, &m.start) || !get(in, off, &m.len) ||
            !get(in, off, &m.prot) || !get(in, off, &kind) ||
            !get(in, off, &nlen) || off + nlen > in.size()) {
            return std::nullopt;
        }
        m.kind = static_cast<MappingKind>(kind);
        m.name.assign(reinterpret_cast<const char *>(in.data() + off),
                      nlen);
        off += nlen;
        core.mappings.push_back(m);
    }
    return core;
}

} // namespace cheri
