/**
 * @file
 * Scheduler bench: what the unified execution engine buys.
 *
 * Before the scheduler, every driver that wanted to interleave guest
 * programs hand-rolled the same pattern per turn: construct an
 * isa::Interpreter, install the syscall hook, derive an entry
 * capability, run a bounded chunk, throw the interpreter away.  The
 * decode micro-cache died with every chunk.  The scheduler keeps one
 * ExecContext per (process, thread) alive across slices, so the cache
 * stays warm however many times the context is preempted.
 *
 * Three measurements:
 *  - multi-process throughput: four CPU-bound guests, time-sliced by
 *    the scheduler, versus the same four programs interleaved by
 *    serially re-creating interpreters (the old per-driver pattern);
 *  - context-switch cost: host-side overhead per scheduler context
 *    switch, from the timing delta between a two-process run (which
 *    switches every slice) and the same work run back to back;
 *  - scaling: aggregate 4-process throughput versus a single process,
 *    which should be flat — the engine serializes slices, so adding
 *    runnable processes must not collapse per-step cost.
 *
 * --json emits machine-readable results; --check exits nonzero unless
 * the scheduler clears a 3x throughput floor over the re-create
 * pattern, switch cost stays bounded, and scaling stays flat.
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "os/kernel.h"
#include "os/sched/sched.h"

using namespace cheri;

namespace
{

using Clock = std::chrono::steady_clock;

/** Loop iterations per guest program. */
constexpr u64 kLoops = 4000;
/** Distinct ALU instructions in the loop body: large enough that a
 *  cold decode cache misses on (nearly) every step of a time slice,
 *  small enough to fit the 256-entry cache once warm. */
constexpr u64 kBodyInsns = 224;
/** The scheduler time slice (and the baseline's chunk size): fine
 *  enough that four guests interleave responsively, which is exactly
 *  where the per-dispatch re-creation tax hurts the old pattern. */
constexpr u64 kSlice = 64;

struct Guest
{
    Process *proc = nullptr;
    u64 codeVa = 0;
};

/** The CPU-bound loop kernel every guest runs. */
isa::Assembler
buildLoop()
{
    isa::Assembler a;
    a.li(3, static_cast<s64>(kLoops)).label("loop");
    for (u64 i = 0; i < kBodyInsns; ++i)
        a.addi(4 + (i % 8), 4 + (i % 8), 1);
    a.addi(3, 3, -1).bne(3, 0, "loop").halt();
    return a;
}

/** Spawn a mips64 process running the CPU-bound loop kernel. */
Guest
makeGuest(Kernel &kern, const char *name)
{
    SelfObject prog;
    prog.name = name;
    Process *proc = kern.spawn(Abi::Mips64, name);
    if (kern.execve(*proc, prog, {name}, {}) != E_OK)
        throw std::runtime_error("execve failed");
    u64 code = proc->as().map(0, 4 * pageSize,
                              PROT_READ | PROT_WRITE | PROT_EXEC,
                              MappingKind::Text);
    buildLoop().writeTo(proc->as(), code);
    proc->regs().pcc = Capability::fromAddress(code);
    return {proc, code};
}

double
stepsPerSec(u64 steps, Clock::duration d)
{
    double secs = std::chrono::duration<double>(d).count();
    return secs > 0 ? static_cast<double>(steps) / secs : 0;
}

/** Run @p n guests to completion under the scheduler; returns
 *  steps/sec and exposes the kernel's final scheduler stats. */
double
runScheduled(unsigned n, SchedStats *out = nullptr)
{
    KernelConfig cfg;
    cfg.timeSliceSteps = kSlice;
    Kernel kern(cfg);
    sched::Scheduler &s = sched::schedulerFor(kern);
    for (unsigned i = 0; i < n; ++i)
        s.admit(*makeGuest(kern, "sched-guest").proc);
    auto t0 = Clock::now();
    kern.runUntilIdle();
    auto t1 = Clock::now();
    if (out)
        *out = s.stats();
    return stepsPerSec(s.stats().stepsExecuted, t1 - t0);
}

/**
 * The old per-driver pattern, exactly as the pre-scheduler DiffFuzzer
 * Compute op ran guest code on every dispatch: lower the program, write
 * it into guest memory, construct a fresh interpreter (cold decode
 * cache), install a fresh syscall hook, derive a fresh entry, run a
 * bounded chunk, throw it all away.  Interleaving @p n guests means
 * paying that per turn.
 */
double
runRecreated(unsigned n)
{
    Kernel kern;
    std::vector<Guest> guests;
    std::vector<bool> halted(n, false);
    for (unsigned i = 0; i < n; ++i)
        guests.push_back(makeGuest(kern, "recreate-guest"));
    u64 steps = 0;
    auto t0 = Clock::now();
    for (bool any = true; any;) {
        any = false;
        for (unsigned i = 0; i < n; ++i) {
            if (halted[i])
                continue;
            any = true;
            Process &proc = *guests[i].proc;
            buildLoop().writeTo(proc.as(), guests[i].codeVa);
            isa::Interpreter interp(proc);
            isa::installDefaultSyscallHook(interp, kern);
            interp.setEntry(
                Capability::fromAddress(proc.regs().pcc.address()));
            isa::InterpResult r = interp.run(kSlice);
            steps += r.steps;
            if (r.status != isa::InterpResult::Status::StepLimit)
                halted[i] = true;
        }
    }
    auto t1 = Clock::now();
    return stepsPerSec(steps, t1 - t0);
}

/** Host nanoseconds of pure switch overhead per context switch. */
double
switchCostNs()
{
    // Two processes ping-pong every slice; the same total work run as
    // two one-process drains has (almost) no switches.  The timing
    // delta divided by the switch count isolates the per-switch cost.
    SchedStats pair;
    auto t0 = Clock::now();
    runScheduled(2, &pair);
    auto t1 = Clock::now();
    auto t2 = Clock::now();
    runScheduled(1);
    runScheduled(1);
    auto t3 = Clock::now();
    double paired = std::chrono::duration<double>(t1 - t0).count();
    double serial = std::chrono::duration<double>(t3 - t2).count();
    double delta = paired - serial;
    if (delta < 0)
        delta = 0;
    return pair.contextSwitches
               ? delta * 1e9 / static_cast<double>(pair.contextSwitches)
               : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json"))
            json = true;
        else if (!std::strcmp(argv[i], "--check"))
            check = true;
    }

    SchedStats multi;
    double schedMulti = runScheduled(4, &multi);
    double recreate = runRecreated(4);
    double schedSingle = runScheduled(1);
    double ratio = recreate > 0 ? schedMulti / recreate : 0;
    double scaling = schedSingle > 0 ? schedMulti / schedSingle : 0;
    double switchNs = switchCostNs();

    if (json) {
        std::printf("{\n"
                    "  \"schema\": \"cheri.sched_bench.v1\",\n"
                    "  \"slice_steps\": %llu,\n"
                    "  \"guests\": 4,\n"
                    "  \"sched_steps_per_sec\": %.0f,\n"
                    "  \"recreate_steps_per_sec\": %.0f,\n"
                    "  \"throughput_ratio\": %.2f,\n"
                    "  \"single_proc_steps_per_sec\": %.0f,\n"
                    "  \"scaling_vs_single\": %.2f,\n"
                    "  \"context_switches\": %llu,\n"
                    "  \"preemptions\": %llu,\n"
                    "  \"switch_cost_ns\": %.0f\n"
                    "}\n",
                    static_cast<unsigned long long>(kSlice), schedMulti,
                    recreate, ratio, schedSingle, scaling,
                    static_cast<unsigned long long>(multi.contextSwitches),
                    static_cast<unsigned long long>(multi.preemptions),
                    switchNs);
    } else {
        bench::banner("Scheduler: persistent contexts vs per-chunk "
                      "interpreter re-creation");
        std::printf("%-38s %14s\n", "configuration", "steps/sec");
        std::printf("%-38s %14.0f\n",
                    "4 guests, scheduler (warm caches)", schedMulti);
        std::printf("%-38s %14.0f\n",
                    "4 guests, re-created per chunk", recreate);
        std::printf("%-38s %14.0f\n", "1 guest, scheduler", schedSingle);
        std::printf("\nthroughput ratio (sched / re-create): %.2fx\n",
                    ratio);
        std::printf("scaling vs single process:            %.2fx\n",
                    scaling);
        std::printf("context switches: %llu   preemptions: %llu   "
                    "switch cost: %.0f ns\n",
                    static_cast<unsigned long long>(multi.contextSwitches),
                    static_cast<unsigned long long>(multi.preemptions),
                    switchNs);
    }

    if (check) {
        bool ok = true;
        if (ratio < 3.0) {
            std::fprintf(stderr,
                         "CHECK FAIL: scheduler/recreate throughput "
                         "ratio %.2f < 3.0\n",
                         ratio);
            ok = false;
        }
        if (scaling < 0.5) {
            std::fprintf(stderr,
                         "CHECK FAIL: 4-process scaling %.2f < 0.5 of "
                         "single-process throughput\n",
                         scaling);
            ok = false;
        }
        if (switchNs > 50000) {
            std::fprintf(stderr,
                         "CHECK FAIL: context-switch cost %.0f ns > "
                         "50000 ns\n",
                         switchNs);
            ok = false;
        }
        if (!ok)
            return 1;
        std::printf("CHECK OK: ratio %.2fx >= 3.0, scaling %.2fx >= "
                    "0.5, switch cost %.0f ns <= 50000\n",
                    ratio, scaling, switchNs);
    }
    return 0;
}
