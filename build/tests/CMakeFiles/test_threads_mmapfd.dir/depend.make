# Empty dependencies file for test_threads_mmapfd.
# This may be replaced when dependencies are built.
