/**
 * @file
 * BOdiagsuite tests: corpus shape, per-regime detection behaviour on
 * representative cases, and the Table 3 headline invariants.
 */

#include <gtest/gtest.h>

#include "bodiag/suite.h"
#include "sanitizer/asan.h"
#include "test_util.h"

namespace cheri::bodiag
{
namespace
{

TEST(BodiagSuite, HasExactly291Cases)
{
    auto suite = generateSuite();
    EXPECT_EQ(suite.size(), 291u);
    // Unique ids.
    std::set<u64> ids;
    for (const auto &c : suite)
        ids.insert(c.id);
    EXPECT_EQ(ids.size(), suite.size());
    // The hard sub-populations exist.
    u64 intra = 0, uninstr = 0, skip = 0, edge = 0, posix = 0;
    for (const auto &c : suite) {
        intra += c.tech == Technique::IntraObject;
        uninstr += c.tech == Technique::Uninstrumented;
        skip += c.tech == Technique::NeighborSkip;
        edge += c.pageEdge;
        posix += c.tech == Technique::PosixGetcwd;
    }
    EXPECT_EQ(intra, 12u) << "the paper's 12 intra-object cases";
    EXPECT_EQ(uninstr, 3u);
    EXPECT_EQ(skip, 2u);
    EXPECT_EQ(edge, 4u);
    EXPECT_EQ(posix, 8u);
}

TEST(BodiagSuite, OkVariantsNeverMisfire)
{
    auto suite = generateSuite();
    // Spot-check a spread of cases in all three modes.
    for (size_t i = 0; i < suite.size(); i += 13) {
        for (Mode m : {Mode::Mips64, Mode::CheriAbi, Mode::Asan}) {
            RunResult r = runCase(suite[i], Magnitude::Ok, m);
            EXPECT_FALSE(r.detected)
                << suite[i].describe() << " under " << modeName(m);
        }
    }
}

TEST(BodiagSuite, CheriCatchesHeapMinOverflow)
{
    BodiagCase c{0, Region::Heap, AccessKind::Write,
                 Technique::DirectIndex, 16};
    EXPECT_TRUE(runCase(c, Magnitude::Min, Mode::CheriAbi).detected);
    EXPECT_FALSE(runCase(c, Magnitude::Min, Mode::Mips64).detected);
    EXPECT_TRUE(runCase(c, Magnitude::Min, Mode::Asan).detected);
}

TEST(BodiagSuite, CheriMissesIntraObjectMin)
{
    BodiagCase c{0, Region::Stack, AccessKind::Write,
                 Technique::IntraObject, 16, 4};
    EXPECT_FALSE(runCase(c, Magnitude::Min, Mode::CheriAbi).detected)
        << "allocation-granularity bounds cannot see intra-object";
    EXPECT_TRUE(runCase(c, Magnitude::Med, Mode::CheriAbi).detected)
        << "med escapes the 4-byte sibling";
    EXPECT_TRUE(runCase(c, Magnitude::Large, Mode::CheriAbi).detected);
    EXPECT_FALSE(runCase(c, Magnitude::Min, Mode::Asan).detected);
}

TEST(BodiagSuite, WideSiblingHidesMedFromCheri)
{
    BodiagCase c{0, Region::Heap, AccessKind::Write,
                 Technique::IntraObject, 16, 16};
    EXPECT_FALSE(runCase(c, Magnitude::Min, Mode::CheriAbi).detected);
    EXPECT_FALSE(runCase(c, Magnitude::Med, Mode::CheriAbi).detected);
    EXPECT_TRUE(runCase(c, Magnitude::Large, Mode::CheriAbi).detected);
}

TEST(BodiagSuite, AsanBlindToUninstrumentedCode)
{
    BodiagCase c{0, Region::Heap, AccessKind::Write,
                 Technique::Uninstrumented, 64};
    for (Magnitude m :
         {Magnitude::Min, Magnitude::Med, Magnitude::Large}) {
        EXPECT_FALSE(runCase(c, m, Mode::Asan).detected)
            << magnitudeName(m);
        EXPECT_TRUE(runCase(c, m, Mode::CheriAbi).detected)
            << magnitudeName(m);
    }
}

TEST(BodiagSuite, AsanMissesRedzoneSkip)
{
    BodiagCase c{0, Region::Heap, AccessKind::Write,
                 Technique::NeighborSkip, 64};
    EXPECT_TRUE(runCase(c, Magnitude::Min, Mode::Asan).detected);
    EXPECT_FALSE(runCase(c, Magnitude::Large, Mode::Asan).detected)
        << "4096 bytes leaps the redzone into a live neighbour";
    EXPECT_TRUE(runCase(c, Magnitude::Large, Mode::CheriAbi).detected);
}

TEST(BodiagSuite, MipsCatchesOnlyPageEdgeAtMin)
{
    BodiagCase edge{0,  Region::Global, AccessKind::Write,
                    Technique::DirectIndex, 32, 0, /*tailGap=*/0,
                    /*pageEdge=*/true};
    EXPECT_TRUE(runCase(edge, Magnitude::Min, Mode::Mips64).detected);
    BodiagCase interior{0, Region::Global, AccessKind::Write,
                        Technique::DirectIndex, 32};
    EXPECT_FALSE(
        runCase(interior, Magnitude::Min, Mode::Mips64).detected);
    EXPECT_TRUE(
        runCase(interior, Magnitude::Large, Mode::Mips64).detected)
        << "4096 bytes crosses out of the data mapping";
}

TEST(BodiagSuite, GetcwdMisuseCaughtByCheriOnly)
{
    BodiagCase c{0, Region::Stack, AccessKind::Write,
                 Technique::PosixGetcwd, 16};
    EXPECT_TRUE(runCase(c, Magnitude::Min, Mode::CheriAbi).detected);
    EXPECT_FALSE(runCase(c, Magnitude::Min, Mode::Mips64).detected)
        << "legacy kernel writes past the real buffer silently";
    EXPECT_TRUE(runCase(c, Magnitude::Min, Mode::Asan).detected)
        << "interceptor checks the claimed range";
}

TEST(BodiagSuite, TlsOverflowCaughtByBlockBounds)
{
    BodiagCase c{0, Region::Tls, AccessKind::Write,
                 Technique::DirectIndex, 32};
    EXPECT_TRUE(runCase(c, Magnitude::Min, Mode::CheriAbi).detected);
    EXPECT_FALSE(runCase(c, Magnitude::Min, Mode::Mips64).detected);
}

// The Table 3 headline, on a fast subset (full corpus runs in bench/).
TEST(BodiagSuite, SubsetOrdering)
{
    auto suite = generateSuite();
    std::vector<BodiagCase> subset;
    for (size_t i = 0; i < suite.size(); i += 7)
        subset.push_back(suite[i]);
    ModeSummary mips = runAll(subset, Mode::Mips64);
    ModeSummary cheri = runAll(subset, Mode::CheriAbi);
    ModeSummary asan = runAll(subset, Mode::Asan);
    EXPECT_EQ(mips.okFailures, 0u);
    EXPECT_EQ(cheri.okFailures, 0u);
    EXPECT_EQ(asan.okFailures, 0u);
    // CheriABI > ASan >> mips64 at min; everyone improves with
    // magnitude; CheriABI catches everything at large.
    EXPECT_GT(cheri.min, mips.min * 5);
    EXPECT_GE(cheri.min, asan.min);
    EXPECT_GE(cheri.med, cheri.min);
    EXPECT_EQ(cheri.large, subset.size());
    EXPECT_LT(mips.min, subset.size() / 4);
    EXPECT_GT(mips.large, mips.med);
}

// AsanRuntime unit behaviour.
TEST(AsanRuntime, DetectsHeapOverflowAndUseAfterFree)
{
    test::GuestSystem sys(Abi::Mips64);
    AsanRuntime asan(*sys.ctx);
    GuestPtr p = asan.malloc(32);
    asan.store<u8>(p, 31, 1);
    EXPECT_THROW(asan.store<u8>(p, 32, 1), AsanReport);
    EXPECT_THROW(asan.load<u8>(p, -1), AsanReport);
    asan.free(p);
    EXPECT_THROW(asan.load<u8>(p, 0), AsanReport);
    EXPECT_GT(asan.shadowOverheadBytes(), 0u);
}

TEST(AsanRuntime, RedzonePolicyScalesWithSize)
{
    EXPECT_EQ(AsanRuntime::redzoneFor(16), 16u);
    EXPECT_EQ(AsanRuntime::redzoneFor(256), 64u);
    EXPECT_EQ(AsanRuntime::redzoneFor(2048), 128u);
    EXPECT_EQ(AsanRuntime::redzoneFor(1 << 20), 256u);
}

} // namespace
} // namespace cheri::bodiag
