/**
 * @file
 * Domain example: overflow forensics with SIGPROT.
 *
 * A CheriABI process can *catch* capability faults, turning memory-
 * safety bugs into precise, recoverable diagnostics.  This example
 * runs the same buggy routine under both ABIs: under mips64 the
 * overflow silently corrupts a neighbouring structure; under CheriABI
 * a SIGPROT handler reports exactly which access faulted and through
 * which capability, and the neighbouring data survives.  It closes by
 * paging the process out and back in to show tags surviving swap.
 *
 * Build & run:  ./build/examples/overflow_forensics
 */

#include <cstdio>

#include "guest/context.h"
#include "libc/cstring.h"
#include "libc/malloc.h"

using namespace cheri;

namespace
{

/** The buggy routine: copies a 24-byte name into a 16-byte field. */
void
buggyCopy(GuestContext &ctx, GuestMalloc &heap, const GuestPtr &record)
{
    const char name[] = "a-name-that-is-far-too-long";
    GuestPtr staging = heap.malloc(sizeof(name));
    ctx.write(staging, name, sizeof(name));
    gStrcpy(ctx, record, staging); // record is only 16 bytes
}

void
runScenario(Abi abi)
{
    Kernel kern;
    SelfObject prog;
    prog.name = "forensics";
    prog.textSize = 0x1000;
    Process *proc = kern.spawn(abi, "forensics");
    kern.execve(*proc, prog, {"forensics"}, {});
    GuestContext ctx(kern, *proc);
    GuestMalloc heap(ctx);

    std::printf("\n--- %s ---\n",
                abi == Abi::CheriAbi ? "CheriABI" : "mips64 (legacy)");

    // A 16-byte name field, with the access-control list right after
    // it on the heap.
    GuestPtr name_field = heap.malloc(16);
    GuestPtr acl = heap.malloc(16);
    ctx.store<u64>(acl, 0, 0600); // rw-------
    std::printf("acl before: 0%lo\n",
                static_cast<unsigned long>(ctx.load<u64>(acl)));

    // Catch capability faults instead of dying.
    u64 hid = proc->registerHandler([&](Process &p, SigFrame &f) {
        std::printf("SIG_PROT caught: signo=%d (capability fault)\n",
                    f.signo);
        (void)p;
    });
    kern.sysSigaction(*proc, SIG_PROT, {SigAction::Kind::Handler, hid});

    int rc = runGuest(ctx, [&](GuestContext &c) {
        buggyCopy(c, heap, name_field);
        return 0;
    });

    u64 acl_after = ctx.load<u64>(acl);
    std::printf("acl after:  0%lo %s\n",
                static_cast<unsigned long>(acl_after),
                acl_after == 0600 ? "(intact)" : "(CORRUPTED!)");
    std::printf("process:    %s (rc=%d)\n",
                proc->exited() ? "exited" : "alive, handler recovered",
                rc);

    if (abi == Abi::CheriAbi) {
        // Bonus: page the heap out and back in; the pointers survive.
        GuestPtr table = heap.malloc(32);
        ctx.storePtr(table, 0, acl);
        u64 evicted = proc->as().swapOutResident(1 << 20);
        std::printf("swap:       evicted %lu pages (tags recorded in "
                    "swap metadata)\n",
                    static_cast<unsigned long>(evicted));
        GuestPtr back = ctx.loadPtr(table, 0);
        std::printf("after swap-in: stored pointer %s, *ptr=0%lo\n",
                    back.cap.tag() ? "still tagged" : "DEAD",
                    static_cast<unsigned long>(ctx.load<u64>(back)));
    }
}

} // namespace

int
main()
{
    std::printf("One buggy strcpy, two worlds:\n");
    runScenario(Abi::Mips64);
    runScenario(Abi::CheriAbi);
    return 0;
}
