/**
 * @file
 * Temporal-safety prototype: quarantine + capability revocation.
 *
 * The paper's future work (section 6) observes that CHERI provides the
 * minimum infrastructure for temporally safe reuse — atomic pointer
 * updates and precise identification of pointers — and that work on a
 * CHERI-aware temporally-safe allocator was ongoing (what later became
 * CHERIvoke/Cornucopia).  This prototype implements that design:
 *
 *  - free() does not reuse memory; it moves the allocation into a
 *    *pending* quarantine generation;
 *  - when pending bytes exceed a budget, the generation is handed to
 *    the kernel as an INCREMENTAL revocation epoch (revoke2) — free()
 *    never blocks on a full sweep; the kernel amortizes the scan a
 *    bounded slice at a time across subsequent syscalls, and further
 *    frees accumulate in a fresh pending generation meanwhile;
 *  - only when the epoch closes (every cap-dirty page scanned, plus
 *    registers, saved thread contexts, live signal frames, and kevent
 *    udata) is that generation's storage handed back for reuse, so no
 *    stale capability to it can exist;
 *  - forceSweep() drains everything synchronously (REVOKE_SYNC),
 *    retrying the bounded number of times a failing swap device can
 *    interrupt the drive.
 *
 * The sweep interface lives on the kernel (Kernel::sysRevoke2), exactly
 * the "new interface" the paper says is required because user pointers
 * may be held in kernel structures for extended durations.
 */

#ifndef CHERI_LIBC_REVOKE_H
#define CHERI_LIBC_REVOKE_H

#include <vector>

#include "libc/malloc.h"

namespace cheri
{

class RevokingMalloc
{
  public:
    /**
     * @param quarantine_budget bytes of pending quarantine tolerated
     *        before an incremental epoch is kicked off
     */
    RevokingMalloc(GuestContext &ctx, u64 quarantine_budget = 64 * 1024);

    /** Allocate (same bounded-capability policy as GuestMalloc). */
    GuestPtr malloc(u64 size);

    /**
     * Quarantine the allocation.  The storage is not reusable — and
     * the caller's capability not dead — until an epoch covering it
     * closes.  Never runs a full sweep inline: over budget it opens
     * (or advances) an incremental epoch and returns.
     */
    bool free(const GuestPtr &p);

    /**
     * Drain all quarantined memory now: drive any in-flight epoch to
     * close synchronously, then sweep the pending generation too.
     * Returns tags cleared.
     */
    u64 forceSweep();

    /**
     * Advance an in-flight epoch by one kernel slice; release its
     * generation if it closed.  Returns true when no epoch remains in
     * flight (idle or just closed).
     */
    bool poll();

    /** @name Statistics */
    /// @{
    /** Revocation epochs opened on this heap's behalf. */
    u64 sweeps() const { return _sweeps; }
    u64 tagsRevoked() const { return _tagsRevoked; }
    u64 quarantinedBytes() const { return pendingBytes + inFlightBytes; }
    bool sweepInFlight() const { return inFlightActive; }
    u64 liveAllocations() const { return heap.liveAllocations(); }
    /// @}

  private:
    struct Range
    {
        u64 base;
        u64 size;
    };

    /** Hand the pending generation to the kernel as an epoch with
     *  @p flags; on success pending becomes the in-flight generation.
     *  Returns the syscall result. */
    SysResult openEpochOverPending(u32 flags);
    /** The in-flight epoch closed: its storage is safe to reuse. */
    void releaseInFlight();

    GuestContext &ctx;
    GuestMalloc heap;
    u64 budget;
    /** Frees accumulated since the last epoch was opened. */
    std::vector<Range> pending;
    /** The generation the open epoch is revoking. */
    std::vector<Range> inFlight;
    u64 pendingBytes = 0;
    u64 inFlightBytes = 0;
    bool inFlightActive = false;
    u64 _sweeps = 0;
    u64 _tagsRevoked = 0;
};

} // namespace cheri

#endif // CHERI_LIBC_REVOKE_H
