/**
 * @file
 * Tests for the CHERI-Concentrate bounds-compression model: precision,
 * alignment requirements, representable-length rounding (CRRL/CRAM),
 * and out-of-bounds representable slack.
 */

#include <gtest/gtest.h>

#include "cap/compression.h"

namespace cheri::compress
{
namespace
{

TEST(Compression, SmallLengthsAreExact)
{
    for (u64 len : {u64{0}, u64{1}, u64{16}, u64{100}, u64{4096},
                    (u64{1} << (mantissaWidth - 1)) - 1}) {
        EXPECT_EQ(exponentFor(len), 0u) << len;
        EXPECT_EQ(representableLength(len), len);
        EXPECT_EQ(representableAlignmentMask(len), ~u64{0});
    }
}

TEST(Compression, LargeLengthsRequireAlignment)
{
    u64 len = (u64{1} << 20) + 1; // just over 1 MiB, not granule-sized
    unsigned e = exponentFor(len);
    EXPECT_GT(e, 0u);
    u64 rounded = representableLength(len);
    EXPECT_GE(rounded, len);
    EXPECT_EQ(rounded % (u64{1} << exponentFor(rounded)), 0u);
}

TEST(Compression, RepresentableLengthIsIdempotent)
{
    for (u64 len : {u64{1} << 14, (u64{1} << 20) + 123, u64{0xDEADBEEF},
                    u64{1} << 33, (u64{1} << 40) + 7}) {
        u64 once = representableLength(len);
        EXPECT_EQ(representableLength(once), once) << len;
    }
}

TEST(Compression, Cap256IsAlwaysExact)
{
    u64 len = (u64{1} << 40) + 7;
    EXPECT_EQ(representableLength(len, CapFormat::Cap256), len);
    EXPECT_EQ(representableAlignmentMask(len, CapFormat::Cap256), ~u64{0});
    EXPECT_TRUE(boundsExactlyRepresentable(3, len, CapFormat::Cap256));
}

TEST(Compression, ExactnessRequiresAlignedBase)
{
    u64 len = u64{1} << 20;
    EXPECT_TRUE(boundsExactlyRepresentable(0, len));
    u64 granule = u64{1} << exponentFor(len);
    EXPECT_TRUE(boundsExactlyRepresentable(granule * 7, len));
    EXPECT_FALSE(boundsExactlyRepresentable(granule * 7 + 16, len));
}

TEST(Compression, SlackScalesWithObjectSize)
{
    u64 small = representableSlack(64);
    u64 big = representableSlack(u64{1} << 24);
    EXPECT_GT(small, 0u);
    EXPECT_GT(big, small);
}

TEST(Compression, AddressRepresentableWithinSlack)
{
    u64 base = 0x100000;
    u128 top = u128{base} + 4096;
    EXPECT_TRUE(addressRepresentable(base, top, base));
    EXPECT_TRUE(addressRepresentable(base, top, base + 4096)); // one-past
    u64 slack = representableSlack(4096);
    EXPECT_TRUE(addressRepresentable(base, top, base + 4096 + slack - 1));
    EXPECT_FALSE(addressRepresentable(base, top, base + 4096 + slack + 1));
    EXPECT_TRUE(addressRepresentable(base, top, base - slack));
    EXPECT_FALSE(addressRepresentable(base, top, base - slack - 2));
}

TEST(Compression, WholeAddressSpaceAlwaysRepresentable)
{
    EXPECT_TRUE(
        addressRepresentable(0, u128{1} << 64, u64{0xFFFFFFFFFFFFFFFF}));
    EXPECT_TRUE(addressRepresentable(0, u128{1} << 64, 0));
}

/** Property sweep: rounding invariants across length magnitudes. */
class RoundingProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RoundingProperty, CrrlAndCramAgree)
{
    unsigned shift = GetParam();
    for (u64 delta : {u64{0}, u64{1}, u64{7}, u64{255}}) {
        u64 len = (u64{1} << shift) + delta;
        u64 rounded = representableLength(len);
        u64 mask = representableAlignmentMask(len);
        EXPECT_GE(rounded, len);
        // The rounded length is aligned to the CRAM granule.
        EXPECT_EQ(rounded & ~mask, 0u);
        // Rounding never more than doubles the length.
        EXPECT_LE(rounded, 2 * len);
        // A base meeting CRAM yields exactly representable bounds.
        u64 base = (u64{0x123456789} << 12) & mask;
        EXPECT_TRUE(boundsExactlyRepresentable(base, rounded));
    }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, RoundingProperty,
                         ::testing::Range(0u, 48u));

} // namespace
} // namespace cheri::compress
