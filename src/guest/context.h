/**
 * @file
 * GuestContext: the execution environment of guest code.
 *
 * Guest workloads in this reproduction are C++ functions, but every one
 * of their memory accesses is routed through this class, which applies
 * the process ABI's checking discipline:
 *
 *  - CheriABI: the access must be authorized by the *pointer's own*
 *    capability — tag set, unsealed, in bounds, permission present —
 *    else a CapTrap (SIG_PROT) is raised;
 *  - mips64: the pointer is an integer checked only against the
 *    process's DDC (i.e., the whole address space): the legacy,
 *    unprotected regime.
 *
 * Every access is also charged to the process's cost model, and pointer
 * loads/stores use the ABI's pointer width — which is how the paper's
 * cache-pressure overheads arise.
 */

#ifndef CHERI_GUEST_CONTEXT_H
#define CHERI_GUEST_CONTEXT_H

#include <cstring>
#include <functional>
#include <string>

#include "guest/guest_ptr.h"
#include "machine/trap.h"
#include "os/kernel.h"

namespace cheri
{

class GuestContext
{
  public:
    GuestContext(Kernel &kernel, Process &process)
        : kern(kernel), _proc(process)
    {
    }

    Kernel &kernel() { return kern; }
    Process &proc() { return _proc; }
    Abi abi() const { return _proc.abi(); }
    CostModel &cost() { return _proc.cost(); }
    bool isCheri() const { return abi() == Abi::CheriAbi; }

    /** Pointer width in guest memory under this ABI. */
    u64 ptrSize() const { return _proc.cost().pointerSize(); }

    /** @name Checked raw access (throws CapTrap on violation) */
    /// @{
    void read(const GuestPtr &p, void *buf, u64 len);
    void write(const GuestPtr &p, const void *buf, u64 len);
    /// @}

    /** @name Typed scalar access */
    /// @{
    template <typename T>
    T
    load(const GuestPtr &p, s64 off = 0)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        read(p + off, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(const GuestPtr &p, s64 off, T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(p + off, &v, sizeof(T));
    }
    /// @}

    /** @name Pointer-in-memory access (ABI width, tag-preserving) */
    /// @{
    GuestPtr loadPtr(const GuestPtr &p, s64 off = 0);
    void storePtr(const GuestPtr &p, s64 off, const GuestPtr &v);
    /// @}

    /** Charge @p n plain ALU instructions (compute between accesses). */
    void work(u64 n) { cost().alu(n); }

    /**
     * Cast an integer back to a pointer — the "integer provenance"
     * idiom.  Under CheriABI the result is untagged and traps on use;
     * under mips64 it works, as it always (unsafely) did.
     */
    GuestPtr
    ptrFromInt(u64 addr) const
    {
        if (isCheri())
            return GuestPtr(Capability::fromAddress(addr));
        return GuestPtr(Capability::fromAddress(addr));
    }

    /**
     * Rebuild a pointer from an integer *with explicit provenance*, the
     * supported uintptr_t round-trip: the bits travel as an integer but
     * the capability comes from @p provenance.
     */
    GuestPtr
    ptrFromInt(u64 addr, const GuestPtr &provenance) const
    {
        return GuestPtr(provenance.cap.setAddress(addr));
    }

    /**
     * Hybrid mode's __capability annotation: derive a bounded
     * capability for [p, p+len) from the ambient DDC.  (Under CheriABI
     * there is no DDC to derive from — pointers arrive as capabilities
     * already — so the pointer is returned unchanged.)
     */
    GuestPtr
    annotate(const GuestPtr &p, u64 len)
    {
        if (isCheri())
            return p;
        Capability c = _proc.ddc().setAddress(p.addr());
        auto b = c.setBounds(len);
        if (!b.ok())
            return GuestPtr();
        cost().capManip(2);
        return GuestPtr(b.value());
    }

    /** Marshal a guest pointer into a syscall argument: a capability
     *  register under CheriABI (and for annotated hybrid pointers), an
     *  integer register otherwise. */
    UserPtr
    toUser(const GuestPtr &p) const
    {
        if (isCheri())
            return UserPtr::fromCap(p.cap);
        if (abi() == Abi::Hybrid && p.cap.tag())
            return UserPtr::fromCap(p.cap);
        return UserPtr::fromAddr(p.addr());
    }

    /** @name System-call veneers (libc syscall stubs)
     *
     * Each veneer loads the numbered-syscall argument registers and
     * enters the kernel through Kernel::dispatch — the same single
     * choke point interpreted code uses — so every call is counted,
     * timed, and errno-converted in one place.  The s64-returning
     * veneers return -errno on failure; the int-returning ones return
     * the errno itself (0 on success), like kernel-internal callers.
     */
    /// @{
    GuestPtr mmap(u64 len, u32 prot = PROT_READ | PROT_WRITE,
                  u32 flags = MAP_ANON | MAP_PRIVATE,
                  GuestPtr hint = {});
    int munmap(const GuestPtr &p, u64 len);
    int mprotect(const GuestPtr &p, u64 len, u32 prot);
    s64 open(const std::string &path, u32 flags);
    s64 read(int fd, const GuestPtr &buf, u64 len);
    s64 write(int fd, const GuestPtr &buf, u64 len);
    int close(int fd);
    s64 lseek(int fd, s64 off, int whence);
    /** Writes the two descriptors through @p fds (two 32-bit ints).
     *  @p flags accepts O_NONBLOCK (pipe2 semantics). */
    int pipe(const GuestPtr &fds, u32 flags = 0);
    s64 dup(int fd);
    s64 getpid();
    int kill(u64 pid, int sig);
    s64 getcwd(const GuestPtr &buf, u64 len);
    s64 select(int nfds, const GuestPtr &rd, const GuestPtr &wr,
               const GuestPtr &ex, const GuestPtr &timeout);
    /// @}

    /** Copy a host string into fresh guest memory (for syscalls that
     *  take paths); reuses an internal scratch mapping. */
    GuestPtr stageString(const std::string &s);

    /** Host-side convenience: read a NUL-terminated guest string. */
    std::string readString(const GuestPtr &p, u64 max = 4096);

  private:
    /** The capability actually checked for an access through @p p. */
    const Capability &authorityFor(const GuestPtr &p) const;

    Kernel &kern;
    Process &_proc;
    GuestPtr scratch;
    u64 scratchSize = 0;
};

/**
 * A guest function frame: bump-allocates automatic variables from the
 * stack capability and derives a *bounded* capability for each (the
 * compiler-generated CSetBounds of the paper's "Automatic references").
 * Restores the stack pointer on destruction.
 */
class StackFrame
{
  public:
    /**
     * @param frame_bytes total frame size to reserve
     * @param n_bounded_locals address-taken locals (prologue cost)
     * @param n_args arguments (variadic spill cost)
     * @param variadic whether the callee is variadic
     */
    StackFrame(GuestContext &ctx, u64 frame_bytes,
               u64 n_bounded_locals = 0, u64 n_args = 0,
               bool variadic = false);
    ~StackFrame();

    StackFrame(const StackFrame &) = delete;
    StackFrame &operator=(const StackFrame &) = delete;

    /** Allocate @p size bytes in the frame; returns a bounded pointer. */
    GuestPtr alloc(u64 size, u64 align = 16);

  private:
    GuestContext &ctx;
    Capability savedStack;
    u64 bumpAddr;
    u64 frameBase;
};

/**
 * Run @p fn as the body of @p ctx's process.  Capability traps become
 * SIG_PROT: delivered to a registered handler if any (the guest function
 * is still unwound), fatal otherwise.  Returns the process exit status
 * (fn's return value on a clean run, 128+signal on death).
 */
int runGuest(GuestContext &ctx, const std::function<int(GuestContext &)> &fn);

} // namespace cheri

#endif // CHERI_GUEST_CONTEXT_H
