# Empty dependencies file for cheri_bodiag.
# This may be replaced when dependencies are built.
