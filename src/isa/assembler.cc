#include "isa/assembler.h"

#include <stdexcept>

#include "mem/access.h"

namespace cheri::isa
{

Assembler &
Assembler::label(const std::string &name)
{
    if (labels.count(name))
        throw std::runtime_error("assembler: duplicate label " + name);
    labels[name] = insns.size();
    return *this;
}

std::vector<u64>
Assembler::assemble() const
{
    std::vector<u64> image;
    image.reserve(insns.size());
    for (size_t i = 0; i < insns.size(); ++i) {
        Insn insn = insns[i];
        const std::string &target = branchLabels[i];
        if (!target.empty()) {
            auto it = labels.find(target);
            if (it == labels.end()) {
                throw std::runtime_error("assembler: undefined label " +
                                         target);
            }
            // Branch immediates are instruction offsets relative to
            // the *next* instruction.
            insn.imm = static_cast<s64>(it->second) -
                       static_cast<s64>(i) - 1;
        }
        image.push_back(insn.encode());
    }
    return image;
}

u64
Assembler::writeTo(AddressSpace &as, u64 va) const
{
    std::vector<u64> image = assemble();
    u64 bytes = image.size() * insnSize;
    // Routed through a transient MemAccess so even image loading goes
    // down the unified access path (and bumps fetch generations on any
    // listener attached to @p as).
    MemAccess mem(as);
    CapCheck fault = mem.write(va, image.data(), bytes);
    if (fault.has_value())
        throw std::runtime_error("assembler: image does not fit at va");
    return bytes;
}

} // namespace cheri::isa
