/**
 * @file
 * ptrace: debugging across principals.
 *
 * The debugger and target are distinct abstract principals; their
 * capabilities must not flow between them (paper section 3,
 * "Debugging").  The debugger may *inspect* target capabilities, and
 * may *inject* capabilities — but injected capabilities are rederived
 * from the target's own root, never transplanted from the debugger's
 * address space, and rederivation fails closed when the requested
 * pattern exceeds the target root's authority.
 */

#include "os/kernel.h"

#include <algorithm>

namespace cheri
{

namespace
{

bool
isAttached(const std::vector<std::pair<u64, u64>> &attached, u64 debugger,
           u64 target)
{
    return std::find(attached.begin(), attached.end(),
                     std::make_pair(debugger, target)) != attached.end();
}

} // namespace

SysResult
Kernel::sysPtrace(Process &debugger, PtReq req, u64 pid, u64 addr,
                  void *host_buf, u64 len)
{
    chargeSyscall(debugger, 1);
    Process *target = findProcess(pid);
    if (!target)
        return SysResult::fail(E_SRCH);
    switch (req) {
      case PtReq::Attach:
        if (isAttached(attached, debugger.pid(), pid))
            return SysResult::fail(E_BUSY);
        attached.emplace_back(debugger.pid(), pid);
        return SysResult::ok();
      case PtReq::Detach:
        std::erase(attached, std::make_pair(debugger.pid(), pid));
        return SysResult::ok();
      case PtReq::ReadData: {
        if (!isAttached(attached, debugger.pid(), pid))
            return SysResult::fail(E_PERM);
        CapCheck f = target->mem().read(addr, host_buf, len);
        return f.has_value() ? SysResult::fail(E_FAULT) : SysResult::ok(len);
      }
      case PtReq::WriteData: {
        if (!isAttached(attached, debugger.pid(), pid))
            return SysResult::fail(E_PERM);
        // Byte writes clear tags in the target — a debugger poking raw
        // data can never fabricate a capability.
        CapCheck f = target->mem().write(addr, host_buf, len);
        return f.has_value() ? SysResult::fail(E_FAULT) : SysResult::ok(len);
      }
      default:
        return SysResult::fail(E_INVAL);
    }
}

SysResult
Kernel::ptraceReadCap(Process &debugger, u64 pid, u64 addr,
                      Capability *out)
{
    chargeSyscall(debugger, 1);
    Process *target = findProcess(pid);
    if (!target)
        return SysResult::fail(E_SRCH);
    if (!isAttached(attached, debugger.pid(), pid))
        return SysResult::fail(E_PERM);
    Result<Capability> r = target->mem().readCap(addr);
    if (!r.ok())
        return SysResult::fail(E_FAULT);
    // The debugger sees the capability's value (bounds, perms, tag) but
    // receives it as *data*: nothing it holds can dereference target
    // memory directly.
    *out = r.value();
    return SysResult::ok();
}

SysResult
Kernel::ptraceWriteCap(Process &debugger, u64 pid, u64 addr,
                       const Capability &cap)
{
    chargeSyscall(debugger, 1);
    Process *target = findProcess(pid);
    if (!target)
        return SysResult::fail(E_SRCH);
    if (!isAttached(attached, debugger.pid(), pid))
        return SysResult::fail(E_PERM);
    // Injection rederives from the target's root: the debugger's own
    // capabilities never cross the principal boundary.
    Result<Capability> injected =
        Capability::build(target->as().rederivationRoot(),
                          cap.withoutTag());
    if (!injected.ok())
        return SysResult::fail(E_PROT);
    CapCheck f = target->mem().writeCap(addr, injected.value());
    if (f.has_value())
        return SysResult::fail(E_FAULT);
    if (traceSink)
        traceSink->derive(DeriveSource::Kern, injected.value());
    return SysResult::ok();
}

SysResult
Kernel::ptraceGetRegs(Process &debugger, u64 pid, ThreadRegs *out)
{
    chargeSyscall(debugger, 1);
    Process *target = findProcess(pid);
    if (!target)
        return SysResult::fail(E_SRCH);
    if (!isAttached(attached, debugger.pid(), pid))
        return SysResult::fail(E_PERM);
    *out = target->regs();
    return SysResult::ok();
}

} // namespace cheri
