file(REMOVE_RECURSE
  "libcheri_apps.a"
)
