file(REMOVE_RECURSE
  "libcheri_trace.a"
)
