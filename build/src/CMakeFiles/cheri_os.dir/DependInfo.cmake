
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/coredump.cc" "src/CMakeFiles/cheri_os.dir/os/coredump.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/coredump.cc.o.d"
  "/root/repo/src/os/events.cc" "src/CMakeFiles/cheri_os.dir/os/events.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/events.cc.o.d"
  "/root/repo/src/os/exec.cc" "src/CMakeFiles/cheri_os.dir/os/exec.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/exec.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/CMakeFiles/cheri_os.dir/os/kernel.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/kernel.cc.o.d"
  "/root/repo/src/os/process.cc" "src/CMakeFiles/cheri_os.dir/os/process.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/process.cc.o.d"
  "/root/repo/src/os/ptrace.cc" "src/CMakeFiles/cheri_os.dir/os/ptrace.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/ptrace.cc.o.d"
  "/root/repo/src/os/signal_delivery.cc" "src/CMakeFiles/cheri_os.dir/os/signal_delivery.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/signal_delivery.cc.o.d"
  "/root/repo/src/os/syscalls_fd.cc" "src/CMakeFiles/cheri_os.dir/os/syscalls_fd.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/syscalls_fd.cc.o.d"
  "/root/repo/src/os/syscalls_vm.cc" "src/CMakeFiles/cheri_os.dir/os/syscalls_vm.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/syscalls_vm.cc.o.d"
  "/root/repo/src/os/threads.cc" "src/CMakeFiles/cheri_os.dir/os/threads.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/threads.cc.o.d"
  "/root/repo/src/os/vfs.cc" "src/CMakeFiles/cheri_os.dir/os/vfs.cc.o" "gcc" "src/CMakeFiles/cheri_os.dir/os/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cheri_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cheri_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cheri_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cheri_rtld.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
