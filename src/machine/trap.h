/**
 * @file
 * Capability trap delivery.
 *
 * When guest code violates capability semantics, the hardware raises an
 * exception which the kernel turns into a SIG_PROT-style signal.  Guest
 * workloads in this reproduction are C++ code, so the trap travels as a
 * C++ exception up to the process runner, which records the fault as the
 * process's cause of death (or dispatches a registered signal handler).
 */

#ifndef CHERI_MACHINE_TRAP_H
#define CHERI_MACHINE_TRAP_H

#include <stdexcept>
#include <string>

#include "cap/capability.h"
#include "cap/fault.h"

namespace cheri
{

/** A capability (or MMU) fault raised by a guest access. */
class CapTrap : public std::runtime_error
{
  public:
    CapTrap(CapFault fault, u64 addr, const Capability &via,
            std::string what_detail = "")
        : std::runtime_error(std::string(capFaultName(fault)) + " @0x" +
                             toHex(addr) +
                             (what_detail.empty() ? "" : ": ") +
                             what_detail + " via " + via.toString()),
          _fault(fault), _addr(addr), _via(via)
    {
    }

    CapFault fault() const { return _fault; }
    u64 addr() const { return _addr; }
    const Capability &via() const { return _via; }

  private:
    static std::string
    toHex(u64 v)
    {
        static const char digits[] = "0123456789abcdef";
        std::string out;
        do {
            out.insert(out.begin(), digits[v & 15]);
            v >>= 4;
        } while (v);
        return out;
    }

    CapFault _fault;
    u64 _addr;
    Capability _via;
};

} // namespace cheri

#endif // CHERI_MACHINE_TRAP_H
