file(REMOVE_RECURSE
  "CMakeFiles/fig5_granularity.dir/fig5_granularity.cc.o"
  "CMakeFiles/fig5_granularity.dir/fig5_granularity.cc.o.d"
  "fig5_granularity"
  "fig5_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
