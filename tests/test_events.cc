/**
 * @file
 * kevent and ioctl tests: capability-preserving kernel storage of user
 * pointers, interior-pointer ioctls, the under-allocated-buffer bug
 * class, pty behaviour, and kernel-pointer exposure policy.
 */

#include <gtest/gtest.h>

#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

class EventsCheri : public ::testing::Test
{
  protected:
    GuestSystem sys{Abi::CheriAbi};
    GuestContext &ctx() { return *sys.ctx; }
    Process &proc() { return *sys.proc; }
    Kernel &kern() { return sys.kern; }
};

TEST_F(EventsCheri, KeventReturnsUdataCapabilityIntact)
{
    int fds[2];
    ASSERT_EQ(kern().sysPipe(proc(), fds).error, E_OK);
    GuestPtr session = ctx().mmap(pageSize); // "session object"
    KEvent reg;
    reg.ident = fds[0];
    reg.filter = KFilter::Read;
    reg.udata = session.cap;
    ASSERT_EQ(kern().sysKevent(proc(), {reg}, nullptr, 0).error, E_OK);

    // Make the pipe readable, then harvest.
    GuestPtr b = ctx().mmap(64);
    ctx().store<u8>(b, 0, 1);
    ASSERT_EQ(ctx().write(fds[1], b, 1), 1);
    std::vector<KEvent> events;
    SysResult r = kern().sysKevent(proc(), {}, &events, 8);
    ASSERT_EQ(r.error, E_OK);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].ident, fds[0]);
    // The pointer the kernel held comes back tagged and fully bounded:
    // kernel structures store capabilities (paper section 4).
    EXPECT_TRUE(events[0].udata.tag());
    EXPECT_EQ(events[0].udata, session.cap);
}

TEST_F(EventsCheri, KeventOnBadFdFails)
{
    KEvent reg;
    reg.ident = 123;
    EXPECT_EQ(kern().sysKevent(proc(), {reg}, nullptr, 0).error, E_BADF);
}

TEST_F(EventsCheri, UserFilterAlwaysFires)
{
    KEvent reg;
    reg.ident = 0;
    reg.filter = KFilter::User;
    std::vector<KEvent> events;
    ASSERT_EQ(kern().sysKevent(proc(), {reg}, &events, 8).error, E_OK);
    EXPECT_EQ(events.size(), 1u);
}

TEST_F(EventsCheri, IoctlFlatStructOnPty)
{
    auto [master, slave] = Vfs::makePty();
    auto of = std::make_shared<OpenFile>();
    of->node = slave;
    of->flags = O_RDWR;
    int fd = proc().allocFd(of);
    GuestPtr arg = ctx().mmap(pageSize);
    EXPECT_EQ(kern().sysIoctl(proc(), fd, TIOCGETA_SIM,
                              ctx().toUser(arg))
                  .error,
              E_OK);
    EXPECT_EQ(ctx().load<u8>(arg), 1);
    // Not a tty:
    s64 file_fd = ctx().open("/tmp/notatty", O_RDWR | O_CREAT);
    EXPECT_EQ(kern().sysIoctl(proc(), static_cast<int>(file_fd),
                              TIOCGETA_SIM, ctx().toUser(arg))
                  .error,
              E_NOTTY);
}

TEST_F(EventsCheri, IoctlInteriorPointerFollowed)
{
    auto [master, slave] = Vfs::makePty();
    auto of = std::make_shared<OpenFile>();
    of->node = slave;
    of->flags = O_RDWR;
    int fd = proc().allocFd(of);
    // struct { u64 len; pad; cap buf } with an adequate buffer.
    GuestPtr arg = ctx().mmap(pageSize);
    GuestPtr name_buf = ctx().mmap(64);
    ctx().store<u64>(arg, 0, 64);
    ctx().storePtr(arg, 16, name_buf);
    ASSERT_EQ(kern().sysIoctl(proc(), fd, FIODGNAME_SIM,
                              ctx().toUser(arg))
                  .error,
              E_OK);
    EXPECT_EQ(ctx().readString(name_buf), "pty:s");
}

TEST_F(EventsCheri, IoctlUnderallocatedBufferCaught)
{
    // The FreeBSD DHCP-client bug: the length field *claims* more than
    // the buffer capability actually covers.  mips64 kernels overwrote
    // adjacent memory; CheriABI returns EPROT from the kernel's
    // copyout through the interior capability.
    auto [master, slave] = Vfs::makePty();
    auto of = std::make_shared<OpenFile>();
    of->node = slave;
    of->flags = O_RDWR;
    int fd = proc().allocFd(of);
    GuestPtr arg = ctx().mmap(pageSize);
    GuestPtr big = ctx().mmap(64);
    auto tiny = big.cap.setBounds(2); // under-allocated!
    ctx().store<u64>(arg, 0, 64);     // claims 64 bytes
    ctx().storePtr(arg, 16, GuestPtr{tiny.value()});
    EXPECT_EQ(kern().sysIoctl(proc(), fd, FIODGNAME_SIM,
                              ctx().toUser(arg))
                  .error,
              E_PROT);
}

TEST_F(EventsCheri, IoctlKernelPointerExposedAsAddressOnly)
{
    s64 fd = ctx().open("/tmp/obj", O_RDWR | O_CREAT);
    GuestPtr out = ctx().mmap(pageSize);
    ASSERT_EQ(kern().sysIoctl(proc(), static_cast<int>(fd),
                              KINFO_ADDR_SIM, ctx().toUser(out))
                  .error,
              E_OK);
    u64 kva = ctx().load<u64>(out);
    EXPECT_GE(kva, 0xC000000000u);
    EXPECT_FALSE(ctx().loadPtr(out, 0).cap.tag())
        << "no kernel capability may leak to userspace";
}

TEST_F(EventsCheri, PtyEchoPath)
{
    // Figure 3's scenario: a buffer capability travels through the
    // file-descriptor layer into the pseudo-terminal.
    auto [master, slave] = Vfs::makePty();
    auto mof = std::make_shared<OpenFile>();
    mof->node = master;
    mof->flags = O_RDWR;
    auto sof = std::make_shared<OpenFile>();
    sof->node = slave;
    sof->flags = O_RDWR;
    int mfd = proc().allocFd(mof);
    int sfd = proc().allocFd(sof);
    GuestPtr buf = ctx().mmap(pageSize);
    const char line[] = "echo me\n";
    ctx().write(buf, line, sizeof(line) - 1);
    ASSERT_EQ(ctx().write(mfd, buf, sizeof(line) - 1),
              static_cast<s64>(sizeof(line) - 1));
    GuestPtr rbuf = ctx().mmap(pageSize);
    ASSERT_EQ(ctx().read(sfd, rbuf, 64),
              static_cast<s64>(sizeof(line) - 1));
    EXPECT_EQ(ctx().readString(rbuf).substr(0, 7), "echo me");
}

// Legacy ABI comparison: the under-allocated ioctl goes *undetected*.
TEST(EventsMips, IoctlUnderallocatedBufferUndetected)
{
    GuestSystem sys(Abi::Mips64);
    GuestContext &ctx = *sys.ctx;
    auto [master, slave] = Vfs::makePty();
    auto of = std::make_shared<OpenFile>();
    of->node = slave;
    of->flags = O_RDWR;
    int fd = sys.proc->allocFd(of);
    GuestPtr arg = ctx.mmap(pageSize);
    GuestPtr big = ctx.mmap(64);
    // mips64 layout: { u64 len; u64 buf_addr }.  The "2-byte buffer" is
    // a fiction the kernel cannot see.
    ctx.store<u64>(arg, 0, 64);
    ctx.store<u64>(arg, 8, big.addr());
    EXPECT_EQ(sys.kern.sysIoctl(*sys.proc, fd, FIODGNAME_SIM,
                                ctx.toUser(arg))
                  .error,
              E_OK)
        << "legacy kernel happily writes past the intended 2 bytes";
}

} // namespace
} // namespace cheri
