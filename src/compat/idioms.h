/**
 * @file
 * The compatibility corpus: executable C idioms in the paper's Table 2
 * taxonomy.
 *
 * Porting FreeBSD userspace to CheriABI required source changes in
 * eleven categories (paper section 5.3).  Each corpus entry captures
 * one such idiom as *runnable code*: the legacy form (as found in BSD
 * sources) and the CheriABI-clean rewrite.  Running both forms under
 * both ABIs demonstrates — rather than asserts — why the change was
 * needed: the legacy form works under mips64, traps or misbehaves
 * under CheriABI (or at minimum draws a compiler diagnostic), and the
 * fixed form works everywhere.
 */

#ifndef CHERI_COMPAT_IDIOMS_H
#define CHERI_COMPAT_IDIOMS_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "guest/context.h"

namespace cheri::compat
{

/** Table 2 change classes. */
enum class CompatClass
{
    PP, ///< pointer provenance
    IP, ///< integer provenance
    M,  ///< monotonicity
    PS, ///< pointer shape
    I,  ///< pointer as integer
    VA, ///< virtual-address manipulation
    BF, ///< bit flags in pointers
    H,  ///< hashing virtual addresses
    A,  ///< pointer alignment adjustment
    CC, ///< calling convention
    U,  ///< unsupported
};

/** Where in the source tree the change landed (Table 2 rows). */
enum class Component
{
    Headers,
    Libraries,
    Programs,
    Tests,
};

constexpr unsigned numCompatClasses = 11;
constexpr unsigned numComponents = 4;

const char *compatClassName(CompatClass c);
const char *componentName(Component c);

/** An idiom scenario returns true when it behaved correctly. */
using Scenario = std::function<bool(GuestContext &)>;

struct Idiom
{
    std::string name;
    Component component = Component::Libraries;
    CompatClass cls = CompatClass::PP;
    /** The code as found in the legacy source tree. */
    Scenario legacy;
    /** The CheriABI-clean rewrite. */
    Scenario fixed;
    /**
     * Whether the legacy form actually faults under CheriABI.  Some
     * classes (hashing, sentinels) keep working but still required
     * source changes flagged by the compiler; those set this false.
     */
    bool legacyTrapsUnderCheri = true;
};

/** Result of exercising one idiom under both ABIs. */
struct IdiomResult
{
    const Idiom *idiom = nullptr;
    bool legacyOkMips = false;
    bool legacyOkCheri = false;
    bool fixedOkCheri = false;
    bool fixedOkMips = false;

    /** The idiom behaved exactly as the taxonomy predicts. */
    bool
    consistent() const
    {
        return legacyOkMips && fixedOkCheri && fixedOkMips &&
               (legacyOkCheri == !idiom->legacyTrapsUnderCheri);
    }
};

/** The full corpus. */
const std::vector<Idiom> &corpus();

/** Run every idiom under both ABIs. */
std::vector<IdiomResult> runCorpus();

/** Table 2: change counts per component and class. */
using CompatTable = std::map<Component, std::map<CompatClass, unsigned>>;
CompatTable tabulate(const std::vector<IdiomResult> &results);

/** Render the table like the paper's Table 2. */
std::string formatTable(const CompatTable &table);

} // namespace cheri::compat

#endif // CHERI_COMPAT_IDIOMS_H
