/**
 * @file
 * Tagged physical memory.
 *
 * CHERI adds one out-of-band tag bit per capability-sized, capability-
 * aligned granule of physical memory, distinguishing valid capabilities
 * from plain data.  Data writes to a granule clear its tag; only the
 * dedicated capability store can set it.  This file models physical
 * frames carrying those tags, plus the frame allocator.
 *
 * Modeling note: real hardware recovers a capability's bounds from its
 * 128-bit compressed pattern.  Our 16-byte pattern keeps only the cursor
 * architecturally visible; the full decoded capability for each *tagged*
 * granule is kept in a per-frame side structure.  This is observationally
 * equivalent: untagged patterns never decode to dereferenceable
 * capabilities, any byte store invalidates the granule's tag, and tagged
 * loads return exactly the capability that was stored.
 */

#ifndef CHERI_MEM_PHYS_MEM_H
#define CHERI_MEM_PHYS_MEM_H

#include <array>
#include <bitset>
#include <cstring>
#include <memory>

#include "cap/capability.h"
#include "cap/types.h"

namespace cheri
{

/** Page size used throughout the system. */
constexpr u64 pageSize = 4096;
constexpr u64 pageMask = pageSize - 1;

/** Capability granules per page. */
constexpr u64 granulesPerPage = pageSize / capSize;

/** Round @p v down / up to a page boundary. */
constexpr u64 pageTrunc(u64 v) { return v & ~pageMask; }
constexpr u64 pageRound(u64 v) { return (v + pageMask) & ~pageMask; }

/**
 * One physical page: 4 KiB of data, one tag bit per 16-byte granule, and
 * the decoded capability for each tagged granule.
 */
class Frame
{
  public:
    Frame() { data.fill(0); }

    /** Copy @p other including tags (used for COW and fork). */
    void copyFrom(const Frame &other);

    /** Read bytes; never affects tags. */
    void read(u64 off, void *buf, u64 len) const;

    /** Write bytes, clearing the tag of every granule touched. */
    void write(u64 off, const void *buf, u64 len);

    /** Zero the page and clear all tags. */
    void clear();

    /**
     * Load the capability at granule-aligned @p off.  Tagged granules
     * return the stored capability; untagged ones decode the raw bytes
     * into an untagged (data-only) capability.
     */
    Capability readCap(u64 off) const;

    /** Store a capability at granule-aligned @p off, setting the tag iff
     *  the capability is tagged. */
    void writeCap(u64 off, const Capability &cap);

    /** Tag bit of the granule containing @p off. */
    bool tagAt(u64 off) const { return tags.test(off / capSize); }

    /** Clear the tag of the granule containing @p off. */
    void clearTagAt(u64 off) { tags.reset(off / capSize); }

    /** Number of tagged granules in the page. */
    u64 taggedCount() const { return tags.count(); }

    /** Raw data access for swap and checkpointing. */
    const std::array<u8, pageSize> &bytes() const { return data; }

    /** Visit every tagged granule as (offset, capability). */
    template <typename Fn>
    void
    forEachTagged(Fn &&fn) const
    {
        for (u64 g = 0; g < granulesPerPage; ++g) {
            if (tags.test(g))
                fn(g * capSize, caps[g]);
        }
    }

  private:
    std::array<u8, pageSize> data;
    std::bitset<granulesPerPage> tags;
    std::array<Capability, granulesPerPage> caps;
};

using FrameRef = std::shared_ptr<Frame>;

/**
 * Frame allocator with simple accounting.  Frames are reference counted:
 * copy-on-write and shared mappings alias the same Frame until a write
 * forces a copy.
 */
class PhysMem
{
  public:
    /** Allocate a zeroed frame. */
    FrameRef allocFrame();

    /** Frames currently live (allocated and not yet destroyed). */
    u64 liveFrames() const;

    /** Total allocations over the lifetime of the system. */
    u64 totalAllocated() const { return allocated; }

  private:
    u64 allocated = 0;
    std::shared_ptr<u64> live = std::make_shared<u64>(0);
};

} // namespace cheri

#endif // CHERI_MEM_PHYS_MEM_H
