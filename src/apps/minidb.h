/**
 * @file
 * MiniPG: the PostgreSQL stand-in.
 *
 * The paper's macro-benchmark is PostgreSQL's `initdb` — "a large
 * real-world workload written in C" that exercises IPC (sockets,
 * shared memory, semaphores), heavy allocation, file creation, and is
 * dynamically linked (section 5.2).  MiniPG reproduces that profile:
 * catalog bootstrap with pointer-dense in-memory tables and hash
 * indexes, sorted system tables, WAL segment initialization through
 * the VFS, System V shared memory with semaphore words, TLS-resident
 * backend state, and GOT-mediated global access in every inner loop
 * (the knob behind the paper's CLC-immediate experiment).
 *
 * It also carries a pg_regress-style regression suite (167 tests,
 * like PostgreSQL 9.6's) whose CheriABI failures arise from the same
 * causes the paper reports: pointer-size/output-order assumptions,
 * one under-aligned pointer, and a handful of result differences.
 */

#ifndef CHERI_APPS_MINIDB_H
#define CHERI_APPS_MINIDB_H

#include <string>
#include <vector>

#include "apps/workloads.h"

namespace cheri::apps
{

/** Counters from one initdb run. */
struct InitdbResult
{
    u64 instructions = 0;
    u64 cycles = 0;
    u64 l2Misses = 0;
    u64 codeBytes = 0;
    u64 filesCreated = 0;
    u64 catalogRows = 0;
};

/**
 * Run initdb in a fresh dynamically linked process.
 * @param asan run under the AddressSanitizer cost model
 */
InitdbResult runInitdb(Abi abi, MachineFeatures features = {},
                       bool asan = false);

/** pg_regress outcome counts (Table 1 row). */
struct RegressTotals
{
    int pass = 0;
    int fail = 0;
    int skip = 0;

    int total() const { return pass + fail + skip; }
};

/** One regression test's identity and outcome. */
struct RegressCase
{
    std::string name;
    enum class Outcome
    {
        Pass,
        Fail,
        Skip,
    } outcome;
    std::string detail;
};

/** Run the 167-test regression suite under @p abi. */
RegressTotals runPgRegress(Abi abi,
                           std::vector<RegressCase> *cases = nullptr);

} // namespace cheri::apps

#endif // CHERI_APPS_MINIDB_H
