/**
 * @file
 * The CHERI-aware run-time linker (RTLD).
 *
 * Loads a SELF program and its shared libraries into a process image,
 * then performs the dynamic relocations that distinguish CheriABI from
 * classic dynamic linking:
 *
 *  - each GOT slot for a *global variable* receives a capability bounded
 *    to exactly that variable's size;
 *  - each GOT slot for a *function* receives an executable capability
 *    bounded to the defining shared object (wide enough for PC-relative
 *    addressing and intra-object branches);
 *  - in-data pointer initializers are re-minted at startup, because
 *    tags do not survive on disk (the overhead the paper compares to
 *    position-independent binaries).
 *
 * Under the legacy mips64 ABI the same slots are filled with plain
 * 64-bit virtual addresses.
 *
 * The linker runs in userspace: it touches the process only through the
 * LinkerEnv interface (mmap-backed mappings and checked stores).
 */

#ifndef CHERI_RTLD_RTLD_H
#define CHERI_RTLD_RTLD_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cap/capability.h"
#include "machine/cost_model.h"
#include "mem/vm.h"
#include "rtld/self_format.h"
#include "trace/trace.h"

namespace cheri
{

/** Services the linker needs from the process/kernel it runs in. */
class LinkerEnv
{
  public:
    virtual ~LinkerEnv() = default;

    /** Which ABI the process uses (decides GOT entry width). */
    virtual Abi abi() const = 0;

    /**
     * Map @p len bytes with @p prot; returns the mmap capability
     * (CheriABI) or an untagged address capability (mips64).
     */
    virtual Capability mapPages(u64 len, u32 prot,
                                const std::string &name) = 0;

    /** Store bytes into the process image. */
    virtual void storeBytes(u64 va, const void *buf, u64 len) = 0;

    /** Store a capability (or, under mips64, its 8-byte address). */
    virtual void storePointer(u64 va, const Capability &cap) = 0;

    /** Optional derivation trace sink. */
    virtual TraceSink *trace() const { return nullptr; }

    /** Optional cost model charged for relocation work. */
    virtual CostModel *cost() const { return nullptr; }
};

/** A SELF object as mapped into a process. */
struct LinkedObject
{
    const SelfObject *object = nullptr;
    /** Capability over the text mapping (PCC source). */
    Capability textCap;
    /** Capability over rodata. */
    Capability rodataCap;
    /** Capability over data+bss. */
    Capability dataCap;
    /** Capability over this object's GOT. */
    Capability gotCap;
    u64 textBase = 0;
    u64 rodataBase = 0;
    u64 dataBase = 0;
    u64 gotBase = 0;
    u64 gotSlots = 0;
};

/** A fully linked process image. */
struct LinkedImage
{
    std::vector<LinkedObject> objects; // [0] is the main program

    const LinkedObject *
    find(const std::string &name) const
    {
        for (const auto &o : objects) {
            if (o.object->name == name)
                return &o;
        }
        return nullptr;
    }
};

/**
 * Resolution of one symbol: the exact capability (or address) a GOT
 * slot holds after relocation.
 */
struct ResolvedSymbol
{
    Capability cap;
    const LinkedObject *definingObject = nullptr;
    const SelfSymbol *symbol = nullptr;
};

class Rtld
{
  public:
    /** @param libraries registry of loadable shared objects by name. */
    explicit Rtld(std::map<std::string, const SelfObject *> libraries = {})
        : libs(std::move(libraries))
    {
    }

    void
    registerLibrary(const SelfObject *obj)
    {
        libs[obj->name] = obj;
    }

    /**
     * Load @p program and its transitive dependencies into the process
     * behind @p env, process all relocations, and return the image.
     * Throws std::runtime_error on unresolvable symbols or map failure.
     */
    LinkedImage link(const SelfObject &program, LinkerEnv &env) const;

    /**
     * Look up @p symbol across the image (dlsym analogue), returning
     * the same capability a GOT slot would hold.
     */
    static ResolvedSymbol resolve(const LinkedImage &image,
                                  const std::string &symbol, Abi abi);

  private:
    LinkedObject loadObject(const SelfObject &obj, LinkerEnv &env) const;

    std::map<std::string, const SelfObject *> libs;
};

} // namespace cheri

#endif // CHERI_RTLD_RTLD_H
