/**
 * @file
 * ISA-level comparison: the same copy/checksum kernel expressed with
 * legacy (DDC-relative) loads/stores versus capability-relative ones.
 *
 * The paper's compiler story is that pure-capability code is mostly a
 * 1:1 re-expression of legacy code — CLx/CSx replace Lx/Sx at the same
 * instruction count — with overhead coming from pointer *width*, GOT
 * access, and bounds-setting, not from per-access instruction bloat.
 * This bench verifies the 1:1 property at instruction level and
 * reports interpreter throughput on the host.
 */

#include <chrono>

#include "bench_util.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "obs/metrics.h"
#include "os/kernel.h"
#include "os/sched/sched.h"

using namespace cheri;
using namespace cheri::isa;

namespace
{

struct RunStats
{
    u64 retired = 0;
    u64 simInstr = 0;
    u64 simCycles = 0;
    double hostMips = 0; // host-side interpreted MIPS
};

RunStats
runKernel(Abi abi, bool capability_form, u64 words, obs::Metrics *mx,
          const char *label)
{
    Kernel kern;
    kern.setMetrics(mx); // wires per-ABI TLB counters into spawn
    SelfObject prog;
    prog.name = "isakernel";
    Process *proc = kern.spawn(abi, "isakernel");
    if (kern.execve(*proc, prog, {"isakernel"}, {}) != E_OK)
        throw std::runtime_error("execve failed");
    u64 code = proc->as().map(0, pageSize,
                              PROT_READ | PROT_WRITE | PROT_EXEC,
                              MappingKind::Text);
    u64 src = proc->as().map(0, pageRound(words * 8), PROT_READ | PROT_WRITE,
                             MappingKind::Data);
    u64 dst = proc->as().map(0, pageRound(words * 8), PROT_READ | PROT_WRITE,
                             MappingKind::Data);

    Assembler a;
    if (capability_form) {
        // c1 = src cap, c2 = dst cap (installed below); x3 = counter.
        a.li(3, static_cast<s64>(words))
            .label("loop")
            .cld(4, 1, 0)
            .add(5, 5, 4) // checksum
            .csd(4, 2, 0)
            .cincoffsetimm(1, 1, 8)
            .cincoffsetimm(2, 2, 8)
            .addi(3, 3, -1)
            .bne(3, 0, "loop")
            .halt();
    } else {
        a.li(1, static_cast<s64>(src))
            .li(2, static_cast<s64>(dst))
            .li(3, static_cast<s64>(words))
            .label("loop")
            .ld(4, 1, 0)
            .add(5, 5, 4)
            .sd(4, 2, 0)
            .addi(1, 1, 8)
            .addi(2, 2, 8)
            .addi(3, 3, -1)
            .bne(3, 0, "loop")
            .halt();
    }
    a.writeTo(proc->as(), code);

    // Execute through the kernel scheduler: the persistent context's
    // interpreter (and warm decode cache) is the measured engine.
    sched::Scheduler &s2 = sched::schedulerFor(kern);
    sched::ExecContext &cx = s2.context(*proc);
    Interpreter &interp = *cx.interp;
    if (abi == Abi::CheriAbi) {
        interp.setEntry(proc->as()
                            .capForRange(code, pageSize,
                                         PROT_READ | PROT_EXEC, false)
                            .setAddress(code));
    } else {
        interp.setEntry(Capability::fromAddress(code));
    }
    if (capability_form) {
        interp.regs().c[1] =
            proc->as()
                .capForRange(src, words * 8, PROT_READ | PROT_WRITE,
                             false)
                .setAddress(src);
        interp.regs().c[2] =
            proc->as()
                .capForRange(dst, words * 8, PROT_READ | PROT_WRITE,
                             false)
                .setAddress(dst);
    }
    proc->cost().reset();
    u64 base = interp.retired();
    auto t0 = std::chrono::steady_clock::now();
    cx.stepLimit = 100'000'000;
    s2.ready(cx);
    kern.runUntilIdle();
    auto t1 = std::chrono::steady_clock::now();
    if (cx.last.status != InterpResult::Status::Halted)
        throw std::runtime_error("kernel did not halt");
    RunStats s;
    s.retired = interp.retired() - base;
    s.simInstr = proc->cost().instructions();
    s.simCycles = proc->cost().cycles();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    s.hostMips = secs > 0 ? s.retired / secs / 1e6 : 0;
    if (mx)
        mx->captureCost(label, proc->cost());
    return s;
}

} // namespace

int
main()
{
    const u64 words = 32 * 1024;
    bench::banner("ISA-level kernel: legacy (DDC) vs capability "
                  "addressing");
    obs::Metrics metrics;
    RunStats legacy =
        runKernel(Abi::Mips64, false, words, &metrics, "legacy-copy");
    RunStats capform =
        runKernel(Abi::CheriAbi, true, words, &metrics, "cap-copy");
    std::printf("%-26s %12s %12s %12s %10s\n", "form", "retired",
                "sim-instr", "sim-cycles", "host-MIPS");
    std::printf("%-26s %12lu %12lu %12lu %10.1f\n",
                "mips64 ld/sd via DDC",
                static_cast<unsigned long>(legacy.retired),
                static_cast<unsigned long>(legacy.simInstr),
                static_cast<unsigned long>(legacy.simCycles),
                legacy.hostMips);
    std::printf("%-26s %12lu %12lu %12lu %10.1f\n",
                "cheriabi cld/csd via cap",
                static_cast<unsigned long>(capform.retired),
                static_cast<unsigned long>(capform.simInstr),
                static_cast<unsigned long>(capform.simCycles),
                capform.hostMips);
    double instr_delta =
        (static_cast<double>(capform.retired) -
         static_cast<double>(legacy.retired)) /
        static_cast<double>(legacy.retired) * 100.0;
    std::printf("\nretired-instruction delta: %+.2f%%   "
                "(capability addressing is ~1:1 with legacy;\n"
                "the loop differs only in pointer-increment form)\n",
                instr_delta);
    bench::banner("Instruction mix + cost counters (JSON, "
                  "cheri.metrics.v9)");
    std::printf("%s\n", metrics.toJson().c_str());
    return 0;
}
