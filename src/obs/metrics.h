/**
 * @file
 * The observability registry.
 *
 * One `Metrics` object collects everything the paper's evaluation
 * measures at the kernel/ISA boundary:
 *
 *  - per-syscall call/error counters and simulated-cycle histograms,
 *    keyed by syscall number *and* ABI (the Figure 3/4 axis: overhead
 *    scales with pointer-argument count, and differs per ABI);
 *  - capability-fault telemetry: cause, faulting PC and address, the
 *    syscall in flight, and — when the offending capability was seen
 *    being minted — its `DeriveSource` provenance (the Figure 5
 *    legend), learned by doubling as a `TraceSink`;
 *  - an instruction-mix profiler fed by the interpreter (per-ABI
 *    opcode counts, exposing e.g. the capability-manipulation delta);
 *  - cost-model/cache snapshots from `machine/` (instructions, cycles,
 *    miss counts) labelled by workload.
 *
 * Consumers hold a nullable `Metrics *`; everything costs one branch
 * when disabled.  `toJson()`/`toCsv()` give benches and examples a
 * structured emitter to replace ad-hoc printf tables.
 */

#ifndef CHERI_OBS_METRICS_H
#define CHERI_OBS_METRICS_H

#include <algorithm>
#include <array>
#include <map>
#include <string>
#include <vector>

#include "cap/capability.h"
#include "cap/fault.h"
#include "machine/cost_model.h"
#include "mem/access.h"
#include "os/sched_iface.h"
#include "os/sysnum.h"
#include "trace/trace.h"

namespace cheri::snap
{
struct Access;
}

namespace cheri::obs
{

/** Human-readable ABI name for metric keys and reports. */
constexpr std::string_view
abiName(Abi abi)
{
    switch (abi) {
      case Abi::Mips64: return "mips64";
      case Abi::CheriAbi: return "cheriabi";
      case Abi::Hybrid: return "hybrid";
    }
    return "?";
}

/** Power-of-two bucketed histogram (bucket i covers [2^(i-1), 2^i)). */
struct Histogram
{
    static constexpr unsigned numBuckets = 32;

    std::array<u64, numBuckets> buckets{};
    u64 count = 0;
    u64 sum = 0;
    u64 min = ~u64{0};
    u64 max = 0;

    void record(u64 v);

    /** Bucket index holding value @p v. */
    static unsigned bucketOf(u64 v);

    /** Inclusive lower edge of bucket @p i. */
    static u64 bucketLo(unsigned i);

    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }
};

/** Per-(syscall, ABI) accumulation. */
struct SyscallStats
{
    u64 calls = 0;
    u64 errors = 0;
    Histogram cycles;
};

/** One recorded capability fault. */
struct FaultRecord
{
    CapFault cause = CapFault::None;
    u64 pc = 0;
    u64 addr = 0;
    Abi abi = Abi::Mips64;
    /** Syscall in flight when the fault hit (0 = none). */
    u16 sysnum = 0;
    /** Provenance of the offending capability, when known. */
    DeriveSource provenance = DeriveSource::Temp;
    bool provenanceKnown = false;
};

/** Memory-pressure telemetry fed by the kernel's reclaim path. */
struct PressureCounters
{
    u64 reclaimPasses = 0;  ///< reclaimFrames invocations
    u64 pagesReclaimed = 0; ///< pages swapped out by reclaim passes
    u64 oomKills = 0;       ///< processes killed for memory
    u64 enomemErrors = 0;   ///< syscalls failed with ENOMEM
};

/** Revocation telemetry fed by the kernel's epoch machinery: the
 *  ablation axis is pagesScanned vs pagesSkippedClean (what cap-dirty
 *  tracking saves) and incrementalSlices (how the work is amortized). */
struct RevocationCounters
{
    u64 epochsOpened = 0;
    u64 epochsClosed = 0;
    u64 epochsAborted = 0;   ///< torn down by exit/execve/OOM kill
    u64 pagesScanned = 0;
    u64 pagesSkippedClean = 0; ///< content pages skipped as cap-clean
    u64 granulesVisited = 0;
    u64 tagsRevoked = 0;
    u64 incrementalSlices = 0;
    u64 syncSweeps = 0;
    u64 cyclesInEpochs = 0; ///< modelled cycles open-to-close
};

/** Scheduler telemetry fed by the execution engine (src/os/sched):
 *  field-for-field mirror of cheri::SchedStats, cross-checked by the
 *  oracle's metrics-sched-mirror rule, exported in the "sched" section
 *  of the v6 schema along with per-thread step counters and the
 *  decode-cache hit rate. */
struct SchedCounters
{
    u64 contextSwitches = 0;
    u64 preemptions = 0;
    u64 slices = 0;
    u64 blocksWait4 = 0;
    u64 blocksEvent = 0;
    u64 blocksSleep = 0;
    u64 blocksFd = 0;
    u64 wakes = 0;
    u64 maxRunQueueDepth = 0;
    u64 idleAdvances = 0;
    u64 stepsExecuted = 0;
};

/** Blocking FD I/O telemetry fed by the kernel's pipe/pty/select
 *  paths: field-for-field mirror of cheri::Kernel::FdIoStats,
 *  cross-checked by the oracle's metrics-fd-mirror rule, exported in
 *  the "fd" section of the v7 schema. */
struct FdCounters
{
    u64 blocks = 0;         ///< reads/writes/selects parked on a channel
    u64 wakes = 0;          ///< contexts woken by channel edges
    u64 eagainErrors = 0;   ///< would-block reported (O_NONBLOCK/hosted)
    u64 epipeErrors = 0;    ///< writes that hit a broken pipe
    u64 partialWrites = 0;  ///< writes short of len into a filling pipe
    u64 selectTimeouts = 0; ///< selects that returned via the deadline
};

/** Snapshot/replay telemetry (src/os/snapshot + src/check/replay):
 *  checkpoint traffic and replay-oracle outcomes, exported in the
 *  "snapshot" section of the v8 schema. */
struct SnapshotCounters
{
    u64 snapshotsTaken = 0;    ///< successful snap::save calls
    u64 snapshotBytes = 0;     ///< bytes across all images written
    u64 restores = 0;          ///< successful snap::restore calls
    u64 restoreFailures = 0;   ///< rejected images (corrupt/truncated)
    u64 records = 0;           ///< record-mode replay sessions finished
    u64 replays = 0;           ///< replay-mode sessions finished
    u64 replayDivergences = 0; ///< ReplayOracle divergences reported
    u64 logEntries = 0;        ///< replay-log entries written or read
};

/** Kernel-hardening telemetry (structured panic, deadlock watchdog,
 *  machine-check degradation): field-for-field mirror of
 *  cheri::Kernel::HardeningStats, cross-checked by the oracle's
 *  metrics-hardening-mirror rule, exported in the "hardening" section
 *  of the v9 schema. */
struct HardeningCounters
{
    u64 panics = 0;            ///< structured kernel panics captured
    u64 deadlocksDetected = 0; ///< watchdog scans with a stuck set
    u64 deadlocksKilled = 0;   ///< victims killed to break deadlocks
    u64 machineChecks = 0;     ///< corruption degraded to MachineCheck
};

/** Checking-layer telemetry (src/check): oracle runs and fuzzer
 *  progress, exported in the "check" section of the v4 schema. */
struct CheckCounters
{
    u64 oracleRuns = 0;       ///< Invariants::check invocations
    u64 oracleViolations = 0; ///< violations across all runs
    u64 fuzzCases = 0;        ///< differential cases executed
    u64 fuzzDivergences = 0;  ///< cases whose ABI runs diverged
};

/** Labelled snapshot of a process's cost model and cache counters. */
struct CostSnapshot
{
    std::string label;
    Abi abi = Abi::Mips64;
    u64 instructions = 0;
    u64 cycles = 0;
    u64 l1dMisses = 0;
    u64 l2Misses = 0;
    u64 codeBytes = 0;
    u64 itlbMisses = 0;
    u64 dtlbMisses = 0;
};

class Metrics : public TraceSink
{
  public:
    /** Upper bound on distinct opcodes tracked by the mix profiler. */
    static constexpr unsigned maxOps = 64;

    /** @name Syscall layer (fed by Kernel::dispatch) */
    /// @{
    void recordSyscall(u64 num, Abi abi, u64 cycles, bool failed);

    /** Mark/clear the syscall currently executing, so faults raised
     *  while the kernel runs on the user's behalf are attributed. */
    void setCurrentSyscall(u64 num) { currentSys = num; }
    void clearCurrentSyscall() { currentSys = 0; }

    const SyscallStats &syscall(u64 num, Abi abi) const;
    /// @}

    /** @name Capability-fault telemetry */
    /// @{
    /** Record a fault; @p via (nullable) is the offending capability,
     *  matched against derivation history for provenance. */
    void recordFault(CapFault cause, u64 pc, u64 addr,
                     const Capability *via, Abi abi);

    const std::vector<FaultRecord> &faults() const { return _faults; }
    u64 faultCount(CapFault cause) const;
    /// @}

    /** @name Instruction-mix profiler (fed by Interpreter::step) */
    /// @{
    void
    countInsn(unsigned op, Abi abi)
    {
        if (op < maxOps)
            ++insnMix[abiIndex(abi)][op];
    }

    u64
    insnCount(unsigned op, Abi abi) const
    {
        return op < maxOps ? insnMix[abiIndex(abi)][op] : 0;
    }

    /** Resolver from opcode index to mnemonic, for the emitters
     *  (installed by the interpreter; obs does not link the ISA). */
    using OpNamer = std::string_view (*)(unsigned);
    void setOpNamer(OpNamer fn) { opNamer = fn; }
    /// @}

    /** @name Software-TLB counters (fed by MemAccess)
     * Each ABI gets one raw counter block indexed by TlbCounter; the
     * kernel hands the block pointer to every process's MemAccess so
     * the hot path increments directly, with no virtual call.
     */
    /// @{
    u64 *tlbCounterBlock(Abi abi) { return tlb[abiIndex(abi)].data(); }
    u64
    tlbCounter(Abi abi, TlbCounter c) const
    {
        return tlb[abiIndex(abi)][c];
    }
    /// @}

    /** @name Memory-pressure telemetry (fed by the kernel) */
    /// @{
    void
    recordReclaim(u64 pages)
    {
        ++mem.reclaimPasses;
        mem.pagesReclaimed += pages;
    }
    void recordOomKill() { ++mem.oomKills; }
    void recordEnomem() { ++mem.enomemErrors; }
    const PressureCounters &pressure() const { return mem; }
    /// @}

    /** @name Revocation telemetry (fed by the kernel's epoch machinery) */
    /// @{
    void
    recordRevokeEpochOpened(u64 skipped_clean)
    {
        ++rev.epochsOpened;
        rev.pagesSkippedClean += skipped_clean;
    }
    void
    recordRevokeSlice(u64 pages, u64 granules, u64 revoked,
                      bool incremental)
    {
        rev.pagesScanned += pages;
        rev.granulesVisited += granules;
        rev.tagsRevoked += revoked;
        if (incremental)
            ++rev.incrementalSlices;
    }
    void
    recordRevokeEpochClosed(u64 root_revoked, u64 cycles)
    {
        ++rev.epochsClosed;
        rev.tagsRevoked += root_revoked;
        rev.cyclesInEpochs += cycles;
    }
    void recordRevokeEpochAborted() { ++rev.epochsAborted; }
    void recordRevokeSync() { ++rev.syncSweeps; }
    const RevocationCounters &revocation() const { return rev; }
    /// @}

    /** @name Scheduler telemetry (fed by src/os/sched) */
    /// @{
    void recordSchedSwitch() { ++schd.contextSwitches; }
    void recordSchedPreempt() { ++schd.preemptions; }
    void
    recordSchedSlice(u64 steps)
    {
        ++schd.slices;
        schd.stepsExecuted += steps;
    }
    void
    recordSchedBlock(BlockKind kind)
    {
        switch (kind) {
          case BlockKind::Wait4:
            ++schd.blocksWait4;
            break;
          case BlockKind::EventWait:
            ++schd.blocksEvent;
            break;
          case BlockKind::Sleep:
            ++schd.blocksSleep;
            break;
          case BlockKind::Fd:
            ++schd.blocksFd;
            break;
          case BlockKind::None:
            break;
        }
    }
    void recordSchedWake() { ++schd.wakes; }
    void recordSchedIdleAdvance() { ++schd.idleAdvances; }
    void
    noteRunQueueDepth(u64 depth)
    {
        schd.maxRunQueueDepth = std::max(schd.maxRunQueueDepth, depth);
    }
    /** Accumulate retired steps against (pid, tid). */
    void recordThreadSteps(u64 pid, u64 tid, u64 steps)
    {
        if (steps)
            _threadSteps[{pid, tid}] += steps;
    }
    const SchedCounters &sched() const { return schd; }
    /// @}

    /** @name Blocking FD I/O telemetry (fed by the kernel FD layer) */
    /// @{
    void recordFdBlock() { ++fdio.blocks; }
    void recordFdWake(u64 n) { fdio.wakes += n; }
    void recordFdEagain() { ++fdio.eagainErrors; }
    void recordFdEpipe() { ++fdio.epipeErrors; }
    void recordFdPartialWrite() { ++fdio.partialWrites; }
    void recordFdSelectTimeout() { ++fdio.selectTimeouts; }
    const FdCounters &fd() const { return fdio; }
    const std::map<std::pair<u64, u64>, u64> &threadSteps() const
    {
        return _threadSteps;
    }
    /// @}

    /** @name Kernel-hardening telemetry (fed by the kernel's panic,
     *  watchdog, and machine-check paths) */
    /// @{
    void recordKernelPanic() { ++hard.panics; }
    void recordDeadlockDetected() { ++hard.deadlocksDetected; }
    void recordDeadlockKill() { ++hard.deadlocksKilled; }
    void recordMachineCheck() { ++hard.machineChecks; }
    const HardeningCounters &hardening() const { return hard; }
    /** Panic reset: reset() zeroed the registry to mirror the rebuilt
     *  (empty) kernel, but the hardening counters deliberately survive
     *  the kernel's transactional reset — re-seed them to match. */
    void
    seedHardening(u64 panics, u64 detected, u64 killed, u64 mchecks)
    {
        hard.panics = panics;
        hard.deadlocksDetected = detected;
        hard.deadlocksKilled = killed;
        hard.machineChecks = mchecks;
    }
    /// @}

    /** @name Checking-layer telemetry (fed by src/check) */
    /// @{
    void
    recordOracleRun(u64 violations)
    {
        ++chk.oracleRuns;
        chk.oracleViolations += violations;
    }
    void
    recordFuzzCase(bool diverged)
    {
        ++chk.fuzzCases;
        if (diverged)
            ++chk.fuzzDivergences;
    }
    const CheckCounters &check() const { return chk; }
    /// @}

    /** @name Snapshot/replay telemetry (fed by snap::save/restore and
     *  check::ReplaySession) */
    /// @{
    void
    recordSnapshot(u64 bytes)
    {
        ++snp.snapshotsTaken;
        snp.snapshotBytes += bytes;
    }
    void
    recordRestore(bool ok)
    {
        if (ok)
            ++snp.restores;
        else
            ++snp.restoreFailures;
    }
    void
    recordReplaySession(bool replayed, u64 entries, u64 divergences)
    {
        if (replayed)
            ++snp.replays;
        else
            ++snp.records;
        snp.logEntries += entries;
        snp.replayDivergences += divergences;
    }
    const SnapshotCounters &snapshot() const { return snp; }
    /// @}

    /** @name Cost-model export */
    /// @{
    void captureCost(std::string label, const CostModel &cost);
    const std::vector<CostSnapshot> &costSnapshots() const
    {
        return costs;
    }
    /// @}

    /** @name TraceSink: provenance learning
     * Install a Metrics as the kernel's (and interpreter's) trace sink
     * and it remembers where each capability was minted, counts derive
     * events per source, and forwards to an optional chained sink.
     */
    /// @{
    void derive(DeriveSource source, const Capability &cap) override;
    void chainTo(TraceSink *sink) { next = sink; }
    u64 deriveCount(DeriveSource s) const
    {
        return deriveCounts[static_cast<unsigned>(s)];
    }
    /// @}

    /** @name Emitters */
    /// @{
    /** Full registry as one JSON document (schema in DESIGN.md). */
    std::string toJson() const;
    /** Per-syscall stats as CSV rows. */
    std::string toCsv() const;
    /// @}

    void reset();

  private:
    /** Checkpoint/restore serializes the whole registry so a restored
     *  system's metrics mirror matches the kernel counters it carries. */
    friend struct snap::Access;

    static unsigned
    abiIndex(Abi abi)
    {
        return static_cast<unsigned>(abi);
    }

    static constexpr unsigned numAbis = 3;
    /** Faults kept verbatim; beyond this only counters grow. */
    static constexpr u64 maxFaultRecords = 4096;

    std::array<std::array<SyscallStats, numSysNums>, numAbis> sys{};
    std::array<std::array<u64, maxOps>, numAbis> insnMix{};
    std::array<std::array<u64, numTlbCounters>, numAbis> tlb{};
    std::vector<FaultRecord> _faults;
    u64 faultsDropped = 0;
    std::array<u64, numCapFaults> faultsByCause{};
    PressureCounters mem;
    RevocationCounters rev;
    SchedCounters schd;
    FdCounters fdio;
    /** Retired guest instructions per (pid, tid) under the scheduler. */
    std::map<std::pair<u64, u64>, u64> _threadSteps;
    CheckCounters chk;
    SnapshotCounters snp;
    HardeningCounters hard;
    std::vector<CostSnapshot> costs;
    std::array<u64, numDeriveSources> deriveCounts{};
    /** (base, length) of tagged capabilities seen at derive sites. */
    std::map<std::pair<u64, u64>, DeriveSource> provenance;
    TraceSink *next = nullptr;
    OpNamer opNamer = nullptr;
    u64 currentSys = 0;
};

} // namespace cheri::obs

#endif // CHERI_OBS_METRICS_H
