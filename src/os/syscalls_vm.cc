/**
 * @file
 * Virtual-address management system calls.
 *
 * Implements the paper's CheriABI mmap semantics (section 4):
 *
 *  - mmap and shmat return capabilities bounded to the requested
 *    allocation, permissions derived from the page protections plus the
 *    user-defined vmmap permission;
 *  - a tagged hint capability must carry vmmap for MAP_FIXED; the
 *    returned capability is derived from the hint, preserving
 *    provenance;
 *  - untagged hints (or capabilities without vmmap) are accepted for
 *    non-fixed requests; a fixed request without vmmap succeeds only if
 *    it would not replace an existing mapping;
 *  - munmap and shmdt demand the vmmap permission, so leaked data
 *    pointers can never be used to pull mappings out from under their
 *    owners.
 */

#include "os/kernel.h"

#include <algorithm>

namespace cheri
{

SysResult
Kernel::sysMmap(Process &proc, const UserPtr &addr, u64 len, u32 prot,
                u32 flags, UserPtr *out_ptr)
{
    chargeSyscall(proc, 1);
    if (len == 0)
        return SysResult::fail(E_INVAL);
    // Admission check: pages are demand-zero, but a mapping whose first
    // fault cannot be serviced is useless; probe (possibly reclaiming)
    // one frame now so exhaustion surfaces here as a clean ENOMEM.
    if (!phys.canAlloc(1, &proc.as()))
        return failNoMem();
    const bool cheri = proc.abi() == Abi::CheriAbi;
    const bool fixed = flags & MAP_FIXED;
    const bool hint_tagged = cheri && addr.isCap && addr.cap.tag();
    const bool hint_has_vmmap =
        hint_tagged && addr.cap.hasPerms(PERM_SW_VMMAP);

    u64 padded = proc.as().representablePadding(len);
    u64 start;
    if (fixed) {
        u64 want = pageTrunc(addr.addr());
        if (cheri) {
            if (hint_tagged && !hint_has_vmmap)
                return SysResult::fail(E_PROT);
            if (!hint_tagged && proc.as().rangeOccupied(want, padded)) {
                // Without a vmmap-bearing capability, a fixed mapping
                // may not replace existing memory.
                return SysResult::fail(E_PROT);
            }
        }
        start = proc.as().map(want, padded, prot, MappingKind::Data, true,
                              flags & MAP_SHARED, "mmap", true);
    } else {
        start = proc.as().map(addr.addr(), padded, prot,
                              MappingKind::Data, false,
                              flags & MAP_SHARED, "mmap");
    }
    if (start == 0)
        return SysResult::fail(E_NOMEM);

    if (!cheri) {
        *out_ptr = UserPtr::fromAddr(start);
        return SysResult::ok(start);
    }
    Capability result;
    if (hint_has_vmmap && addr.cap.inBounds(start, padded)) {
        // Derive from the caller's capability: provenance is preserved
        // through the kernel (paper section 4).
        auto b = addr.cap.setAddress(start).setBounds(padded);
        if (b.ok()) {
            auto p = b.value().andPerms(protToPerms(prot) | PERM_SW_VMMAP);
            if (p.ok())
                result = p.value();
        }
    }
    if (!result.tag())
        result = proc.as().capForRange(start, padded, prot, true);
    proc.cost().capManip(3);
    if (traceSink)
        traceSink->derive(DeriveSource::Syscall, result);
    *out_ptr = UserPtr::fromCap(result);
    return SysResult::ok(start);
}

SysResult
Kernel::sysMmapFd(Process &proc, int fd, u64 offset, u64 len, u32 prot,
                  u32 flags, UserPtr *out_ptr)
{
    chargeSyscall(proc, 1);
    OpenFileRef of = proc.fd(fd);
    if (!of || of->node->kind != NodeKind::Regular)
        return SysResult::fail(E_BADF);
    if ((prot & PROT_WRITE) && (flags & MAP_SHARED) && !of->writable())
        return SysResult::fail(E_ACCES);
    UserPtr out;
    SysResult r = sysMmap(proc, UserPtr::null(), len, prot,
                          (flags & ~u32{MAP_ANON}) | MAP_PRIVATE, &out);
    if (r.failed())
        return r;
    // Pages fill lazily from the file node; MAP_SHARED mappings also
    // get a flush path for msync.
    VNodeRef node = of->node;
    BackingReader reader = [node](u64 file_off, u8 *dst, u64 n) {
        for (u64 i = 0; i < n; ++i) {
            dst[i] = file_off + i < node->data.size()
                         ? node->data[file_off + i]
                         : 0;
        }
    };
    BackingWriter writer;
    if (flags & MAP_SHARED) {
        writer = [node](u64 file_off, const u8 *src, u64 n) {
            if (node->data.size() < file_off + n)
                node->data.resize(file_off + n);
            std::copy(src, src + n, node->data.begin() +
                                        static_cast<long>(file_off));
        };
    }
    bool ok = proc.as().setBacking(
        r.value, proc.as().representablePadding(len), std::move(reader),
        std::move(writer), offset);
    if (!ok)
        return SysResult::fail(E_INVAL);
    *out_ptr = out;
    return SysResult::ok(r.value);
}

SysResult
Kernel::sysMsync(Process &proc, const UserPtr &addr, u64 len)
{
    chargeSyscall(proc, 1);
    if (proc.abi() == Abi::CheriAbi &&
        (!addr.isCap || !addr.cap.tag())) {
        return SysResult::fail(E_PROT);
    }
    const Mapping *m = proc.as().findMapping(addr.addr());
    if (!m || !m->backing)
        return SysResult::fail(E_INVAL);
    if (!m->backingWriter)
        return SysResult::fail(E_INVAL); // private mapping
    u64 pages = proc.as().syncResident(addr.addr(), len);
    proc.cost().copyLoop(addr.addr(), 0xC000000000, pages * pageSize);
    return SysResult::ok(pages);
}

SysResult
Kernel::sysMunmap(Process &proc, const UserPtr &addr, u64 len)
{
    chargeSyscall(proc, 1);
    if (proc.abi() == Abi::CheriAbi) {
        if (!addr.isCap || !addr.cap.tag() ||
            !addr.cap.hasPerms(PERM_SW_VMMAP)) {
            return SysResult::fail(E_PROT);
        }
        if (!addr.cap.inBounds(addr.addr(), len))
            return SysResult::fail(E_PROT);
    }
    if (!proc.as().unmap(addr.addr(), len))
        return SysResult::fail(E_INVAL);
    return SysResult::ok();
}

SysResult
Kernel::sysMprotect(Process &proc, const UserPtr &addr, u64 len, u32 prot)
{
    chargeSyscall(proc, 1);
    if (proc.abi() == Abi::CheriAbi) {
        if (!addr.isCap || !addr.cap.tag())
            return SysResult::fail(E_PROT);
        // mprotect may only *reduce* what the capability grants: pages
        // cannot become more permissive than the authorizing pointer.
        u32 cap_prot = 0;
        if (addr.cap.hasPerms(PERM_LOAD))
            cap_prot |= PROT_READ;
        if (addr.cap.hasPerms(PERM_STORE))
            cap_prot |= PROT_WRITE;
        if (addr.cap.hasPerms(PERM_EXECUTE))
            cap_prot |= PROT_EXEC;
        if (prot & ~cap_prot)
            return SysResult::fail(E_PROT);
    }
    if (!proc.as().protect(addr.addr(), len, prot))
        return SysResult::fail(E_INVAL);
    return SysResult::ok();
}

SysResult
Kernel::sysShmget(Process &proc, u64 key, u64 size)
{
    chargeSyscall(proc, 0);
    (void)key;
    if (size == 0)
        return SysResult::fail(E_INVAL);
    ShmSegment seg;
    seg.size = pageRound(size);
    // Shared segments are populated eagerly, so each frame allocation
    // can hit the capacity limit (or the fault injector) individually.
    for (u64 off = 0; off < seg.size; off += pageSize) {
        FrameRef f = phys.allocFrame(&proc.as());
        if (!f)
            return failNoMem();
        seg.frames.push_back(std::move(f));
    }
    int id = nextShmId++;
    shmSegments.emplace(id, std::move(seg));
    return SysResult::ok(static_cast<u64>(id));
}

SysResult
Kernel::sysShmat(Process &proc, int shmid, const UserPtr &addr,
                 UserPtr *out_ptr)
{
    chargeSyscall(proc, 1);
    auto it = shmSegments.find(shmid);
    if (it == shmSegments.end())
        return SysResult::fail(E_INVAL);
    ShmSegment &seg = it->second;
    const bool cheri = proc.abi() == Abi::CheriAbi;
    bool fixed = !addr.isNull() && addr.addr() != 0;
    if (fixed && cheri) {
        // shmat at a fixed address requires a vmmap-bearing capability.
        if (!addr.isCap || !addr.cap.tag() ||
            !addr.cap.hasPerms(PERM_SW_VMMAP)) {
            return SysResult::fail(E_PROT);
        }
    }
    u64 start = proc.as().map(fixed ? addr.addr() : 0, seg.size,
                              PROT_READ | PROT_WRITE,
                              MappingKind::SharedMem, fixed, true,
                              "shm", fixed);
    if (start == 0)
        return SysResult::fail(E_NOMEM);
    for (u64 i = 0; i < seg.frames.size(); ++i)
        proc.as().installFrame(start + i * pageSize, seg.frames[i]);
    if (!cheri) {
        *out_ptr = UserPtr::fromAddr(start);
        return SysResult::ok(start);
    }
    Capability cap = proc.as().capForRange(start, seg.size,
                                           PROT_READ | PROT_WRITE, true);
    proc.cost().capManip(3);
    if (traceSink)
        traceSink->derive(DeriveSource::Syscall, cap);
    *out_ptr = UserPtr::fromCap(cap);
    return SysResult::ok(start);
}

SysResult
Kernel::sysShmdt(Process &proc, const UserPtr &addr)
{
    chargeSyscall(proc, 1);
    if (proc.abi() == Abi::CheriAbi) {
        if (!addr.isCap || !addr.cap.tag() ||
            !addr.cap.hasPerms(PERM_SW_VMMAP)) {
            return SysResult::fail(E_PROT);
        }
    }
    const Mapping *m = proc.as().findMapping(addr.addr());
    if (!m || m->kind != MappingKind::SharedMem)
        return SysResult::fail(E_INVAL);
    proc.as().unmap(m->start, m->len);
    return SysResult::ok();
}

} // namespace cheri
