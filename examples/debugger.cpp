/**
 * @file
 * Domain example: a mini debugger session across principals.
 *
 * The paper's section 3 treats debugging as the hardest abstract-
 * capability case: two principals, whose capabilities must never flow
 * into each other.  This example attaches a "gdb" process to a target,
 * inspects its registers and a capability in its heap, pokes raw bytes
 * (and watches the tag die), then injects a fresh capability —
 * rederived from the *target's* root, never transplanted from the
 * debugger.
 *
 * Build & run:  ./build/examples/debugger
 */

#include <cstdio>

#include "guest/context.h"
#include "libc/malloc.h"

using namespace cheri;

int
main()
{
    Kernel kern;
    SelfObject prog;
    prog.name = "target";
    prog.textSize = 0x1000;

    Process *target = kern.spawn(Abi::CheriAbi, "target");
    kern.execve(*target, prog, {"target"}, {});
    Process *gdb = kern.spawn(Abi::CheriAbi, "gdb");
    kern.execve(*gdb, prog, {"gdb"}, {});

    // The target sets up some state: a secret and a pointer to it.
    GuestContext tctx(kern, *target);
    GuestMalloc theap(tctx);
    GuestPtr secret = theap.malloc(32);
    tctx.store<u64>(secret, 0, 0xC0FFEE);
    GuestPtr table = theap.malloc(64);
    tctx.storePtr(table, 0, secret);

    std::printf("(gdb) attach %lu\n",
                static_cast<unsigned long>(target->pid()));
    SysResult r = kern.sysPtrace(*gdb, PtReq::Attach, target->pid(), 0,
                                 nullptr, 0);
    std::printf("  -> %s\n", r.failed() ? "error" : "attached");

    std::printf("(gdb) info registers\n");
    ThreadRegs regs;
    kern.ptraceGetRegs(*gdb, target->pid(), &regs);
    std::printf("  pcc = %s\n", regs.pcc.toString().c_str());
    std::printf("  csp = %s\n", regs.stack().toString().c_str());

    std::printf("(gdb) x/1gx 0x%lx          # raw read of the secret\n",
                static_cast<unsigned long>(secret.addr()));
    u64 value = 0;
    kern.sysPtrace(*gdb, PtReq::ReadData, target->pid(), secret.addr(),
                   &value, 8);
    std::printf("  0x%lx\n", static_cast<unsigned long>(value));

    std::printf("(gdb) print *(void **)0x%lx   # inspect a capability\n",
                static_cast<unsigned long>(table.addr()));
    Capability seen;
    kern.ptraceReadCap(*gdb, target->pid(), table.addr(), &seen);
    std::printf("  %s\n", seen.toString().c_str());

    std::printf("(gdb) poke raw bytes over the stored capability\n");
    u64 garbage = 0x4141414141414141;
    kern.sysPtrace(*gdb, PtReq::WriteData, target->pid(), table.addr(),
                   &garbage, 8);
    GuestPtr after = tctx.loadPtr(table, 0);
    std::printf("  target now sees: %s   <- tag gone, pointer dead\n",
                after.cap.toString().c_str());

    std::printf("(gdb) inject a fresh capability over the slot\n");
    Capability wanted = target->as()
                            .rederivationRoot()
                            .setAddress(secret.addr())
                            .setBounds(32)
                            .value()
                            .withoutTag();
    r = kern.ptraceWriteCap(*gdb, target->pid(), table.addr(), wanted);
    std::printf("  -> %s (rederived from the target's own root)\n",
                r.failed() ? "refused" : "injected");
    GuestPtr restored = tctx.loadPtr(table, 0);
    std::printf("  target now sees: %s\n",
                restored.cap.toString().c_str());
    std::printf("  *ptr = 0x%lx\n",
                static_cast<unsigned long>(tctx.load<u64>(restored)));

    std::printf("(gdb) try to inject a kernel-range capability\n");
    Capability evil = Capability::root()
                          .setAddress(AddressSpace::userTop + 0x1000)
                          .setBounds(0x1000)
                          .value()
                          .withoutTag();
    r = kern.ptraceWriteCap(*gdb, target->pid(), table.addr(), evil);
    std::printf("  -> %s (%s)\n", r.failed() ? "REFUSED" : "injected?!",
                std::string(errnoName(r.error)).c_str());

    std::printf("(gdb) detach\n");
    kern.sysPtrace(*gdb, PtReq::Detach, target->pid(), 0, nullptr, 0);
    return 0;
}
