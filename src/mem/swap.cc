#include "mem/swap.h"

#include <cassert>

namespace cheri
{

u64
SwapDevice::swapOut(const Frame &frame)
{
    Slot slot;
    slot.bytes = frame.bytes();
    if (_policy == SwapPolicy::PreserveTags) {
        frame.forEachTagged([&](u64 off, const Capability &cap) {
            slot.tagMeta.emplace_back(off, cap.withoutTag());
            ++tagsPreserved;
        });
    }
    u64 id = nextSlot++;
    slots.emplace(id, std::move(slot));
    ++swapOuts;
    return id;
}

void
SwapDevice::swapIn(u64 slot_id, Frame &frame, const Capability &root)
{
    auto it = slots.find(slot_id);
    assert(it != slots.end() && "swap-in of unoccupied slot");
    const Slot &slot = it->second;
    frame.write(0, slot.bytes.data(), pageSize);
    for (const auto &[off, pattern] : slot.tagMeta) {
        Result<Capability> r = Capability::build(root, pattern);
        if (r.ok())
            frame.writeCap(off, r.value());
        // else: the pattern exceeded the root's authority; leave the
        // granule untagged rather than escalate.
    }
    slots.erase(it);
}

u64
SwapDevice::revokeMatchingInSlot(
    u64 slot_id, const std::function<bool(const Capability &)> &pred)
{
    auto it = slots.find(slot_id);
    if (it == slots.end())
        return 0;
    auto &meta = it->second.tagMeta;
    u64 before = meta.size();
    std::erase_if(meta, [&](const std::pair<u64, Capability> &e) {
        return pred(e.second);
    });
    return before - meta.size();
}

} // namespace cheri
