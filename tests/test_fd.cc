/**
 * @file
 * Blocking FD I/O tests: POSIX pipe/select semantics and their
 * integration with the kernel scheduler.
 *
 * The contract under test (PR 8):
 *
 *  - a write to a pipe whose read ends are all closed fails with
 *    E_PIPE *and* delivers SIG_PIPE to the writer (default: the
 *    process dies through the structured teardown path);
 *  - a read from a pipe whose write ends are all closed returns 0
 *    (EOF) after draining buffered bytes — never an error;
 *  - O_NONBLOCK round-trips E_AGAIN for would-block reads and writes,
 *    and a write to a filling pipe is never 0-for-nonzero-length:
 *    it is partial, E_AGAIN, or (scheduled) a true block;
 *  - under the scheduler, blocked readers/writers/selects park off
 *    the run queue — consuming zero interpreter steps — until a
 *    channel edge (write, read-frees-space, close) or the select
 *    deadline on the virtual clock wakes them;
 *  - fork shares open-file descriptions: parent and child advance one
 *    offset.
 */

#include <gtest/gtest.h>

#include <vector>

#include "check/invariants.h"
#include "guest/context.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "obs/metrics.h"
#include "os/kernel.h"
#include "os/sched/sched.h"
#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

class FdBothAbis : public ::testing::TestWithParam<Abi>
{
  protected:
    GuestSystem sys{GetParam()};
    GuestContext &ctx() { return *sys.ctx; }
    Process &proc() { return *sys.proc; }
    Kernel &kern() { return sys.kern; }

    /** pipe(2), returning the two descriptors. */
    std::pair<int, int>
    makePipe(u32 flags = 0)
    {
        GuestPtr fds = ctx().mmap(pageSize);
        EXPECT_EQ(ctx().pipe(fds, flags), 0);
        return {ctx().load<std::int32_t>(fds),
                ctx().load<std::int32_t>(fds, 4)};
    }
};

TEST_P(FdBothAbis, EpipeDefaultDispositionKillsWriter)
{
    auto [rfd, wfd] = makePipe();
    GuestPtr buf = ctx().mmap(pageSize);
    ASSERT_EQ(ctx().close(rfd), 0);
    // No read ends left: EPIPE, and the unhandled SIG_PIPE terminates
    // the writer through the same teardown as a capability fault.
    EXPECT_EQ(ctx().write(wfd, buf, 4), -E_PIPE);
    EXPECT_TRUE(proc().exited());
    ASSERT_TRUE(proc().death().has_value());
    EXPECT_EQ(proc().death()->signal, SIG_PIPE);
    EXPECT_EQ(kern().fdIoStats().epipeErrors, 1u);
}

TEST_P(FdBothAbis, EpipeIgnoredIsJustErrno)
{
    auto [rfd, wfd] = makePipe();
    GuestPtr buf = ctx().mmap(pageSize);
    kern().sysSigaction(proc(), SIG_PIPE, {SigAction::Kind::Ignore, 0});
    ASSERT_EQ(ctx().close(rfd), 0);
    EXPECT_EQ(ctx().write(wfd, buf, 4), -E_PIPE);
    EXPECT_FALSE(proc().exited());
}

TEST_P(FdBothAbis, EpipeHandlerRunsBeforeErrnoReturns)
{
    auto [rfd, wfd] = makePipe();
    GuestPtr buf = ctx().mmap(pageSize);
    int runs = 0;
    u64 hid = proc().registerHandler([&](Process &, SigFrame &f) {
        ++runs;
        EXPECT_EQ(f.signo, SIG_PIPE);
    });
    kern().sysSigaction(proc(), SIG_PIPE,
                        {SigAction::Kind::Handler, hid});
    ASSERT_EQ(ctx().close(rfd), 0);
    EXPECT_EQ(ctx().write(wfd, buf, 4), -E_PIPE);
    EXPECT_EQ(runs, 1);
    EXPECT_FALSE(proc().exited());
}

TEST_P(FdBothAbis, EofAfterWriterClosesDrainsThenZero)
{
    auto [rfd, wfd] = makePipe();
    GuestPtr buf = ctx().mmap(pageSize);
    const char msg[] = "tail";
    ctx().write(buf, msg, 4);
    ASSERT_EQ(ctx().write(wfd, buf, 4), 4);
    ASSERT_EQ(ctx().close(wfd), 0);
    // Buffered bytes first, EOF after — not an error in either order.
    EXPECT_EQ(ctx().read(rfd, buf, 4), 4);
    EXPECT_EQ(ctx().read(rfd, buf, 4), 0);
    EXPECT_EQ(ctx().read(rfd, buf, 4), 0);
}

TEST_P(FdBothAbis, NonblockRoundTripsEagainAndNeverWritesZero)
{
    auto [rfd, wfd] = makePipe(O_NONBLOCK);
    GuestPtr buf = ctx().mmap(pageSize);
    // Empty pipe, live writer: E_AGAIN (not E_INTR, not EOF).
    EXPECT_EQ(ctx().read(rfd, buf, 8), -E_AGAIN);
    // Fill to capacity one page at a time; the final write is partial,
    // never 0, and the first over-capacity write is E_AGAIN.
    u64 total = 0;
    for (;;) {
        s64 n = ctx().write(wfd, buf, pageSize);
        if (n == -E_AGAIN)
            break;
        ASSERT_GT(n, 0) << "nonzero-length pipe write returned "
                        << n << " after " << total << " bytes";
        total += static_cast<u64>(n);
        ASSERT_LE(total, ByteChannel::capacity);
    }
    EXPECT_EQ(total, ByteChannel::capacity);
    EXPECT_GE(kern().fdIoStats().eagainErrors, 2u);
    // Draining frees space for the writer again.
    EXPECT_EQ(ctx().read(rfd, buf, pageSize),
              static_cast<s64>(pageSize));
    EXPECT_EQ(ctx().write(wfd, buf, 8), 8);
}

TEST_P(FdBothAbis, PipeRejectsUnknownFlags)
{
    int fds[2] = {-1, -1};
    EXPECT_EQ(kern().sysPipe(proc(), fds, 0x8000).error, E_INVAL);
}

TEST_P(FdBothAbis, ForkSharesOpenFileOffset)
{
    s64 fd = ctx().open("/tmp/shared", O_RDWR | O_CREAT);
    ASSERT_GE(fd, 0);
    GuestPtr buf = ctx().mmap(pageSize);
    const char msg[] = "abcdef";
    ctx().write(buf, msg, 6);
    ASSERT_EQ(ctx().write(static_cast<int>(fd), buf, 6), 6);
    ASSERT_EQ(ctx().lseek(static_cast<int>(fd), 0, 0), 0);

    // Fork shares the open-file description: the child's read moves
    // the one offset both processes see.
    Process *child = kern().fork(proc());
    ASSERT_NE(child, nullptr);
    std::vector<u8> tmp(8, 0);
    SysResult r = kern().sysRead(*child, static_cast<int>(fd),
                                 ctx().toUser(buf), 3);
    ASSERT_EQ(r.error, E_OK);
    EXPECT_EQ(r.value, 3u);
    EXPECT_EQ(ctx().read(static_cast<int>(fd), buf, 3), 3);
    char got[4] = {};
    ctx().read(buf, got, 3);
    EXPECT_EQ(std::string(got, 3), "def") << "offset was not shared";
}

TEST_P(FdBothAbis, SelectZeroTimeoutPollsImmediately)
{
    auto [rfd, wfd] = makePipe();
    GuestPtr sets = ctx().mmap(pageSize);
    ctx().store<u64>(sets, 0, u64{1} << rfd);  // readfds
    ctx().store<u64>(sets, 16, 0);             // tv = {0, 0}
    ctx().store<u64>(sets, 24, 0);
    // Hosted caller, empty pipe, zero timeout: returns 0 at once.
    EXPECT_EQ(ctx().select(rfd + 1, sets, GuestPtr(), GuestPtr(),
                           sets + 16),
              0);
    EXPECT_EQ(ctx().load<u64>(sets), 0u) << "set must be cleared";
    // Make it readable: the same poll reports the bit.
    GuestPtr buf = ctx().mmap(pageSize);
    ASSERT_EQ(ctx().write(wfd, buf, 1), 1);
    ctx().store<u64>(sets, 0, u64{1} << rfd);
    EXPECT_EQ(ctx().select(rfd + 1, sets, GuestPtr(), GuestPtr(),
                           sets + 16),
              1);
    EXPECT_EQ(ctx().load<u64>(sets), u64{1} << rfd);
}

INSTANTIATE_TEST_SUITE_P(Abis, FdBothAbis,
                         ::testing::Values(Abi::Mips64, Abi::CheriAbi),
                         [](const auto &info) {
                             return info.param == Abi::CheriAbi
                                        ? "cheriabi"
                                        : "mips64";
                         });

// --- Scheduled (interpreted) blocking behavior ---

struct SchedGuest
{
    Process *proc = nullptr;
    u64 code = 0;
    u64 data = 0;
};

SchedGuest
makeGuest(Kernel &kern, Abi abi, const char *name)
{
    SelfObject prog;
    prog.name = name;
    Process *proc = kern.spawn(abi, name);
    if (kern.execve(*proc, prog, {name}, {}) != E_OK)
        throw std::runtime_error("execve failed");
    u64 code = proc->as().map(0, pageSize,
                              PROT_READ | PROT_WRITE | PROT_EXEC,
                              MappingKind::Text);
    u64 data = proc->as().map(0, pageSize, PROT_READ | PROT_WRITE,
                              MappingKind::Data);
    return {proc, code, data};
}

sched::ExecContext &
admitProgram(sched::Scheduler &s, SchedGuest &g, isa::Assembler &prog)
{
    prog.writeTo(g.proc->as(), g.code);
    sched::ExecContext &cx = s.context(*g.proc);
    if (g.proc->abi() == Abi::CheriAbi) {
        cx.interp->setEntry(g.proc->as()
                                .capForRange(g.code, pageSize,
                                             PROT_READ | PROT_EXEC,
                                             false)
                                .setAddress(g.code));
    } else {
        cx.interp->setEntry(Capability::fromAddress(g.code));
    }
    cx.stepLimit = 65536;
    s.ready(cx);
    return cx;
}

/** Point a guest's buffer argument register (x5 for mips64, c5 for
 *  CheriABI) at its own data page. */
void
presetBufArg(SchedGuest &g, sched::ExecContext &cx)
{
    cx.interp->regs().x[5] = g.data;
    cx.interp->regs().c[5] =
        g.proc->as()
            .capForRange(g.data, pageSize, PROT_READ | PROT_WRITE,
                         false)
            .setAddress(g.data);
}

/** Install the shared pipe ends into both guests' fd tables; returns
 *  (read fd, write fd) — identical slots in both processes. */
std::pair<int, int>
sharePipe(SchedGuest &a, SchedGuest &b,
          const std::pair<VNodeRef, VNodeRef> &pipe)
{
    auto rof = std::make_shared<OpenFile>();
    rof->node = pipe.first;
    rof->flags = O_RDONLY;
    auto wof = std::make_shared<OpenFile>();
    wof->node = pipe.second;
    wof->flags = O_WRONLY;
    int rfd = a.proc->allocFd(rof);
    int wfd = a.proc->allocFd(wof);
    EXPECT_EQ(b.proc->allocFd(rof), rfd);
    EXPECT_EQ(b.proc->allocFd(wof), wfd);
    return {rfd, wfd};
}

class FdSchedTest : public ::testing::TestWithParam<Abi>
{
};

TEST_P(FdSchedTest, BlockedReaderParksUntilCrossProcessWrite)
{
    Abi abi = GetParam();
    obs::Metrics metrics; // must outlive the kernel
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    Kernel kern(cfg);
    kern.setMetrics(&metrics);
    sched::Scheduler &s = sched::schedulerFor(kern);

    SchedGuest reader = makeGuest(kern, abi, "pipe-reader");
    SchedGuest writer = makeGuest(kern, abi, "pipe-writer");
    auto [rfd, wfd] = sharePipe(reader, writer, Vfs::makePipe());

    // Reader: read(rfd, buf, 16) then halt.  Argument registers are
    // preset host-side; the restarted syscall re-reads them intact.
    isa::Assembler rp;
    rp.syscall(static_cast<s64>(SysNum::Read)).halt();
    sched::ExecContext &rcx = admitProgram(s, reader, rp);
    rcx.interp->regs().x[4] = static_cast<u64>(rfd);
    presetBufArg(reader, rcx);
    rcx.interp->regs().x[6] = 16;

    // Writer: sleep 500 virtual ticks (the reader must PARK across
    // this, not spin), then write 16 bytes and halt.
    const char payload[16] = "fifteen-bytes..";
    ASSERT_FALSE(
        writer.proc->as().writeBytes(writer.data, payload, 16));
    isa::Assembler wp;
    wp.li(4, 500)
        .syscall(static_cast<s64>(SysNum::Sleep))
        .li(4, wfd);
    if (abi == Abi::CheriAbi)
        wp.cmove(5, 8);
    else
        wp.move(5, 8);
    wp.li(6, 16).syscall(static_cast<s64>(SysNum::Write)).halt();
    sched::ExecContext &wcx = admitProgram(s, writer, wp);
    wcx.interp->regs().x[8] = writer.data;
    wcx.interp->regs().c[8] =
        writer.proc->as()
            .capForRange(writer.data, pageSize,
                         PROT_READ | PROT_WRITE, false)
            .setAddress(writer.data);

    kern.runUntilIdle();

    ASSERT_EQ(rcx.last.status, isa::InterpResult::Status::Halted);
    ASSERT_EQ(wcx.last.status, isa::InterpResult::Status::Halted);
    // The read returned the writer's bytes...
    EXPECT_EQ(rcx.interp->regs().x[regRetVal], 16u);
    char got[16] = {};
    ASSERT_FALSE(reader.proc->as().readBytes(reader.data, got, 16));
    EXPECT_EQ(std::string(got, 16), std::string(payload, 16));
    // ...and the reader PARKED for the writer's whole 500-tick sleep:
    // its program is 2 instructions, so even counting the restarted
    // syscall it retires a handful of steps — a spinning reader would
    // retire hundreds.
    EXPECT_LE(rcx.retired(), 8u) << "reader spun instead of parking";
    const SchedStats &st = s.stats();
    EXPECT_GE(st.blocksFd, 1u);
    EXPECT_GE(kern.fdIoStats().blocks, 1u);
    EXPECT_GE(kern.fdIoStats().wakes, 1u);
    // The metrics mirror (including the new fd section) agrees.
    check::Report rep = check::Invariants::check(kern);
    EXPECT_TRUE(rep.violations.empty())
        << rep.violations.front().detail;
}

TEST_P(FdSchedTest, BlockedWriterWokenWhenReadFreesSpace)
{
    Abi abi = GetParam();
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    Kernel kern(cfg);
    sched::Scheduler &s = sched::schedulerFor(kern);

    SchedGuest writer = makeGuest(kern, abi, "full-writer");
    SchedGuest reader = makeGuest(kern, abi, "slow-reader");
    auto pipe = Vfs::makePipe();
    auto [rfd, wfd] = sharePipe(writer, reader, pipe);

    // Pre-fill the channel to capacity from the host side.
    OpenFile fill;
    fill.node = pipe.second;
    fill.flags = O_WRONLY;
    std::vector<u8> bulk(ByteChannel::capacity, 0x5a);
    ASSERT_EQ(Vfs::write(fill, bulk.data(), bulk.size()),
              static_cast<s64>(ByteChannel::capacity));

    // Writer: write(wfd, buf, 64) — blocks on the full pipe.
    isa::Assembler wp;
    wp.syscall(static_cast<s64>(SysNum::Write)).halt();
    sched::ExecContext &wcx = admitProgram(s, writer, wp);
    wcx.interp->regs().x[4] = static_cast<u64>(wfd);
    presetBufArg(writer, wcx);
    wcx.interp->regs().x[6] = 64;

    // Reader: sleep, then read a page — freeing space wakes the writer.
    isa::Assembler rp;
    rp.li(4, 200).syscall(static_cast<s64>(SysNum::Sleep)).li(4, rfd);
    if (abi == Abi::CheriAbi)
        rp.cmove(5, 8);
    else
        rp.move(5, 8);
    rp.li(6, static_cast<s64>(pageSize))
        .syscall(static_cast<s64>(SysNum::Read))
        .halt();
    sched::ExecContext &rcx = admitProgram(s, reader, rp);
    rcx.interp->regs().x[8] = reader.data;
    rcx.interp->regs().c[8] =
        reader.proc->as()
            .capForRange(reader.data, pageSize,
                         PROT_READ | PROT_WRITE, false)
            .setAddress(reader.data);

    kern.runUntilIdle();

    ASSERT_EQ(wcx.last.status, isa::InterpResult::Status::Halted);
    ASSERT_EQ(rcx.last.status, isa::InterpResult::Status::Halted);
    EXPECT_EQ(wcx.interp->regs().x[regRetVal], 64u);
    EXPECT_EQ(rcx.interp->regs().x[regRetVal], pageSize);
    EXPECT_GE(s.stats().blocksFd, 1u);
    EXPECT_GE(kern.fdIoStats().wakes, 1u);
}

INSTANTIATE_TEST_SUITE_P(Abis, FdSchedTest,
                         ::testing::Values(Abi::Mips64, Abi::CheriAbi),
                         [](const auto &info) {
                             return info.param == Abi::CheriAbi
                                        ? "cheriabi"
                                        : "mips64";
                         });

TEST(FdSelectSchedTest, BlockedSelectWokenByVirtualClockTimeout)
{
    obs::Metrics metrics;
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    Kernel kern(cfg);
    kern.setMetrics(&metrics);
    sched::Scheduler &s = sched::schedulerFor(kern);

    SchedGuest g = makeGuest(kern, Abi::Mips64, "select-timeout");
    SchedGuest other = makeGuest(kern, Abi::Mips64, "idle-peer");
    auto [rfd, wfd] = sharePipe(g, other, Vfs::makePipe());
    (void)wfd;

    // readfds = {rfd} at data+0, tv = {200, 0} at data+16; nothing
    // ever writes, so only the deadline can end the select.
    u64 mask = u64{1} << rfd;
    u64 tv[2] = {200, 0};
    ASSERT_FALSE(g.proc->as().writeBytes(g.data, &mask, 8));
    ASSERT_FALSE(g.proc->as().writeBytes(g.data + 16, tv, 16));

    isa::Assembler a;
    a.syscall(static_cast<s64>(SysNum::Select)).halt();
    sched::ExecContext &cx = admitProgram(s, g, a);
    ThreadRegs &r = cx.interp->regs();
    r.x[4] = static_cast<u64>(rfd) + 1;
    r.x[5] = g.data;      // readfds
    r.x[6] = 0;           // writefds: null
    r.x[7] = 0;           // exceptfds: null
    r.x[8] = g.data + 16; // timeout

    kern.runUntilIdle();

    ASSERT_EQ(cx.last.status, isa::InterpResult::Status::Halted);
    EXPECT_EQ(cx.interp->regs().x[regRetVal], 0u);
    // The virtual clock idle-advanced to the deadline; the guest never
    // spun the 200 ticks down.
    EXPECT_GE(s.now(), 200u);
    EXPECT_LE(cx.retired(), 8u) << "select spun instead of parking";
    EXPECT_EQ(kern.fdIoStats().selectTimeouts, 1u);
    EXPECT_GE(kern.fdIoStats().blocks, 1u);
    u64 out = ~u64{0};
    ASSERT_FALSE(g.proc->as().readBytes(g.data, &out, 8));
    EXPECT_EQ(out, 0u) << "timed-out select must clear the sets";
    check::Report rep = check::Invariants::check(kern);
    EXPECT_TRUE(rep.violations.empty())
        << rep.violations.front().detail;
}

TEST(FdSelectSchedTest, BlockedSelectWokenByDataBeforeDeadline)
{
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    Kernel kern(cfg);
    sched::Scheduler &s = sched::schedulerFor(kern);

    SchedGuest sel = makeGuest(kern, Abi::Mips64, "select-data");
    SchedGuest wr = makeGuest(kern, Abi::Mips64, "select-writer");
    auto [rfd, wfd] = sharePipe(sel, wr, Vfs::makePipe());

    u64 mask = u64{1} << rfd;
    u64 tv[2] = {100000, 0};
    ASSERT_FALSE(sel.proc->as().writeBytes(sel.data, &mask, 8));
    ASSERT_FALSE(sel.proc->as().writeBytes(sel.data + 16, tv, 16));

    isa::Assembler a;
    a.syscall(static_cast<s64>(SysNum::Select)).halt();
    sched::ExecContext &cx = admitProgram(s, sel, a);
    ThreadRegs &r = cx.interp->regs();
    r.x[4] = static_cast<u64>(rfd) + 1;
    r.x[5] = sel.data;
    r.x[6] = 0;
    r.x[7] = 0;
    r.x[8] = sel.data + 16;

    // The writer sleeps 50 ticks, then writes one byte.
    isa::Assembler w;
    w.li(4, 50)
        .syscall(static_cast<s64>(SysNum::Sleep))
        .li(4, wfd)
        .move(5, 8)
        .li(6, 1)
        .syscall(static_cast<s64>(SysNum::Write))
        .halt();
    sched::ExecContext &wcx = admitProgram(s, wr, w);
    wcx.interp->regs().x[8] = wr.data;

    kern.runUntilIdle();

    ASSERT_EQ(cx.last.status, isa::InterpResult::Status::Halted);
    EXPECT_EQ(cx.interp->regs().x[regRetVal], 1u)
        << "select must report the readable fd, not the timeout";
    u64 out = 0;
    ASSERT_FALSE(sel.proc->as().readBytes(sel.data, &out, 8));
    EXPECT_EQ(out, u64{1} << rfd);
    EXPECT_EQ(kern.fdIoStats().selectTimeouts, 0u);
    // Data arrived at tick ~50: nobody waited for the far deadline.
    EXPECT_LT(s.now(), 100000u);
    (void)wcx;
}

TEST(FdSchedCloseTest, ReaderBlockedOnPipeSeesEofWhenWriterExits)
{
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    Kernel kern(cfg);
    sched::Scheduler &s = sched::schedulerFor(kern);

    SchedGuest reader = makeGuest(kern, Abi::Mips64, "eof-reader");
    SchedGuest writer = makeGuest(kern, Abi::Mips64, "exiting-writer");
    auto [rfd, wfd] = sharePipe(reader, writer, Vfs::makePipe());

    // The reader drops ITS OWN write end first — otherwise its fd
    // table keeps the pipe writable forever — then blocks reading.
    ASSERT_EQ(reader.proc->closeFd(wfd), E_OK);

    isa::Assembler rp;
    rp.syscall(static_cast<s64>(SysNum::Read)).halt();
    sched::ExecContext &rcx = admitProgram(s, reader, rp);
    rcx.interp->regs().x[4] = static_cast<u64>(rfd);
    presetBufArg(reader, rcx);
    rcx.interp->regs().x[6] = 16;

    // The writer never writes: it sleeps then exits.  Process-exit
    // teardown closes its fds; the last write end fires the EOF edge.
    isa::Assembler wp;
    wp.li(4, 300)
        .syscall(static_cast<s64>(SysNum::Sleep))
        .li(4, 0)
        .syscall(static_cast<s64>(SysNum::Exit))
        .halt();
    admitProgram(s, writer, wp);

    kern.runUntilIdle();

    ASSERT_EQ(rcx.last.status, isa::InterpResult::Status::Halted);
    EXPECT_EQ(rcx.interp->regs().x[regRetVal], 0u)
        << "blocked reader must wake to EOF when the writer dies";
    EXPECT_GE(s.stats().blocksFd, 1u);
}

} // namespace
} // namespace cheri
