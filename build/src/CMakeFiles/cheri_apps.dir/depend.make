# Empty dependencies file for cheri_apps.
# This may be replaced when dependencies are built.
