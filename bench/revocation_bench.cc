/**
 * @file
 * Temporal-safety prototype bench (paper section 6, "Temporal
 * safety"): the cost of quarantine + revocation sweeps as a function
 * of heap size, and the tag-preserving swap ablation.
 */

#include "bench_util.h"
#include "libc/revoke.h"

using namespace cheri;

namespace
{

struct SweepPoint
{
    u64 residentKiB;
    u64 sweepCycles;
    u64 revoked;
};

SweepPoint
measureSweep(u64 live_bytes)
{
    Kernel kern;
    SelfObject prog;
    prog.name = "revoke";
    Process *proc = kern.spawn(Abi::CheriAbi, "revoke");
    if (kern.execve(*proc, prog, {"revoke"}, {}) != E_OK)
        throw std::runtime_error("execve failed");
    GuestContext ctx(kern, *proc);
    RevokingMalloc heap(ctx, ~u64{0}); // manual sweeps only
    // Populate a live heap laced with pointers, then free a slice.
    std::vector<GuestPtr> rows;
    for (u64 got = 0; got < live_bytes; got += 256) {
        GuestPtr row = heap.malloc(256 - 16);
        ctx.storePtr(row, 0, row); // self-pointer: tagged granule
        rows.push_back(row);
    }
    for (u64 i = 0; i < rows.size(); i += 8)
        heap.free(rows[i]);
    u64 before = proc->cost().cycles();
    u64 revoked = heap.forceSweep();
    SweepPoint p;
    p.residentKiB = proc->as().residentPages() * pageSize / 1024;
    p.sweepCycles = proc->cost().cycles() - before;
    p.revoked = revoked;
    return p;
}

} // namespace

int
main()
{
    bench::banner("Revocation sweep cost vs heap size");
    std::printf("%12s %14s %10s %16s\n", "resident KiB", "sweep cycles",
                "revoked", "cycles/KiB");
    for (u64 live : {u64{64} << 10, u64{256} << 10, u64{1} << 20,
                     u64{4} << 20}) {
        SweepPoint p = measureSweep(live);
        std::printf("%12lu %14lu %10lu %16.0f\n",
                    static_cast<unsigned long>(p.residentKiB),
                    static_cast<unsigned long>(p.sweepCycles),
                    static_cast<unsigned long>(p.revoked),
                    static_cast<double>(p.sweepCycles) /
                        static_cast<double>(p.residentKiB));
    }
    bench::note("\nShape: sweep cost scales linearly with resident "
                "memory (every\ncapability granule is loaded and "
                "checked), amortized by the\nquarantine budget — the "
                "CHERIvoke design the paper's future work\npoints at.");

    bench::banner("Ablation: tag-preserving swap vs naive swap");
    for (SwapPolicy policy :
         {SwapPolicy::PreserveTags, SwapPolicy::Naive}) {
        KernelConfig cfg;
        cfg.swapPolicy = policy;
        Kernel kern(cfg);
        SelfObject prog;
        prog.name = "swap";
        Process *proc = kern.spawn(Abi::CheriAbi, "swap");
        kern.execve(*proc, prog, {"swap"}, {});
        GuestContext ctx(kern, *proc);
        GuestMalloc heap(ctx);
        // A linked list across many pages...
        GuestPtr head;
        for (int i = 0; i < 256; ++i) {
            GuestPtr node = heap.malloc(4000);
            ctx.storePtr(node, 0, head);
            head = node;
        }
        // ...paged out and walked back in.
        proc->as().swapOutResident(1 << 20);
        u64 reachable = 0;
        try {
            GuestPtr cur = head;
            while (!cur.isNull() && cur.addr() != 0) {
                ++reachable;
                cur = ctx.loadPtr(cur, 0);
            }
        } catch (const CapTrap &) {
        }
        std::printf("%-14s list nodes reachable after swap: %lu / 256%s\n",
                    policy == SwapPolicy::PreserveTags ? "preserve-tags"
                                                       : "naive",
                    static_cast<unsigned long>(reachable),
                    policy == SwapPolicy::PreserveTags
                        ? ""
                        : "   <- every swapped pointer died");
    }
    return 0;
}
