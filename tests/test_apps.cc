/**
 * @file
 * Application-level tests: workload harness, MiniPG initdb and
 * regression suite, test-suite analogues, and the s_server analogue.
 */

#include <gtest/gtest.h>

#include "apps/minidb.h"
#include "apps/sslserver.h"
#include "apps/testsuite.h"
#include "apps/workloads.h"
#include "trace/analysis.h"

namespace cheri::apps
{
namespace
{

TEST(Workloads, AllRunUnderBothAbis)
{
    for (const Workload &w : figure4Workloads()) {
        WorkloadResult mips = runWorkload(w, Abi::Mips64);
        WorkloadResult cheri = runWorkload(w, Abi::CheriAbi);
        EXPECT_GT(mips.instructions, 1000u) << w.name;
        EXPECT_GT(cheri.instructions, 1000u) << w.name;
        EXPECT_GE(mips.cycles, mips.instructions) << w.name;
        // Overheads stay within the paper's plotted range (-10..+80%).
        double cyc = overheadPct(mips.cycles, cheri.cycles);
        EXPECT_GT(cyc, -25.0) << w.name;
        EXPECT_LT(cyc, 100.0) << w.name;
    }
}

TEST(Workloads, ShaIsFasterUnderCheriAbi)
{
    const Workload *sha = nullptr;
    for (const Workload &w : figure4Workloads()) {
        if (w.name == "security-sha")
            sha = &w;
    }
    ASSERT_NE(sha, nullptr);
    WorkloadResult mips = runWorkload(*sha, Abi::Mips64);
    WorkloadResult cheri = runWorkload(*sha, Abi::CheriAbi);
    EXPECT_LT(cheri.instructions, mips.instructions)
        << "separate capability register file removes spills";
}

TEST(Workloads, PointerChasingPaysCycles)
{
    for (const Workload &w : figure4Workloads()) {
        if (w.name != "spec2006-xalancbmk" && w.name != "network-patricia")
            continue;
        WorkloadResult mips = runWorkload(w, Abi::Mips64);
        WorkloadResult cheri = runWorkload(w, Abi::CheriAbi);
        EXPECT_GT(cheri.cycles, mips.cycles) << w.name;
        EXPECT_GE(cheri.l2Misses, mips.l2Misses) << w.name;
    }
}

TEST(Workloads, AluKernelsAreWithinNoise)
{
    for (const Workload &w : figure4Workloads()) {
        if (w.name != "auto-basicmath" && w.name != "telco-adpcm-enc")
            continue;
        WorkloadResult mips = runWorkload(w, Abi::Mips64);
        WorkloadResult cheri = runWorkload(w, Abi::CheriAbi);
        double pct = overheadPct(mips.cycles, cheri.cycles);
        EXPECT_LT(std::abs(pct), 10.0) << w.name << " " << pct << "%";
    }
}

TEST(MiniDb, InitdbRunsUnderBothAbis)
{
    InitdbResult mips = runInitdb(Abi::Mips64);
    InitdbResult cheri = runInitdb(Abi::CheriAbi);
    EXPECT_EQ(mips.filesCreated, cheri.filesCreated);
    EXPECT_GE(mips.filesCreated, 13u);
    EXPECT_EQ(mips.catalogRows, cheri.catalogRows);
    double pct = overheadPct(mips.cycles, cheri.cycles);
    // Paper: 6.8% with the large CLC immediate; allow a generous band.
    EXPECT_GT(pct, 0.0);
    EXPECT_LT(pct, 30.0);
}

TEST(MiniDb, ClcImmediateAblation)
{
    InitdbResult mips = runInitdb(Abi::Mips64);
    InitdbResult small_imm =
        runInitdb(Abi::CheriAbi, {.largeClcImmediate = false});
    InitdbResult large_imm =
        runInitdb(Abi::CheriAbi, {.largeClcImmediate = true});
    double small_pct = overheadPct(mips.cycles, small_imm.cycles);
    double large_pct = overheadPct(mips.cycles, large_imm.cycles);
    EXPECT_GT(small_pct, large_pct)
        << "the large CLC immediate must reduce the initdb overhead";
    EXPECT_GT(small_imm.codeBytes, large_imm.codeBytes)
        << "and shrink the code";
}

TEST(MiniDb, AsanCostsMultiples)
{
    InitdbResult plain = runInitdb(Abi::Mips64);
    InitdbResult asan = runInitdb(Abi::Mips64, {}, true);
    double ratio = static_cast<double>(asan.cycles) /
                   static_cast<double>(plain.cycles);
    // Paper: 3.29x for ASan-instrumented initdb.
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 6.0);
}

TEST(MiniDb, PgRegressMatchesTable1Shape)
{
    RegressTotals mips = runPgRegress(Abi::Mips64);
    EXPECT_EQ(mips.total(), 167);
    EXPECT_EQ(mips.fail, 0);
    EXPECT_EQ(mips.skip, 0);
    std::vector<RegressCase> cases;
    RegressTotals cheri = runPgRegress(Abi::CheriAbi, &cases);
    EXPECT_EQ(cheri.total(), 167);
    EXPECT_EQ(cheri.pass, 150);
    EXPECT_EQ(cheri.fail, 16);
    EXPECT_EQ(cheri.skip, 1);
    // The under-aligned-pointer failure is among them.
    bool saw_underaligned = false;
    for (const RegressCase &c : cases) {
        if (c.name == "underaligned_tuple_ptr")
            saw_underaligned = c.outcome == RegressCase::Outcome::Fail;
    }
    EXPECT_TRUE(saw_underaligned);
}

TEST(TestSuites, FreebsdSuiteMatchesTable1Shape)
{
    SuiteTotals mips = runFreebsdSuite(Abi::Mips64);
    SuiteTotals cheri = runFreebsdSuite(Abi::CheriAbi);
    EXPECT_EQ(mips.pass, 3501);
    EXPECT_EQ(mips.fail, 90);
    EXPECT_EQ(mips.skip, 244);
    EXPECT_EQ(mips.total(), 3835);
    EXPECT_EQ(cheri.pass, 3301);
    EXPECT_EQ(cheri.fail, 122);
    EXPECT_EQ(cheri.skip, 246);
    EXPECT_EQ(cheri.total(), 3669);
}

TEST(TestSuites, LibcxxSuiteMatchesTable1Shape)
{
    SuiteTotals mips = runLibcxxSuite(Abi::Mips64);
    SuiteTotals cheri = runLibcxxSuite(Abi::CheriAbi);
    EXPECT_EQ(mips.pass, 5338);
    EXPECT_EQ(mips.fail, 29);
    EXPECT_EQ(mips.skip, 789);
    EXPECT_EQ(cheri.pass, 5333);
    EXPECT_EQ(cheri.fail, 34);
    EXPECT_EQ(cheri.skip, 789);
    EXPECT_EQ(cheri.fail - mips.fail, 5)
        << "five extra failures from the missing atomics runtime";
}

TEST(SslServer, ServesFileUnderBothAbis)
{
    for (Abi abi : {Abi::Mips64, Abi::CheriAbi}) {
        SslServerReport r = runSslServer(abi);
        EXPECT_TRUE(r.handshakeOk);
        EXPECT_GT(r.bytesServed, 1000u);
        EXPECT_GE(r.allocations, 5u);
    }
}

TEST(SslServer, TraceCoversAllSourcesAndIsGranular)
{
    CapTraceRecorder rec;
    SslServerReport r = runSslServer(Abi::CheriAbi, &rec);
    ASSERT_TRUE(r.handshakeOk);
    GranularityCdf cdf(rec.all());
    // All Figure 5 sources present.
    EXPECT_GT(cdf.total(DeriveSource::Stack), 0u);
    EXPECT_GT(cdf.total(DeriveSource::Malloc), 0u);
    EXPECT_GT(cdf.total(DeriveSource::Exec), 0u);
    EXPECT_GT(cdf.total(DeriveSource::GlobRelocs), 0u);
    EXPECT_GT(cdf.total(DeriveSource::Syscall), 0u);
    EXPECT_GT(cdf.total(DeriveSource::Kern), 0u);
    EXPECT_GT(cdf.total(DeriveSource::Tls), 0u);
    // Paper headlines: no capability over 16 MiB; most are small;
    // stack and malloc capabilities stay tightly bounded.
    EXPECT_LE(cdf.maxLengthAll(), u64{16} << 20);
    EXPECT_GT(cdf.fractionBelow(1024), 0.5);
    EXPECT_LE(cdf.maxLength(DeriveSource::Stack), u64{8} << 20);
    EXPECT_LE(cdf.maxLength(DeriveSource::Malloc), u64{8} << 20);
}

} // namespace
} // namespace cheri::apps
