/**
 * @file
 * Core-dump tests: capability register values recorded at death,
 * round-trip through the file format, and the no-authority property
 * (a core file is data; reading it can never mint capabilities).
 */

#include <gtest/gtest.h>

#include "os/coredump.h"
#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

TEST(CoreDump, WrittenOnSignalDeath)
{
    GuestSystem sys(Abi::CheriAbi);
    GuestContext &ctx = *sys.ctx;
    GuestPtr buf = ctx.mmap(pageSize);
    sys.proc->regs().c[5] = buf.cap; // something recognizable
    int rc = runGuest(ctx, [&](GuestContext &c) {
        auto narrow = buf.cap.setBounds(8);
        c.load<u64>(GuestPtr{narrow.value()}, 64);
        return 0;
    });
    ASSERT_EQ(rc, 128 + SIG_PROT);
    std::string path = "/cores/" + sys.proc->name() + "." +
                       std::to_string(sys.proc->pid()) + ".core";
    VNodeRef node = sys.kern.vfs().lookup(path);
    ASSERT_NE(node, nullptr) << path;
    auto core = readCoreFile(*node);
    ASSERT_TRUE(core.has_value());
    EXPECT_EQ(core->pid, sys.proc->pid());
    EXPECT_EQ(core->signal, SIG_PROT);
    EXPECT_EQ(core->fault, CapFault::LengthViolation);
    // The register values made it, with their metadata...
    EXPECT_EQ(core->regs.c[5].address(), buf.cap.address());
    EXPECT_EQ(core->regs.c[5].base(), buf.cap.base());
    EXPECT_EQ(core->regs.c[5].perms(), buf.cap.perms());
    // ...but as data: no record in a core file carries a tag.
    EXPECT_FALSE(core->regs.c[5].tag());
    EXPECT_FALSE(core->regs.pcc.tag());
}

TEST(CoreDump, RecordsMemoryMap)
{
    GuestSystem sys(Abi::CheriAbi);
    sys.ctx->mmap(3 * pageSize);
    runGuest(*sys.ctx, [](GuestContext &c) {
        c.load<u64>(c.ptrFromInt(0x1)); // immediate fault
        return 0;
    });
    VNodeRef node = sys.kern.vfs().lookup(
        "/cores/" + sys.proc->name() + "." +
        std::to_string(sys.proc->pid()) + ".core");
    ASSERT_NE(node, nullptr);
    auto core = readCoreFile(*node);
    ASSERT_TRUE(core.has_value());
    bool saw_stack = false, saw_text = false;
    for (const Mapping &m : core->mappings) {
        saw_stack |= m.kind == MappingKind::Stack;
        saw_text |= m.kind == MappingKind::Text;
    }
    EXPECT_TRUE(saw_stack);
    EXPECT_TRUE(saw_text);
}

TEST(CoreDump, MalformedFileRejected)
{
    VNode junk;
    junk.data = {'n', 'o', 't', 'a', 'c', 'o', 'r', 'e', 0, 0};
    EXPECT_FALSE(readCoreFile(junk).has_value());
    VNode tiny;
    tiny.data = {'M'};
    EXPECT_FALSE(readCoreFile(tiny).has_value());
    // Truncated after the magic.
    VNode trunc;
    const char magic[] = "MBSDCORE";
    trunc.data.assign(magic, magic + 8);
    EXPECT_FALSE(readCoreFile(trunc).has_value());
}

TEST(CoreDump, NormalExitLeavesNoCore)
{
    GuestSystem sys(Abi::CheriAbi);
    runGuest(*sys.ctx, [](GuestContext &) { return 0; });
    EXPECT_EQ(sys.kern.vfs().readdir("/cores").size(), 0u);
}

} // namespace
} // namespace cheri
