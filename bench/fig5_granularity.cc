/**
 * @file
 * Figure 5 reproduction: capability-granularity CDF from a traced run
 * of the openssl s_server analogue (startup, authentication, file
 * exchange), grouped by derivation source.
 */

#include "apps/sslserver.h"
#include "bench_util.h"
#include "trace/analysis.h"

using namespace cheri;
using namespace cheri::apps;

int
main()
{
    CapTraceRecorder rec;
    SslServerReport report = runSslServer(Abi::CheriAbi, &rec);

    bench::banner("Figure 5: cumulative capability count by bounds size "
                  "(mini_s_server)");
    std::printf("run: handshake=%s, %lu bytes served, %lu capability "
                "derivations traced\n\n",
                report.handshakeOk ? "ok" : "FAILED",
                static_cast<unsigned long>(report.bytesServed),
                static_cast<unsigned long>(rec.count()));

    GranularityCdf cdf(rec.all());
    std::printf("%s\n", cdf.formatTable().c_str());

    bench::banner("Headline statistics (paper section 5.5)");
    std::printf("largest capability bound:      %lu bytes "
                "(paper: no capability > 16 MiB)\n",
                static_cast<unsigned long>(cdf.maxLengthAll()));
    std::printf("fraction with bounds <= 1 KiB: %.1f%% "
                "(paper: ~90%%)\n",
                cdf.fractionBelow(1024) * 100.0);
    std::printf("largest stack capability:      %lu bytes "
                "(paper: <= 8 MiB)\n",
                static_cast<unsigned long>(
                    cdf.maxLength(DeriveSource::Stack)));
    std::printf("largest malloc capability:     %lu bytes "
                "(paper: <= 8 MiB)\n",
                static_cast<unsigned long>(
                    cdf.maxLength(DeriveSource::Malloc)));
    std::printf("kern/syscall capability count: %lu / %lu of %lu "
                "(paper: lines nearly on the X-axis)\n",
                static_cast<unsigned long>(
                    cdf.total(DeriveSource::Kern)),
                static_cast<unsigned long>(
                    cdf.total(DeriveSource::Syscall)),
                static_cast<unsigned long>(cdf.totalAll()));
    bench::note("\n(A legacy mips64 run would be a single vertical "
                "line at the maximum\nuser address: every pointer "
                "carries whole-address-space authority.)");
    return 0;
}
