file(REMOVE_RECURSE
  "libcheri_guest.a"
)
