/**
 * @file
 * Guest-memory micro-benchmarks for the unified access path.
 *
 * Compares the reference walk-per-access path (AddressSpace::readBytes,
 * a std::map page-table lookup on every call) against the software-TLB
 * fast path (MemAccess) over the access patterns that dominate guest
 * execution: sequential, random, and strided 8-byte reads over a
 * prefaulted region, page-chunked string copyin, and fork/COW churn.
 *
 * Every workload checksums through both paths and aborts on mismatch,
 * so the speedup numbers are only reported for equivalent semantics.
 * With --json the results are machine-readable; --check exits nonzero
 * unless the sequential fast path clears a 1.5x floor (the acceptance
 * gate; typical speedups are far higher).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mem/access.h"
#include "mem/phys_mem.h"
#include "mem/swap.h"
#include "mem/vm.h"

using namespace cheri;

namespace
{

using Clock = std::chrono::steady_clock;

constexpr u64 kRegionBytes = 4u << 20; // 4 MiB, prefaulted
constexpr u64 kWordsPerPass = kRegionBytes / 8;

struct PatternResult
{
    std::string name;
    double walkMiBs = 0;
    double tlbMiBs = 0;
    double speedup() const { return walkMiBs > 0 ? tlbMiBs / walkMiBs : 0; }
};

double
mibPerSec(u64 bytes, Clock::duration d)
{
    double secs = std::chrono::duration<double>(d).count();
    return secs > 0 ? bytes / (1024.0 * 1024.0) / secs : 0;
}

/** One 8-byte read per offset through either path; returns a checksum
 *  the caller compares across paths (and which defeats the optimizer). */
template <typename ReadFn>
u64
sweep(const std::vector<u64> &offsets, u64 base, ReadFn &&rd)
{
    u64 sum = 0;
    for (u64 off : offsets) {
        u64 v = 0;
        if (rd(base + off, &v, 8))
            std::abort(); // prefaulted region: a fault is a bench bug
        sum += v;
    }
    return sum;
}

PatternResult
runPattern(const std::string &name, AddressSpace &as, MemAccess &mem,
           u64 base, const std::vector<u64> &offsets)
{
    PatternResult r;
    r.name = name;
    u64 bytes = offsets.size() * 8;

    auto t0 = Clock::now();
    u64 walk_sum = sweep(offsets, base, [&](u64 va, void *buf, u64 len) {
        return as.readBytes(va, buf, len).has_value();
    });
    auto t1 = Clock::now();
    u64 tlb_sum = sweep(offsets, base, [&](u64 va, void *buf, u64 len) {
        return mem.read(va, buf, len).has_value();
    });
    auto t2 = Clock::now();

    if (walk_sum != tlb_sum) {
        std::fprintf(stderr, "%s: path divergence (%llx vs %llx)\n",
                     name.c_str(),
                     static_cast<unsigned long long>(walk_sum),
                     static_cast<unsigned long long>(tlb_sum));
        std::exit(2);
    }
    r.walkMiBs = mibPerSec(bytes, t1 - t0);
    r.tlbMiBs = mibPerSec(bytes, t2 - t1);
    return r;
}

struct Lcg
{
    u64 s;
    u64 next() { return s = s * 6364136223846793005ull + 1442695040888963407ull; }
};

/** copyinstr shape: bytes scanned per second for a 2-page string. */
PatternResult
runCopyinstr(AddressSpace &as, MemAccess &mem, u64 base)
{
    PatternResult r;
    r.name = "copyinstr";
    const u64 str_len = 2 * pageSize - 64;
    std::string s(str_len, 'a');
    if (mem.write(base, s.c_str(), s.size() + 1))
        std::abort();

    const int iters = 400;
    // Legacy shape: one readBytes per byte until the NUL (what the
    // kernel did before the page-chunked reader).
    auto t0 = Clock::now();
    u64 legacy_len = 0;
    for (int i = 0; i < iters; ++i) {
        legacy_len = 0;
        for (;;) {
            char c = 0;
            if (as.readBytes(base + legacy_len, &c, 1).has_value())
                std::abort();
            if (c == '\0')
                break;
            ++legacy_len;
        }
    }
    auto t1 = Clock::now();
    std::string out;
    u64 chunked_len = 0;
    for (int i = 0; i < iters; ++i) {
        if (mem.readString(base, &out, str_len + 1, nullptr) !=
            MemAccess::StrRead::Ok)
            std::abort();
        chunked_len = out.size();
    }
    auto t2 = Clock::now();

    if (legacy_len != chunked_len || chunked_len != str_len)
        std::exit(2);
    r.walkMiBs = mibPerSec(u64{iters} * (str_len + 1), t1 - t0);
    r.tlbMiBs = mibPerSec(u64{iters} * (str_len + 1), t2 - t1);
    return r;
}

/** fork/COW churn: forkCopy, dirty half the parent's pages through the
 *  TLB path, verify the child still sees the original bytes. */
double
runForkChurn(PhysMem &phys, SwapDevice &swap)
{
    AddressSpace as(phys, swap, 100);
    MemAccess mem(as);
    const u64 pages = 64;
    u64 base = as.map(0, pages * pageSize, PROT_READ | PROT_WRITE,
                      MappingKind::Data);
    for (u64 p = 0; p < pages; ++p) {
        u64 v = p;
        if (mem.write(base + p * pageSize, &v, 8))
            std::abort();
    }

    const int iters = 50;
    auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
        std::unique_ptr<AddressSpace> child = as.forkCopy(200 + i);
        MemAccess child_mem(*child);
        for (u64 p = 0; p < pages; p += 2) {
            u64 v = (u64{0xF00D} << 16) | p;
            if (mem.write(base + p * pageSize, &v, 8))
                std::abort();
        }
        for (u64 p = 1; p < pages; p += 2) {
            u64 got = 0;
            if (child_mem.read(base + p * pageSize, &got, 8))
                std::abort();
            if (got != p)
                std::exit(2); // COW leak: child saw a parent store
        }
        // Restore the parent's pattern for the next round.
        for (u64 p = 0; p < pages; p += 2) {
            u64 v = p;
            if (mem.write(base + p * pageSize, &v, 8))
                std::abort();
        }
    }
    auto t1 = Clock::now();
    return std::chrono::duration<double>(t1 - t0).count() * 1000.0 /
           iters;
}

/** Constrained-memory phase: drive a working set several times larger
 *  than the frame budget through the TLB path, with LRU reclaim as the
 *  only thing standing between the workload and allocation failure. */
struct PressureResult
{
    u64 frameBudget = 0;
    u64 slotBudget = 0;
    u64 pages = 0;
    u64 maxLiveFrames = 0;
    u64 maxUsedSlots = 0;
    u64 reclaimCalls = 0;
    u64 pagesEvicted = 0;
    double ms = 0;
    bool completed = false;
    bool budgetsHeld() const
    {
        return maxLiveFrames <= frameBudget && maxUsedSlots <= slotBudget;
    }
};

PressureResult
runPressure(u64 frame_budget, u64 slot_budget)
{
    PressureResult r;
    r.frameBudget = frame_budget;
    r.slotBudget = slot_budget;
    r.pages = 4 * frame_budget;

    PhysMem phys;
    SwapDevice swap;
    phys.setCapacity(frame_budget);
    swap.setSlotBudget(slot_budget);
    AddressSpace as(phys, swap, 1);
    MemAccess mem(as);
    // The reclaim hook is the bench's stand-in for the kernel's LRU
    // pass: evict a few pages beyond the immediate need so every fault
    // does not pay for a reclaim.
    phys.setReclaimHook([&](u64 wanted, const void *) {
        ++r.reclaimCalls;
        u64 n = as.swapOutResident(wanted + 7);
        r.pagesEvicted += n;
        return n;
    });

    u64 base = as.map(0, r.pages * pageSize, PROT_READ | PROT_WRITE,
                      MappingKind::Data);
    if (base == 0)
        return r;
    auto sample = [&] {
        r.maxLiveFrames = std::max(r.maxLiveFrames, phys.liveFrames());
        r.maxUsedSlots = std::max(r.maxUsedSlots, swap.usedSlots());
    };
    auto t0 = Clock::now();
    for (u64 p = 0; p < r.pages; ++p) {
        u64 v = p * 2654435761u;
        if (mem.write(base + p * pageSize, &v, 8))
            return r; // exhaustion must not occur with reclaim armed
        sample();
    }
    // Read everything back — half the set is on swap by now, so this
    // exercises swap-in under the same budgets.
    for (u64 p = 0; p < r.pages; ++p) {
        u64 got = 0;
        if (mem.read(base + p * pageSize, &got, 8))
            return r;
        if (got != p * 2654435761u)
            return r; // reclaim corrupted the working set
        sample();
    }
    auto t1 = Clock::now();
    r.ms = std::chrono::duration<double>(t1 - t0).count() * 1000.0;
    r.completed = true;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool check = false;
    u64 frame_budget = 64;
    u64 slot_budget = 256;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json"))
            json = true;
        else if (!std::strcmp(argv[i], "--check"))
            check = true;
        else if (!std::strcmp(argv[i], "--frames") && i + 1 < argc)
            frame_budget = std::strtoull(argv[++i], nullptr, 0);
        else if (!std::strcmp(argv[i], "--slots") && i + 1 < argc)
            slot_budget = std::strtoull(argv[++i], nullptr, 0);
    }

    PhysMem phys;
    SwapDevice swap;
    AddressSpace as(phys, swap, 1);
    MemAccess mem(as);
    u64 base = as.map(0, kRegionBytes, PROT_READ | PROT_WRITE,
                      MappingKind::Data);
    // Prefault with a nonzero pattern so the sweeps measure steady
    // state, not demand-zero service.
    for (u64 off = 0; off < kRegionBytes; off += 8) {
        u64 v = off * 2654435761u;
        if (as.writeBytes(base + off, &v, 8).has_value())
            std::abort();
    }

    std::vector<u64> seq(kWordsPerPass);
    for (u64 i = 0; i < kWordsPerPass; ++i)
        seq[i] = i * 8;

    std::vector<u64> rnd(kWordsPerPass);
    Lcg rng{42};
    for (u64 i = 0; i < kWordsPerPass; ++i)
        rnd[i] = (rng.next() % kWordsPerPass) * 8;

    // Stride chosen co-prime with the TLB geometry so the sweep still
    // touches every set instead of ping-ponging one entry.
    std::vector<u64> strided(kWordsPerPass);
    for (u64 i = 0; i < kWordsPerPass; ++i)
        strided[i] = (i * 264) % kRegionBytes;

    std::vector<PatternResult> results;
    results.push_back(runPattern("sequential", as, mem, base, seq));
    results.push_back(runPattern("random", as, mem, base, rnd));
    results.push_back(runPattern("strided", as, mem, base, strided));
    results.push_back(runCopyinstr(as, mem, base));
    double fork_ms = runForkChurn(phys, swap);
    PressureResult pr = runPressure(frame_budget, slot_budget);

    const MemAccess::Stats &st = mem.stats();
    if (json) {
        std::printf("{\n  \"schema\": \"cheri.vm_micro.v1\",\n");
        std::printf("  \"region_bytes\": %llu,\n",
                    static_cast<unsigned long long>(kRegionBytes));
        std::printf("  \"patterns\": [\n");
        for (size_t i = 0; i < results.size(); ++i) {
            const PatternResult &r = results[i];
            std::printf("    {\"name\": \"%s\", \"walk_mib_s\": %.1f, "
                        "\"tlb_mib_s\": %.1f, \"speedup\": %.2f}%s\n",
                        r.name.c_str(), r.walkMiBs, r.tlbMiBs,
                        r.speedup(), i + 1 < results.size() ? "," : "");
        }
        std::printf("  ],\n");
        std::printf("  \"fork_cow_churn_ms\": %.3f,\n", fork_ms);
        std::printf("  \"pressure\": {\"frame_budget\": %llu, "
                    "\"slot_budget\": %llu, \"pages\": %llu, "
                    "\"max_live_frames\": %llu, \"max_used_slots\": "
                    "%llu, \"reclaim_calls\": %llu, \"pages_evicted\": "
                    "%llu, \"ms\": %.3f, \"completed\": %s},\n",
                    static_cast<unsigned long long>(pr.frameBudget),
                    static_cast<unsigned long long>(pr.slotBudget),
                    static_cast<unsigned long long>(pr.pages),
                    static_cast<unsigned long long>(pr.maxLiveFrames),
                    static_cast<unsigned long long>(pr.maxUsedSlots),
                    static_cast<unsigned long long>(pr.reclaimCalls),
                    static_cast<unsigned long long>(pr.pagesEvicted),
                    pr.ms, pr.completed ? "true" : "false");
        std::printf("  \"tlb\": {\"data_hits\": %llu, \"data_misses\": "
                    "%llu, \"invalidations\": %llu}\n}\n",
                    static_cast<unsigned long long>(st.dataHits),
                    static_cast<unsigned long long>(st.dataMisses),
                    static_cast<unsigned long long>(st.invalidations));
    } else {
        bench::banner("Guest-memory access paths: walk vs software TLB");
        bench::note("8-byte reads over a prefaulted 4 MiB region; the "
                    "walk column is the");
        bench::note("pre-refactor AddressSpace::readBytes path, the TLB "
                    "column is MemAccess.");
        std::printf("\n%-12s %14s %14s %10s\n", "pattern", "walk MiB/s",
                    "TLB MiB/s", "speedup");
        for (const PatternResult &r : results) {
            std::printf("%-12s %14.1f %14.1f %9.2fx\n", r.name.c_str(),
                        r.walkMiBs, r.tlbMiBs, r.speedup());
        }
        std::printf("\nfork/COW churn (64 pages, half dirtied): %.3f "
                    "ms/iter\n",
                    fork_ms);
        std::printf("pressure: %llu pages through %llu frames / %llu "
                    "slots in %.3f ms (%llu reclaims, %llu evictions, "
                    "peak %llu frames / %llu slots)%s\n",
                    static_cast<unsigned long long>(pr.pages),
                    static_cast<unsigned long long>(pr.frameBudget),
                    static_cast<unsigned long long>(pr.slotBudget),
                    pr.ms,
                    static_cast<unsigned long long>(pr.reclaimCalls),
                    static_cast<unsigned long long>(pr.pagesEvicted),
                    static_cast<unsigned long long>(pr.maxLiveFrames),
                    static_cast<unsigned long long>(pr.maxUsedSlots),
                    pr.completed ? "" : " [INCOMPLETE]");
        std::printf("TLB: %llu data hits, %llu misses, %llu "
                    "invalidations\n",
                    static_cast<unsigned long long>(st.dataHits),
                    static_cast<unsigned long long>(st.dataMisses),
                    static_cast<unsigned long long>(st.invalidations));
    }

    if (check && results[0].speedup() < 1.5) {
        std::fprintf(stderr,
                     "FAIL: sequential TLB speedup %.2fx below 1.5x\n",
                     results[0].speedup());
        return 1;
    }
    if (check && !pr.completed) {
        std::fprintf(stderr, "FAIL: constrained workload did not "
                             "complete under reclaim\n");
        return 1;
    }
    if (check && !pr.budgetsHeld()) {
        std::fprintf(stderr,
                     "FAIL: budgets breached (peak %llu/%llu frames, "
                     "%llu/%llu slots)\n",
                     static_cast<unsigned long long>(pr.maxLiveFrames),
                     static_cast<unsigned long long>(pr.frameBudget),
                     static_cast<unsigned long long>(pr.maxUsedSlots),
                     static_cast<unsigned long long>(pr.slotBudget));
        return 1;
    }
    return 0;
}
