file(REMOVE_RECURSE
  "libcheri_libc.a"
)
