#include "mem/swap.h"

namespace cheri
{

u64
SwapDevice::swapOut(const Frame &frame)
{
    if (injector && injector->shouldFail(FaultPoint::SwapOut)) {
        ++swapOutFailures;
        return invalidSlot;
    }
    if (budget != 0 && slots.size() >= budget) {
        ++swapOutFailures;
        return invalidSlot;
    }
    Slot slot;
    slot.bytes = frame.bytes();
    if (_policy == SwapPolicy::PreserveTags) {
        frame.forEachTagged([&](u64 off, const Capability &cap) {
            slot.tagMeta.emplace_back(off, cap.withoutTag());
            ++tagsPreserved;
        });
    }
    u64 id = nextSlot++;
    slots.emplace(id, std::move(slot));
    ++swapOuts;
    return id;
}

bool
SwapDevice::swapIn(u64 slot_id, Frame &frame, const Capability &root,
                   CapFault *fault)
{
    if (fault)
        *fault = CapFault::SwapInFailure;
    auto it = slots.find(slot_id);
    if (it == slots.end()) {
        // A missing slot is a device-level failure the guest can see,
        // never a host abort.
        ++swapInFailures;
        return false;
    }
    if (injector && injector->shouldFail(FaultPoint::SwapIn)) {
        // Modeled I/O error: the slot survives so the fault can be
        // retried once the condition clears.
        ++swapInFailures;
        return false;
    }
    if (!it->second.tagMeta.empty() && injector &&
        injector->shouldFail(FaultPoint::TagBitFlip)) {
        // Corrupted tag metadata detected while reading it back: drop
        // the hit entry (the tag is gone, the pattern must never be
        // rederived into a live capability) and machine-check the
        // access.  The frame and the slot's references are untouched,
        // so the retried fault completes with that granule untagged.
        it->second.tagMeta.erase(it->second.tagMeta.begin());
        if (corruption)
            corruption(FaultPoint::TagBitFlip, slot_id);
        if (fault)
            *fault = CapFault::MachineCheck;
        ++swapInFailures;
        return false;
    }
    const Slot &slot = it->second;
    frame.write(0, slot.bytes.data(), pageSize);
    for (const auto &[off, pattern] : slot.tagMeta) {
        Result<Capability> r = Capability::build(root, pattern);
        if (r.ok())
            frame.writeCap(off, r.value());
        // else: the pattern exceeded the root's authority; leave the
        // granule untagged rather than escalate.
    }
    // A fork sibling may still reference the slot; it dies with the
    // last reference, exactly like a COW frame.
    if (--it->second.refs == 0)
        slots.erase(it);
    return true;
}

void
SwapDevice::discard(u64 slot_id)
{
    auto it = slots.find(slot_id);
    if (it == slots.end())
        return;
    if (--it->second.refs == 0) {
        slots.erase(it);
        ++discards;
    }
}

void
SwapDevice::retain(u64 slot_id)
{
    auto it = slots.find(slot_id);
    if (it != slots.end())
        ++it->second.refs;
}

u64
SwapDevice::revokeMatchingInSlot(
    u64 slot_id, const std::function<bool(const Capability &)> &pred)
{
    auto it = slots.find(slot_id);
    if (it == slots.end())
        return 0;
    auto &meta = it->second.tagMeta;
    u64 before = meta.size();
    std::erase_if(meta, [&](const std::pair<u64, Capability> &e) {
        return pred(e.second);
    });
    return before - meta.size();
}

bool
SwapDevice::sweepSlot(u64 slot_id,
                      const std::function<bool(const Capability &)> &pred,
                      u64 *revoked, u64 *remaining)
{
    if (injector && injector->shouldFail(FaultPoint::SweepScan)) {
        // Modeled I/O error reading the metadata back: the slot is
        // untouched, the sweep scheduler retries the page later.
        ++sweepScanFailures;
        return false;
    }
    auto it = slots.find(slot_id);
    if (it == slots.end()) {
        if (revoked)
            *revoked = 0;
        if (remaining)
            *remaining = 0;
        return true;
    }
    auto &meta = it->second.tagMeta;
    u64 before = meta.size();
    std::erase_if(meta, [&](const std::pair<u64, Capability> &e) {
        return pred(e.second);
    });
    if (revoked)
        *revoked = before - meta.size();
    if (remaining)
        *remaining = meta.size();
    return true;
}

} // namespace cheri
