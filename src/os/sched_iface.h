/**
 * @file
 * The kernel-side scheduler interface.
 *
 * The concrete scheduler (src/os/sched) owns interpreters and therefore
 * lives above the ISA layer, which the core kernel library must not
 * link against (cheri_isa itself links cheri_os).  This header is the
 * seam: an abstract interface the kernel calls at its blocking and
 * lifecycle edges — wait4 wanting to sleep, a process dying, a fork or
 * thr_new needing admission — plus the counter block the invariant
 * oracle mirrors against Metrics (rule 6).
 *
 * Everything here is optional: a kernel with no scheduler installed
 * (schedIface == nullptr) behaves exactly as before — wait4 polls,
 * thr_switch switches immediately, fork children never run.
 */

#ifndef CHERI_OS_SCHED_IFACE_H
#define CHERI_OS_SCHED_IFACE_H

#include <vector>

#include "cap/types.h"

namespace cheri
{

class Process;

/** Why a context is off the run queue. */
enum class BlockKind
{
    None,
    /** wait4(2) with live children and no zombie yet. */
    Wait4,
    /** ev_wait(2) with a zero event counter. */
    EventWait,
    /** sleep(2) until a virtual-clock deadline. */
    Sleep,
    /** read/write/select on a file descriptor that would block. */
    Fd,
};

/**
 * What an FD-blocked context waits for: any of a set of wait-channel
 * ids (see ByteChannel::readWait/writeWait — one token per channel
 * edge), plus an optional virtual-clock deadline (select timeouts).
 * A blocking read or write passes exactly one id and no deadline;
 * select passes the ids of every not-ready fd it polled plus the
 * copied-in timeout.
 */
struct FdWait
{
    std::vector<u64> chans;
    bool hasDeadline = false;
    /** Virtual-clock ticks from now (when hasDeadline). */
    u64 deadlineTicks = 0;
};

/**
 * Scheduler accounting, mirrored into obs::Metrics (schema v6) and
 * cross-checked by the invariant oracle's metrics-mirror rule.
 */
struct SchedStats
{
    /** Slices that ran a different (pid, tid) than the previous one. */
    u64 contextSwitches = 0;
    /** Slices ended with the context still runnable: time-slice (step
     *  budget) expiry or a directed yield (thr_switch). */
    u64 preemptions = 0;
    /** Total slices dispatched (interpreted and hosted). */
    u64 slices = 0;
    u64 blocksWait4 = 0;
    u64 blocksEvent = 0;
    u64 blocksSleep = 0;
    /** FD blocks: pipe/pty read, write, and select parks. */
    u64 blocksFd = 0;
    /** Blocked contexts returned to the run queue. */
    u64 wakes = 0;
    u64 maxRunQueueDepth = 0;
    /** Idle virtual-clock advances to the earliest sleep deadline. */
    u64 idleAdvances = 0;
    /** Guest instructions retired under the scheduler. */
    u64 stepsExecuted = 0;
};

/**
 * The edges the kernel raises into the scheduler.  All admission
 * callbacks are conditional: the scheduler only admits work spawned
 * *by interpreted guests it is currently running* — host-driven tests
 * calling sysThrNew/fork directly see no behavior change.
 */
class SchedulerIface
{
  public:
    virtual ~SchedulerIface() = default;

    /**
     * Block the context currently executing @p proc.  @p arg is
     * interpreted per kind (Wait4: pid filter; Sleep: ticks from now;
     * EventWait: the pid whose counter is awaited).  @p restart asks
     * the scheduler to rewind PC by one instruction so the syscall
     * re-executes on wake (wait4/ev_wait re-check their predicate);
     * sleep completes on wake and must not restart.
     *
     * Returns false when there is nothing to block — no interpreted
     * context is running @p proc — in which case the caller must fall
     * back to its non-blocking behavior.
     */
    virtual bool blockCurrent(Process &proc, BlockKind kind, u64 arg,
                              bool restart) = 0;

    /** @p proc exited/died: retire its contexts, wake Wait4 waiters. */
    virtual void onProcessDead(Process &proc) = 0;
    /** @p pid was reaped by wait4: its Process object is gone. */
    virtual void onProcessReaped(u64 pid) = 0;
    /** A running interpreted guest forked @p child: admit it. */
    virtual void onFork(Process &child) = 0;
    /** A running interpreted guest created thread @p tid: admit it. */
    virtual void onThreadNew(Process &proc, u64 tid) = 0;
    /**
     * thr_switch from a running interpreted guest: a *directed yield*
     * (the scheduler owns register-file switching and performs it at
     * the slice boundary).  Returns false when not handled — the
     * caller performs the legacy immediate switch.
     */
    virtual bool onThreadSwitch(Process &proc, u64 tid) = 0;
    /** Thread @p tid self-exited (zombie until the next pick). */
    virtual void onThreadExit(Process &proc, u64 tid) = 0;
    /** An event was posted to @p pid: wake its EventWait contexts. */
    virtual void onEventPost(u64 pid) = 0;

    /** @name FD blocking (BlockKind::Fd)
     * FD parks always restart (PC rewound one instruction) so the
     * woken syscall re-runs its readiness check from scratch — the
     * wake is a hint, not a guarantee (another context may have
     * drained the channel first).
     */
    /// @{
    /**
     * Park the context currently executing @p proc until one of
     * @p wait's channel edges fires or its deadline passes.  A
     * deadline is armed once per park/restart cycle: re-blocking
     * while a deadline is already armed keeps the *original* one, so
     * a restarted select does not push its timeout into the future.
     * Returns false when no interpreted context is running @p proc
     * (caller falls back to non-blocking behavior).
     */
    virtual bool blockCurrentFd(Process &proc, const FdWait &wait) = 0;
    /** Wait-channel @p chan fired (data, space, or close): wake every
     *  context parked on it.  Returns how many were woken. */
    virtual u64 onFdWake(u64 chan) = 0;
    /**
     * True exactly once after @p proc's context was woken by its FD
     * deadline expiring (clears the armed deadline): the restarted
     * select distinguishes "timed out" from "woken by readiness".
     */
    virtual bool consumeFdTimeout(Process &proc) = 0;
    /** Disarm any FD deadline on @p proc's context — called on every
     *  non-blocking select return so stale deadlines cannot leak into
     *  a later park. */
    virtual void clearFdDeadline(Process &proc) = 0;
    /// @}

    /** Drain the run queue (see Kernel::runUntilIdle). */
    virtual void runUntilIdle() = 0;

    /** True while a drain is in progress (a slice is on the stack).
     *  dispatch() consults this to decide whether a kernel panic must
     *  propagate up to the scheduler's catch site or can be absorbed
     *  locally. */
    virtual bool active() const { return false; }

    /**
     * Kernel-panic teardown: retire every context and clear the queues
     * WITHOUT destroying the scheduler object itself — panicReset()
     * runs underneath the scheduler's own drain loop, so the object
     * must survive the call and come back empty.
     */
    virtual void resetForPanic() {}

    virtual const SchedStats &stats() const = 0;
};

} // namespace cheri

#endif // CHERI_OS_SCHED_IFACE_H
