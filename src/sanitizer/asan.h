/**
 * @file
 * AddressSanitizer model.
 *
 * The paper compares CheriABI against LLVM AddressSanitizer (section 5):
 * similar spatial protection for heap/stack/global allocations, but
 * implemented in software with shadow memory and redzones, at ~3×
 * run-time cost and with characteristic detection gaps — an access that
 * jumps clear over the redzone into another valid allocation goes
 * unnoticed.  This model reproduces both the mechanism and the gaps:
 *
 *  - every allocation is surrounded by poisoned redzones whose size
 *    follows ASan's policy (bounded, not proportional to stride);
 *  - freed memory is poisoned and quarantined;
 *  - checks consult the shadow state exactly at the accessed bytes, so
 *    a far-out-of-bounds access that lands in live memory is a miss.
 *
 * Cost-wise, the shadow check instrumentation lives in CostModel
 * (MachineFeatures::asanInstrumentation); this class adds the allocator
 * overheads (redzone footprint, poisoning work).
 */

#ifndef CHERI_SANITIZER_ASAN_H
#define CHERI_SANITIZER_ASAN_H

#include <map>
#include <deque>

#include "guest/context.h"
#include "libc/malloc.h"

namespace cheri
{

/** Thrown when an instrumented access touches poisoned shadow. */
class AsanReport : public std::runtime_error
{
  public:
    enum class Kind
    {
        HeapBufferOverflow,
        StackBufferOverflow,
        GlobalBufferOverflow,
        UseAfterFree,
    };

    AsanReport(Kind kind, u64 addr)
        : std::runtime_error("AddressSanitizer: access at " +
                             std::to_string(addr)),
          _kind(kind), _addr(addr)
    {
    }

    Kind kind() const { return _kind; }
    u64 addr() const { return _addr; }

  private:
    Kind _kind;
    u64 _addr;
};

class AsanRuntime
{
  public:
    /**
     * @param ctx guest context (should run with asanInstrumentation so
     *        the cost model charges shadow checks)
     */
    explicit AsanRuntime(GuestContext &ctx);

    /** Redzone ASan places around an allocation of @p size bytes. */
    static u64 redzoneFor(u64 size);

    /** Instrumented heap allocation: left+right redzones, shadow
     *  unpoisoned only over the payload. */
    GuestPtr malloc(u64 size);

    /** Poison + quarantine; reuse is deferred. */
    void free(const GuestPtr &p);

    /** Instrumented stack slot within @p frame. */
    GuestPtr stackAlloc(StackFrame &frame, u64 size);

    /** Register a global of @p size at @p addr with redzones. */
    void registerGlobal(const GuestPtr &p, u64 size);

    /**
     * The compiler-inserted check: throws AsanReport if any byte of
     * [addr, addr+len) is poisoned.  Returns normally otherwise —
     * including for wild accesses into unpoisoned valid memory (the
     * model's deliberate blind spot).
     */
    void checkAccess(u64 addr, u64 len) const;

    /** Instrumented load/store helpers (check + access + cost). */
    template <typename T>
    T
    load(const GuestPtr &p, s64 off = 0)
    {
        checkAccess(p.addr() + static_cast<u64>(off), sizeof(T));
        return ctx.load<T>(p, off);
    }

    template <typename T>
    void
    store(const GuestPtr &p, s64 off, T v)
    {
        checkAccess(p.addr() + static_cast<u64>(off), sizeof(T));
        ctx.store<T>(p, off, v);
    }

    /** Bytes of redzone + quarantine currently held (memory overhead). */
    u64 shadowOverheadBytes() const { return overheadBytes; }

  private:
    struct PoisonRange
    {
        u64 end = 0;
        AsanReport::Kind kind = AsanReport::Kind::HeapBufferOverflow;
    };

    /** Mark [start, end) poisoned (replacing any overlap). */
    void poison(u64 start, u64 end, AsanReport::Kind kind);
    /** Clear poison over [start, end), splitting intervals. */
    void unpoison(u64 start, u64 end);
    void ensureArena();

    GuestContext &ctx;
    /**
     * The instrumented heap: one contiguous arena, fully poisoned at
     * creation; allocations carve unpoisoned payloads out of it (a
     * bump allocator — freed memory stays quarantined forever, which
     * over-approximates ASan's quarantine but only strengthens it).
     */
    GuestPtr arena;
    u64 arenaBump = 0;
    u64 arenaEnd = 0;
    /** Poisoned intervals (disjoint): start -> (end, kind). */
    std::map<u64, PoisonRange> poisoned;
    std::map<u64, u64> liveSizes; // payload start -> size
    std::deque<std::pair<u64, u64>> quarantine;
    u64 overheadBytes = 0;
};

} // namespace cheri

#endif // CHERI_SANITIZER_ASAN_H
