/**
 * @file
 * Ablation: 128-bit compressed vs 256-bit uncompressed capabilities.
 *
 * The paper benchmarks the 128-bit format because "its lower overheads
 * make it a more realistic candidate for commercial adoption"
 * (section 5), at the price of representability padding (footnote 2).
 * This bench quantifies both sides: pointer-dense workloads under both
 * formats, and the allocation padding the compressed format forces.
 */

#include "apps/minidb.h"
#include "apps/workloads.h"
#include "bench_util.h"

using namespace cheri;
using namespace cheri::apps;

namespace
{

WorkloadResult
runWith(const Workload &w, Abi abi, compress::CapFormat fmt)
{
    KernelConfig cfg;
    cfg.capFormat = fmt;
    Kernel kern(cfg);
    SelfObject prog;
    prog.name = w.name;
    Process *proc = kern.spawn(abi, w.name);
    if (kern.execve(*proc, prog, {w.name}, {}) != E_OK)
        throw std::runtime_error("execve failed");
    GuestContext ctx(kern, *proc);
    GuestMalloc heap(ctx);
    proc->cost().reset();
    w.run(ctx, heap);
    WorkloadResult r;
    r.name = w.name;
    r.instructions = proc->cost().instructions();
    r.cycles = proc->cost().cycles();
    r.l2Misses = proc->cost().l2Misses();
    return r;
}

} // namespace

int
main()
{
    bench::banner("Ablation: capability format (cycle overhead vs "
                  "mips64)");
    std::printf("%-24s %12s %12s\n", "benchmark", "cheri-128",
                "cheri-256");
    for (const Workload &w : figure4Workloads()) {
        if (w.name != "network-patricia" && w.name != "auto-qsort" &&
            w.name != "spec2006-xalancbmk" && w.name != "spec2006-astar" &&
            w.name != "auto-basicmath") {
            continue;
        }
        WorkloadResult mips =
            runWith(w, Abi::Mips64, compress::CapFormat::Cap128);
        WorkloadResult c128 =
            runWith(w, Abi::CheriAbi, compress::CapFormat::Cap128);
        WorkloadResult c256 =
            runWith(w, Abi::CheriAbi, compress::CapFormat::Cap256);
        std::printf("%-24s %+11.1f%% %+11.1f%%\n", w.name.c_str(),
                    overheadPct(mips.cycles, c128.cycles),
                    overheadPct(mips.cycles, c256.cycles));
    }

    bench::banner("The compressed format's price: allocation padding");
    std::printf("%-18s %16s %16s\n", "request", "cap128 bounds",
                "cap256 bounds");
    for (u64 want :
         {u64{100}, u64{1} << 14, (u64{1} << 20) + 7,
          (u64{1} << 26) + 4096}) {
        auto bounds = [&](compress::CapFormat fmt) {
            return compress::representableLength(want, fmt);
        };
        std::printf("%-18lu %16lu %16lu\n",
                    static_cast<unsigned long>(want),
                    static_cast<unsigned long>(
                        bounds(compress::CapFormat::Cap128)),
                    static_cast<unsigned long>(
                        bounds(compress::CapFormat::Cap256)));
    }
    bench::note("\nShape: 256-bit capabilities give exact bounds but "
                "double pointer\nfootprint again — the pointer-dense "
                "workloads pay visibly more.");
    return 0;
}
