#include "apps/sslserver.h"

#include "libc/cstring.h"
#include "libc/malloc.h"
#include "libc/tls.h"

namespace cheri::apps
{

namespace
{

SelfObject
makeLibcrypto()
{
    SelfObject lib;
    lib.name = "libcrypto.so";
    lib.textSize = 0x18000;
    lib.data.resize(4096);
    for (int i = 0; i < 20; ++i) {
        lib.symbols.push_back({"crypto_table_" + std::to_string(i),
                               static_cast<u64>(i * 128), 128, false});
        lib.relocs.push_back({RelocKind::CapGlobal,
                              static_cast<u64>(i), 0,
                              "crypto_table_" + std::to_string(i)});
    }
    lib.symbols.push_back({"BN_mod_exp", 0x400, 0x300, true});
    lib.symbols.push_back({"EVP_cipher", 0x800, 0x200, true});
    lib.relocs.push_back({RelocKind::CapFunction, 20, 0, "BN_mod_exp"});
    lib.relocs.push_back({RelocKind::CapFunction, 21, 0, "EVP_cipher"});
    return lib;
}

SelfObject
makeLibssl()
{
    SelfObject lib;
    lib.name = "libssl.so";
    lib.textSize = 0x14000;
    lib.data.resize(2048);
    lib.needed = {"libcrypto.so"};
    for (int i = 0; i < 12; ++i) {
        lib.symbols.push_back({"ssl_state_" + std::to_string(i),
                               static_cast<u64>(i * 64), 64, false});
        lib.relocs.push_back({RelocKind::CapGlobal,
                              static_cast<u64>(i), 0,
                              "ssl_state_" + std::to_string(i)});
    }
    lib.symbols.push_back({"SSL_accept", 0x200, 0x400, true});
    lib.relocs.push_back({RelocKind::CapFunction, 12, 0, "SSL_accept"});
    lib.relocs.push_back({RelocKind::CapFunction, 13, 0, "BN_mod_exp"});
    return lib;
}

SelfObject
makeServerProgram()
{
    SelfObject prog;
    prog.name = "mini_s_server";
    prog.textSize = 0xC000;
    prog.data.resize(1024);
    prog.needed = {"libssl.so"};
    for (int i = 0; i < 8; ++i) {
        prog.symbols.push_back({"srv_conf_" + std::to_string(i),
                                static_cast<u64>(i * 32), 32, false});
        prog.relocs.push_back({RelocKind::CapGlobal,
                               static_cast<u64>(i), 0,
                               "srv_conf_" + std::to_string(i)});
    }
    prog.relocs.push_back({RelocKind::CapFunction, 8, 0, "SSL_accept"});
    return prog;
}

/** Toy modular exponentiation (the "RSA" of the handshake). */
u64
modPow(GuestContext &ctx, u64 base, u64 exp, u64 mod)
{
    u64 result = 1;
    base %= mod;
    while (exp) {
        if (exp & 1)
            result = (result * base) % mod;
        base = (base * base) % mod;
        exp >>= 1;
        ctx.work(8);
    }
    return result;
}

/** Keystream cipher: xorshift seeded with the session key. */
void
cipherInPlace(GuestContext &ctx, const GuestPtr &buf, u64 len, u64 key)
{
    u64 ks = key | 1;
    for (u64 i = 0; i < len; ++i) {
        ks ^= ks << 13;
        ks ^= ks >> 7;
        ks ^= ks << 17;
        u8 b = ctx.load<u8>(buf, static_cast<s64>(i));
        ctx.store<u8>(buf, static_cast<s64>(i),
                      b ^ static_cast<u8>(ks));
    }
}

} // namespace

SslServerReport
runSslServer(Abi abi, TraceSink *trace)
{
    Kernel kern;
    kern.setTrace(trace);
    static const SelfObject libcrypto = makeLibcrypto();
    static const SelfObject libssl = makeLibssl();
    kern.rtld().registerLibrary(&libcrypto);
    kern.rtld().registerLibrary(&libssl);
    static const SelfObject prog = makeServerProgram();

    // The document the server will serve.
    auto doc = kern.vfs().createFile("/var/www/index.html");
    std::string body =
        "<html><body>CheriABI reproduction: abstract capabilities "
        "in practice</body></html>\n";
    for (int i = 0; i < 220; ++i) {
        doc->data.insert(doc->data.end(), body.begin(), body.end());
    }

    Process *proc = kern.spawn(abi, "mini_s_server");
    if (kern.execve(*proc, prog,
                    {"mini_s_server", "-cert", "/etc/server.pem",
                     "-www"},
                    {"OPENSSL_CONF=/etc/openssl.cnf"}) != E_OK) {
        throw std::runtime_error("s_server: execve failed");
    }
    GuestContext ctx(kern, *proc);
    GuestMalloc heap(ctx);
    GuestTls tls(ctx);

    SslServerReport report;

    // "Listening socket": a pty pair; the master side is the client.
    auto [client_end, server_end] = Vfs::makePty();
    auto server_of = std::make_shared<OpenFile>();
    server_of->node = server_end;
    server_of->flags = O_RDWR;
    int server_fd = proc->allocFd(server_of);
    auto client_of = std::make_shared<OpenFile>();
    client_of->node = client_end;
    client_of->flags = O_RDWR;
    int client_fd = proc->allocFd(client_of);

    // Session state lives in libssl's TLS block.
    GuestPtr session = tls.moduleBlock(2, 256);

    // kevent registration: the kernel holds the session pointer.
    KEvent reg;
    reg.ident = server_fd;
    reg.filter = KFilter::Read;
    reg.udata = session.cap;
    kern.sysKevent(*proc, {reg}, nullptr, 0);

    // --- Client hello: nonce + DH-ish public value. -----------------
    {
        StackFrame frame(ctx, 256, 2);
        GuestPtr hello = frame.alloc(32);
        ctx.store<u64>(hello, 0, 0x48454C4C4F313341); // magic
        u64 client_secret = 0x1234567;
        u64 client_pub = modPow(ctx, 5, client_secret, 0xFFFFFFFB);
        ctx.store<u64>(hello, 8, client_pub);
        ctx.store<u64>(hello, 16, 0xC11E47); // nonce
        ctx.write(client_fd, hello, 32);

        // --- Server accept: poll, read hello, compute shared key. ---
        std::vector<KEvent> events;
        kern.sysKevent(*proc, {}, &events, 4);
        report.handshakeOk = !events.empty() &&
                             events[0].udata.address() ==
                                 session.cap.address();
        GuestPtr inbuf = heap.malloc(64);
        ++report.allocations;
        ctx.read(server_fd, inbuf, 32);
        u64 magic = ctx.load<u64>(inbuf, 0);
        report.handshakeOk &= magic == 0x48454C4C4F313341;
        u64 peer_pub = ctx.load<u64>(inbuf, 8);
        u64 server_secret = 0x7654321;
        u64 server_pub = modPow(ctx, 5, server_secret, 0xFFFFFFFB);
        u64 shared = modPow(ctx, peer_pub, server_secret, 0xFFFFFFFB);
        // Stash the session key in TLS.
        ctx.store<u64>(tls.var(2, 0), 0, shared);
        ctx.store<u64>(tls.var(2, 8), 0, ctx.load<u64>(inbuf, 16));
        heap.free(inbuf);

        // --- Server hello back. -------------------------------------
        GuestPtr shello = frame.alloc(16);
        ctx.store<u64>(shello, 0, server_pub);
        ctx.store<u64>(shello, 8, 0x53525632); // server nonce
        ctx.write(server_fd, shello, 16);

        // Client derives the same key.
        GuestPtr cin = heap.malloc(16);
        ++report.allocations;
        ctx.read(client_fd, cin, 16);
        u64 client_shared =
            modPow(ctx, ctx.load<u64>(cin, 0), client_secret,
                   0xFFFFFFFB);
        report.handshakeOk &= client_shared == shared;
        heap.free(cin);
    }

    // --- Serve the file: read, encrypt, send in records. --------------
    u64 key = ctx.load<u64>(tls.var(2, 0), 0);
    s64 fd = ctx.open("/var/www/index.html", O_RDONLY);
    if (fd >= 0) {
        for (;;) {
            GuestPtr record = heap.malloc(512);
            ++report.allocations;
            s64 n = ctx.read(static_cast<int>(fd), record, 512);
            if (n <= 0) {
                heap.free(record);
                break;
            }
            cipherInPlace(ctx, record, static_cast<u64>(n), key);
            // Frame header: length + sequence.
            {
                StackFrame frame(ctx, 64, 1);
                GuestPtr hdr = frame.alloc(16);
                ctx.store<u64>(hdr, 0, static_cast<u64>(n));
                ctx.store<u64>(hdr, 8, report.sessionsServed);
                ctx.write(server_fd, hdr, 16);
            }
            ctx.write(server_fd, record, static_cast<u64>(n));
            // Client drains and decrypts.
            GuestPtr chdr = heap.malloc(16);
            ctx.read(client_fd, chdr, 16);
            u64 len = ctx.load<u64>(chdr, 0);
            heap.free(chdr);
            GuestPtr cbuf = heap.malloc(len);
            ++report.allocations;
            ctx.read(client_fd, cbuf, len);
            cipherInPlace(ctx, cbuf, len, key);
            report.bytesServed += len;
            heap.free(cbuf);
            heap.free(record);
        }
        ctx.close(static_cast<int>(fd));
    }
    ++report.sessionsServed;
    kern.setTrace(nullptr);
    return report;
}

} // namespace cheri::apps
