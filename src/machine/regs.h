/**
 * @file
 * Thread register state.
 *
 * A CheriABI thread's architectural state is a file of capability
 * registers plus the special PCC (program-counter capability) and DDC
 * (default data capability).  Under CheriABI, DDC is NULL — there is no
 * ambient authority; every access names a capability (principle of
 * intentional use).  Under the legacy mips64 ABI, DDC spans the whole
 * user address space and integer loads/stores are implicitly checked
 * against it.
 *
 * The kernel saves and restores this state across context switches and
 * copies it into signal frames; both paths preserve tags, keeping the
 * abstract capability intact (paper Figure 2).
 */

#ifndef CHERI_MACHINE_REGS_H
#define CHERI_MACHINE_REGS_H

#include <array>

#include "cap/capability.h"

namespace cheri
{

/** Number of general-purpose capability registers. */
constexpr unsigned numCapRegs = 32;

/** Conventional register assignments used by the ABI. */
enum CapReg : unsigned
{
    /**
     * Syscall error flag, written by Kernel::dispatch: x[regSysErr] is
     * 0 on success and 1 on failure (the BSD/MIPS a3 convention, kept
     * off the argument registers so it survives marshalling).
     */
    regSysErr = 2,
    /** Return value: x[regRetVal]; pointer-returning syscalls also set
     *  c[regRetVal] (a tagged capability under CheriABI). */
    regRetVal = 3,
    /** First argument register. */
    regArg0 = 4,
    /** Stack capability. */
    regStack = 11,
    /** Return (link) capability. */
    regLink = 17,
    /** Argument-vector capability installed by execve. */
    regArgv = 20,
};

struct ThreadRegs
{
    /** Program-counter capability: bounds instruction fetch. */
    Capability pcc;
    /** Default data capability: NULL under CheriABI. */
    Capability ddc;
    /** General-purpose capability registers. */
    std::array<Capability, numCapRegs> c;
    /** Integer registers (legacy ABI argument passing). */
    std::array<u64, numCapRegs> x{};

    Capability &stack() { return c[regStack]; }
    const Capability &stack() const { return c[regStack]; }
};

} // namespace cheri

#endif // CHERI_MACHINE_REGS_H
