/**
 * @file
 * google-benchmark micro-benchmarks of the capability model itself:
 * the host-side cost of the operations every simulated instruction
 * pays (derivation, checking, tagged-memory access, cache model).
 * These are wall-clock numbers about the *reproduction library*, not
 * simulated results from the paper.
 */

#include <benchmark/benchmark.h>

#include "cap/capability.h"
#include "machine/cache.h"
#include "mem/vm.h"

using namespace cheri;

namespace
{

void
BM_CapSetBounds(benchmark::State &state)
{
    Capability root = Capability::root().setAddress(0x10000);
    for (auto _ : state) {
        auto r = root.setBounds(static_cast<u64>(state.range(0)));
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CapSetBounds)->Arg(64)->Arg(1 << 20);

void
BM_CapCheckAccess(benchmark::State &state)
{
    Capability c =
        Capability::root().setAddress(0x10000).setBounds(4096).value();
    u64 addr = 0x10800;
    for (auto _ : state) {
        auto chk = c.checkAccess(addr, 8, PERM_LOAD);
        benchmark::DoNotOptimize(chk);
    }
}
BENCHMARK(BM_CapCheckAccess);

void
BM_CapIncAddress(benchmark::State &state)
{
    Capability c =
        Capability::root().setAddress(0x10000).setBounds(4096).value();
    for (auto _ : state) {
        c = c.incAddress(8);
        if (c.address() > 0x10F00)
            c = c.setAddress(0x10000);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CapIncAddress);

void
BM_CompressRoundTrip(benchmark::State &state)
{
    u64 len = static_cast<u64>(state.range(0));
    for (auto _ : state) {
        u64 r = compress::representableLength(len);
        u64 m = compress::representableAlignmentMask(len);
        benchmark::DoNotOptimize(r + m);
    }
}
BENCHMARK(BM_CompressRoundTrip)->Arg(100)->Arg(1 << 22);

void
BM_TaggedMemoryWriteCap(benchmark::State &state)
{
    PhysMem phys;
    SwapDevice swap;
    AddressSpace as(phys, swap, 1);
    u64 va = as.map(0, 1 << 20, PROT_READ | PROT_WRITE,
                    MappingKind::Data);
    Capability c = as.capForRange(va, 64, PROT_READ | PROT_WRITE);
    u64 off = 0;
    for (auto _ : state) {
        as.writeCap(va + (off & 0xFFFF0), c);
        off += 16;
        benchmark::DoNotOptimize(off);
    }
}
BENCHMARK(BM_TaggedMemoryWriteCap);

void
BM_AddressSpaceReadBytes(benchmark::State &state)
{
    PhysMem phys;
    SwapDevice swap;
    AddressSpace as(phys, swap, 1);
    u64 va = as.map(0, 1 << 20, PROT_READ | PROT_WRITE,
                    MappingKind::Data);
    u64 buf[8];
    u64 off = 0;
    for (auto _ : state) {
        auto f = as.readBytes(va + (off & 0xFFFC0), buf, sizeof(buf));
        benchmark::DoNotOptimize(f);
        off += 64;
    }
}
BENCHMARK(BM_AddressSpaceReadBytes);

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    CacheHierarchy cache;
    u64 addr = 0;
    for (auto _ : state) {
        HitLevel lvl = cache.access(addr & 0x7FFFF, 8,
                                    Access::DataLoad);
        benchmark::DoNotOptimize(lvl);
        addr += 64;
    }
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_SwapOutIn(benchmark::State &state)
{
    PhysMem phys;
    SwapDevice swap;
    AddressSpace as(phys, swap, 1);
    u64 va = as.map(0, pageSize, PROT_READ | PROT_WRITE,
                    MappingKind::Data);
    Capability c = as.capForRange(va, 64, PROT_READ | PROT_WRITE);
    as.writeCap(va, c);
    u64 dummy = 0;
    for (auto _ : state) {
        as.swapOutPage(va);
        auto f = as.readBytes(va, &dummy, 8); // triggers swap-in
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK(BM_SwapOutIn);

} // namespace

BENCHMARK_MAIN();
