file(REMOVE_RECURSE
  "CMakeFiles/cheri_bodiag.dir/bodiag/suite.cc.o"
  "CMakeFiles/cheri_bodiag.dir/bodiag/suite.cc.o.d"
  "libcheri_bodiag.a"
  "libcheri_bodiag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_bodiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
