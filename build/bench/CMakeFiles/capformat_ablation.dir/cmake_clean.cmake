file(REMOVE_RECURSE
  "CMakeFiles/capformat_ablation.dir/capformat_ablation.cc.o"
  "CMakeFiles/capformat_ablation.dir/capformat_ablation.cc.o.d"
  "capformat_ablation"
  "capformat_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capformat_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
