/**
 * @file
 * Guest libc tests: bounded malloc, tag-preserving memcpy/qsort, TLS,
 * and realloc rederivation.
 */

#include <gtest/gtest.h>

#include "libc/cstring.h"
#include "libc/malloc.h"
#include "libc/tls.h"
#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

class LibcCheri : public ::testing::Test
{
  protected:
    GuestSystem sys{Abi::CheriAbi};
    GuestContext &ctx() { return *sys.ctx; }
    GuestMalloc heap{*sys.ctx};
};

TEST_F(LibcCheri, MallocReturnsBoundedNonVmmapCapability)
{
    GuestPtr p = heap.malloc(100);
    ASSERT_FALSE(p.isNull());
    ASSERT_TRUE(p.cap.tag());
    EXPECT_GE(p.cap.length(), 100u);
    EXPECT_LE(p.cap.length(), 128u) << "bounded near the request";
    EXPECT_FALSE(p.cap.hasPerms(PERM_SW_VMMAP))
        << "heap pointers must not manage mappings";
    EXPECT_FALSE(p.cap.hasPerms(PERM_EXECUTE));
    ctx().store<u64>(p, 0, 1);
    ctx().store<u64>(p, 92, 2);
    EXPECT_THROW(ctx().store<u64>(p, p.cap.length(), 3), CapTrap);
}

TEST_F(LibcCheri, MallocHeapPointerCannotUnmap)
{
    GuestPtr p = heap.malloc(64);
    EXPECT_EQ(sys.kern.sysMunmap(*sys.proc, UserPtr::fromCap(p.cap),
                                 pageSize)
                  .error,
              E_PROT);
}

TEST_F(LibcCheri, AdjacentAllocationsDoNotOverlap)
{
    std::vector<GuestPtr> ptrs;
    for (int i = 0; i < 64; ++i)
        ptrs.push_back(heap.malloc(48));
    for (size_t i = 0; i < ptrs.size(); ++i) {
        for (size_t j = i + 1; j < ptrs.size(); ++j) {
            u64 ai = ptrs[i].cap.base();
            u64 ti = static_cast<u64>(ptrs[i].cap.top());
            u64 aj = ptrs[j].cap.base();
            u64 tj = static_cast<u64>(ptrs[j].cap.top());
            EXPECT_TRUE(ti <= aj || tj <= ai)
                << "capability granules must not alias";
        }
    }
}

TEST_F(LibcCheri, FreeRejectsInteriorPointer)
{
    GuestPtr p = heap.malloc(64);
    EXPECT_FALSE(heap.free(p + 8)) << "realloc-misuse class";
    EXPECT_TRUE(heap.free(p));
    EXPECT_FALSE(heap.free(p)) << "double free detected by metadata";
}

TEST_F(LibcCheri, FreeReusesStorage)
{
    GuestPtr a = heap.malloc(64);
    u64 addr = a.addr();
    heap.free(a);
    GuestPtr b = heap.malloc(64);
    EXPECT_EQ(b.addr(), addr) << "size-class free list reuse";
}

TEST_F(LibcCheri, ReallocPreservesDataAndTags)
{
    GuestPtr p = heap.malloc(64);
    ctx().store<u64>(p, 0, 0x1234);
    GuestPtr inner = heap.malloc(32);
    ctx().storePtr(p, 16, inner); // a pointer stored in the block
    GuestPtr q = heap.realloc(p, 256);
    ASSERT_FALSE(q.isNull());
    EXPECT_EQ(ctx().load<u64>(q, 0), 0x1234u);
    GuestPtr moved = ctx().loadPtr(q, 16);
    EXPECT_TRUE(moved.cap.tag()) << "realloc must move tags";
    EXPECT_EQ(moved.cap, inner.cap);
    EXPECT_GE(q.cap.length(), 256u);
}

TEST_F(LibcCheri, CallocZeroes)
{
    GuestPtr p = heap.calloc(8, 16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(ctx().load<u64>(p, i * 8), 0u);
}

TEST_F(LibcCheri, LargeAllocationPaddedForRepresentability)
{
    u64 want = (u64{1} << 20) + 7;
    GuestPtr p = heap.malloc(want);
    ASSERT_FALSE(p.isNull());
    EXPECT_GE(p.cap.length(), want);
    EXPECT_TRUE(compress::boundsExactlyRepresentable(p.cap.base(),
                                                     p.cap.length()));
}

TEST_F(LibcCheri, MemcpyPreservesTags)
{
    GuestPtr src = heap.malloc(128);
    GuestPtr dst = heap.malloc(128);
    GuestPtr inner = heap.malloc(16);
    ctx().store<u64>(src, 0, 42);
    ctx().storePtr(src, 16, inner);
    gMemcpy(ctx(), dst, src, 128);
    EXPECT_EQ(ctx().load<u64>(dst, 0), 42u);
    EXPECT_TRUE(ctx().loadPtr(dst, 16).cap.tag());
    // The byte-wise loop, by contrast, strips the tag.
    gMemcpyBytes(ctx(), dst, src, 128);
    EXPECT_FALSE(ctx().loadPtr(dst, 16).cap.tag());
    EXPECT_EQ(ctx().load<u64>(dst, 0), 42u);
}

TEST_F(LibcCheri, MemmoveHandlesOverlapWithTags)
{
    GuestPtr buf = heap.malloc(256);
    GuestPtr inner = heap.malloc(16);
    ctx().storePtr(buf, 0, inner);
    ctx().store<u64>(buf, 16, 0xAA);
    // Shift the block up by 16 (overlapping).
    gMemmove(ctx(), buf + 16, buf, 128);
    EXPECT_TRUE(ctx().loadPtr(buf, 16).cap.tag());
    EXPECT_EQ(ctx().loadPtr(buf, 16).cap, inner.cap);
    EXPECT_EQ(ctx().load<u64>(buf, 32), 0xAAu);
}

TEST_F(LibcCheri, StringRoutines)
{
    GuestPtr a = heap.malloc(64);
    GuestPtr b = heap.malloc(64);
    const char hello[] = "hello";
    ctx().write(a, hello, sizeof(hello));
    EXPECT_EQ(gStrlen(ctx(), a), 5u);
    gStrcpy(ctx(), b, a);
    EXPECT_EQ(gStrcmp(ctx(), a, b), 0);
    ctx().store<char>(b, 0, 'x');
    EXPECT_LT(gStrcmp(ctx(), a, b), 0);
    EXPECT_NE(gMemcmp(ctx(), a, b, 5), 0);
}

TEST_F(LibcCheri, QsortSortsIntegers)
{
    const u64 n = 200;
    GuestPtr arr = heap.malloc(n * 8);
    for (u64 i = 0; i < n; ++i)
        ctx().store<u64>(arr, static_cast<s64>(i * 8), (i * 7919) % 1000);
    gQsort(ctx(), arr, n, 8,
           [](GuestContext &c, const GuestPtr &x, const GuestPtr &y) {
               u64 a = c.load<u64>(x), b = c.load<u64>(y);
               return a < b ? -1 : (a > b ? 1 : 0);
           });
    for (u64 i = 1; i < n; ++i) {
        EXPECT_LE(ctx().load<u64>(arr, static_cast<s64>((i - 1) * 8)),
                  ctx().load<u64>(arr, static_cast<s64>(i * 8)));
    }
}

TEST_F(LibcCheri, QsortPreservesPointerTags)
{
    // Sort an array of *pointers* by their target values: the paper's
    // qsort extension keeps capabilities alive through swaps.
    const u64 n = 32;
    GuestPtr arr = heap.malloc(n * capSize);
    for (u64 i = 0; i < n; ++i) {
        GuestPtr cell = heap.malloc(8);
        ctx().store<u64>(cell, 0, (n - i) * 10);
        ctx().storePtr(arr, static_cast<s64>(i * capSize), cell);
    }
    gQsort(ctx(), arr, n, capSize,
           [](GuestContext &c, const GuestPtr &x, const GuestPtr &y) {
               u64 a = c.load<u64>(c.loadPtr(x));
               u64 b = c.load<u64>(c.loadPtr(y));
               return a < b ? -1 : (a > b ? 1 : 0);
           });
    u64 prev = 0;
    for (u64 i = 0; i < n; ++i) {
        GuestPtr cell = ctx().loadPtr(arr, static_cast<s64>(i * capSize));
        ASSERT_TRUE(cell.cap.tag()) << "tag lost during sort at " << i;
        u64 v = ctx().load<u64>(cell);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST_F(LibcCheri, TlsBlocksBoundedPerModule)
{
    GuestTls tls(ctx());
    GuestPtr block = tls.moduleBlock(1, 256);
    ASSERT_TRUE(block.cap.tag());
    EXPECT_GE(block.cap.length(), 256u);
    EXPECT_FALSE(block.cap.hasPerms(PERM_SW_VMMAP));
    GuestPtr v = tls.var(1, 64);
    // Per-object bounds: the variable pointer still spans the block.
    EXPECT_EQ(v.cap.base(), block.cap.base());
    ctx().store<u64>(v, 0, 11);
    EXPECT_EQ(ctx().load<u64>(block, 64), 11u);
    // Distinct modules get distinct blocks.
    GuestPtr other = tls.moduleBlock(2, 64);
    EXPECT_NE(other.cap.base(), block.cap.base());
    EXPECT_EQ(tls.moduleCount(), 2u);
}

TEST_F(LibcCheri, MallocStats)
{
    EXPECT_EQ(heap.liveAllocations(), 0u);
    GuestPtr a = heap.malloc(100);
    GuestPtr b = heap.malloc(200);
    EXPECT_EQ(heap.liveAllocations(), 2u);
    EXPECT_EQ(heap.liveBytes(), 300u);
    EXPECT_EQ(heap.allocSize(a), 100u);
    heap.free(a);
    heap.free(b);
    EXPECT_EQ(heap.liveAllocations(), 0u);
    EXPECT_EQ(heap.liveBytes(), 0u);
    EXPECT_EQ(heap.totalAllocations(), 2u);
}

// mips64 allocator: same logic, integer pointers, no protection.
TEST(LibcMips, MallocWorksWithoutBounds)
{
    GuestSystem sys(Abi::Mips64);
    GuestMalloc heap(*sys.ctx);
    GuestPtr p = heap.malloc(64);
    ASSERT_FALSE(p.cap.tag());
    sys.ctx->store<u64>(p, 0, 1);
    // Overflow into the neighbouring allocation goes undetected.
    GuestPtr q = heap.malloc(64);
    EXPECT_NO_THROW(sys.ctx->store<u64>(p, 96, 0xBAD));
    (void)q;
}

} // namespace
} // namespace cheri
