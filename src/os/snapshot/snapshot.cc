/**
 * @file
 * Checkpoint/restore implementation: the snap::Access seam.
 *
 * Everything here is a static member of snap::Access, the single friend
 * every serialized class names.  The image is a little-endian byte
 * stream of tagged sections in dependency order — config, frames, swap,
 * vfs, processes, kernel scalars, injector, metrics, scheduler — so a
 * truncated image fails cleanly partway through and the abort path
 * (resetToEmpty) can always rebuild a usable kernel.
 *
 * Reading is bounds-checked at every step: a corrupt or truncated image
 * raises an internal ParseError, never a host fault, and forged counts
 * cannot allocate past the image's own size.
 */

#include "os/snapshot/snapshot.h"

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "os/kernel.h"
#include "os/sched/sched.h"

namespace cheri::snap
{

namespace
{

/** Image magic: 8 bytes at offset 0. */
constexpr char imageMagic[8] = {'C', 'H', 'R', 'I', 'I', 'M', 'G', '1'};

/** Section tags, in stream order. */
enum SectionTag : u32
{
    SEC_CONFIG = 0x43484101,
    SEC_FRAMES,
    SEC_SWAP,
    SEC_VFS,
    SEC_PROCS,
    SEC_KERNEL,
    SEC_INJECT,
    SEC_METRICS,
    SEC_SCHED,
    SEC_END,
};

struct Writer
{
    std::vector<u8> out;

    void put8(u8 v) { out.push_back(v); }
    void putBool(bool v) { out.push_back(v ? 1 : 0); }
    void
    put16(u16 v)
    {
        put8(static_cast<u8>(v));
        put8(static_cast<u8>(v >> 8));
    }
    void
    put32(u32 v)
    {
        for (int i = 0; i < 4; ++i)
            put8(static_cast<u8>(v >> (8 * i)));
    }
    void
    put64(u64 v)
    {
        for (int i = 0; i < 8; ++i)
            put8(static_cast<u8>(v >> (8 * i)));
    }
    void
    putBytes(const void *p, u64 n)
    {
        const u8 *b = static_cast<const u8 *>(p);
        out.insert(out.end(), b, b + n);
    }
    void
    putStr(const std::string &s)
    {
        put64(s.size());
        putBytes(s.data(), s.size());
    }
};

/** Internal parse failure; caught at the restore top level only. */
struct ParseError
{
    explicit ParseError(std::string m) : msg(std::move(m)) {}
    std::string msg;
};

class Reader
{
  public:
    explicit Reader(const std::vector<u8> &v)
        : p(v.data()), end(v.data() + v.size())
    {
    }

    u64 remaining() const { return static_cast<u64>(end - p); }

    void
    need(u64 n)
    {
        if (remaining() < n)
            throw ParseError("truncated image");
    }
    u8
    get8()
    {
        need(1);
        return *p++;
    }
    bool
    getBool()
    {
        u8 v = get8();
        if (v > 1)
            throw ParseError("corrupt boolean");
        return v != 0;
    }
    u16
    get16()
    {
        u16 v = get8();
        v |= static_cast<u16>(get8()) << 8;
        return v;
    }
    u32
    get32()
    {
        u32 v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<u32>(get8()) << (8 * i);
        return v;
    }
    u64
    get64()
    {
        u64 v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(get8()) << (8 * i);
        return v;
    }
    void
    getBytes(void *dst, u64 n)
    {
        need(n);
        std::memcpy(dst, p, n);
        p += n;
    }
    std::string
    getStr()
    {
        u64 n = get64();
        need(n);
        std::string s(reinterpret_cast<const char *>(p), n);
        p += n;
        return s;
    }
    /** Enum byte with an inclusive upper bound. */
    u8
    getEnum(u8 max, const char *what)
    {
        u8 v = get8();
        if (v > max)
            throw ParseError(std::string("corrupt enum value: ") + what);
        return v;
    }
    /** Element count: bounded by the bytes left, so a forged count can
     *  never drive an allocation past the image's own size. */
    u64
    getCount()
    {
        u64 n = get64();
        if (n > remaining())
            throw ParseError("corrupt element count");
        return n;
    }
    void
    expect(u32 tag, const char *what)
    {
        if (get32() != tag)
            throw ParseError(std::string("bad section tag: ") + what);
    }

  private:
    const u8 *p;
    const u8 *end;
};

std::vector<u8>
refuse(std::string *error, std::string msg)
{
    if (error)
        *error = std::move(msg);
    return {};
}

} // namespace

struct Access
{
    /** @name Leaf value serializers */
    /// @{
    static void
    putCap(Writer &w, const Capability &c)
    {
        w.putBool(c._tag);
        w.put64(c._base);
        w.put64(static_cast<u64>(c._top));
        w.put64(static_cast<u64>(c._top >> 64));
        w.put64(c._address);
        w.put32(c._perms);
        w.put32(static_cast<u32>(c._otype));
        w.put8(static_cast<u8>(c._format));
        w.put64(c._rawMeta);
        w.putBool(c._hasRawMeta);
    }

    static Capability
    getCap(Reader &r)
    {
        Capability c;
        c._tag = r.getBool();
        c._base = r.get64();
        u64 lo = r.get64();
        u64 hi = r.get64();
        c._top = (static_cast<u128>(hi) << 64) | lo;
        c._address = r.get64();
        c._perms = r.get32();
        c._otype = static_cast<OType>(r.get32());
        c._format =
            static_cast<compress::CapFormat>(r.getEnum(1, "cap format"));
        c._rawMeta = r.get64();
        c._hasRawMeta = r.getBool();
        return c;
    }

    static void
    putRegs(Writer &w, const ThreadRegs &t)
    {
        putCap(w, t.pcc);
        putCap(w, t.ddc);
        for (const Capability &c : t.c)
            putCap(w, c);
        for (u64 x : t.x)
            w.put64(x);
    }

    static void
    getRegs(Reader &r, ThreadRegs &t)
    {
        t.pcc = getCap(r);
        t.ddc = getCap(r);
        for (Capability &c : t.c)
            c = getCap(r);
        for (u64 &x : t.x)
            x = r.get64();
    }

    static void
    putResult(Writer &w, const isa::InterpResult &res)
    {
        w.put8(static_cast<u8>(res.status));
        w.put64(res.steps);
        w.put8(static_cast<u8>(res.fault));
        w.put64(res.faultPc);
        w.put64(res.faultAddr);
        w.put8(static_cast<u8>(res.faultOp));
    }

    static isa::InterpResult
    getResult(Reader &r)
    {
        isa::InterpResult res;
        res.status =
            static_cast<isa::InterpResult::Status>(r.getEnum(4, "status"));
        res.steps = r.get64();
        res.fault = static_cast<CapFault>(
            r.getEnum(static_cast<u8>(numCapFaults - 1), "fault"));
        res.faultPc = r.get64();
        res.faultAddr = r.get64();
        res.faultOp = static_cast<isa::Op>(r.get8());
        return res;
    }

    static void
    putHistogram(Writer &w, const obs::Histogram &h)
    {
        for (u64 b : h.buckets)
            w.put64(b);
        w.put64(h.count);
        w.put64(h.sum);
        w.put64(h.min);
        w.put64(h.max);
    }

    static void
    getHistogram(Reader &r, obs::Histogram &h)
    {
        for (u64 &b : h.buckets)
            b = r.get64();
        h.count = r.get64();
        h.sum = r.get64();
        h.min = r.get64();
        h.max = r.get64();
    }
    /// @}

    /** Mint a frame on the live counter without consulting capacity or
     *  the injector: the image's frames were already admitted once. */
    static FrameRef
    mintFrame(PhysMem &phys)
    {
        auto counter = phys.live;
        ++*counter;
        return FrameRef(new Frame(), [counter](Frame *f) {
            --*counter;
            delete f;
        });
    }

    // ------------------------------------------------------------------
    // save
    // ------------------------------------------------------------------

    static std::vector<u8>
    saveImpl(Kernel &kern, std::string *error)
    {
        sched::Scheduler *sch = nullptr;
        if (kern.schedIface) {
            sch = dynamic_cast<sched::Scheduler *>(kern.schedIface);
            if (!sch)
                return refuse(error, "snapshot: installed scheduler is "
                                     "not a sched::Scheduler");
            for (const auto &h : sch->hosted) {
                if (h->state != sched::ExecContext::State::Done)
                    return refuse(error,
                                  "snapshot: a hosted (host-function) "
                                  "context is live and cannot be captured");
            }
            if (sch->current && sch->current->isHost())
                return refuse(error, "snapshot: a hosted context is "
                                     "running and cannot be captured");
        }
        for (const auto &[pid, p] : kern.procs) {
            if (!p->liveSigFrames.empty())
                return refuse(error, "snapshot: process " +
                                         std::to_string(pid) +
                                         " is inside a signal handler "
                                         "(live signal frames)");
            for (const auto &[start, m] : p->_as->mappings) {
                (void)start;
                if (m.backing || m.backingWriter)
                    return refuse(error,
                                  "snapshot: process " +
                                      std::to_string(pid) +
                                      " has a file-backed mapping (host "
                                      "callback) at " + m.name);
            }
        }

        // ---- collect shared objects (deterministic order) ----
        std::map<const Frame *, u32> frameIds;
        std::vector<const Frame *> frameOrder;
        auto noteFrame = [&](const FrameRef &f) {
            if (!f || frameIds.count(f.get()))
                return;
            frameIds[f.get()] = static_cast<u32>(frameOrder.size() + 1);
            frameOrder.push_back(f.get());
        };
        for (const auto &[pid, p] : kern.procs) {
            (void)pid;
            for (const auto &[va, pte] : p->_as->pages) {
                (void)va;
                noteFrame(pte.frame);
            }
        }
        for (const auto &[id, seg] : kern.shmSegments) {
            (void)id;
            for (const FrameRef &f : seg.frames)
                noteFrame(f);
        }
        if (*kern.phys.live != frameOrder.size())
            return refuse(error,
                          "snapshot: " +
                              std::to_string(*kern.phys.live -
                                             frameOrder.size()) +
                              " live frame(s) not reachable from page "
                              "tables or shm segments");

        std::map<const ByteChannel *, u32> chanIds;
        std::vector<const ByteChannel *> chanOrder;
        std::map<const VNode *, u32> nodeIds;
        std::vector<const VNode *> nodeOrder;
        std::function<void(const VNodeRef &)> noteNode =
            [&](const VNodeRef &n) {
                if (!n || nodeIds.count(n.get()))
                    return;
                nodeIds[n.get()] = static_cast<u32>(nodeOrder.size() + 1);
                nodeOrder.push_back(n.get());
                auto noteChan =
                    [&](const std::shared_ptr<ByteChannel> &ch) {
                        if (!ch || chanIds.count(ch.get()))
                            return;
                        chanIds[ch.get()] =
                            static_cast<u32>(chanOrder.size() + 1);
                        chanOrder.push_back(ch.get());
                    };
                noteChan(n->readCh);
                noteChan(n->writeCh);
                for (const auto &[name, child] : n->children) {
                    (void)name;
                    noteNode(child);
                }
            };
        noteNode(kern.fs.root);
        std::map<const OpenFile *, u32> fileIds;
        std::vector<const OpenFile *> fileOrder;
        for (const auto &[pid, p] : kern.procs) {
            (void)pid;
            for (const OpenFileRef &of : p->fds) {
                if (!of)
                    continue;
                noteNode(of->node);
                if (!fileIds.count(of.get())) {
                    fileIds[of.get()] =
                        static_cast<u32>(fileOrder.size() + 1);
                    fileOrder.push_back(of.get());
                }
            }
        }
        u64 maxWaitToken = 0;
        for (const ByteChannel *ch : chanOrder) {
            maxWaitToken = std::max(maxWaitToken, ch->readWait);
            maxWaitToken = std::max(maxWaitToken, ch->writeWait);
        }

        Writer w;
        w.putBytes(imageMagic, sizeof(imageMagic));
        w.put32(imageVersion);

        // ---- config + layout constants ----
        w.put32(SEC_CONFIG);
        w.put32(numSysNums);
        w.put32(obs::Metrics::maxOps);
        w.put32(numTlbCounters);
        w.put32(numCapFaults);
        w.put32(numDeriveSources);
        w.put32(numSignals);
        w.put32(numCapRegs);
        w.put32(numFaultPoints);
        w.put64(pageSize);
        w.put8(static_cast<u8>(kern.cfg.capFormat));
        w.put8(static_cast<u8>(kern.cfg.swapPolicy));
        w.putBool(kern.cfg.features.largeClcImmediate);
        w.putBool(kern.cfg.features.asanInstrumentation);
        w.put64(kern.cfg.stackSize);
        w.put64(kern.cfg.aslrSeed);
        w.put64(kern.cfg.frameCapacity);
        w.put64(kern.cfg.swapSlotBudget);
        w.put64(kern.cfg.revokeSliceBudget);
        w.put64(kern.cfg.timeSliceSteps);

        // ---- physical frames ----
        w.put32(SEC_FRAMES);
        w.put64(kern.phys.allocated);
        w.put64(kern.phys.failed);
        w.put64(kern.phys.reclaims);
        w.put64(kern.phys.capacity);
        w.put64(frameOrder.size());
        for (const Frame *f : frameOrder) {
            w.putBytes(f->bytes().data(), pageSize);
            w.put64(f->taggedCount());
            f->forEachTagged([&](u64 off, const Capability &c) {
                w.put64(off);
                putCap(w, c);
            });
        }

        // ---- swap device ----
        w.put32(SEC_SWAP);
        w.put8(static_cast<u8>(kern.swap._policy));
        w.put64(kern.swap.budget);
        w.put64(kern.swap.nextSlot);
        w.put64(kern.swap.swapOuts);
        w.put64(kern.swap.tagsPreserved);
        w.put64(kern.swap.swapOutFailures);
        w.put64(kern.swap.swapInFailures);
        w.put64(kern.swap.sweepScanFailures);
        w.put64(kern.swap.discards);
        // unordered_map: emit in sorted slot order for determinism.
        std::map<u64, const SwapDevice::Slot *> sortedSlots;
        for (const auto &[id, slot] : kern.swap.slots)
            sortedSlots[id] = &slot;
        w.put64(sortedSlots.size());
        for (const auto &[id, slot] : sortedSlots) {
            w.put64(id);
            w.putBytes(slot->bytes.data(), pageSize);
            w.put64(slot->tagMeta.size());
            for (const auto &[off, pattern] : slot->tagMeta) {
                w.put64(off);
                putCap(w, pattern);
            }
            w.put64(slot->refs);
        }

        // ---- vfs ----
        w.put32(SEC_VFS);
        w.put64(chanOrder.size());
        for (const ByteChannel *ch : chanOrder) {
            w.put64(ch->buf.size());
            for (u8 b : ch->buf)
                w.put8(b);
            w.putBool(ch->writerClosed);
            w.putBool(ch->readerClosed);
            w.put64(ch->readWait);
            w.put64(ch->writeWait);
        }
        w.put64(nodeOrder.size());
        for (const VNode *n : nodeOrder) {
            w.put8(static_cast<u8>(n->kind));
            w.putStr(n->name);
            w.put64(n->data.size());
            w.putBytes(n->data.data(), n->data.size());
            w.put64(n->children.size());
            for (const auto &[name, child] : n->children) {
                w.putStr(name);
                w.put32(nodeIds.at(child.get()));
            }
            w.put32(n->readCh ? chanIds.at(n->readCh.get()) : 0);
            w.put32(n->writeCh ? chanIds.at(n->writeCh.get()) : 0);
        }
        w.put32(nodeIds.at(kern.fs.root.get()));
        w.put64(fileOrder.size());
        for (const OpenFile *of : fileOrder) {
            w.put32(nodeIds.at(of->node.get()));
            w.put64(of->offset);
            w.put32(of->flags);
        }
        w.put64(maxWaitToken);

        // ---- processes ----
        w.put32(SEC_PROCS);
        w.put64(kern.procs.size());
        for (const auto &[pid, p] : kern.procs) {
            w.put64(pid);
            w.put64(p->_ppid);
            w.put8(static_cast<u8>(p->_abi));
            w.putStr(p->_name);
            w.putBool(p->_cost._features.largeClcImmediate);
            w.putBool(p->_cost._features.asanInstrumentation);

            const AddressSpace &as = *p->_as;
            w.put64(as._principal);
            w.put64(as.aslrSlide);
            w.put8(static_cast<u8>(as.fmt));
            putCap(w, as.root);
            w.put64(as.useClock);
            w.put8(static_cast<u8>(as.walkFault));
            w.put64(as.activeSweepEpoch);
            w.put64(as.redirtied.size());
            for (u64 va : as.redirtied)
                w.put64(va);
            w.put64(as.mappings.size());
            for (const auto &[start, m] : as.mappings) {
                w.put64(start);
                w.put64(m.len);
                w.put32(m.prot);
                w.put8(static_cast<u8>(m.kind));
                w.putBool(m.shared);
                w.putStr(m.name);
                w.put64(m.backingOffset);
            }
            w.put64(as.pages.size());
            for (const auto &[va, pte] : as.pages) {
                w.put64(va);
                w.put32(pte.frame ? frameIds.at(pte.frame.get()) : 0);
                w.put32(pte.prot);
                w.putBool(pte.cow);
                w.putBool(pte.shared);
                w.putBool(pte.swapped);
                w.put64(pte.swapSlot);
                w.put64(pte.lastUse);
                w.putBool(pte.capDirty);
                w.put64(pte.sweptEpoch);
                w.put64(pte.queuedEpoch);
            }

            putRegs(w, p->_regs);

            const CostModel &cm = p->_cost;
            w.put64(cm._instructions);
            w.put64(cm._cycles);
            w.put64(cm._codeBytes);
            w.put64(cm._itlbAccesses);
            w.put64(cm._itlbMisses);
            w.put64(cm._dtlbAccesses);
            w.put64(cm._dtlbMisses);
            w.put64(cm.pc);
            w.put64(cm.codeFootprint);
            for (const Cache *c :
                 {&cm.cacheHier.l1i, &cm.cacheHier.l1d, &cm.cacheHier.l2}) {
                w.put64(c->lineBytes);
                w.put64(c->numSets);
                w.put32(c->ways);
                w.put64(c->tick);
                w.put64(c->_hits);
                w.put64(c->_misses);
                w.put64(c->sets.size());
                for (const Cache::Way &way : c->sets) {
                    w.put64(way.tag);
                    w.putBool(way.valid);
                    w.put64(way.lru);
                }
            }

            w.put64(p->fds.size());
            for (const OpenFileRef &of : p->fds)
                w.put32(of ? fileIds.at(of.get()) : 0);

            w.put64(p->threads.size());
            for (const ThreadRecord &t : p->threads) {
                w.put64(t.tid);
                putRegs(w, t.saved);
                putCap(w, t.stackCap);
                w.putBool(t.live);
            }
            w.put64(p->curThread);
            w.put64(p->nextTid);

            for (const SigAction &a : p->sigActions) {
                w.put8(static_cast<u8>(a.kind));
                w.put64(a.handlerId);
            }
            w.put64(p->sigPending);
            w.put64(p->sigMask);

            putCap(w, p->stackCap);
            putCap(w, p->argvCap);
            putCap(w, p->envvCap);
            putCap(w, p->auxvCap);
            putCap(w, p->trampolineCap);
            w.put32(static_cast<u32>(p->argc));
            w.put32(static_cast<u32>(p->envc));
            w.put64(p->heapHint);
            w.put64(p->brkBase);
            w.put64(p->brkCur);
            w.put64(p->brkLimit);
            w.putBool(p->_exited);
            w.put32(static_cast<u32>(p->_exitStatus));
            w.putBool(p->_death.has_value());
            if (p->_death) {
                const DeathInfo &d = *p->_death;
                w.put32(static_cast<u32>(d.signal));
                w.put8(static_cast<u8>(d.fault));
                w.put64(d.faultAddr);
                w.putStr(d.detail);
                putCap(w, d.faultCap);
                w.putBool(d.faultCapKnown);
                w.putBool(d.deadlock);
            }
        }

        // ---- kernel scalars and tables ----
        w.put32(SEC_KERNEL);
        w.put64(kern.pressure.reclaimPasses);
        w.put64(kern.pressure.pagesReclaimed);
        w.put64(kern.pressure.oomKills);
        w.put64(kern.pressure.enomemErrors);
        w.put64(kern.fdStats.blocks);
        w.put64(kern.fdStats.wakes);
        w.put64(kern.fdStats.eagainErrors);
        w.put64(kern.fdStats.epipeErrors);
        w.put64(kern.fdStats.partialWrites);
        w.put64(kern.fdStats.selectTimeouts);
        w.put64(kern.revStats.epochsOpened);
        w.put64(kern.revStats.epochsClosed);
        w.put64(kern.revStats.epochsAborted);
        w.put64(kern.revStats.pagesScanned);
        w.put64(kern.revStats.pagesSkippedClean);
        w.put64(kern.revStats.granulesVisited);
        w.put64(kern.revStats.tagsRevoked);
        w.put64(kern.revStats.incrementalSlices);
        w.put64(kern.revStats.syncSweeps);
        w.put64(kern.revStats.cyclesInEpochs);
        w.put64(kern.switches);
        w.put64(kern.quiescentSeq);
        w.put64(kern.hardStats.panics);
        w.put64(kern.hardStats.deadlocksDetected);
        w.put64(kern.hardStats.deadlocksKilled);
        w.put64(kern.hardStats.machineChecks);
        w.put64(kern.nextEpochId);
        w.put64(kern.nextPid);
        w.put64(kern.nextPrincipal);
        w.put64(kern.nextOtype);
        w.put32(static_cast<u32>(kern.nextShmId));
        w.put64(kern.shmSegments.size());
        for (const auto &[id, seg] : kern.shmSegments) {
            w.put32(static_cast<u32>(id));
            w.put64(seg.size);
            w.put64(seg.frames.size());
            for (const FrameRef &f : seg.frames)
                w.put32(frameIds.at(f.get()));
        }
        w.put64(kern.kqueues.size());
        for (const auto &[pid, events] : kern.kqueues) {
            w.put64(pid);
            w.put64(events.size());
            for (const KEvent &e : events) {
                w.put32(static_cast<u32>(e.ident));
                w.put64(static_cast<u64>(e.filter));
                putCap(w, e.udata);
            }
        }
        w.put64(kern.attached.size());
        for (const auto &[dbg, target] : kern.attached) {
            w.put64(dbg);
            w.put64(target);
        }
        w.put64(kern.revEpochs.size());
        for (const auto &[pid, ep] : kern.revEpochs) {
            w.put64(pid);
            w.putBool(ep.open);
            w.put64(ep.id);
            w.put64(ep.ranges.size());
            for (const auto &[lo, hi] : ep.ranges) {
                w.put64(lo);
                w.put64(hi);
            }
            w.put64(ep.worklist.size());
            for (u64 va : ep.worklist)
                w.put64(va);
            w.putBool(ep.forceFull);
            w.putBool(ep.incremental);
            w.put64(ep.revoked);
            w.put64(ep.cyclesAtOpen);
            w.put64(ep.closedRanges.size());
            for (const auto &[lo, hi] : ep.closedRanges) {
                w.put64(lo);
                w.put64(hi);
            }
            w.put64(ep.closeSeq);
        }
        w.put64(kern.eventCounts.size());
        for (const auto &[pid, count] : kern.eventCounts) {
            w.put64(pid);
            w.put64(count);
        }

        // ---- fault injector ----
        w.put32(SEC_INJECT);
        for (const auto &arm : kern.injector.arms) {
            w.put8(static_cast<u8>(arm.mode));
            w.put64(arm.countdown);
            w.put64(arm.period);
            w.put64(arm.lcg);
            w.put64(arm.seen);
            w.put64(arm.fired);
        }

        // ---- metrics ----
        w.put32(SEC_METRICS);
        w.putBool(kern.mx != nullptr);
        if (kern.mx)
            putMetrics(w, *kern.mx);

        // ---- scheduler ----
        w.put32(SEC_SCHED);
        w.putBool(sch != nullptr);
        if (sch)
            putSched(w, *sch);

        w.put32(SEC_END);

        if (kern.mx)
            kern.mx->recordSnapshot(w.out.size());
        return std::move(w.out);
    }

    static void
    putMetrics(Writer &w, const obs::Metrics &m)
    {
        for (const auto &perAbi : m.sys) {
            for (const obs::SyscallStats &s : perAbi) {
                w.put64(s.calls);
                w.put64(s.errors);
                putHistogram(w, s.cycles);
            }
        }
        for (const auto &perAbi : m.insnMix)
            for (u64 v : perAbi)
                w.put64(v);
        for (const auto &perAbi : m.tlb)
            for (u64 v : perAbi)
                w.put64(v);
        w.put64(m._faults.size());
        for (const obs::FaultRecord &f : m._faults) {
            w.put8(static_cast<u8>(f.cause));
            w.put64(f.pc);
            w.put64(f.addr);
            w.put8(static_cast<u8>(f.abi));
            w.put16(f.sysnum);
            w.put8(static_cast<u8>(f.provenance));
            w.putBool(f.provenanceKnown);
        }
        w.put64(m.faultsDropped);
        for (u64 v : m.faultsByCause)
            w.put64(v);
        w.put64(m.mem.reclaimPasses);
        w.put64(m.mem.pagesReclaimed);
        w.put64(m.mem.oomKills);
        w.put64(m.mem.enomemErrors);
        w.put64(m.rev.epochsOpened);
        w.put64(m.rev.epochsClosed);
        w.put64(m.rev.epochsAborted);
        w.put64(m.rev.pagesScanned);
        w.put64(m.rev.pagesSkippedClean);
        w.put64(m.rev.granulesVisited);
        w.put64(m.rev.tagsRevoked);
        w.put64(m.rev.incrementalSlices);
        w.put64(m.rev.syncSweeps);
        w.put64(m.rev.cyclesInEpochs);
        putSchedCounters(w, m.schd);
        w.put64(m.fdio.blocks);
        w.put64(m.fdio.wakes);
        w.put64(m.fdio.eagainErrors);
        w.put64(m.fdio.epipeErrors);
        w.put64(m.fdio.partialWrites);
        w.put64(m.fdio.selectTimeouts);
        w.put64(m._threadSteps.size());
        for (const auto &[key, steps] : m._threadSteps) {
            w.put64(key.first);
            w.put64(key.second);
            w.put64(steps);
        }
        w.put64(m.chk.oracleRuns);
        w.put64(m.chk.oracleViolations);
        w.put64(m.chk.fuzzCases);
        w.put64(m.chk.fuzzDivergences);
        w.put64(m.snp.snapshotsTaken);
        w.put64(m.snp.snapshotBytes);
        w.put64(m.snp.restores);
        w.put64(m.snp.restoreFailures);
        w.put64(m.snp.records);
        w.put64(m.snp.replays);
        w.put64(m.snp.replayDivergences);
        w.put64(m.snp.logEntries);
        w.put64(m.hard.panics);
        w.put64(m.hard.deadlocksDetected);
        w.put64(m.hard.deadlocksKilled);
        w.put64(m.hard.machineChecks);
        w.put64(m.costs.size());
        for (const obs::CostSnapshot &c : m.costs) {
            w.putStr(c.label);
            w.put8(static_cast<u8>(c.abi));
            w.put64(c.instructions);
            w.put64(c.cycles);
            w.put64(c.l1dMisses);
            w.put64(c.l2Misses);
            w.put64(c.codeBytes);
            w.put64(c.itlbMisses);
            w.put64(c.dtlbMisses);
        }
        for (u64 v : m.deriveCounts)
            w.put64(v);
        w.put64(m.provenance.size());
        for (const auto &[key, src] : m.provenance) {
            w.put64(key.first);
            w.put64(key.second);
            w.put8(static_cast<u8>(src));
        }
        w.put64(m.currentSys);
    }

    static void
    putSchedCounters(Writer &w, const obs::SchedCounters &s)
    {
        w.put64(s.contextSwitches);
        w.put64(s.preemptions);
        w.put64(s.slices);
        w.put64(s.blocksWait4);
        w.put64(s.blocksEvent);
        w.put64(s.blocksSleep);
        w.put64(s.blocksFd);
        w.put64(s.wakes);
        w.put64(s.maxRunQueueDepth);
        w.put64(s.idleAdvances);
        w.put64(s.stepsExecuted);
    }

    static void
    putSched(Writer &w, const sched::Scheduler &sch)
    {
        w.put64(sch.vclock);
        w.put64(sch.st.contextSwitches);
        w.put64(sch.st.preemptions);
        w.put64(sch.st.slices);
        w.put64(sch.st.blocksWait4);
        w.put64(sch.st.blocksEvent);
        w.put64(sch.st.blocksSleep);
        w.put64(sch.st.blocksFd);
        w.put64(sch.st.wakes);
        w.put64(sch.st.maxRunQueueDepth);
        w.put64(sch.st.idleAdvances);
        w.put64(sch.st.stepsExecuted);
        w.put64(sch.ctxs.size());
        for (const auto &[key, ctx] : sch.ctxs) {
            w.put64(key.first);
            w.put64(key.second);
            // A mid-slice save serializes the running context as
            // Runnable at the front of the run queue: the restored
            // image resumes it from its current PC.
            auto state = ctx.get() == sch.current
                             ? sched::ExecContext::State::Runnable
                             : ctx->state;
            w.put8(static_cast<u8>(state));
            w.put8(static_cast<u8>(ctx->blockKind));
            w.put64(ctx->blockArg);
            w.putBool(ctx->restartOnWake);
            w.put64(ctx->fdChans.size());
            for (u64 chan : ctx->fdChans)
                w.put64(chan);
            w.putBool(ctx->fdDeadlineArmed);
            w.put64(ctx->fdDeadline);
            w.putBool(ctx->fdTimedOut);
            putResult(w, ctx->last);
            w.put64(ctx->stepLimit);
            w.put64(ctx->readyBaseSteps);
            w.put64(ctx->slices);
            w.put64(ctx->interp ? ctx->interp->_retired : 0);
        }
        std::vector<std::pair<u64, u64>> q;
        if (sch.current)
            q.push_back({sch.current->pid, sch.current->tid});
        for (const sched::ExecContext *c : sch.runq)
            q.push_back({c->pid, c->tid});
        w.put64(q.size());
        for (const auto &[pid, tid] : q) {
            w.put64(pid);
            w.put64(tid);
        }
        w.put64(sch.blocked.size());
        for (const sched::ExecContext *c : sch.blocked) {
            w.put64(c->pid);
            w.put64(c->tid);
        }
        // lastRan may point at an already-erased hosted context:
        // compare addresses only, never dereference.
        bool lastRanKnown = false;
        std::pair<u64, u64> lastKey{0, 0};
        if (sch.lastRan) {
            for (const auto &[key, ctx] : sch.ctxs) {
                if (ctx.get() == sch.lastRan) {
                    lastRanKnown = true;
                    lastKey = key;
                }
            }
        }
        w.putBool(lastRanKnown);
        w.put64(lastKey.first);
        w.put64(lastKey.second);
    }

    // ------------------------------------------------------------------
    // restore
    // ------------------------------------------------------------------

    static void
    getSchedCounters(Reader &r, obs::SchedCounters &s)
    {
        s.contextSwitches = r.get64();
        s.preemptions = r.get64();
        s.slices = r.get64();
        s.blocksWait4 = r.get64();
        s.blocksEvent = r.get64();
        s.blocksSleep = r.get64();
        s.blocksFd = r.get64();
        s.wakes = r.get64();
        s.maxRunQueueDepth = r.get64();
        s.idleAdvances = r.get64();
        s.stepsExecuted = r.get64();
    }

    static void
    getMetrics(Reader &r, obs::Metrics &m)
    {
        for (auto &perAbi : m.sys) {
            for (obs::SyscallStats &s : perAbi) {
                s.calls = r.get64();
                s.errors = r.get64();
                getHistogram(r, s.cycles);
            }
        }
        for (auto &perAbi : m.insnMix)
            for (u64 &v : perAbi)
                v = r.get64();
        for (auto &perAbi : m.tlb)
            for (u64 &v : perAbi)
                v = r.get64();
        m._faults.clear();
        u64 nFaults = r.getCount();
        for (u64 i = 0; i < nFaults; ++i) {
            obs::FaultRecord f;
            f.cause = static_cast<CapFault>(
                r.getEnum(static_cast<u8>(numCapFaults - 1), "fault cause"));
            f.pc = r.get64();
            f.addr = r.get64();
            f.abi = static_cast<Abi>(r.getEnum(2, "fault abi"));
            f.sysnum = r.get16();
            f.provenance = static_cast<DeriveSource>(r.getEnum(
                static_cast<u8>(numDeriveSources - 1), "provenance"));
            f.provenanceKnown = r.getBool();
            m._faults.push_back(f);
        }
        m.faultsDropped = r.get64();
        for (u64 &v : m.faultsByCause)
            v = r.get64();
        m.mem.reclaimPasses = r.get64();
        m.mem.pagesReclaimed = r.get64();
        m.mem.oomKills = r.get64();
        m.mem.enomemErrors = r.get64();
        m.rev.epochsOpened = r.get64();
        m.rev.epochsClosed = r.get64();
        m.rev.epochsAborted = r.get64();
        m.rev.pagesScanned = r.get64();
        m.rev.pagesSkippedClean = r.get64();
        m.rev.granulesVisited = r.get64();
        m.rev.tagsRevoked = r.get64();
        m.rev.incrementalSlices = r.get64();
        m.rev.syncSweeps = r.get64();
        m.rev.cyclesInEpochs = r.get64();
        getSchedCounters(r, m.schd);
        m.fdio.blocks = r.get64();
        m.fdio.wakes = r.get64();
        m.fdio.eagainErrors = r.get64();
        m.fdio.epipeErrors = r.get64();
        m.fdio.partialWrites = r.get64();
        m.fdio.selectTimeouts = r.get64();
        m._threadSteps.clear();
        u64 nThreadSteps = r.getCount();
        for (u64 i = 0; i < nThreadSteps; ++i) {
            u64 pid = r.get64();
            u64 tid = r.get64();
            m._threadSteps[{pid, tid}] = r.get64();
        }
        m.chk.oracleRuns = r.get64();
        m.chk.oracleViolations = r.get64();
        m.chk.fuzzCases = r.get64();
        m.chk.fuzzDivergences = r.get64();
        m.snp.snapshotsTaken = r.get64();
        m.snp.snapshotBytes = r.get64();
        m.snp.restores = r.get64();
        m.snp.restoreFailures = r.get64();
        m.snp.records = r.get64();
        m.snp.replays = r.get64();
        m.snp.replayDivergences = r.get64();
        m.snp.logEntries = r.get64();
        m.hard.panics = r.get64();
        m.hard.deadlocksDetected = r.get64();
        m.hard.deadlocksKilled = r.get64();
        m.hard.machineChecks = r.get64();
        m.costs.clear();
        u64 nCosts = r.getCount();
        for (u64 i = 0; i < nCosts; ++i) {
            obs::CostSnapshot c;
            c.label = r.getStr();
            c.abi = static_cast<Abi>(r.getEnum(2, "cost abi"));
            c.instructions = r.get64();
            c.cycles = r.get64();
            c.l1dMisses = r.get64();
            c.l2Misses = r.get64();
            c.codeBytes = r.get64();
            c.itlbMisses = r.get64();
            c.dtlbMisses = r.get64();
            m.costs.push_back(std::move(c));
        }
        for (u64 &v : m.deriveCounts)
            v = r.get64();
        m.provenance.clear();
        u64 nProv = r.getCount();
        for (u64 i = 0; i < nProv; ++i) {
            u64 base = r.get64();
            u64 len = r.get64();
            m.provenance[{base, len}] = static_cast<DeriveSource>(r.getEnum(
                static_cast<u8>(numDeriveSources - 1), "provenance"));
        }
        m.currentSys = r.get64();
    }

    static void
    loadCache(Reader &r, Cache &c)
    {
        u64 lineBytes = r.get64();
        u64 numSets = r.get64();
        u32 ways = r.get32();
        if (lineBytes != c.lineBytes || numSets != c.numSets ||
            ways != c.ways)
            throw ParseError("cache geometry mismatch");
        c.tick = r.get64();
        c._hits = r.get64();
        c._misses = r.get64();
        u64 nWays = r.get64();
        if (nWays != c.sets.size())
            throw ParseError("cache way-array size mismatch");
        for (Cache::Way &way : c.sets) {
            way.tag = r.get64();
            way.valid = r.getBool();
            way.lru = r.get64();
        }
    }

    static void
    loadSched(Kernel &kern, Reader &r)
    {
        auto sch = std::make_unique<sched::Scheduler>(kern);
        sch->vclock = r.get64();
        sch->st.contextSwitches = r.get64();
        sch->st.preemptions = r.get64();
        sch->st.slices = r.get64();
        sch->st.blocksWait4 = r.get64();
        sch->st.blocksEvent = r.get64();
        sch->st.blocksSleep = r.get64();
        sch->st.blocksFd = r.get64();
        sch->st.wakes = r.get64();
        sch->st.maxRunQueueDepth = r.get64();
        sch->st.idleAdvances = r.get64();
        sch->st.stepsExecuted = r.get64();
        u64 nCtx = r.getCount();
        for (u64 i = 0; i < nCtx; ++i) {
            auto ctx = std::make_unique<sched::ExecContext>();
            ctx->pid = r.get64();
            ctx->tid = r.get64();
            ctx->state = static_cast<sched::ExecContext::State>(
                r.getEnum(3, "context state"));
            ctx->blockKind =
                static_cast<BlockKind>(r.getEnum(4, "block kind"));
            ctx->blockArg = r.get64();
            ctx->restartOnWake = r.getBool();
            u64 nChans = r.getCount();
            for (u64 k = 0; k < nChans; ++k)
                ctx->fdChans.push_back(r.get64());
            ctx->fdDeadlineArmed = r.getBool();
            ctx->fdDeadline = r.get64();
            ctx->fdTimedOut = r.getBool();
            ctx->last = getResult(r);
            ctx->stepLimit = r.get64();
            ctx->readyBaseSteps = r.get64();
            ctx->slices = r.get64();
            u64 retired = r.get64();
            Process *proc = kern.findProcess(ctx->pid);
            if (!proc)
                throw ParseError("context references unknown pid");
            ctx->interp =
                std::make_unique<isa::Interpreter>(*proc, kern.traceSink);
            isa::installDefaultSyscallHook(*ctx->interp, kern);
            ctx->interp->_retired = retired;
            std::pair<u64, u64> key{ctx->pid, ctx->tid};
            if (!sch->ctxs.emplace(key, std::move(ctx)).second)
                throw ParseError("duplicate scheduler context");
        }
        auto lookup = [&](const char *what) -> sched::ExecContext * {
            u64 pid = r.get64();
            u64 tid = r.get64();
            auto it = sch->ctxs.find({pid, tid});
            if (it == sch->ctxs.end())
                throw ParseError(std::string("queue references unknown "
                                             "context: ") +
                                 what);
            return it->second.get();
        };
        u64 nRunq = r.getCount();
        for (u64 i = 0; i < nRunq; ++i)
            sch->runq.push_back(lookup("run queue"));
        u64 nBlocked = r.getCount();
        for (u64 i = 0; i < nBlocked; ++i)
            sch->blocked.push_back(lookup("blocked list"));
        if (r.getBool())
            sch->lastRan = lookup("lastRan");
        else {
            r.get64();
            r.get64();
        }
        kern.installScheduler(std::move(sch));
    }

    static bool
    restoreImpl(Kernel &kern, const std::vector<u8> &image,
                std::string *error)
    {
        bool mutated = false;
        try {
            Reader r(image);
            char magic[8];
            r.getBytes(magic, sizeof(magic));
            if (std::memcmp(magic, imageMagic, sizeof(magic)) != 0)
                throw ParseError("bad magic");
            if (r.get32() != imageVersion)
                throw ParseError("unsupported image version");

            // From here on the kernel is mutated: any parse failure
            // must fall through to resetToEmpty.
            mutated = true;
            wipe(kern);

            // ---- config + layout constants ----
            r.expect(SEC_CONFIG, "config");
            const u32 layout[] = {numSysNums,
                                  obs::Metrics::maxOps,
                                  numTlbCounters,
                                  numCapFaults,
                                  numDeriveSources,
                                  numSignals,
                                  numCapRegs,
                                  numFaultPoints};
            for (u32 expected : layout) {
                if (r.get32() != expected)
                    throw ParseError("layout-constant mismatch (image "
                                     "from an incompatible build)");
            }
            if (r.get64() != pageSize)
                throw ParseError("page-size mismatch");
            KernelConfig newCfg;
            newCfg.capFormat = static_cast<compress::CapFormat>(
                r.getEnum(1, "cap format"));
            newCfg.swapPolicy =
                static_cast<SwapPolicy>(r.getEnum(1, "swap policy"));
            newCfg.features.largeClcImmediate = r.getBool();
            newCfg.features.asanInstrumentation = r.getBool();
            newCfg.stackSize = r.get64();
            newCfg.aslrSeed = r.get64();
            newCfg.frameCapacity = r.get64();
            newCfg.swapSlotBudget = r.get64();
            newCfg.revokeSliceBudget = r.get64();
            newCfg.timeSliceSteps = r.get64();

            // ---- physical frames ----
            r.expect(SEC_FRAMES, "frames");
            kern.phys.allocated = r.get64();
            kern.phys.failed = r.get64();
            kern.phys.reclaims = r.get64();
            kern.phys.capacity = r.get64();
            u64 nFrames = r.getCount();
            std::vector<FrameRef> frames(nFrames + 1);
            for (u64 i = 1; i <= nFrames; ++i) {
                FrameRef f = mintFrame(kern.phys);
                std::array<u8, pageSize> buf;
                r.getBytes(buf.data(), pageSize);
                // Bytes first, capabilities second: Frame::write clears
                // the tags of every granule it touches.
                f->write(0, buf.data(), pageSize);
                u64 nTags = r.getCount();
                for (u64 t = 0; t < nTags; ++t) {
                    u64 off = r.get64();
                    if (off >= pageSize || off % capSize != 0)
                        throw ParseError("corrupt tag offset");
                    f->writeCap(off, getCap(r));
                }
                frames[i] = std::move(f);
            }

            // ---- swap device ----
            r.expect(SEC_SWAP, "swap");
            kern.swap._policy =
                static_cast<SwapPolicy>(r.getEnum(1, "swap policy"));
            kern.swap.budget = r.get64();
            kern.swap.nextSlot = r.get64();
            kern.swap.swapOuts = r.get64();
            kern.swap.tagsPreserved = r.get64();
            kern.swap.swapOutFailures = r.get64();
            kern.swap.swapInFailures = r.get64();
            kern.swap.sweepScanFailures = r.get64();
            kern.swap.discards = r.get64();
            u64 nSlots = r.getCount();
            for (u64 i = 0; i < nSlots; ++i) {
                u64 id = r.get64();
                SwapDevice::Slot slot;
                r.getBytes(slot.bytes.data(), pageSize);
                slot.tagMeta.clear();
                u64 nTags = r.getCount();
                for (u64 t = 0; t < nTags; ++t) {
                    u64 off = r.get64();
                    slot.tagMeta.push_back({off, getCap(r)});
                }
                slot.refs = r.get64();
                if (!kern.swap.slots.emplace(id, std::move(slot)).second)
                    throw ParseError("duplicate swap slot");
            }

            // ---- vfs ----
            r.expect(SEC_VFS, "vfs");
            u64 nChans = r.getCount();
            std::vector<std::shared_ptr<ByteChannel>> chans(nChans + 1);
            for (u64 i = 1; i <= nChans; ++i) {
                auto ch = std::make_shared<ByteChannel>();
                u64 len = r.getCount();
                for (u64 k = 0; k < len; ++k)
                    ch->buf.push_back(r.get8());
                ch->writerClosed = r.getBool();
                ch->readerClosed = r.getBool();
                ch->readWait = r.get64();
                ch->writeWait = r.get64();
                chans[i] = std::move(ch);
            }
            u64 nNodes = r.getCount();
            std::vector<VNodeRef> nodes(nNodes + 1);
            for (u64 i = 1; i <= nNodes; ++i)
                nodes[i] = std::make_shared<VNode>();
            auto chanById = [&](u32 id) -> std::shared_ptr<ByteChannel> {
                if (id > nChans)
                    throw ParseError("corrupt channel id");
                return id ? chans[id] : nullptr;
            };
            auto nodeById = [&](u32 id) -> VNodeRef {
                if (id == 0 || id > nNodes)
                    throw ParseError("corrupt vnode id");
                return nodes[id];
            };
            for (u64 i = 1; i <= nNodes; ++i) {
                VNode &n = *nodes[i];
                n.kind = static_cast<NodeKind>(r.getEnum(4, "node kind"));
                n.name = r.getStr();
                u64 len = r.getCount();
                n.data.resize(len);
                r.getBytes(n.data.data(), len);
                u64 nKids = r.getCount();
                for (u64 k = 0; k < nKids; ++k) {
                    std::string name = r.getStr();
                    n.children[name] = nodeById(r.get32());
                }
                n.readCh = chanById(r.get32());
                n.writeCh = chanById(r.get32());
            }
            VNodeRef newRoot = nodeById(r.get32());
            if (newRoot->kind != NodeKind::Directory)
                throw ParseError("vfs root is not a directory");
            u64 nFiles = r.getCount();
            std::vector<OpenFileRef> files(nFiles + 1);
            for (u64 i = 1; i <= nFiles; ++i) {
                auto of = std::make_shared<OpenFile>();
                of->node = nodeById(r.get32());
                of->offset = r.get64();
                of->flags = r.get32();
                files[i] = std::move(of);
            }
            u64 maxWaitToken = r.get64();
            kern.fs.root = newRoot;

            // ---- processes ----
            r.expect(SEC_PROCS, "processes");
            u64 nProcs = r.getCount();
            for (u64 i = 0; i < nProcs; ++i) {
                u64 pid = r.get64();
                u64 ppid = r.get64();
                Abi abi = static_cast<Abi>(r.getEnum(2, "abi"));
                std::string name = r.getStr();
                MachineFeatures feat;
                feat.largeClcImmediate = r.getBool();
                feat.asanInstrumentation = r.getBool();

                u64 principal = r.get64();
                u64 slide = r.get64();
                auto fmt = static_cast<compress::CapFormat>(
                    r.getEnum(1, "cap format"));
                Capability rootCap = getCap(r);
                u64 useClock = r.get64();
                auto walkFault = static_cast<CapFault>(r.getEnum(
                    static_cast<u8>(numCapFaults - 1), "walk fault"));
                u64 sweepEpoch = r.get64();
                auto as = std::make_unique<AddressSpace>(
                    kern.phys, kern.swap, principal, fmt, 0);
                as->aslrSlide = slide;
                as->root = rootCap;
                as->useClock = useClock;
                as->walkFault = walkFault;
                as->activeSweepEpoch = sweepEpoch;
                u64 nRedirty = r.getCount();
                for (u64 k = 0; k < nRedirty; ++k)
                    as->redirtied.push_back(r.get64());
                u64 nMaps = r.getCount();
                for (u64 k = 0; k < nMaps; ++k) {
                    Mapping m;
                    m.start = r.get64();
                    m.len = r.get64();
                    m.prot = r.get32();
                    m.kind =
                        static_cast<MappingKind>(r.getEnum(9, "map kind"));
                    m.shared = r.getBool();
                    m.name = r.getStr();
                    m.backingOffset = r.get64();
                    as->mappings[m.start] = std::move(m);
                }
                u64 nPages = r.getCount();
                for (u64 k = 0; k < nPages; ++k) {
                    u64 va = r.get64();
                    u32 frameId = r.get32();
                    if (frameId > nFrames)
                        throw ParseError("corrupt frame id");
                    AddressSpace::Pte pte;
                    pte.frame = frameId ? frames[frameId] : nullptr;
                    pte.prot = r.get32();
                    pte.cow = r.getBool();
                    pte.shared = r.getBool();
                    pte.swapped = r.getBool();
                    pte.swapSlot = r.get64();
                    pte.lastUse = r.get64();
                    pte.capDirty = r.getBool();
                    pte.sweptEpoch = r.get64();
                    pte.queuedEpoch = r.get64();
                    as->pages[va] = std::move(pte);
                }

                auto proc = std::make_unique<Process>(
                    kern, pid, ppid, abi, name, std::move(as), feat);
                getRegs(r, proc->_regs);
                CostModel &cm = proc->_cost;
                cm._instructions = r.get64();
                cm._cycles = r.get64();
                cm._codeBytes = r.get64();
                cm._itlbAccesses = r.get64();
                cm._itlbMisses = r.get64();
                cm._dtlbAccesses = r.get64();
                cm._dtlbMisses = r.get64();
                cm.pc = r.get64();
                cm.codeFootprint = r.get64();
                loadCache(r, cm.cacheHier.l1i);
                loadCache(r, cm.cacheHier.l1d);
                loadCache(r, cm.cacheHier.l2);

                u64 nFds = r.getCount();
                for (u64 k = 0; k < nFds; ++k) {
                    u32 fileId = r.get32();
                    if (fileId > nFiles)
                        throw ParseError("corrupt open-file id");
                    proc->fds.push_back(fileId ? files[fileId] : nullptr);
                }
                u64 nThreads = r.getCount();
                for (u64 k = 0; k < nThreads; ++k) {
                    ThreadRecord t;
                    t.tid = r.get64();
                    getRegs(r, t.saved);
                    t.stackCap = getCap(r);
                    t.live = r.getBool();
                    proc->threads.push_back(std::move(t));
                }
                proc->curThread = r.get64();
                proc->nextTid = r.get64();
                // curThread is a tid, not an index: the main thread is
                // tid 0 and only spawned threads get records, so the
                // only sound bound is the allocator's high-water mark.
                if (proc->curThread >= proc->nextTid)
                    throw ParseError("corrupt current-thread id");
                for (SigAction &a : proc->sigActions) {
                    a.kind = static_cast<SigAction::Kind>(
                        r.getEnum(2, "sigaction kind"));
                    a.handlerId = r.get64();
                }
                proc->sigPending = r.get64();
                proc->sigMask = r.get64();
                proc->stackCap = getCap(r);
                proc->argvCap = getCap(r);
                proc->envvCap = getCap(r);
                proc->auxvCap = getCap(r);
                proc->trampolineCap = getCap(r);
                proc->argc = static_cast<int>(r.get32());
                proc->envc = static_cast<int>(r.get32());
                proc->heapHint = r.get64();
                proc->brkBase = r.get64();
                proc->brkCur = r.get64();
                proc->brkLimit = r.get64();
                proc->_exited = r.getBool();
                proc->_exitStatus = static_cast<int>(r.get32());
                if (r.getBool()) {
                    DeathInfo d;
                    d.signal = static_cast<int>(r.get32());
                    d.fault = static_cast<CapFault>(r.getEnum(
                        static_cast<u8>(numCapFaults - 1), "death fault"));
                    d.faultAddr = r.get64();
                    d.detail = r.getStr();
                    d.faultCap = getCap(r);
                    d.faultCapKnown = r.getBool();
                    d.deadlock = r.getBool();
                    proc->_death = std::move(d);
                }
                if (!kern.procs.emplace(pid, std::move(proc)).second)
                    throw ParseError("duplicate pid");
            }

            // ---- kernel scalars and tables ----
            r.expect(SEC_KERNEL, "kernel");
            kern.pressure.reclaimPasses = r.get64();
            kern.pressure.pagesReclaimed = r.get64();
            kern.pressure.oomKills = r.get64();
            kern.pressure.enomemErrors = r.get64();
            kern.fdStats.blocks = r.get64();
            kern.fdStats.wakes = r.get64();
            kern.fdStats.eagainErrors = r.get64();
            kern.fdStats.epipeErrors = r.get64();
            kern.fdStats.partialWrites = r.get64();
            kern.fdStats.selectTimeouts = r.get64();
            kern.revStats.epochsOpened = r.get64();
            kern.revStats.epochsClosed = r.get64();
            kern.revStats.epochsAborted = r.get64();
            kern.revStats.pagesScanned = r.get64();
            kern.revStats.pagesSkippedClean = r.get64();
            kern.revStats.granulesVisited = r.get64();
            kern.revStats.tagsRevoked = r.get64();
            kern.revStats.incrementalSlices = r.get64();
            kern.revStats.syncSweeps = r.get64();
            kern.revStats.cyclesInEpochs = r.get64();
            kern.switches = r.get64();
            kern.quiescentSeq = r.get64();
            kern.hardStats.panics = r.get64();
            kern.hardStats.deadlocksDetected = r.get64();
            kern.hardStats.deadlocksKilled = r.get64();
            kern.hardStats.machineChecks = r.get64();
            kern.nextEpochId = r.get64();
            kern.nextPid = r.get64();
            kern.nextPrincipal = r.get64();
            kern.nextOtype = r.get64();
            kern.nextShmId = static_cast<int>(r.get32());
            u64 nShm = r.getCount();
            for (u64 i = 0; i < nShm; ++i) {
                int id = static_cast<int>(r.get32());
                Kernel::ShmSegment seg;
                seg.size = r.get64();
                u64 nSegFrames = r.getCount();
                for (u64 k = 0; k < nSegFrames; ++k) {
                    u32 frameId = r.get32();
                    if (frameId == 0 || frameId > nFrames)
                        throw ParseError("corrupt shm frame id");
                    seg.frames.push_back(frames[frameId]);
                }
                kern.shmSegments[id] = std::move(seg);
            }
            u64 nKq = r.getCount();
            for (u64 i = 0; i < nKq; ++i) {
                u64 pid = r.get64();
                std::vector<KEvent> events;
                u64 nEv = r.getCount();
                for (u64 k = 0; k < nEv; ++k) {
                    KEvent e;
                    e.ident = static_cast<int>(r.get32());
                    e.filter =
                        static_cast<KFilter>(static_cast<s64>(r.get64()));
                    e.udata = getCap(r);
                    events.push_back(e);
                }
                kern.kqueues[pid] = std::move(events);
            }
            u64 nAttached = r.getCount();
            for (u64 i = 0; i < nAttached; ++i) {
                u64 dbg = r.get64();
                u64 target = r.get64();
                kern.attached.push_back({dbg, target});
            }
            u64 nEpochs = r.getCount();
            for (u64 i = 0; i < nEpochs; ++i) {
                u64 pid = r.get64();
                RevocationEpoch ep;
                ep.open = r.getBool();
                ep.id = r.get64();
                u64 nRanges = r.getCount();
                for (u64 k = 0; k < nRanges; ++k) {
                    u64 lo = r.get64();
                    u64 hi = r.get64();
                    ep.ranges.push_back({lo, hi});
                }
                u64 nWork = r.getCount();
                for (u64 k = 0; k < nWork; ++k)
                    ep.worklist.push_back(r.get64());
                ep.forceFull = r.getBool();
                ep.incremental = r.getBool();
                ep.revoked = r.get64();
                ep.cyclesAtOpen = r.get64();
                u64 nClosed = r.getCount();
                for (u64 k = 0; k < nClosed; ++k) {
                    u64 lo = r.get64();
                    u64 hi = r.get64();
                    ep.closedRanges.push_back({lo, hi});
                }
                ep.closeSeq = r.get64();
                kern.revEpochs[pid] = std::move(ep);
            }
            u64 nEvents = r.getCount();
            for (u64 i = 0; i < nEvents; ++i) {
                u64 pid = r.get64();
                kern.eventCounts[pid] = r.get64();
            }

            // ---- fault injector (arms only; the tap is environment) ----
            r.expect(SEC_INJECT, "injector");
            for (auto &arm : kern.injector.arms) {
                arm.mode = static_cast<FaultInjector::Mode>(
                    r.getEnum(2, "inject mode"));
                arm.countdown = r.get64();
                arm.period = r.get64();
                arm.lcg = r.get64();
                arm.seen = r.get64();
                arm.fired = r.get64();
            }

            // ---- metrics ----
            r.expect(SEC_METRICS, "metrics");
            bool hadMetrics = r.getBool();
            if (hadMetrics) {
                if (kern.mx)
                    getMetrics(r, *kern.mx);
                else {
                    // No registry attached here: parse (validating the
                    // section) into a scratch registry and discard.
                    auto scratch = std::make_unique<obs::Metrics>();
                    getMetrics(r, *scratch);
                }
            }

            // ---- scheduler ----
            r.expect(SEC_SCHED, "scheduler");
            if (r.getBool())
                loadSched(kern, r);

            r.expect(SEC_END, "end");

            // Commit: config applies only once the whole image parsed.
            kern.cfg = newCfg;
            Vfs::reserveWaitIds(maxWaitToken + 1);
            if (kern.mx) {
                if (!hadMetrics) {
                    // The image carried no metrics mirror but this
                    // kernel has a registry: rebuild the mirror from
                    // the restored kernel counters so the invariant
                    // oracle's mirror rules hold.
                    kern.mx->reset();
                    kern.mx->mem.reclaimPasses = kern.pressure.reclaimPasses;
                    kern.mx->mem.pagesReclaimed =
                        kern.pressure.pagesReclaimed;
                    kern.mx->mem.oomKills = kern.pressure.oomKills;
                    kern.mx->mem.enomemErrors = kern.pressure.enomemErrors;
                    kern.mx->rev.epochsOpened = kern.revStats.epochsOpened;
                    kern.mx->rev.epochsClosed = kern.revStats.epochsClosed;
                    kern.mx->rev.epochsAborted =
                        kern.revStats.epochsAborted;
                    kern.mx->rev.pagesScanned = kern.revStats.pagesScanned;
                    kern.mx->rev.pagesSkippedClean =
                        kern.revStats.pagesSkippedClean;
                    kern.mx->rev.granulesVisited =
                        kern.revStats.granulesVisited;
                    kern.mx->rev.tagsRevoked = kern.revStats.tagsRevoked;
                    kern.mx->rev.incrementalSlices =
                        kern.revStats.incrementalSlices;
                    kern.mx->rev.syncSweeps = kern.revStats.syncSweeps;
                    kern.mx->rev.cyclesInEpochs =
                        kern.revStats.cyclesInEpochs;
                    kern.mx->fdio.blocks = kern.fdStats.blocks;
                    kern.mx->fdio.wakes = kern.fdStats.wakes;
                    kern.mx->fdio.eagainErrors = kern.fdStats.eagainErrors;
                    kern.mx->fdio.epipeErrors = kern.fdStats.epipeErrors;
                    kern.mx->fdio.partialWrites =
                        kern.fdStats.partialWrites;
                    kern.mx->fdio.selectTimeouts =
                        kern.fdStats.selectTimeouts;
                    if (kern.schedIface) {
                        const SchedStats &st = kern.schedIface->stats();
                        kern.mx->schd.contextSwitches = st.contextSwitches;
                        kern.mx->schd.preemptions = st.preemptions;
                        kern.mx->schd.slices = st.slices;
                        kern.mx->schd.blocksWait4 = st.blocksWait4;
                        kern.mx->schd.blocksEvent = st.blocksEvent;
                        kern.mx->schd.blocksSleep = st.blocksSleep;
                        kern.mx->schd.blocksFd = st.blocksFd;
                        kern.mx->schd.wakes = st.wakes;
                        kern.mx->schd.maxRunQueueDepth =
                            st.maxRunQueueDepth;
                        kern.mx->schd.idleAdvances = st.idleAdvances;
                        kern.mx->schd.stepsExecuted = st.stepsExecuted;
                    }
                }
                // Re-wire every restored process's fresh MemAccess into
                // the registry's TLB counter blocks.
                kern.setMetrics(kern.mx);
            }
            kern.kernelReady = true;
            if (kern.mx)
                kern.mx->recordRestore(true);
            return true;
        } catch (const ParseError &e) {
            if (mutated) {
                resetToEmpty(kern);
                if (kern.mx)
                    kern.mx->reset();
            }
            if (error)
                *error = "restore failed: " + e.msg;
            if (kern.mx)
                kern.mx->recordRestore(false);
            return false;
        }
    }

    /** Tear down all restorable state, leaving environment (trace sink,
     *  metrics pointer, check hook, injector tap, reclaim hook) wired. */
    static void
    wipe(Kernel &kern)
    {
        // Suppress FD wake edges: closeAllFds below fires channel
        // edges, and the scheduler is about to be destroyed.
        kern.kernelReady = false;
        for (auto &[pid, p] : kern.procs) {
            (void)pid;
            p->closeAllFds();
        }
        // The scheduler's contexts hold Process references: destroy
        // them before the processes.
        kern.installScheduler(nullptr);
        kern.procs.clear();
        kern.shmSegments.clear();
        kern.kqueues.clear();
        kern.attached.clear();
        kern.revEpochs.clear();
        kern.eventCounts.clear();
        kern.fs = Vfs();
        kern.swap.slots.clear();
    }

    /** Restore-abort landing pad: an empty, usable kernel matching what
     *  the Kernel constructor builds (modulo environment, which is
     *  preserved). */
    static void
    resetToEmpty(Kernel &kern)
    {
        wipe(kern);
        kern.pressure = {};
        kern.fdStats = {};
        kern.revStats = {};
        kern.hardStats = {};
        kern.lastDispatchPid = 0;
        kern.lastDispatchCode = ~u64{0};
        kern.panicPlant = 0;
        kern.panicInProgress = false;
        kern.nextEpochId = 0;
        kern.quiescentSeq = 0;
        kern.nextPid = 1;
        kern.nextPrincipal = 1;
        kern.nextOtype = 1;
        kern.nextShmId = 1;
        kern.switches = 0;
        kern.phys.allocated = 0;
        kern.phys.failed = 0;
        kern.phys.reclaims = 0;
        kern.phys.capacity = kern.cfg.frameCapacity;
        kern.swap._policy = kern.cfg.swapPolicy;
        kern.swap.budget = kern.cfg.swapSlotBudget;
        kern.swap.nextSlot = 0;
        kern.swap.swapOuts = 0;
        kern.swap.tagsPreserved = 0;
        kern.swap.swapOutFailures = 0;
        kern.swap.swapInFailures = 0;
        kern.swap.sweepScanFailures = 0;
        kern.swap.discards = 0;
        kern.injector.arms = {};
        // Rebuild the constructor's VFS baseline.
        kern.fs.mkdir("/tmp");
        kern.fs.mkdir("/etc");
        kern.fs.mkdir("/home");
        if (auto motd = kern.fs.createFile("/etc/motd")) {
            const char msg[] = "MiniBSD (CheriABI reproduction kernel)\n";
            motd->data.assign(msg, msg + sizeof(msg) - 1);
        }
        kern.kernelReady = true;
    }

    static void
    setReady(Kernel &kern, bool ready)
    {
        kern.kernelReady = ready;
    }
};

std::vector<u8>
save(Kernel &kern, std::string *error)
{
    return Access::saveImpl(kern, error);
}

bool
restore(Kernel &kern, const std::vector<u8> &image, std::string *error)
{
    return Access::restoreImpl(kern, image, error);
}

void
setKernelReadyForTest(Kernel &kern, bool ready)
{
    Access::setReady(kern, ready);
}

void
installPanicSnapshotHook(Kernel &kern)
{
    kern.setPanicSnapshotHook([](Kernel &k) {
        // save() refuses unsnapshottable state by returning an empty
        // image with an error string — exactly the degraded-capture
        // behavior the panic path wants, so the error is dropped.
        std::string err;
        return save(k, &err);
    });
}

} // namespace cheri::snap
