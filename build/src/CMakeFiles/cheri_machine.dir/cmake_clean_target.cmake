file(REMOVE_RECURSE
  "libcheri_machine.a"
)
