/**
 * @file
 * Domain example: ISA-level capability semantics.
 *
 * Assembles and runs MiniCHERI machine code inside a CheriABI process:
 * deriving a bounded capability with CSetBounds, faulting precisely at
 * an out-of-bounds CLD, and demonstrating the paper's NULL-DDC rule —
 * the very same legacy load instruction that works in a mips64 process
 * traps immediately in a pure-capability one.  The finale enters the
 * kernel through the numbered syscall ABI and dumps the observability
 * registry (counters, fault telemetry with provenance) as JSON.
 *
 * All guest code executes through the kernel scheduler: each process
 * has one persistent execution context whose interpreter (and decode
 * cache) survives across the programs below.
 *
 * Build & run:  ./build/examples/isa_playground
 */

#include <cstdio>

#include "isa/assembler.h"
#include "isa/interp.h"
#include "obs/metrics.h"
#include "os/kernel.h"
#include "os/sched/sched.h"

using namespace cheri;
using namespace cheri::isa;

namespace
{

const char *
statusName(InterpResult::Status s)
{
    switch (s) {
      case InterpResult::Status::Running: return "running";
      case InterpResult::Status::Halted: return "halted";
      case InterpResult::Status::Fault: return "FAULT";
      case InterpResult::Status::StepLimit: return "step limit";
      case InterpResult::Status::Preempted: return "preempted";
    }
    return "?";
}

} // namespace

int
main()
{
    Kernel kern;
    obs::Metrics metrics;
    kern.setMetrics(&metrics);
    kern.setTrace(&metrics); // learn capability provenance
    SelfObject prog;
    prog.name = "isa";
    Process *proc = kern.spawn(Abi::CheriAbi, "isa");
    kern.execve(*proc, prog, {"isa"}, {});
    u64 code = proc->as().map(0, pageSize,
                              PROT_READ | PROT_WRITE | PROT_EXEC,
                              MappingKind::Text);
    u64 data = proc->as().map(0, pageSize, PROT_READ | PROT_WRITE,
                              MappingKind::Data);

    sched::Scheduler &schd = sched::schedulerFor(kern);
    sched::ExecContext &cx = schd.context(*proc);
    Interpreter &interp = *cx.interp;

    std::printf("program: derive a 16-byte capability, fill it, then "
                "walk one word too far\n\n");
    Assembler a;
    a.csetboundsimm(2, 1, 16) // c2 = c1 bounded to 16 bytes
        .li(3, 0x11)
        .csd(3, 2, 0)  // in bounds
        .csd(3, 2, 8)  // in bounds
        .cld(4, 2, 16) // one past: traps
        .halt();
    a.writeTo(proc->as(), code);

    interp.setEntry(proc->as()
                        .capForRange(code, pageSize,
                                     PROT_READ | PROT_EXEC, false)
                        .setAddress(code));
    interp.regs().c[1] =
        proc->as()
            .capForRange(data, pageSize, PROT_READ | PROT_WRITE, false)
            .setAddress(data);
    schd.ready(cx);
    kern.runUntilIdle();
    InterpResult r = cx.last;
    std::printf("status: %s after %lu instructions\n",
                statusName(r.status), static_cast<unsigned long>(r.steps));
    std::printf("fault:  %s at pc=0x%lx (instruction #%lu: cld)\n",
                std::string(capFaultName(r.fault)).c_str(),
                static_cast<unsigned long>(r.faultPc),
                static_cast<unsigned long>((r.faultPc - code) / insnSize));
    std::printf("c2 was: %s\n\n", interp.regs().c[2].toString().c_str());

    std::printf("now the NULL-DDC rule: `ld r2, 0(r1)` — a legacy "
                "integer load —\n");
    Assembler b;
    b.li(1, static_cast<s64>(data)).ld(2, 1, 0).halt();
    b.writeTo(proc->as(), code);
    interp.setEntry(proc->as()
                        .capForRange(code, pageSize,
                                     PROT_READ | PROT_EXEC, false)
                        .setAddress(code));
    schd.ready(cx);
    kern.runUntilIdle();
    InterpResult r2 = cx.last;
    std::printf("  in this CheriABI process: %s (%s) — DDC is NULL\n",
                statusName(r2.status),
                std::string(capFaultName(r2.fault)).c_str());

    Process *legacy = kern.spawn(Abi::Mips64, "isa-legacy");
    kern.execve(*legacy, prog, {"isa-legacy"}, {});
    u64 code2 = legacy->as().map(0, pageSize,
                                 PROT_READ | PROT_WRITE | PROT_EXEC,
                                 MappingKind::Text);
    u64 data2 = legacy->as().map(0, pageSize, PROT_READ | PROT_WRITE,
                                 MappingKind::Data);
    Assembler c;
    c.li(1, static_cast<s64>(data2)).ld(2, 1, 0).halt();
    c.writeTo(legacy->as(), code2);
    sched::ExecContext &cxl = schd.context(*legacy);
    cxl.interp->setEntry(Capability::fromAddress(code2));
    schd.ready(cxl);
    kern.runUntilIdle();
    InterpResult r3 = cxl.last;
    std::printf("  in a mips64 process:      %s — DDC spans the "
                "address space\n",
                statusName(r3.status));

    std::printf("\nfinally, the numbered syscall ABI: `syscall #n` "
                "enters Kernel::dispatch,\nwhich marshals arguments "
                "from the register file and reports errno in "
                "registers\n");
    Assembler d;
    d.syscall(static_cast<s64>(SysNum::Getpid))
        .syscall(static_cast<s64>(SysNum::Sbrk)) // CheriABI: E_NOSYS
        .halt();
    d.writeTo(proc->as(), code);
    interp.setEntry(proc->as()
                        .capForRange(code, pageSize,
                                     PROT_READ | PROT_EXEC, false)
                        .setAddress(code));
    cx.stepLimit = 1; // one instruction this window: getpid first
    schd.ready(cx);
    kern.runUntilIdle();
    std::printf("  getpid -> err=%lu ret=%lu (the pid)\n",
                static_cast<unsigned long>(interp.regs().x[regSysErr]),
                static_cast<unsigned long>(interp.regs().x[regRetVal]));
    cx.stepLimit = 0; // run the rest to the halt
    schd.ready(cx);
    kern.runUntilIdle();
    std::printf("  sbrk   -> err=%lu ret=%lu (%s: CheriABI excludes "
                "sbrk by principle)\n",
                static_cast<unsigned long>(interp.regs().x[regSysErr]),
                static_cast<unsigned long>(interp.regs().x[regRetVal]),
                std::string(errnoName(static_cast<int>(
                                interp.regs().x[regRetVal])))
                    .c_str());

    std::printf("\neverything above was observed; the registry as "
                "JSON:\n%s\n",
                metrics.toJson().c_str());
    return 0;
}
