/**
 * @file
 * Capability permission bits and object types.
 *
 * Models the CHERI-MIPS permission set described in the CHERI ISA
 * specification and used throughout the CheriABI paper: hardware
 * permissions controlling load/store/execute and capability propagation,
 * plus software-defined (user) permissions, of which CheriABI uses one —
 * the "vmmap" permission gating address-space management system calls
 * (mmap fixed mappings, munmap, shmdt).
 */

#ifndef CHERI_CAP_PERMS_H
#define CHERI_CAP_PERMS_H

#include <cstdint>
#include <string>

namespace cheri
{

/** Hardware and software permission bits carried by every capability. */
enum Perm : std::uint32_t
{
    /** May be stored via capabilities lacking STORE_LOCAL_CAP. */
    PERM_GLOBAL = 1u << 0,
    /** May be installed into PCC and used for instruction fetch. */
    PERM_EXECUTE = 1u << 1,
    /** May be used to load data. */
    PERM_LOAD = 1u << 2,
    /** May be used to store data. */
    PERM_STORE = 1u << 3,
    /** Loads through this capability may carry tags. */
    PERM_LOAD_CAP = 1u << 4,
    /** Stores through this capability may carry tags. */
    PERM_STORE_CAP = 1u << 5,
    /** Non-global (local) capabilities may be stored through this. */
    PERM_STORE_LOCAL_CAP = 1u << 6,
    /** May seal other capabilities (otype space authority). */
    PERM_SEAL = 1u << 7,
    /** May be used with the CCall domain-crossing mechanism. */
    PERM_CCALL = 1u << 8,
    /** May unseal capabilities sealed with otypes in range. */
    PERM_UNSEAL = 1u << 9,
    /** Grants access to privileged system registers. */
    PERM_ACCESS_SYS_REGS = 1u << 10,

    /**
     * Software-defined permission used by CheriABI: holder may manage
     * virtual-memory mappings covered by this capability (fixed-address
     * mmap, munmap, shmdt).  Stripped from malloc results so heap
     * pointers cannot be used to remap memory out from under the
     * allocator (paper section 4, "Dynamic allocations").
     */
    PERM_SW_VMMAP = 1u << 16,
    /** Additional software-defined permissions. */
    PERM_SW0 = 1u << 17,
    PERM_SW1 = 1u << 18,
    PERM_SW2 = 1u << 19,
};

/** All permissions, as held by the primordial (root) capabilities. */
constexpr std::uint32_t permsAll = 0x000F07FFu;

/** All hardware (non-software-defined) permissions. */
constexpr std::uint32_t permsHardware = 0x000007FFu;

/** Permissions for ordinary read-write data (e.g., heap allocations). */
constexpr std::uint32_t permsData =
    PERM_GLOBAL | PERM_LOAD | PERM_STORE | PERM_LOAD_CAP | PERM_STORE_CAP |
    PERM_STORE_LOCAL_CAP;

/** Permissions for read-only data. */
constexpr std::uint32_t permsRoData = PERM_GLOBAL | PERM_LOAD | PERM_LOAD_CAP;

/** Permissions for executable code (PCC values). */
constexpr std::uint32_t permsCode =
    PERM_GLOBAL | PERM_EXECUTE | PERM_LOAD | PERM_LOAD_CAP;

/**
 * Object-type values.  A capability with otype != otypeUnsealed is sealed:
 * immutable and non-dereferenceable until unsealed by a capability bearing
 * PERM_UNSEAL whose bounds cover the otype.
 */
using OType = std::uint32_t;

/** The otype of an unsealed capability. */
constexpr OType otypeUnsealed = 0xFFFFFFFFu;

/** Largest architecturally valid otype. */
constexpr OType otypeMax = (1u << 18) - 1;

/** Render a permission mask like "GrRwWlEx+vmmap" for diagnostics. */
std::string permsToString(std::uint32_t perms);

} // namespace cheri

#endif // CHERI_CAP_PERMS_H
