/**
 * @file
 * Quickstart: boot a MiniBSD kernel, exec a pure-capability (CheriABI)
 * process, and watch the machinery work.
 *
 *   - execve installs bounded capabilities for the stack, arguments,
 *     and program image (paper Figure 1);
 *   - malloc returns capabilities bounded to each allocation;
 *   - walking one byte past an allocation traps with SIGPROT.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "guest/context.h"
#include "libc/crt.h"
#include "libc/malloc.h"

using namespace cheri;

int
main()
{
    // 1. Boot a kernel and create a CheriABI process.
    Kernel kern;
    SelfObject prog;
    prog.name = "hello";
    prog.textSize = 0x1000;
    Process *proc = kern.spawn(Abi::CheriAbi, "hello");
    kern.execve(*proc, prog, {"hello", "world"}, {"LANG=C"});

    std::printf("booted: pid=%lu principal=%lu\n",
                static_cast<unsigned long>(proc->pid()),
                static_cast<unsigned long>(proc->as().principal()));
    std::printf("stack capability:  %s\n",
                proc->regs().stack().toString().c_str());
    std::printf("PCC:               %s\n",
                proc->regs().pcc.toString().c_str());
    std::printf("DDC:               %s   <- NULL: no ambient authority\n",
                proc->regs().ddc.toString().c_str());

    // 2. Run guest code in the process.
    GuestContext ctx(kern, *proc);
    int rc = runGuest(ctx, [](GuestContext &ctx) {
        // The C runtime finds argv through the aux vector.
        CrtEnv env = crtInit(ctx);
        std::printf("\nguest: argc=%d argv[0]=\"%s\" argv[1]=\"%s\"\n",
                    env.argc, crtArg(ctx, env, 0).c_str(),
                    crtArg(ctx, env, 1).c_str());
        std::printf("guest: argv[1] capability: %s\n",
                    env.argv[1].cap.toString().c_str());

        // Heap allocations come back bounded.
        GuestMalloc heap(ctx);
        GuestPtr buf = heap.malloc(32);
        std::printf("guest: malloc(32) -> %s\n",
                    buf.cap.toString().c_str());
        for (int i = 0; i < 4; ++i)
            ctx.store<u64>(buf, i * 8, 0x1111 * (i + 1));
        std::printf("guest: buf[3] = 0x%lx\n",
                    static_cast<unsigned long>(ctx.load<u64>(buf, 24)));

        // One byte too far: the capability says no.
        std::printf("guest: reading buf[32]...\n");
        ctx.load<u8>(buf, 32); // SIGPROT
        return 0;
    });

    // 3. The overflow became a SIGPROT death, not silent corruption.
    std::printf("\nprocess exited with status %d\n", rc);
    if (proc->death()) {
        std::printf("cause: signal %d, %s at 0x%lx\n",
                    proc->death()->signal,
                    std::string(capFaultName(proc->death()->fault))
                        .c_str(),
                    static_cast<unsigned long>(proc->death()->faultAddr));
    }
    return 0;
}
