/**
 * @file
 * Host-side entry into the numbered syscall ABI.
 *
 * Guest workloads written as C++ (GuestContext veneers, benches, tests)
 * reach the kernel through the same register-level convention as
 * interpreted machine code: sysInvoke() marshals arguments into the
 * calling thread's register file exactly as compiled guest code would —
 * integers into x[regArg0+i], pointers into c[regArg0+i] (with the
 * address mirrored into the integer file for the legacy ABI) — then
 * enters Kernel::dispatch and decodes the result registers.  This keeps
 * Kernel::dispatch the single choke point for every syscall, however
 * it is issued.
 */

#ifndef CHERI_OS_SYS_INVOKE_H
#define CHERI_OS_SYS_INVOKE_H

#include <initializer_list>

#include "os/kernel.h"

namespace cheri
{

/** One syscall argument: an integer or a user pointer. */
struct SysArg
{
    u64 ival = 0;
    UserPtr ptr;
    bool isPtr = false;

    static SysArg
    i(u64 v)
    {
        SysArg a;
        a.ival = v;
        return a;
    }

    static SysArg
    p(const UserPtr &u)
    {
        SysArg a;
        a.ptr = u;
        a.ival = u.addr();
        a.isPtr = true;
        return a;
    }
};

/** Decoded result registers of a dispatched syscall. */
struct SysInvokeResult
{
    SysResult res;
    /** For pointer-returning syscalls: the c[regRetVal] result. */
    UserPtr out;
};

/**
 * Issue syscall @p num on @p proc's current thread through
 * Kernel::dispatch.  At most six arguments (regArg0..regArg0+5).
 */
SysInvokeResult sysInvoke(Kernel &kern, Process &proc, SysNum num,
                          std::initializer_list<SysArg> args = {});

} // namespace cheri

#endif // CHERI_OS_SYS_INVOKE_H
