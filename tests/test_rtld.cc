/**
 * @file
 * Run-time linker tests: capability GOT construction, per-variable
 * bounds, per-object function bounds, in-data pointer initializers,
 * dependency loading, and failure cases.
 */

#include <gtest/gtest.h>

#include "test_util.h"

namespace cheri
{
namespace
{

SelfObject
makeLibm()
{
    SelfObject lib;
    lib.name = "libm.so";
    lib.textSize = 0x3000;
    lib.data.resize(128);
    lib.data[0] = 42;
    lib.symbols = {
        {"pi_table", 0, 64, false},
        {"sin_fast", 0x100, 0x80, true},
    };
    return lib;
}

SelfObject
makeProgram()
{
    SelfObject prog;
    prog.name = "app";
    prog.textSize = 0x2000;
    prog.data.resize(64);
    prog.bssSize = 32;
    prog.needed = {"libm.so"};
    prog.symbols = {
        {"app_state", 0, 24, false},
        {"main", 0, 0x40, true},
    };
    prog.relocs = {
        {RelocKind::CapGlobal, 0, 0, "pi_table"},
        {RelocKind::CapFunction, 1, 0, "sin_fast"},
        {RelocKind::CapGlobal, 2, 0, "app_state"},
        // Global pointer initializer: app_state's pointer field (at
        // data offset 32) points to pi_table.
        {RelocKind::CapInit, 0, 32, "pi_table"},
    };
    return prog;
}

class RtldTest : public ::testing::TestWithParam<Abi>
{
  protected:
    RtldTest() : lib(makeLibm()), prog(makeProgram())
    {
        kern.rtld().registerLibrary(&lib);
        proc = kern.spawn(GetParam(), "app");
        EXPECT_EQ(kern.execve(*proc, prog, {"app"}, {}), E_OK);
        ctx = std::make_unique<GuestContext>(kern, *proc);
    }

    Kernel kern;
    SelfObject lib;
    SelfObject prog;
    Process *proc = nullptr;
    std::unique_ptr<GuestContext> ctx;
};

TEST_P(RtldTest, LoadsDependencies)
{
    ASSERT_EQ(proc->image.objects.size(), 2u);
    EXPECT_EQ(proc->image.objects[0].object->name, "app");
    EXPECT_EQ(proc->image.objects[1].object->name, "libm.so");
    EXPECT_NE(proc->image.find("libm.so"), nullptr);
}

TEST_P(RtldTest, DataSegmentCopied)
{
    const LinkedObject *libm = proc->image.find("libm.so");
    u8 b = 0;
    ASSERT_FALSE(proc->as().readBytes(libm->dataBase, &b, 1).has_value());
    EXPECT_EQ(b, 42);
}

TEST_P(RtldTest, GotHoldsResolvedPointers)
{
    const LinkedObject &app = proc->image.objects[0];
    const LinkedObject *libm = proc->image.find("libm.so");
    GuestPtr got(app.gotCap.tag()
                     ? app.gotCap
                     : Capability::fromAddress(app.gotBase));
    GuestPtr pi = ctx->loadPtr(got, 0);
    EXPECT_EQ(pi.addr(), libm->dataBase + 0);
    GuestPtr fn = ctx->loadPtr(got,
                               static_cast<s64>(ctx->ptrSize()));
    EXPECT_EQ(fn.addr(), libm->textBase + 0x100);
}

INSTANTIATE_TEST_SUITE_P(Abis, RtldTest,
                         ::testing::Values(Abi::Mips64, Abi::CheriAbi),
                         [](const auto &info) {
                             return info.param == Abi::CheriAbi
                                        ? "cheriabi"
                                        : "mips64";
                         });

class RtldCheri : public ::testing::Test
{
  protected:
    RtldCheri() : lib(makeLibm()), prog(makeProgram())
    {
        kern.rtld().registerLibrary(&lib);
        proc = kern.spawn(Abi::CheriAbi, "app");
        EXPECT_EQ(kern.execve(*proc, prog, {"app"}, {}), E_OK);
        ctx = std::make_unique<GuestContext>(kern, *proc);
    }

    Kernel kern;
    SelfObject lib;
    SelfObject prog;
    Process *proc = nullptr;
    std::unique_ptr<GuestContext> ctx;
};

TEST_F(RtldCheri, GlobalsGetPerVariableBounds)
{
    const LinkedObject &app = proc->image.objects[0];
    GuestPtr got(app.gotCap);
    GuestPtr pi = ctx->loadPtr(got, 0);
    ASSERT_TRUE(pi.cap.tag());
    EXPECT_EQ(pi.cap.length(), 64u) << "bounded to the symbol size";
    EXPECT_TRUE(pi.cap.hasPerms(PERM_LOAD));
    EXPECT_FALSE(pi.cap.hasPerms(PERM_EXECUTE));
    // Access past the variable traps.
    EXPECT_THROW(ctx->load<u64>(pi, 64), CapTrap);
    EXPECT_NO_THROW(ctx->load<u64>(pi, 56));
}

TEST_F(RtldCheri, FunctionsGetPerObjectExecutableBounds)
{
    const LinkedObject &app = proc->image.objects[0];
    const LinkedObject *libm = proc->image.find("libm.so");
    GuestPtr got(app.gotCap);
    GuestPtr fn = ctx->loadPtr(got, capSize);
    ASSERT_TRUE(fn.cap.tag());
    EXPECT_TRUE(fn.cap.hasPerms(PERM_EXECUTE));
    EXPECT_FALSE(fn.cap.hasPerms(PERM_STORE));
    // Bounds cover the whole defining object's text (PC-relative
    // addressing support), not just the one function.
    EXPECT_EQ(fn.cap.base(), libm->textBase);
    EXPECT_GE(fn.cap.length(), libm->object->textSize);
    // ...but not other objects.
    EXPECT_TRUE(fn.cap
                    .checkAccess(app.textBase, 4, PERM_EXECUTE)
                    .has_value());
}

TEST_F(RtldCheri, CapInitRemintsInDataPointers)
{
    // tags are not preserved on disk; the RTLD re-mints this pointer at
    // startup.
    const LinkedObject &app = proc->image.objects[0];
    const LinkedObject *libm = proc->image.find("libm.so");
    Result<Capability> r = proc->as().readCap(app.dataBase + 32);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().tag());
    EXPECT_EQ(r.value().address(), libm->dataBase);
    EXPECT_EQ(r.value().length(), 64u);
}

TEST_F(RtldCheri, DlsymStyleResolution)
{
    ResolvedSymbol sym =
        Rtld::resolve(proc->image, "sin_fast", Abi::CheriAbi);
    ASSERT_NE(sym.definingObject, nullptr);
    EXPECT_EQ(sym.definingObject->object->name, "libm.so");
    EXPECT_TRUE(sym.cap.tag());
    EXPECT_TRUE(sym.cap.hasPerms(PERM_EXECUTE));
    ResolvedSymbol missing =
        Rtld::resolve(proc->image, "no_such_symbol", Abi::CheriAbi);
    EXPECT_EQ(missing.definingObject, nullptr);
}

TEST_F(RtldCheri, MissingLibraryFails)
{
    SelfObject broken;
    broken.name = "broken";
    broken.needed = {"libmissing.so"};
    Process *p = kern.spawn(Abi::CheriAbi, "broken");
    EXPECT_THROW(kern.execve(*p, broken, {"broken"}, {}),
                 std::runtime_error);
}

TEST_F(RtldCheri, UnresolvedSymbolFails)
{
    SelfObject broken;
    broken.name = "broken2";
    broken.relocs = {{RelocKind::CapGlobal, 0, 0, "undefined_sym"}};
    Process *p = kern.spawn(Abi::CheriAbi, "broken2");
    EXPECT_THROW(kern.execve(*p, broken, {"broken2"}, {}),
                 std::runtime_error);
}

TEST_F(RtldCheri, RelocationsTracedAsGlobRelocs)
{
    struct Recorder : TraceSink
    {
        u64 globs = 0;
        void
        derive(DeriveSource s, const Capability &) override
        {
            globs += s == DeriveSource::GlobRelocs;
        }
    } rec;
    kern.setTrace(&rec);
    Process *p = kern.spawn(Abi::CheriAbi, "app2");
    SelfObject prog2 = makeProgram();
    ASSERT_EQ(kern.execve(*p, prog2, {"app2"}, {}), E_OK);
    kern.setTrace(nullptr);
    EXPECT_EQ(rec.globs, 4u) << "one event per relocation";
}

} // namespace
} // namespace cheri
