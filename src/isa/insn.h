/**
 * @file
 * The MiniCHERI instruction set.
 *
 * A compact CHERI-MIPS-flavoured ISA executed by the interpreter in
 * interp.h: integer ALU and branches, legacy loads/stores that are
 * implicitly checked against DDC, and the capability instruction set —
 * derivation (CIncOffset, CSetBounds, CAndPerm), inspection (CGetTag,
 * CGetLen, CGetAddr), capability-relative memory access (CLx/CSx/CLC/
 * CSC), sealing (CSeal/CUnseal), and capability jumps (CJR).
 *
 * The encoding is 8 bytes per instruction:
 *   [63:56] opcode  [55:48] rd  [47:40] rs  [39:32] rt  [31:0] imm
 * Register numbers 0..31 name the integer file for integer operands and
 * the capability file for capability operands (the opcode decides).
 */

#ifndef CHERI_ISA_INSN_H
#define CHERI_ISA_INSN_H

#include <cstdint>
#include <string_view>

#include "cap/types.h"

namespace cheri::isa
{

enum class Op : u8
{
    // Control
    Halt = 0,
    Nop,
    // Integer ALU
    Li,    ///< rd = imm (sign-extended)
    Move,  ///< rd = rs
    Add,   ///< rd = rs + rt
    Addi,  ///< rd = rs + imm
    Sub,   ///< rd = rs - rt
    Mul,   ///< rd = rs * rt
    And,   ///< rd = rs & rt
    Or,    ///< rd = rs | rt
    Xor,   ///< rd = rs ^ rt
    Sll,   ///< rd = rs << imm
    Srl,   ///< rd = rs >> imm
    Slt,   ///< rd = rs < rt (unsigned)
    // Branches (imm = signed instruction offset from the next insn)
    Beq,   ///< if rs == rt branch
    Bne,   ///< if rs != rt branch
    J,     ///< unconditional branch
    // Legacy memory (address = rs + imm, checked against DDC)
    Lb,
    Ld,
    Sb,
    Sd,
    // Capability inspection
    CGetTag,  ///< rd = tag(cb=rs)
    CGetLen,  ///< rd = length(cb=rs)
    CGetAddr, ///< rd = address(cb=rs)
    CGetPerm, ///< rd = perms(cb=rs)
    // Capability manipulation (cd=rd, cb=rs)
    CMove,
    CGetDDC,      ///< cd = DDC
    CGetPCC,      ///< cd = PCC
    CIncOffset,   ///< cd = cb + rt (integer register)
    CIncOffsetImm,///< cd = cb + imm
    CSetAddr,     ///< cd = cb with address = rt
    CSetBounds,   ///< cd = cb bounded to rt bytes
    CSetBoundsImm,///< cd = cb bounded to imm bytes
    CAndPerm,     ///< cd = cb with perms &= rt
    CClearTag,    ///< cd = cb untagged
    CSeal,        ///< cd = seal(cb, ct=rt)
    CUnseal,      ///< cd = unseal(cb, ct=rt)
    // Capability memory (address = addr(cb=rs) + imm)
    Clb,  ///< rd = byte via cb
    Cld,  ///< rd = u64 via cb
    Csb,  ///< store byte rt... (value in rd) via cb
    Csd,  ///< store u64 (value in rd) via cb
    Clc,  ///< cd = capability loaded via cb
    Csc,  ///< store capability cd via cb
    // Capability control flow
    Cjr,  ///< PCC = cb (must be tagged, unsealed, executable)
    // Environment
    Syscall, ///< invoke the host syscall hook with code = imm
};

/** Decoded instruction. */
struct Insn
{
    Op op = Op::Halt;
    u8 rd = 0;
    u8 rs = 0;
    u8 rt = 0;
    s64 imm = 0; // sign-extended from the 32-bit field

    /** Pack into the 8-byte encoding. */
    u64 encode() const;
    static Insn decode(u64 word);
};

/** Bytes per encoded instruction. */
constexpr u64 insnSize = 8;

std::string_view opName(Op op);

} // namespace cheri::isa

#endif // CHERI_ISA_INSN_H
