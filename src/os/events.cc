/**
 * @file
 * kevent and ioctl: the "dark corners" of the syscall surface.
 *
 * kevent(2) stores user pointers (udata) in kernel data structures for
 * later return; CheriABI requires those structures to hold full
 * capabilities so the pointer comes back with its tag intact (paper
 * section 4, "System calls").
 *
 * ioctl(2) is the classic capability-translation headache: some
 * commands carry flat structs, some carry structs *containing pointers*
 * the kernel must follow (modeled on FIODGNAME and the FreeBSD DHCP
 * client's under-allocated ioctl buffer, one of the real bugs CheriABI
 * caught), and some used to leak kernel pointers (now exposed as plain
 * virtual addresses).
 */

#include "os/kernel.h"

#include <cstring>

namespace cheri
{

SysResult
Kernel::sysKevent(Process &proc, const std::vector<KEvent> &changes,
                  std::vector<KEvent> *events, u64 max_events)
{
    chargeSyscall(proc, 2);
    auto &kq = kqueues[proc.pid()];
    for (const KEvent &ch : changes) {
        if (ch.filter != KFilter::User && !proc.fd(ch.ident))
            return SysResult::fail(E_BADF);
        bool replaced = false;
        for (KEvent &existing : kq) {
            if (existing.ident == ch.ident &&
                existing.filter == ch.filter) {
                // The kernel structure stores the capability itself.
                existing.udata = ch.udata;
                replaced = true;
            }
        }
        if (!replaced)
            kq.push_back(ch);
        proc.cost().capManip(1);
        // kevent stores the full capability in a kernel structure.
        if (traceSink && ch.udata.tag())
            traceSink->derive(DeriveSource::Kern, ch.udata);
    }
    if (!events)
        return SysResult::ok(0);
    u64 n = 0;
    for (const KEvent &reg : kq) {
        if (n >= max_events)
            break;
        bool fire = false;
        if (reg.filter == KFilter::User) {
            fire = true;
        } else if (OpenFileRef of = proc.fd(reg.ident)) {
            fire = reg.filter == KFilter::Read
                       ? Vfs::readReady(of->node, of->offset)
                       : Vfs::writeReady(of->node);
        }
        if (fire) {
            // udata round-trips through kernel memory with provenance
            // intact: a CheriABI process gets its tagged pointer back.
            events->push_back(reg);
            ++n;
        }
    }
    return SysResult::ok(n);
}

SysResult
Kernel::sysIoctl(Process &proc, int fd, u64 cmd, const UserPtr &arg)
{
    chargeSyscall(proc, 1);
    OpenFileRef of = proc.fd(fd);
    if (!of)
        return SysResult::fail(E_BADF);
    switch (cmd) {
      case TIOCGETA_SIM: {
        // Flat struct: plain copyout through the user capability.
        if (of->node->kind != NodeKind::PtyMaster &&
            of->node->kind != NodeKind::PtySlave) {
            return SysResult::fail(E_NOTTY);
        }
        u8 termios_blob[32] = {};
        termios_blob[0] = 1; // "echo"
        int err = copyout(proc, termios_blob, arg, sizeof(termios_blob));
        return err ? SysResult::fail(err) : SysResult::ok();
      }
      case FIODGNAME_SIM: {
        // Struct containing an interior pointer.  Layout differs by
        // ABI: { u64 len; <pad>; ptr buf } — the pointer is a 16-byte
        // capability under CheriABI, an 8-byte address under mips64.
        const bool cheri = proc.abi() == Abi::CheriAbi;
        u64 len = 0;
        int err = copyin(proc, arg, &len, 8);
        if (err)
            return SysResult::fail(err);
        Capability buf_cap;
        UserPtr buf_field = arg.offsetBy(cheri ? 16 : 8);
        err = copyincap(proc, buf_field, &buf_cap);
        if (err)
            return SysResult::fail(err);
        const std::string &name = of->node->name;
        if (len < name.size() + 1)
            return SysResult::fail(E_INVAL);
        // The kernel writes through the *interior* pointer.  Under
        // CheriABI an under-allocated buffer capability faults here —
        // the DHCP-client bug class the paper reports catching.
        UserPtr out{buf_cap, cheri};
        err = copyout(proc, name.c_str(), out, name.size() + 1);
        return err ? SysResult::fail(err) : SysResult::ok();
      }
      case KINFO_ADDR_SIM: {
        // Management interfaces expose kernel object *addresses*, not
        // kernel capabilities.
        u64 kernel_va = 0xC000000000 +
                        (reinterpret_cast<std::uintptr_t>(of->node.get()) &
                         0xFFFFFFF);
        int err = copyout(proc, &kernel_va, arg, 8);
        return err ? SysResult::fail(err) : SysResult::ok();
      }
      default:
        return SysResult::fail(E_NOTTY);
    }
}

} // namespace cheri
