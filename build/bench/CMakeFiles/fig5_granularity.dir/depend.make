# Empty dependencies file for fig5_granularity.
# This may be replaced when dependencies are built.
