file(REMOVE_RECURSE
  "CMakeFiles/cheri_guest.dir/guest/context.cc.o"
  "CMakeFiles/cheri_guest.dir/guest/context.cc.o.d"
  "libcheri_guest.a"
  "libcheri_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
