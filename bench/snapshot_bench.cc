/**
 * @file
 * Snapshot bench: checkpoint/restore throughput.
 *
 * Builds a populated kernel — several processes per ABI, each with an
 * exec'd image plus an anonymous region with every page touched (and
 * therefore resident and tagged-frame-backed) — then times repeated
 * snap::save() and snap::restore() round trips.  The figure of merit
 * is image megabytes per wall-clock second in each direction, plus
 * the image size itself (bytes per resident page), since the image is
 * what a fuzzer failure artifact costs on disk.
 *
 * Restore is timed against the *same* kernel instance: each iteration
 * wipes the previous state and rebuilds from the image, which is
 * exactly the forensic `cheri_replay restore` path.
 *
 * --json emits machine-readable results.  There is no --check gate:
 * wall-clock throughput depends on the host, so this bench informs
 * rather than gates.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "os/kernel.h"
#include "os/snapshot/snapshot.h"
#include "os/sys_invoke.h"

using namespace cheri;

namespace
{

constexpr u64 kProcs = 6;
constexpr u64 kPagesPerProc = 32;
constexpr int kReps = 20;

SelfObject
benchProgram()
{
    SelfObject prog;
    prog.name = "snapbench";
    prog.textSize = 0x2000;
    prog.data.resize(256, 0xa5);
    prog.bssSize = 128;
    prog.symbols = {
        {"counter", 0, 8, false},
        {"entry", 0, 0x100, true},
    };
    prog.relocs = {
        {RelocKind::CapGlobal, 0, 0, "counter"},
        {RelocKind::CapFunction, 1, 0, "entry"},
    };
    return prog;
}

/** Populate @p kern: kProcs processes, alternating ABI, each with an
 *  anon region whose every page is dirtied. */
bool
populate(Kernel &kern)
{
    SelfObject prog = benchProgram();
    for (u64 i = 0; i < kProcs; ++i) {
        Abi abi = (i & 1) ? Abi::Mips64 : Abi::CheriAbi;
        Process *p = kern.spawn(abi, "snapbench");
        if (!p || kern.execve(*p, prog, {"snapbench"}, {}) != E_OK)
            return false;
        auto mk = sysInvoke(kern, *p, SysNum::Mmap,
                            {SysArg::p(UserPtr::null()),
                             SysArg::i(kPagesPerProc * pageSize),
                             SysArg::i(PROT_READ | PROT_WRITE),
                             SysArg::i(MAP_ANON | MAP_PRIVATE)});
        if (mk.res.failed())
            return false;
        u64 base = mk.out.addr();
        for (u64 pg = 0; pg < kPagesPerProc; ++pg) {
            u8 byte = static_cast<u8>(i * 64 + pg);
            if (p->as().writeBytes(base + pg * pageSize + 8, &byte, 1))
                return false;
        }
    }
    return true;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json"))
            json = true;
    }

    Kernel kern;
    if (!populate(kern)) {
        std::fprintf(stderr, "snapshot_bench: setup failed\n");
        return 1;
    }

    std::string err;
    std::vector<u8> image = snap::save(kern, &err);
    if (image.empty()) {
        std::fprintf(stderr, "snapshot_bench: save failed: %s\n",
                     err.c_str());
        return 1;
    }

    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
        std::vector<u8> img = snap::save(kern, &err);
        if (img.size() != image.size()) {
            std::fprintf(stderr, "snapshot_bench: unstable image\n");
            return 1;
        }
    }
    double saveSec = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
        if (!snap::restore(kern, image, &err)) {
            std::fprintf(stderr, "snapshot_bench: restore failed: %s\n",
                         err.c_str());
            return 1;
        }
    }
    double restoreSec = secondsSince(t0);

    double mb = static_cast<double>(image.size()) / (1024.0 * 1024.0);
    double saveMbs = mb * kReps / saveSec;
    double restoreMbs = mb * kReps / restoreSec;

    if (json) {
        std::printf("{\"bench\":\"snapshot\",\"procs\":%llu,"
                    "\"pagesPerProc\":%llu,\"imageBytes\":%zu,"
                    "\"reps\":%d,\"saveMBps\":%.1f,"
                    "\"restoreMBps\":%.1f}\n",
                    (unsigned long long)kProcs,
                    (unsigned long long)kPagesPerProc, image.size(),
                    kReps, saveMbs, restoreMbs);
        return 0;
    }

    bench::banner("Snapshot: checkpoint/restore throughput");
    bench::note("workload: " + std::to_string(kProcs) + " processes x " +
                std::to_string(kPagesPerProc) + " resident pages");
    std::printf("image size    %10zu bytes\n", image.size());
    std::printf("save          %10.1f MB/s  (%d reps)\n", saveMbs, kReps);
    std::printf("restore       %10.1f MB/s  (%d reps)\n", restoreMbs,
                kReps);
    return 0;
}
