#include "mem/access.h"

#include <algorithm>
#include <cstring>

#include "machine/cost_model.h"

namespace cheri
{

MemAccess::MemAccess(AddressSpace &space) : as(&space)
{
    as->addTlbListener(this);
}

MemAccess::~MemAccess()
{
    if (as)
        as->removeTlbListener(this);
}

void
MemAccess::bind(AddressSpace &space)
{
    if (as == &space)
        return;
    if (as)
        as->removeTlbListener(this);
    as = &space;
    as->addTlbListener(this);
    invalidateAll();
}

void
MemAccess::detach()
{
    as = nullptr;
    dtlb.fill(Entry{});
    itlb.fill(Entry{});
    ++_fetchGen;
}

void
MemAccess::countDataHit()
{
    ++st.dataHits;
    if (counters)
        ++counters[TlbDataHit];
    if (cost)
        cost->tlbAccess(false, true);
}

void
MemAccess::countFetchHit()
{
    ++st.fetchHits;
    if (counters)
        ++counters[TlbFetchHit];
    if (cost)
        cost->tlbAccess(true, true);
}

Frame *
MemAccess::missData(u64 page_va, bool for_write, bool cap_store)
{
    ++st.dataMisses;
    if (counters)
        ++counters[TlbDataMiss];
    if (cost)
        cost->tlbAccess(false, false);
    if (!as)
        return nullptr;
    PageView view;
    if (!as->resolvePage(page_va, for_write, &view, cap_store))
        return nullptr;
    Entry &e = dtlb[indexOf(page_va)];
    e.pageVa = page_va;
    e.frame = view.frame;
    e.prot = view.prot;
    e.writable = (view.prot & PROT_WRITE) != 0 && !view.cow;
    // No cached cap-store permission while a revocation epoch is open:
    // the epoch's re-queue logic (markCapStore) lives on the walk
    // path, and a fast-path cap store to a scanned-but-still-dirty
    // page would dodge it and survive the epoch.
    e.capWritable = e.writable && view.capDirty && !view.sweepEpochOpen;
    return view.frame;
}

Frame *
MemAccess::missFetch(u64 page_va)
{
    ++st.fetchMisses;
    if (counters)
        ++counters[TlbFetchMiss];
    if (cost)
        cost->tlbAccess(true, false);
    if (!as)
        return nullptr;
    PageView view;
    if (!as->resolvePage(page_va, false, &view))
        return nullptr;
    Entry &e = itlb[indexOf(page_va)];
    e.pageVa = page_va;
    e.frame = view.frame;
    e.prot = view.prot;
    e.writable = false; // the iTLB never authorizes stores
    return view.frame;
}

CapCheck
MemAccess::read(u64 va, void *buf, u64 len)
{
    u8 *out = static_cast<u8 *>(buf);
    bool first = true;
    while (len > 0) {
        u64 page = pageTrunc(va);
        u64 off = va & pageMask;
        u64 chunk = std::min(len, pageSize - off);
        Entry &e = dtlb[indexOf(page)];
        Frame *f;
        if (e.pageVa == page && (e.prot & PROT_READ)) {
            f = e.frame;
            countDataHit();
        } else {
            f = missData(page, false);
            if (!f)
                return missFault();
        }
        // Corruption probe once per access, after translation: an
        // injected data-line flip machine-checks the load the way ECC
        // would, instead of returning silently wrong bytes.
        if (first && as && as->physMem().injectDataLoadCorruption(va))
            return CapFault::MachineCheck;
        first = false;
        f->read(off, out, chunk);
        va += chunk;
        out += chunk;
        len -= chunk;
    }
    return std::nullopt;
}

CapCheck
MemAccess::write(u64 va, const void *buf, u64 len)
{
    const u8 *in = static_cast<const u8 *>(buf);
    while (len > 0) {
        u64 page = pageTrunc(va);
        u64 off = va & pageMask;
        u64 chunk = std::min(len, pageSize - off);
        Entry &e = dtlb[indexOf(page)];
        Frame *f;
        bool exec;
        if (e.pageVa == page && e.writable) {
            f = e.frame;
            exec = (e.prot & PROT_EXEC) != 0;
            countDataHit();
        } else {
            f = missData(page, true);
            if (!f)
                return missFault();
            exec = (dtlb[indexOf(page)].prot & PROT_EXEC) != 0;
        }
        if (exec && as)
            as->notifyCodeWrite();
        f->write(off, in, chunk);
        va += chunk;
        in += chunk;
        len -= chunk;
    }
    return std::nullopt;
}

CapCheck
MemAccess::fetch(u64 va, void *buf, u64 len)
{
    u8 *out = static_cast<u8 *>(buf);
    while (len > 0) {
        u64 page = pageTrunc(va);
        u64 off = va & pageMask;
        u64 chunk = std::min(len, pageSize - off);
        Entry &e = itlb[indexOf(page)];
        Frame *f;
        if (e.pageVa == page && (e.prot & PROT_READ)) {
            f = e.frame;
            countFetchHit();
        } else {
            f = missFetch(page);
            if (!f)
                return missFault();
        }
        f->read(off, out, chunk);
        va += chunk;
        out += chunk;
        len -= chunk;
    }
    return std::nullopt;
}

Result<Capability>
MemAccess::readCap(u64 va)
{
    if (va % capAlign != 0)
        return CapFault::AlignmentViolation;
    u64 page = pageTrunc(va);
    Entry &e = dtlb[indexOf(page)];
    Frame *f;
    if (e.pageVa == page && (e.prot & PROT_READ)) {
        f = e.frame;
        countDataHit();
    } else {
        f = missData(page, false);
        if (!f)
            return missFault();
    }
    // Tagged granules only: an untagged load has no tag to flip, and
    // probing it would burn injector events on non-capability traffic.
    u64 off = va & pageMask;
    if (f->tagAt(off) && as &&
        as->physMem().injectCapLoadCorruption(*f, off, va))
        return CapFault::MachineCheck;
    return f->readCap(off);
}

CapCheck
MemAccess::writeCap(u64 va, const Capability &cap)
{
    if (va % capAlign != 0)
        return CapFault::AlignmentViolation;
    u64 page = pageTrunc(va);
    Entry &e = dtlb[indexOf(page)];
    Frame *f;
    bool exec;
    // The fast path requires cached *capability*-store permission,
    // which exists only for pages already cap-dirty; a cap-clean page
    // always misses so the walk can set its dirty bit.
    if (e.pageVa == page && e.capWritable) {
        f = e.frame;
        exec = (e.prot & PROT_EXEC) != 0;
        countDataHit();
    } else {
        f = missData(page, true, true);
        if (!f)
            return missFault();
        exec = (dtlb[indexOf(page)].prot & PROT_EXEC) != 0;
    }
    if (exec && as)
        as->notifyCodeWrite();
    f->writeCap(va & pageMask, cap);
    return std::nullopt;
}

MemAccess::StrRead
MemAccess::readString(u64 va, std::string *out, u64 max, u64 *scanned)
{
    out->clear();
    u64 n = 0;
    while (n < max) {
        u64 page = pageTrunc(va);
        u64 off = va & pageMask;
        u64 chunk = std::min(max - n, pageSize - off);
        Entry &e = dtlb[indexOf(page)];
        Frame *f;
        if (e.pageVa == page && (e.prot & PROT_READ)) {
            f = e.frame;
            countDataHit();
        } else {
            f = missData(page, false);
            if (!f) {
                if (scanned)
                    *scanned = n;
                return StrRead::Fault;
            }
        }
        const u8 *base = f->bytes().data() + off;
        const void *nul = std::memchr(base, 0, chunk);
        if (nul) {
            u64 k = static_cast<u64>(static_cast<const u8 *>(nul) - base);
            out->append(reinterpret_cast<const char *>(base), k);
            n += k + 1; // the NUL was examined too
            if (scanned)
                *scanned = n;
            return StrRead::Ok;
        }
        out->append(reinterpret_cast<const char *>(base), chunk);
        n += chunk;
        va += chunk;
    }
    if (scanned)
        *scanned = n;
    return StrRead::TooLong;
}

void
MemAccess::invalidatePage(u64 page_va)
{
    page_va = pageTrunc(page_va);
    Entry &d = dtlb[indexOf(page_va)];
    if (d.pageVa == page_va)
        d = Entry{};
    Entry &i = itlb[indexOf(page_va)];
    if (i.pageVa == page_va)
        i = Entry{};
    ++_fetchGen;
    ++st.invalidations;
    if (counters)
        ++counters[TlbInvalidation];
}

void
MemAccess::invalidateRange(u64 start, u64 len)
{
    u64 first = pageTrunc(start);
    u64 last = pageRound(start + len);
    // A range spanning every set is just a flush.
    if ((last - first) / pageSize >= tlbSize) {
        dtlb.fill(Entry{});
        itlb.fill(Entry{});
    } else {
        for (u64 page = first; page < last; page += pageSize) {
            Entry &d = dtlb[indexOf(page)];
            if (d.pageVa == page)
                d = Entry{};
            Entry &i = itlb[indexOf(page)];
            if (i.pageVa == page)
                i = Entry{};
        }
    }
    ++_fetchGen;
    ++st.invalidations;
    if (counters)
        ++counters[TlbInvalidation];
}

void
MemAccess::invalidateAll()
{
    dtlb.fill(Entry{});
    itlb.fill(Entry{});
    ++_fetchGen;
    ++st.invalidations;
    if (counters)
        ++counters[TlbInvalidation];
}

} // namespace cheri
