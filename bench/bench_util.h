/**
 * @file
 * Shared helpers for the reproduction benches: table formatting and
 * paper-reference printing.
 */

#ifndef CHERI_BENCH_BENCH_UTIL_H
#define CHERI_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

namespace cheri::bench
{

inline void
banner(const std::string &title)
{
    std::printf("\n============================================================"
                "====\n%s\n============================================="
                "===============\n",
                title.c_str());
}

inline void
note(const std::string &text)
{
    std::printf("%s\n", text.c_str());
}

} // namespace cheri::bench

#endif // CHERI_BENCH_BENCH_UTIL_H
