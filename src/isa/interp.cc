#include "isa/interp.h"

#include "machine/trap.h"
#include "obs/metrics.h"
#include "os/kernel.h"

namespace cheri::isa
{

namespace
{

/** Internal fault signal carrying the architectural cause, plus (when
 *  the faulting instruction named one) the offending capability and
 *  effective address for telemetry. */
struct IsaFault
{
    CapFault cause;
    Capability via;
    u64 addr = 0;
    bool hasVia = false;
};

[[noreturn]] void
fault(CapFault cause)
{
    throw IsaFault{cause, {}, 0, false};
}

/** MMU faults carry the faulting VA but no capability. */
[[noreturn]] void
faultAt(CapFault cause, u64 addr)
{
    throw IsaFault{cause, {}, addr, false};
}

[[noreturn]] void
fault(CapFault cause, const Capability &via, u64 addr)
{
    throw IsaFault{cause, via, addr, true};
}

/** Check-and-throw helper for Result-returning capability ops. */
Capability
require(Result<Capability> r)
{
    if (!r.ok())
        fault(r.fault());
    return r.value();
}

} // namespace

Insn
Interpreter::fetch()
{
    const Capability &pcc = proc.regs().pcc;
    u64 pc = pcc.address();
    if (proc.abi() == Abi::CheriAbi || pcc.tag()) {
        // Instruction fetch is authorized by PCC — checked on every
        // fetch, decode cache or not.
        if (CapCheck chk = pcc.checkAccess(pc, insnSize, PERM_EXECUTE))
            fault(*chk, pcc, pc);
    }
    MemAccess &mem = proc.mem();
    DecodeEntry &e = dcache[(pc / insnSize) & (decodeCacheSize - 1)];
    if (e.va == pc && e.gen == mem.fetchGen()) {
        mem.countFetchHit();
        return e.insn;
    }
    u64 word = 0;
    if (CapCheck mmu = mem.fetch(pc, &word, insnSize))
        faultAt(*mmu, pc);
    e.va = pc;
    e.gen = mem.fetchGen();
    e.insn = Insn::decode(word);
    return e.insn;
}

InterpResult
Interpreter::step()
{
    InterpResult res;
    ThreadRegs &r = proc.regs();
    CostModel &cost = proc.cost();
    u64 pc = r.pcc.address();
    try {
        Insn i = fetch();
        if (mx)
            mx->countInsn(static_cast<unsigned>(i.op), proc.abi());
        // Default next PC; branches overwrite.
        u64 next = pc + insnSize;
        auto branch_to = [&](s64 insn_off) {
            next = pc + insnSize +
                   static_cast<u64>(insn_off * static_cast<s64>(insnSize));
        };
        auto legacy_access = [&](u64 addr, u64 len, u32 perm) {
            // Legacy loads/stores are checked against DDC: NULL under
            // CheriABI, so they trap there by construction.
            if (CapCheck chk = r.ddc.checkAccess(addr, len, perm))
                fault(*chk, r.ddc, addr);
        };
        auto cap_access = [&](const Capability &cb, u64 addr, u64 len,
                              u32 perm) {
            if (CapCheck chk = cb.checkAccess(addr, len, perm))
                fault(*chk, cb, addr);
        };
        // MMU faults record the faulting effective address so the
        // telemetry's provenance records are complete.
        auto mmu = [&](u64 addr, CapCheck chk) {
            if (chk)
                faultAt(*chk, addr);
        };

        switch (i.op) {
          case Op::Halt:
            res.status = InterpResult::Status::Halted;
            res.steps = ++_retired;
            cost.alu(1);
            return res;
          case Op::Nop: cost.alu(1); break;
          case Op::Li: r.x[i.rd] = static_cast<u64>(i.imm); cost.alu(1); break;
          case Op::Move: r.x[i.rd] = r.x[i.rs]; cost.alu(1); break;
          case Op::Add: r.x[i.rd] = r.x[i.rs] + r.x[i.rt]; cost.alu(1); break;
          case Op::Addi:
            r.x[i.rd] = r.x[i.rs] + static_cast<u64>(i.imm);
            cost.alu(1);
            break;
          case Op::Sub: r.x[i.rd] = r.x[i.rs] - r.x[i.rt]; cost.alu(1); break;
          case Op::Mul: r.x[i.rd] = r.x[i.rs] * r.x[i.rt]; cost.alu(1); break;
          case Op::And: r.x[i.rd] = r.x[i.rs] & r.x[i.rt]; cost.alu(1); break;
          case Op::Or: r.x[i.rd] = r.x[i.rs] | r.x[i.rt]; cost.alu(1); break;
          case Op::Xor: r.x[i.rd] = r.x[i.rs] ^ r.x[i.rt]; cost.alu(1); break;
          case Op::Sll:
            r.x[i.rd] = r.x[i.rs] << (i.imm & 63);
            cost.alu(1);
            break;
          case Op::Srl:
            r.x[i.rd] = r.x[i.rs] >> (i.imm & 63);
            cost.alu(1);
            break;
          case Op::Slt:
            r.x[i.rd] = r.x[i.rs] < r.x[i.rt];
            cost.alu(1);
            break;

          case Op::Beq:
            if (r.x[i.rs] == r.x[i.rt])
                branch_to(i.imm);
            cost.alu(1);
            break;
          case Op::Bne:
            if (r.x[i.rs] != r.x[i.rt])
                branch_to(i.imm);
            cost.alu(1);
            break;
          case Op::J:
            branch_to(i.imm);
            cost.alu(1);
            break;

          case Op::Lb: {
            u64 addr = r.x[i.rs] + static_cast<u64>(i.imm);
            legacy_access(addr, 1, PERM_LOAD);
            u8 v = 0;
            mmu(addr, proc.mem().read(addr, &v, 1));
            r.x[i.rd] = v;
            cost.load(addr, 1);
            break;
          }
          case Op::Ld: {
            u64 addr = r.x[i.rs] + static_cast<u64>(i.imm);
            legacy_access(addr, 8, PERM_LOAD);
            u64 v = 0;
            mmu(addr, proc.mem().read(addr, &v, 8));
            r.x[i.rd] = v;
            cost.load(addr, 8);
            break;
          }
          case Op::Sb: {
            u64 addr = r.x[i.rs] + static_cast<u64>(i.imm);
            legacy_access(addr, 1, PERM_STORE);
            u8 v = static_cast<u8>(r.x[i.rd]);
            mmu(addr, proc.mem().write(addr, &v, 1));
            cost.store(addr, 1);
            break;
          }
          case Op::Sd: {
            u64 addr = r.x[i.rs] + static_cast<u64>(i.imm);
            legacy_access(addr, 8, PERM_STORE);
            mmu(addr, proc.mem().write(addr, &r.x[i.rd], 8));
            cost.store(addr, 8);
            break;
          }

          case Op::CGetTag:
            r.x[i.rd] = r.c[i.rs].tag();
            cost.capManip(1);
            break;
          case Op::CGetLen:
            r.x[i.rd] = r.c[i.rs].length();
            cost.capManip(1);
            break;
          case Op::CGetAddr:
            r.x[i.rd] = r.c[i.rs].address();
            cost.capManip(1);
            break;
          case Op::CGetPerm:
            r.x[i.rd] = r.c[i.rs].perms();
            cost.capManip(1);
            break;
          case Op::CMove:
            r.c[i.rd] = r.c[i.rs];
            cost.capManip(1);
            break;
          case Op::CGetDDC:
            r.c[i.rd] = r.ddc;
            cost.capManip(1);
            break;
          case Op::CGetPCC:
            r.c[i.rd] = r.pcc;
            cost.capManip(1);
            break;
          case Op::CIncOffset:
            r.c[i.rd] =
                r.c[i.rs].incAddress(static_cast<s64>(r.x[i.rt]));
            cost.capManip(1);
            break;
          case Op::CIncOffsetImm:
            r.c[i.rd] = r.c[i.rs].incAddress(i.imm);
            cost.capManip(1);
            break;
          case Op::CSetAddr:
            r.c[i.rd] = r.c[i.rs].setAddress(r.x[i.rt]);
            cost.capManip(1);
            break;
          case Op::CSetBounds:
            r.c[i.rd] = require(r.c[i.rs].setBounds(r.x[i.rt]));
            if (traceSink)
                traceSink->derive(DeriveSource::Temp, r.c[i.rd]);
            cost.capManip(1);
            break;
          case Op::CSetBoundsImm:
            r.c[i.rd] = require(
                r.c[i.rs].setBounds(static_cast<u64>(i.imm)));
            if (traceSink)
                traceSink->derive(DeriveSource::Temp, r.c[i.rd]);
            cost.capManip(1);
            break;
          case Op::CAndPerm:
            r.c[i.rd] = require(
                r.c[i.rs].andPerms(static_cast<u32>(r.x[i.rt])));
            cost.capManip(1);
            break;
          case Op::CClearTag:
            r.c[i.rd] = r.c[i.rs].withoutTag();
            cost.capManip(1);
            break;
          case Op::CSeal:
            r.c[i.rd] = require(r.c[i.rs].seal(r.c[i.rt]));
            cost.capManip(1);
            break;
          case Op::CUnseal:
            r.c[i.rd] = require(r.c[i.rs].unseal(r.c[i.rt]));
            cost.capManip(1);
            break;

          case Op::Clb: {
            const Capability &cb = r.c[i.rs];
            u64 addr = cb.address() + static_cast<u64>(i.imm);
            cap_access(cb, addr, 1, PERM_LOAD);
            u8 v = 0;
            mmu(addr, proc.mem().read(addr, &v, 1));
            r.x[i.rd] = v;
            cost.load(addr, 1);
            break;
          }
          case Op::Cld: {
            const Capability &cb = r.c[i.rs];
            u64 addr = cb.address() + static_cast<u64>(i.imm);
            cap_access(cb, addr, 8, PERM_LOAD);
            u64 v = 0;
            mmu(addr, proc.mem().read(addr, &v, 8));
            r.x[i.rd] = v;
            cost.load(addr, 8);
            break;
          }
          case Op::Csb: {
            const Capability &cb = r.c[i.rs];
            u64 addr = cb.address() + static_cast<u64>(i.imm);
            cap_access(cb, addr, 1, PERM_STORE);
            u8 v = static_cast<u8>(r.x[i.rd]);
            mmu(addr, proc.mem().write(addr, &v, 1));
            cost.store(addr, 1);
            break;
          }
          case Op::Csd: {
            const Capability &cb = r.c[i.rs];
            u64 addr = cb.address() + static_cast<u64>(i.imm);
            cap_access(cb, addr, 8, PERM_STORE);
            mmu(addr, proc.mem().write(addr, &r.x[i.rd], 8));
            cost.store(addr, 8);
            break;
          }
          case Op::Clc: {
            const Capability &cb = r.c[i.rs];
            u64 addr = cb.address() + static_cast<u64>(i.imm);
            cap_access(cb, addr, capSize, PERM_LOAD | PERM_LOAD_CAP);
            Result<Capability> v = proc.mem().readCap(addr);
            if (!v.ok())
                faultAt(v.fault(), addr);
            r.c[i.rd] = v.value();
            cost.load(addr, capSize);
            break;
          }
          case Op::Csc: {
            const Capability &cb = r.c[i.rs];
            u64 addr = cb.address() + static_cast<u64>(i.imm);
            cap_access(cb, addr, capSize, PERM_STORE | PERM_STORE_CAP);
            if (CapCheck w = proc.mem().writeCap(addr, r.c[i.rd]))
                faultAt(*w, addr);
            cost.store(addr, capSize);
            break;
          }

          case Op::Cjr: {
            const Capability &cb = r.c[i.rs];
            if (CapCheck chk =
                    cb.checkAccess(cb.address(), insnSize, PERM_EXECUTE))
                fault(*chk);
            r.pcc = cb;
            next = cb.address();
            cost.alu(1);
            break;
          }

          case Op::Syscall:
            cost.syscall(0);
            if (sysHook)
                sysHook(*this, static_cast<u64>(i.imm));
            break;
        }
        // Advance PC within (or under mips64, despite) PCC.
        r.pcc = r.pcc.setAddress(next);
        ++_retired;
        res.status = InterpResult::Status::Running;
        res.steps = _retired;
        return res;
    } catch (const IsaFault &f) {
        res.status = InterpResult::Status::Fault;
        res.fault = f.cause;
        res.faultPc = pc;
        res.faultAddr = f.addr;
        res.steps = _retired;
        if (mx) {
            mx->recordFault(f.cause, pc, f.addr,
                            f.hasVia ? &f.via : nullptr, proc.abi());
        }
        return res;
    }
}

void
Interpreter::setMetrics(obs::Metrics *m)
{
    mx = m;
    if (mx) {
        mx->setOpNamer(+[](unsigned op) {
            return opName(static_cast<Op>(op));
        });
    }
}

void
installDefaultSyscallHook(Interpreter &interp, Kernel &kern)
{
    interp.setSyscallHook([&kern](Interpreter &ii, u64 code) {
        kern.dispatch(ii.process(), code);
    });
    if (kern.metrics())
        interp.setMetrics(kern.metrics());
}

InterpResult
Interpreter::run(u64 max_steps)
{
    u64 start = _retired;
    while (_retired - start < max_steps) {
        InterpResult r = step();
        if (r.status != InterpResult::Status::Running)
            return r;
        if (yieldPending) {
            yieldPending = false;
            r.status = InterpResult::Status::Preempted;
            r.steps = _retired;
            return r;
        }
    }
    InterpResult r;
    r.status = InterpResult::Status::StepLimit;
    r.steps = _retired;
    return r;
}

InterpResult
Interpreter::runSlice(u64 budget)
{
    InterpResult r = run(budget);
    // A spent slice budget means "still runnable", not "out of steps":
    // report it as preemption so callers can requeue the context.
    if (r.status == InterpResult::Status::StepLimit)
        r.status = InterpResult::Status::Preempted;
    return r;
}

} // namespace cheri::isa
