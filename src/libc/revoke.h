/**
 * @file
 * Temporal-safety prototype: quarantine + capability revocation.
 *
 * The paper's future work (section 6) observes that CHERI provides the
 * minimum infrastructure for temporally safe reuse — atomic pointer
 * updates and precise identification of pointers — and that work on a
 * CHERI-aware temporally-safe allocator was ongoing (what later became
 * CHERIvoke/Cornucopia).  This prototype implements that design:
 *
 *  - free() does not reuse memory; it moves the allocation into a
 *    quarantine;
 *  - when quarantined bytes exceed a budget, a *revocation sweep*
 *    scans every tagged granule in the address space — resident pages,
 *    swapped-out pages (via the swap tag metadata), and the thread's
 *    capability registers — and clears the tag of every capability
 *    whose base points into quarantined memory;
 *  - only after the sweep is quarantined memory handed back for reuse,
 *    so no stale capability to it can exist.
 *
 * The sweep interface lives on the kernel (Kernel::sysRevoke), exactly
 * the "new interface" the paper says is required because user pointers
 * may be held in kernel structures for extended durations — the sweep
 * covers the kevent udata store for the same reason.
 */

#ifndef CHERI_LIBC_REVOKE_H
#define CHERI_LIBC_REVOKE_H

#include <vector>

#include "libc/malloc.h"

namespace cheri
{

class RevokingMalloc
{
  public:
    /**
     * @param quarantine_budget bytes of quarantined memory tolerated
     *        before a sweep is forced
     */
    RevokingMalloc(GuestContext &ctx, u64 quarantine_budget = 64 * 1024);

    /** Allocate (same bounded-capability policy as GuestMalloc). */
    GuestPtr malloc(u64 size);

    /**
     * Quarantine the allocation.  The storage is not reusable — and
     * the caller's capability not dead — until the next sweep.
     */
    bool free(const GuestPtr &p);

    /** Run a revocation sweep now; returns tags cleared. */
    u64 forceSweep();

    /** @name Statistics */
    /// @{
    u64 sweeps() const { return _sweeps; }
    u64 tagsRevoked() const { return _tagsRevoked; }
    u64 quarantinedBytes() const { return quarantineBytes; }
    u64 liveAllocations() const { return heap.liveAllocations(); }
    /// @}

  private:
    struct Range
    {
        u64 base;
        u64 size;
    };

    GuestContext &ctx;
    GuestMalloc heap;
    u64 budget;
    std::vector<Range> quarantine;
    u64 quarantineBytes = 0;
    u64 _sweeps = 0;
    u64 _tagsRevoked = 0;
};

} // namespace cheri

#endif // CHERI_LIBC_REVOKE_H
