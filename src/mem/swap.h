/**
 * @file
 * Swap device with tag-preserving metadata.
 *
 * External storage does not carry tag bits, so naively paging a frame
 * out and back in would destroy every capability on it — silently
 * breaking pointers in swapped processes.  CheriBSD's swap pager instead
 * scans evicted pages, records which granules were tagged (together with
 * the capability pattern), and on swap-in *rederives* fresh architectural
 * capabilities from an appropriate root.  The architectural provenance
 * chain is broken, but the abstract capability is preserved (paper
 * section 3, "Swapping").
 *
 * SwapPolicy::Naive models the broken alternative and is used by tests
 * and the ablation bench to show why the metadata is necessary.
 */

#ifndef CHERI_MEM_SWAP_H
#define CHERI_MEM_SWAP_H

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cap/capability.h"
#include "mem/fault_inject.h"
#include "mem/phys_mem.h"

namespace cheri
{

namespace snap
{
struct Access;
}

/** How the swap subsystem treats capability tags. */
enum class SwapPolicy
{
    /** Record tag metadata at swap-out; rederive at swap-in (CheriBSD). */
    PreserveTags,
    /** Store raw bytes only; all tags are lost (the failure mode). */
    Naive,
};

/**
 * A paging store: raw page images plus, under PreserveTags, the tagged
 * granules of each page saved as untagged capability patterns.
 */
class SwapDevice
{
  public:
    explicit SwapDevice(SwapPolicy policy = SwapPolicy::PreserveTags)
        : _policy(policy)
    {
    }

    SwapPolicy policy() const { return _policy; }

    /** swapOut's failure value: no slot was written. */
    static constexpr u64 invalidSlot = ~u64{0};

    /**
     * Write @p frame out, returning the slot id — or invalidSlot when
     * the device is full (slot budget) or the injector fires.  Tags
     * never reach the device's data area; under PreserveTags they are
     * captured in the slot's metadata instead.
     */
    u64 swapOut(const Frame &frame);

    /**
     * Read slot @p slot back into @p frame.  Raw bytes are restored
     * as-is (untagged).  Under PreserveTags, each recorded granule is
     * rederived from @p root via CBuildCap; granules whose pattern the
     * root cannot legitimately cover stay untagged (rederivation must
     * never escalate).  On success one reference is dropped — the slot
     * is released only when no other space still holds it (fork) — and
     * true is returned; an injected failure leaves the slot (and
     * @p frame's prior contents) untouched so the access can be
     * retried.  An unknown slot is a failure, never a host abort.
     *
     * @p fault (nullable) receives the precise cause on failure:
     * CapFault::MachineCheck when the TagBitFlip injector corrupted
     * the slot's tag metadata (the corrupted entry is dropped, so the
     * retry succeeds with that granule untagged), SwapInFailure for
     * every other refusal.
     */
    bool swapIn(u64 slot, Frame &frame, const Capability &root,
                CapFault *fault = nullptr);

    /**
     * Drop one reference to @p slot without reading it back — the page
     * it held was unmapped or its owner exited.  The slot is released
     * when the last reference goes.  Idempotent for unknown slots.
     */
    void discard(u64 slot);

    /**
     * Add a reference to @p slot: fork shares swapped-out pages the
     * same way COW shares frames, so each space's later swap-in (or
     * discard) resolves independently.  No-op for unknown slots.
     */
    void retain(u64 slot);

    /** Max occupied slots; 0 = unlimited. */
    void setSlotBudget(u64 n) { budget = n; }
    u64 slotBudget() const { return budget; }

    /** Nullable; checked on every swap-out and swap-in. */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }

    /** Notified of injected corruption of swapped tag metadata as
     *  (point, slot id); mirrors PhysMem::setCorruptionHook. */
    void setCorruptionHook(std::function<void(FaultPoint, u64)> hook)
    {
        corruption = std::move(hook);
    }

    /**
     * Revocation support: drop recorded tag metadata in @p slot for
     * patterns whose base lies in [lo, hi), so the capability is not
     * rederived at swap-in.  Returns entries dropped.
     */
    u64 revokeMatchingInSlot(
        u64 slot, const std::function<bool(const Capability &)> &pred);

    /**
     * Epoch-sweep variant of revokeMatchingInSlot: the sweep must read
     * the slot's metadata back from the device, so this reports a
     * SweepScan event to the injector and can fail like any device
     * read.  On success stores entries dropped in @p revoked and the
     * tag-metadata entries left in @p remaining (both nullable) and
     * returns true; on an injected failure the slot is untouched and
     * the scan can be retried.  An unknown slot scans as empty.
     */
    bool sweepSlot(u64 slot,
                   const std::function<bool(const Capability &)> &pred,
                   u64 *revoked, u64 *remaining);

    /** Tagged granules recorded in @p slot (0 for unknown slots). */
    u64
    slotTagCount(u64 slot) const
    {
        auto it = slots.find(slot);
        return it == slots.end() ? 0 : it->second.tagMeta.size();
    }

    /** Visit @p slot's tag metadata as (granule offset, pattern) — the
     *  oracle audits swapped pages without paging them in. */
    void
    forEachTaggedInSlot(
        u64 slot,
        const std::function<void(u64, const Capability &)> &fn) const
    {
        auto it = slots.find(slot);
        if (it == slots.end())
            return;
        for (const auto &[off, pattern] : it->second.tagMeta)
            fn(off, pattern);
    }

    /** Sweep-scan reads refused (injection). */
    u64 failedSweepScans() const { return sweepScanFailures; }

    /** Slots currently occupied. */
    u64 usedSlots() const { return slots.size(); }

    /** @name Checking-layer introspection (src/check)
     * Read-only views of the slot table so the invariant oracle can
     * compare device refcounts against the page-table ground truth
     * (each slot's refs must equal the number of PTEs naming it).
     */
    /// @{
    /** Reference count of @p slot; 0 when the slot is unoccupied. */
    u64
    slotRefs(u64 slot) const
    {
        auto it = slots.find(slot);
        return it == slots.end() ? 0 : it->second.refs;
    }

    /** Visit every occupied slot as (slot id, refcount). */
    void
    forEachSlot(const std::function<void(u64, u64)> &fn) const
    {
        for (const auto &[id, s] : slots)
            fn(id, s.refs);
    }
    /// @}

    /** Total swap-out operations performed. */
    u64 totalSwapOuts() const { return swapOuts; }

    /** Tagged granules recorded across all swap-outs so far. */
    u64 totalTagsPreserved() const { return tagsPreserved; }

    /** Swap-outs refused (budget or injection). */
    u64 failedSwapOuts() const { return swapOutFailures; }

    /** Swap-ins refused (injection). */
    u64 failedSwapIns() const { return swapInFailures; }

    /** Slots released unread via discard(). */
    u64 totalDiscards() const { return discards; }

    /** Zero the operation counters (kernel panic reset re-mirrors an
     *  empty kernel); occupied slots are untouched. */
    void
    resetAccounting()
    {
        swapOuts = 0;
        tagsPreserved = 0;
        swapOutFailures = 0;
        swapInFailures = 0;
        sweepScanFailures = 0;
        discards = 0;
    }

  private:
    /** Checkpoint/restore serializes the slot table bit-exactly. */
    friend struct snap::Access;

    struct Slot
    {
        std::array<u8, pageSize> bytes;
        /** (granule offset, untagged capability pattern) pairs. */
        std::vector<std::pair<u64, Capability>> tagMeta;
        /** Spaces referencing this slot (> 1 after fork). */
        u64 refs = 1;
    };

    SwapPolicy _policy;
    std::unordered_map<u64, Slot> slots;
    u64 nextSlot = 0;
    u64 swapOuts = 0;
    u64 tagsPreserved = 0;
    u64 budget = 0;
    u64 swapOutFailures = 0;
    u64 swapInFailures = 0;
    u64 sweepScanFailures = 0;
    u64 discards = 0;
    FaultInjector *injector = nullptr;
    std::function<void(FaultPoint, u64)> corruption;
};

} // namespace cheri

#endif // CHERI_MEM_SWAP_H
