/**
 * @file
 * Deterministic fault injection for the memory-pressure choke points.
 *
 * Resource-exhaustion paths (allocation failure, swap-device errors)
 * are the rarest-driven code in a VM system and historically where
 * capability invariants break.  The injector lets tests and benches
 * force every one of them on demand, deterministically: each choke
 * point reports its events through shouldFail(), and an armed point
 * fires either on the Nth upcoming event (trigger-on-Nth) or on a
 * seeded pseudo-random schedule that replays identically for the same
 * seed.  No wall-clock or host randomness is ever consulted.
 */

#ifndef CHERI_MEM_FAULT_INJECT_H
#define CHERI_MEM_FAULT_INJECT_H

#include <array>
#include <functional>

#include "cap/types.h"

namespace cheri
{

namespace snap
{
struct Access;
}

/** The choke points the injector can fail. */
enum class FaultPoint : unsigned
{
    /** PhysMem::allocFrame / canAlloc. */
    FrameAlloc = 0,
    /** SwapDevice::swapOut. */
    SwapOut,
    /** SwapDevice::swapIn. */
    SwapIn,
    /** SwapDevice::sweepSlot — the revocation sweep's read of a
     *  swapped page's tag metadata (a device I/O like any other). */
    SweepScan,
    /** Memory corruption: flip (clear) the tag bit of a tagged granule
     *  at a capability load, or of a swapped page's tag metadata.
     *  Detection raises CapFault::MachineCheck, never a host abort. */
    TagBitFlip,
    /** Memory corruption: corrupt data bytes under a plain load; the
     *  detection path raises a machine check like TagBitFlip. */
    DataBitFlip,
    /** Deadlock-watchdog victim kill: not a failure the injector arms
     *  itself, but a kernel decision routed through confirm() so the
     *  replay tap records it and substitutes it bit-for-bit. */
    DeadlockKill,
};

constexpr unsigned numFaultPoints = 7;

/**
 * Observer of (and authority over) every injection decision.  The
 * record/replay layer installs one: in record mode it logs each
 * decision and passes it through; in replay mode it substitutes the
 * logged decision, making fault injection a replayed input rather than
 * recomputed state.
 */
class FaultTap
{
  public:
    virtual ~FaultTap() = default;
    /** Called once per shouldFail(); the return value is the decision
     *  the choke point actually sees. */
    virtual bool onFault(FaultPoint point, bool decision) = 0;
};

class FaultInjector
{
  public:
    /** Fail the @p nth upcoming event at @p point (1 = the very next),
     *  then disarm.  @p nth of 0 disarms. */
    void failAfter(FaultPoint point, u64 nth);

    /**
     * Fail roughly one event in @p period at @p point, on a schedule
     * derived only from @p seed — two injectors armed with the same
     * (period, seed) fire on exactly the same event numbers.  Stays
     * armed until disarmed.
     */
    void failRandomly(FaultPoint point, u64 period, u64 seed);

    void disarm(FaultPoint point);
    void disarmAll();

    /**
     * Report one event at @p point; returns true when the injector
     * decides this event fails.  Called by the choke points themselves;
     * counts events even while disarmed so Nth-event arming composes
     * with prior traffic predictably.
     */
    bool shouldFail(FaultPoint point);

    /**
     * Report a decision the KERNEL already made at @p point (e.g. the
     * deadlock watchdog choosing to kill a victim) so it flows through
     * the same record/replay tap as injected failures.  The tap's
     * answer is authoritative, exactly as in shouldFail(): record logs
     * @p decision and passes it through; replay substitutes the logged
     * decision, making the kernel's choice a replayed input.
     */
    bool confirm(FaultPoint point, bool decision);

    /** Install (or clear, with nullptr) the record/replay tap. */
    void setTap(FaultTap *t) { tap = t; }

    /**
     * Observational hook called with every final decision (after tap
     * substitution); the kernel's flight recorder uses it.  Unlike the
     * tap it has no authority over the decision.
     */
    void setObserver(std::function<void(FaultPoint, bool)> fn)
    {
        observer = std::move(fn);
    }

    /** Disarm every point and zero the seen/fired counters (panic
     *  reset: the rebuilt kernel starts from injector state zero). */
    void resetArms();

    /** Events seen at @p point since construction/reset. */
    u64 events(FaultPoint point) const;

    /** Failures injected at @p point. */
    u64 injected(FaultPoint point) const;

    /** Failures injected across all points. */
    u64 totalInjected() const;

  private:
    /** Checkpoint/restore serializes the per-point arm state. */
    friend struct snap::Access;

    enum class Mode
    {
        Off,
        Nth,
        Random,
    };

    struct Arm
    {
        Mode mode = Mode::Off;
        /** Nth mode: events remaining before the one that fails. */
        u64 countdown = 0;
        /** Random mode: average events per failure. */
        u64 period = 0;
        /** Random mode: LCG state, advanced once per event. */
        u64 lcg = 0;
        u64 seen = 0;
        u64 fired = 0;
    };

    static unsigned index(FaultPoint p) { return static_cast<unsigned>(p); }

    std::array<Arm, numFaultPoints> arms{};
    FaultTap *tap = nullptr;
    std::function<void(FaultPoint, bool)> observer;
};

} // namespace cheri

#endif // CHERI_MEM_FAULT_INJECT_H
