file(REMOVE_RECURSE
  "CMakeFiles/cheri_apps.dir/apps/minidb.cc.o"
  "CMakeFiles/cheri_apps.dir/apps/minidb.cc.o.d"
  "CMakeFiles/cheri_apps.dir/apps/sslserver.cc.o"
  "CMakeFiles/cheri_apps.dir/apps/sslserver.cc.o.d"
  "CMakeFiles/cheri_apps.dir/apps/testsuite.cc.o"
  "CMakeFiles/cheri_apps.dir/apps/testsuite.cc.o.d"
  "CMakeFiles/cheri_apps.dir/apps/workloads.cc.o"
  "CMakeFiles/cheri_apps.dir/apps/workloads.cc.o.d"
  "libcheri_apps.a"
  "libcheri_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
