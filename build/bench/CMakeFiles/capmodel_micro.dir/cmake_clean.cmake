file(REMOVE_RECURSE
  "CMakeFiles/capmodel_micro.dir/capmodel_micro.cc.o"
  "CMakeFiles/capmodel_micro.dir/capmodel_micro.cc.o.d"
  "capmodel_micro"
  "capmodel_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmodel_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
