/**
 * @file
 * Tagged physical memory.
 *
 * CHERI adds one out-of-band tag bit per capability-sized, capability-
 * aligned granule of physical memory, distinguishing valid capabilities
 * from plain data.  Data writes to a granule clear its tag; only the
 * dedicated capability store can set it.  This file models physical
 * frames carrying those tags, plus the frame allocator.
 *
 * Modeling note: real hardware recovers a capability's bounds from its
 * 128-bit compressed pattern.  Our 16-byte pattern keeps only the cursor
 * architecturally visible; the full decoded capability for each *tagged*
 * granule is kept in a per-frame side structure.  This is observationally
 * equivalent: untagged patterns never decode to dereferenceable
 * capabilities, any byte store invalidates the granule's tag, and tagged
 * loads return exactly the capability that was stored.
 */

#ifndef CHERI_MEM_PHYS_MEM_H
#define CHERI_MEM_PHYS_MEM_H

#include <array>
#include <bitset>
#include <cstring>
#include <functional>
#include <memory>

#include "cap/capability.h"
#include "cap/types.h"
#include "mem/fault_inject.h"

namespace cheri
{

namespace snap
{
struct Access;
}

/** Page size used throughout the system. */
constexpr u64 pageSize = 4096;
constexpr u64 pageMask = pageSize - 1;

/** Capability granules per page. */
constexpr u64 granulesPerPage = pageSize / capSize;

/** Round @p v down / up to a page boundary. */
constexpr u64 pageTrunc(u64 v) { return v & ~pageMask; }
constexpr u64 pageRound(u64 v) { return (v + pageMask) & ~pageMask; }

/**
 * One physical page: 4 KiB of data, one tag bit per 16-byte granule, and
 * the decoded capability for each tagged granule.
 */
class Frame
{
  public:
    Frame() { data.fill(0); }

    /** Copy @p other including tags (used for COW and fork). */
    void copyFrom(const Frame &other);

    /** Read bytes; never affects tags. */
    void read(u64 off, void *buf, u64 len) const;

    /** Write bytes, clearing the tag of every granule touched. */
    void write(u64 off, const void *buf, u64 len);

    /** Zero the page and clear all tags. */
    void clear();

    /**
     * Load the capability at granule-aligned @p off.  Tagged granules
     * return the stored capability; untagged ones decode the raw bytes
     * into an untagged (data-only) capability.
     */
    Capability readCap(u64 off) const;

    /** Store a capability at granule-aligned @p off, setting the tag iff
     *  the capability is tagged. */
    void writeCap(u64 off, const Capability &cap);

    /** Tag bit of the granule containing @p off. */
    bool tagAt(u64 off) const { return tags.test(off / capSize); }

    /** Clear the tag of the granule containing @p off. */
    void clearTagAt(u64 off) { tags.reset(off / capSize); }

    /** Number of tagged granules in the page. */
    u64 taggedCount() const { return tags.count(); }

    /** Raw data access for swap and checkpointing. */
    const std::array<u8, pageSize> &bytes() const { return data; }

    /** Visit every tagged granule as (offset, capability). */
    template <typename Fn>
    void
    forEachTagged(Fn &&fn) const
    {
        for (u64 g = 0; g < granulesPerPage; ++g) {
            if (tags.test(g))
                fn(g * capSize, caps[g]);
        }
    }

  private:
    std::array<u8, pageSize> data;
    std::bitset<granulesPerPage> tags;
    std::array<Capability, granulesPerPage> caps;
};

using FrameRef = std::shared_ptr<Frame>;

/**
 * Frame allocator with simple accounting.  Frames are reference counted:
 * copy-on-write and shared mappings alias the same Frame until a write
 * forces a copy.
 *
 * With a capacity configured, the allocator enforces it: an allocation
 * that would exceed the budget first runs the reclaim hook (the kernel's
 * eviction pass) and then fails by returning nullptr — callers must turn
 * that into a guest-visible error, never a host abort.
 */
class PhysMem
{
  public:
    /**
     * Asked to make room for @p wanted frames on behalf of
     * @p requester (the AddressSpace whose fault is being serviced, or
     * nullptr); returns frames actually freed.  The hook may evict from
     * the requester itself — pages pinned by an in-flight fault are
     * never evictable — but must not destroy it.
     */
    using ReclaimHook = std::function<u64(u64 wanted, const void *requester)>;

    /**
     * Allocate a zeroed frame, or nullptr when the injector fires or
     * the capacity is exhausted even after reclaim.  @p requester
     * identifies the address space being serviced so the reclaim hook
     * can exempt it from destructive measures (OOM kill).
     */
    FrameRef allocFrame(const void *requester = nullptr);

    /**
     * Admission probe for syscalls: true when @p n frames could be
     * allocated right now, running reclaim if needed.  Consumes one
     * FrameAlloc injector event, so injected exhaustion surfaces here
     * exactly like at a real allocation.
     */
    bool canAlloc(u64 n, const void *requester = nullptr);

    /** Max live frames; 0 = unlimited. */
    void setCapacity(u64 frames) { capacity = frames; }
    u64 frameCapacity() const { return capacity; }

    void setReclaimHook(ReclaimHook hook) { reclaim = std::move(hook); }
    /** Nullable; checked on every allocation. */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }
    FaultInjector *faultInjector() const { return injector; }

    /** Notified of every injected corruption event as
     *  (point, guest VA); the kernel counts machine checks and feeds
     *  the flight recorder through it. */
    using CorruptionHook = std::function<void(FaultPoint, u64 va)>;
    void setCorruptionHook(CorruptionHook hook)
    {
        corruption = std::move(hook);
    }

    /**
     * Consult the TagBitFlip arm for a capability load of a *tagged*
     * granule at @p off in @p frame (guest address @p va).  When the
     * injector fires, the granule's tag is cleared — the modeled bit
     * flip — the hook is notified, and the caller must raise
     * CapFault::MachineCheck instead of returning a capability.  The
     * corrupted granule can never surface as a forged capability: its
     * tag is gone before any load completes.
     *
     * The injector-null fast path is inline so uninstrumented builds
     * pay one predictable branch on the access hot path.
     */
    bool
    injectCapLoadCorruption(Frame &frame, u64 off, u64 va)
    {
        return injector && corruptCapLoad(frame, off, va);
    }

    /** DataBitFlip arm for a plain data load at @p va.  Fires at most
     *  once per access; data bytes are left intact (detection is
     *  modeled as ECC catching the flip), the access machine-checks. */
    bool
    injectDataLoadCorruption(u64 va)
    {
        return injector && corruptDataLoad(va);
    }

    /** Frames currently live (allocated and not yet destroyed). */
    u64 liveFrames() const;

    /** Total allocations over the lifetime of the system. */
    u64 totalAllocated() const { return allocated; }

    /** Allocations refused (capacity or injection). */
    u64 failedAllocs() const { return failed; }

    /** Times the reclaim hook was invoked. */
    u64 reclaimRequests() const { return reclaims; }

    /** Zero the lifetime counters (panic reset: the rebuilt-empty
     *  kernel restarts accounting from scratch).  Capacity and hook
     *  wiring survive; live frames are owned by their references. */
    void resetAccounting()
    {
        allocated = 0;
        failed = 0;
        reclaims = 0;
    }

  private:
    /** Checkpoint/restore mints frames against the live counter without
     *  consulting capacity or the injector. */
    friend struct snap::Access;

    /** Run reclaim if needed so @p n more frames fit; true on success. */
    bool makeRoom(u64 n, const void *requester);

    /** Out-of-line halves of the corruption probes (injector != null). */
    bool corruptCapLoad(Frame &frame, u64 off, u64 va);
    bool corruptDataLoad(u64 va);

    u64 allocated = 0;
    std::shared_ptr<u64> live = std::make_shared<u64>(0);
    u64 capacity = 0;
    u64 failed = 0;
    u64 reclaims = 0;
    ReclaimHook reclaim;
    FaultInjector *injector = nullptr;
    CorruptionHook corruption;
};

} // namespace cheri

#endif // CHERI_MEM_PHYS_MEM_H
