#include "mem/phys_mem.h"

#include "os/panic.h"

namespace cheri
{

void
Frame::copyFrom(const Frame &other)
{
    data = other.data;
    tags = other.tags;
    caps = other.caps;
}

void
Frame::read(u64 off, void *buf, u64 len) const
{
    CHERI_KASSERT(off + len <= pageSize, "frame read within page");
    std::memcpy(buf, data.data() + off, len);
}

void
Frame::write(u64 off, const void *buf, u64 len)
{
    CHERI_KASSERT(off + len <= pageSize, "frame write within page");
    std::memcpy(data.data() + off, buf, len);
    // A data store invalidates every capability granule it overlaps.
    u64 first = off / capSize;
    u64 last = (off + len - 1) / capSize;
    for (u64 g = first; g <= last; ++g)
        tags.reset(g);
}

void
Frame::clear()
{
    data.fill(0);
    tags.reset();
}

Capability
Frame::readCap(u64 off) const
{
    CHERI_KASSERT(off % capSize == 0 && off + capSize <= pageSize,
                  "cap load granule-aligned and in page");
    u64 g = off / capSize;
    if (tags.test(g))
        return caps[g];
    std::array<u8, capSize> raw;
    std::memcpy(raw.data(), data.data() + off, capSize);
    return Capability::fromBytes(raw);
}

void
Frame::writeCap(u64 off, const Capability &cap)
{
    CHERI_KASSERT(off % capSize == 0 && off + capSize <= pageSize,
                  "cap store granule-aligned and in page");
    u64 g = off / capSize;
    auto raw = cap.toBytes();
    std::memcpy(data.data() + off, raw.data(), capSize);
    tags.set(g, cap.tag());
    caps[g] = cap;
}

bool
PhysMem::makeRoom(u64 n, const void *requester)
{
    if (capacity == 0 || *live + n <= capacity)
        return true;
    if (reclaim) {
        ++reclaims;
        reclaim(*live + n - capacity, requester);
    }
    return *live + n <= capacity;
}

FrameRef
PhysMem::allocFrame(const void *requester)
{
    if (injector && injector->shouldFail(FaultPoint::FrameAlloc)) {
        ++failed;
        return nullptr;
    }
    if (!makeRoom(1, requester)) {
        ++failed;
        return nullptr;
    }
    ++allocated;
    auto counter = live;
    ++*counter;
    return FrameRef(new Frame(), [counter](Frame *f) {
        --*counter;
        delete f;
    });
}

bool
PhysMem::canAlloc(u64 n, const void *requester)
{
    if (injector && injector->shouldFail(FaultPoint::FrameAlloc)) {
        ++failed;
        return false;
    }
    if (!makeRoom(n, requester)) {
        ++failed;
        return false;
    }
    return true;
}

u64
PhysMem::liveFrames() const
{
    return *live;
}

bool
PhysMem::corruptCapLoad(Frame &frame, u64 off, u64 va)
{
    if (!injector->shouldFail(FaultPoint::TagBitFlip))
        return false;
    // The modeled bit flip: the granule's tag is gone before the load
    // completes, so the corrupted pattern can never decode back into a
    // dereferenceable capability.
    frame.clearTagAt(off);
    if (corruption)
        corruption(FaultPoint::TagBitFlip, va);
    return true;
}

bool
PhysMem::corruptDataLoad(u64 va)
{
    if (!injector->shouldFail(FaultPoint::DataBitFlip))
        return false;
    if (corruption)
        corruption(FaultPoint::DataBitFlip, va);
    return true;
}

} // namespace cheri
