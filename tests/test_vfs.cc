/**
 * @file
 * Direct VFS tests: path resolution, directory operations, regular
 * file I/O semantics, pipe capacity and EOF, and pty duplexing.
 */

#include <gtest/gtest.h>

#include "os/vfs.h"

namespace cheri
{
namespace
{

class VfsTest : public ::testing::Test
{
  protected:
    Vfs fs;
};

TEST_F(VfsTest, RootExists)
{
    VNodeRef root = fs.lookup("/");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->kind, NodeKind::Directory);
}

TEST_F(VfsTest, CreateFileMakesParents)
{
    VNodeRef f = fs.createFile("/a/b/c/file.txt");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->kind, NodeKind::Regular);
    VNodeRef dir = fs.lookup("/a/b/c");
    ASSERT_NE(dir, nullptr);
    EXPECT_EQ(dir->kind, NodeKind::Directory);
    EXPECT_EQ(fs.lookup("/a/b/c/file.txt"), f);
}

TEST_F(VfsTest, CreateFileIsIdempotent)
{
    VNodeRef a = fs.createFile("/x/y");
    VNodeRef b = fs.createFile("/x/y");
    EXPECT_EQ(a, b);
}

TEST_F(VfsTest, CreateFileOverDirectoryFails)
{
    ASSERT_NE(fs.mkdir("/d"), nullptr);
    EXPECT_EQ(fs.createFile("/d"), nullptr);
}

TEST_F(VfsTest, LookupThroughFileFails)
{
    fs.createFile("/plain");
    EXPECT_EQ(fs.lookup("/plain/child"), nullptr);
    EXPECT_EQ(fs.createFile("/plain/child"), nullptr);
}

TEST_F(VfsTest, UnlinkSemantics)
{
    fs.createFile("/doomed");
    EXPECT_EQ(fs.unlink("/doomed"), E_OK);
    EXPECT_EQ(fs.lookup("/doomed"), nullptr);
    EXPECT_EQ(fs.unlink("/doomed"), E_NOENT);
    fs.mkdir("/dir");
    EXPECT_EQ(fs.unlink("/dir"), E_ISDIR);
}

TEST_F(VfsTest, ReaddirListsChildrenSorted)
{
    fs.createFile("/home/b");
    fs.createFile("/home/a");
    fs.mkdir("/home/z");
    auto names = fs.readdir("/home");
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
    EXPECT_EQ(names[2], "z");
    EXPECT_TRUE(fs.readdir("/nonexistent").empty());
}

TEST_F(VfsTest, RegularReadWriteOffsets)
{
    VNodeRef f = fs.createFile("/data");
    OpenFile of;
    of.node = f;
    of.flags = O_RDWR;
    const char msg[] = "0123456789";
    EXPECT_EQ(Vfs::write(of, msg, 10), 10);
    EXPECT_EQ(of.offset, 10u);
    of.offset = 4;
    char buf[4] = {};
    EXPECT_EQ(Vfs::read(of, buf, 4), 4);
    EXPECT_EQ(std::string(buf, 4), "4567");
    // EOF.
    of.offset = 10;
    EXPECT_EQ(Vfs::read(of, buf, 4), 0);
}

TEST_F(VfsTest, AppendModeWritesAtEnd)
{
    VNodeRef f = fs.createFile("/log");
    OpenFile a;
    a.node = f;
    a.flags = O_WRONLY | O_APPEND;
    Vfs::write(a, "one", 3);
    a.offset = 0; // append must ignore the offset
    Vfs::write(a, "two", 3);
    EXPECT_EQ(std::string(f->data.begin(), f->data.end()), "onetwo");
}

TEST_F(VfsTest, AccessModeEnforced)
{
    VNodeRef f = fs.createFile("/ro");
    OpenFile rd;
    rd.node = f;
    rd.flags = O_RDONLY;
    char b;
    EXPECT_EQ(Vfs::write(rd, "x", 1), -E_BADF);
    OpenFile wr;
    wr.node = f;
    wr.flags = O_WRONLY;
    EXPECT_EQ(Vfs::read(wr, &b, 1), -E_BADF);
}

TEST_F(VfsTest, PipeFifoOrderAndWouldBlock)
{
    auto [rd, wr] = Vfs::makePipe();
    OpenFile rof, wof;
    rof.node = rd;
    rof.flags = O_RDONLY;
    wof.node = wr;
    wof.flags = O_WRONLY;
    char b;
    EXPECT_EQ(Vfs::read(rof, &b, 1), -E_AGAIN) << "empty pipe would block";
    EXPECT_EQ(Vfs::write(wof, "ab", 2), 2);
    EXPECT_EQ(Vfs::read(rof, &b, 1), 1);
    EXPECT_EQ(b, 'a');
    EXPECT_EQ(Vfs::read(rof, &b, 1), 1);
    EXPECT_EQ(b, 'b');
}

TEST_F(VfsTest, PipeCapacityBounded)
{
    auto [rd, wr] = Vfs::makePipe();
    OpenFile wof;
    wof.node = wr;
    wof.flags = O_WRONLY;
    std::vector<char> chunk(ByteChannel::capacity + 100, 'x');
    s64 n = Vfs::write(wof, chunk.data(), chunk.size());
    EXPECT_EQ(n, static_cast<s64>(ByteChannel::capacity))
        << "writes saturate at the channel capacity";
    EXPECT_FALSE(Vfs::writeReady(wr));
    EXPECT_TRUE(Vfs::readReady(rd, 0));
    (void)rd;
}

TEST_F(VfsTest, PipeEofAfterWriterCloses)
{
    auto [rd, wr] = Vfs::makePipe();
    OpenFile rof;
    rof.node = rd;
    rof.flags = O_RDONLY;
    wr->writeCh->writerClosed = true;
    char b;
    EXPECT_EQ(Vfs::read(rof, &b, 1), 0) << "EOF, not would-block";
    EXPECT_TRUE(Vfs::readReady(rd, 0)) << "EOF counts as readable";
}

TEST_F(VfsTest, PtyIsFullDuplex)
{
    auto [master, slave] = Vfs::makePty();
    OpenFile m, s;
    m.node = master;
    m.flags = O_RDWR;
    s.node = slave;
    s.flags = O_RDWR;
    EXPECT_EQ(Vfs::write(m, "to-slave", 8), 8);
    EXPECT_EQ(Vfs::write(s, "to-master", 9), 9);
    char buf[16] = {};
    EXPECT_EQ(Vfs::read(s, buf, 8), 8);
    EXPECT_EQ(std::string(buf, 8), "to-slave");
    EXPECT_EQ(Vfs::read(m, buf, 9), 9);
    EXPECT_EQ(std::string(buf, 9), "to-master");
}

TEST_F(VfsTest, DirectoryIoRejected)
{
    fs.mkdir("/somedir");
    OpenFile of;
    of.node = fs.lookup("/somedir");
    of.flags = O_RDWR;
    char b;
    EXPECT_EQ(Vfs::read(of, &b, 1), -E_ISDIR);
    EXPECT_EQ(Vfs::write(of, &b, 1), -E_ISDIR);
    EXPECT_FALSE(Vfs::readReady(of.node, 0));
    EXPECT_FALSE(Vfs::writeReady(of.node));
}

} // namespace
} // namespace cheri
