#include "os/vfs.h"

#include <algorithm>
#include <cstring>

namespace cheri
{

std::string_view
errnoName(int err)
{
    switch (err) {
      case E_OK: return "OK";
      case E_PERM: return "E_PERM";
      case E_NOENT: return "E_NOENT";
      case E_SRCH: return "E_SRCH";
      case E_INTR: return "E_INTR";
      case E_BADF: return "E_BADF";
      case E_CHILD: return "E_CHILD";
      case E_DEADLK: return "E_DEADLK";
      case E_NOMEM: return "E_NOMEM";
      case E_ACCES: return "E_ACCES";
      case E_FAULT: return "E_FAULT";
      case E_BUSY: return "E_BUSY";
      case E_EXIST: return "E_EXIST";
      case E_NOTDIR: return "E_NOTDIR";
      case E_ISDIR: return "E_ISDIR";
      case E_INVAL: return "E_INVAL";
      case E_NOTTY: return "E_NOTTY";
      case E_NOSPC: return "E_NOSPC";
      case E_PIPE: return "E_PIPE";
      case E_RANGE: return "E_RANGE";
      case E_AGAIN: return "E_AGAIN";
      case E_NOSYS: return "E_NOSYS";
      case E_PROT: return "E_PROT";
    }
    return "E?";
}

namespace
{

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty())
                parts.push_back(std::move(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        parts.push_back(std::move(cur));
    return parts;
}

} // namespace

Vfs::Vfs() : root(std::make_shared<VNode>())
{
    root->kind = NodeKind::Directory;
    root->name = "/";
}

VNodeRef
Vfs::walk(const std::string &path, bool create_dirs, std::string *leaf) const
{
    auto parts = splitPath(path);
    if (parts.empty()) {
        if (leaf)
            leaf->clear();
        return root;
    }
    VNodeRef cur = root;
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
        auto it = cur->children.find(parts[i]);
        if (it == cur->children.end()) {
            if (!create_dirs)
                return nullptr;
            auto dir = std::make_shared<VNode>();
            dir->kind = NodeKind::Directory;
            dir->name = parts[i];
            cur->children[parts[i]] = dir;
            cur = dir;
        } else {
            cur = it->second;
            if (cur->kind != NodeKind::Directory)
                return nullptr;
        }
    }
    if (leaf)
        *leaf = parts.back();
    return cur;
}

VNodeRef
Vfs::lookup(const std::string &path) const
{
    std::string leaf;
    VNodeRef dir = walk(path, false, &leaf);
    if (!dir)
        return nullptr;
    if (leaf.empty())
        return dir;
    auto it = dir->children.find(leaf);
    return it == dir->children.end() ? nullptr : it->second;
}

VNodeRef
Vfs::createFile(const std::string &path)
{
    std::string leaf;
    VNodeRef dir = walk(path, true, &leaf);
    if (!dir || leaf.empty())
        return nullptr;
    auto it = dir->children.find(leaf);
    if (it != dir->children.end()) {
        if (it->second->kind == NodeKind::Directory)
            return nullptr;
        return it->second;
    }
    auto node = std::make_shared<VNode>();
    node->kind = NodeKind::Regular;
    node->name = leaf;
    dir->children[leaf] = node;
    return node;
}

VNodeRef
Vfs::mkdir(const std::string &path)
{
    std::string leaf;
    VNodeRef dir = walk(path, true, &leaf);
    if (!dir)
        return nullptr;
    if (leaf.empty())
        return dir;
    auto it = dir->children.find(leaf);
    if (it != dir->children.end()) {
        return it->second->kind == NodeKind::Directory ? it->second
                                                       : nullptr;
    }
    auto node = std::make_shared<VNode>();
    node->kind = NodeKind::Directory;
    node->name = leaf;
    dir->children[leaf] = node;
    return node;
}

int
Vfs::unlink(const std::string &path)
{
    std::string leaf;
    VNodeRef dir = walk(path, false, &leaf);
    if (!dir || leaf.empty())
        return E_NOENT;
    auto it = dir->children.find(leaf);
    if (it == dir->children.end())
        return E_NOENT;
    if (it->second->kind == NodeKind::Directory)
        return E_ISDIR;
    dir->children.erase(it);
    return E_OK;
}

std::vector<std::string>
Vfs::readdir(const std::string &path) const
{
    std::vector<std::string> names;
    VNodeRef node = lookup(path);
    if (!node || node->kind != NodeKind::Directory)
        return names;
    for (const auto &[name, child] : node->children)
        names.push_back(name);
    return names;
}

namespace
{

/**
 * Wait-channel id allocator.  Ids are process-lifetime-unique tokens
 * (never 0, never reused) that blocked contexts park on; they carry no
 * cross-run meaning and never appear in guest-visible state, so the
 * file-local counter cannot perturb differential comparisons.
 */
u64 nextWaitId = 1;

std::shared_ptr<ByteChannel>
makeChannel()
{
    auto ch = std::make_shared<ByteChannel>();
    ch->readWait = nextWaitId++;
    ch->writeWait = nextWaitId++;
    return ch;
}

} // namespace

void
Vfs::reserveWaitIds(u64 floor)
{
    if (nextWaitId < floor)
        nextWaitId = floor;
}

std::pair<VNodeRef, VNodeRef>
Vfs::makePipe()
{
    auto ch = makeChannel();
    auto rd = std::make_shared<VNode>();
    rd->kind = NodeKind::Pipe;
    rd->name = "pipe:r";
    rd->readCh = ch;
    auto wr = std::make_shared<VNode>();
    wr->kind = NodeKind::Pipe;
    wr->name = "pipe:w";
    wr->writeCh = ch;
    return {rd, wr};
}

std::pair<VNodeRef, VNodeRef>
Vfs::makePty()
{
    // Two crossed channels: master writes feed slave reads and vice
    // versa.
    auto m2s = makeChannel();
    auto s2m = makeChannel();
    auto master = std::make_shared<VNode>();
    master->kind = NodeKind::PtyMaster;
    master->name = "pty:m";
    master->readCh = s2m;
    master->writeCh = m2s;
    auto slave = std::make_shared<VNode>();
    slave->kind = NodeKind::PtySlave;
    slave->name = "pty:s";
    slave->readCh = m2s;
    slave->writeCh = s2m;
    return {master, slave};
}

bool
Vfs::readReady(const VNodeRef &node, u64 offset)
{
    switch (node->kind) {
      case NodeKind::Regular:
        return offset < node->data.size();
      case NodeKind::Directory:
        return false;
      default:
        return node->readCh &&
               (!node->readCh->buf.empty() || node->readCh->writerClosed);
    }
}

bool
Vfs::writeReady(const VNodeRef &node)
{
    switch (node->kind) {
      case NodeKind::Regular:
        return true;
      case NodeKind::Directory:
        return false;
      default:
        // A broken pipe is "writable": the write completes immediately
        // (with EPIPE), which is what select readiness promises.
        return node->writeCh &&
               (node->writeCh->buf.size() < ByteChannel::capacity ||
                node->writeCh->readerClosed);
    }
}

s64
Vfs::read(OpenFile &of, void *buf, u64 len)
{
    if (!of.readable())
        return -E_BADF;
    VNode &node = *of.node;
    switch (node.kind) {
      case NodeKind::Regular: {
        if (of.offset >= node.data.size())
            return 0;
        u64 n = std::min<u64>(len, node.data.size() - of.offset);
        std::memcpy(buf, node.data.data() + of.offset, n);
        of.offset += n;
        return static_cast<s64>(n);
      }
      case NodeKind::Directory:
        return -E_ISDIR;
      default: {
        ByteChannel &ch = *node.readCh;
        if (ch.buf.empty())
            return ch.writerClosed ? 0 : -E_AGAIN; // would block
        u64 n = std::min<u64>(len, ch.buf.size());
        for (u64 i = 0; i < n; ++i) {
            static_cast<u8 *>(buf)[i] = ch.buf.front();
            ch.buf.pop_front();
        }
        return static_cast<s64>(n);
      }
    }
}

s64
Vfs::write(OpenFile &of, const void *buf, u64 len)
{
    if (!of.writable())
        return -E_BADF;
    VNode &node = *of.node;
    switch (node.kind) {
      case NodeKind::Regular: {
        u64 pos = (of.flags & O_APPEND) ? node.data.size() : of.offset;
        if (pos + len > node.data.size())
            node.data.resize(pos + len);
        std::memcpy(node.data.data() + pos, buf, len);
        of.offset = pos + len;
        return static_cast<s64>(len);
      }
      case NodeKind::Directory:
        return -E_ISDIR;
      default: {
        ByteChannel &ch = *node.writeCh;
        // EPIPE keys on the *reader* side being gone: writing into a
        // buffer nobody can ever drain is the broken-pipe condition.
        if (ch.readerClosed)
            return -E_PIPE;
        if (len == 0)
            return 0;
        u64 space = ByteChannel::capacity - ch.buf.size();
        u64 n = std::min<u64>(len, space);
        // Never report a zero-length "success" for a nonzero write:
        // a full channel is would-block (the caller parks or E_AGAINs).
        if (n == 0)
            return -E_AGAIN;
        const u8 *p = static_cast<const u8 *>(buf);
        ch.buf.insert(ch.buf.end(), p, p + n);
        return static_cast<s64>(n);
      }
    }
}

} // namespace cheri
