file(REMOVE_RECURSE
  "CMakeFiles/initdb_macro.dir/initdb_macro.cc.o"
  "CMakeFiles/initdb_macro.dir/initdb_macro.cc.o.d"
  "initdb_macro"
  "initdb_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initdb_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
