/**
 * @file
 * SELF — the Simulated ELF object format.
 *
 * Guest programs and libraries in this reproduction carry their data
 * segments, symbol tables, and *capability relocations* in this format.
 * Code is host C++ (workload kernels), so the text segment is modeled by
 * size only; what matters for CheriABI is everything the run-time linker
 * does with pointers: initializing global variables that contain
 * pointers (tags are not preserved on disk, so these must be relocated
 * at startup), and filling the capability GOT with per-symbol bounded
 * capabilities (paper section 4, "Dynamic linking").
 */

#ifndef CHERI_RTLD_SELF_FORMAT_H
#define CHERI_RTLD_SELF_FORMAT_H

#include <string>
#include <vector>

#include "cap/types.h"

namespace cheri
{

/** A symbol exported by a SELF object. */
struct SelfSymbol
{
    std::string name;
    /** Offset into the text (functions) or data (objects) segment. */
    u64 offset = 0;
    /** Size of the symbol in bytes. */
    u64 size = 0;
    bool isFunction = false;
};

/** Kinds of dynamic relocation the CHERI RTLD processes. */
enum class RelocKind
{
    /**
     * GOT entry for a global variable: RTLD installs a capability
     * bounded to exactly that variable.
     */
    CapGlobal,
    /**
     * GOT entry for a function: RTLD installs an execute-permission
     * capability bounded to the defining shared object (not the single
     * function — preserving intra-object branches and PC-relative
     * addressing, as the paper describes).
     */
    CapFunction,
    /**
     * An in-data pointer initializer ("__cap_reloc"): a global variable
     * at `offset` must point to `symbol`.  On disk it is just bytes;
     * RTLD re-mints the capability at startup.
     */
    CapInit,
};

struct SelfReloc
{
    RelocKind kind = RelocKind::CapGlobal;
    /** For CapGlobal/CapFunction: index of the GOT slot to fill. */
    u64 gotIndex = 0;
    /** For CapInit: offset in the data segment to patch. */
    u64 dataOffset = 0;
    /** Name of the target symbol. */
    std::string symbol;
};

/** One loadable object: a program or shared library. */
struct SelfObject
{
    std::string name;
    /** Bytes of (simulated) code. */
    u64 textSize = 0x4000;
    /** Initialized read-only data. */
    std::vector<u8> rodata;
    /** Initialized writable data. */
    std::vector<u8> data;
    /** Zero-initialized data appended after `data`. */
    u64 bssSize = 0;
    std::vector<SelfSymbol> symbols;
    std::vector<SelfReloc> relocs;
    /** Names of shared libraries this object requires. */
    std::vector<std::string> needed;

    /** Number of GOT slots this object needs. */
    u64
    gotSlots() const
    {
        u64 n = 0;
        for (const auto &r : relocs) {
            if (r.kind != RelocKind::CapInit)
                n = std::max(n, r.gotIndex + 1);
        }
        return n;
    }

    const SelfSymbol *
    findSymbol(const std::string &sym) const
    {
        for (const auto &s : symbols) {
            if (s.name == sym)
                return &s;
        }
        return nullptr;
    }
};

} // namespace cheri

#endif // CHERI_RTLD_SELF_FORMAT_H
