#!/usr/bin/env bash
# Strict verification pass: configure a scratch build tree with -Werror
# and Address/UndefinedBehavior sanitizers, build everything, and run
# the full test suite.  Exits non-zero on any warning, sanitizer
# report, or test failure.
set -euo pipefail

src_dir="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${CHERI_VERIFY_BUILD_DIR:-$src_dir/build-verify}"

# Raw-assert lint: kernel and memory code must fail through the
# structured panic path (CHERI_KASSERT -> flight-recorder capture +
# snapshot + transactional reset), never through a host abort.  The
# panic sink's own abort() fallback (src/os/panic.h) and compile-time
# static_asserts are the only legitimate exceptions.
if grep -rnE '(^|[^_[:alnum:]])(assert|abort)\(' \
        "$src_dir/src/os" "$src_dir/src/mem" \
        --include='*.cc' --include='*.h' \
    | grep -v 'CHERI_KASSERT' | grep -v 'static_assert' \
    | grep -v 'src/os/panic\.h'; then
    echo "cheri_verify: raw assert()/abort() in src/os or src/mem" \
         "(use CHERI_KASSERT)" >&2
    exit 1
fi

cmake -S "$src_dir" -B "$build_dir" \
    -DCHERI_WERROR=ON -DCHERI_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
# Constrained-memory pass: re-run the pressure and stress suites with
# deliberately small frame/slot budgets so reclaim and OOM paths are
# exercised under the sanitizers too.
CHERI_TEST_FRAME_BUDGET=48 CHERI_TEST_SLOT_BUDGET=128 \
    ctest --test-dir "$build_dir" --output-on-failure \
        -R 'Pressure|Stress' -j "$(nproc)"
# Hardening gates under constrained memory too: the deadlock watchdog
# and panic/machine-check paths must behave identically when reclaim
# and OOM pressure interleave with parked contexts.
CHERI_TEST_FRAME_BUDGET=48 CHERI_TEST_SLOT_BUDGET=128 \
    ctest --test-dir "$build_dir" --output-on-failure \
        -R 'Hardening' -j "$(nproc)"
# Smoke the unified-access-path bench: --check fails unless the TLB
# fast path beats the walk path on sequential access AND the
# constrained-memory phase completes with live frames and used slots
# never exceeding their budgets.
"$build_dir/bench/vm_micro" --json --check
# Tighter-than-default budgets, still feasible: the 4x working set
# needs at least (pages - frames) slots to complete.
"$build_dir/bench/vm_micro" --json --check --frames 48 --slots 160
# Differential ABI fuzzer + invariant oracle (src/check): a fixed-seed
# corpus must show zero mips64/CheriABI divergences and zero oracle
# violations, checked at every syscall boundary — first unconstrained,
# then under small frame/slot budgets so the reclaim and swap paths are
# exercised under the oracle too (abi_fuzz reads the budget env vars).
"$build_dir/tools/abi_fuzz" --seed 1 --cases 50 --check-every 1
CHERI_TEST_FRAME_BUDGET=48 CHERI_TEST_SLOT_BUDGET=128 \
    "$build_dir/tools/abi_fuzz" --seed 1 --cases 50 --check-every 1
# Multi-process scheduler fuzzing: 2-4 preemptively time-sliced guests
# per case running generated programs (sleep/thr_new/thr_switch in the
# mix), the invariant oracle at every slice boundary, and the
# interleaved event streams compared across ABIs.
"$build_dir/tools/abi_fuzz" --seed 1 --cases 50 --multi-proc 3
# Revocation ablation: --check fails unless cap-dirty tracking saves
# >=5x of the granule traffic on a <20%-dirty workload, every
# incremental slice respects the configured page budget, and all three
# strategies revoke exactly the planted capabilities.
"$build_dir/bench/revocation_bench" --json --check
# Scheduler bench: --check fails unless persistent execution contexts
# clear a 3x throughput floor over the old per-chunk interpreter
# re-creation pattern, scaling stays flat, and context-switch overhead
# stays bounded.
"$build_dir/bench/sched_bench" --json --check
# Blocking FD I/O bench: --check fails unless parking a would-block
# pipe reader/writer on its wait channel clears a 2x work-efficiency
# floor (bytes per retired guest step) over the O_NONBLOCK spin-retry
# pattern, the blocking arm actually parks, and the spin arm never
# does.  Run under constrained memory too: parked contexts must not
# pin pages the reclaimer needs.
"$build_dir/bench/pipe_bench" --json --check
CHERI_TEST_FRAME_BUDGET=48 CHERI_TEST_SLOT_BUDGET=128 \
    "$build_dir/bench/pipe_bench" --json --check
# Hardening bench: --check fails unless flight-recorder ring recording
# stays within its dispatch-throughput overhead bound and the deadlock
# watchdog's idle-drain scan over 32 blocked (wakeable) contexts stays
# under 1ms without ever tripping on a host-wakeable park.
"$build_dir/bench/hardening_bench" --json --check
# Replay-determinism gate: record a seeded fuzz run (fault injection +
# multi-process scheduling in the mix) and replay it from the log
# alone; cheri_replay exits non-zero on any quiescent-point
# divergence.  Run once unconstrained and once under the small
# frame/slot budgets so reclaim/OOM timelines replay exactly too.
replay_log="$build_dir/verify-replay.log"
"$build_dir/tools/cheri_replay" record --log "$replay_log" \
    --seed 1 --cases 20 --inject
"$build_dir/tools/cheri_replay" replay --log "$replay_log" --json
"$build_dir/tools/cheri_replay" record --log "$replay_log" \
    --seed 1 --cases 10 --multi-proc 3 --inject
"$build_dir/tools/cheri_replay" replay --log "$replay_log" --json
CHERI_TEST_FRAME_BUDGET=48 CHERI_TEST_SLOT_BUDGET=128 \
    "$build_dir/tools/cheri_replay" record --log "$replay_log" \
        --seed 1 --cases 20 --inject
CHERI_TEST_FRAME_BUDGET=48 CHERI_TEST_SLOT_BUDGET=128 \
    "$build_dir/tools/cheri_replay" replay --log "$replay_log" --json
rm -f "$replay_log"
echo "cheri_verify: all checks passed"
