#include "guest/context.h"

#include "os/sched/sched.h"
#include "os/sys_invoke.h"

namespace cheri
{

namespace
{

/** The libc stub convention: -errno on failure, the value otherwise. */
s64
retOrNegErrno(const SysResult &r)
{
    return r.failed() ? -r.error : static_cast<s64>(r.value);
}

} // namespace

const Capability &
GuestContext::authorityFor(const GuestPtr &p) const
{
    // CheriABI: the pointer *is* the authority.  mips64: the pointer is
    // an integer; the implicit authority is DDC.  Hybrid: annotated
    // (tagged) pointers carry their own authority, unannotated ones
    // fall back to DDC.
    if (isCheri())
        return p.cap;
    if (abi() == Abi::Hybrid && p.cap.tag())
        return p.cap;
    return _proc.ddc();
}

void
GuestContext::read(const GuestPtr &p, void *buf, u64 len)
{
    const Capability &via = authorityFor(p);
    if (CapCheck chk = via.checkAccess(p.addr(), len, PERM_LOAD))
        throw CapTrap(*chk, p.addr(), via, "guest load");
    cost().load(p.addr(), len);
    if (CapCheck fault = _proc.mem().read(p.addr(), buf, len))
        throw CapTrap(*fault, p.addr(), via, "guest load");
}

void
GuestContext::write(const GuestPtr &p, const void *buf, u64 len)
{
    const Capability &via = authorityFor(p);
    if (CapCheck chk = via.checkAccess(p.addr(), len, PERM_STORE))
        throw CapTrap(*chk, p.addr(), via, "guest store");
    cost().store(p.addr(), len);
    if (CapCheck fault = _proc.mem().write(p.addr(), buf, len))
        throw CapTrap(*fault, p.addr(), via, "guest store");
}

GuestPtr
GuestContext::loadPtr(const GuestPtr &p, s64 off)
{
    GuestPtr at = p + off;
    if (isCheri()) {
        const Capability &via = at.cap;
        if (CapCheck chk = via.checkAccess(at.addr(), capSize,
                                           PERM_LOAD | PERM_LOAD_CAP)) {
            throw CapTrap(*chk, at.addr(), via, "pointer load");
        }
        cost().load(at.addr(), capSize);
        Result<Capability> r = _proc.mem().readCap(at.addr());
        if (!r.ok())
            throw CapTrap(r.fault(), at.addr(), via, "pointer load");
        return GuestPtr(r.value());
    }
    u64 addr = load<u64>(at);
    return GuestPtr(Capability::fromAddress(addr));
}

void
GuestContext::storePtr(const GuestPtr &p, s64 off, const GuestPtr &v)
{
    GuestPtr at = p + off;
    if (isCheri()) {
        const Capability &via = at.cap;
        if (CapCheck chk = via.checkAccess(at.addr(), capSize,
                                           PERM_STORE | PERM_STORE_CAP)) {
            throw CapTrap(*chk, at.addr(), via, "pointer store");
        }
        cost().store(at.addr(), capSize);
        if (CapCheck fault = _proc.mem().writeCap(at.addr(), v.cap))
            throw CapTrap(*fault, at.addr(), via, "pointer store");
        return;
    }
    store<u64>(at, 0, v.addr());
}

GuestPtr
GuestContext::mmap(u64 len, u32 prot, u32 flags, GuestPtr hint)
{
    SysInvokeResult r =
        sysInvoke(kern, _proc, SysNum::Mmap,
                  {SysArg::p(toUser(hint)), SysArg::i(len),
                   SysArg::i(prot), SysArg::i(flags)});
    if (r.res.failed())
        return GuestPtr();
    return GuestPtr(r.out.isCap ? r.out.cap
                                : Capability::fromAddress(r.out.addr()));
}

int
GuestContext::munmap(const GuestPtr &p, u64 len)
{
    return sysInvoke(kern, _proc, SysNum::Munmap,
                     {SysArg::p(toUser(p)), SysArg::i(len)})
        .res.error;
}

int
GuestContext::mprotect(const GuestPtr &p, u64 len, u32 prot)
{
    return sysInvoke(kern, _proc, SysNum::Mprotect,
                     {SysArg::p(toUser(p)), SysArg::i(len),
                      SysArg::i(prot)})
        .res.error;
}

GuestPtr
GuestContext::stageString(const std::string &s)
{
    u64 need = s.size() + 1;
    if (scratchSize < need || scratch.isNull()) {
        u64 len = std::max<u64>(pageSize, need);
        scratch = mmap(len);
        scratchSize = len;
    }
    write(scratch, s.c_str(), need);
    return scratch;
}

std::string
GuestContext::readString(const GuestPtr &p, u64 max)
{
    std::string out;
    for (u64 i = 0; i < max; ++i) {
        char c = load<char>(p, static_cast<s64>(i));
        if (c == '\0')
            break;
        out.push_back(c);
    }
    return out;
}

s64
GuestContext::open(const std::string &path, u32 flags)
{
    GuestPtr p = stageString(path);
    return retOrNegErrno(sysInvoke(kern, _proc, SysNum::Open,
                                   {SysArg::p(toUser(p)),
                                    SysArg::i(flags)})
                             .res);
}

s64
GuestContext::read(int fd, const GuestPtr &buf, u64 len)
{
    return retOrNegErrno(
        sysInvoke(kern, _proc, SysNum::Read,
                  {SysArg::i(static_cast<u64>(fd)),
                   SysArg::p(toUser(buf)), SysArg::i(len)})
            .res);
}

s64
GuestContext::write(int fd, const GuestPtr &buf, u64 len)
{
    return retOrNegErrno(
        sysInvoke(kern, _proc, SysNum::Write,
                  {SysArg::i(static_cast<u64>(fd)),
                   SysArg::p(toUser(buf)), SysArg::i(len)})
            .res);
}

int
GuestContext::close(int fd)
{
    return sysInvoke(kern, _proc, SysNum::Close,
                     {SysArg::i(static_cast<u64>(fd))})
        .res.error;
}

s64
GuestContext::lseek(int fd, s64 off, int whence)
{
    return retOrNegErrno(
        sysInvoke(kern, _proc, SysNum::Lseek,
                  {SysArg::i(static_cast<u64>(fd)),
                   SysArg::i(static_cast<u64>(off)),
                   SysArg::i(static_cast<u64>(whence))})
            .res);
}

int
GuestContext::pipe(const GuestPtr &fds, u32 flags)
{
    return sysInvoke(kern, _proc, SysNum::Pipe,
                     {SysArg::p(toUser(fds)), SysArg::i(flags)})
        .res.error;
}

s64
GuestContext::dup(int fd)
{
    return retOrNegErrno(sysInvoke(kern, _proc, SysNum::Dup,
                                   {SysArg::i(static_cast<u64>(fd))})
                             .res);
}

s64
GuestContext::getpid()
{
    return retOrNegErrno(sysInvoke(kern, _proc, SysNum::Getpid).res);
}

int
GuestContext::kill(u64 pid, int sig)
{
    return sysInvoke(kern, _proc, SysNum::Kill,
                     {SysArg::i(pid), SysArg::i(static_cast<u64>(sig))})
        .res.error;
}

s64
GuestContext::getcwd(const GuestPtr &buf, u64 len)
{
    return retOrNegErrno(sysInvoke(kern, _proc, SysNum::Getcwd,
                                   {SysArg::p(toUser(buf)),
                                    SysArg::i(len)})
                             .res);
}

s64
GuestContext::select(int nfds, const GuestPtr &rd, const GuestPtr &wr,
                     const GuestPtr &ex, const GuestPtr &timeout)
{
    return retOrNegErrno(
        sysInvoke(kern, _proc, SysNum::Select,
                  {SysArg::i(static_cast<u64>(nfds)),
                   SysArg::p(toUser(rd)), SysArg::p(toUser(wr)),
                   SysArg::p(toUser(ex)), SysArg::p(toUser(timeout))})
            .res);
}

StackFrame::StackFrame(GuestContext &ctx, u64 frame_bytes,
                       u64 n_bounded_locals, u64 n_args, bool variadic)
    : ctx(ctx), savedStack(ctx.proc().regs().stack())
{
    frame_bytes = (frame_bytes + 15) & ~u64{15};
    u64 sp = savedStack.address() - frame_bytes;
    ctx.proc().regs().stack() = savedStack.setAddress(sp);
    frameBase = sp;
    bumpAddr = sp;
    ctx.cost().call(sp, n_bounded_locals, n_args, variadic);
}

StackFrame::~StackFrame()
{
    ctx.proc().regs().stack() = savedStack;
    ctx.cost().alu(2); // epilogue
}

GuestPtr
StackFrame::alloc(u64 size, u64 align)
{
    // CheriABI pads and aligns so the derived capability is exactly
    // representable and never overlaps a neighbour's granule.
    if (ctx.isCheri()) {
        u64 mask = compress::representableAlignmentMask(size);
        u64 cap_align = ~mask + 1;
        if (cap_align == 0)
            cap_align = 1;
        align = std::max(align, cap_align);
        size = compress::representableLength(size);
    }
    u64 addr = (bumpAddr + align - 1) & ~(align - 1);
    bumpAddr = addr + size;
    const Capability &stack_cap = ctx.proc().regs().stack();
    if (!ctx.isCheri())
        return GuestPtr(Capability::fromAddress(addr));
    // The compiler-emitted CSetBounds for an address-taken local.
    Capability c = stack_cap.setAddress(addr);
    auto b = c.setBounds(size);
    if (!b.ok())
        throw CapTrap(b.fault(), addr, stack_cap, "stack alloc");
    ctx.cost().capManip(2);
    if (TraceSink *tr = ctx.kernel().trace())
        tr->derive(DeriveSource::Stack, b.value());
    return GuestPtr(b.value());
}

int
runGuest(GuestContext &ctx, const std::function<int(GuestContext &)> &fn)
{
    // Host-driven guests execute as hosted contexts on the kernel's
    // scheduler: the body runs to completion in one slice, but shares
    // the execution engine (and its background work — revocation pump,
    // frame reclaim) with any interpreted guests that are runnable.
    Process &proc = ctx.proc();
    int rc = 0;
    sched::Scheduler &s = sched::schedulerFor(ctx.kernel());
    s.runHosted(proc, [&] {
        try {
            rc = fn(ctx);
            ctx.kernel().deliverSignals(proc);
            if (proc.exited()) {
                rc = proc.exitStatus();
                return;
            }
            ctx.kernel().exitProcess(proc, rc);
        } catch (const CapTrap &trap) {
            DeathInfo info;
            info.signal = SIG_PROT;
            info.fault = trap.fault();
            info.faultAddr = trap.addr();
            info.detail = trap.what();
            info.faultCap = trap.via();
            info.faultCapKnown = true;
            ctx.kernel().faultProcess(proc, info);
            rc = proc.exited() ? proc.exitStatus() : 128 + SIG_PROT;
        }
    });
    return rc;
}

} // namespace cheri
