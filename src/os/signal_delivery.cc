/**
 * @file
 * Signal delivery with capability-bearing signal frames (Figure 2).
 *
 * Delivery spills the thread's full capability register state to a
 * frame on the user stack — as tagged capabilities, via the
 * capability-preserving store path — runs the handler, and on return
 * restores register state *from the in-memory frame*.  Tags survive the
 * round trip; conversely, any byte-level tampering with a saved
 * capability unseats its tag and the restored register is dead, exactly
 * as the architecture demands.
 */

#include "os/kernel.h"

#include "obs/metrics.h"

namespace cheri
{

namespace
{

/** Signals whose default action terminates the process. */
bool
defaultTerminates(int sig)
{
    switch (sig) {
      case SIG_CHLD:
      case SIG_STOP:
        return false;
      default:
        return true;
    }
}

/** Frame slots: signo, faultAddr, cause, then pcc, ddc, c[0..31]. */
constexpr u64 numFrameCaps = 2 + numCapRegs;

/** A signal frame that cannot be spilled or restored (the stack page's
 *  swap-in failed, or frame allocation was exhausted) is a guest fault,
 *  never a host abort: record it and kill the process with the precise
 *  cause.  Delivery dies directly rather than re-entering the SIG_PROT
 *  path — a recursive delivery would need the same unwritable stack. */
void
sigFrameFault(obs::Metrics *mx, Process &proc, int sig, u64 va,
              CapFault cause, const char *what)
{
    if (mx) {
        mx->recordFault(cause, proc.regs().pcc.address(), va, nullptr,
                        proc.abi());
    }
    DeathInfo di;
    di.signal = sig ? sig : SIG_PROT;
    di.fault = cause;
    di.faultAddr = va;
    di.detail = what;
    proc.die(di);
}

} // namespace

SysResult
Kernel::sysSigaction(Process &proc, int sig, SigAction act)
{
    chargeSyscall(proc, 1);
    if (sig <= 0 || sig >= numSignals)
        return SysResult::fail(E_INVAL);
    if (sig == SIG_KILL || sig == SIG_STOP)
        return SysResult::fail(E_INVAL);
    proc.sigaction(sig) = act;
    return SysResult::ok();
}

SysResult
Kernel::sysKill(Process &proc, u64 pid, int sig)
{
    chargeSyscall(proc, 0);
    Process *target = findProcess(pid);
    if (!target)
        return SysResult::fail(E_SRCH);
    if (sig <= 0 || sig >= numSignals)
        return SysResult::fail(E_INVAL);
    if (sig == SIG_KILL) {
        DeathInfo killed;
        killed.signal = SIG_KILL;
        killed.detail = "killed";
        target->die(killed);
        return SysResult::ok();
    }
    target->raiseSignal(sig);
    return SysResult::ok();
}

SysResult
Kernel::sysSigprocmask(Process &proc, u64 block, u64 unblock)
{
    chargeSyscall(proc, 0);
    proc.sigMask |= block;
    proc.sigMask &= ~unblock;
    proc.sigMask &= ~(u64{1} << SIG_KILL);
    return SysResult::ok();
}

bool
Kernel::pushSigFrame(Process &proc, SigFrame &frame)
{
    const bool cheri = proc.abi() == Abi::CheriAbi;
    const u64 slot = cheri ? capSize : 8;
    const u64 header = 48; // signo, faultAddr, cause, pad to 16
    const u64 frame_len = header + numFrameCaps * slot +
                          (cheri ? 0 : numCapRegs * 8);
    u64 sp = proc.regs().stack().address();
    u64 va = (sp - frame_len) & ~u64{15};
    frame.frameVa = va;

    u64 hdr[3] = {static_cast<u64>(frame.signo), frame.faultAddr,
                  static_cast<u64>(frame.faultCause)};
    CapCheck err = proc.mem().write(va, hdr, sizeof(hdr));

    auto store_slot = [&](u64 idx, const Capability &cap) -> CapCheck {
        u64 at = va + header + idx * slot;
        if (cheri)
            return proc.mem().writeCap(at, cap);
        u64 a = cap.address();
        return proc.mem().write(at, &a, 8);
    };
    const ThreadRegs &regs = proc.regs();
    if (!err)
        err = store_slot(0, regs.pcc);
    if (!err)
        err = store_slot(1, regs.ddc);
    for (unsigned i = 0; i < numCapRegs && !err; ++i)
        err = store_slot(2 + i, regs.c[i]);
    if (!cheri && !err) {
        u64 xbase = va + header + numFrameCaps * 8;
        err = proc.mem().write(xbase, regs.x.data(), numCapRegs * 8);
    }
    if (err) {
        sigFrameFault(mx, proc, frame.signo, va, *err,
                      "signal frame spill failed");
        return false;
    }
    frame.saved = regs;
    // Cost: trap entry plus spilling the (ABI-width) register file.
    proc.cost().syscall(0);
    proc.cost().copyLoop(0x7f0000000, va, frame_len);

    // Handler runs with the stack below the frame and the return path
    // through the tightly bounded trampoline capability.
    proc.regs().stack() = proc.regs().stack().setAddress(va);
    proc.regs().c[regLink] = proc.trampolineCap;
    return true;
}

bool
Kernel::popSigFrame(Process &proc, const SigFrame &frame)
{
    const bool cheri = proc.abi() == Abi::CheriAbi;
    const u64 slot = cheri ? capSize : 8;
    const u64 header = 48;
    u64 va = frame.frameVa;
    ThreadRegs regs = proc.regs();

    CapFault fail = CapFault::None;
    auto load_slot = [&](u64 idx) -> Capability {
        u64 at = va + header + idx * slot;
        if (cheri) {
            Result<Capability> r = proc.mem().readCap(at);
            if (!r.ok()) {
                if (fail == CapFault::None)
                    fail = r.fault();
                return Capability();
            }
            return r.value();
        }
        u64 a = 0;
        CapCheck chk = proc.mem().read(at, &a, 8);
        if (chk) {
            if (fail == CapFault::None)
                fail = *chk;
            return Capability();
        }
        return Capability::fromAddress(a);
    };
    if (cheri) {
        regs.pcc = load_slot(0);
        regs.ddc = load_slot(1);
    } else {
        // The legacy frame holds only 64-bit register values; PCC and
        // DDC are kernel-managed state the signal path preserves
        // directly (legacy userspace never held capabilities).
        regs.pcc = frame.saved.pcc;
        regs.ddc = frame.saved.ddc;
    }
    for (unsigned i = 0; i < numCapRegs && fail == CapFault::None; ++i)
        regs.c[i] = load_slot(2 + i);
    if (!cheri && fail == CapFault::None) {
        CapCheck chk = proc.mem().read(va + header + numFrameCaps * 8,
                                       regs.x.data(), numCapRegs * 8);
        if (chk)
            fail = *chk;
    }
    if (fail != CapFault::None) {
        // Registers stay untouched: a half-restored file would be
        // unobservable anyway, the process is dead on return.
        sigFrameFault(mx, proc, frame.signo, va, fail,
                      "signal frame restore failed");
        return false;
    }
    proc.regs() = regs;
    proc.cost().copyLoop(va, 0x7f0000000, header + numFrameCaps * slot);
    return true;
}

u64
Kernel::deliverSignals(Process &proc)
{
    u64 delivered = 0;
    u64 live = proc.pendingSignals() & ~proc.sigMask;
    for (int sig = 1; sig < numSignals && !proc.exited(); ++sig) {
        if (!(live & (u64{1} << sig)))
            continue;
        proc.clearPending(sig);
        SigAction &act = proc.sigaction(sig);
        switch (act.kind) {
          case SigAction::Kind::Ignore:
            continue;
          case SigAction::Kind::Default:
            if (defaultTerminates(sig)) {
                DeathInfo death;
                death.signal = sig;
                death.detail = "default action";
                proc.die(death);
            }
            continue;
          case SigAction::Kind::Handler: {
            const SigHandler *fn = proc.handlerById(act.handlerId);
            if (!fn)
                continue;
            SigFrame frame;
            frame.signo = sig;
            if (!pushSigFrame(proc, frame))
                break; // spill faulted; the process is dead
            // The interrupted context now lives in this kernel-side
            // frame; expose it to the revocation sweep for the
            // handler's duration (a handler may run revoke2).
            proc.liveSigFrames.push_back(&frame);
            (*fn)(proc, frame);
            proc.liveSigFrames.pop_back();
            if (!popSigFrame(proc, frame))
                break;
            ++delivered;
            break;
          }
        }
        live = proc.pendingSignals() & ~proc.sigMask;
        sig = 0; // rescan from the start after running a handler
    }
    return delivered;
}

} // namespace cheri
