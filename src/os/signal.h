/**
 * @file
 * Signal numbers, actions, and capability-bearing signal frames.
 *
 * CheriABI signal delivery copies the thread's full capability register
 * state onto the user stack (as tagged capabilities — Figure 2), runs
 * the handler, and restores the possibly-modified state on sigreturn.
 * The return trampoline is a tightly bounded capability to a read-only
 * page mapped by execve (paper section 4, "Signal handling").
 */

#ifndef CHERI_OS_SIGNAL_H
#define CHERI_OS_SIGNAL_H

#include <functional>

#include "machine/regs.h"

namespace cheri
{

/** Signal numbers (FreeBSD values; SIG_PROT is the CHERI fault signal). */
enum Signal : int
{
    SIG_HUP = 1,
    SIG_INT = 2,
    SIG_QUIT = 3,
    SIG_ILL = 4,
    SIG_ABRT = 6,
    SIG_KILL = 9,
    SIG_BUS = 10,
    SIG_SEGV = 11,
    SIG_PIPE = 13,
    SIG_TERM = 15,
    SIG_STOP = 17,
    SIG_CHLD = 20,
    SIG_USR1 = 30,
    SIG_USR2 = 31,
    /** Capability protection violation (CHERI). */
    SIG_PROT = 34,
};

constexpr int numSignals = 35;

class Process;

/**
 * The signal frame as materialized on the user stack: the saved
 * capability register file plus bookkeeping.  Handlers receive a
 * reference and may modify the saved state; sigreturn restores it.
 */
struct SigFrame
{
    ThreadRegs saved;
    int signo = 0;
    /** User virtual address where the frame was spilled. */
    u64 frameVa = 0;
    /** Fault address for SIG_PROT/SIG_SEGV-class signals. */
    u64 faultAddr = 0;
    CapFault faultCause = CapFault::None;
};

/** A registered handler: guest code, hosted as a C++ callable. */
using SigHandler = std::function<void(Process &, SigFrame &)>;

/** Disposition of one signal. */
struct SigAction
{
    enum class Kind
    {
        Default,
        Ignore,
        Handler,
    };
    Kind kind = Kind::Default;
    /** Index into the process handler table when kind == Handler. */
    u64 handlerId = 0;
};

} // namespace cheri

#endif // CHERI_OS_SIGNAL_H
