/**
 * @file
 * Pipe bench: what blocking FD I/O buys over spin-retry.
 *
 * A producer guest pushes 256 KiB through a 64 KiB pipe to a consumer
 * guest, both time-sliced by the kernel scheduler.  The transfer is
 * 4x the channel capacity, so neither side can run free: the producer
 * must repeatedly wait for the consumer to drain, and the consumer
 * must repeatedly wait for bytes — the cross-process hand-off pattern.
 *
 * Two arms run the *identical* guest programs; only the descriptor
 * flags differ:
 *
 *  - blocking (the PR 8 semantics): a would-block read/write parks
 *    the context on the channel's wait token and the opposite side's
 *    progress wakes it.  A parked context retires zero steps.
 *  - spin-retry (O_NONBLOCK, the only option before blocking I/O):
 *    a would-block call returns E_AGAIN and the guest loops back to
 *    reissue the syscall, burning its whole time slice polling.
 *
 * The figure of merit is bytes moved per retired guest step — work
 * efficiency, independent of host timer noise.  --json emits
 * machine-readable results; --check exits nonzero unless the blocking
 * arm clears a 2x efficiency floor over spin-retry and actually
 * parked (nonzero scheduler fd-blocks, zero for the spin arm).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "bench_util.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "os/kernel.h"
#include "os/sched/sched.h"

using namespace cheri;

namespace
{

/** Bytes per guest read/write: the full channel capacity, so every
 *  successful write fills the pipe and every successful read drains
 *  it — each transfer forces a genuine hand-off (the next call on the
 *  same side must wait for the peer).  The channel only ever flips
 *  between empty and full, so transfers are always exactly kChunk and
 *  the byte countdown in x9 hits zero exactly. */
constexpr u64 kChunk = ByteChannel::capacity;
/** Total bytes the producer pushes: 4 full-pipe hand-off cycles. */
constexpr u64 kTotal = 4 * ByteChannel::capacity;
constexpr u64 kSlice = 64;

struct Guest
{
    Process *proc = nullptr;
    sched::ExecContext *cx = nullptr;
    u64 code = 0;
    u64 data = 0;
};

u64
envOr(const char *name, u64 dflt)
{
    const char *v = std::getenv(name);
    return v && *v ? std::strtoull(v, nullptr, 0) : dflt;
}

/**
 * The transfer loop, shared by producer (Write) and consumer (Read)
 * and by both arms:
 *
 *     x9 = kTotal
 *   loop:
 *     x4 = fd, x5/c5 = buffer, x6 = kChunk
 *     syscall(op)
 *     if (x2 != 0) goto loop     // E_AGAIN: spin-retry arm only —
 *                                // a blocked call restarts instead
 *                                // and never reaches this branch
 *     x9 -= x3                   // bytes actually moved
 *     if (x9 != 0) goto loop
 *     halt
 */
isa::Assembler
transferLoop(int fd, SysNum op)
{
    isa::Assembler a;
    a.li(9, static_cast<s64>(kTotal))
        .label("loop")
        .li(4, fd)
        .move(5, 8)
        .li(6, static_cast<s64>(kChunk))
        .syscall(static_cast<s64>(op))
        .bne(2, 0, "loop")
        .sub(9, 9, 3)
        .bne(9, 0, "loop")
        .halt();
    return a;
}

Guest
makeGuest(Kernel &kern, const char *name)
{
    SelfObject obj;
    obj.name = name;
    Process *proc = kern.spawn(Abi::Mips64, name);
    if (kern.execve(*proc, obj, {name}, {}) != E_OK)
        throw std::runtime_error("execve failed");
    u64 code = proc->as().map(0, pageSize,
                              PROT_READ | PROT_WRITE | PROT_EXEC,
                              MappingKind::Text);
    u64 data = proc->as().map(0, kChunk, PROT_READ | PROT_WRITE,
                              MappingKind::Data);
    return {proc, nullptr, code, data};
}

void
admit(sched::Scheduler &s, Guest &g, isa::Assembler prog)
{
    prog.writeTo(g.proc->as(), g.code);
    sched::ExecContext &cx = s.context(*g.proc);
    cx.interp->setEntry(Capability::fromAddress(g.code));
    cx.interp->regs().x[8] = g.data;
    cx.stepLimit = ~u64{0} >> 1;
    s.ready(cx);
    g.cx = &cx;
}

struct ArmResult
{
    u64 steps = 0;
    u64 fdBlocks = 0;
    u64 wakes = 0;
    u64 eagain = 0;
    bool completed = false;
};

/** One full 256 KiB transfer; @p nonblock selects the spin-retry arm. */
ArmResult
runArm(bool nonblock)
{
    KernelConfig cfg;
    cfg.timeSliceSteps = kSlice;
    // Constrained-memory runs (cheri_verify.sh): parked contexts must
    // survive the reclaimer evicting their pages out from under them.
    cfg.frameCapacity = envOr("CHERI_TEST_FRAME_BUDGET", 0);
    cfg.swapSlotBudget = envOr("CHERI_TEST_SLOT_BUDGET", 0);
    Kernel kern(cfg);
    sched::Scheduler &s = sched::schedulerFor(kern);

    auto [rd, wr] = Vfs::makePipe();
    u32 extra = nonblock ? static_cast<u32>(O_NONBLOCK) : 0;
    auto rof = std::make_shared<OpenFile>();
    rof->node = rd;
    rof->flags = O_RDONLY | extra;
    auto wof = std::make_shared<OpenFile>();
    wof->node = wr;
    wof->flags = O_WRONLY | extra;

    Guest producer = makeGuest(kern, "pipe-producer");
    Guest consumer = makeGuest(kern, "pipe-consumer");
    int wfd = producer.proc->allocFd(wof);
    int rfd = consumer.proc->allocFd(rof);
    admit(s, producer, transferLoop(wfd, SysNum::Write));
    admit(s, consumer, transferLoop(rfd, SysNum::Read));

    kern.runUntilIdle();

    ArmResult r;
    r.steps = s.stats().stepsExecuted;
    r.fdBlocks = s.stats().blocksFd;
    r.wakes = kern.fdIoStats().wakes;
    r.eagain = kern.fdIoStats().eagainErrors;
    r.completed =
        producer.cx->last.status == isa::InterpResult::Status::Halted &&
        consumer.cx->last.status == isa::InterpResult::Status::Halted;
    return r;
}

double
bytesPerStep(const ArmResult &r)
{
    return r.steps ? static_cast<double>(kTotal) /
                         static_cast<double>(r.steps)
                   : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json"))
            json = true;
        else if (!std::strcmp(argv[i], "--check"))
            check = true;
    }

    ArmResult blocking = runArm(false);
    ArmResult spin = runArm(true);
    double bEff = bytesPerStep(blocking);
    double sEff = bytesPerStep(spin);
    double ratio = sEff > 0 ? bEff / sEff : 0;

    if (json) {
        std::printf(
            "{\n"
            "  \"schema\": \"cheri.pipe_bench.v1\",\n"
            "  \"total_bytes\": %llu,\n"
            "  \"chunk_bytes\": %llu,\n"
            "  \"blocking_steps\": %llu,\n"
            "  \"blocking_bytes_per_step\": %.3f,\n"
            "  \"blocking_fd_blocks\": %llu,\n"
            "  \"blocking_wakes\": %llu,\n"
            "  \"spin_steps\": %llu,\n"
            "  \"spin_bytes_per_step\": %.3f,\n"
            "  \"spin_eagain\": %llu,\n"
            "  \"efficiency_ratio\": %.2f,\n"
            "  \"both_completed\": %s\n"
            "}\n",
            static_cast<unsigned long long>(kTotal),
            static_cast<unsigned long long>(kChunk),
            static_cast<unsigned long long>(blocking.steps), bEff,
            static_cast<unsigned long long>(blocking.fdBlocks),
            static_cast<unsigned long long>(blocking.wakes),
            static_cast<unsigned long long>(spin.steps), sEff,
            static_cast<unsigned long long>(spin.eagain), ratio,
            blocking.completed && spin.completed ? "true" : "false");
    } else {
        bench::banner("Pipe hand-off: blocking I/O vs O_NONBLOCK "
                      "spin-retry (256 KiB through a 64 KiB pipe)");
        std::printf("%-30s %12s %16s\n", "arm", "guest steps",
                    "bytes per step");
        std::printf("%-30s %12llu %16.3f\n", "blocking (park on edge)",
                    static_cast<unsigned long long>(blocking.steps),
                    bEff);
        std::printf("%-30s %12llu %16.3f\n", "spin-retry (E_AGAIN loop)",
                    static_cast<unsigned long long>(spin.steps), sEff);
        std::printf("\nefficiency ratio (blocking / spin): %.2fx\n",
                    ratio);
        std::printf("blocking arm parked %llu times, woke %llu; spin "
                    "arm saw %llu E_AGAINs\n",
                    static_cast<unsigned long long>(blocking.fdBlocks),
                    static_cast<unsigned long long>(blocking.wakes),
                    static_cast<unsigned long long>(spin.eagain));
    }

    if (check) {
        bool ok = true;
        if (!blocking.completed || !spin.completed) {
            std::fprintf(stderr,
                         "CHECK FAIL: a transfer did not complete "
                         "(blocking %d, spin %d)\n",
                         blocking.completed, spin.completed);
            ok = false;
        }
        if (ratio < 2.0) {
            std::fprintf(stderr,
                         "CHECK FAIL: blocking/spin efficiency ratio "
                         "%.2f < 2.0\n",
                         ratio);
            ok = false;
        }
        if (blocking.fdBlocks == 0) {
            std::fprintf(stderr, "CHECK FAIL: blocking arm never "
                                 "parked a context\n");
            ok = false;
        }
        if (spin.fdBlocks != 0) {
            std::fprintf(stderr,
                         "CHECK FAIL: O_NONBLOCK arm parked %llu "
                         "times\n",
                         static_cast<unsigned long long>(spin.fdBlocks));
            ok = false;
        }
        if (!ok)
            return 1;
        std::printf("CHECK OK: ratio %.2fx >= 2.0, blocking parked "
                    "%llu times, spin parked 0\n",
                    ratio,
                    static_cast<unsigned long long>(blocking.fdBlocks));
    }
    return 0;
}
