file(REMOVE_RECURSE
  "CMakeFiles/table1_testsuites.dir/table1_testsuites.cc.o"
  "CMakeFiles/table1_testsuites.dir/table1_testsuites.cc.o.d"
  "table1_testsuites"
  "table1_testsuites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_testsuites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
