file(REMOVE_RECURSE
  "CMakeFiles/test_ptrace.dir/test_ptrace.cc.o"
  "CMakeFiles/test_ptrace.dir/test_ptrace.cc.o.d"
  "test_ptrace"
  "test_ptrace.pdb"
  "test_ptrace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
