#include "libc/crt.h"

#include "os/auxv.h"

namespace cheri
{

CrtEnv
crtInit(GuestContext &ctx)
{
    CrtEnv env;
    Process &proc = ctx.proc();
    GuestPtr auxv(proc.auxvCap);
    const u64 ent = auxEntrySize(ctx.ptrSize());
    u64 envc = 0;
    for (u64 i = 0;; ++i) {
        GuestPtr entry = auxv + static_cast<s64>(i * ent);
        u64 tag = ctx.load<u64>(entry);
        if (tag == AT_NULL)
            break;
        GuestPtr val_ptr = entry + static_cast<s64>(auxValueOffset);
        switch (tag) {
          case AT_ARGC:
            env.argc = static_cast<int>(ctx.load<u64>(val_ptr));
            break;
          case AT_ENVC:
            envc = ctx.load<u64>(val_ptr);
            break;
          case AT_ARGV:
            env.argvArray = ctx.loadPtr(entry,
                                        static_cast<s64>(auxValueOffset));
            break;
          case AT_ENVV:
            env.envvArray = ctx.loadPtr(entry,
                                        static_cast<s64>(auxValueOffset));
            break;
          case AT_TRAMP:
            env.trampoline = ctx.loadPtr(entry,
                                         static_cast<s64>(auxValueOffset));
            break;
          case AT_STACKBASE:
            env.stackBase = ctx.load<u64>(val_ptr);
            break;
          default:
            break;
        }
    }
    const s64 stride = static_cast<s64>(ctx.ptrSize());
    for (int i = 0; i < env.argc; ++i)
        env.argv.push_back(ctx.loadPtr(env.argvArray, i * stride));
    for (u64 i = 0; i < envc; ++i) {
        env.envv.push_back(
            ctx.loadPtr(env.envvArray, static_cast<s64>(i) * stride));
    }
    return env;
}

std::string
crtArg(GuestContext &ctx, const CrtEnv &env, int i)
{
    if (i < 0 || static_cast<size_t>(i) >= env.argv.size())
        return {};
    return ctx.readString(env.argv[i]);
}

} // namespace cheri
