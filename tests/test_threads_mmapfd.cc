/**
 * @file
 * Tests for kernel threads (capability-register context switching,
 * per-thread bounded stacks) and file-backed mmap (demand paging from
 * the VFS, private-vs-shared semantics, msync write-back).
 */

#include <gtest/gtest.h>

#include "libc/malloc.h"
#include "libc/tls.h"
#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

class ThreadTest : public ::testing::TestWithParam<Abi>
{
  protected:
    GuestSystem sys{GetParam()};
    GuestContext &ctx() { return *sys.ctx; }
    Process &proc() { return *sys.proc; }
    Kernel &kern() { return sys.kern; }
};

TEST_P(ThreadTest, CreateAndSwitch)
{
    EXPECT_EQ(proc().threadCount(), 1u);
    SysResult r = kern().sysThrNew(proc());
    ASSERT_EQ(r.error, E_OK);
    u64 tid = r.value;
    EXPECT_EQ(proc().threadCount(), 2u);
    u64 main_sp = proc().regs().stack().address();
    ASSERT_EQ(kern().sysThrSwitch(proc(), tid).error, E_OK);
    EXPECT_EQ(proc().currentTid(), tid);
    EXPECT_NE(proc().regs().stack().address(), main_sp)
        << "the new thread runs on its own stack";
    ASSERT_EQ(kern().sysThrSwitch(proc(), 0).error, E_OK);
    EXPECT_EQ(proc().regs().stack().address(), main_sp);
}

TEST_P(ThreadTest, RegisterStatePreservedAcrossSwitches)
{
    SysResult r = kern().sysThrNew(proc());
    ASSERT_EQ(r.error, E_OK);
    u64 tid = r.value;
    GuestPtr buf = ctx().mmap(pageSize);
    proc().regs().c[6] = buf.cap; // thread 0's state
    proc().regs().x[7] = 111;
    ASSERT_EQ(kern().sysThrSwitch(proc(), tid).error, E_OK);
    // The new thread has its own register file.
    proc().regs().x[7] = 222;
    proc().regs().c[6] = Capability();
    ASSERT_EQ(kern().sysThrSwitch(proc(), 0).error, E_OK);
    EXPECT_EQ(proc().regs().x[7], 111u);
    EXPECT_EQ(proc().regs().c[6].address(), buf.cap.address());
    if (GetParam() == Abi::CheriAbi) {
        EXPECT_TRUE(proc().regs().c[6].tag())
            << "capability tags survive the kernel save/restore";
    }
    ASSERT_EQ(kern().sysThrSwitch(proc(), tid).error, E_OK);
    EXPECT_EQ(proc().regs().x[7], 222u);
}

TEST_P(ThreadTest, SwitchChargesContextSwitch)
{
    SysResult r = kern().sysThrNew(proc());
    u64 before = kern().contextSwitches();
    kern().sysThrSwitch(proc(), r.value);
    EXPECT_EQ(kern().contextSwitches(), before + 1);
}

TEST_P(ThreadTest, BadTidRejected)
{
    EXPECT_EQ(kern().sysThrSwitch(proc(), 42).error, E_SRCH);
    EXPECT_EQ(kern().sysThrExit(proc(), 42).error, E_SRCH);
}

TEST_P(ThreadTest, SelfExitOfSecondaryThreadIsZombieUntilSwitch)
{
    SysResult r = kern().sysThrNew(proc());
    ASSERT_EQ(r.error, E_OK);
    u64 tid = r.value;
    ASSERT_EQ(kern().sysThrSwitch(proc(), tid).error, E_OK);
    // Self-exit succeeds; the dead thread's register file lingers until
    // the next switch (the scheduler's next pick reaps it).
    ASSERT_EQ(kern().sysThrExit(proc(), tid).error, E_OK);
    EXPECT_FALSE(proc().exited());
    EXPECT_EQ(proc().threadCount(), 1u);
    EXPECT_EQ(kern().sysThrSwitch(proc(), tid).error, E_SRCH);
    ASSERT_EQ(kern().sysThrSwitch(proc(), 0).error, E_OK);
}

TEST_P(ThreadTest, SelfExitOfLastThreadExitsProcess)
{
    ASSERT_EQ(kern().sysThrExit(proc(), proc().currentTid()).error,
              E_OK);
    EXPECT_TRUE(proc().exited());
    EXPECT_EQ(proc().exitStatus(), 0);
}

TEST_P(ThreadTest, ExitedThreadCannotBeEntered)
{
    SysResult r = kern().sysThrNew(proc());
    ASSERT_EQ(kern().sysThrExit(proc(), r.value).error, E_OK);
    EXPECT_EQ(kern().sysThrSwitch(proc(), r.value).error, E_SRCH);
    EXPECT_EQ(proc().threadCount(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Abis, ThreadTest,
                         ::testing::Values(Abi::Mips64, Abi::CheriAbi),
                         [](const auto &info) {
                             return info.param == Abi::CheriAbi
                                        ? "cheriabi"
                                        : "mips64";
                         });

TEST(ThreadCheri, StacksAreMutuallyInaccessible)
{
    GuestSystem sys(Abi::CheriAbi);
    Kernel &kern = sys.kern;
    Process &proc = *sys.proc;
    GuestContext &ctx = *sys.ctx;
    SysResult r = kern.sysThrNew(proc);
    ASSERT_EQ(r.error, E_OK);
    u64 main_sp = proc.regs().stack().address();
    ASSERT_EQ(kern.sysThrSwitch(proc, r.value).error, E_OK);
    const Capability &tsp = proc.regs().stack();
    ASSERT_TRUE(tsp.tag());
    // The thread's stack capability cannot reach the main stack.
    EXPECT_TRUE(tsp.checkAccess(main_sp - 64, 8, PERM_LOAD).has_value());
    // And it is bounded to its own mapping.
    StackFrame frame(ctx, 128, 1);
    GuestPtr local = frame.alloc(32);
    EXPECT_GE(local.addr(), tsp.base());
    ctx.store<u64>(local, 0, 5);
    EXPECT_THROW(ctx.load<u64>(local, 32), CapTrap);
}

TEST(ThreadCheri, PerThreadTlsBlocks)
{
    GuestSystem sys(Abi::CheriAbi);
    GuestContext &ctx = *sys.ctx;
    // One TLS instance per thread, as the runtime would keep.
    GuestTls tls_main(ctx), tls_other(ctx);
    GuestPtr a = tls_main.moduleBlock(1, 64);
    GuestPtr b = tls_other.moduleBlock(1, 64);
    EXPECT_NE(a.cap.base(), b.cap.base());
    ctx.store<u64>(a, 0, 1);
    ctx.store<u64>(b, 0, 2);
    EXPECT_EQ(ctx.load<u64>(a), 1u);
    EXPECT_EQ(ctx.load<u64>(b), 2u);
}

// ---------------------------------------------------------------------
// File-backed mmap
// ---------------------------------------------------------------------

class MmapFdTest : public ::testing::Test
{
  protected:
    GuestSystem sys{Abi::CheriAbi};
    GuestContext &ctx() { return *sys.ctx; }
    Kernel &kern() { return sys.kern; }

    s64
    makeFile(const std::string &path, u64 bytes)
    {
        VNodeRef node = kern().vfs().createFile(path);
        node->data.resize(bytes);
        for (u64 i = 0; i < bytes; ++i)
            node->data[i] = static_cast<u8>(i * 3);
        return ctx().open(path, O_RDWR);
    }
};

TEST_F(MmapFdTest, MapsFileContents)
{
    s64 fd = makeFile("/tmp/mapped", 3 * pageSize);
    UserPtr out;
    SysResult r = kern().sysMmapFd(*sys.proc, static_cast<int>(fd), 0,
                                   3 * pageSize, PROT_READ, MAP_PRIVATE,
                                   &out);
    ASSERT_EQ(r.error, E_OK);
    ASSERT_TRUE(out.cap.tag());
    GuestPtr p(out.cap);
    EXPECT_EQ(ctx().load<u8>(p, 0), 0);
    EXPECT_EQ(ctx().load<u8>(p, 5), 15);
    EXPECT_EQ(ctx().load<u8>(p, static_cast<s64>(pageSize + 1)),
              static_cast<u8>((pageSize + 1) * 3));
}

TEST_F(MmapFdTest, DemandPagesOnlyTouchedPages)
{
    s64 fd = makeFile("/tmp/lazy", 8 * pageSize);
    UserPtr out;
    ASSERT_EQ(kern()
                  .sysMmapFd(*sys.proc, static_cast<int>(fd), 0,
                             8 * pageSize, PROT_READ, MAP_PRIVATE, &out)
                  .error,
              E_OK);
    u64 before = sys.proc->as().residentPages();
    ctx().load<u8>(GuestPtr(out.cap), 0);
    ctx().load<u8>(GuestPtr(out.cap), static_cast<s64>(5 * pageSize));
    EXPECT_EQ(sys.proc->as().residentPages(), before + 2)
        << "only the touched pages become resident";
}

TEST_F(MmapFdTest, OffsetMapping)
{
    s64 fd = makeFile("/tmp/offset", 4 * pageSize);
    UserPtr out;
    ASSERT_EQ(kern()
                  .sysMmapFd(*sys.proc, static_cast<int>(fd), pageSize,
                             pageSize, PROT_READ, MAP_PRIVATE, &out)
                  .error,
              E_OK);
    EXPECT_EQ(ctx().load<u8>(GuestPtr(out.cap), 0),
              static_cast<u8>(pageSize * 3));
}

TEST_F(MmapFdTest, PrivateWritesDoNotReachFile)
{
    s64 fd = makeFile("/tmp/private", pageSize);
    UserPtr out;
    ASSERT_EQ(kern()
                  .sysMmapFd(*sys.proc, static_cast<int>(fd), 0, pageSize,
                             PROT_READ | PROT_WRITE, MAP_PRIVATE, &out)
                  .error,
              E_OK);
    ctx().store<u8>(GuestPtr(out.cap), 0, 0xAA);
    VNodeRef node = kern().vfs().lookup("/tmp/private");
    EXPECT_EQ(node->data[0], 0) << "private mapping";
    // And msync on a private mapping is refused.
    EXPECT_EQ(kern().sysMsync(*sys.proc, out, pageSize).error, E_INVAL);
}

TEST_F(MmapFdTest, SharedMsyncWritesBack)
{
    s64 fd = makeFile("/tmp/shared", pageSize);
    UserPtr out;
    ASSERT_EQ(kern()
                  .sysMmapFd(*sys.proc, static_cast<int>(fd), 0, pageSize,
                             PROT_READ | PROT_WRITE, MAP_SHARED, &out)
                  .error,
              E_OK);
    ctx().store<u8>(GuestPtr(out.cap), 7, 0xBB);
    VNodeRef node = kern().vfs().lookup("/tmp/shared");
    EXPECT_NE(node->data[7], 0xBB) << "not yet flushed";
    SysResult r = kern().sysMsync(*sys.proc, out, pageSize);
    ASSERT_EQ(r.error, E_OK);
    EXPECT_EQ(r.value, 1u);
    EXPECT_EQ(node->data[7], 0xBB);
}

TEST_F(MmapFdTest, SharedWritableNeedsWritableFd)
{
    VNodeRef node = kern().vfs().createFile("/tmp/ro");
    node->data.resize(pageSize);
    s64 fd = ctx().open("/tmp/ro", O_RDONLY);
    UserPtr out;
    EXPECT_EQ(kern()
                  .sysMmapFd(*sys.proc, static_cast<int>(fd), 0, pageSize,
                             PROT_READ | PROT_WRITE, MAP_SHARED, &out)
                  .error,
              E_ACCES);
}

TEST_F(MmapFdTest, NonRegularFdRejected)
{
    int fds[2];
    ASSERT_EQ(kern().sysPipe(*sys.proc, fds).error, E_OK);
    UserPtr out;
    EXPECT_EQ(kern()
                  .sysMmapFd(*sys.proc, fds[0], 0, pageSize, PROT_READ,
                             MAP_PRIVATE, &out)
                  .error,
              E_BADF);
}

TEST_F(MmapFdTest, ShortFileZeroFillsTail)
{
    VNodeRef node = kern().vfs().createFile("/tmp/short");
    node->data = {1, 2, 3};
    s64 fd = ctx().open("/tmp/short", O_RDWR);
    UserPtr out;
    ASSERT_EQ(kern()
                  .sysMmapFd(*sys.proc, static_cast<int>(fd), 0, pageSize,
                             PROT_READ, MAP_PRIVATE, &out)
                  .error,
              E_OK);
    EXPECT_EQ(ctx().load<u8>(GuestPtr(out.cap), 2), 3);
    EXPECT_EQ(ctx().load<u8>(GuestPtr(out.cap), 3), 0);
    EXPECT_EQ(ctx().load<u8>(GuestPtr(out.cap), 100), 0);
}

} // namespace
} // namespace cheri
