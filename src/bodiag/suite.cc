#include "bodiag/suite.h"

#include <cassert>
#include <sstream>

#include "guest/context.h"
#include "libc/cstring.h"
#include "libc/malloc.h"
#include "libc/tls.h"
#include "sanitizer/asan.h"

namespace cheri::bodiag
{

namespace
{

const char *
regionName(Region r)
{
    switch (r) {
      case Region::Stack: return "stack";
      case Region::Heap: return "heap";
      case Region::Global: return "global";
      case Region::Tls: return "tls";
    }
    return "?";
}

const char *
techName(Technique t)
{
    switch (t) {
      case Technique::DirectIndex: return "direct";
      case Technique::LoopIndex: return "loop";
      case Technique::PtrArith: return "ptr-arith";
      case Technique::LibcMemcpy: return "memcpy";
      case Technique::LibcStrcpy: return "strcpy";
      case Technique::PosixGetcwd: return "getcwd";
      case Technique::IntraObject: return "intra-object";
      case Technique::Uninstrumented: return "uninstrumented";
      case Technique::NeighborSkip: return "neighbor-skip";
    }
    return "?";
}

u64
magBytes(Magnitude m)
{
    switch (m) {
      case Magnitude::Ok: return 0;
      case Magnitude::Min: return 1;
      case Magnitude::Med: return 8;
      case Magnitude::Large: return 4096;
    }
    return 0;
}

/** The environment one case runs in. */
struct CaseEnv
{
    Kernel kern;
    SelfObject prog;
    Process *proc = nullptr;
    std::unique_ptr<GuestContext> ctx;
    std::unique_ptr<AsanRuntime> asan;
    Mode mode;
    /** An ASan case's buffer frame: must stay live for the whole case
     *  (popping it would move the stack pointer mid-access), so the
     *  env owns it and tears it down last.  Declared after ctx/asan so
     *  its destructor still sees them alive. */
    std::unique_ptr<StackFrame> frame;

    explicit CaseEnv(Mode m) : mode(m)
    {
        prog.name = "bodiag";
        prog.textSize = 0x1000;
        proc = kern.spawn(m == Mode::CheriAbi ? Abi::CheriAbi
                                              : Abi::Mips64,
                          "bodiag");
        int err = kern.execve(*proc, prog, {"bodiag"}, {});
        assert(err == E_OK);
        (void)err;
        ctx = std::make_unique<GuestContext>(kern, *proc);
        if (m == Mode::Asan)
            asan = std::make_unique<AsanRuntime>(*ctx);
    }

    bool cheri() const { return mode == Mode::CheriAbi; }

    /** Checked access of one byte at @p addr-ish offset. */
    void
    access(const GuestPtr &p, s64 off, AccessKind kind)
    {
        if (mode == Mode::Asan) {
            if (kind == AccessKind::Write)
                asan->store<u8>(p, off, 0x41);
            else
                (void)asan->load<u8>(p, off);
            return;
        }
        if (kind == AccessKind::Write)
            ctx->store<u8>(p, off, 0x41);
        else
            (void)ctx->load<u8>(p, off);
    }

    /** Copy performed by instrumented library code. */
    void
    libcCopy(const GuestPtr &dst, const GuestPtr &src, u64 len,
             AccessKind kind)
    {
        for (u64 i = 0; i < len; ++i) {
            if (kind == AccessKind::Write) {
                u8 v = mode == Mode::Asan
                           ? asan->load<u8>(src, static_cast<s64>(i))
                           : ctx->load<u8>(src, static_cast<s64>(i));
                if (mode == Mode::Asan)
                    asan->store<u8>(dst, static_cast<s64>(i), v);
                else
                    ctx->store<u8>(dst, static_cast<s64>(i), v);
            } else {
                // "read" overflow: read from the buffer, write to a
                // safely sized sink.
                u8 v = mode == Mode::Asan
                           ? asan->load<u8>(dst, static_cast<s64>(i))
                           : ctx->load<u8>(dst, static_cast<s64>(i));
                ctx->store<u8>(src, 0, v);
            }
        }
    }
};

/** Buffer setup result. */
struct Buffer
{
    GuestPtr ptr;
    /** Scratch memory usable as copy source/sink. */
    GuestPtr scratch;
};

} // namespace

std::string
BodiagCase::describe() const
{
    std::ostringstream os;
    os << "case-" << id << " " << regionName(region) << " "
       << (access == AccessKind::Write ? "write" : "read") << " "
       << techName(tech) << " buf=" << bufSize;
    if (siblingSize)
        os << " sibling=" << siblingSize;
    if (pageEdge)
        os << " page-edge";
    return os.str();
}

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Mips64: return "mips64";
      case Mode::CheriAbi: return "cheriabi";
      case Mode::Asan: return "asan";
    }
    return "?";
}

const char *
magnitudeName(Magnitude mag)
{
    switch (mag) {
      case Magnitude::Ok: return "ok";
      case Magnitude::Min: return "min";
      case Magnitude::Med: return "med";
      case Magnitude::Large: return "large";
    }
    return "?";
}

std::vector<BodiagCase>
generateSuite()
{
    std::vector<BodiagCase> suite;
    u64 id = 0;
    auto add = [&](Region r, AccessKind a, Technique t, u64 size,
                   u64 sibling = 0, bool edge = false, u64 gap = 64) {
        suite.push_back({id++, r, a, t, size, sibling,
                         edge ? 0 : gap, edge});
    };

    const u64 sizes[] = {8, 16, 32, 64, 128, 256, 512};
    const Region base_regions[] = {Region::Stack, Region::Heap,
                                   Region::Global};
    const Technique base_techs[] = {Technique::DirectIndex,
                                    Technique::LoopIndex,
                                    Technique::PtrArith,
                                    Technique::LibcMemcpy};
    // 1. Base grid: 3 regions x 2 accesses x 4 techniques x 7 sizes.
    for (Region r : base_regions) {
        for (AccessKind a : {AccessKind::Read, AccessKind::Write}) {
            for (Technique t : base_techs) {
                for (u64 s : sizes)
                    add(r, a, t, s);
            }
        }
    }
    // 2. strcpy (write-only): 3 regions x 7 sizes.
    for (Region r : base_regions) {
        for (u64 s : sizes)
            add(r, AccessKind::Write, Technique::LibcStrcpy, s);
    }
    // 3. TLS: 2 techniques x 2 accesses x 7 sizes.
    for (Technique t : {Technique::DirectIndex, Technique::LoopIndex}) {
        for (AccessKind a : {AccessKind::Read, AccessKind::Write}) {
            for (u64 s : sizes)
                add(Region::Tls, a, t, s);
        }
    }
    // 4. Pointer-arithmetic reads at odd sizes.
    for (u64 s : {24, 48, 96, 192}) {
        add(Region::Stack, AccessKind::Read, Technique::PtrArith, s);
        add(Region::Heap, AccessKind::Read, Technique::PtrArith, s);
    }
    // 5. POSIX getcwd misuse.
    for (u64 s : {8, 12, 16, 24}) {
        add(Region::Stack, AccessKind::Write, Technique::PosixGetcwd, s);
        add(Region::Heap, AccessKind::Write, Technique::PosixGetcwd, s);
    }
    // 6. Intra-object overflows: 10 stack cases with a small sibling
    //    (min stays inside the object; med escapes it), 2 heap cases
    //    with a wide sibling (min and med both stay inside).
    for (u64 s : {16, 24, 32, 40, 48}) {
        add(Region::Stack, AccessKind::Write, Technique::IntraObject, s,
            4);
        add(Region::Stack, AccessKind::Read, Technique::IntraObject, s,
            4);
    }
    add(Region::Heap, AccessKind::Write, Technique::IntraObject, 16, 16);
    add(Region::Heap, AccessKind::Read, Technique::IntraObject, 32, 16);
    // 7. Copies by uninstrumented code (invisible to ASan).
    for (u64 s : {16, 64, 256})
        add(Region::Heap, AccessKind::Write, Technique::Uninstrumented, s);
    // 8. Redzone-skipping far accesses into a live neighbour.
    add(Region::Heap, AccessKind::Write, Technique::NeighborSkip, 64);
    add(Region::Heap, AccessKind::Read, Technique::NeighborSkip, 128);
    // 9. Buffers flush against the end of their mapping: the only
    //    min-magnitude bugs a stock mips64 process can catch.
    for (u64 s : {16, 32, 64, 128}) {
        add(Region::Global, AccessKind::Write, Technique::DirectIndex, s,
            0, true);
    }
    // 9b. Buffers four bytes shy of the edge: caught by the MMU only
    //     from the med magnitude up.
    for (u64 s : {16, 32, 64, 128}) {
        add(Region::Global, AccessKind::Write, Technique::DirectIndex, s,
            0, false, 4);
    }
    // 10. memcpy over TLS.
    for (AccessKind a : {AccessKind::Read, AccessKind::Write}) {
        for (u64 s : sizes)
            add(Region::Tls, a, Technique::LibcMemcpy, s);
    }
    // 11. Odd-size heap direct accesses.
    for (u64 s : {12, 20, 40, 80, 160}) {
        add(Region::Heap, AccessKind::Read, Technique::DirectIndex, s);
        add(Region::Heap, AccessKind::Write, Technique::DirectIndex, s);
    }
    // 12. Fill out the remaining taxonomy corners.
    for (u64 s : {24, 48, 96}) {
        add(Region::Stack, AccessKind::Write, Technique::LibcStrcpy, s);
        add(Region::Global, AccessKind::Read, Technique::LoopIndex, s);
        add(Region::Heap, AccessKind::Write, Technique::LibcMemcpy, s);
    }
    assert(suite.size() == 291 && "BOdiagsuite must have 291 cases");
    return suite;
}

namespace
{

/** Set up the case's buffer; returns the pointer guest code holds. */
Buffer
buildBuffer(CaseEnv &env, const BodiagCase &c)
{
    GuestContext &ctx = *env.ctx;
    const u64 struct_size = c.bufSize + c.siblingSize;
    Buffer out;
    out.scratch = ctx.mmap(2 * pageSize + 8 * 1024);

    auto bound_cheri = [&](const Capability &region, u64 addr) {
        Capability cap = region.setAddress(addr);
        auto b = cap.setBounds(struct_size);
        assert(b.ok());
        auto p = b.value().andPerms(permsData);
        assert(p.ok());
        return GuestPtr(p.value());
    };

    switch (c.region) {
      case Region::Stack: {
        if (env.mode == Mode::Asan) {
            // The frame outlives this function: the case env owns it.
            env.frame = std::make_unique<StackFrame>(ctx, 4096);
            out.ptr = env.asan->stackAlloc(*env.frame, struct_size);
            break;
        }
        // Half the programs keep the buffer in a shallow frame near
        // the stack top (a far overflow runs off the mapping); the
        // other half sit under deeper call chains, where a far
        // overflow lands in live stack and the MMU sees nothing.
        u64 depth = (c.id % 2) ? 256 * 1024 : 0;
        u64 total = 512 + struct_size + depth;
        Capability sp = env.proc->regs().stack();
        u64 base = (sp.address() - total) & ~u64{15};
        env.proc->regs().stack() = sp.setAddress(base);
        u64 buf_addr = base + 128;
        out.ptr = env.cheri()
                      ? bound_cheri(sp, buf_addr)
                      : GuestPtr(Capability::fromAddress(buf_addr));
        break;
      }
      case Region::Heap: {
        if (env.mode == Mode::Asan) {
            out.ptr = env.asan->malloc(struct_size);
            if (c.tech == Technique::NeighborSkip) {
                // A live victim allocation placed so that +4096 from
                // the buffer lands inside its payload.
                env.asan->malloc(16384);
            }
            break;
        }
        // Heap allocations sit inside an allocator arena.  For most
        // programs the arena extends past the buffer (a far overflow
        // lands in mapped heap and the MMU sees nothing); for roughly
        // a quarter the buffer is the last allocation before the
        // arena's end and a far overflow runs off the mapping.
        bool arena_slack =
            c.tech != Technique::NeighborSkip && (c.id % 4) != 0;
        u64 map_len = c.tech == Technique::NeighborSkip
                          ? 3 * pageSize
                          : pageRound(struct_size) +
                                (arena_slack ? 2 * pageSize : 0);
        GuestPtr region = ctx.mmap(map_len);
        u64 buf_addr = c.pageEdge
                           ? region.addr() + map_len - struct_size
                           : region.addr();
        out.ptr = env.cheri()
                      ? bound_cheri(region.cap, buf_addr)
                      : GuestPtr(Capability::fromAddress(buf_addr));
        break;
      }
      case Region::Global: {
        // A data segment: the buffer sits near (or flush against) the
        // end of the mapping, other globals below it.
        u64 tail_gap = c.tailGap;
        u64 map_len = pageRound(struct_size + 512);
        GuestPtr region = ctx.mmap(map_len);
        u64 buf_addr = region.addr() + map_len - struct_size - tail_gap;
        if (env.mode == Mode::Asan) {
            out.ptr = GuestPtr(Capability::fromAddress(buf_addr));
            env.asan->registerGlobal(out.ptr, struct_size);
        } else {
            out.ptr = env.cheri()
                          ? bound_cheri(region.cap, buf_addr)
                          : GuestPtr(Capability::fromAddress(buf_addr));
        }
        break;
      }
      case Region::Tls: {
        GuestTls tls(ctx);
        GuestPtr block = tls.moduleBlock(1, struct_size);
        if (env.mode == Mode::Asan) {
            // ASan does not poison TLS blocks per-variable; model the
            // block as a registered global.
            out.ptr = GuestPtr(Capability::fromAddress(block.addr()));
            env.asan->registerGlobal(out.ptr, struct_size);
        } else {
            out.ptr = block;
        }
        break;
      }
    }
    return out;
}

/** Perform the case's access at the magnitude's boundary offset. */
void
performAccess(CaseEnv &env, const BodiagCase &c, const Buffer &buf,
              Magnitude mag)
{
    GuestContext &ctx = *env.ctx;
    const u64 bytes = magBytes(mag);
    // The faulty index: last valid byte for Ok, first/last overflowed
    // byte otherwise.
    const s64 off = static_cast<s64>(
        mag == Magnitude::Ok ? c.bufSize - 1 : c.bufSize + bytes - 1);

    switch (c.tech) {
      case Technique::DirectIndex:
      case Technique::IntraObject:
      case Technique::NeighborSkip:
        env.access(buf.ptr, off, c.access);
        break;
      case Technique::PtrArith: {
        GuestPtr p = buf.ptr + off;
        env.access(p, 0, c.access);
        break;
      }
      case Technique::LoopIndex: {
        s64 start = std::max<s64>(0, static_cast<s64>(c.bufSize) - 4);
        for (s64 i = start; i <= off; ++i)
            env.access(buf.ptr, i, c.access);
        break;
      }
      case Technique::LibcMemcpy:
        env.libcCopy(buf.ptr, buf.scratch,
                     static_cast<u64>(off) + 1, c.access);
        break;
      case Technique::LibcStrcpy: {
        // Source string of exactly off bytes + NUL.
        u64 n = static_cast<u64>(off);
        for (u64 i = 0; i < n; ++i)
            ctx.store<u8>(buf.scratch, static_cast<s64>(i), 'A');
        ctx.store<u8>(buf.scratch, static_cast<s64>(n), 0);
        env.libcCopy(buf.ptr, buf.scratch, n + 1, AccessKind::Write);
        break;
      }
      case Technique::Uninstrumented: {
        // Raw copy loop: no ASan checks, but capabilities still check.
        for (s64 i = 0; i <= off; ++i)
            ctx.store<u8>(buf.ptr, i, 0x42);
        break;
      }
      case Technique::PosixGetcwd: {
        // The program claims its buffer is bigger than it is.
        u64 claimed = c.bufSize + bytes;
        if (env.mode == Mode::Asan)
            env.asan->checkAccess(buf.ptr.addr(), claimed);
        s64 r = ctx.getcwd(buf.ptr, claimed);
        if (r == -E_PROT || r == -E_FAULT)
            throw CapTrap(CapFault::LengthViolation, buf.ptr.addr(),
                          buf.ptr.cap, "getcwd");
        break;
      }
    }
}

} // namespace

RunResult
runCase(const BodiagCase &c, Magnitude mag, Mode mode)
{
    CaseEnv env(mode);
    Buffer buf = buildBuffer(env, c);
    RunResult out;
    try {
        performAccess(env, c, buf, mag);
        out.detected = false;
    } catch (const CapTrap &trap) {
        out.detected = true;
        out.how = std::string(capFaultName(trap.fault()));
    } catch (const AsanReport &rep) {
        out.detected = true;
        out.how = "asan report";
    }
    if (mag == Magnitude::Ok && out.detected)
        out.falsePositive = true;
    return out;
}

ModeSummary
runAll(const std::vector<BodiagCase> &suite, Mode mode)
{
    ModeSummary s;
    s.total = suite.size();
    for (const BodiagCase &c : suite) {
        RunResult ok = runCase(c, Magnitude::Ok, mode);
        s.okFailures += ok.falsePositive;
        s.min += runCase(c, Magnitude::Min, mode).detected;
        s.med += runCase(c, Magnitude::Med, mode).detected;
        s.large += runCase(c, Magnitude::Large, mode).detected;
    }
    return s;
}

} // namespace cheri::bodiag
