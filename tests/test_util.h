/**
 * @file
 * Shared test scaffolding: a booted kernel with one exec'd process per
 * ABI, plus a trivial SELF program image.
 */

#ifndef CHERI_TESTS_TEST_UTIL_H
#define CHERI_TESTS_TEST_UTIL_H

#include <memory>

#include "guest/context.h"
#include "libc/malloc.h"
#include "os/kernel.h"

namespace cheri::test
{

/** A minimal program image with a couple of symbols and GOT entries. */
inline SelfObject
trivialProgram()
{
    SelfObject prog;
    prog.name = "testprog";
    prog.textSize = 0x2000;
    prog.data.resize(64, 0);
    prog.bssSize = 64;
    prog.symbols = {
        {"global_counter", 0, 8, false},
        {"global_buf", 16, 32, false},
        {"main", 0, 0x100, true},
    };
    prog.relocs = {
        {RelocKind::CapGlobal, 0, 0, "global_counter"},
        {RelocKind::CapGlobal, 1, 0, "global_buf"},
        {RelocKind::CapFunction, 2, 0, "main"},
    };
    return prog;
}

/** Kernel + one process + guest context, ready to run guest code. */
struct GuestSystem
{
    explicit GuestSystem(Abi abi, KernelConfig cfg = {})
        : kern(cfg), prog(trivialProgram())
    {
        proc = kern.spawn(abi, "test");
        int err = kern.execve(*proc, prog, {"testprog", "arg1"},
                              {"HOME=/home"});
        if (err != E_OK)
            throw std::runtime_error("execve failed in fixture");
        ctx = std::make_unique<GuestContext>(kern, *proc);
    }

    Kernel kern;
    SelfObject prog;
    Process *proc = nullptr;
    std::unique_ptr<GuestContext> ctx;
};

} // namespace cheri::test

#endif // CHERI_TESTS_TEST_UTIL_H
