# Empty dependencies file for debugger.
# This may be replaced when dependencies are built.
