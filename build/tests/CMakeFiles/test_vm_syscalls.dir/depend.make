# Empty dependencies file for test_vm_syscalls.
# This may be replaced when dependencies are built.
