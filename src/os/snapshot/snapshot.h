/**
 * @file
 * Deterministic checkpoint/restore of the whole kernel.
 *
 * A snapshot serializes every piece of state the kernel's execution
 * depends on — processes and their address spaces (including cap-dirty
 * bits and per-granule tag metadata), physical frames, swap slots with
 * refcounts, the VFS tree with pipe channels and wait tokens, the
 * scheduler's run queue and per-context capability register files
 * (tags intact), open revocation epochs, fault-injector arms, and the
 * metrics mirror — into one versioned binary image.  Restoring the
 * image into a Kernel rebuilds all of it bit-exactly; because the
 * system is fully deterministic (virtual clock, instruction-boundary
 * preemption, seeded injection), a restored system continues exactly
 * as the original would have.
 *
 * Restore routes through the existing invalidation machinery by
 * construction: every restored process gets a *fresh* MemAccess (its
 * TLBs and fetch generation start cold) and every restored context a
 * fresh Interpreter (decode cache cold) — caches rebuild from the
 * restored ground truth, so nothing stale can survive.  TLB and decode
 * caches are pure caches: cold-starting them is semantically invisible
 * (it only shifts modelled miss counts *after* the snapshot point,
 * identically in record and replay).
 *
 * What is NOT captured (save() refuses, with a clean error):
 *  - host-callback state: live signal frames mid-handler, hosted
 *    scheduler contexts, file-backed mappings (BackingReader
 *    closures), and schedulers other than sched::Scheduler;
 *  - guest handler std::functions (SigHandler) — restored processes
 *    have an empty handler table; dangling handler ids in sigActions
 *    are skipped safely by signal delivery (test workloads re-register
 *    after restore when they need handlers);
 *  - the RTLD's LinkedImage (host-side metadata used only by
 *    coredump); restored processes report an empty image.
 *
 * A failed restore never host-aborts and never leaves the kernel
 * half-built: the target is reset to an empty, usable baseline, with
 * FD teardown edges suppressed by the kernel-ready guard.
 */

#ifndef CHERI_OS_SNAPSHOT_SNAPSHOT_H
#define CHERI_OS_SNAPSHOT_SNAPSHOT_H

#include <string>
#include <vector>

#include "cap/types.h"

namespace cheri
{

class Kernel;

namespace snap
{

/** The friend-access seam: defined in snapshot.cc only. */
struct Access;

/** Image format version (bumped on any layout change).
 *  v2: DeathInfo::deadlock, Kernel::HardeningStats, and the metrics
 *  hardening mirror (the watchdog / structured-panic / machine-check
 *  counters). */
constexpr u32 imageVersion = 2;

/**
 * Serialize @p kern's complete state.  Returns the image, or an empty
 * vector with @p error (nullable) set when the kernel holds state a
 * snapshot cannot capture (see the file comment).
 */
std::vector<u8> save(Kernel &kern, std::string *error = nullptr);

/**
 * Replace @p kern's state with the image's.  Returns true on success;
 * on failure (truncated/corrupt image, version mismatch) returns false
 * with @p error set and @p kern reset to an empty, usable baseline —
 * never a host abort, never a half-restored kernel.
 *
 * The kernel's environment (trace sink, metrics registry, check hook)
 * is preserved across restore; the image's metrics section is loaded
 * into the attached registry when one is present.
 */
bool restore(Kernel &kern, const std::vector<u8> &image,
             std::string *error = nullptr);

/** Test hook: flip the kernel-ready guard that suppresses FD wake
 *  edges during restore (see Kernel::fireFdEdge). */
void setKernelReadyForTest(Kernel &kern, bool ready);

/**
 * Wire snap::save into @p kern's structured-panic path, so a
 * CHERI_KASSERT failure emits a CHRIIMG1 image (Kernel::panicImage)
 * alongside the JSON panic report.  Layering: the core kernel library
 * cannot link the snapshot writer, so the capturer is injected from
 * above.  A capture that fails (unsnapshottable state, or a second
 * fault inside the walk) degrades to an empty image — never an abort.
 */
void installPanicSnapshotHook(Kernel &kern);

} // namespace snap
} // namespace cheri

#endif // CHERI_OS_SNAPSHOT_SNAPSHOT_H
