#include "os/kernel.h"

#include "obs/json.h"
#include "obs/metrics.h"
#include "os/coredump.h"

#include <algorithm>
#include <cstring>

namespace cheri
{

u32
protToPerms(u32 prot)
{
    u32 perms = PERM_GLOBAL;
    if (prot & PROT_READ)
        perms |= PERM_LOAD | PERM_LOAD_CAP;
    if (prot & PROT_WRITE)
        perms |= PERM_STORE | PERM_STORE_CAP | PERM_STORE_LOCAL_CAP;
    if (prot & PROT_EXEC)
        perms |= PERM_EXECUTE;
    return perms;
}

Kernel::Kernel(KernelConfig cfg)
    : cfg(cfg), swap(cfg.swapPolicy)
{
    phys.setCapacity(cfg.frameCapacity);
    swap.setSlotBudget(cfg.swapSlotBudget);
    phys.setFaultInjector(&injector);
    swap.setFaultInjector(&injector);
    // Allocation pressure flows back into the kernel: evict LRU pages
    // across processes, escalating to OOM kill when swap is full.
    phys.setReclaimHook([this](u64 wanted, const void *requester) {
        return reclaimFrames(wanted, requester);
    });
    recorder.setDepth(cfg.flightRecorderDepth);
    // Injector decisions that fire land in the flight recorder;
    // declined probes are one-per-access and carry no diagnostic
    // weight, so they are not retained.
    injector.setObserver([this](FaultPoint point, bool fired) {
        if (fired)
            recorder.record(panic::EventKind::FaultDecision,
                            static_cast<u64>(point), 1);
    });
    // Injected memory corruption is *detected* at these hooks and
    // degraded to a counted machine check — never a forged capability,
    // never a host abort.
    phys.setCorruptionHook([this](FaultPoint point, u64 va) {
        noteMachineCheck(point, va);
    });
    swap.setCorruptionHook([this](FaultPoint point, u64 slot) {
        noteMachineCheck(point, slot);
    });
    registerDefaultRevocationScans(*this);
    initVfs();
    // Registered last, after every subsystem is whole: this kernel now
    // owns CHERI_KASSERT failures for its lifetime (innermost wins).
    panic::pushSink(this);
}

Kernel::~Kernel()
{
    panic::popSink(this);
}

void
Kernel::initVfs()
{
    fs.mkdir("/tmp");
    fs.mkdir("/etc");
    fs.mkdir("/home");
    auto motd = fs.createFile("/etc/motd");
    const char msg[] = "MiniBSD (CheriABI reproduction kernel)\n";
    motd->data.assign(msg, msg + sizeof(msg) - 1);
}

u64
Kernel::reclaimFrames(u64 wanted, const void *requester)
{
    // LRU pass over every live process.  The requester's own space is
    // fair game for eviction — pages pinned by its in-flight fault are
    // not evictable — but exempt from OOM kill below: its page table is
    // being walked right now.
    u64 freed = 0;
    for (auto &[pid, p] : procs) {
        if (freed >= wanted)
            break;
        if (p->exited())
            continue;
        freed += p->as().swapOutResident(wanted - freed);
    }
    ++pressure.reclaimPasses;
    pressure.pagesReclaimed += freed;
    if (mx)
        mx->recordReclaim(freed);
    if (freed >= wanted)
        return freed;
    // Eviction could not keep up (swap full, or everything left is
    // shared/pinned): kill the largest process and take its memory.
    Process *victim = nullptr;
    u64 victim_size = 0;
    for (auto &[pid, p] : procs) {
        if (p->exited() || &p->as() == requester)
            continue;
        u64 size = p->as().residentPages() + p->as().swappedPages();
        if (size > victim_size) {
            victim_size = size;
            victim = p.get();
        }
    }
    if (victim) {
        // Count only frames the kill actually returned: the victim's
        // swapped pages free slots (not frames), and COW/shared frames
        // survive through their other references.
        u64 before = phys.liveFrames();
        oomKill(*victim);
        freed += before - phys.liveFrames();
    }
    return freed;
}

void
Kernel::oomKill(Process &victim)
{
    ++pressure.oomKills;
    if (mx) {
        mx->recordOomKill();
        mx->recordFault(CapFault::MemoryExhausted,
                        victim.regs().pcc.address(), 0, nullptr,
                        victim.abi());
    }
    DeathInfo di;
    di.signal = SIG_KILL;
    di.fault = CapFault::MemoryExhausted;
    di.detail = "out of memory (oom-killed)";
    victim.die(di);
    // An open revocation epoch dies with the address space it was
    // sweeping; it never closes (nothing was proven revoked).
    abortRevocationEpoch(victim);
    victim.closeAllFds(); // fires channel wake edges (EOF/EPIPE)
    // Reclaim everything immediately — frames and swap slots — rather
    // than waiting for the zombie to be reaped.
    victim.as().releaseAll();
    if (Process *parent = findProcess(victim.ppid()))
        parent->raiseSignal(SIG_CHLD);
    if (schedIface)
        schedIface->onProcessDead(victim);
}

SysResult
Kernel::failNoMem()
{
    ++pressure.enomemErrors;
    if (mx)
        mx->recordEnomem();
    return SysResult::fail(E_NOMEM);
}

Process *
Kernel::spawn(Abi abi, const std::string &name)
{
    u64 pid = nextPid++;
    auto as = std::make_unique<AddressSpace>(
        phys, swap, newPrincipal(), cfg.capFormat,
        cfg.aslrSeed ? cfg.aslrSeed + pid : 0);
    auto proc = std::make_unique<Process>(*this, pid, 0, abi, name,
                                          std::move(as), cfg.features);
    Process *p = proc.get();
    p->mem().setCounterBlock(mx ? mx->tlbCounterBlock(abi) : nullptr);
    procs.emplace(pid, std::move(proc));
    return p;
}

void
Kernel::setMetrics(obs::Metrics *m)
{
    mx = m;
    for (auto &[pid, p] : procs) {
        p->mem().setCounterBlock(mx ? mx->tlbCounterBlock(p->abi())
                                    : nullptr);
    }
}

Process *
Kernel::fork(Process &parent)
{
    // Admission check before duplicating anything: forkCopy itself only
    // shares frames (COW), but a child that cannot fault in a single
    // page is doomed, so fail the fork up front with ENOMEM instead.
    if (!phys.canAlloc(1, &parent.as())) {
        failNoMem();
        return nullptr;
    }
    u64 pid = nextPid++;
    auto as = parent.as().forkCopy(newPrincipal());
    auto child = std::make_unique<Process>(*this, pid, parent.pid(),
                                           parent.abi(), parent.name(),
                                           std::move(as), cfg.features);
    Process *c = child.get();
    c->mem().setCounterBlock(mx ? mx->tlbCounterBlock(c->abi())
                                : nullptr);
    procs.emplace(pid, std::move(child));
    // The child starts as an exact register-state copy: capabilities in
    // registers survive fork architecturally (tags included).
    c->regs() = parent.regs();
    parent.cloneFdsInto(*c);
    c->sigActions = parent.sigActions;
    c->handlers = parent.handlers;
    c->image = parent.image;
    c->stackCap = parent.stackCap;
    c->argvCap = parent.argvCap;
    c->envvCap = parent.envvCap;
    c->auxvCap = parent.auxvCap;
    c->trampolineCap = parent.trampolineCap;
    c->argc = parent.argc;
    c->envc = parent.envc;
    // Cost: trap + pmap duplication work proportional to the number of
    // mappings, plus saving the (ABI-width) register file for the child.
    chargeSyscall(parent, 0);
    u64 n_mappings = 0;
    parent.as().forEachMapping([&](const Mapping &) { ++n_mappings; });
    parent.cost().alu(40 * n_mappings);
    parent.cost().contextSwitch();
    // Under an active scheduler a fork from an interpreted guest admits
    // the child to the run queue (the scheduler fixes up its PC and
    // return registers, which were copied pre-writeback).
    if (schedIface)
        schedIface->onFork(*c);
    return c;
}

Process *
Kernel::findProcess(u64 pid)
{
    auto it = procs.find(pid);
    return it == procs.end() ? nullptr : it->second.get();
}

void
Kernel::forEachProcess(const std::function<void(const Process &)> &fn) const
{
    for (const auto &[pid, p] : procs)
        fn(*p);
}

void
Kernel::forEachShmFrame(
    const std::function<void(const FrameRef &)> &fn) const
{
    for (const auto &[id, seg] : shmSegments)
        for (const auto &frame : seg.frames)
            fn(frame);
}

SysResult
Kernel::wait4(Process &parent, u64 pid)
{
    bool live_children = false;
    for (auto it = procs.begin(); it != procs.end(); ++it) {
        Process &p = *it->second;
        if (p.ppid() != parent.pid())
            continue;
        if (pid != 0 && p.pid() != pid)
            continue;
        if (!p.exited()) {
            live_children = true;
            continue;
        }
        u64 dead = p.pid();
        // A watchdog-killed child still gets reaped (the zombie is
        // gone), but the reap reports E_DEADLK so the parent learns the
        // wait-for cycle was broken on its behalf.
        bool deadlocked = p.death() && p.death()->deadlock;
        if (schedIface)
            schedIface->onProcessReaped(dead);
        procs.erase(it);
        return deadlocked ? SysResult::fail(E_DEADLK)
                          : SysResult::ok(dead);
    }
    // No zombie yet, but the wait could still succeed: when the caller
    // is an interpreted context under the scheduler, truly block until
    // a child's exit wakes us (the syscall restarts and reaps then).
    // Hosted and scheduler-less callers keep the historical
    // non-blocking E_CHILD poll.
    if (live_children && schedIface &&
        schedIface->blockCurrent(parent, BlockKind::Wait4, pid, true))
        return SysResult::fail(E_INTR);
    return SysResult::fail(E_CHILD);
}

void
Kernel::exitProcess(Process &proc, int status)
{
    proc.exit(status);
    abortRevocationEpoch(proc);
    // Close the file table now, not at reap: an exiting writer must
    // EOF its pipes immediately (waking blocked readers), and an
    // exiting reader must break them (waking blocked writers).
    proc.closeAllFds();
    // Eager teardown: a zombie keeps its pid and exit status for wait4,
    // but its frames and swap slots go back to the pools immediately so
    // memory pressure is relieved without waiting for the reap.
    proc.as().releaseAll();
    if (Process *parent = findProcess(proc.ppid()))
        parent->raiseSignal(SIG_CHLD);
    // The wake-up edge for blocking wait4: retire the dead process's
    // contexts and move any parent blocked in wait4 back to the run
    // queue.
    if (schedIface)
        schedIface->onProcessDead(proc);
}

void
Kernel::faultProcess(Process &proc, const DeathInfo &info)
{
    // A capability fault becomes SIG_PROT; a handler may catch it,
    // otherwise the process dies with the fault recorded.
    if (mx && info.fault != CapFault::None) {
        mx->recordFault(info.fault, proc.regs().pcc.address(),
                        info.faultAddr,
                        info.faultCapKnown ? &info.faultCap : nullptr,
                        proc.abi());
    }
    SigAction &act = proc.sigaction(info.signal ? info.signal : SIG_PROT);
    DeathInfo di = info;
    if (di.signal == 0)
        di.signal = SIG_PROT;
    if (act.kind == SigAction::Kind::Handler) {
        proc.raiseSignal(di.signal);
        deliverSignals(proc);
        return;
    }
    proc.die(di);
    abortRevocationEpoch(proc);
    proc.closeAllFds(); // fires channel wake edges (EOF/EPIPE)
    // Post-mortem: dump the capability register file and memory map
    // (paper section 4: register values are stored in core dumps).
    std::string core_path = "/cores/" + proc.name() + "." +
                            std::to_string(proc.pid()) + ".core";
    if (VNodeRef node = fs.createFile(core_path))
        writeCoreFile(proc, *node);
    // Release only after the core dump: writing it reads guest memory.
    proc.as().releaseAll();
    if (Process *parent = findProcess(proc.ppid()))
        parent->raiseSignal(SIG_CHLD);
    if (schedIface)
        schedIface->onProcessDead(proc);
}

void
Kernel::contextSwitchTo(Process &proc)
{
    ++switches;
    proc.cost().contextSwitch();
}

void
Kernel::chargeSyscall(Process &proc, u64 n_ptr_args)
{
    // Every syscall entry — dispatched or direct — is guest activity
    // on the quiescent clock; see quiescentCount().
    ++quiescentSeq;
    proc.cost().syscall(n_ptr_args);
}

int
Kernel::checkUserPtr(Process &proc, const UserPtr &ptr, u64 len, u32 perms)
{
    if (proc.abi() == Abi::CheriAbi) {
        // Figure 3: the kernel acts only through the user's capability.
        // The non-capability path is an error for CheriABI processes.
        if (!ptr.isCap)
            return E_PROT;
        CapCheck chk = ptr.cap.checkAccess(ptr.addr(), len, perms);
        if (chk.has_value())
            return E_PROT;
        proc.cost().capManip(2); // tag/bounds validation
        return E_OK;
    }
    if (proc.abi() == Abi::Hybrid && ptr.isCap) {
        // A __capability-annotated argument from a hybrid process is
        // honored exactly as under CheriABI.
        CapCheck chk = ptr.cap.checkAccess(ptr.addr(), len, perms);
        if (chk.has_value())
            return E_PROT;
        proc.cost().capManip(2);
        return E_OK;
    }
    // Legacy path: the kernel constructs authority from the process's
    // address-space capability (expensive, per the cost model).
    CapCheck chk = proc.ddc().checkAccess(ptr.addr(), len, perms);
    if (chk.has_value())
        return E_FAULT;
    return E_OK;
}

int
Kernel::copyin(Process &proc, const UserPtr &src, void *dst, u64 len)
{
    if (len == 0)
        return E_OK;
    int err = checkUserPtr(proc, src, len, PERM_LOAD);
    if (err)
        return err;
    proc.cost().copyLoop(src.addr(), 0xC000000000 + src.addr(), len);
    CapCheck fault = proc.mem().read(src.addr(), dst, len);
    return fault.has_value() ? E_FAULT : E_OK;
}

int
Kernel::copyout(Process &proc, const void *src, const UserPtr &dst,
                u64 len)
{
    if (len == 0)
        return E_OK;
    int err = checkUserPtr(proc, dst, len, PERM_STORE);
    if (err)
        return err;
    proc.cost().copyLoop(0xC000000000 + dst.addr(), dst.addr(), len);
    // Byte writes clear tags on every granule they touch: ordinary
    // copyout can never leak a tagged kernel capability to userspace.
    CapCheck fault = proc.mem().write(dst.addr(), src, len);
    return fault.has_value() ? E_FAULT : E_OK;
}

int
Kernel::copyinstr(Process &proc, const UserPtr &src, std::string *out,
                  u64 max)
{
    out->clear();
    if (max == 0)
        return E_RANGE;
    u64 addr = src.addr();
    // Validate the pointer once and derive the scan window from its
    // authority, instead of re-checking (and re-walking) per byte: a
    // NUL inside the window succeeds no matter what lies beyond it.
    int err = checkUserPtr(proc, src, 1, PERM_LOAD);
    if (err)
        return err;
    const bool cap_authority =
        proc.abi() == Abi::CheriAbi ||
        (proc.abi() == Abi::Hybrid && src.isCap);
    u64 limit = cap_authority ? src.cap.top() : proc.ddc().top();
    u64 window = std::min(max, limit - addr);
    u64 scanned = 0;
    MemAccess::StrRead r =
        proc.mem().readString(addr, out, window, &scanned);
    // Modelled cost: the kernel's strlen-style loop still touches every
    // byte it examined, one load each.
    for (u64 i = 0; i < scanned; ++i)
        proc.cost().load(addr + i, 1);
    switch (r) {
      case MemAccess::StrRead::Ok:
        return E_OK;
      case MemAccess::StrRead::Fault:
        return E_FAULT;
      case MemAccess::StrRead::TooLong:
        break;
    }
    if (window < max) {
        // The string ran off the end of the caller's authority before
        // hitting max: the per-byte path would have faulted on the
        // check at the clamp point.
        return cap_authority ? E_PROT : E_FAULT;
    }
    return E_RANGE;
}

int
Kernel::copyincap(Process &proc, const UserPtr &src, Capability *out)
{
    if (proc.abi() == Abi::CheriAbi) {
        int err = checkUserPtr(proc, src, capSize,
                               PERM_LOAD | PERM_LOAD_CAP);
        if (err)
            return err;
        Result<Capability> r = proc.mem().readCap(src.addr());
        if (!r.ok())
            return r.fault() == CapFault::AlignmentViolation ? E_INVAL
                                                             : E_FAULT;
        proc.cost().load(src.addr(), capSize);
        *out = r.value();
        // The kernel now holds a user capability in its own structures.
        if (traceSink && out->tag())
            traceSink->derive(DeriveSource::Kern, *out);
        return E_OK;
    }
    // Legacy ABI: the "pointer" in memory is an 8-byte integer.
    u64 addr = 0;
    int err = copyin(proc, src, &addr, 8);
    if (err)
        return err;
    *out = Capability::fromAddress(addr);
    return E_OK;
}

int
Kernel::copyoutcap(Process &proc, const Capability &cap,
                   const UserPtr &dst)
{
    if (proc.abi() == Abi::CheriAbi) {
        int err = checkUserPtr(proc, dst, capSize,
                               PERM_STORE | PERM_STORE_CAP);
        if (err)
            return err;
        CapCheck fault = proc.mem().writeCap(dst.addr(), cap);
        if (fault.has_value())
            return E_FAULT;
        proc.cost().store(dst.addr(), capSize);
        return E_OK;
    }
    u64 addr = cap.address();
    return copyout(proc, &addr, dst, 8);
}

SysResult
Kernel::sysGetpid(Process &proc)
{
    chargeSyscall(proc, 0);
    return SysResult::ok(proc.pid());
}

SysResult
Kernel::sysGetppid(Process &proc)
{
    chargeSyscall(proc, 0);
    return SysResult::ok(proc.ppid());
}

SysResult
Kernel::sysSbrk(Process &proc, s64 delta)
{
    chargeSyscall(proc, 0);
    if (proc.abi() == Abi::CheriAbi) {
        // Excluded as a matter of principle (paper section 4): sbrk's
        // contiguous-heap contract cannot mint sound capabilities.
        return SysResult::fail(E_NOSYS);
    }
    // Legacy mips64 keeps a classic brk, backed by a fixed reservation.
    if (proc.brkBase == 0) {
        if (!phys.canAlloc(1, &proc.as()))
            return failNoMem();
        u64 reserve = 16 * 1024 * 1024;
        u64 base = proc.as().map(0, reserve, PROT_READ | PROT_WRITE,
                                 MappingKind::Heap, false, false, "brk");
        if (base == 0)
            return failNoMem();
        proc.brkBase = base;
        proc.brkCur = base;
        proc.brkLimit = base + reserve;
    }
    u64 old_brk = proc.brkCur;
    if (delta > 0 &&
        proc.brkCur + static_cast<u64>(delta) > proc.brkLimit) {
        return failNoMem();
    }
    // Growing the break promises demand-zero pages the process will
    // touch next; probe (and if needed reclaim) one frame now so the
    // failure is a clean ENOMEM here rather than a fault at first use.
    if (delta > 0 && !phys.canAlloc(1, &proc.as()))
        return failNoMem();
    if (delta < 0 &&
        static_cast<u64>(-delta) > proc.brkCur - proc.brkBase) {
        return SysResult::fail(E_INVAL);
    }
    proc.brkCur += static_cast<u64>(delta);
    return SysResult::ok(old_brk);
}

void
Kernel::forEachKeventUdata(u64 pid,
                           const std::function<void(Capability &)> &fn)
{
    auto kq = kqueues.find(pid);
    if (kq == kqueues.end())
        return;
    for (KEvent &ev : kq->second)
        fn(ev.udata);
}

void
Kernel::forEachKeventUdata(
    u64 pid, const std::function<void(const Capability &)> &fn) const
{
    auto kq = kqueues.find(pid);
    if (kq == kqueues.end())
        return;
    for (const KEvent &ev : kq->second)
        fn(ev.udata);
}

SysResult
Kernel::sysOtypeAlloc(Process &proc, u64 count, Capability *out)
{
    chargeSyscall(proc, 0);
    if (count == 0 || nextOtype + count > otypeMax)
        return SysResult::fail(E_NOMEM);
    u64 base = nextOtype;
    nextOtype += count;
    // The sealing authority is a capability over the otype range with
    // only the sealing permissions: it cannot touch memory at all.
    Capability root = Capability::root(cfg.capFormat);
    Result<Capability> bounded = root.setAddress(base).setBounds(count);
    if (!bounded.ok())
        return SysResult::fail(E_NOMEM);
    Result<Capability> perms =
        bounded.value().andPerms(PERM_GLOBAL | PERM_SEAL | PERM_UNSEAL);
    if (!perms.ok())
        return SysResult::fail(E_NOMEM);
    *out = perms.value();
    proc.cost().capManip(3);
    if (traceSink)
        traceSink->derive(DeriveSource::Syscall, *out);
    return SysResult::ok(base);
}

void
Kernel::installScheduler(std::unique_ptr<SchedulerIface> s)
{
    ownedSched = std::move(s);
    schedIface = ownedSched.get();
}

void
Kernel::fireFdEdge(u64 chan)
{
    // While a snapshot restore is rebuilding kernel state the scheduler
    // may be half-built (or already populated with restored contexts
    // whose wake accounting must not move): teardown paths that close
    // FDs — restore-abort's closeAllFds in particular — must not fire
    // wake edges until the kernel is whole again.
    if (!kernelReady || !schedIface || chan == 0)
        return;
    u64 woken = schedIface->onFdWake(chan);
    if (!woken)
        return;
    recorder.record(panic::EventKind::WakeEdge, chan, woken);
    fdStats.wakes += woken;
    if (mx)
        mx->recordFdWake(woken);
}

void
Kernel::backgroundTick(Process &proc)
{
    if (proc.exited())
        return;
    // Drain any open revocation epoch one slice at a time, so a sweep
    // makes progress across scheduler slices even when the guest never
    // re-enters the kernel.
    pumpRevocation(proc);
    // Proactive reclaim at the frame-budget ceiling: evict one LRU page
    // on the running process's behalf before the next allocation is
    // forced to.  The requester exemption keeps the running process
    // safe from its own background pass's OOM escalation.
    if (cfg.frameCapacity && phys.liveFrames() >= cfg.frameCapacity)
        reclaimFrames(1, &proc.as());
}

SysResult
Kernel::sysEvPost(Process &proc, u64 pid)
{
    chargeSyscall(proc, 0);
    u64 target = pid == 0 ? proc.pid() : pid;
    Process *p = findProcess(target);
    if (!p || p->exited())
        return SysResult::fail(E_SRCH);
    u64 &count = eventCounts[target];
    ++count;
    if (schedIface)
        schedIface->onEventPost(target);
    return SysResult::ok(count);
}

SysResult
Kernel::sysEvWait(Process &proc)
{
    chargeSyscall(proc, 0);
    auto it = eventCounts.find(proc.pid());
    if (it != eventCounts.end() && it->second > 0) {
        --it->second;
        return SysResult::ok(it->second);
    }
    // Nothing posted: block until ev_post wakes us and the restarted
    // syscall consumes the event.  Without a scheduler (or from a
    // hosted context) the wait would never end — report would-block.
    if (schedIface && schedIface->blockCurrent(proc, BlockKind::EventWait,
                                               proc.pid(), true))
        return SysResult::fail(E_INTR);
    return SysResult::fail(E_BUSY);
}

SysResult
Kernel::sysSleep(Process &proc, u64 ticks)
{
    chargeSyscall(proc, 0);
    if (ticks == 0)
        return SysResult::ok();
    // Success registers are written before the block takes effect, and
    // the PC is NOT rewound on wake (restart=false): re-running the
    // syscall would re-arm the deadline forever.
    if (schedIface &&
        schedIface->blockCurrent(proc, BlockKind::Sleep, ticks, false))
        return SysResult::ok();
    // No virtual clock to wait on: sleep degenerates to a no-op.
    return SysResult::ok();
}

void
Kernel::runUntilIdle()
{
    if (!schedIface)
        return;
    try {
        schedIface->runUntilIdle();
    } catch (const panic::Unwind &) {
        // The concrete scheduler absorbs panics at its own drain loop;
        // this catch covers iface implementations that let one escape.
        // Either way the host never sees the exception.
        panicReset();
    }
}

void
Kernel::onKassert(const panic::KassertInfo &info)
{
    if (panicInProgress) {
        // The capture walk itself tripped another invariant (the state
        // is corrupt, after all): skip re-capture, just unwind.
        throw panic::Unwind{std::string("re-entrant panic: ") +
                            (info.expr ? info.expr : "?")};
    }
    panicInProgress = true;
    ++hardStats.panics;
    if (mx)
        mx->recordKernelPanic();
    recorder.record(panic::EventKind::Panic,
                    static_cast<u64>(info.line), lastDispatchCode,
                    quiescentSeq);
    lastPanicReport = buildPanicReport(info);
    lastPanicImage.clear();
    if (panicSnapHook) {
        // The snapshot walks the very state that just failed an
        // invariant; a capture failure degrades to an empty image, it
        // never replaces the panic with a host abort.
        try {
            lastPanicImage = panicSnapHook(*this);
        } catch (...) {
            lastPanicImage.clear();
        }
    }
    lastPanicValid = true;
    std::string reason = info.expr ? info.expr : "?";
    if (info.why && *info.why) {
        reason += ": ";
        reason += info.why;
    }
    throw panic::Unwind{std::move(reason)};
}

std::string
Kernel::buildPanicReport(const panic::KassertInfo &info) const
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value(std::string_view("cheri.panic.v1"));
    w.key("expr").value(std::string_view(info.expr ? info.expr : ""));
    w.key("why").value(std::string_view(info.why ? info.why : ""));
    w.key("file").value(std::string_view(info.file ? info.file : ""));
    w.key("line").value(static_cast<u64>(info.line));
    w.key("pid").value(lastDispatchPid);
    w.key("syscall").value(lastDispatchCode);
    w.key("quiescent_seq").value(quiescentSeq);
    w.key("panics").value(hardStats.panics);
    w.key("events_recorded").value(recorder.eventsRecorded());
    w.key("ring");
    w.beginArray();
    for (const panic::Event &e : recorder.entries()) {
        w.beginObject();
        w.key("seq").value(e.seq);
        w.key("kind").value(panic::eventKindName(e.kind));
        w.key("a").value(e.a);
        w.key("b").value(e.b);
        w.key("c").value(e.c);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

void
Kernel::panicReset()
{
    // Teardown must be immune to further kasserts: anything that fails
    // below has no second capture to corrupt.
    panicInProgress = true;
    const HardeningStats kept = hardStats;
    // Scheduler contexts reference Process objects; retire them before
    // the process table goes.
    if (schedIface)
        schedIface->resetForPanic();
    // Wake edges fired by dying channels must not reach the scheduler
    // while the tables are in flux.
    kernelReady = false;
    // Destroying an AddressSpace detaches its MemAccess listeners and
    // discards its swap slots, so clearing the table returns every
    // frame and slot to the pools.
    procs.clear();
    shmSegments.clear();
    kqueues.clear();
    attached.clear();
    revEpochs.clear();
    eventCounts.clear();
    pressure = {};
    fdStats = {};
    revStats = {};
    nextEpochId = 0;
    quiescentSeq = 0;
    nextPid = 1;
    nextPrincipal = 1;
    nextOtype = 1;
    nextShmId = 1;
    switches = 0;
    lastDispatchPid = 0;
    lastDispatchCode = ~u64{0};
    panicPlant = 0;
    injector.resetArms();
    phys.resetAccounting();
    swap.resetAccounting();
    fs = Vfs();
    initVfs();
    if (mx) {
        // The registry now mirrors an empty kernel — except for the
        // hardening counters, which deliberately survive the reset.
        mx->reset();
        mx->seedHardening(kept.panics, kept.deadlocksDetected,
                          kept.deadlocksKilled, kept.machineChecks);
    }
    hardStats = kept;
    // The flight recorder keeps rolling across the reset: its ring is
    // the postmortem trail of what led here.
    kernelReady = true;
    panicInProgress = false;
}

void
Kernel::noteMachineCheck(FaultPoint point, u64 addr)
{
    ++hardStats.machineChecks;
    if (mx)
        mx->recordMachineCheck();
    recorder.record(panic::EventKind::MachineCheck, addr,
                    static_cast<u64>(point));
}

std::vector<u64>
Kernel::fdWakerPids(u64 chan) const
{
    // The peer end of a pipe/pty edge: a context parked on a channel's
    // readWait token is woken by writes (or close) through the node
    // whose writeCh is that channel; one parked on writeWait by reads
    // through the node whose readCh is it.  Mere possession counts —
    // closing the descriptor fires the same edge.
    std::vector<u64> out;
    if (chan == 0)
        return out;
    for (const auto &[pid, p] : procs) {
        if (p->exited())
            continue;
        bool waker = false;
        for (const OpenFileRef &of : p->fds) {
            if (!of || !of->node)
                continue;
            if (of->node->writeCh &&
                of->node->writeCh->readWait == chan && of->writable())
                waker = true;
            if (of->node->readCh &&
                of->node->readCh->writeWait == chan && of->readable())
                waker = true;
        }
        if (waker)
            out.push_back(pid);
    }
    return out;
}

void
Kernel::noteDeadlockDetected(u64 stuck_contexts)
{
    ++hardStats.deadlocksDetected;
    if (mx)
        mx->recordDeadlockDetected();
    recorder.record(panic::EventKind::Watchdog, stuck_contexts, 0);
}

void
Kernel::deadlockKill(Process &victim, const std::string &why)
{
    ++hardStats.deadlocksKilled;
    if (mx)
        mx->recordDeadlockKill();
    recorder.record(panic::EventKind::Watchdog, 0, victim.pid());
    DeathInfo di;
    di.signal = SIG_KILL;
    di.deadlock = true;
    di.detail = why;
    victim.die(di);
    // Same teardown as an OOM kill: the epoch dies unsound, the file
    // table closes (firing the wake edges that unblock the rest of the
    // cycle), and memory goes back to the pools before the reap.
    abortRevocationEpoch(victim);
    victim.closeAllFds();
    victim.as().releaseAll();
    if (Process *parent = findProcess(victim.ppid()))
        parent->raiseSignal(SIG_CHLD);
    if (schedIface)
        schedIface->onProcessDead(victim);
}

SysResult
Kernel::sysSysctl(Process &proc, const std::string &name,
                  const UserPtr &oldp, u64 oldlen)
{
    chargeSyscall(proc, 1);
    if (name == "kern.ostype") {
        const char os[] = "MiniBSD";
        u64 n = std::min<u64>(oldlen, sizeof(os));
        int err = copyout(proc, os, oldp, n);
        return err ? SysResult::fail(err) : SysResult::ok(n);
    }
    if (name == "kern.text_addr") {
        // Management interfaces expose *virtual addresses*, never
        // kernel capabilities (paper section 4, "System calls").
        u64 va = proc.image.objects.empty()
                     ? 0
                     : proc.image.objects.front().textBase;
        if (oldlen < 8)
            return SysResult::fail(E_RANGE);
        int err = copyout(proc, &va, oldp, 8);
        return err ? SysResult::fail(err) : SysResult::ok(8);
    }
    return SysResult::fail(E_NOENT);
}

} // namespace cheri
