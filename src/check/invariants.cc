#include "check/invariants.h"

#include <array>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "cap/capability.h"
#include "obs/metrics.h"
#include "os/kernel.h"

namespace cheri::check
{

namespace
{

std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

/** Per-frame holders seen while sweeping the page tables. */
struct FrameUse
{
    u64 pteUsers = 0;
    u64 shmHolds = 0;
    /** PTE users not marked COW or shared (must be <= 1 per frame). */
    u64 exclusiveUsers = 0;
    /** shared_ptr use count observed at one of the holders. */
    long observedRefs = 0;
};

/** Sealing authorities cover otype space, not the address space; they
 *  are exempt from address-space containment. */
bool
isSealer(const Capability &cap)
{
    return (cap.perms() & (PERM_SEAL | PERM_UNSEAL)) != 0;
}

/**
 * Rule 1: the capability's bounds must survive CHERI-Concentrate
 * re-decompression exactly — a tagged capability whose bounds are not
 * representable could never have been produced by the architecture.
 */
bool
representable(const Capability &cap)
{
    if (cap.top() > u128{~u64{0}})
        return true; // whole-address-space root; always representable
    return compress::boundsExactlyRepresentable(cap.base(), cap.length(),
                                                cap.format());
}

/** Rules 1+2 for a register-file capability (bounds only: register
 *  files legitimately hold e.g. execute-permission code caps). */
void
checkRegCap(Report &r, const Process &proc, const char *where,
            const Capability &cap, const Capability &root)
{
    if (!cap.tag())
        return;
    ++r.capsChecked;
    if (!representable(cap)) {
        r.violations.push_back(
            {"cap-representability",
             fmt("pid %" PRIu64 " %s: %s", proc.pid(), where,
                 cap.toString().c_str())});
    }
    if (isSealer(cap))
        return;
    if (cap.base() < root.base() || cap.top() > root.top()) {
        r.violations.push_back(
            {"cap-containment",
             fmt("pid %" PRIu64 " %s: %s outside root %s", proc.pid(),
                 where, cap.toString().c_str(),
                 root.toString().c_str())});
    }
}

void
checkRegs(Report &r, const Process &proc, const char *ctx,
          const ThreadRegs &regs, const Capability &root)
{
    checkRegCap(r, proc, fmt("%s pcc", ctx).c_str(), regs.pcc, root);
    checkRegCap(r, proc, fmt("%s ddc", ctx).c_str(), regs.ddc, root);
    for (unsigned i = 0; i < numCapRegs; ++i) {
        checkRegCap(r, proc, fmt("%s c%u", ctx, i).c_str(), regs.c[i],
                    root);
    }
}

/** Rules 1-3 for every tagged capability resident in @p proc's
 *  memory — including signal frames, which live on the stack. */
void
checkMemoryCaps(Report &r, const Process &proc)
{
    const AddressSpace &as = proc.as();
    const Capability &root = as.rederivationRoot();
    as.forEachTaggedCap([&](u64 va, const Capability &cap) {
        ++r.capsChecked;
        if (!representable(cap)) {
            r.violations.push_back(
                {"cap-representability",
                 fmt("pid %" PRIu64 " mem @0x%" PRIx64 ": %s",
                     proc.pid(), va, cap.toString().c_str())});
            return;
        }
        if (isSealer(cap))
            return;
        bool contained = cap.base() >= root.base() &&
                         cap.top() <= root.top() &&
                         (cap.perms() & ~root.perms()) == 0;
        if (!contained) {
            r.violations.push_back(
                {"cap-containment",
                 fmt("pid %" PRIu64 " mem @0x%" PRIx64
                     ": %s outside root",
                     proc.pid(), va, cap.toString().c_str())});
            return;
        }
        if (cap.sealed())
            return; // CBuildCap round-trips unsealed patterns only
        auto rebuilt = Capability::build(root, cap.withoutTag());
        if (!rebuilt.ok() || !(rebuilt.value() == cap)) {
            r.violations.push_back(
                {"cap-derivation",
                 fmt("pid %" PRIu64 " mem @0x%" PRIx64
                     ": %s not rederivable from root",
                     proc.pid(), va, cap.toString().c_str())});
        }
    });
}

} // namespace

std::string
Report::toString() const
{
    std::string out;
    for (const Violation &v : violations) {
        out += v.rule;
        out += ": ";
        out += v.detail;
        out += "\n";
    }
    if (violations.empty())
        out = "ok\n";
    return out;
}

Report
Invariants::check(Kernel &kern)
{
    Report r;

    std::unordered_map<const Frame *, FrameUse> frames;
    std::unordered_map<u64, u64> slotRefs; // slot -> PTEs naming it

    kern.forEachProcess([&](const Process &proc) {
        ++r.processes;
        const Capability &root = proc.as().rederivationRoot();

        // Capability state: current register file, switched-out thread
        // contexts, and the startup capability slots (Figure 1).
        checkRegs(r, proc, "regs", proc.regs(), root);
        proc.forEachThread([&](const ThreadRecord &t) {
            checkRegs(r, proc, fmt("tid %" PRIu64, t.tid).c_str(),
                      t.saved, root);
            checkRegCap(r, proc, fmt("tid %" PRIu64 " stack", t.tid).c_str(),
                        t.stackCap, root);
        });
        checkRegCap(r, proc, "stackCap", proc.stackCap, root);
        checkRegCap(r, proc, "argvCap", proc.argvCap, root);
        checkRegCap(r, proc, "envvCap", proc.envvCap, root);
        checkRegCap(r, proc, "auxvCap", proc.auxvCap, root);
        checkRegCap(r, proc, "trampolineCap", proc.trampolineCap, root);

        checkMemoryCaps(r, proc);

        // Page tables: frame ownership and swap references.
        proc.as().forEachPte([&](const AddressSpace::PteView &pte) {
            ++r.pagesChecked;
            if (pte.frame && pte.swapped) {
                r.violations.push_back(
                    {"pte-resident-and-swapped",
                     fmt("pid %" PRIu64 " va 0x%" PRIx64
                         " holds both a frame and slot %" PRIu64,
                         proc.pid(), pte.va, pte.swapSlot)});
            }
            if (pte.frame) {
                FrameUse &u = frames[pte.frame];
                ++u.pteUsers;
                if (!pte.cow && !pte.shared)
                    ++u.exclusiveUsers;
                u.observedRefs = pte.frameRefs;
            } else if (pte.swapped) {
                ++slotRefs[pte.swapSlot];
            }
        });

        // Rule 7: a revocation epoch that closed at this exact
        // quiescent point promises absence — no tagged capability into
        // its ranges anywhere the kernel can see.  Only the close tick
        // itself is checked (the close bumps the quiescent clock, so
        // the window is exact for dispatched and direct entry paths
        // alike): afterwards the guest may legitimately re-derive into
        // the (now reusable) ranges.
        const RevocationEpoch *ep = kern.findRevocationEpoch(proc.pid());
        if (ep && !ep->open && ep->closeSeq != 0 &&
            ep->closeSeq == kern.quiescentCount() &&
            !ep->closedRanges.empty()) {
            auto survivor = [&](const char *where, u64 at,
                               const Capability &cap) {
                if (!cap.tag() ||
                    !capInSortedRanges(cap, ep->closedRanges))
                    return;
                r.violations.push_back(
                    {"revoked-cap-survives",
                     fmt("pid %" PRIu64 " %s @0x%" PRIx64
                         ": %s survived closed epoch %" PRIu64,
                         proc.pid(), where, at, cap.toString().c_str(),
                         ep->id)});
            };
            proc.as().forEachTaggedCap(
                [&](u64 va, const Capability &cap) {
                    survivor("mem", va, cap);
                });
            proc.as().forEachPte([&](const AddressSpace::PteView &pte) {
                if (!pte.swapped)
                    return;
                kern.swapDevice().forEachTaggedInSlot(
                    pte.swapSlot,
                    [&](u64 off, const Capability &pattern) {
                        survivor("swap", pte.va + off, pattern);
                    });
            });
            auto sweepRegs = [&](const char *where,
                                 const ThreadRegs &regs) {
                survivor(where, regs.pcc.address(), regs.pcc);
                survivor(where, regs.ddc.address(), regs.ddc);
                for (const Capability &c : regs.c)
                    survivor(where, c.address(), c);
            };
            sweepRegs("regs", proc.regs());
            proc.forEachThread([&](const ThreadRecord &t) {
                sweepRegs("thread-saved", t.saved);
                survivor("thread-stack", t.stackCap.address(),
                         t.stackCap);
            });
            for (const SigFrame *frame : proc.liveSigFrames)
                sweepRegs("sigframe", frame->saved);
            survivor("stackCap", proc.stackCap.address(), proc.stackCap);
            survivor("argvCap", proc.argvCap.address(), proc.argvCap);
            survivor("envvCap", proc.envvCap.address(), proc.envvCap);
            survivor("auxvCap", proc.auxvCap.address(), proc.auxvCap);
            survivor("trampolineCap", proc.trampolineCap.address(),
                     proc.trampolineCap);
            kern.forEachKeventUdata(
                proc.pid(), [&](const Capability &udata) {
                    survivor("kevent-udata", udata.address(), udata);
                });
        }
    });

    // SysV segments pin their frames independently of any mapping.
    kern.forEachShmFrame([&](const FrameRef &f) {
        FrameUse &u = frames[f.get()];
        ++u.shmHolds;
        u.observedRefs = f.use_count();
    });

    // Rule 4: frame ownership.
    for (const auto &[frame, use] : frames) {
        ++r.framesChecked;
        u64 holders = use.pteUsers + use.shmHolds;
        if (holders > 1 && use.exclusiveUsers > 0) {
            r.violations.push_back(
                {"frame-aliased-exclusively",
                 fmt("frame %p: %" PRIu64 " holders but %" PRIu64
                     " non-COW non-shared PTEs",
                     static_cast<const void *>(frame), holders,
                     use.exclusiveUsers)});
        }
        if (use.observedRefs != static_cast<long>(holders)) {
            r.violations.push_back(
                {"frame-refcount",
                 fmt("frame %p: use_count %ld but %" PRIu64
                     " holders visible",
                     static_cast<const void *>(frame), use.observedRefs,
                     holders)});
        }
    }
    if (frames.size() != kern.physMem().liveFrames()) {
        r.violations.push_back(
            {"frame-live-count",
             fmt("page tables + shm reference %zu frames, PhysMem "
                 "reports %" PRIu64 " live",
                 frames.size(), kern.physMem().liveFrames())});
    }

    // Rule 5: swap accounting, from both directions.
    const SwapDevice &swap = kern.swapDevice();
    for (const auto &[slot, refs] : slotRefs) {
        ++r.slotsChecked;
        u64 devRefs = swap.slotRefs(slot);
        if (devRefs != refs) {
            r.violations.push_back(
                {"slot-refcount",
                 fmt("slot %" PRIu64 ": device refcount %" PRIu64
                     " but %" PRIu64 " PTEs reference it",
                     slot, devRefs, refs)});
        }
    }
    swap.forEachSlot([&](u64 slot, u64 refs) {
        if (slotRefs.find(slot) == slotRefs.end()) {
            r.violations.push_back(
                {"slot-leaked",
                 fmt("slot %" PRIu64 " occupied (refs %" PRIu64
                     ") but no PTE references it",
                     slot, refs)});
        }
    });

    // Rule 6: machine-check containment.  Every injected memory
    // corruption (TagBitFlip, DataBitFlip) fires its detection hook
    // exactly once, so the kernel's machine-check count dominates the
    // injector's fired counts.  A shortfall means a corrupted granule
    // slipped past detection — the precursor to a forged capability.
    // (">=", not "==": the machine-check counter deliberately survives
    // the panic path's transactional reset while injector arms do not.)
    {
        FaultInjector &inj = kern.faultInjector();
        u64 corrupted = inj.injected(FaultPoint::TagBitFlip) +
                        inj.injected(FaultPoint::DataBitFlip);
        if (kern.hardeningStats().machineChecks < corrupted) {
            r.violations.push_back(
                {"machine-check-containment",
                 fmt("%" PRIu64 " corruption injections but only "
                     "%" PRIu64 " machine checks: corruption escaped "
                     "detection",
                     corrupted, kern.hardeningStats().machineChecks)});
        }
    }

    // Rule 7: the Metrics mirror must agree with the kernel's own
    // accounting, and cause counters with the recorded fault log.
    if (obs::Metrics *m = kern.metrics()) {
        const obs::PressureCounters &mp = m->pressure();
        const Kernel::MemPressureStats &kp = kern.memPressure();
        if (mp.reclaimPasses != kp.reclaimPasses ||
            mp.pagesReclaimed != kp.pagesReclaimed ||
            mp.oomKills != kp.oomKills ||
            mp.enomemErrors != kp.enomemErrors) {
            r.violations.push_back(
                {"metrics-pressure-mirror",
                 fmt("metrics (%" PRIu64 "/%" PRIu64 "/%" PRIu64
                     "/%" PRIu64 ") != kernel (%" PRIu64 "/%" PRIu64
                     "/%" PRIu64 "/%" PRIu64 ")",
                     mp.reclaimPasses, mp.pagesReclaimed, mp.oomKills,
                     mp.enomemErrors, kp.reclaimPasses,
                     kp.pagesReclaimed, kp.oomKills, kp.enomemErrors)});
        }
        const obs::RevocationCounters &mr = m->revocation();
        const Kernel::RevocationStats &kr = kern.revocationStats();
        if (mr.epochsOpened != kr.epochsOpened ||
            mr.epochsClosed != kr.epochsClosed ||
            mr.epochsAborted != kr.epochsAborted ||
            mr.pagesScanned != kr.pagesScanned ||
            mr.pagesSkippedClean != kr.pagesSkippedClean ||
            mr.granulesVisited != kr.granulesVisited ||
            mr.tagsRevoked != kr.tagsRevoked ||
            mr.incrementalSlices != kr.incrementalSlices ||
            mr.syncSweeps != kr.syncSweeps ||
            mr.cyclesInEpochs != kr.cyclesInEpochs) {
            r.violations.push_back(
                {"metrics-revocation-mirror",
                 fmt("metrics epochs %" PRIu64 "/%" PRIu64 "/%" PRIu64
                     " pages %" PRIu64 " tags %" PRIu64
                     " != kernel %" PRIu64 "/%" PRIu64 "/%" PRIu64
                     " pages %" PRIu64 " tags %" PRIu64,
                     mr.epochsOpened, mr.epochsClosed, mr.epochsAborted,
                     mr.pagesScanned, mr.tagsRevoked, kr.epochsOpened,
                     kr.epochsClosed, kr.epochsAborted, kr.pagesScanned,
                     kr.tagsRevoked)});
        }
        // Scheduler counters: the metrics mirror is updated at exactly
        // the same points as the scheduler's own SchedStats, so any
        // drift means a counting path was missed.
        if (const SchedStats *ks = kern.schedulerStats()) {
            const obs::SchedCounters &ms = m->sched();
            if (ms.contextSwitches != ks->contextSwitches ||
                ms.preemptions != ks->preemptions ||
                ms.slices != ks->slices ||
                ms.blocksWait4 != ks->blocksWait4 ||
                ms.blocksEvent != ks->blocksEvent ||
                ms.blocksSleep != ks->blocksSleep ||
                ms.blocksFd != ks->blocksFd ||
                ms.wakes != ks->wakes ||
                ms.maxRunQueueDepth != ks->maxRunQueueDepth ||
                ms.idleAdvances != ks->idleAdvances ||
                ms.stepsExecuted != ks->stepsExecuted) {
                r.violations.push_back(
                    {"metrics-sched-mirror",
                     fmt("metrics switches %" PRIu64 " preempts %" PRIu64
                         " slices %" PRIu64 " steps %" PRIu64
                         " != scheduler %" PRIu64 "/%" PRIu64 "/%" PRIu64
                         "/%" PRIu64,
                         ms.contextSwitches, ms.preemptions, ms.slices,
                         ms.stepsExecuted, ks->contextSwitches,
                         ks->preemptions, ks->slices,
                         ks->stepsExecuted)});
            }
        }
        // Blocking FD I/O counters: mirrored at the same points as the
        // kernel's FdIoStats (park, wake edge, E_AGAIN, EPIPE, partial
        // write, select timeout).
        {
            const obs::FdCounters &mf = m->fd();
            const Kernel::FdIoStats &kf = kern.fdIoStats();
            if (mf.blocks != kf.blocks || mf.wakes != kf.wakes ||
                mf.eagainErrors != kf.eagainErrors ||
                mf.epipeErrors != kf.epipeErrors ||
                mf.partialWrites != kf.partialWrites ||
                mf.selectTimeouts != kf.selectTimeouts) {
                r.violations.push_back(
                    {"metrics-fd-mirror",
                     fmt("metrics blocks %" PRIu64 " wakes %" PRIu64
                         " eagain %" PRIu64 " epipe %" PRIu64
                         " partial %" PRIu64 " timeouts %" PRIu64
                         " != kernel %" PRIu64 "/%" PRIu64 "/%" PRIu64
                         "/%" PRIu64 "/%" PRIu64 "/%" PRIu64,
                         mf.blocks, mf.wakes, mf.eagainErrors,
                         mf.epipeErrors, mf.partialWrites,
                         mf.selectTimeouts, kf.blocks, kf.wakes,
                         kf.eagainErrors, kf.epipeErrors,
                         kf.partialWrites, kf.selectTimeouts)});
            }
        }
        // Hardening counters: the panic / watchdog / machine-check
        // paths bump the kernel stat and the metrics mirror at the
        // same call sites; any drift means a path skipped one side.
        {
            const obs::HardeningCounters &mh = m->hardening();
            const Kernel::HardeningStats &kh = kern.hardeningStats();
            if (mh.panics != kh.panics ||
                mh.deadlocksDetected != kh.deadlocksDetected ||
                mh.deadlocksKilled != kh.deadlocksKilled ||
                mh.machineChecks != kh.machineChecks) {
                r.violations.push_back(
                    {"metrics-hardening-mirror",
                     fmt("metrics panics %" PRIu64 " deadlocks %" PRIu64
                         "/%" PRIu64 " mchecks %" PRIu64
                         " != kernel %" PRIu64 "/%" PRIu64 "/%" PRIu64
                         "/%" PRIu64,
                         mh.panics, mh.deadlocksDetected,
                         mh.deadlocksKilled, mh.machineChecks, kh.panics,
                         kh.deadlocksDetected, kh.deadlocksKilled,
                         kh.machineChecks)});
            }
        }
        std::array<u64, numCapFaults> logged{};
        for (const obs::FaultRecord &f : m->faults())
            ++logged[static_cast<unsigned>(f.cause)];
        for (unsigned c = 0; c < numCapFaults; ++c) {
            // The record log is capped; counters must dominate it.
            if (m->faultCount(static_cast<CapFault>(c)) < logged[c]) {
                r.violations.push_back(
                    {"metrics-fault-mirror",
                     fmt("cause %s: counter %" PRIu64
                         " < %" PRIu64 " recorded faults",
                         std::string(
                             capFaultName(static_cast<CapFault>(c)))
                             .c_str(),
                         m->faultCount(static_cast<CapFault>(c)),
                         logged[c])});
            }
        }
        m->recordOracleRun(r.violations.size());
    }

    return r;
}

} // namespace cheri::check
