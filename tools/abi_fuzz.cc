/**
 * @file
 * abi_fuzz — the differential ABI fuzzer CLI.
 *
 * Runs seeded random workloads under both the legacy mips64 and the
 * pure-capability CheriABI process environments and fails on any
 * behavioral divergence or kernel invariant violation (see
 * src/check/).  Fully deterministic: the seed comes from --seed or
 * CHERI_FUZZ_SEED, never the clock.
 *
 * Usage:
 *   abi_fuzz [--seed N] [--cases N] [--ops-per-case N] [--inject]
 *            [--check-every N] [--plant-slot-bug] [--multi-proc N]
 *            [--json]
 *
 * --multi-proc N runs each case as N (2-4) guest processes executing
 * generated programs concurrently under the kernel scheduler, with the
 * invariant oracle consulted at every slice boundary.
 *
 * Environment:
 *   CHERI_FUZZ_SEED          default seed when --seed is absent
 *   CHERI_TEST_FRAME_BUDGET  kernel frame capacity (constrained runs)
 *   CHERI_TEST_SLOT_BUDGET   swap slot budget (constrained runs)
 *
 * Exit status: 0 when every case agrees and the oracle is clean,
 * 1 on divergence/violation, 2 on usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/diff_fuzzer.h"

namespace
{

cheri::u64
envOr(const char *name, cheri::u64 dflt)
{
    const char *v = std::getenv(name);
    return v && *v ? std::strtoull(v, nullptr, 0) : dflt;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seed N] [--cases N] [--ops-per-case N] "
        "[--inject] [--check-every N] [--plant-slot-bug] "
        "[--multi-proc N] [--json]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    cheri::check::FuzzOptions opts;
    opts.seed = envOr("CHERI_FUZZ_SEED", 1);
    opts.cases = 100;
    opts.opsPerCase = 32;
    opts.checkEvery = 1;
    opts.frameCapacity = envOr("CHERI_TEST_FRAME_BUDGET", 0);
    opts.swapSlotBudget = envOr("CHERI_TEST_SLOT_BUDGET", 0);
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto numArg = [&](cheri::u64 *out) {
            if (i + 1 >= argc)
                return false;
            *out = std::strtoull(argv[++i], nullptr, 0);
            return true;
        };
        if (!std::strcmp(arg, "--seed")) {
            if (!numArg(&opts.seed))
                return usage(argv[0]);
        } else if (!std::strcmp(arg, "--cases")) {
            if (!numArg(&opts.cases))
                return usage(argv[0]);
        } else if (!std::strcmp(arg, "--ops-per-case")) {
            if (!numArg(&opts.opsPerCase))
                return usage(argv[0]);
        } else if (!std::strcmp(arg, "--check-every")) {
            if (!numArg(&opts.checkEvery))
                return usage(argv[0]);
        } else if (!std::strcmp(arg, "--inject")) {
            opts.inject = true;
        } else if (!std::strcmp(arg, "--multi-proc")) {
            if (!numArg(&opts.multiProc))
                return usage(argv[0]);
        } else if (!std::strcmp(arg, "--plant-slot-bug")) {
            opts.plantSlotBug = true;
        } else if (!std::strcmp(arg, "--json")) {
            json = true;
        } else {
            return usage(argv[0]);
        }
    }

    cheri::check::DiffFuzzer fuzzer(opts);
    cheri::check::FuzzReport rep = fuzzer.run();

    if (json)
        std::printf("%s\n", rep.toJson().c_str());
    else
        std::fputs(rep.summary().c_str(), stdout);
    return rep.ok() ? 0 : 1;
}
