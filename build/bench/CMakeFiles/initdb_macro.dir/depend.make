# Empty dependencies file for initdb_macro.
# This may be replaced when dependencies are built.
