file(REMOVE_RECURSE
  "CMakeFiles/test_vm_syscalls.dir/test_vm_syscalls.cc.o"
  "CMakeFiles/test_vm_syscalls.dir/test_vm_syscalls.cc.o.d"
  "test_vm_syscalls"
  "test_vm_syscalls.pdb"
  "test_vm_syscalls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
