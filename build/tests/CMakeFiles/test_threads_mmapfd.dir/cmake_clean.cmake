file(REMOVE_RECURSE
  "CMakeFiles/test_threads_mmapfd.dir/test_threads_mmapfd.cc.o"
  "CMakeFiles/test_threads_mmapfd.dir/test_threads_mmapfd.cc.o.d"
  "test_threads_mmapfd"
  "test_threads_mmapfd.pdb"
  "test_threads_mmapfd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threads_mmapfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
