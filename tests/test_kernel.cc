/**
 * @file
 * Kernel tests: process lifecycle, capability-mediated copyin/copyout
 * (Figure 3 semantics), file-descriptor syscalls, select, and the
 * management interfaces.
 */

#include <gtest/gtest.h>

#include "libc/cstring.h"
#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

class KernelBothAbis : public ::testing::TestWithParam<Abi>
{
  protected:
    GuestSystem sys{GetParam()};
    GuestContext &ctx() { return *sys.ctx; }
    Process &proc() { return *sys.proc; }
    Kernel &kern() { return sys.kern; }
};

TEST_P(KernelBothAbis, SpawnAssignsFreshPrincipals)
{
    Process *a = kern().spawn(GetParam(), "a");
    Process *b = kern().spawn(GetParam(), "b");
    EXPECT_NE(a->as().principal(), b->as().principal());
    EXPECT_NE(a->pid(), b->pid());
}

TEST_P(KernelBothAbis, CopyinRoundTrip)
{
    GuestPtr buf = ctx().mmap(pageSize);
    const char msg[] = "hello kernel";
    ctx().write(buf, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    ASSERT_EQ(kern().copyin(proc(), ctx().toUser(buf), out, sizeof(msg)),
              E_OK);
    EXPECT_STREQ(out, msg);
}

TEST_P(KernelBothAbis, CopyoutStripsTags)
{
    GuestPtr buf = ctx().mmap(pageSize);
    // Plant a valid capability in guest memory, then copyout over it.
    if (ctx().isCheri()) {
        ctx().storePtr(buf, 0, buf);
        EXPECT_TRUE(ctx().loadPtr(buf, 0).cap.tag());
    }
    u8 junk[capSize] = {1, 2, 3};
    ASSERT_EQ(kern().copyout(proc(), junk, ctx().toUser(buf), capSize),
              E_OK);
    if (ctx().isCheri()) {
        EXPECT_FALSE(ctx().loadPtr(buf, 0).cap.tag());
    }
}

TEST_P(KernelBothAbis, OpenWriteReadBack)
{
    s64 fd = ctx().open("/tmp/testfile", O_RDWR | O_CREAT);
    ASSERT_GE(fd, 0);
    GuestPtr buf = ctx().mmap(pageSize);
    const char data[] = "file contents 123";
    ctx().write(buf, data, sizeof(data));
    EXPECT_EQ(ctx().write(static_cast<int>(fd), buf, sizeof(data)),
              static_cast<s64>(sizeof(data)));
    ASSERT_EQ(kern().sysLseek(proc(), static_cast<int>(fd), 0, 0).error,
              E_OK);
    GuestPtr rbuf = ctx().mmap(pageSize);
    EXPECT_EQ(ctx().read(static_cast<int>(fd), rbuf, sizeof(data)),
              static_cast<s64>(sizeof(data)));
    EXPECT_EQ(ctx().readString(rbuf), data);
    EXPECT_EQ(ctx().close(static_cast<int>(fd)), E_OK);
}

TEST_P(KernelBothAbis, ReadIntoBadFdFails)
{
    GuestPtr buf = ctx().mmap(pageSize);
    EXPECT_EQ(ctx().read(42, buf, 8), -E_BADF);
}

TEST_P(KernelBothAbis, PipeCarriesData)
{
    int fds[2];
    ASSERT_EQ(kern().sysPipe(proc(), fds).error, E_OK);
    GuestPtr buf = ctx().mmap(pageSize);
    const char ping[] = "ping";
    ctx().write(buf, ping, sizeof(ping));
    EXPECT_EQ(ctx().write(fds[1], buf, sizeof(ping)),
              static_cast<s64>(sizeof(ping)));
    GuestPtr rbuf = ctx().mmap(pageSize);
    EXPECT_EQ(ctx().read(fds[0], rbuf, sizeof(ping)),
              static_cast<s64>(sizeof(ping)));
    EXPECT_EQ(ctx().readString(rbuf), ping);
}

TEST_P(KernelBothAbis, SelectReportsPipeReadiness)
{
    int fds[2];
    ASSERT_EQ(kern().sysPipe(proc(), fds).error, E_OK);
    GuestPtr sets = ctx().mmap(pageSize);
    GuestPtr rd = sets, wr = sets + 64, ex = sets + 128, tv = sets + 192;
    // Initially: read end not ready, write end ready.
    ctx().store<u64>(rd, 0, u64{1} << fds[0]);
    ctx().store<u64>(wr, 0, u64{1} << fds[1]);
    ctx().store<u64>(ex, 0, 0);
    s64 n = ctx().select(8, rd, wr, ex, tv);
    EXPECT_EQ(n, 1);
    EXPECT_EQ(ctx().load<u64>(rd), 0u);
    EXPECT_EQ(ctx().load<u64>(wr), u64{1} << fds[1]);
    // After writing, the read end becomes ready.
    GuestPtr buf = ctx().mmap(pageSize);
    ctx().store<u8>(buf, 0, 7);
    ASSERT_EQ(ctx().write(fds[1], buf, 1), 1);
    ctx().store<u64>(rd, 0, u64{1} << fds[0]);
    ctx().store<u64>(wr, 0, 0);
    n = ctx().select(8, rd, wr, ex, tv);
    EXPECT_EQ(n, 1);
    EXPECT_EQ(ctx().load<u64>(rd), u64{1} << fds[0]);
}

TEST_P(KernelBothAbis, ForkSharesFilesCowsMemory)
{
    s64 fd = ctx().open("/tmp/forkfile", O_RDWR | O_CREAT);
    ASSERT_GE(fd, 0);
    GuestPtr buf = ctx().mmap(pageSize);
    ctx().store<u64>(buf, 0, 0x1111);
    Process *child = kern().fork(proc());
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(child->ppid(), proc().pid());
    EXPECT_NE(child->as().principal(), proc().as().principal());
    // Shared open-file description: offsets move together.
    GuestContext cctx(kern(), *child);
    EXPECT_NE(child->fd(static_cast<int>(fd)), nullptr);
    // COW: child sees the parent value, writes are private.
    EXPECT_EQ(cctx.load<u64>(buf), 0x1111u);
    cctx.store<u64>(buf, 0, 0x2222);
    EXPECT_EQ(ctx().load<u64>(buf), 0x1111u);
    EXPECT_EQ(cctx.load<u64>(buf), 0x2222u);
}

TEST_P(KernelBothAbis, WaitReapsZombie)
{
    Process *child = kern().fork(proc());
    u64 cpid = child->pid();
    EXPECT_EQ(kern().wait4(proc(), 0).error, E_CHILD);
    kern().exitProcess(*child, 7);
    SysResult r = kern().wait4(proc(), 0);
    EXPECT_EQ(r.error, E_OK);
    EXPECT_EQ(r.value, cpid);
    EXPECT_EQ(kern().findProcess(cpid), nullptr);
}

TEST_P(KernelBothAbis, GetpidGetppid)
{
    EXPECT_EQ(kern().sysGetpid(proc()).value, proc().pid());
    Process *child = kern().fork(proc());
    EXPECT_EQ(kern().sysGetppid(*child).value, proc().pid());
}

TEST_P(KernelBothAbis, SbrkExcludedOnlyForCheriAbi)
{
    SysResult r = kern().sysSbrk(proc(), 4096);
    if (GetParam() == Abi::CheriAbi) {
        // Excluded as a matter of principle (paper section 4).
        EXPECT_EQ(r.error, E_NOSYS);
    } else {
        ASSERT_EQ(r.error, E_OK);
        u64 old_brk = r.value;
        SysResult r2 = kern().sysSbrk(proc(), 0);
        EXPECT_EQ(r2.value, old_brk + 4096);
        // The grown heap is usable.
        u8 b = 7;
        EXPECT_FALSE(proc().as().writeBytes(old_brk, &b, 1).has_value());
    }
}

TEST_P(KernelBothAbis, SysctlExposesAddressNotCapability)
{
    GuestPtr buf = ctx().mmap(pageSize);
    SysResult r = kern().sysSysctl(proc(), "kern.text_addr",
                                   ctx().toUser(buf), 8);
    ASSERT_EQ(r.error, E_OK);
    u64 addr = ctx().load<u64>(buf);
    EXPECT_EQ(addr, proc().image.objects.front().textBase);
    if (ctx().isCheri()) {
        // The 8-byte write cannot have planted a tagged capability.
        EXPECT_FALSE(ctx().loadPtr(buf, 0).cap.tag());
    }
}

TEST_P(KernelBothAbis, GetcwdChecksBufferLength)
{
    GuestPtr buf = ctx().mmap(pageSize);
    EXPECT_GT(ctx().getcwd(buf, 64), 0);
    EXPECT_EQ(ctx().getcwd(buf, 2), -E_RANGE);
}

TEST_P(KernelBothAbis, CopyinstrStopsAtNul)
{
    GuestPtr buf = ctx().mmap(pageSize);
    const char s[] = "abc";
    ctx().write(buf, s, sizeof(s));
    std::string out;
    EXPECT_EQ(kern().copyinstr(proc(), ctx().toUser(buf), &out), E_OK);
    EXPECT_EQ(out, "abc");
}

INSTANTIATE_TEST_SUITE_P(Abis, KernelBothAbis,
                         ::testing::Values(Abi::Mips64, Abi::CheriAbi),
                         [](const auto &info) {
                             return info.param == Abi::CheriAbi
                                        ? "cheriabi"
                                        : "mips64";
                         });

// --- CheriABI-specific enforcement ---

class KernelCheriAbi : public ::testing::Test
{
  protected:
    GuestSystem sys{Abi::CheriAbi};
    GuestContext &ctx() { return *sys.ctx; }
    Process &proc() { return *sys.proc; }
    Kernel &kern() { return sys.kern; }
};

TEST_F(KernelCheriAbi, NonCapabilityCopyinRejected)
{
    GuestPtr buf = ctx().mmap(pageSize);
    u8 out[8];
    // A legacy integer pointer reaching the CheriABI syscall layer is
    // refused outright (paper: non-capability copyin returns errors).
    EXPECT_EQ(kern().copyin(proc(), UserPtr::fromAddr(buf.addr()), out, 8),
              E_PROT);
    EXPECT_EQ(kern().copyout(proc(), out, UserPtr::fromAddr(buf.addr()), 8),
              E_PROT);
}

TEST_F(KernelCheriAbi, KernelHonorsUserBounds)
{
    GuestPtr buf = ctx().mmap(pageSize);
    // Hand the kernel a deliberately narrow capability; the kernel must
    // not write past it even though the page could absorb more.
    auto narrow = buf.cap.setBounds(8);
    ASSERT_TRUE(narrow.ok());
    u8 data[16] = {};
    EXPECT_EQ(kern().copyout(proc(), data,
                             UserPtr::fromCap(narrow.value()), 16),
              E_PROT);
    EXPECT_EQ(kern().copyout(proc(), data,
                             UserPtr::fromCap(narrow.value()), 8),
              E_OK);
}

TEST_F(KernelCheriAbi, KernelHonorsUserPerms)
{
    GuestPtr buf = ctx().mmap(pageSize);
    auto ro = buf.cap.andPerms(permsRoData);
    ASSERT_TRUE(ro.ok());
    u8 data[8] = {};
    EXPECT_EQ(kern().copyout(proc(), data, UserPtr::fromCap(ro.value()), 8),
              E_PROT);
    EXPECT_EQ(kern().copyin(proc(), UserPtr::fromCap(ro.value()), data, 8),
              E_OK);
}

TEST_F(KernelCheriAbi, UntaggedCapabilityRejected)
{
    GuestPtr buf = ctx().mmap(pageSize);
    u8 data[8] = {};
    EXPECT_EQ(kern().copyin(proc(),
                            UserPtr::fromCap(buf.cap.withoutTag()), data,
                            8),
              E_PROT);
}

TEST_F(KernelCheriAbi, WriteSyscallWithUndersizedBufferFails)
{
    // The ttyname/humanize_number bug class: syscall asked to touch
    // more bytes than the buffer capability covers.
    s64 fd = ctx().open("/tmp/f", O_RDWR | O_CREAT);
    ASSERT_GE(fd, 0);
    GuestPtr buf = ctx().mmap(pageSize);
    auto small = buf.cap.setBounds(4);
    ASSERT_TRUE(small.ok());
    SysResult r = kern().sysWrite(proc(), static_cast<int>(fd),
                                  UserPtr::fromCap(small.value()), 16);
    EXPECT_EQ(r.error, E_PROT);
}

TEST_F(KernelCheriAbi, DdcIsNull)
{
    EXPECT_FALSE(proc().ddc().tag());
    EXPECT_TRUE(proc().ddc().isNull());
}

TEST_F(KernelCheriAbi, LegacyProcessKeepsDdc)
{
    GuestSystem legacy(Abi::Mips64);
    EXPECT_TRUE(legacy.proc->ddc().tag());
    EXPECT_GE(legacy.proc->ddc().length(),
              AddressSpace::userTop - AddressSpace::userBase);
}

TEST_F(KernelCheriAbi, ContextSwitchPreservesCapRegisters)
{
    GuestPtr buf = ctx().mmap(pageSize);
    proc().regs().c[5] = buf.cap;
    kern().contextSwitchTo(proc());
    Process *other = kern().spawn(Abi::CheriAbi, "other");
    kern().contextSwitchTo(*other);
    kern().contextSwitchTo(proc());
    EXPECT_EQ(proc().regs().c[5], buf.cap);
    EXPECT_TRUE(proc().regs().c[5].tag());
    EXPECT_GE(kern().contextSwitches(), 3u);
}

} // namespace
} // namespace cheri
