/**
 * @file
 * Resource-exhaustion tests: ENOMEM from mmap/brk/fork/execve under
 * injected or real frame exhaustion, guest-visible faults from failed
 * swap-ins, LRU reclaim keeping constrained workloads alive, OOM-kill
 * of the largest process when swap fills, and swap-slot hygiene across
 * munmap, execve, and process exit.
 *
 * The constrained-workload budgets honour CHERI_TEST_FRAME_BUDGET and
 * CHERI_TEST_SLOT_BUDGET so CI can re-run the suite under different
 * memory pressure without a rebuild.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>

#include "obs/metrics.h"
#include "rng_util.h"
#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

u64
envOr(const char *name, u64 dflt)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 0) : dflt;
}

class PressureTest : public ::testing::Test
{
  protected:
    GuestSystem sys{Abi::CheriAbi};
    GuestContext &ctx() { return *sys.ctx; }
    Process &proc() { return *sys.proc; }
    Kernel &kern() { return sys.kern; }
    FaultInjector &inj() { return sys.kern.faultInjector(); }
};

// --- clean ENOMEM from the syscall layer ---------------------------------

TEST_F(PressureTest, MmapFailsEnomemOnInjectedExhaustion)
{
    inj().failAfter(FaultPoint::FrameAlloc, 1);
    UserPtr out;
    SysResult r = kern().sysMmap(proc(), UserPtr::null(), pageSize,
                                 PROT_READ | PROT_WRITE,
                                 MAP_ANON | MAP_PRIVATE, &out);
    EXPECT_EQ(r.error, E_NOMEM);
    EXPECT_EQ(kern().memPressure().enomemErrors, 1u);
    // Injector is one-shot: the retry succeeds.
    r = kern().sysMmap(proc(), UserPtr::null(), pageSize,
                       PROT_READ | PROT_WRITE, MAP_ANON | MAP_PRIVATE,
                       &out);
    EXPECT_EQ(r.error, E_OK);
}

TEST(PressureBrk, BrkFailsEnomemOnInjectedExhaustion)
{
    GuestSystem sys(Abi::Mips64); // sbrk is mips64-only
    sys.kern.faultInjector().failAfter(FaultPoint::FrameAlloc, 1);
    EXPECT_EQ(sys.kern.sysSbrk(*sys.proc, 4096).error, E_NOMEM);
    EXPECT_EQ(sys.kern.memPressure().enomemErrors, 1u);
    EXPECT_EQ(sys.kern.sysSbrk(*sys.proc, 4096).error, E_OK);
}

TEST_F(PressureTest, ForkFailsEnomemOnInjectedExhaustion)
{
    inj().failAfter(FaultPoint::FrameAlloc, 1);
    EXPECT_EQ(kern().fork(proc()), nullptr);
    EXPECT_EQ(kern().memPressure().enomemErrors, 1u);
    Process *child = kern().fork(proc());
    ASSERT_NE(child, nullptr);
    kern().exitProcess(*child, 0);
    EXPECT_EQ(kern().wait4(proc(), child->pid()).error, E_OK);
}

TEST_F(PressureTest, ExecveFailsEnomemAndLeavesProcessRunnable)
{
    inj().failAfter(FaultPoint::FrameAlloc, 1);
    EXPECT_EQ(kern().execve(proc(), sys.prog, {"testprog"}, {}),
              E_NOMEM);
    // The old image must be untouched: the process keeps running.
    EXPECT_GE(ctx().getpid(), 0);
}

// --- guest-visible faults, never host aborts -----------------------------

TEST_F(PressureTest, CopyinSwapInFailureIsEfaultAndRetries)
{
    GuestPtr buf = ctx().mmap(pageSize);
    const char msg[] = "survives the swap";
    ctx().write(buf, msg, sizeof(msg));
    ASSERT_TRUE(proc().as().swapOutPage(buf.addr() & ~(pageSize - 1)));
    u64 slots = kern().swapDevice().usedSlots();
    ASSERT_GE(slots, 1u);

    inj().failAfter(FaultPoint::SwapIn, 1);
    char out[sizeof(msg)] = {};
    EXPECT_EQ(kern().copyin(proc(), ctx().toUser(buf), out, sizeof(msg)),
              E_FAULT);
    EXPECT_EQ(kern().swapDevice().usedSlots(), slots)
        << "failed swap-in must keep the slot for retry";
    ASSERT_EQ(kern().copyin(proc(), ctx().toUser(buf), out, sizeof(msg)),
              E_OK);
    EXPECT_STREQ(out, msg);
}

TEST_F(PressureTest, CopyoutSwapInFailureIsEfault)
{
    GuestPtr buf = ctx().mmap(pageSize);
    u8 b = 1;
    ctx().write(buf, &b, 1);
    ASSERT_TRUE(proc().as().swapOutPage(buf.addr() & ~(pageSize - 1)));
    inj().failAfter(FaultPoint::SwapIn, 1);
    u8 junk[8] = {};
    EXPECT_EQ(kern().copyout(proc(), junk, ctx().toUser(buf), 8),
              E_FAULT);
    EXPECT_EQ(kern().copyout(proc(), junk, ctx().toUser(buf), 8), E_OK);
}

TEST_F(PressureTest, ExhaustedDemandZeroFaultsInsteadOfAborting)
{
    GuestPtr buf = ctx().mmap(pageSize);
    inj().failAfter(FaultPoint::FrameAlloc, 1);
    // The first touch of a demand-zero page needs a frame; exhaustion
    // must surface as a capability trap, not a host-side abort.
    EXPECT_THROW(ctx().load<u64>(buf), CapTrap);
    EXPECT_EQ(proc().as().lastWalkFault(), CapFault::MemoryExhausted);
    EXPECT_EQ(ctx().load<u64>(buf), 0u) << "retry succeeds";
}

// --- reclaim keeps constrained workloads alive ---------------------------

TEST_F(PressureTest, ReclaimSatisfiesConstrainedWorkload)
{
    PhysMem &phys = kern().physMem();
    SwapDevice &swapdev = kern().swapDevice();
    u64 booted = phys.liveFrames();
    u64 frame_budget = envOr("CHERI_TEST_FRAME_BUDGET", booted + 16);
    // The booted image is the floor: a budget below it would make the
    // working-set arithmetic meaningless (and starve the fixture).
    frame_budget = std::max(frame_budget, booted + 8);
    u64 slot_budget = envOr("CHERI_TEST_SLOT_BUDGET", 512);
    phys.setCapacity(frame_budget);
    swapdev.setSlotBudget(slot_budget);

    // Working set of 3x the headroom: only reclaim can service it.
    u64 pages = 3 * (frame_budget - booted);
    GuestPtr buf = ctx().mmap(pages * pageSize);
    for (u64 p = 0; p < pages; ++p) {
        ctx().store<u64>(buf, static_cast<s64>(p * pageSize), p ^ 0xABu);
        ASSERT_LE(phys.liveFrames(), frame_budget)
            << "frame budget breached at page " << p;
        ASSERT_LE(swapdev.usedSlots(), slot_budget);
    }
    for (u64 p = 0; p < pages; ++p) {
        ASSERT_EQ(ctx().load<u64>(buf, static_cast<s64>(p * pageSize)),
                  p ^ 0xABu)
            << "data lost across reclaim at page " << p;
        ASSERT_LE(phys.liveFrames(), frame_budget);
    }
    EXPECT_GT(kern().memPressure().reclaimPasses, 0u);
    EXPECT_GT(kern().memPressure().pagesReclaimed, 0u);
    EXPECT_EQ(kern().memPressure().oomKills, 0u)
        << "a swappable workload must survive without OOM kills";
}

// --- swap-full OOM kill --------------------------------------------------

TEST_F(PressureTest, SwapFullOomKillsLargestProcess)
{
    obs::Metrics m;
    kern().setMetrics(&m);
    // A second, bigger process: the designated victim.
    Process *big = kern().spawn(Abi::CheriAbi, "big");
    ASSERT_EQ(kern().execve(*big, sys.prog, {"big"}, {}), E_OK);
    GuestContext bctx(kern(), *big);
    GuestPtr bbuf = bctx.mmap(24 * pageSize);
    for (u64 p = 0; p < 24; ++p)
        bctx.store<u64>(bbuf, static_cast<s64>(p * pageSize), p);

    // Clamp memory almost shut: reclaim can only swap 2 pages, so the
    // next burst of demand-zero faults must fall back to the OOM killer.
    kern().physMem().setCapacity(kern().physMem().liveFrames() + 4);
    kern().swapDevice().setSlotBudget(2);

    GuestPtr buf = ctx().mmap(10 * pageSize);
    for (u64 p = 0; p < 10; ++p)
        ctx().store<u64>(buf, static_cast<s64>(p * pageSize), p);

    EXPECT_GE(kern().memPressure().oomKills, 1u);
    EXPECT_TRUE(big->exited()) << "the largest process is the victim";
    ASSERT_TRUE(big->death().has_value());
    EXPECT_EQ(big->death()->signal, SIG_KILL);
    EXPECT_EQ(big->death()->fault, CapFault::MemoryExhausted);
    EXPECT_FALSE(proc().exited())
        << "the requesting process must never be the victim";
    for (u64 p = 0; p < 10; ++p)
        EXPECT_EQ(ctx().load<u64>(buf, static_cast<s64>(p * pageSize)),
                  p);
    EXPECT_EQ(m.pressure().oomKills, kern().memPressure().oomKills);
    kern().setMetrics(nullptr);
}

// --- swap-slot hygiene ---------------------------------------------------

TEST_F(PressureTest, ExitWhileSwappedReturnsSlotsToBaseline)
{
    u64 baseline = kern().swapDevice().usedSlots();
    Process *child = kern().fork(proc());
    ASSERT_NE(child, nullptr);
    u64 va = child->as().map(0, 8 * pageSize, PROT_READ | PROT_WRITE,
                             MappingKind::Data);
    ASSERT_NE(va, 0u);
    u8 b = 1;
    for (u64 p = 0; p < 8; ++p)
        ASSERT_FALSE(child->as()
                         .writeBytes(va + p * pageSize, &b, 1)
                         .has_value());
    ASSERT_GE(child->as().swapOutResident(8), 1u);
    ASSERT_GT(kern().swapDevice().usedSlots(), baseline);

    kern().exitProcess(*child, 0);
    EXPECT_EQ(kern().swapDevice().usedSlots(), baseline)
        << "exit must release swapped pages eagerly";
    EXPECT_EQ(kern().wait4(proc(), child->pid()).error, E_OK);
    EXPECT_EQ(kern().swapDevice().usedSlots(), baseline);
}

TEST_F(PressureTest, ExecveWhileSwappedReturnsSlotsToBaseline)
{
    u64 baseline = kern().swapDevice().usedSlots();
    GuestPtr buf = ctx().mmap(4 * pageSize);
    for (u64 p = 0; p < 4; ++p)
        ctx().store<u8>(buf, static_cast<s64>(p * pageSize), 1);
    ASSERT_GE(proc().as().swapOutResident(4), 1u);
    ASSERT_GT(kern().swapDevice().usedSlots(), baseline);

    ASSERT_EQ(kern().execve(proc(), sys.prog, {"testprog"}, {}), E_OK);
    EXPECT_EQ(kern().swapDevice().usedSlots(), baseline)
        << "execve must not leak the old image's swap slots";
}

TEST_F(PressureTest, MunmapWhileSwappedReturnsSlotsToBaseline)
{
    u64 baseline = kern().swapDevice().usedSlots();
    GuestPtr buf = ctx().mmap(2 * pageSize);
    ctx().store<u8>(buf, 0, 1);
    ctx().store<u8>(buf, static_cast<s64>(pageSize), 1);
    u64 page0 = buf.addr() & ~(pageSize - 1);
    ASSERT_TRUE(proc().as().swapOutPage(page0));
    ASSERT_TRUE(proc().as().swapOutPage(page0 + pageSize));
    ASSERT_EQ(kern().swapDevice().usedSlots(), baseline + 2);
    ASSERT_EQ(ctx().munmap(buf, 2 * pageSize), E_OK);
    EXPECT_EQ(kern().swapDevice().usedSlots(), baseline);
}

TEST_F(PressureTest, ForkWhileSwappedSharesSlotsWithoutLoss)
{
    u64 baseline = kern().swapDevice().usedSlots();
    GuestPtr buf = ctx().mmap(4 * pageSize);
    for (u64 p = 0; p < 4; ++p)
        ctx().store<u64>(buf, static_cast<s64>(p * pageSize), p + 7);
    // Evict the parent's pages before forking — exactly the state the
    // fork admission probe's reclaim pass can leave the parent in right
    // before forkCopy duplicates its page table.
    u64 page0 = buf.addr() & ~(pageSize - 1);
    for (u64 p = 0; p < 4; ++p)
        ASSERT_TRUE(proc().as().swapOutPage(page0 + p * pageSize));
    ASSERT_EQ(kern().swapDevice().usedSlots(), baseline + 4);

    Process *child = kern().fork(proc());
    ASSERT_NE(child, nullptr);
    GuestContext cctx(kern(), *child);
    // Whichever side faults first must not erase the other's copy.
    for (u64 p = 0; p < 4; ++p)
        EXPECT_EQ(cctx.load<u64>(buf, static_cast<s64>(p * pageSize)),
                  p + 7);
    for (u64 p = 0; p < 4; ++p)
        EXPECT_EQ(ctx().load<u64>(buf, static_cast<s64>(p * pageSize)),
                  p + 7);
    kern().exitProcess(*child, 0);
    ASSERT_EQ(kern().wait4(proc(), child->pid()).error, E_OK);
    EXPECT_EQ(kern().swapDevice().usedSlots(), baseline)
        << "shared slots must be released once both sides resolve";
}

// PR 3 regression, now with the failure path exercised: fork shares
// swap slots by refcount, and a child's *failed* swap-in must leave the
// shared slot fully intact for both sides to retry.
TEST_F(PressureTest, ForkWhileSwappedSlotSharingSurvivesSwapInFault)
{
    u64 baseline = kern().swapDevice().usedSlots();
    GuestPtr buf = ctx().mmap(2 * pageSize);
    ctx().store<u64>(buf, 0, 41);
    ctx().store<u64>(buf, static_cast<s64>(pageSize), 42);
    u64 page0 = buf.addr() & ~(pageSize - 1);
    ASSERT_TRUE(proc().as().swapOutPage(page0));
    ASSERT_TRUE(proc().as().swapOutPage(page0 + pageSize));
    ASSERT_EQ(kern().swapDevice().usedSlots(), baseline + 2);

    Process *child = kern().fork(proc());
    ASSERT_NE(child, nullptr);
    auto countShared = [&] {
        u64 n = 0;
        kern().swapDevice().forEachSlot([&](u64, u64 refs) {
            if (refs == 2)
                ++n;
        });
        return n;
    };
    EXPECT_EQ(countShared(), 2u)
        << "fork must share the slots (refcount 2), not steal them";

    GuestContext cctx(kern(), *child);
    inj().failAfter(FaultPoint::SwapIn, 1);
    EXPECT_THROW(cctx.load<u64>(buf), CapTrap);
    EXPECT_EQ(child->as().lastWalkFault(), CapFault::SwapInFailure);
    EXPECT_EQ(countShared(), 2u)
        << "a failed swap-in must not drop either side's slot reference";

    EXPECT_EQ(cctx.load<u64>(buf), 41u);
    EXPECT_EQ(cctx.load<u64>(buf, static_cast<s64>(pageSize)), 42u);
    EXPECT_EQ(ctx().load<u64>(buf), 41u);
    EXPECT_EQ(ctx().load<u64>(buf, static_cast<s64>(pageSize)), 42u);
    kern().exitProcess(*child, 0);
    ASSERT_EQ(kern().wait4(proc(), child->pid()).error, E_OK);
    EXPECT_EQ(kern().swapDevice().usedSlots(), baseline);
}

// PR 3 regression: installFrame (the shmat mechanism) over a page that
// is currently swapped out must release the orphaned device slot.
TEST_F(PressureTest, InstallFrameOverSwappedPageReleasesItsSlot)
{
    u64 baseline = kern().swapDevice().usedSlots();
    GuestPtr buf = ctx().mmap(pageSize);
    ctx().store<u64>(buf, 0, 7);
    u64 page0 = buf.addr() & ~(pageSize - 1);
    ASSERT_TRUE(proc().as().swapOutPage(page0));
    ASSERT_EQ(kern().swapDevice().usedSlots(), baseline + 1);

    FrameRef shared = kern().physMem().allocFrame();
    ASSERT_TRUE(shared);
    ASSERT_TRUE(proc().as().installFrame(page0, shared));
    EXPECT_EQ(kern().swapDevice().usedSlots(), baseline)
        << "the replaced page's swap slot must not leak";
    // The page now reads through the shared frame (demand-zero).
    EXPECT_EQ(ctx().load<u64>(buf), 0u);
}

// Satellite of the fallible-signal-frame change: a handler whose frame
// spill lands on a swapped-out stack page whose swap-in fails must
// produce a counted guest fault and kill the process — never reach the
// handler, never abort the host.
TEST_F(PressureTest, SignalFrameSpillSwapInFailureIsCountedGuestFault)
{
    obs::Metrics m;
    kern().setMetrics(&m);
    bool handler_ran = false;
    u64 hid = proc().registerHandler(
        [&](Process &, SigFrame &) { handler_ran = true; });
    kern().sysSigaction(proc(), SIG_USR1,
                        {SigAction::Kind::Handler, hid});

    // The frame lands just below the stack pointer; evict every page it
    // can touch so the spill's first write needs a swap-in.
    u64 sp = proc().regs().stack().address();
    u64 lo = (sp - 1024) & ~(pageSize - 1);
    u64 evicted = 0;
    for (u64 va = lo; va < sp; va += pageSize)
        evicted += proc().as().swapOutPage(va) ? 1 : 0;
    ASSERT_GE(evicted, 1u);

    inj().failAfter(FaultPoint::SwapIn, 1);
    proc().raiseSignal(SIG_USR1);
    EXPECT_EQ(kern().deliverSignals(proc()), 0u);

    EXPECT_FALSE(handler_ran)
        << "the handler must not run on a frame that could not spill";
    ASSERT_TRUE(proc().exited());
    ASSERT_TRUE(proc().death().has_value());
    EXPECT_EQ(proc().death()->fault, CapFault::SwapInFailure);
    EXPECT_EQ(proc().death()->signal, SIG_USR1);
    EXPECT_GE(m.faultCount(CapFault::SwapInFailure), 1u)
        << "the spill failure must be a *counted* guest fault";
    kern().setMetrics(nullptr);
}

// --- randomized slot accounting (seeded; corpus via env) -----------------

class PressureRandom : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PressureRandom, RandomSwapTrafficKeepsSlotAccounting)
{
    CHERI_TRACE_SEED(GetParam(), "CHERI_TEST_PRESSURE_SEEDS");
    std::mt19937_64 rng(GetParam());
    GuestSystem sys(Abi::CheriAbi);
    GuestContext &ctx = *sys.ctx;
    u64 baseline = sys.kern.swapDevice().usedSlots();

    const u64 pages = 8;
    GuestPtr buf = ctx.mmap(pages * pageSize);
    u64 page0 = buf.addr() & ~(pageSize - 1);
    std::vector<u64> shadow(pages, 0);
    for (int step = 0; step < 200; ++step) {
        u64 p = rng() % pages;
        switch (rng() % 3) {
          case 0: {
            u64 v = rng();
            ctx.store<u64>(buf, static_cast<s64>(p * pageSize), v);
            shadow[p] = v;
            break;
          }
          case 1:
            sys.proc->as().swapOutPage(page0 + p * pageSize);
            break;
          case 2:
            ASSERT_EQ(ctx.load<u64>(buf,
                                    static_cast<s64>(p * pageSize)),
                      shadow[p]);
            break;
        }
        // Every device slot must be referenced by exactly the PTEs
        // that name it — a slot can never outlive or outnumber them.
        ASSERT_LE(sys.kern.swapDevice().usedSlots(), baseline + pages);
    }
    for (u64 p = 0; p < pages; ++p)
        ASSERT_EQ(ctx.load<u64>(buf, static_cast<s64>(p * pageSize)),
                  shadow[p]);
    ASSERT_EQ(ctx.munmap(buf, pages * pageSize), E_OK);
    EXPECT_EQ(sys.kern.swapDevice().usedSlots(), baseline);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PressureRandom,
    ::testing::ValuesIn(
        test::seedsFromEnv("CHERI_TEST_PRESSURE_SEEDS", 4)));

// --- observability -------------------------------------------------------

TEST_F(PressureTest, MetricsExportMemoryPressureSection)
{
    obs::Metrics m;
    kern().setMetrics(&m);
    inj().failAfter(FaultPoint::FrameAlloc, 1);
    UserPtr out;
    ASSERT_EQ(kern()
                  .sysMmap(proc(), UserPtr::null(), pageSize,
                           PROT_READ | PROT_WRITE,
                           MAP_ANON | MAP_PRIVATE, &out)
                  .error,
              E_NOMEM);
    EXPECT_EQ(m.pressure().enomemErrors, 1u);
    std::string json = m.toJson();
    EXPECT_NE(json.find("cheri.metrics.v9"), std::string::npos);
    EXPECT_NE(json.find("\"memory\""), std::string::npos);
    EXPECT_NE(json.find("\"enomem\":1"), std::string::npos);
    m.reset();
    EXPECT_EQ(m.pressure().enomemErrors, 0u);
    kern().setMetrics(nullptr);
}

TEST_F(PressureTest, KernelConfigBudgetsAreWired)
{
    KernelConfig cfg;
    cfg.frameCapacity = 128;
    cfg.swapSlotBudget = 64;
    GuestSystem limited(Abi::CheriAbi, cfg);
    EXPECT_EQ(limited.kern.physMem().frameCapacity(), 128u);
    EXPECT_EQ(limited.kern.swapDevice().slotBudget(), 64u);
}

} // namespace
} // namespace cheri
