#include "trace/analysis.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace cheri
{

GranularityCdf::GranularityCdf(
    const std::vector<CapTraceRecorder::Event> &ev)
{
    for (const auto &e : ev) {
        lengthsBySource[static_cast<unsigned>(e.source)].push_back(
            e.length);
    }
    for (auto &v : lengthsBySource)
        std::sort(v.begin(), v.end());
}

u64
GranularityCdf::cumulative(DeriveSource src, unsigned shift) const
{
    const auto &v = lengthsBySource[static_cast<unsigned>(src)];
    u64 limit = u64{1} << shift;
    return static_cast<u64>(
        std::upper_bound(v.begin(), v.end(), limit) - v.begin());
}

u64
GranularityCdf::cumulativeAll(unsigned shift) const
{
    u64 n = 0;
    for (unsigned s = 0; s < numDeriveSources; ++s)
        n += cumulative(static_cast<DeriveSource>(s), shift);
    return n;
}

u64
GranularityCdf::total(DeriveSource src) const
{
    return lengthsBySource[static_cast<unsigned>(src)].size();
}

u64
GranularityCdf::totalAll() const
{
    u64 n = 0;
    for (const auto &v : lengthsBySource)
        n += v.size();
    return n;
}

u64
GranularityCdf::maxLength(DeriveSource src) const
{
    const auto &v = lengthsBySource[static_cast<unsigned>(src)];
    return v.empty() ? 0 : v.back();
}

u64
GranularityCdf::maxLengthAll() const
{
    u64 m = 0;
    for (unsigned s = 0; s < numDeriveSources; ++s)
        m = std::max(m, maxLength(static_cast<DeriveSource>(s)));
    return m;
}

double
GranularityCdf::fractionBelow(u64 size) const
{
    u64 total = totalAll();
    if (total == 0)
        return 0.0;
    u64 n = 0;
    for (const auto &v : lengthsBySource) {
        n += static_cast<u64>(
            std::upper_bound(v.begin(), v.end(), size) - v.begin());
    }
    return static_cast<double>(n) / static_cast<double>(total);
}

std::string
GranularityCdf::formatTable() const
{
    static const DeriveSource order[] = {
        DeriveSource::Stack,   DeriveSource::Malloc,
        DeriveSource::Exec,    DeriveSource::GlobRelocs,
        DeriveSource::Syscall, DeriveSource::Kern,
        DeriveSource::Tls,
    };
    std::ostringstream os;
    os << std::setw(10) << "size<=";
    os << std::setw(10) << "all";
    for (DeriveSource s : order)
        os << std::setw(12) << deriveSourceName(s);
    os << "\n";
    for (unsigned shift = minShift; shift <= maxShift; shift += 2) {
        os << std::setw(8) << "2^" + std::to_string(shift);
        os << std::setw(12) << cumulativeAll(shift);
        for (DeriveSource s : order)
            os << std::setw(12) << cumulative(s, shift);
        os << "\n";
    }
    return os.str();
}

} // namespace cheri
