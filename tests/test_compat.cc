/**
 * @file
 * Compatibility-corpus tests: every idiom must behave exactly as the
 * Table 2 taxonomy predicts — legacy form works under mips64, faults
 * (or is merely flagged) under CheriABI, fixed form works under both.
 */

#include <gtest/gtest.h>

#include "compat/idioms.h"

namespace cheri::compat
{
namespace
{

TEST(CompatCorpus, HasAllElevenClasses)
{
    std::set<CompatClass> classes;
    std::set<Component> components;
    for (const Idiom &i : corpus()) {
        classes.insert(i.cls);
        components.insert(i.component);
    }
    EXPECT_EQ(classes.size(), numCompatClasses);
    EXPECT_EQ(components.size(), numComponents);
    EXPECT_GE(corpus().size(), 30u);
}

class CompatIdiom : public ::testing::TestWithParam<size_t>
{
};

TEST_P(CompatIdiom, BehavesAsTaxonomyPredicts)
{
    const Idiom &idiom = corpus()[GetParam()];
    std::vector<IdiomResult> results;
    IdiomResult r;
    r.idiom = &idiom;
    // (Reuse the corpus runner for a single idiom by running all and
    // picking ours would be wasteful; run the scenarios directly.)
    auto one = [&](const Scenario &fn, Abi abi) {
        Kernel kern;
        SelfObject prog;
        prog.name = "compat";
        Process *proc = kern.spawn(abi, "compat");
        EXPECT_EQ(kern.execve(*proc, prog, {"compat"}, {}), E_OK);
        GuestContext ctx(kern, *proc);
        try {
            return fn(ctx);
        } catch (const CapTrap &) {
            return false;
        }
    };
    EXPECT_TRUE(one(idiom.legacy, Abi::Mips64))
        << idiom.name << ": legacy form must work on mips64";
    EXPECT_EQ(one(idiom.legacy, Abi::CheriAbi),
              !idiom.legacyTrapsUnderCheri)
        << idiom.name << ": CheriABI behaviour of the legacy form";
    EXPECT_TRUE(one(idiom.fixed, Abi::CheriAbi))
        << idiom.name << ": fixed form must work under CheriABI";
    EXPECT_TRUE(one(idiom.fixed, Abi::Mips64))
        << idiom.name << ": fixed form must stay mips64-compatible";
}

INSTANTIATE_TEST_SUITE_P(
    All, CompatIdiom, ::testing::Range<size_t>(0, corpus().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string name = corpus()[info.param].name;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(CompatCorpus, TableCoversEveryIdiom)
{
    auto results = runCorpus();
    for (const IdiomResult &r : results) {
        EXPECT_TRUE(r.consistent()) << r.idiom->name;
    }
    CompatTable table = tabulate(results);
    unsigned total = 0;
    for (const auto &[comp, row] : table) {
        for (const auto &[cls, n] : row)
            total += n;
    }
    EXPECT_EQ(total, corpus().size());
    std::string rendered = formatTable(table);
    EXPECT_NE(rendered.find("BSD libraries"), std::string::npos);
    EXPECT_NE(rendered.find("PP"), std::string::npos);
}

} // namespace
} // namespace cheri::compat
