file(REMOVE_RECURSE
  "CMakeFiles/table3_bodiag.dir/table3_bodiag.cc.o"
  "CMakeFiles/table3_bodiag.dir/table3_bodiag.cc.o.d"
  "table3_bodiag"
  "table3_bodiag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bodiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
