/**
 * @file
 * Domain example: sealed-capability compartments.
 *
 * Builds two mutually distrusting "plugins" inside one CheriABI
 * process: each gets a sealed code/data pair (an object capability).
 * The host can pass the sealed handles around freely — they are
 * unforgeable and opaque — and only CCall-style invocation, holding
 * the right unsealing authority, can enter a plugin.  A malicious
 * host that tries to read plugin state directly, or to mix one
 * plugin's code with another's data, is stopped by the hardware
 * type system.
 *
 * Build & run:  ./build/examples/compartments
 */

#include <cstdio>

#include "libc/malloc.h"
#include "libc/sealing.h"

using namespace cheri;

int
main()
{
    Kernel kern;
    SelfObject prog;
    prog.name = "plugin_host";
    prog.textSize = 0x2000;
    Process *proc = kern.spawn(Abi::CheriAbi, "plugin_host");
    kern.execve(*proc, prog, {"plugin_host"}, {});
    GuestContext ctx(kern, *proc);
    GuestMalloc heap(ctx);

    SealingRuntime sealing(ctx, 8);
    std::printf("kernel granted sealing authority over %s\n",
                sealing.valid() ? "8 object types" : "NOTHING?");

    // Two plugins, each with private state.
    auto make_plugin = [&](u64 secret) {
        GuestPtr state = heap.malloc(64);
        ctx.store<u64>(state, 0, secret); // the plugin's key material
        ctx.store<u64>(state, 8, 0);      // invocation counter
        return sealing.makeSandbox(proc->regs().pcc, state.cap);
    };
    SealedObject signer = make_plugin(0x5EA15EA1);
    SealedObject verifier = make_plugin(0x0DD5);

    std::printf("signer handle:   %s\n", signer.data.toString().c_str());
    std::printf("verifier handle: %s\n",
                verifier.data.toString().c_str());

    // The host cannot peek at plugin state through the handle.
    std::printf("\nhost tries to read the signer's key directly... ");
    try {
        ctx.load<u64>(GuestPtr(signer.data));
        std::printf("LEAKED?!\n");
    } catch (const CapTrap &t) {
        std::printf("blocked (%s)\n",
                    std::string(capFaultName(t.fault())).c_str());
    }

    // Legitimate invocation: sign a message inside the compartment.
    SandboxMethod sign = [](GuestContext &c, const GuestPtr &state,
                            u64 msg) {
        u64 key = c.load<u64>(state, 0);
        c.store<u64>(state, 8, c.load<u64>(state, 8) + 1);
        return msg ^ key; // "signature"
    };
    Result<u64> sig = sealing.invoke(signer, sign, 0xCAFE);
    std::printf("\ninvoke(signer, sign, 0xCAFE) = 0x%lx\n",
                static_cast<unsigned long>(sig.value()));

    // Mixing the signer's code with the verifier's data must fail:
    // the otypes do not match.
    std::printf("invoke(signer.code + verifier.data)... ");
    SealedObject mixed{signer.code, verifier.data, signer.otype};
    Result<u64> evil = sealing.invoke(mixed, sign, 0xCAFE);
    std::printf("%s\n", evil.ok()
                            ? "ESCAPED?!"
                            : "rejected (type violation)");

    // A compartment with a different authority cannot unseal ours.
    SealingRuntime stranger(ctx, 4);
    Result<u64> theft = stranger.invoke(signer, sign, 0);
    std::printf("foreign authority invoke... %s\n",
                theft.ok() ? "ESCAPED?!" : "rejected");

    // State is preserved across invocations, privately.
    sealing.invoke(signer, sign, 1);
    sealing.invoke(signer, sign, 2);
    SandboxMethod count = [](GuestContext &c, const GuestPtr &state,
                             u64) { return c.load<u64>(state, 8); };
    std::printf("signer was invoked %lu times (it kept count "
                "privately)\n",
                static_cast<unsigned long>(
                    sealing.invoke(signer, count, 0).value()));
    return 0;
}
