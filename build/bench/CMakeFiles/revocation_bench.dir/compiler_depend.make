# Empty compiler generated dependencies file for revocation_bench.
# This may be replaced when dependencies are built.
