file(REMOVE_RECURSE
  "CMakeFiles/test_coredump.dir/test_coredump.cc.o"
  "CMakeFiles/test_coredump.dir/test_coredump.cc.o.d"
  "test_coredump"
  "test_coredump.pdb"
  "test_coredump[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coredump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
