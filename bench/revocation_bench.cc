/**
 * @file
 * Revocation ablation bench (paper section 6, "Temporal safety").
 *
 * Three sweep strategies over the same workload — an arena where only
 * a small fraction of pages ever took a capability store:
 *
 *  - full:        revoke2(SYNC|FORCE_FULL) — scan every content page,
 *                 the CHERIvoke baseline;
 *  - cap-dirty:   revoke2(SYNC) — scan only pages the VM layer marked
 *                 cap-dirty at the store choke point;
 *  - incremental: revoke2(INCREMENTAL) + polls — same page set, but
 *                 amortized a bounded slice per call.
 *
 * --json emits machine-readable results; --check exits nonzero unless
 * (a) the cap-dirty sweep visits at least 5x fewer granules than the
 * full scan (the workload keeps under 20% of pages dirty), (b) every
 * incremental slice stays within the configured page budget and the
 * epoch still closes, and (c) all three strategies revoke exactly the
 * planted capabilities.
 *
 * The tag-preserving-swap ablation from the original bench is kept at
 * the end (human-readable output only).
 */

#include <cstring>
#include <stdexcept>
#include <vector>

#include "bench_util.h"
#include "libc/revoke.h"
#include "obs/json.h"
#include "os/kernel.h"

using namespace cheri;

namespace
{

struct ModeResult
{
    std::string mode;
    u64 arenaPages = 0;
    u64 dirtyPages = 0;
    u64 contentPages = 0;
    u64 pagesScanned = 0;
    u64 pagesSkippedClean = 0;
    u64 granulesVisited = 0;
    u64 tagsRevoked = 0;
    u64 cycles = 0;
    u64 slices = 0;
    u64 maxSlicePages = 0;
    u64 sliceBudget = 0;
    bool closed = false;
};

ModeResult
runMode(const char *mode, u64 arena_pages, u64 dirty_every,
        u64 slice_budget)
{
    ModeResult r;
    r.mode = mode;
    r.arenaPages = arena_pages;
    r.sliceBudget = slice_budget;

    KernelConfig cfg;
    cfg.revokeSliceBudget = slice_budget;
    Kernel kern(cfg);
    SelfObject prog;
    prog.name = "revoke";
    Process *proc = kern.spawn(Abi::CheriAbi, "revoke");
    if (kern.execve(*proc, prog, {"revoke"}, {}) != E_OK)
        throw std::runtime_error("execve failed");

    // Arena: every page faulted in with plain data, but only every
    // dirty_every-th page takes a capability store — through the
    // MemAccess choke point, so exactly those pages become cap-dirty.
    u64 len = arena_pages * pageSize;
    u64 va = proc->as().map(0, len, PROT_READ | PROT_WRITE,
                            MappingKind::Data, false, false, "arena");
    if (va == 0)
        throw std::runtime_error("arena map failed");
    Capability arena =
        proc->as().capForRange(va, len, PROT_READ | PROT_WRITE, false);
    std::vector<std::pair<u64, u64>> quarantine;
    for (u64 i = 0; i < arena_pages; ++i) {
        u64 pva = va + i * pageSize;
        u64 fill = pva * 2654435761u;
        if (proc->as().writeBytes(pva, &fill, 8).has_value())
            throw std::runtime_error("arena touch failed");
        if (i % dirty_every == 0) {
            auto bounded = arena.setAddress(pva).setBounds(64);
            if (!bounded.ok() ||
                proc->mem().writeCap(pva, bounded.value()).has_value())
                throw std::runtime_error("arena cap store failed");
            quarantine.emplace_back(pva, pva + pageSize);
            ++r.dirtyPages;
        }
    }
    r.contentPages = proc->as().contentPages();

    u64 cycles0 = proc->cost().cycles();
    if (!std::strcmp(mode, "incremental")) {
        u64 before = kern.revocationStats().pagesScanned;
        SysResult res =
            kern.sysRevoke2(*proc, quarantine, REVOKE_INCREMENTAL);
        u64 after = kern.revocationStats().pagesScanned;
        r.maxSlicePages = after - before;
        r.slices = 1;
        // Poll-to-close: each call is one bounded slice, the shape a
        // guest sees when the dispatch pump drains the epoch for it.
        while (!res.failed() && res.value != 0 &&
               r.slices < 4 * arena_pages + 64) {
            before = after;
            res = kern.sysRevoke2(*proc, {}, REVOKE_INCREMENTAL);
            after = kern.revocationStats().pagesScanned;
            r.maxSlicePages = std::max(r.maxSlicePages, after - before);
            ++r.slices;
        }
        r.closed = !res.failed() && res.value == 0;
        r.tagsRevoked = kern.revocationEpoch(proc->pid()).revoked;
    } else {
        u32 flags = REVOKE_SYNC;
        if (!std::strcmp(mode, "full"))
            flags |= REVOKE_FORCE_FULL;
        SysResult res = kern.sysRevoke2(*proc, quarantine, flags);
        r.closed = !res.failed();
        r.tagsRevoked = res.failed() ? 0 : res.value;
        r.slices = 1;
        r.maxSlicePages = kern.revocationStats().pagesScanned;
    }
    r.cycles = proc->cost().cycles() - cycles0;
    const Kernel::RevocationStats &st = kern.revocationStats();
    r.pagesScanned = st.pagesScanned;
    r.pagesSkippedClean = st.pagesSkippedClean;
    r.granulesVisited = st.granulesVisited;
    return r;
}

void
swapAblation()
{
    bench::banner("Ablation: tag-preserving swap vs naive swap");
    for (SwapPolicy policy :
         {SwapPolicy::PreserveTags, SwapPolicy::Naive}) {
        KernelConfig cfg;
        cfg.swapPolicy = policy;
        Kernel kern(cfg);
        SelfObject prog;
        prog.name = "swap";
        Process *proc = kern.spawn(Abi::CheriAbi, "swap");
        kern.execve(*proc, prog, {"swap"}, {});
        GuestContext ctx(kern, *proc);
        GuestMalloc heap(ctx);
        // A linked list across many pages...
        GuestPtr head;
        for (int i = 0; i < 256; ++i) {
            GuestPtr node = heap.malloc(4000);
            ctx.storePtr(node, 0, head);
            head = node;
        }
        // ...paged out and walked back in.
        proc->as().swapOutResident(1 << 20);
        u64 reachable = 0;
        try {
            GuestPtr cur = head;
            while (!cur.isNull() && cur.addr() != 0) {
                ++reachable;
                cur = ctx.loadPtr(cur, 0);
            }
        } catch (const CapTrap &) {
        }
        std::printf("%-14s list nodes reachable after swap: %lu / 256%s\n",
                    policy == SwapPolicy::PreserveTags ? "preserve-tags"
                                                       : "naive",
                    static_cast<unsigned long>(reachable),
                    policy == SwapPolicy::PreserveTags
                        ? ""
                        : "   <- every swapped pointer died");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool check = false;
    u64 slice_budget = 8;
    u64 dirty_every = 8; // 12.5% of arena pages take cap stores
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json"))
            json = true;
        else if (!std::strcmp(argv[i], "--check"))
            check = true;
        else if (!std::strcmp(argv[i], "--slice-budget") && i + 1 < argc)
            slice_budget = std::strtoull(argv[++i], nullptr, 0);
    }

    constexpr const char *modes[] = {"full", "capdirty", "incremental"};
    std::vector<ModeResult> results;
    for (u64 arena : {u64{64}, u64{256}, u64{1024}}) {
        for (const char *mode : modes)
            results.push_back(
                runMode(mode, arena, dirty_every, slice_budget));
    }

    if (json) {
        obs::JsonWriter w;
        w.beginObject();
        w.key("schema").value(
            std::string_view("cheri.revocation_bench.v1"));
        w.key("slice_budget").value(slice_budget);
        w.key("dirty_every").value(dirty_every);
        w.key("runs").beginArray();
        for (const ModeResult &r : results) {
            w.beginObject();
            w.key("mode").value(std::string_view(r.mode));
            w.key("arena_pages").value(r.arenaPages);
            w.key("dirty_pages").value(r.dirtyPages);
            w.key("content_pages").value(r.contentPages);
            w.key("pages_scanned").value(r.pagesScanned);
            w.key("pages_skipped_clean").value(r.pagesSkippedClean);
            w.key("granules_visited").value(r.granulesVisited);
            w.key("tags_revoked").value(r.tagsRevoked);
            w.key("cycles").value(r.cycles);
            w.key("slices").value(r.slices);
            w.key("max_slice_pages").value(r.maxSlicePages);
            w.key("closed").value(r.closed);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::printf("%s\n", w.str().c_str());
    } else {
        bench::banner(
            "Revocation ablation: full vs cap-dirty vs incremental");
        std::printf("%6s %-12s %8s %8s %9s %10s %8s %7s %6s\n", "arena",
                    "mode", "scanned", "skipped", "granules", "cycles",
                    "revoked", "slices", "max/sl");
        for (const ModeResult &r : results) {
            std::printf("%6lu %-12s %8lu %8lu %9lu %10lu %8lu %7lu %6lu\n",
                        static_cast<unsigned long>(r.arenaPages),
                        r.mode.c_str(),
                        static_cast<unsigned long>(r.pagesScanned),
                        static_cast<unsigned long>(r.pagesSkippedClean),
                        static_cast<unsigned long>(r.granulesVisited),
                        static_cast<unsigned long>(r.cycles),
                        static_cast<unsigned long>(r.tagsRevoked),
                        static_cast<unsigned long>(r.slices),
                        static_cast<unsigned long>(r.maxSlicePages));
        }
        bench::note(
            "\nShape: full scans every content page; cap-dirty pays "
            "only for\npages that ever took a capability store (the "
            "sticky PTE bit);\nincremental covers the same pages a "
            "bounded slice per call, so\nno single dispatch stalls on "
            "the whole sweep.");
        swapAblation();
    }

    if (!check)
        return 0;
    int failures = 0;
    auto expect = [&](bool ok, const char *what, const ModeResult &r) {
        if (ok)
            return;
        ++failures;
        std::fprintf(stderr,
                     "revocation_bench: CHECK FAILED: %s (mode %s, "
                     "arena %lu)\n",
                     what, r.mode.c_str(),
                     static_cast<unsigned long>(r.arenaPages));
    };
    for (size_t i = 0; i < results.size(); i += 3) {
        const ModeResult &full = results[i];
        const ModeResult &dirty = results[i + 1];
        const ModeResult &incr = results[i + 2];
        expect(full.closed && dirty.closed && incr.closed,
               "every strategy must close its epoch", full);
        // The headline claim: with <20% of pages cap-dirty, skipping
        // provably-clean pages saves >=5x of the granule traffic.
        expect(full.granulesVisited >= 5 * dirty.granulesVisited &&
                   dirty.granulesVisited > 0,
               "cap-dirty sweep must visit >=5x fewer granules", dirty);
        expect(dirty.pagesSkippedClean > 0,
               "cap-dirty sweep must skip clean pages", dirty);
        // Soundness: all three strategies revoke exactly the planted
        // capabilities (one per dirty arena page).
        expect(full.tagsRevoked == full.dirtyPages,
               "full scan must revoke exactly the planted caps", full);
        expect(dirty.tagsRevoked == full.tagsRevoked,
               "cap-dirty sweep must revoke what the full scan does",
               dirty);
        expect(incr.tagsRevoked == full.tagsRevoked,
               "incremental sweep must revoke what the full scan does",
               incr);
        // The amortization bound: no single call scans more than the
        // configured budget.
        expect(incr.maxSlicePages <= incr.sliceBudget,
               "incremental slice exceeded its page budget", incr);
        expect(incr.slices > 1,
               "incremental run must take multiple slices", incr);
    }
    if (failures == 0)
        std::printf("revocation_bench: all checks passed\n");
    return failures == 0 ? 0 : 1;
}
