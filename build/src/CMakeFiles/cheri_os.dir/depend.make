# Empty dependencies file for cheri_os.
# This may be replaced when dependencies are built.
