file(REMOVE_RECURSE
  "CMakeFiles/cheri_mem.dir/mem/phys_mem.cc.o"
  "CMakeFiles/cheri_mem.dir/mem/phys_mem.cc.o.d"
  "CMakeFiles/cheri_mem.dir/mem/swap.cc.o"
  "CMakeFiles/cheri_mem.dir/mem/swap.cc.o.d"
  "CMakeFiles/cheri_mem.dir/mem/vm.cc.o"
  "CMakeFiles/cheri_mem.dir/mem/vm.cc.o.d"
  "libcheri_mem.a"
  "libcheri_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
