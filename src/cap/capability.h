/**
 * @file
 * The architectural capability value type.
 *
 * A Capability models a CHERI capability register value: a 64-bit cursor
 * (address), bounds [base, top) with top up to 2^64, a permission mask,
 * an object type (sealing), and the out-of-band validity tag.  All
 * mutating operations are monotonic — they can narrow bounds and shed
 * permissions but never widen or regain them — and return either a new
 * value or the architectural fault the operation would raise.
 *
 * Untagged capabilities are plain data: they can be copied and inspected
 * but never dereferenced, sealed, or used as derivation authority; this
 * is the provenance-validity property the paper builds on.
 */

#ifndef CHERI_CAP_CAPABILITY_H
#define CHERI_CAP_CAPABILITY_H

#include <array>
#include <string>

#include "cap/compression.h"
#include "cap/fault.h"
#include "cap/perms.h"
#include "cap/result.h"
#include "cap/types.h"

namespace cheri
{

namespace snap
{
struct Access;
}

class Capability
{
  public:
    /** The NULL capability: untagged, zero bounds, zero address. */
    Capability() = default;

    /**
     * The primordial capability made available at CPU reset: tagged,
     * spanning the whole address space with all permissions.  Everything
     * else is transitively derived from this (provenance validity).
     */
    static Capability root(
        compress::CapFormat fmt = compress::CapFormat::Cap128);

    /** An untagged capability holding just an integer address. */
    static Capability fromAddress(u64 addr);

    /** @name Field accessors */
    /// @{
    bool tag() const { return _tag; }
    u64 base() const { return _base; }
    u128 top() const { return _top; }
    u64 address() const { return _address; }
    /** Cursor position relative to base. */
    u64 offset() const { return _address - _base; }
    /** Region length; saturates at 2^64 - 1 for whole-address-space. */
    u64 length() const;
    u32 perms() const { return _perms; }
    OType otype() const { return _otype; }
    bool sealed() const { return _otype != otypeUnsealed; }
    compress::CapFormat format() const { return _format; }
    bool isNull() const { return !_tag && _address == 0; }
    /// @}

    /** True when [addr, addr+size) lies within bounds. */
    bool inBounds(u64 addr, u64 size) const;

    /** True when this capability has every permission in @p mask. */
    bool hasPerms(u32 mask) const { return (_perms & mask) == mask; }

    /**
     * CSetAddr: move the cursor to an absolute address.  Clears the tag
     * if the capability is sealed or the address leaves the representable
     * space; bounds and permissions are unchanged (C pointer arithmetic
     * never widens privilege).
     */
    Capability setAddress(u64 addr) const;

    /** CIncOffset: pointer arithmetic — setAddress(address() + delta). */
    Capability incAddress(s64 delta) const;

    /**
     * CSetBounds: narrow bounds to [address, address+len), rounded
     * outward as compression requires.  Faults on untagged or sealed
     * inputs, and on any attempt to exceed the existing bounds
     * (monotonicity).
     */
    Result<Capability> setBounds(u64 len) const;

    /** CSetBoundsExact: as setBounds but faults if rounding was needed. */
    Result<Capability> setBoundsExact(u64 len) const;

    /**
     * CAndPerm: intersect the permission mask with @p mask.  Faults on
     * untagged or sealed inputs.
     */
    Result<Capability> andPerms(u32 mask) const;

    /** CClearTag: forget validity, keeping the data bits. */
    Capability withoutTag() const;

    /**
     * CSeal: produce a sealed (immutable, non-dereferenceable) capability
     * with the otype given by @p authority's address.  @p authority must
     * be tagged, unsealed, hold PERM_SEAL, and have the otype in bounds.
     */
    Result<Capability> seal(const Capability &authority) const;

    /** CUnseal: the inverse, requiring PERM_UNSEAL over our otype. */
    Result<Capability> unseal(const Capability &authority) const;

    /**
     * CBuildCap: rederive a tagged capability matching the untagged
     * pattern @p bits from a tagged authority whose bounds and perms
     * cover it.  This is how the kernel restores capabilities whose
     * architectural chain was broken — swap-in, debugger injection,
     * core-dump restore (paper section 3).
     */
    static Result<Capability> build(const Capability &authority,
                                    const Capability &bits);

    /**
     * Full access check as performed by a capability load/store/fetch:
     * tag set, unsealed, [addr, addr+size) within bounds, and all of
     * @p req_perms present.  Returns the fault or std::nullopt.
     */
    CapCheck checkAccess(u64 addr, u64 size, u32 req_perms) const;

    /**
     * In-memory representation (16 bytes; the tag travels out of band).
     * Deserializing yields an *untagged* capability — raw bytes never
     * carry provenance; only PhysMem's tag bits can mark a granule valid.
     */
    std::array<u8, capSize> toBytes() const;
    static Capability fromBytes(const std::array<u8, capSize> &bytes);

    /** Exact structural equality of the architectural fields. */
    bool
    operator==(const Capability &other) const
    {
        return _tag == other._tag && _base == other._base &&
               _top == other._top && _address == other._address &&
               _perms == other._perms && _otype == other._otype;
    }

    /** Diagnostic rendering, e.g. "cap[t 0x1000-0x2000 @0x1004 rwRW]". */
    std::string toString() const;

  private:
    /** Checkpoint/restore needs bit-exact field access (the public
     *  surface is deliberately monotonic and cannot rebuild an
     *  arbitrary tagged value). */
    friend struct snap::Access;

    Capability(bool tag, u64 base, u128 top, u64 address, u32 perms,
               OType otype, compress::CapFormat fmt);

    bool _tag = false;
    u64 _base = 0;
    u128 _top = 0;
    u64 _address = 0;
    u32 _perms = 0;
    OType _otype = otypeUnsealed;
    compress::CapFormat _format = compress::CapFormat::Cap128;
    /**
     * For untagged patterns loaded from memory: the verbatim second
     * 8 bytes.  Hardware capability loads of untagged data preserve all
     * 128 bits as data; this keeps memcpy-via-capability-registers
     * byte-exact for non-pointer payloads.
     */
    u64 _rawMeta = 0;
    bool _hasRawMeta = false;
};

} // namespace cheri

#endif // CHERI_CAP_CAPABILITY_H
