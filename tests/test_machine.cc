/**
 * @file
 * Tests for the cache hierarchy and the per-ABI cost model.
 */

#include <gtest/gtest.h>

#include "machine/cache.h"
#include "machine/cost_model.h"
#include "machine/regs.h"

namespace cheri
{
namespace
{

TEST(Cache, HitsAfterFill)
{
    Cache c(32 * 1024, 4);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1030)); // same 64-byte line
    EXPECT_FALSE(c.access(0x1040)); // next line
}

TEST(Cache, LruEvictsOldest)
{
    // Direct-mapped-ish scenario: 4-way set; fill 5 conflicting lines.
    Cache c(4 * 64, 4, 64); // one set, 4 ways
    for (u64 i = 0; i < 4; ++i)
        EXPECT_FALSE(c.access(i * 64));
    for (u64 i = 0; i < 4; ++i)
        EXPECT_TRUE(c.access(i * 64));
    EXPECT_FALSE(c.access(4 * 64)); // evicts line 0
    EXPECT_FALSE(c.access(0));      // line 0 is gone
    EXPECT_TRUE(c.access(2 * 64));  // recently used lines survive
}

TEST(Cache, CapacityWorkingSetFits)
{
    Cache c(32 * 1024, 4);
    for (u64 a = 0; a < 32 * 1024; a += 64)
        c.access(a);
    u64 misses_before = c.misses();
    for (u64 a = 0; a < 32 * 1024; a += 64)
        c.access(a);
    EXPECT_EQ(c.misses(), misses_before) << "working set == capacity";
}

TEST(Hierarchy, L2CatchesL1Misses)
{
    CacheHierarchy h;
    // Touch 64 KiB: exceeds L1D (32 KiB) but fits in L2 (256 KiB).
    for (u64 a = 0; a < 64 * 1024; a += 64)
        h.access(a, 8, Access::DataLoad);
    u64 l2_before = h.l2Misses();
    for (u64 a = 0; a < 64 * 1024; a += 64)
        h.access(a, 8, Access::DataLoad);
    EXPECT_EQ(h.l2Misses(), l2_before)
        << "second pass must hit in L2 at worst";
    EXPECT_GT(h.l1dMisses(), 0u);
}

TEST(CostModel, PointerSizeByAbi)
{
    EXPECT_EQ(CostModel(Abi::Mips64).pointerSize(), 8u);
    EXPECT_EQ(CostModel(Abi::CheriAbi).pointerSize(), 16u);
}

TEST(CostModel, InstructionsAccumulate)
{
    CostModel m(Abi::Mips64);
    m.alu(10);
    m.load(0x1000, 8);
    m.store(0x1008, 8);
    EXPECT_EQ(m.instructions(), 12u);
    EXPECT_GE(m.cycles(), m.instructions());
}

TEST(CostModel, CapManipFreeOnMips)
{
    CostModel mips(Abi::Mips64);
    CostModel cheri(Abi::CheriAbi);
    mips.capManip(5);
    cheri.capManip(5);
    EXPECT_EQ(mips.instructions(), 0u);
    EXPECT_EQ(cheri.instructions(), 5u);
}

TEST(CostModel, GotLoadClcImmediateEffect)
{
    CostModel small_imm(Abi::CheriAbi, {.largeClcImmediate = false});
    CostModel large_imm(Abi::CheriAbi, {.largeClcImmediate = true});
    CostModel mips(Abi::Mips64);
    small_imm.gotLoad(0x500000);
    large_imm.gotLoad(0x500000);
    mips.gotLoad(0x500000);
    EXPECT_EQ(small_imm.instructions(), 3u);
    EXPECT_EQ(large_imm.instructions(), 1u);
    EXPECT_EQ(mips.instructions(), 1u);
    EXPECT_GT(small_imm.codeBytes(), large_imm.codeBytes());
}

TEST(CostModel, LegacySyscallPaysCapConstruction)
{
    CostModel mips(Abi::Mips64);
    CostModel cheri(Abi::CheriAbi);
    // select(2) passes four pointer arguments (paper section 5.2).
    mips.syscall(4);
    cheri.syscall(4);
    EXPECT_GT(mips.instructions(), cheri.instructions())
        << "CheriABI should be cheaper when many pointers cross the "
           "syscall boundary";
    // With zero pointer args the ABIs tie.
    CostModel mips0(Abi::Mips64), cheri0(Abi::CheriAbi);
    mips0.syscall(0);
    cheri0.syscall(0);
    EXPECT_EQ(mips0.instructions(), cheri0.instructions());
}

TEST(CostModel, ContextSwitchCostsMoreUnderCheriAbi)
{
    CostModel mips(Abi::Mips64);
    CostModel cheri(Abi::CheriAbi);
    for (int i = 0; i < 100; ++i) {
        mips.contextSwitch();
        cheri.contextSwitch();
    }
    EXPECT_GE(cheri.cycles(), mips.cycles())
        << "capability register file is twice as wide";
}

TEST(CostModel, AsanInstrumentationMultipliesAccessCost)
{
    CostModel plain(Abi::Mips64);
    CostModel asan(Abi::Mips64, {.asanInstrumentation = true});
    for (u64 i = 0; i < 1000; ++i) {
        plain.load(0x10000 + i * 8, 8);
        asan.load(0x10000 + i * 8, 8);
    }
    EXPECT_GT(asan.instructions(), 3 * plain.instructions());
}

TEST(CostModel, SpillsModelSeparateCapRegFile)
{
    CostModel mips(Abi::Mips64);
    CostModel cheri(Abi::CheriAbi);
    mips.spills(0x7000, 4, 0);
    cheri.spills(0x7000, 4, 0);
    EXPECT_GT(mips.instructions(), cheri.instructions());
}

TEST(CostModel, ResetClearsEverything)
{
    CostModel m(Abi::CheriAbi);
    m.alu(100);
    m.load(0x1000, 16);
    m.reset();
    EXPECT_EQ(m.instructions(), 0u);
    EXPECT_EQ(m.cycles(), 0u);
    EXPECT_EQ(m.l2Misses(), 0u);
}

TEST(Regs, StackAliasConventionalRegister)
{
    ThreadRegs regs;
    regs.stack() = Capability::root();
    EXPECT_EQ(regs.c[regStack], Capability::root());
}

/**
 * Property: a pointer-chasing working set costs more cycles under
 * CheriABI once the 8-byte-pointer version fits in cache but the
 * 16-byte-pointer version does not — the mechanism behind Figure 4's
 * overhead on pointer-dense workloads.
 */
class PointerDensityProperty : public ::testing::TestWithParam<u64>
{
};

TEST_P(PointerDensityProperty, WidePointersRaiseCachePressure)
{
    u64 num_ptrs = GetParam();
    auto run = [&](Abi abi) {
        CostModel m(abi);
        u64 stride = m.pointerSize();
        for (int pass = 0; pass < 8; ++pass) {
            for (u64 i = 0; i < num_ptrs; ++i)
                m.load(0x100000 + i * stride, stride);
        }
        return m;
    };
    CostModel mips = run(Abi::Mips64);
    CostModel cheri = run(Abi::CheriAbi);
    EXPECT_EQ(mips.instructions(), cheri.instructions());
    EXPECT_GE(cheri.cycles(), mips.cycles());
    if (num_ptrs * 16 > 64 * 1024) {
        EXPECT_GT(cheri.cycles(), mips.cycles())
            << "doubling pointer footprint should cost cycles once the "
               "working set spills a cache level";
    }
}

INSTANTIATE_TEST_SUITE_P(WorkingSets, PointerDensityProperty,
                         ::testing::Values(64, 1024, 8192, 65536));

} // namespace
} // namespace cheri
