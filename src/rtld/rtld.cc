#include "rtld/rtld.h"

#include <cassert>
#include <stdexcept>

namespace cheri
{

namespace
{

/** Search an image for the object defining @p name. */
std::pair<const LinkedObject *, const SelfSymbol *>
findDefinition(const std::vector<LinkedObject> &objects,
               const std::string &name)
{
    for (const auto &lo : objects) {
        if (const SelfSymbol *s = lo.object->findSymbol(name))
            return {&lo, s};
    }
    return {nullptr, nullptr};
}

/** Mint the capability a relocation against @p sym installs. */
Capability
capForSymbol(const LinkedObject &def, const SelfSymbol &sym, Abi abi)
{
    if (sym.isFunction) {
        // Function capabilities are bounded to the defining shared
        // object, preserving PC-relative addressing (paper section 4).
        Capability c = def.textCap.setAddress(def.textBase + sym.offset);
        if (abi == Abi::CheriAbi) {
            auto p = c.andPerms(permsCode);
            if (p.ok())
                return p.value();
        }
        return c;
    }
    // Data symbols get per-variable bounds.
    Capability c = def.dataCap.setAddress(def.dataBase + sym.offset);
    if (abi != Abi::CheriAbi)
        return c;
    auto b = c.setBounds(sym.size);
    if (!b.ok())
        throw std::runtime_error("rtld: symbol bounds not derivable: " +
                                 sym.name);
    auto p = b.value().andPerms(permsData);
    assert(p.ok());
    return p.value();
}

} // namespace

LinkedObject
Rtld::loadObject(const SelfObject &obj, LinkerEnv &env) const
{
    LinkedObject lo;
    lo.object = &obj;
    // Text: modeled by size; mapped read+exec.
    lo.textCap = env.mapPages(obj.textSize, PROT_READ | PROT_EXEC,
                              obj.name + ":text");
    lo.textBase = lo.textCap.address();
    if (!obj.rodata.empty()) {
        lo.rodataCap = env.mapPages(obj.rodata.size(), PROT_READ,
                                    obj.name + ":rodata");
        lo.rodataBase = lo.rodataCap.address();
        env.storeBytes(lo.rodataBase, obj.rodata.data(),
                       obj.rodata.size());
    }
    u64 data_len = obj.data.size() + obj.bssSize;
    if (data_len == 0)
        data_len = 16;
    lo.dataCap = env.mapPages(data_len, PROT_READ | PROT_WRITE,
                              obj.name + ":data");
    lo.dataBase = lo.dataCap.address();
    if (!obj.data.empty())
        env.storeBytes(lo.dataBase, obj.data.data(), obj.data.size());
    lo.gotSlots = obj.gotSlots();
    if (lo.gotSlots > 0) {
        u64 slot = env.abi() == Abi::CheriAbi ? capSize : 8;
        lo.gotCap = env.mapPages(lo.gotSlots * slot,
                                 PROT_READ | PROT_WRITE,
                                 obj.name + ":got");
        lo.gotBase = lo.gotCap.address();
    }
    return lo;
}

LinkedImage
Rtld::link(const SelfObject &program, LinkerEnv &env) const
{
    // Breadth-first load of the dependency graph, program first.
    LinkedImage image;
    std::vector<const SelfObject *> order{&program};
    for (size_t i = 0; i < order.size(); ++i) {
        for (const std::string &dep : order[i]->needed) {
            bool seen = false;
            for (const SelfObject *o : order)
                seen |= o->name == dep;
            if (seen)
                continue;
            auto it = libs.find(dep);
            if (it == libs.end())
                throw std::runtime_error("rtld: missing library: " + dep);
            order.push_back(it->second);
        }
    }
    image.objects.reserve(order.size());
    for (const SelfObject *o : order)
        image.objects.push_back(loadObject(*o, env));

    // Relocation pass.
    const u64 slot = env.abi() == Abi::CheriAbi ? capSize : 8;
    for (LinkedObject &lo : image.objects) {
        for (const SelfReloc &rel : lo.object->relocs) {
            auto [def, sym] = findDefinition(image.objects, rel.symbol);
            if (!def) {
                throw std::runtime_error("rtld: unresolved symbol: " +
                                         rel.symbol);
            }
            Capability cap = capForSymbol(*def, *sym, env.abi());
            if (CostModel *cost = env.cost())
                cost->capManip(2); // derive + bound
            if (TraceSink *tr = env.trace())
                tr->derive(DeriveSource::GlobRelocs, cap);
            if (rel.kind == RelocKind::CapInit) {
                env.storePointer(lo.dataBase + rel.dataOffset, cap);
            } else {
                env.storePointer(lo.gotBase + rel.gotIndex * slot, cap);
            }
        }
    }
    return image;
}

ResolvedSymbol
Rtld::resolve(const LinkedImage &image, const std::string &symbol, Abi abi)
{
    auto [def, sym] = findDefinition(image.objects, symbol);
    if (!def)
        return {};
    ResolvedSymbol out;
    out.definingObject = def;
    out.symbol = sym;
    out.cap = capForSymbol(*def, *sym, abi);
    return out;
}

} // namespace cheri
