# Empty dependencies file for cheri_sanitizer.
# This may be replaced when dependencies are built.
