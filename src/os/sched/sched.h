/**
 * @file
 * The kernel scheduler and unified execution engine.
 *
 * Every driver — runGuest, the diff fuzzer, the benches, the app
 * workloads — executes guest code through here instead of hand-rolling
 * an interpreter loop.  Two kinds of context run on the same queue:
 *
 *  - *interpreted* contexts own an isa::Interpreter per (pid, tid):
 *    the decode micro-cache, step accounting, and syscall hook live in
 *    the ExecContext and survive across dispatches and context
 *    switches (a warm cache is the engine's main throughput win, see
 *    bench/sched_bench);
 *  - *hosted* contexts wrap a std::function driving syscalls from the
 *    host (runGuest bodies, workloads).  They run to completion in one
 *    slice — host code cannot be preempted at an instruction boundary.
 *
 * Preemption is a time-slice step budget (KernelConfig::timeSliceSteps)
 * raised as an interpreter Preempted result, so it only ever lands
 * between instructions.  Blocking syscalls (wait4, ev_wait, sleep) park
 * their context off the queue; wake-up edges come from exitProcess,
 * ev_post, and the virtual clock (total guest instructions retired).
 * Slice boundaries run the kernel's background work (revocation pump,
 * frame reclaim) and an optional hook the fuzzer points at the
 * invariant oracle.
 */

#ifndef CHERI_OS_SCHED_SCHED_H
#define CHERI_OS_SCHED_SCHED_H

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "isa/interp.h"
#include "os/kernel.h"
#include "os/sched_iface.h"

namespace cheri::snap
{
struct Access;
}

namespace cheri::sched
{

/**
 * Per-(process, thread) execution state.  Owns the interpreter — and
 * with it the decode cache and retired-step counter — for the life of
 * the thread, however many slices it takes.
 */
struct ExecContext
{
    enum class State
    {
        Runnable,
        Running,
        Blocked,
        Done,
    };

    u64 pid = 0;
    u64 tid = 0;
    State state = State::Done;
    BlockKind blockKind = BlockKind::None;
    /** Wait4: pid filter.  Sleep: absolute virtual-clock deadline.
     *  EventWait: the pid whose counter is awaited. */
    u64 blockArg = 0;
    /** Rewind PC one instruction on wake so the syscall re-executes. */
    bool restartOnWake = false;

    /** @name FD-block state (BlockKind::Fd)
     * The wait-channel ids this context is parked on, and the select
     * deadline machinery.  The deadline survives wake/restart cycles
     * (a restarted select must not re-arm its timeout) and is cleared
     * only by consumeFdTimeout or clearFdDeadline.
     */
    /// @{
    std::vector<u64> fdChans;
    /** A select deadline is armed (absolute vclock in fdDeadline). */
    bool fdDeadlineArmed = false;
    u64 fdDeadline = 0;
    /** The armed deadline expired; consumed by the restarted select. */
    bool fdTimedOut = false;
    /// @}

    /** Null for hosted contexts. */
    std::unique_ptr<isa::Interpreter> interp;
    std::function<void()> hostFn;
    bool isHost() const { return interp == nullptr; }

    /** Result of the most recent slice (drivers read status/fault). */
    isa::InterpResult last;
    /** Retire at most this many steps per ready() (0 = unlimited);
     *  expiry reports Status::StepLimit, like Interpreter::run. */
    u64 stepLimit = 0;
    u64 readyBaseSteps = 0;
    u64 slices = 0;

    /** Instructions retired by this context's interpreter, lifetime. */
    u64
    retired() const
    {
        return interp ? interp->retired() : 0;
    }
};

class Scheduler final : public SchedulerIface
{
  public:
    explicit Scheduler(Kernel &kern) : kern(kern) {}

    /**
     * Get-or-create the persistent context for @p proc's thread
     * @p tid (default: the current thread).  A fresh context gets an
     * interpreter with the kernel's default syscall hook installed.
     */
    ExecContext &context(Process &proc);
    ExecContext &context(Process &proc, u64 tid);

    /** Move @p ctx to the back of the run queue (restarting its
     *  per-ready step-limit window). */
    void ready(ExecContext &ctx);

    /** Shorthand: context() + ready(), optionally step-limited. */
    ExecContext &admit(Process &proc, u64 step_limit = 0);

    /**
     * Run @p fn as a hosted context of @p proc.  When called while the
     * scheduler is already draining (a hosted body spawning another),
     * the function runs synchronously as a nested slice.
     */
    void runHosted(Process &proc, std::function<void()> fn);

    /** Called after every slice with the process that just ran — the
     *  fuzzer points this at the invariant oracle. */
    void setSliceHook(std::function<void(Process &)> hook)
    {
        sliceHook = std::move(hook);
    }

    /** The virtual clock: guest instructions retired under the
     *  scheduler, plus idle advances to sleep deadlines. */
    u64 now() const { return vclock; }

    /** @name SchedulerIface */
    /// @{
    bool blockCurrent(Process &proc, BlockKind kind, u64 arg,
                      bool restart) override;
    void onProcessDead(Process &proc) override;
    void onProcessReaped(u64 pid) override;
    void onFork(Process &child) override;
    void onThreadNew(Process &proc, u64 tid) override;
    bool onThreadSwitch(Process &proc, u64 tid) override;
    void onThreadExit(Process &proc, u64 tid) override;
    void onEventPost(u64 pid) override;
    bool blockCurrentFd(Process &proc, const FdWait &wait) override;
    u64 onFdWake(u64 chan) override;
    bool consumeFdTimeout(Process &proc) override;
    void clearFdDeadline(Process &proc) override;
    void runUntilIdle() override;
    bool active() const override { return running; }
    void resetForPanic() override;
    const SchedStats &stats() const override { return st; }
    /// @}

  private:
    /** Checkpoint/restore rebuilds contexts and queues directly. */
    friend struct snap::Access;

    /** The interpreted context currently in a slice (nullptr for a
     *  hosted slice or outside runUntilIdle). */
    ExecContext *interpretedCurrent() const;
    void wake(ExecContext &ctx);
    void retireContextsOf(u64 pid);
    u64 sliceBudget(const ExecContext &ctx) const;
    void runOneSlice(ExecContext &ctx, Process &proc);
    /** The drain loop proper; runUntilIdle wraps it in the kernel-panic
     *  catch site. */
    void drainLoop();
    /**
     * Deadlock watchdog, run when the drain goes idle with only
     * deadline-less blocked contexts left.  Builds the wait-for
     * relation (pipe/pty FD edges via Kernel::fdWakerPids, wait4
     * parent->child, ev_wait posters), removes every context a capable
     * peer could still wake, and classifies what survives as a true
     * cycle or orphaned wait.  Under DeadlockPolicy::Kill a
     * deterministically chosen victim dies (decision routed through
     * the FaultPoint::DeadlockKill replay tap); returns true iff a
     * kill freed the drain to continue.
     */
    bool watchdogScan();

    Kernel &kern;
    std::map<std::pair<u64, u64>, std::unique_ptr<ExecContext>> ctxs;
    /** One-shot hosted contexts (owned here, not in `ctxs`). */
    std::vector<std::unique_ptr<ExecContext>> hosted;
    std::deque<ExecContext *> runq;
    std::vector<ExecContext *> blocked;
    ExecContext *current = nullptr;
    /** The (pid, tid) of the previous slice, for switch counting. */
    ExecContext *lastRan = nullptr;
    bool running = false;
    u64 vclock = 0;
    SchedStats st;
    std::function<void(Process &)> sliceHook;
};

/**
 * The kernel's scheduler as a concrete sched::Scheduler, installing
 * one if none exists yet.  All drivers funnel through this.
 */
Scheduler &schedulerFor(Kernel &kern);

} // namespace cheri::sched

#endif // CHERI_OS_SCHED_SCHED_H
