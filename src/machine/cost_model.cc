#include "machine/cost_model.h"

namespace cheri
{

CostModel::CostModel(Abi abi, MachineFeatures features,
                     compress::CapFormat fmt)
    : _abi(abi), _features(features), _format(fmt)
{
}

void
CostModel::fetchAndCount(u64 n)
{
    _instructions += n;
    _cycles += n;
    _codeBytes += n * 4;
    // Stream the fetch through the L1I, one access per 64-byte line.
    for (u64 i = 0; i < n; ++i) {
        u64 fetch_pc = pc;
        pc += 4;
        if (pc >= 0x120000000 + codeFootprint)
            pc = 0x120000000;
        if ((fetch_pc & 63) == 0) {
            HitLevel lvl =
                cacheHier.access(fetch_pc, 4, Access::InstrFetch);
            if (lvl == HitLevel::L2)
                _cycles += penalties.l2Hit;
            else if (lvl == HitLevel::Memory)
                _cycles += penalties.memory;
        }
    }
}

void
CostModel::dataAccess(u64 va, u64 size, Access kind)
{
    HitLevel lvl = cacheHier.access(va, size, kind);
    if (lvl == HitLevel::L2)
        _cycles += penalties.l2Hit;
    else if (lvl == HitLevel::Memory)
        _cycles += penalties.memory;
}

void
CostModel::asanCheck(u64 va)
{
    // Shadow = (addr >> 3) + offset: compute, load the shadow byte,
    // compare against the access size, branch to the slow path — and
    // the shadow load pollutes the data caches.  The binary (not its
    // libraries) is instrumented, as in the paper's 3.29x measurement.
    fetchAndCount(18);
    dataAccess((va >> 3) + 0x7fff8000, 1, Access::DataLoad);
}

void
CostModel::load(u64 va, u64 size)
{
    if (_features.asanInstrumentation)
        asanCheck(va);
    fetchAndCount(1);
    dataAccess(va, size, Access::DataLoad);
}

void
CostModel::store(u64 va, u64 size)
{
    if (_features.asanInstrumentation)
        asanCheck(va);
    fetchAndCount(1);
    dataAccess(va, size, Access::DataStore);
}

void
CostModel::gotLoad(u64 got_va)
{
    if (_abi == Abi::CheriAbi && !_features.largeClcImmediate) {
        // lui/daddiu to materialize the GOT offset, then CLC.
        fetchAndCount(2);
    }
    fetchAndCount(1);
    dataAccess(got_va, pointerSize(), Access::DataLoad);
}

void
CostModel::call(u64 sp_va, u64 n_bounded_locals, u64 n_args, bool variadic)
{
    // Frame setup/teardown: adjust sp, spill return address + frame ptr.
    fetchAndCount(4);
    dataAccess(sp_va, 2 * pointerSize(), Access::DataStore);
    if (_abi == Abi::CheriAbi) {
        // One CSetBounds (plus the incoffset feeding it) per
        // address-taken local.
        fetchAndCount(2 * n_bounded_locals);
        if (variadic) {
            // Variadics always spill to the stack, reached via a
            // bounded capability (paper section 5.3, CC class).
            fetchAndCount(2 + n_args);
            dataAccess(sp_va + 32, n_args * pointerSize(),
                       Access::DataStore);
        }
    }
}

void
CostModel::spills(u64 sp_va, u64 mips_spills, u64 cheri_spills)
{
    u64 n = _abi == Abi::CheriAbi ? cheri_spills : mips_spills;
    fetchAndCount(2 * n); // spill + reload
    if (n)
        dataAccess(sp_va, n * 8, Access::DataStore);
}

void
CostModel::syscall(u64 n_ptr_args)
{
    // Trap entry/exit and dispatch.
    fetchAndCount(120);
    if (_abi == Abi::CheriAbi) {
        // Kernel validates each user capability argument (tag/seal
        // checks) before use.
        fetchAndCount(3 * n_ptr_args);
    } else {
        // Legacy path: the kernel must *construct* a capability from
        // each integer pointer argument before any access to user
        // memory (CSetAddr + CSetBounds + CAndPerm + range checks).
        fetchAndCount(12 * n_ptr_args);
    }
}

void
CostModel::copyLoop(u64 src_va, u64 dst_va, u64 len)
{
    u64 words = (len + 7) / 8;
    fetchAndCount(2 * words + 8);
    // Touch each cache line of both streams once.
    for (u64 off = 0; off < len; off += 64) {
        dataAccess(src_va + off, 8, Access::DataLoad);
        dataAccess(dst_va + off, 8, Access::DataStore);
    }
}

void
CostModel::contextSwitch()
{
    // Save and restore the full register file.  CheriABI threads carry
    // 32 capability registers (16 bytes each) plus PCC/DDC state;
    // mips64 threads carry 32 integer registers.
    u64 reg_bytes = 32 * pointerSize();
    // CheriABI also saves/restores PCC, DDC, and the capability cause
    // register, and must use the capability-aware save path.
    fetchAndCount(2 * 32 + 20 + (_abi == Abi::CheriAbi ? 16 : 0));
    dataAccess(0x7f0000000, reg_bytes, Access::DataStore);
    dataAccess(0x7f0000000, reg_bytes, Access::DataLoad);
}

void
CostModel::reset()
{
    _instructions = 0;
    _cycles = 0;
    _codeBytes = 0;
    _itlbAccesses = 0;
    _itlbMisses = 0;
    _dtlbAccesses = 0;
    _dtlbMisses = 0;
    pc = 0x120000000;
    cacheHier.flush();
    cacheHier = CacheHierarchy();
}

} // namespace cheri
