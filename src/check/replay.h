/**
 * @file
 * Record-replay with a replay-divergence oracle.
 *
 * The system is deterministic by construction — seeded mt19937_64 case
 * generation, a virtual clock, instruction-boundary preemption, and an
 * LCG-driven fault injector — so a run is fully described by its
 * *inputs*: the RNG draws the generator consumes and the per-event
 * decisions the fault injector hands out.  A ReplaySession in Record
 * mode logs exactly those two input streams, plus a state digest at
 * every quiescent point (each syscall dispatch); in Replay mode it
 * substitutes the logged inputs back in and checks each digest against
 * the recording.  Any mismatch is a *divergence*: the oracle reports
 * the first one with the field that differed and the syscall (pid +
 * number) at which the timelines split.
 *
 * The log is self-contained: its header carries the FuzzOptions of the
 * recorded run, so `cheri_replay replay --log x.log` needs no other
 * arguments to reproduce it bit-for-bit.
 */

#ifndef CHERI_CHECK_REPLAY_H
#define CHERI_CHECK_REPLAY_H

#include <random>
#include <string>
#include <vector>

#include "check/diff_fuzzer.h"
#include "mem/fault_inject.h"

namespace cheri
{
class Kernel;
class Process;
}

namespace cheri::check
{

/** One replay mismatch, attributed to the quiescent point where the
 *  timelines split. */
struct ReplayDivergence
{
    /** Log entry sequence number (position in the recorded stream). */
    u64 seq = 0;
    /** Which digest field (or input stream) differed. */
    std::string field;
    std::string detail;
    /** The syscall at the divergent quiescent point. */
    u64 pid = 0;
    u64 sysCode = 0;
    std::string sysName;
};

/**
 * One record-or-replay session across an entire fuzzer run.  Install it
 * via FuzzOptions::replay; the fuzzer routes its RNG draws through
 * rngDraw(), installs it as the kernels' FaultTap, and calls quiesce()
 * at every syscall dispatch.
 */
class ReplaySession : public FaultTap
{
  public:
    enum class Mode
    {
        Record,
        Replay,
    };

    static constexpr u32 logVersion = 1;

    explicit ReplaySession(Mode mode) : _mode(mode) {}

    Mode mode() const { return _mode; }
    bool recording() const { return _mode == Mode::Record; }

    /** @name The recorded input streams */
    /// @{
    /** Route one generator draw through the log.  Record: logs @p raw
     *  and passes it through.  Replay: returns the logged draw (the
     *  authoritative input), flagging a divergence if @p raw differs. */
    u64 rngDraw(u64 raw);

    /** FaultTap: the injector's per-event decision.  Record: logged and
     *  passed through.  Replay: the logged decision is substituted. */
    bool onFault(FaultPoint point, bool decision) override;
    /// @}

    /**
     * Quiescent-point digest at a syscall dispatch: hashes @p proc's
     * full register file (capability tags included) and the kernel's
     * observable counters.  Record: appended to the log.  Replay:
     * checked against the recording; the first mismatch becomes the
     * divergence report's attribution point.
     */
    void quiesce(Kernel &kern, Process &proc, u64 code);

    /** Case boundary marker (alignment check on replay). */
    void caseEnd(u64 index);

    /**
     * Close the session.  Record: appends the end marker.  Replay:
     * verifies the whole log was consumed — leftover entries mean the
     * replayed run ended early, itself a divergence.
     */
    void finish();

    /** Negative-test hook: in Replay mode, corrupt the digest computed
     *  at the @p n'th quiescent point (0-based), forcing exactly one
     *  planted divergence the oracle must catch and attribute. */
    void
    plantAtQuiesce(u64 n)
    {
        plantSeq = n;
        plantArmed = true;
    }

    /** @name Log serialization */
    /// @{
    /** Record mode: the finished log (header carries @p opts). */
    std::vector<u8> serialize(const FuzzOptions &opts) const;

    /** Replay mode: load a recorded log; false + @p error on a
     *  truncated/corrupt log.  options() then returns the recorded
     *  run's configuration (with `replay` left null). */
    bool load(const std::vector<u8> &log, std::string *error = nullptr);

    /** The FuzzOptions recorded in a loaded log's header. */
    const FuzzOptions &options() const { return hdrOpts; }
    /// @}

    /** @name Oracle results */
    /// @{
    const std::vector<ReplayDivergence> &divergences() const
    {
        return divs;
    }
    u64 divergenceCount() const { return divCount; }
    u64 entryCount() const { return entries; }
    /** One-line report of the first divergence ("" when clean). */
    std::string firstDivergence() const;
    /// @}

  private:
    struct Entry
    {
        u8 tag = 0;
        /** Rng: the draw.  Fault: the point.  Quiesce: seq.
         *  CaseEnd: the index. */
        u64 a = 0;
        /** Fault: the decision.  Quiesce: pid. */
        u64 b = 0;
        /** Quiesce digest tail. */
        u64 code = 0;
        u64 regHash = 0;
        u64 frames = 0;
        u64 slots = 0;
        u64 statsHash = 0;
    };

    void emit(const Entry &e);
    /** Replay: pop the next logged entry, or null at end-of-log. */
    const Entry *next();
    void diverge(ReplayDivergence d);

    Mode _mode;
    FuzzOptions hdrOpts;
    std::vector<Entry> log;
    u64 cursor = 0;
    u64 entries = 0;
    u64 quiesceSeq = 0;
    std::vector<ReplayDivergence> divs;
    u64 divCount = 0;
    bool finished = false;
    u64 plantSeq = 0;
    bool plantArmed = false;

    static constexpr u64 maxDivergences = 32;
};

/**
 * The fuzzer's generator RNG as a UniformRandomBitGenerator: a seeded
 * mt19937_64 whose every draw is routed through the session (when one
 * is attached), making the generated case stream a recorded input.
 */
class FuzzRng
{
  public:
    using result_type = u64;

    FuzzRng(u64 seed, ReplaySession *session)
        : rng(seed), session(session)
    {
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~u64{0}; }

    result_type
    operator()()
    {
        u64 v = rng();
        return session ? session->rngDraw(v) : v;
    }

  private:
    std::mt19937_64 rng;
    ReplaySession *session;
};

} // namespace cheri::check

#endif // CHERI_CHECK_REPLAY_H
