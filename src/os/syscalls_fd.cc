/**
 * @file
 * File-descriptor system calls.
 *
 * Every buffer crossing the user/kernel boundary moves through
 * copyin/copyout, i.e., through the caller's capability for CheriABI
 * processes — the kernel never substitutes its own authority
 * (paper Figure 3).
 */

#include "os/kernel.h"

#include <algorithm>
#include <cstring>

namespace cheri
{

SysResult
Kernel::sysOpen(Process &proc, const UserPtr &path, u32 flags)
{
    chargeSyscall(proc, 1);
    std::string p;
    int err = copyinstr(proc, path, &p);
    if (err)
        return SysResult::fail(err);
    VNodeRef node = fs.lookup(p);
    if (!node) {
        if (!(flags & O_CREAT))
            return SysResult::fail(E_NOENT);
        node = fs.createFile(p);
        if (!node)
            return SysResult::fail(E_ACCES);
    }
    if (node->kind == NodeKind::Directory &&
        (flags & O_ACCMODE) != O_RDONLY) {
        return SysResult::fail(E_ISDIR);
    }
    if ((flags & O_TRUNC) && node->kind == NodeKind::Regular)
        node->data.clear();
    auto of = std::make_shared<OpenFile>();
    of->node = node;
    of->flags = flags;
    return SysResult::ok(static_cast<u64>(proc.allocFd(std::move(of))));
}

SysResult
Kernel::sysClose(Process &proc, int fd)
{
    chargeSyscall(proc, 0);
    int err = proc.closeFd(fd);
    return err ? SysResult::fail(err) : SysResult::ok();
}

SysResult
Kernel::sysRead(Process &proc, int fd, const UserPtr &buf, u64 len)
{
    chargeSyscall(proc, 1);
    OpenFileRef of = proc.fd(fd);
    if (!of)
        return SysResult::fail(E_BADF);
    std::vector<u8> tmp(len);
    s64 n = Vfs::read(*of, tmp.data(), len);
    if (n < 0)
        return SysResult::fail(static_cast<int>(-n));
    int err = copyout(proc, tmp.data(), buf, static_cast<u64>(n));
    if (err)
        return SysResult::fail(err);
    return SysResult::ok(static_cast<u64>(n));
}

SysResult
Kernel::sysWrite(Process &proc, int fd, const UserPtr &buf, u64 len)
{
    chargeSyscall(proc, 1);
    OpenFileRef of = proc.fd(fd);
    if (!of)
        return SysResult::fail(E_BADF);
    std::vector<u8> tmp(len);
    int err = copyin(proc, buf, tmp.data(), len);
    if (err)
        return SysResult::fail(err);
    s64 n = Vfs::write(*of, tmp.data(), len);
    if (n < 0)
        return SysResult::fail(static_cast<int>(-n));
    return SysResult::ok(static_cast<u64>(n));
}

SysResult
Kernel::sysLseek(Process &proc, int fd, s64 off, int whence)
{
    chargeSyscall(proc, 0);
    OpenFileRef of = proc.fd(fd);
    if (!of)
        return SysResult::fail(E_BADF);
    if (of->node->kind != NodeKind::Regular)
        return SysResult::fail(E_INVAL);
    s64 base = 0;
    switch (whence) {
      case 0: base = 0; break;                                    // SET
      case 1: base = static_cast<s64>(of->offset); break;          // CUR
      case 2: base = static_cast<s64>(of->node->data.size()); break; // END
      default: return SysResult::fail(E_INVAL);
    }
    s64 pos = base + off;
    if (pos < 0)
        return SysResult::fail(E_INVAL);
    of->offset = static_cast<u64>(pos);
    return SysResult::ok(of->offset);
}

SysResult
Kernel::sysPipe(Process &proc, int fds_out[2])
{
    chargeSyscall(proc, 1);
    auto [rd, wr] = Vfs::makePipe();
    auto rof = std::make_shared<OpenFile>();
    rof->node = rd;
    rof->flags = O_RDONLY;
    auto wof = std::make_shared<OpenFile>();
    wof->node = wr;
    wof->flags = O_WRONLY;
    fds_out[0] = proc.allocFd(std::move(rof));
    fds_out[1] = proc.allocFd(std::move(wof));
    return SysResult::ok();
}

SysResult
Kernel::sysDup(Process &proc, int fd)
{
    chargeSyscall(proc, 0);
    OpenFileRef of = proc.fd(fd);
    if (!of)
        return SysResult::fail(E_BADF);
    return SysResult::ok(static_cast<u64>(proc.allocFd(of)));
}

SysResult
Kernel::sysGetcwd(Process &proc, const UserPtr &buf, u64 len)
{
    chargeSyscall(proc, 1);
    const char cwd[] = "/home";
    if (len < sizeof(cwd))
        return SysResult::fail(E_RANGE);
    // The kernel fills the *entire caller-claimed buffer* (cwd plus
    // zero padding), as several libc implementations do.  A caller that
    // lies about its buffer size — the BOdiagsuite getcwd cases — gets
    // an out-of-bounds write under mips64 and an EPROT here under
    // CheriABI, because the copyout runs through the user capability.
    std::vector<u8> out(len, 0);
    std::memcpy(out.data(), cwd, sizeof(cwd));
    int err = copyout(proc, out.data(), buf, len);
    if (err)
        return SysResult::fail(err);
    return SysResult::ok(sizeof(cwd));
}

SysResult
Kernel::sysSelect(Process &proc, int nfds, const UserPtr &readfds,
                  const UserPtr &writefds, const UserPtr &exceptfds,
                  const UserPtr &timeout)
{
    // Four pointer arguments: the syscall for which the legacy ABI's
    // capability-construction cost bites hardest (paper section 5.2).
    chargeSyscall(proc, 4);
    if (nfds < 0 || nfds > 64)
        return SysResult::fail(E_INVAL);
    u64 rd = 0, wr = 0, ex = 0;
    int err;
    if (!readfds.isNull() && (err = copyin(proc, readfds, &rd, 8)))
        return SysResult::fail(err);
    if (!writefds.isNull() && (err = copyin(proc, writefds, &wr, 8)))
        return SysResult::fail(err);
    if (!exceptfds.isNull() && (err = copyin(proc, exceptfds, &ex, 8)))
        return SysResult::fail(err);
    if (!timeout.isNull()) {
        u64 tv[2];
        if ((err = copyin(proc, timeout, tv, sizeof(tv))))
            return SysResult::fail(err);
    }
    u64 rd_out = 0, wr_out = 0;
    u64 ready = 0;
    for (int fd = 0; fd < nfds; ++fd) {
        u64 bit = u64{1} << fd;
        OpenFileRef of = proc.fd(fd);
        if (!of) {
            if ((rd | wr | ex) & bit)
                return SysResult::fail(E_BADF);
            continue;
        }
        if ((rd & bit) && Vfs::readReady(of->node, of->offset)) {
            rd_out |= bit;
            ++ready;
        }
        if ((wr & bit) && Vfs::writeReady(of->node)) {
            wr_out |= bit;
            ++ready;
        }
    }
    if (!readfds.isNull() && (err = copyout(proc, &rd_out, readfds, 8)))
        return SysResult::fail(err);
    if (!writefds.isNull() && (err = copyout(proc, &wr_out, writefds, 8)))
        return SysResult::fail(err);
    if (!exceptfds.isNull()) {
        u64 zero = 0;
        if ((err = copyout(proc, &zero, exceptfds, 8)))
            return SysResult::fail(err);
    }
    return SysResult::ok(ready);
}

} // namespace cheri
