#include "check/replay.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "os/kernel.h"
#include "os/sysnum.h"

namespace cheri::check
{

namespace
{

constexpr char logMagic[8] = {'C', 'H', 'R', 'I', 'L', 'O', 'G', '1'};

enum : u8
{
    TAG_RNG = 1,
    TAG_FAULT = 2,
    TAG_QUIESCE = 3,
    TAG_CASE_END = 4,
    TAG_END = 5,
};

void
put64(std::vector<u8> &out, u64 v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<u8>(v >> (8 * i)));
}

bool
get64(const std::vector<u8> &in, u64 &pos, u64 &v)
{
    if (in.size() - pos < 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<u64>(in[pos + static_cast<u64>(i)]) << (8 * i);
    pos += 8;
    return true;
}

constexpr u64 fnvOffset = 1469598103934665603ULL;
constexpr u64 fnvPrime = 1099511628211ULL;

void
fnv(u64 &h, u64 v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= fnvPrime;
    }
}

void
fnvCap(u64 &h, const Capability &c)
{
    fnv(h, c.tag() ? 1 : 0);
    fnv(h, c.base());
    fnv(h, static_cast<u64>(c.top()));
    fnv(h, static_cast<u64>(c.top() >> 64));
    fnv(h, c.address());
    fnv(h, c.perms());
    fnv(h, static_cast<u64>(c.otype()));
}

/** FNV-1a over the full register file, capability tags included: a
 *  single flipped tag bit changes the digest. */
u64
hashRegs(const ThreadRegs &r)
{
    u64 h = fnvOffset;
    fnvCap(h, r.pcc);
    fnvCap(h, r.ddc);
    for (const Capability &c : r.c)
        fnvCap(h, c);
    for (u64 x : r.x)
        fnv(h, x);
    return h;
}

/** Digest of the kernel's public observable counters — the cheap
 *  whole-system fingerprint checked at every quiescent point. */
u64
hashStats(Kernel &kern)
{
    u64 h = fnvOffset;
    fnv(h, kern.physMem().totalAllocated());
    fnv(h, kern.physMem().failedAllocs());
    fnv(h, kern.physMem().reclaimRequests());
    const Kernel::MemPressureStats &mp = kern.memPressure();
    fnv(h, mp.reclaimPasses);
    fnv(h, mp.pagesReclaimed);
    fnv(h, mp.oomKills);
    fnv(h, mp.enomemErrors);
    const Kernel::FdIoStats &fdio = kern.fdIoStats();
    fnv(h, fdio.blocks);
    fnv(h, fdio.wakes);
    fnv(h, fdio.eagainErrors);
    fnv(h, fdio.epipeErrors);
    fnv(h, fdio.partialWrites);
    fnv(h, fdio.selectTimeouts);
    const Kernel::RevocationStats &rv = kern.revocationStats();
    fnv(h, rv.epochsOpened);
    fnv(h, rv.epochsClosed);
    fnv(h, rv.epochsAborted);
    fnv(h, rv.pagesScanned);
    fnv(h, rv.tagsRevoked);
    const Kernel::HardeningStats &hd = kern.hardeningStats();
    fnv(h, hd.panics);
    fnv(h, hd.deadlocksDetected);
    fnv(h, hd.deadlocksKilled);
    fnv(h, hd.machineChecks);
    if (const SchedStats *ss = kern.schedulerStats()) {
        fnv(h, ss->contextSwitches);
        fnv(h, ss->preemptions);
        fnv(h, ss->slices);
        fnv(h, ss->wakes);
        fnv(h, ss->stepsExecuted);
    }
    return h;
}

std::string
fmt(const char *f, ...)
{
    char buf[320];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

std::string
sysNameOf(u64 code)
{
    const SyscallInfo *si = syscallInfo(code);
    return std::string(si ? si->name : "invalid");
}

const char *
tagName(u8 tag)
{
    switch (tag) {
      case TAG_RNG: return "rng";
      case TAG_FAULT: return "fault";
      case TAG_QUIESCE: return "quiesce";
      case TAG_CASE_END: return "case-end";
      case TAG_END: return "end";
      default: return "?";
    }
}

} // namespace

void
ReplaySession::emit(const Entry &e)
{
    log.push_back(e);
    ++entries;
}

const ReplaySession::Entry *
ReplaySession::next()
{
    if (cursor >= log.size())
        return nullptr;
    return &log[cursor++];
}

void
ReplaySession::diverge(ReplayDivergence d)
{
    ++divCount;
    if (divs.size() < maxDivergences)
        divs.push_back(std::move(d));
}

u64
ReplaySession::rngDraw(u64 raw)
{
    if (recording()) {
        Entry e;
        e.tag = TAG_RNG;
        e.a = raw;
        emit(e);
        return raw;
    }
    const Entry *e = next();
    if (!e || e->tag != TAG_RNG) {
        ReplayDivergence d;
        d.seq = cursor;
        d.field = "log-sync";
        d.detail = fmt("expected rng entry, log has %s",
                       e ? tagName(e->tag) : "end-of-log");
        diverge(std::move(d));
        return raw;
    }
    if (e->a != raw) {
        ReplayDivergence d;
        d.seq = cursor;
        d.field = "rng";
        d.detail = fmt("recorded draw %016" PRIx64 ", replay drew %016"
                       PRIx64, e->a, raw);
        diverge(std::move(d));
    }
    // The log is the authoritative input stream.
    return e->a;
}

bool
ReplaySession::onFault(FaultPoint point, bool decision)
{
    if (recording()) {
        Entry e;
        e.tag = TAG_FAULT;
        e.a = static_cast<u64>(point);
        e.b = decision ? 1 : 0;
        emit(e);
        return decision;
    }
    const Entry *e = next();
    if (!e || e->tag != TAG_FAULT) {
        ReplayDivergence d;
        d.seq = cursor;
        d.field = "log-sync";
        d.detail = fmt("expected fault entry, log has %s",
                       e ? tagName(e->tag) : "end-of-log");
        diverge(std::move(d));
        return decision;
    }
    if (e->a != static_cast<u64>(point)) {
        ReplayDivergence d;
        d.seq = cursor;
        d.field = "fault-point";
        d.detail = fmt("recorded point %" PRIu64 ", replay hit %u", e->a,
                       static_cast<unsigned>(point));
        diverge(std::move(d));
    }
    // Substitute the logged decision: fault injection is a replayed
    // input, not recomputed state.
    return e->b != 0;
}

void
ReplaySession::quiesce(Kernel &kern, Process &proc, u64 code)
{
    Entry now;
    now.tag = TAG_QUIESCE;
    now.a = quiesceSeq++;
    now.b = proc.pid();
    now.code = code;
    now.regHash = hashRegs(proc.regs());
    now.frames = kern.physMem().liveFrames();
    now.slots = kern.swapDevice().usedSlots();
    now.statsHash = hashStats(kern);
    if (recording()) {
        emit(now);
        return;
    }
    if (plantArmed && now.a == plantSeq)
        now.regHash ^= 1; // deliberate corruption (negative self-test)
    const Entry *e = next();
    if (!e || e->tag != TAG_QUIESCE) {
        ReplayDivergence d;
        d.seq = now.a;
        d.field = "log-sync";
        d.detail = fmt("expected quiesce entry, log has %s",
                       e ? tagName(e->tag) : "end-of-log");
        d.pid = now.b;
        d.sysCode = code;
        d.sysName = sysNameOf(code);
        diverge(std::move(d));
        return;
    }
    const char *field = nullptr;
    std::string detail;
    if (e->a != now.a) {
        field = "seq";
        detail = fmt("recorded %" PRIu64 ", replayed %" PRIu64, e->a,
                     now.a);
    } else if (e->b != now.b) {
        field = "pid";
        detail = fmt("recorded pid %" PRIu64 ", replayed pid %" PRIu64,
                     e->b, now.b);
    } else if (e->code != now.code) {
        field = "syscall";
        detail = fmt("recorded %s(%" PRIu64 "), replayed %s(%" PRIu64 ")",
                     sysNameOf(e->code).c_str(), e->code,
                     sysNameOf(now.code).c_str(), now.code);
    } else if (e->regHash != now.regHash) {
        field = "regHash";
        detail = fmt("recorded %016" PRIx64 ", replayed %016" PRIx64,
                     e->regHash, now.regHash);
    } else if (e->frames != now.frames) {
        field = "frames";
        detail = fmt("recorded %" PRIu64 " live frames, replayed %" PRIu64,
                     e->frames, now.frames);
    } else if (e->slots != now.slots) {
        field = "slots";
        detail = fmt("recorded %" PRIu64 " swap slots, replayed %" PRIu64,
                     e->slots, now.slots);
    } else if (e->statsHash != now.statsHash) {
        field = "statsHash";
        detail = fmt("recorded %016" PRIx64 ", replayed %016" PRIx64,
                     e->statsHash, now.statsHash);
    }
    if (field) {
        ReplayDivergence d;
        d.seq = now.a;
        d.field = field;
        d.detail = std::move(detail);
        d.pid = now.b;
        d.sysCode = code;
        d.sysName = sysNameOf(code);
        diverge(std::move(d));
    }
}

void
ReplaySession::caseEnd(u64 index)
{
    if (recording()) {
        Entry e;
        e.tag = TAG_CASE_END;
        e.a = index;
        emit(e);
        return;
    }
    const Entry *e = next();
    if (!e || e->tag != TAG_CASE_END || e->a != index) {
        ReplayDivergence d;
        d.seq = cursor;
        d.field = "case-end";
        d.detail = fmt("case %" PRIu64 " boundary misaligned with log",
                       index);
        diverge(std::move(d));
    }
}

void
ReplaySession::finish()
{
    if (finished)
        return;
    finished = true;
    if (recording()) {
        Entry e;
        e.tag = TAG_END;
        emit(e);
        return;
    }
    const Entry *e = next();
    if (!e || e->tag != TAG_END) {
        ReplayDivergence d;
        d.seq = cursor;
        d.field = "log-sync";
        d.detail =
            e ? fmt("replay consumed the log but %" PRIu64
                    " entries remain",
                    log.size() - cursor + 1)
              : std::string("log ends without an end marker");
        diverge(std::move(d));
    }
}

std::vector<u8>
ReplaySession::serialize(const FuzzOptions &opts) const
{
    std::vector<u8> out;
    out.insert(out.end(), logMagic, logMagic + sizeof(logMagic));
    put64(out, logVersion);
    put64(out, opts.seed);
    put64(out, opts.cases);
    put64(out, opts.opsPerCase);
    put64(out, opts.inject ? 1 : 0);
    put64(out, opts.checkEvery);
    put64(out, opts.plantSlotBug ? 1 : 0);
    put64(out, opts.frameCapacity);
    put64(out, opts.swapSlotBudget);
    put64(out, opts.multiProc);
    // Mid-run artifact dumps serialize an unfinished log; append the
    // end marker so the emitted file replays cleanly on its own.
    bool needEnd = log.empty() || log.back().tag != TAG_END;
    put64(out, log.size() + (needEnd ? 1 : 0));
    for (const Entry &e : log) {
        out.push_back(e.tag);
        put64(out, e.a);
        put64(out, e.b);
        if (e.tag == TAG_QUIESCE) {
            put64(out, e.code);
            put64(out, e.regHash);
            put64(out, e.frames);
            put64(out, e.slots);
            put64(out, e.statsHash);
        }
    }
    if (needEnd) {
        out.push_back(TAG_END);
        put64(out, 0);
        put64(out, 0);
    }
    return out;
}

bool
ReplaySession::load(const std::vector<u8> &in, std::string *error)
{
    auto fail = [&](const char *msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (in.size() < sizeof(logMagic) ||
        std::memcmp(in.data(), logMagic, sizeof(logMagic)) != 0)
        return fail("bad log magic");
    u64 pos = sizeof(logMagic);
    u64 v = 0;
    if (!get64(in, pos, v) || v != logVersion)
        return fail("unsupported log version");
    FuzzOptions o;
    u64 inject = 0, plant = 0;
    if (!get64(in, pos, o.seed) || !get64(in, pos, o.cases) ||
        !get64(in, pos, o.opsPerCase) || !get64(in, pos, inject) ||
        !get64(in, pos, o.checkEvery) || !get64(in, pos, plant) ||
        !get64(in, pos, o.frameCapacity) ||
        !get64(in, pos, o.swapSlotBudget) || !get64(in, pos, o.multiProc))
        return fail("truncated log header");
    o.inject = inject != 0;
    o.plantSlotBug = plant != 0;
    u64 count = 0;
    if (!get64(in, pos, count) || count > in.size())
        return fail("corrupt log entry count");
    std::vector<Entry> parsed;
    parsed.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        if (pos >= in.size())
            return fail("truncated log");
        Entry e;
        e.tag = in[pos++];
        if (e.tag < TAG_RNG || e.tag > TAG_END)
            return fail("corrupt log entry tag");
        if (!get64(in, pos, e.a) || !get64(in, pos, e.b))
            return fail("truncated log entry");
        if (e.tag == TAG_QUIESCE) {
            if (!get64(in, pos, e.code) || !get64(in, pos, e.regHash) ||
                !get64(in, pos, e.frames) || !get64(in, pos, e.slots) ||
                !get64(in, pos, e.statsHash))
                return fail("truncated quiesce entry");
        }
        parsed.push_back(e);
    }
    hdrOpts = o;
    log = std::move(parsed);
    entries = log.size();
    cursor = 0;
    return true;
}

std::string
ReplaySession::firstDivergence() const
{
    if (divs.empty())
        return "";
    const ReplayDivergence &d = divs.front();
    return fmt("divergence at quiescent point %" PRIu64 " (pid %" PRIu64
               ", syscall %s(%" PRIu64 ")): %s differs — %s",
               d.seq, d.pid, d.sysName.c_str(), d.sysCode,
               d.field.c_str(), d.detail.c_str());
}

} // namespace cheri::check
