#include "check/diff_fuzzer.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <random>

#include "check/replay.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "os/sched/sched.h"
#include "os/snapshot/snapshot.h"
#include "os/sys_invoke.h"

namespace cheri::check
{

namespace
{

std::string
fmt(const char *f, ...)
{
    char buf[320];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

/**
 * One abstract instruction of a generated guest program.  Memory ops
 * name a *slot* in the compute data page; lowering picks the
 * ABI-appropriate addressing mode (legacy via DDC for mips64,
 * capability-relative via c8 for CheriABI) — the differential point:
 * the same abstract program must compute the same values either way.
 */
struct AbsInsn
{
    enum class K
    {
        Li,
        Add,
        Sub,
        Mul,
        Xor,
        Store,
        Load,
        Loop,
        Getpid,
        /** sleep(ticks): parks the context on the virtual clock —
         *  multi-process programs only. */
        SleepSys,
        /** thr_new(): spawns a sibling thread the scheduler admits —
         *  multi-process programs only. */
        ThrNewSys,
        /** thr_switch(x3): directed yield to the tid the previous
         *  syscall returned — multi-process programs only. */
        ThrSwitchSys,
        /** write(pipe_wfd, data_base, imm): producer side of the
         *  shared cross-guest pipe — multi-process programs only. */
        PipeWriteSys,
        /** read(pipe_rfd, data_base, imm): consumer side; blocks the
         *  context when the pipe is empty — multi-process only. */
        PipeReadSys,
    };
    K k = K::Li;
    u8 rd = 4, rs = 4, rt = 4;
    s64 imm = 0;
};

/** One generated operation; all randomness is consumed at generation
 *  time so both ABI runs execute the identical sequence. */
struct GenOp
{
    enum class Kind
    {
        Mmap,
        Unmap,
        Protect,
        Sbrk,
        Fork,
        Signal,
        Write,
        Read,
        Shm,
        Touch,
        Evict,
        Compute,
        Revoke,
        ThrNew,
        ThrSwitch,
        Wait4,
    };
    Kind kind = Kind::Touch;
    u64 a = 0, b = 0, c = 0;
    std::vector<u8> payload;
    std::vector<AbsInsn> prog;
};

/** Work registers x4..x10; x8 is reserved as the data base. */
u8
workReg(FuzzRng &rng)
{
    static constexpr u8 regs[] = {4, 5, 6, 7, 9, 10};
    return regs[rng() % 6];
}

std::vector<AbsInsn>
genProgram(FuzzRng &rng)
{
    std::vector<AbsInsn> p;
    u64 n = 3 + rng() % 6;
    for (u64 i = 0; i < n; ++i) {
        AbsInsn in;
        switch (rng() % 5) {
          case 0:
            in.k = AbsInsn::K::Li;
            in.rd = workReg(rng);
            in.imm = static_cast<s64>(rng() % 100000);
            break;
          case 1: in.k = AbsInsn::K::Add; break;
          case 2: in.k = AbsInsn::K::Sub; break;
          case 3: in.k = AbsInsn::K::Mul; break;
          default: in.k = AbsInsn::K::Xor; break;
        }
        if (in.k != AbsInsn::K::Li) {
            in.rd = workReg(rng);
            in.rs = workReg(rng);
            in.rt = workReg(rng);
        }
        p.push_back(in);
    }
    if (rng() % 2) {
        AbsInsn loop;
        loop.k = AbsInsn::K::Loop;
        loop.imm = 2 + static_cast<s64>(rng() % 5);
        p.push_back(loop);
    }
    u64 mem = rng() % 4;
    for (u64 i = 0; i < mem; ++i) {
        AbsInsn in;
        in.k = (rng() % 2) ? AbsInsn::K::Store : AbsInsn::K::Load;
        in.rd = workReg(rng);
        in.imm = static_cast<s64>((rng() % (pageSize / 8)) * 8);
        p.push_back(in);
    }
    if (rng() % 3 == 0)
        p.push_back({AbsInsn::K::Getpid});
    return p;
}

/** Program for a multi-process guest: the usual compute body plus the
 *  scheduler-exercising syscalls — sleep (virtual-clock blocking) and
 *  thr_new/thr_switch (interpreted thread admission + directed yield).
 *  Instruction counts are ABI-invariant, so slice boundaries — and with
 *  them the whole interleaving — line up exactly across the runs. */
std::vector<AbsInsn>
genMultiProgram(FuzzRng &rng)
{
    std::vector<AbsInsn> p = genProgram(rng);
    if (rng() % 3) {
        AbsInsn t;
        t.k = AbsInsn::K::ThrNewSys;
        p.push_back(t);
        if (rng() % 2)
            p.push_back({AbsInsn::K::ThrSwitchSys});
    }
    if (rng() % 2) {
        AbsInsn s;
        s.k = AbsInsn::K::SleepSys;
        s.imm = 1 + static_cast<s64>(rng() % 200);
        p.push_back(s);
    }
    // Producer/consumer traffic on the shared pipe: small lengths so
    // the channel never fills (64 KiB capacity), but consumers DO park
    // on an empty pipe until some other guest's write wakes them — the
    // blocking hand-off both ABI runs must interleave identically.
    u64 pipeOps = rng() % 4;
    for (u64 i = 0; i < pipeOps; ++i) {
        AbsInsn in;
        in.k = (rng() % 2) ? AbsInsn::K::PipeWriteSys
                           : AbsInsn::K::PipeReadSys;
        in.imm = 1 + static_cast<s64>(rng() % 32);
        p.push_back(in);
    }
    u64 tail = rng() % 3;
    for (u64 i = 0; i < tail; ++i) {
        AbsInsn in;
        in.k = AbsInsn::K::Add;
        in.rd = workReg(rng);
        in.rs = workReg(rng);
        in.rt = workReg(rng);
        p.push_back(in);
    }
    return p;
}

/** Lower the abstract program for @p abi.  Loads/stores address the
 *  data page through x8 (legacy, via DDC) or c8 (capability); pipe ops
 *  target the shared pipe's per-guest descriptors @p pipeRfd /
 *  @p pipeWfd (multi-process mode only). */
isa::Assembler
lower(const std::vector<AbsInsn> &prog, Abi abi, int pipeRfd = -1,
      int pipeWfd = -1)
{
    isa::Assembler a;
    int loops = 0;
    for (const AbsInsn &in : prog) {
        switch (in.k) {
          case AbsInsn::K::Li: a.li(in.rd, in.imm); break;
          case AbsInsn::K::Add: a.add(in.rd, in.rs, in.rt); break;
          case AbsInsn::K::Sub: a.sub(in.rd, in.rs, in.rt); break;
          case AbsInsn::K::Mul: a.mul(in.rd, in.rs, in.rt); break;
          case AbsInsn::K::Xor: a.xor_(in.rd, in.rs, in.rt); break;
          case AbsInsn::K::Store:
            if (abi == Abi::CheriAbi)
                a.csd(in.rd, 8, in.imm);
            else
                a.sd(in.rd, 8, in.imm);
            break;
          case AbsInsn::K::Load:
            if (abi == Abi::CheriAbi)
                a.cld(in.rd, 8, in.imm);
            else
                a.ld(in.rd, 8, in.imm);
            break;
          case AbsInsn::K::Loop: {
            std::string l = fmt("loop%d", loops++);
            a.li(7, in.imm).label(l).addi(6, 6, 1).addi(7, 7, -1).bne(
                7, 0, l);
            break;
          }
          case AbsInsn::K::Getpid:
            a.syscall(static_cast<s64>(SysNum::Getpid));
            break;
          case AbsInsn::K::SleepSys:
            a.li(regArg0, in.imm)
                .syscall(static_cast<s64>(SysNum::Sleep));
            break;
          case AbsInsn::K::ThrNewSys:
            a.li(regArg0, 0)
                .syscall(static_cast<s64>(SysNum::ThrNew));
            break;
          case AbsInsn::K::ThrSwitchSys:
            // x3 still holds the previous syscall's return value — the
            // new tid when this directly follows a thr_new.
            a.add(regArg0, regRetVal, 0)
                .syscall(static_cast<s64>(SysNum::ThrSwitch));
            break;
          case AbsInsn::K::PipeWriteSys:
          case AbsInsn::K::PipeReadSys: {
            bool wr = in.k == AbsInsn::K::PipeWriteSys;
            a.li(regArg0, wr ? pipeWfd : pipeRfd);
            // The buffer argument travels in c5 under CheriABI and x5
            // under mips64 — five instructions either way, so slice
            // boundaries stay aligned across the runs.
            if (abi == Abi::CheriAbi)
                a.cmove(regArg0 + 1, 8);
            else
                a.move(regArg0 + 1, 8);
            a.li(regArg0 + 2, in.imm);
            a.syscall(static_cast<s64>(wr ? SysNum::Write
                                          : SysNum::Read));
            // mips64's move left the data VA (ABI-dependent) in x5;
            // zero it so the final register dump compares equal.
            a.li(regArg0 + 1, 0);
            break;
          }
        }
    }
    a.halt();
    return a;
}

std::vector<GenOp>
generate(u64 case_seed, u64 n_ops, ReplaySession *replay)
{
    FuzzRng rng(case_seed, replay);
    std::vector<GenOp> ops;
    ops.reserve(n_ops);
    for (u64 i = 0; i < n_ops; ++i) {
        GenOp op;
        u64 pick = rng() % 100;
        using K = GenOp::Kind;
        if (pick < 13)
            op.kind = K::Mmap;
        else if (pick < 22)
            op.kind = K::Unmap;
        else if (pick < 29)
            op.kind = K::Protect;
        else if (pick < 33)
            op.kind = K::Sbrk;
        else if (pick < 38)
            op.kind = K::Fork;
        else if (pick < 44)
            op.kind = K::Signal;
        else if (pick < 53)
            op.kind = K::Write;
        else if (pick < 59)
            op.kind = K::Read;
        else if (pick < 64)
            op.kind = K::Shm;
        else if (pick < 72)
            op.kind = K::Touch;
        else if (pick < 78)
            op.kind = K::Evict;
        else if (pick < 84)
            op.kind = K::Compute;
        else if (pick < 89)
            op.kind = K::Revoke;
        else if (pick < 93)
            op.kind = K::ThrNew;
        else if (pick < 97)
            op.kind = K::ThrSwitch;
        else
            op.kind = K::Wait4;
        op.a = rng();
        op.b = rng();
        op.c = rng();
        if (op.kind == K::Write) {
            op.payload.resize(1 + rng() % 96);
            for (u8 &byte : op.payload)
                byte = static_cast<u8>(rng());
        }
        if (op.kind == K::Compute)
            op.prog = genProgram(rng);
        ops.push_back(std::move(op));
    }
    return ops;
}

/** The program image both ABI runs exec — a minimal SELF object. */
SelfObject
fuzzProgram()
{
    SelfObject prog;
    prog.name = "fuzzprog";
    prog.textSize = 0x2000;
    prog.data.resize(64, 0);
    prog.bssSize = 64;
    prog.symbols = {{"main", 0, 0x100, true}};
    prog.relocs = {{RelocKind::CapFunction, 0, 0, "main"}};
    return prog;
}

/** A pointer at @p va carried the way @p base was (capability or
 *  integer), so syscalls see ABI-correct pointer arguments. */
UserPtr
at(const UserPtr &base, u64 va)
{
    if (base.isCap)
        return UserPtr::fromCap(base.cap.setAddress(va));
    return UserPtr::fromAddr(va);
}

/** One tracked guest mapping (compared across ABIs by index, never by
 *  raw address — layouts may legitimately differ). */
struct Region
{
    u64 va = 0;
    u64 len = 0;
    bool shm = false;
    UserPtr base;
};

struct ExecResult
{
    std::vector<std::string> events;
    std::vector<u8> output;
    std::vector<Violation> violations;
    u64 oracleRuns = 0;
    u64 syscalls = 0;
    bool setupFailed = false;
    /** Kernel image captured at the first oracle violation (artifact
     *  auto-emit; empty unless FuzzOptions::artifactPrefix is set). */
    std::vector<u8> snapshot;
    /** Full metrics JSON (FuzzOptions::keepMetricsJson). */
    std::string metricsJson;
    /** Structured panic report + auto-captured image, when the run
     *  tripped a CHERI_KASSERT (the kernel reset and the run went on;
     *  the case is still reported as failed). */
    std::string panicJson;
    std::vector<u8> panicImage;
};

/** Scoped FaultTap installation: the record/replay session outlives
 *  the case kernel, but never the other way round. */
struct TapGuard
{
    FaultInjector &inj;
    TapGuard(FaultInjector &inj, FaultTap *tap) : inj(inj)
    {
        inj.setTap(tap);
    }
    ~TapGuard() { inj.setTap(nullptr); }
};

/** First-failure artifact: snapshot the kernel the moment a case first
 *  goes bad, while it still holds the offending state. */
void
captureSnapshot(ExecResult &er, Kernel &kern, const FuzzOptions &opts)
{
    if (opts.artifactPrefix.empty() || !er.snapshot.empty())
        return;
    std::string serr;
    er.snapshot = snap::save(kern, &serr);
    if (er.snapshot.empty())
        er.events.push_back("snapshot-failed: " + serr);
}

void
writeArtifact(const std::string &path, const std::vector<u8> &bytes)
{
    if (bytes.empty())
        return;
    if (std::FILE *f = std::fopen(path.c_str(), "wb")) {
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }
}

constexpr u64 maxViolationsPerRun = 32;
constexpr u64 maxRegions = 8;

/** Fold a structured kernel panic into the run's outcome: the panic is
 *  a first-class failure (its own violation kind) and its report and
 *  auto-captured image become case artifacts. */
void
capturePanic(ExecResult &er, Kernel &kern)
{
    if (!kern.panicked() || !er.panicJson.empty())
        return;
    er.panicJson = kern.panicReportJson();
    er.panicImage = kern.panicImage();
    if (er.violations.size() < maxViolationsPerRun)
        er.violations.push_back(
            {"kernel-panic", "kernel assertion failed (see .panic.json "
                             "artifact for the flight-recorder ring)"});
}

void
hashRegion(ExecResult &er, Process &proc, const char *name, u64 va,
           u64 len)
{
    u64 h = 1469598103934665603ULL;
    std::vector<u8> page(pageSize);
    for (u64 off = 0; off < len; off += pageSize) {
        CapCheck r = proc.as().readBytes(va + off, page.data(), pageSize);
        if (r.has_value()) {
            er.events.push_back(
                fmt("image %s fault %s", name,
                    std::string(capFaultName(*r)).c_str()));
            return;
        }
        for (u8 b : page) {
            h ^= b;
            h *= 1099511628211ULL;
        }
    }
    er.events.push_back(fmt("image %s %016" PRIx64, name, h));
}

ExecResult
execCase(Abi abi, const FuzzOptions &opts, u64 case_seed,
         const std::vector<GenOp> &ops)
{
    ExecResult er;
    obs::Metrics metrics; // must outlive the kernel
    KernelConfig cfg;
    cfg.frameCapacity = opts.frameCapacity;
    cfg.swapSlotBudget = opts.swapSlotBudget;
    Kernel kern(cfg);
    kern.setMetrics(&metrics);
    snap::installPanicSnapshotHook(kern);
    TapGuard tap(kern.faultInjector(), opts.replay);

    Process *proc = kern.spawn(abi, "fuzz");
    SelfObject prog = fuzzProgram();
    if (kern.execve(*proc, prog, {"fuzz"}, {}) != E_OK) {
        er.setupFailed = true;
        er.events.push_back("execve-failed");
        return er;
    }

    // Case input file: seed-derived bytes, identical for both runs.
    {
        VNodeRef in = kern.vfs().createFile("/fz_in");
        FuzzRng frng(case_seed ^ 0xf00dULL, opts.replay);
        in->data.resize(256);
        for (u8 &b : in->data)
            b = static_cast<u8>(frng());
    }

    // Dispatch hook: uniform event capture (sysInvoke-issued and
    // interpreter-issued syscalls alike) plus the oracle cadence.
    u64 dispatches = 0;
    kern.setCheckHook([&](Process &p, u64 code) {
        ++er.syscalls;
        ++dispatches;
        if (opts.replay)
            opts.replay->quiesce(kern, p, code);
        const SyscallInfo *si = syscallInfo(code);
        const ThreadRegs &r = p.regs();
        bool err = r.x[regSysErr] != 0;
        u64 val = r.x[regRetVal];
        std::string name(si ? si->name : "invalid");
        if (si && si->num == SysNum::Sbrk) {
            // Designed divergence: CheriABI excludes sbrk (E_NOSYS)
            // where mips64 serves it — mask the whole event.
            er.events.push_back("sbrk masked");
        } else if (si && si->num == SysNum::Revoke2) {
            // Designed divergence: revocation sweeps scan cap-dirty
            // pages and tagged granules, which exist only under
            // CheriABI — page counts, revoked counts, and even busy
            // errors (epochs stay open longer with real work queued)
            // legitimately differ, so mask the whole event.  The
            // invariant oracle (rule 7) is the sound check here.
            er.events.push_back("revoke2 masked");
        } else {
            bool mask_val = si && si->returnsPtr; // raw addresses
            er.events.push_back(fmt("%s e%d v%" PRIu64, name.c_str(),
                                    err ? 1 : 0, mask_val ? 0 : val));
        }
        if (opts.checkEvery && dispatches % opts.checkEvery == 0) {
            Report rep = Invariants::check(kern);
            ++er.oracleRuns;
            if (!rep.violations.empty())
                captureSnapshot(er, kern, opts);
            for (Violation &v : rep.violations) {
                if (er.violations.size() < maxViolationsPerRun)
                    er.violations.push_back(std::move(v));
            }
        }
    });

    // Scratch layout: page 0 paths + touch fallback, page 1 write
    // staging, page 2 read landing, page 3 compute data.
    auto mk = sysInvoke(kern, *proc, SysNum::Mmap,
                        {SysArg::p(UserPtr::null()),
                         SysArg::i(4 * pageSize),
                         SysArg::i(PROT_READ | PROT_WRITE),
                         SysArg::i(MAP_ANON | MAP_PRIVATE)});
    if (mk.res.failed()) {
        er.setupFailed = true;
        er.events.push_back("scratch-mmap-failed");
        return er;
    }
    UserPtr scratch = mk.out;
    u64 scratch_va = scratch.addr();

    const char out_path[] = "/fz_out";
    const char in_path[] = "/fz_in";
    proc->as().writeBytes(scratch_va, out_path, sizeof(out_path));
    proc->as().writeBytes(scratch_va + 16, in_path, sizeof(in_path));

    auto ro = sysInvoke(kern, *proc, SysNum::Open,
                        {SysArg::p(at(scratch, scratch_va + 16)),
                         SysArg::i(O_RDONLY)});
    int fd_in = ro.res.failed() ? -1 : static_cast<int>(ro.res.value);
    auto wo = sysInvoke(kern, *proc, SysNum::Open,
                        {SysArg::p(at(scratch, scratch_va)),
                         SysArg::i(O_CREAT | O_TRUNC | O_WRONLY)});
    int fd_out = wo.res.failed() ? -1 : static_cast<int>(wo.res.value);

    // A private RWX page for generated programs (the main text
    // mapping is read-only to the process).
    u64 code_va = proc->as().map(0, pageSize,
                                 PROT_READ | PROT_WRITE | PROT_EXEC,
                                 MappingKind::Text, false, false,
                                 "fuzzcode");

    u64 handler_runs = 0;
    u64 hid = proc->registerHandler(
        [&handler_runs](Process &, SigFrame &) { ++handler_runs; });
    kern.sysSigaction(*proc, SIG_USR1,
                      {SigAction::Kind::Handler, hid});

    if (opts.inject) {
        FaultInjector &inj = kern.faultInjector();
        inj.failRandomly(FaultPoint::FrameAlloc, 13,
                         case_seed ^ 0x1111);
        inj.failRandomly(FaultPoint::SwapOut, 7, case_seed ^ 0x2222);
        inj.failRandomly(FaultPoint::SwapIn, 5, case_seed ^ 0x3333);
        // Memory corruption: sparse tag/data bit flips whose detection
        // must degrade to machine checks, never forged capabilities
        // (the oracle's machine-check-containment rule).
        inj.failRandomly(FaultPoint::TagBitFlip, 31,
                         case_seed ^ 0x4444);
        inj.failRandomly(FaultPoint::DataBitFlip, 211,
                         case_seed ^ 0x5555);
    }

    std::vector<Region> regions;
    std::vector<u64> childPids;
    std::vector<u64> tids;
    u64 op_index = 0;
    for (const GenOp &op : ops) {
        if (proc->exited()) {
            er.events.push_back("main-exited");
            break;
        }
        if (opts.plantSlotBug && op_index == ops.size() / 2) {
            // Acceptance self-test: one stray retain() makes a slot's
            // device refcount exceed its page-table references.
            if (kern.swapDevice().usedSlots() == 0) {
                u8 z = 1;
                proc->as().writeBytes(scratch_va, &z, 1);
                proc->as().swapOutPage(scratch_va);
            }
            u64 min_slot = ~u64{0};
            kern.swapDevice().forEachSlot([&](u64 s, u64) {
                min_slot = std::min(min_slot, s);
            });
            if (min_slot != ~u64{0}) {
                kern.swapDevice().retain(min_slot);
                er.events.push_back("plant-slot-bug");
            }
        }
        ++op_index;

        using K = GenOp::Kind;
        switch (op.kind) {
          case K::Mmap: {
            u64 len = (1 + op.a % 4) * pageSize;
            auto rr = sysInvoke(kern, *proc, SysNum::Mmap,
                                {SysArg::p(UserPtr::null()),
                                 SysArg::i(len),
                                 SysArg::i(PROT_READ | PROT_WRITE),
                                 SysArg::i(MAP_ANON | MAP_PRIVATE)});
            if (rr.res.failed())
                break;
            if (regions.size() < maxRegions) {
                regions.push_back(
                    {rr.out.addr(), len, false, rr.out});
            } else {
                sysInvoke(kern, *proc, SysNum::Munmap,
                          {SysArg::p(rr.out), SysArg::i(len)});
            }
            break;
          }
          case K::Unmap: {
            if (regions.empty())
                break;
            u64 idx = op.a % regions.size();
            Region r = regions[idx];
            if (r.shm) {
                sysInvoke(kern, *proc, SysNum::Shmdt,
                          {SysArg::p(at(r.base, r.va))});
            } else {
                sysInvoke(kern, *proc, SysNum::Munmap,
                          {SysArg::p(at(r.base, r.va)),
                           SysArg::i(r.len)});
            }
            regions.erase(regions.begin() +
                          static_cast<std::ptrdiff_t>(idx));
            break;
          }
          case K::Protect: {
            if (regions.empty())
                break;
            Region &r = regions[op.a % regions.size()];
            u32 prot = (op.b % 2) ? PROT_READ
                                  : (PROT_READ | PROT_WRITE);
            sysInvoke(kern, *proc, SysNum::Mprotect,
                      {SysArg::p(at(r.base, r.va)), SysArg::i(r.len),
                       SysArg::i(prot)});
            break;
          }
          case K::Sbrk:
            sysInvoke(kern, *proc, SysNum::Sbrk,
                      {SysArg::i(op.a % 3 ? pageSize : 0)});
            break;
          case K::Fork: {
            if (childPids.size() >= 2)
                break;
            auto rr = sysInvoke(kern, *proc, SysNum::Fork, {});
            if (!rr.res.failed())
                childPids.push_back(rr.res.value); // alive: COW pressure
            break;
          }
          case K::Signal: {
            sysInvoke(kern, *proc, SysNum::Kill,
                      {SysArg::i(proc->pid()), SysArg::i(SIG_USR1)});
            u64 ran = kern.deliverSignals(*proc);
            er.events.push_back(fmt("deliver %" PRIu64 " total %" PRIu64,
                                    ran, handler_runs));
            break;
          }
          case K::Write: {
            if (fd_out < 0 || op.payload.empty())
                break;
            proc->as().writeBytes(scratch_va + pageSize,
                                  op.payload.data(),
                                  op.payload.size());
            sysInvoke(kern, *proc, SysNum::Write,
                      {SysArg::i(static_cast<u64>(fd_out)),
                       SysArg::p(at(scratch, scratch_va + pageSize)),
                       SysArg::i(op.payload.size())});
            break;
          }
          case K::Read: {
            if (fd_in < 0)
                break;
            sysInvoke(kern, *proc, SysNum::Read,
                      {SysArg::i(static_cast<u64>(fd_in)),
                       SysArg::p(at(scratch, scratch_va + 2 * pageSize)),
                       SysArg::i(1 + op.a % 64)});
            break;
          }
          case K::Shm: {
            if (regions.size() >= maxRegions)
                break;
            u64 size = (1 + op.a % 2) * pageSize;
            auto rg = sysInvoke(kern, *proc, SysNum::Shmget,
                                {SysArg::i(op.b % 4), SysArg::i(size)});
            if (rg.res.failed())
                break;
            auto ra = sysInvoke(kern, *proc, SysNum::Shmat,
                                {SysArg::i(rg.res.value),
                                 SysArg::p(UserPtr::null())});
            if (!ra.res.failed())
                regions.push_back({ra.out.addr(), size, true, ra.out});
            break;
          }
          case K::Touch: {
            u64 ridx = regions.empty() ? ~u64{0}
                                       : op.a % regions.size();
            u64 va = ridx == ~u64{0}
                         ? scratch_va + op.b % (4 * pageSize)
                         : regions[ridx].va + op.b % regions[ridx].len;
            u8 byte = static_cast<u8>(op.c);
            CapCheck w = proc->as().writeBytes(va, &byte, 1);
            er.events.push_back(
                fmt("touch r%" PRId64 " %s",
                    static_cast<s64>(ridx == ~u64{0} ? -1
                                                     : (s64)ridx),
                    w.has_value()
                        ? std::string(capFaultName(*w)).c_str()
                        : "ok"));
            break;
          }
          case K::Evict: {
            u64 n = proc->as().swapOutResident(1 + op.a % 4);
            er.events.push_back(fmt("evict %" PRIu64, n));
            break;
          }
          case K::Compute: {
            isa::Assembler a = lower(op.prog, abi);
            bool loaded = true;
            try {
                a.writeTo(proc->as(), code_va);
            } catch (const std::exception &) {
                // Injected translation failure while loading the
                // image — deterministic, so log-and-skip keeps the
                // runs comparable.
                loaded = false;
            }
            if (!loaded) {
                er.events.push_back("compute load-failed");
                break;
            }
            ThreadRegs &regs = proc->regs();
            u64 data_va = scratch_va + 3 * pageSize;
            regs.c[8] = proc->as()
                            .capForRange(data_va, pageSize,
                                         PROT_READ | PROT_WRITE, false)
                            .setAddress(data_va);
            regs.x[8] = data_va;
            for (unsigned i = 4; i <= 10; ++i) {
                if (i != 8)
                    regs.x[i] = 0;
            }
            // Persistent per-process execution context: the decode
            // cache stays warm across Compute ops, and execution runs
            // through the kernel's scheduler (preemptible at the
            // configured time slice) instead of a private loop.
            sched::Scheduler &s = sched::schedulerFor(kern);
            sched::ExecContext &cx = s.context(*proc);
            if (abi == Abi::CheriAbi) {
                cx.interp->setEntry(
                    proc->as()
                        .capForRange(code_va, pageSize,
                                     PROT_READ | PROT_EXEC, false)
                        .setAddress(code_va));
            } else {
                cx.interp->setEntry(Capability::fromAddress(code_va));
            }
            cx.stepLimit = 4096;
            s.ready(cx);
            kern.runUntilIdle();
            isa::InterpResult res = cx.last;
            // Steps across the whole ready-window, not just the final
            // slice — matches what a single run(4096) used to report.
            std::string ev = fmt(
                "compute st%d fault %s steps %" PRIu64,
                static_cast<int>(res.status),
                std::string(capFaultName(res.fault)).c_str(),
                cx.retired() - cx.readyBaseSteps);
            for (unsigned i = 4; i <= 10; ++i) {
                if (i != 8)
                    ev += fmt(" x%u=%" PRIu64, i, regs.x[i]);
            }
            er.events.push_back(ev);
            break;
          }
          case K::Revoke: {
            // Quarantine-shaped ranges: mostly never-allocated high
            // addresses (exercising the skip-clean fast path), with an
            // occasional live region (exercising real tag clearing and
            // the oracle's closed-epoch absence rule).
            std::vector<std::pair<u64, u64>> ranges;
            u64 lo = 0x7000000000 + (op.a % 8) * 0x10000;
            ranges.emplace_back(lo, lo + (1 + op.b % 4) * pageSize);
            if (op.c % 2 && !regions.empty()) {
                const Region &r = regions[op.c % regions.size()];
                ranges.emplace_back(r.va, r.va + r.len);
            }
            u32 flags = (op.c % 3 == 0) ? REVOKE_INCREMENTAL
                                        : REVOKE_SYNC;
            if (op.b % 4 == 0)
                flags |= REVOKE_FORCE_FULL;
            u64 stage_va = scratch_va + 2 * pageSize + 512;
            proc->as().writeBytes(stage_va, ranges.data(),
                                  ranges.size() * 16);
            sysInvoke(kern, *proc, SysNum::Revoke2,
                      {SysArg::p(at(scratch, stage_va)),
                       SysArg::i(ranges.size()), SysArg::i(flags)});
            // Scrub the staging bytes: live-region ranges contain
            // ABI-specific mapping addresses, which must not leak into
            // the scratch image comparison.
            u8 zeros[16 * 8] = {};
            proc->as().writeBytes(stage_va, zeros, ranges.size() * 16);
            break;
          }
          case K::ThrNew: {
            if (tids.size() >= 3)
                break;
            // Explicit stack size: usually sane, occasionally absurd —
            // the kernel must reject the latter with E_INVAL rather
            // than minting a capability outside the user root.
            u64 sz = (op.c % 4 == 0) ? ~u64(0) : op.c % (8 * pageSize);
            auto rr =
                sysInvoke(kern, *proc, SysNum::ThrNew, {SysArg::i(sz)});
            if (!rr.res.failed())
                tids.push_back(rr.res.value);
            break;
          }
          case K::ThrSwitch: {
            // Host-driven, so no scheduler context is running and the
            // kernel performs the legacy immediate register-file swap;
            // targets include tid 0 so the main thread comes back.
            u64 target = (tids.empty() || op.b % 3 == 0)
                             ? 0
                             : tids[op.a % tids.size()];
            sysInvoke(kern, *proc, SysNum::ThrSwitch,
                      {SysArg::i(target)});
            break;
          }
          case K::Wait4: {
            if (childPids.empty()) {
                // No children: deterministic E_CHILD both runs.
                sysInvoke(kern, *proc, SysNum::Wait4, {SysArg::i(0)});
                break;
            }
            // Force a tracked child to exit (host-side, identically in
            // both runs), then reap it: exercises the zombie-reap path
            // without depending on scheduler-driven child execution.
            u64 idx = op.a % childPids.size();
            u64 pid = childPids[idx];
            if (Process *child = kern.findProcess(pid))
                kern.exitProcess(*child, static_cast<int>(op.b % 8));
            sysInvoke(kern, *proc, SysNum::Wait4, {SysArg::i(pid)});
            childPids.erase(childPids.begin() +
                            static_cast<std::ptrdiff_t>(idx));
            break;
          }
        }
    }

    // Final state capture: injector off so imaging itself cannot fail
    // for injected reasons.
    kern.faultInjector().disarmAll();
    capturePanic(er, kern);

    if (opts.checkEvery) {
        Report rep = Invariants::check(kern);
        ++er.oracleRuns;
        if (!rep.violations.empty())
            captureSnapshot(er, kern, opts);
        for (Violation &v : rep.violations) {
            if (er.violations.size() < maxViolationsPerRun)
                er.violations.push_back(std::move(v));
        }
    }

    if (VNodeRef out = kern.vfs().lookup("/fz_out"))
        er.output = out->data;

    for (u64 i = 0; i < regions.size(); ++i) {
        hashRegion(er, *proc, fmt("r%" PRIu64, i).c_str(),
                   regions[i].va, regions[i].len);
    }
    hashRegion(er, *proc, "scratch", scratch_va, 4 * pageSize);

    kern.forEachProcess([&](const Process &p) {
        er.events.push_back(
            fmt("proc %" PRIu64 " exited%d status%d death %s", p.pid(),
                p.exited() ? 1 : 0, p.exitStatus(),
                p.death()
                    ? std::string(capFaultName(p.death()->fault))
                          .c_str()
                    : "-"));
    });
    er.events.push_back(fmt("handlers %" PRIu64, handler_runs));

    if (opts.keepMetricsJson)
        er.metricsJson = metrics.toJson();

    // The hook closure references stack locals; detach before unwind.
    kern.setCheckHook(nullptr);
    return er;
}

/**
 * Multi-process mode: 2-4 guests execute generated programs
 * concurrently under the kernel scheduler, preempted at the configured
 * time slice.  The invariant oracle runs at EVERY slice boundary — the
 * scheduler's core soundness claim is that slice boundaries are
 * quiescent points — and the interleaved syscall event stream plus the
 * per-guest final states are compared across ABIs.
 */
ExecResult
execCaseMulti(Abi abi, const FuzzOptions &opts, u64 case_seed)
{
    ExecResult er;
    obs::Metrics metrics; // must outlive the kernel
    KernelConfig cfg;
    cfg.frameCapacity = opts.frameCapacity;
    cfg.swapSlotBudget = opts.swapSlotBudget;
    cfg.timeSliceSteps = 32; // short slices: more boundaries to check
    Kernel kern(cfg);
    kern.setMetrics(&metrics);
    snap::installPanicSnapshotHook(kern);
    TapGuard tap(kern.faultInjector(), opts.replay);
    sched::Scheduler &s = sched::schedulerFor(kern);

    u64 n = opts.multiProc < 2 ? 2 : (opts.multiProc > 4 ? 4 : opts.multiProc);
    FuzzRng rng(case_seed ^ 0x5eedULL, opts.replay);
    SelfObject prog = fuzzProgram();

    kern.setCheckHook([&](Process &p, u64 code) {
        ++er.syscalls;
        if (opts.replay)
            opts.replay->quiesce(kern, p, code);
        const SyscallInfo *si = syscallInfo(code);
        const ThreadRegs &r = p.regs();
        er.events.push_back(fmt("p%" PRIu64 " %s e%d v%" PRIu64,
                                p.pid(),
                                std::string(si ? si->name : "invalid")
                                    .c_str(),
                                r.x[regSysErr] != 0 ? 1 : 0,
                                r.x[regRetVal]));
    });

    // One pipe shared by every guest: the same two open-file
    // descriptions land in each guest's fd table (same slots, both
    // ABIs), so generated producer/consumer ops move bytes across
    // scheduler-sliced processes.  O_NONBLOCK keeps the streams
    // ABI-comparable: a generated op mix has no liveness guarantee
    // (a reader with no willing writer would park forever and its
    // final dump would expose the ABI-specific buffer address still
    // sitting in x5 at the rewound syscall), so would-block ops must
    // return E_AGAIN and let the program reach the x5 normalization.
    // The park/wake path itself is covered by test_fd and pipe_bench.
    auto [pipe_rd, pipe_wr] = Vfs::makePipe();
    auto pipe_rof = std::make_shared<OpenFile>();
    pipe_rof->node = pipe_rd;
    pipe_rof->flags = O_RDONLY | O_NONBLOCK;
    auto pipe_wof = std::make_shared<OpenFile>();
    pipe_wof->node = pipe_wr;
    pipe_wof->flags = O_WRONLY | O_NONBLOCK;

    std::vector<Process *> guests;
    for (u64 i = 0; i < n; ++i) {
        Process *proc = kern.spawn(abi, "fuzz-mp");
        if (kern.execve(*proc, prog, {"fuzz-mp"}, {}) != E_OK) {
            er.setupFailed = true;
            er.events.push_back("execve-failed");
            return er;
        }
        int pipe_rfd = proc->allocFd(pipe_rof);
        int pipe_wfd = proc->allocFd(pipe_wof);
        u64 code_va = proc->as().map(0, pageSize,
                                     PROT_READ | PROT_WRITE | PROT_EXEC,
                                     MappingKind::Text, false, false,
                                     "fuzzcode");
        u64 data_va = proc->as().map(0, pageSize,
                                     PROT_READ | PROT_WRITE,
                                     MappingKind::Data, false, false,
                                     "fuzzdata");
        lower(genMultiProgram(rng), abi, pipe_rfd, pipe_wfd)
            .writeTo(proc->as(), code_va);
        ThreadRegs &regs = proc->regs();
        regs.c[8] = proc->as()
                        .capForRange(data_va, pageSize,
                                     PROT_READ | PROT_WRITE, false)
                        .setAddress(data_va);
        regs.x[8] = data_va;
        for (unsigned ri = 4; ri <= 10; ++ri) {
            if (ri != 8)
                regs.x[ri] = 0;
        }
        sched::ExecContext &cx = s.context(*proc);
        if (abi == Abi::CheriAbi) {
            cx.interp->setEntry(
                proc->as()
                    .capForRange(code_va, pageSize,
                                 PROT_READ | PROT_EXEC, false)
                    .setAddress(code_va));
        } else {
            cx.interp->setEntry(Capability::fromAddress(code_va));
        }
        cx.stepLimit = 16384;
        s.ready(cx);
        guests.push_back(proc);
    }

    // Fault injection in multi-process mode: armed only after guest
    // setup, so injected exhaustion lands in scheduled execution (the
    // comparison is skipped for injected runs, as in single-proc mode;
    // the oracle at every slice boundary is the sound check).
    if (opts.inject) {
        FaultInjector &inj = kern.faultInjector();
        inj.failRandomly(FaultPoint::FrameAlloc, 13, case_seed ^ 0x1111);
        inj.failRandomly(FaultPoint::SwapOut, 7, case_seed ^ 0x2222);
        inj.failRandomly(FaultPoint::SwapIn, 5, case_seed ^ 0x3333);
        inj.failRandomly(FaultPoint::TagBitFlip, 31, case_seed ^ 0x4444);
        inj.failRandomly(FaultPoint::DataBitFlip, 211,
                         case_seed ^ 0x5555);
    }

    // The oracle at every slice boundary: register files have just
    // been switched at an instruction boundary, so every whole-system
    // invariant (including the metrics-sched mirror) must hold.
    if (opts.checkEvery) {
        s.setSliceHook([&](Process &) {
            Report rep = Invariants::check(kern);
            ++er.oracleRuns;
            if (!rep.violations.empty())
                captureSnapshot(er, kern, opts);
            for (Violation &v : rep.violations) {
                if (er.violations.size() < maxViolationsPerRun)
                    er.violations.push_back(std::move(v));
            }
        });
    }
    kern.runUntilIdle();
    s.setSliceHook(nullptr);
    kern.faultInjector().disarmAll();
    capturePanic(er, kern);

    // Final states: per-guest halt status, work registers, threads.
    for (u64 i = 0; i < guests.size(); ++i) {
        Process *proc = guests[i];
        sched::ExecContext &cx = s.context(*proc, 0);
        std::string ev =
            fmt("guest %" PRIu64 " st%d fault %s threads %" PRIu64, i,
                static_cast<int>(cx.last.status),
                std::string(capFaultName(cx.last.fault)).c_str(),
                proc->threadCount());
        for (unsigned ri = 4; ri <= 10; ++ri) {
            if (ri != 8)
                ev += fmt(" x%u=%" PRIu64, ri, proc->regs().x[ri]);
        }
        er.events.push_back(ev);
    }
    er.events.push_back(fmt("sched switches %" PRIu64 " preempt %" PRIu64
                            " slices %" PRIu64 " sleeps %" PRIu64
                            " fdblocks %" PRIu64 " wakes %" PRIu64,
                            s.stats().contextSwitches,
                            s.stats().preemptions, s.stats().slices,
                            s.stats().blocksSleep, s.stats().blocksFd,
                            s.stats().wakes));

    if (opts.keepMetricsJson)
        er.metricsJson = metrics.toJson();

    kern.setCheckHook(nullptr);
    return er;
}

} // namespace

CaseReport
DiffFuzzer::runCase(u64 index)
{
    CaseReport cr;
    cr.index = index;
    cr.caseSeed = opts.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));

    ExecResult legacy, cheri;
    if (opts.multiProc) {
        legacy = execCaseMulti(Abi::Mips64, opts, cr.caseSeed);
        cheri = execCaseMulti(Abi::CheriAbi, opts, cr.caseSeed);
    } else {
        std::vector<GenOp> ops =
            generate(cr.caseSeed, opts.opsPerCase, opts.replay);
        legacy = execCase(Abi::Mips64, opts, cr.caseSeed, ops);
        cheri = execCase(Abi::CheriAbi, opts, cr.caseSeed, ops);
    }
    if (opts.keepMetricsJson)
        cr.metricsJson = legacy.metricsJson + cheri.metricsJson;
    cr.panicJson = legacy.panicJson.empty() ? cheri.panicJson
                                            : legacy.panicJson;

    cr.syscalls = legacy.syscalls + cheri.syscalls;
    cr.oracleRuns = legacy.oracleRuns + cheri.oracleRuns;
    for (Violation &v : legacy.violations) {
        v.detail = "mips64: " + v.detail;
        cr.violations.push_back(std::move(v));
    }
    for (Violation &v : cheri.violations) {
        v.detail = "cheriabi: " + v.detail;
        cr.violations.push_back(std::move(v));
    }

    // Under fault injection the two ABI runs make different numbers of
    // frame allocations and swap operations before reaching the same
    // op, so a period-N schedule fires at different points in each
    // timeline and event streams diverge benignly.  The invariant
    // oracle is the sound check there; the differential comparison is
    // only meaningful on uninjected runs.
    if (!opts.inject) {
        constexpr u64 maxDivergences = 8;
        u64 n = std::max(legacy.events.size(), cheri.events.size());
        for (u64 i = 0;
             i < n && cr.divergences.size() < maxDivergences; ++i) {
            const std::string &a =
                i < legacy.events.size() ? legacy.events[i]
                                         : "<missing>";
            const std::string &b =
                i < cheri.events.size() ? cheri.events[i] : "<missing>";
            if (a != b) {
                cr.divergences.push_back(fmt(
                    "event %" PRIu64 ": mips64 '%s' vs cheriabi '%s'",
                    i, a.c_str(), b.c_str()));
            }
        }
        if (legacy.output != cheri.output &&
            cr.divergences.size() < maxDivergences) {
            cr.divergences.push_back(
                fmt("output bytes differ: mips64 %zu bytes, cheriabi "
                    "%zu bytes",
                    legacy.output.size(), cheri.output.size()));
        }
    }

    if (opts.replay)
        opts.replay->caseEnd(index);
    if (cr.failed() && !opts.artifactPrefix.empty()) {
        std::string stem =
            opts.artifactPrefix + "-case" + std::to_string(index);
        // Prefer the oracle-violation image; a panic's auto-captured
        // image is the fallback (a panicking case usually reset the
        // kernel before the end-of-run oracle pass could snapshot it).
        std::vector<u8> *img = &legacy.snapshot;
        if (img->empty())
            img = &cheri.snapshot;
        if (img->empty())
            img = &legacy.panicImage;
        if (img->empty())
            img = &cheri.panicImage;
        writeArtifact(stem + ".img", *img);
        if (!cr.panicJson.empty()) {
            writeArtifact(stem + ".panic.json",
                          std::vector<u8>(cr.panicJson.begin(),
                                          cr.panicJson.end()));
        }
        if (opts.replay && opts.replay->recording()) {
            // A replayable log up to and including this case.
            FuzzOptions o = opts;
            o.cases = index + 1;
            writeArtifact(stem + ".log", opts.replay->serialize(o));
        }
    }
    return cr;
}

FuzzReport
DiffFuzzer::run()
{
    FuzzReport rep;
    rep.seed = opts.seed;
    rep.opsPerCase = opts.opsPerCase;
    for (u64 i = 0; i < opts.cases; ++i) {
        CaseReport cr = runCase(i);
        ++rep.casesRun;
        rep.syscalls += cr.syscalls;
        rep.oracleRuns += cr.oracleRuns;
        if (cr.diverged())
            ++rep.divergentCases;
        rep.violationCount += cr.violations.size();
        if (cr.failed() && rep.failures.size() < FuzzReport::maxFailures)
            rep.failures.push_back(std::move(cr));
        if (mx)
            mx->recordFuzzCase(cr.diverged());
    }
    if (opts.replay) {
        opts.replay->finish();
        if (mx)
            mx->recordReplaySession(!opts.replay->recording(),
                                    opts.replay->entryCount(),
                                    opts.replay->divergenceCount());
    }
    return rep;
}

std::string
FuzzReport::summary() const
{
    std::string out =
        fmt("abi_fuzz: seed %" PRIu64 ", %" PRIu64 " cases, %" PRIu64
            " syscalls, %" PRIu64 " oracle runs: %" PRIu64
            " divergent cases, %" PRIu64 " oracle violations\n",
            seed, casesRun, syscalls, oracleRuns, divergentCases,
            violationCount);
    for (const CaseReport &c : failures) {
        out += fmt("case %" PRIu64 " (case seed 0x%" PRIx64 "):\n",
                   c.index, c.caseSeed);
        for (const std::string &d : c.divergences)
            out += "  divergence: " + d + "\n";
        for (const Violation &v : c.violations)
            out += "  violation [" + v.rule + "]: " + v.detail + "\n";
        out += fmt("  reproduce: abi_fuzz --seed %" PRIu64
                   " --cases %" PRIu64 " --ops-per-case %" PRIu64 "\n",
                   seed, c.index + 1, opsPerCase);
    }
    return out;
}

std::string
FuzzReport::toJson() const
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value(std::string_view("cheri.abi_fuzz.v1"));
    w.key("seed").value(seed);
    w.key("ops_per_case").value(opsPerCase);
    w.key("cases_run").value(casesRun);
    w.key("syscalls").value(syscalls);
    w.key("oracle_runs").value(oracleRuns);
    w.key("divergent_cases").value(divergentCases);
    w.key("oracle_violations").value(violationCount);
    w.key("ok").value(ok());
    w.key("failures").beginArray();
    for (const CaseReport &c : failures) {
        w.beginObject();
        w.key("case").value(c.index);
        w.key("case_seed").value(c.caseSeed);
        w.key("divergences").beginArray();
        for (const std::string &d : c.divergences)
            w.value(std::string_view(d));
        w.endArray();
        w.key("violations").beginArray();
        for (const Violation &v : c.violations) {
            w.beginObject();
            w.key("rule").value(std::string_view(v.rule));
            w.key("detail").value(std::string_view(v.detail));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace cheri::check
