/**
 * @file
 * Test-suite analogues for Table 1.
 *
 * The paper demonstrates CheriABI's completeness by running the
 * FreeBSD base-system test suite (~3835 tests), the PostgreSQL
 * pg_regress suite (167 tests, see minidb.h), and the libc++ test
 * suite (~6156 tests) under both ABIs.  These analogue suites mirror
 * the real suites' *structure*: thousands of parameterized checks over
 * the libc/OS surface, a population of feature-gated skips, a set of
 * known-broken tests that fail everywhere, a handful of programs
 * excluded from the CheriABI build, and — the interesting part — tests
 * whose legacy pointer idioms genuinely misbehave under CheriABI.
 * Every check really executes against the kernel and runtime; the
 * composition of the corpus is what is calibrated to the real suites.
 */

#ifndef CHERI_APPS_TESTSUITE_H
#define CHERI_APPS_TESTSUITE_H

#include <string>
#include <vector>

#include "guest/context.h"

namespace cheri::apps
{

/** Totals in the Table 1 format. */
struct SuiteTotals
{
    int pass = 0;
    int fail = 0;
    int skip = 0;

    int total() const { return pass + fail + skip; }
};

/** Run the FreeBSD-base-suite analogue under @p abi. */
SuiteTotals runFreebsdSuite(Abi abi);

/** Run the libc++-suite analogue under @p abi. */
SuiteTotals runLibcxxSuite(Abi abi);

} // namespace cheri::apps

#endif // CHERI_APPS_TESTSUITE_H
