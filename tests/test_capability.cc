/**
 * @file
 * Unit and property tests for the architectural capability type:
 * provenance validity, integrity, and monotonicity (paper section 2).
 */

#include <gtest/gtest.h>

#include <random>

#include "cap/capability.h"

namespace cheri
{
namespace
{

TEST(Capability, NullIsUntaggedAndEmpty)
{
    Capability c;
    EXPECT_FALSE(c.tag());
    EXPECT_EQ(c.base(), 0u);
    EXPECT_EQ(c.length(), 0u);
    EXPECT_EQ(c.address(), 0u);
    EXPECT_TRUE(c.isNull());
}

TEST(Capability, RootSpansAddressSpaceWithAllPerms)
{
    Capability r = Capability::root();
    EXPECT_TRUE(r.tag());
    EXPECT_EQ(r.base(), 0u);
    EXPECT_EQ(r.top(), u128{1} << 64);
    EXPECT_EQ(r.length(), ~u64{0}); // saturated
    EXPECT_TRUE(r.hasPerms(permsAll));
    EXPECT_FALSE(r.sealed());
}

TEST(Capability, SetBoundsNarrows)
{
    Capability r = Capability::root().setAddress(0x1000);
    auto b = r.setBounds(0x100);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.value().base(), 0x1000u);
    EXPECT_EQ(b.value().top(), u128{0x1100});
    EXPECT_EQ(b.value().address(), 0x1000u);
    EXPECT_TRUE(b.value().tag());
}

TEST(Capability, SetBoundsIsMonotonic)
{
    Capability r = Capability::root().setAddress(0x1000);
    Capability small = r.setBounds(0x100).value();
    // Widening beyond the derived bounds must fault.
    auto wide = small.setBounds(0x200);
    EXPECT_FALSE(wide.ok());
    EXPECT_EQ(wide.fault(), CapFault::LengthViolation);
    // Moving the cursor below base and rebounding must also fault.
    Capability below = small.setAddress(0xF00);
    auto r2 = below.setBounds(0x10);
    EXPECT_FALSE(r2.ok());
}

TEST(Capability, SetBoundsOnUntaggedFaults)
{
    Capability c = Capability::fromAddress(0x1000);
    auto r = c.setBounds(0x10);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.fault(), CapFault::TagViolation);
}

TEST(Capability, AndPermsOnlyClearsBits)
{
    Capability r = Capability::root();
    Capability ro = r.andPerms(permsRoData).value();
    EXPECT_TRUE(ro.hasPerms(PERM_LOAD));
    EXPECT_FALSE(ro.hasPerms(PERM_STORE));
    // Re-adding a permission is impossible: andPerms can only intersect.
    Capability again = ro.andPerms(permsAll).value();
    EXPECT_EQ(again.perms(), ro.perms());
}

TEST(Capability, PointerArithmeticKeepsBoundsAndPerms)
{
    Capability c =
        Capability::root().setAddress(0x2000).setBounds(0x100).value();
    Capability d = c.incAddress(0x40);
    EXPECT_TRUE(d.tag());
    EXPECT_EQ(d.address(), 0x2040u);
    EXPECT_EQ(d.base(), c.base());
    EXPECT_EQ(d.top(), c.top());
    EXPECT_EQ(d.perms(), c.perms());
}

TEST(Capability, FarOutOfBoundsArithmeticClearsTag)
{
    Capability c =
        Capability::root().setAddress(0x2000).setBounds(0x10).value();
    // Small out-of-bounds roam (one-past-the-end) stays representable.
    EXPECT_TRUE(c.incAddress(0x10).tag());
    // A wildly out-of-bounds cursor is unrepresentable: tag clears.
    Capability far = c.incAddress(s64{1} << 40);
    EXPECT_FALSE(far.tag());
    // The data (address) is still there, as with any integer.
    EXPECT_EQ(far.address(), 0x2000u + (u64{1} << 40));
}

TEST(Capability, CheckAccessEnforcesBoundsAndPerms)
{
    Capability c = Capability::root()
                       .setAddress(0x3000)
                       .setBounds(0x100)
                       .value()
                       .andPerms(permsRoData)
                       .value();
    EXPECT_FALSE(c.checkAccess(0x3000, 0x100, PERM_LOAD).has_value());
    EXPECT_EQ(c.checkAccess(0x3000, 0x101, PERM_LOAD).value(),
              CapFault::LengthViolation);
    EXPECT_EQ(c.checkAccess(0x2FFF, 1, PERM_LOAD).value(),
              CapFault::LengthViolation);
    EXPECT_EQ(c.checkAccess(0x3000, 8, PERM_STORE).value(),
              CapFault::PermitStoreViolation);
    EXPECT_EQ(c.withoutTag().checkAccess(0x3000, 8, PERM_LOAD).value(),
              CapFault::TagViolation);
}

TEST(Capability, SealMakesImmutableAndNonDereferenceable)
{
    Capability sealer = Capability::root()
                            .setAddress(42)
                            .setBounds(1)
                            .value();
    Capability data =
        Capability::root().setAddress(0x4000).setBounds(0x100).value();
    auto sealed = data.seal(sealer);
    ASSERT_TRUE(sealed.ok());
    EXPECT_TRUE(sealed.value().sealed());
    EXPECT_EQ(sealed.value().otype(), 42u);
    // Sealed: no deref, no bounds ops, arithmetic strips the tag.
    EXPECT_EQ(sealed.value().checkAccess(0x4000, 4, PERM_LOAD).value(),
              CapFault::SealViolation);
    EXPECT_FALSE(sealed.value().setBounds(8).ok());
    EXPECT_FALSE(sealed.value().incAddress(4).tag());
    // Unseal with the right authority restores it exactly.
    auto unsealed = sealed.value().unseal(sealer);
    ASSERT_TRUE(unsealed.ok());
    EXPECT_EQ(unsealed.value(), data);
}

TEST(Capability, UnsealRequiresMatchingOtype)
{
    Capability sealer42 =
        Capability::root().setAddress(42).setBounds(1).value();
    Capability sealer43 =
        Capability::root().setAddress(43).setBounds(1).value();
    Capability data =
        Capability::root().setAddress(0x4000).setBounds(0x100).value();
    Capability sealed = data.seal(sealer42).value();
    auto r = sealed.unseal(sealer43);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.fault(), CapFault::TypeViolation);
}

TEST(Capability, SealRequiresPermission)
{
    Capability no_seal = Capability::root()
                             .setAddress(42)
                             .setBounds(1)
                             .value()
                             .andPerms(permsData)
                             .value();
    Capability data = Capability::root();
    auto r = data.seal(no_seal);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.fault(), CapFault::PermitSealViolation);
}

TEST(Capability, BuildRederivesWithinAuthority)
{
    Capability root = Capability::root();
    Capability pattern = root.setAddress(0x5000)
                             .setBounds(0x40)
                             .value()
                             .andPerms(permsData)
                             .value()
                             .withoutTag();
    auto r = Capability::build(root, pattern);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().tag());
    EXPECT_EQ(r.value().base(), 0x5000u);
    EXPECT_EQ(r.value().length(), 0x40u);
}

TEST(Capability, BuildRefusesEscalation)
{
    Capability narrow = Capability::root()
                            .setAddress(0x5000)
                            .setBounds(0x40)
                            .value()
                            .andPerms(permsRoData)
                            .value();
    // Pattern asks for wider bounds than the authority has.
    Capability wide_pattern =
        Capability::root().setAddress(0x5000).setBounds(0x80).value()
            .withoutTag();
    EXPECT_FALSE(Capability::build(narrow, wide_pattern).ok());
    // Pattern asks for a permission the authority lacks.
    Capability store_pattern = Capability::root()
                                   .setAddress(0x5000)
                                   .setBounds(0x40)
                                   .value()
                                   .andPerms(permsData)
                                   .value()
                                   .withoutTag();
    auto r = Capability::build(narrow, store_pattern);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.fault(), CapFault::MonotonicityViolation);
}

TEST(Capability, BytesRoundTripLosesTag)
{
    Capability c =
        Capability::root().setAddress(0x6000).setBounds(0x40).value();
    Capability back = Capability::fromBytes(c.toBytes());
    // Raw bytes never carry provenance.
    EXPECT_FALSE(back.tag());
    EXPECT_EQ(back.address(), 0x6000u);
}

TEST(Capability, ToStringIsInformative)
{
    Capability c =
        Capability::root().setAddress(0x1000).setBounds(0x40).value();
    std::string s = c.toString();
    EXPECT_NE(s.find("1000"), std::string::npos);
    EXPECT_NE(s.find("t"), std::string::npos);
}

/**
 * Property: any chain of derivation operations starting from a bounded
 * capability yields either an untagged capability or one whose bounds
 * and permissions are a subset of the original's (monotonicity).
 */
class MonotonicityProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MonotonicityProperty, RandomDerivationChainsNeverEscalate)
{
    std::mt19937_64 rng(GetParam());
    Capability origin = Capability::root()
                            .setAddress(0x10000)
                            .setBounds(0x10000)
                            .value()
                            .andPerms(permsData | PERM_SW_VMMAP)
                            .value();
    Capability cur = origin;
    for (int step = 0; step < 200; ++step) {
        switch (rng() % 4) {
          case 0: {
            u64 len = rng() % 0x20000;
            auto r = cur.setBounds(len);
            if (r.ok())
                cur = r.value();
            break;
          }
          case 1:
            cur = cur.incAddress(static_cast<s64>(rng() % 0x40000) -
                                 0x20000);
            break;
          case 2: {
            auto r = cur.andPerms(static_cast<u32>(rng()));
            if (r.ok())
                cur = r.value();
            break;
          }
          case 3: {
            // Round-trip through bytes: must never resurrect a tag.
            bool was_tagged = cur.tag();
            Capability rt = Capability::fromBytes(cur.toBytes());
            EXPECT_FALSE(rt.tag());
            if (!was_tagged)
                cur = rt;
            break;
          }
        }
        if (!cur.tag())
            continue;
        EXPECT_GE(cur.base(), origin.base());
        EXPECT_LE(cur.top(), origin.top());
        EXPECT_EQ(cur.perms() & ~origin.perms(), 0u)
            << "derived capability gained a permission";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityProperty,
                         ::testing::Range(0u, 32u));

/**
 * Property: checkAccess accepts exactly the [base, top) range for an
 * in-perms access, across many bounds shapes.
 */
class BoundsProperty
    : public ::testing::TestWithParam<std::pair<u64, u64>>
{
};

TEST_P(BoundsProperty, AccessAcceptedIffInBounds)
{
    auto [base, len] = GetParam();
    Capability root = Capability::root().setAddress(base);
    auto r = root.setBounds(len);
    ASSERT_TRUE(r.ok());
    const Capability c = r.value();
    // setBounds may round outward; check against the *derived* bounds.
    u64 b = c.base();
    u64 t = static_cast<u64>(c.top());
    EXPECT_FALSE(c.checkAccess(b, 1, PERM_LOAD).has_value());
    EXPECT_FALSE(c.checkAccess(t - 1, 1, PERM_LOAD).has_value());
    EXPECT_TRUE(c.checkAccess(b - 1, 1, PERM_LOAD).has_value());
    EXPECT_TRUE(c.checkAccess(t, 1, PERM_LOAD).has_value());
    EXPECT_TRUE(c.checkAccess(b, t - b + 1, PERM_LOAD).has_value());
    EXPECT_FALSE(c.checkAccess(b, t - b, PERM_LOAD).has_value());
    // The requested region is always contained in the derived region.
    EXPECT_LE(b, base);
    EXPECT_GE(t, base + len);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BoundsProperty,
    ::testing::Values(std::pair<u64, u64>{0x1000, 1},
                      std::pair<u64, u64>{0x1000, 16},
                      std::pair<u64, u64>{0x1000, 4096},
                      std::pair<u64, u64>{0x12340, 0x777},
                      std::pair<u64, u64>{0x100000, 0x123456},
                      std::pair<u64, u64>{0x40000000, 0x10000001},
                      std::pair<u64, u64>{0x8000000000, 0x2000},
                      std::pair<u64, u64>{0x10000, 0xFFF}));

} // namespace
} // namespace cheri
