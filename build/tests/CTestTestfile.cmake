# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_capability[1]_include.cmake")
include("/root/repo/build/tests/test_compression[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_vm_syscalls[1]_include.cmake")
include("/root/repo/build/tests/test_signal[1]_include.cmake")
include("/root/repo/build/tests/test_rtld[1]_include.cmake")
include("/root/repo/build/tests/test_ptrace[1]_include.cmake")
include("/root/repo/build/tests/test_guest[1]_include.cmake")
include("/root/repo/build/tests/test_libc[1]_include.cmake")
include("/root/repo/build/tests/test_events[1]_include.cmake")
include("/root/repo/build/tests/test_bodiag[1]_include.cmake")
include("/root/repo/build/tests/test_compat[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_coredump[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_threads_mmapfd[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_vfs[1]_include.cmake")
