/**
 * @file
 * Randomized stress tests checked against host-side reference models:
 * the virtual-memory system under random map/unmap/write/swap traffic,
 * the allocator under random malloc/free/realloc with shadow contents,
 * and cross-feature interactions (fork x swap x signals).
 */

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "libc/malloc.h"
#include "rng_util.h"
#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

// ---------------------------------------------------------------------
// VM stress vs a byte-level reference model
// ---------------------------------------------------------------------

class VmStress : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(VmStress, RandomOpsMatchReferenceModel)
{
    CHERI_TRACE_SEED(GetParam(), "CHERI_TEST_STRESS_SEEDS");
    std::mt19937_64 rng(GetParam());
    PhysMem phys;
    SwapDevice swap;
    AddressSpace as(phys, swap, 1);

    // Reference: which pages exist (with prot) and their bytes.
    struct RefPage
    {
        u32 prot;
        std::map<u64, u8> bytes; // sparse
    };
    std::map<u64, RefPage> ref; // by page va

    std::vector<u64> regions; // region starts (4 pages each)
    const u64 region_pages = 4;

    for (int step = 0; step < 400; ++step) {
        switch (rng() % 6) {
          case 0: { // map
            u64 start = as.map(0, region_pages * pageSize,
                               PROT_READ | PROT_WRITE,
                               MappingKind::Data);
            ASSERT_NE(start, 0u);
            regions.push_back(start);
            for (u64 p = 0; p < region_pages; ++p) {
                ref[start + p * pageSize] =
                    RefPage{PROT_READ | PROT_WRITE, {}};
            }
            break;
          }
          case 1: { // unmap one page of a random region
            if (regions.empty())
                break;
            u64 start = regions[rng() % regions.size()];
            u64 page = start + (rng() % region_pages) * pageSize;
            as.unmap(page, pageSize);
            ref.erase(page);
            break;
          }
          case 2: { // write a few bytes somewhere
            if (regions.empty())
                break;
            u64 start = regions[rng() % regions.size()];
            u64 va = start + rng() % (region_pages * pageSize - 8);
            u64 val = rng();
            CapCheck fault = as.writeBytes(va, &val, 8);
            // Apply to the reference with the same page outcome.
            for (u64 i = 0; i < 8; ++i) {
                auto it = ref.find(pageTrunc(va + i));
                if (fault.has_value())
                    continue;
                ASSERT_NE(it, ref.end());
                it->second.bytes[va + i] =
                    static_cast<u8>(val >> (8 * i));
            }
            // A fault must mean some touched page is unmapped.
            if (fault.has_value()) {
                bool hole = false;
                for (u64 i = 0; i < 8; ++i)
                    hole |= !ref.count(pageTrunc(va + i));
                EXPECT_TRUE(hole);
            }
            break;
          }
          case 3: { // read back and compare
            if (regions.empty())
                break;
            u64 start = regions[rng() % regions.size()];
            u64 va = start + rng() % (region_pages * pageSize - 8);
            u8 buf[8];
            CapCheck fault = as.readBytes(va, buf, 8);
            bool hole = false;
            for (u64 i = 0; i < 8; ++i)
                hole |= !ref.count(pageTrunc(va + i));
            EXPECT_EQ(fault.has_value(), hole);
            if (!fault.has_value()) {
                for (u64 i = 0; i < 8; ++i) {
                    auto &page = ref.at(pageTrunc(va + i));
                    auto it = page.bytes.find(va + i);
                    u8 expect =
                        it == page.bytes.end() ? 0 : it->second;
                    ASSERT_EQ(buf[i], expect)
                        << "at 0x" << std::hex << va + i;
                }
            }
            break;
          }
          case 4: { // swap out a random page
            if (regions.empty())
                break;
            u64 start = regions[rng() % regions.size()];
            as.swapOutPage(start + (rng() % region_pages) * pageSize);
            break;
          }
          case 5: { // swap out many, then touch
            as.swapOutResident(rng() % 8);
            break;
          }
        }
    }
    // Full final verification of every mapped byte we wrote.
    for (const auto &[page_va, page] : ref) {
        for (const auto &[va, expect] : page.bytes) {
            u8 got = 0xEE;
            ASSERT_FALSE(as.readBytes(va, &got, 1).has_value());
            EXPECT_EQ(got, expect);
        }
    }
}

// The seed corpus defaults to 0..7 and is overridable without a
// rebuild: CHERI_TEST_STRESS_SEEDS=3,17,9001 makes each listed seed
// its own ctest case.
INSTANTIATE_TEST_SUITE_P(
    Seeds, VmStress,
    ::testing::ValuesIn(test::seedsFromEnv("CHERI_TEST_STRESS_SEEDS", 8)));

// ---------------------------------------------------------------------
// Allocator stress vs shadow contents
// ---------------------------------------------------------------------

class MallocStress : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MallocStress, RandomLifecyclesKeepContentsAndBounds)
{
    CHERI_TRACE_SEED(GetParam(), "CHERI_TEST_STRESS_SEEDS");
    std::mt19937_64 rng(GetParam());
    GuestSystem sys(Abi::CheriAbi);
    GuestContext &ctx = *sys.ctx;
    GuestMalloc heap(ctx);

    struct Shadow
    {
        GuestPtr ptr;
        std::vector<u8> bytes;
    };
    std::vector<Shadow> live;

    auto fill = [&](Shadow &s) {
        for (size_t i = 0; i < s.bytes.size(); ++i) {
            s.bytes[i] = static_cast<u8>(rng());
            ctx.store<u8>(s.ptr, static_cast<s64>(i), s.bytes[i]);
        }
    };
    auto verify = [&](const Shadow &s) {
        for (size_t i = 0; i < s.bytes.size(); ++i) {
            ASSERT_EQ(ctx.load<u8>(s.ptr, static_cast<s64>(i)),
                      s.bytes[i]);
        }
    };

    for (int step = 0; step < 500; ++step) {
        switch (rng() % 4) {
          case 0: { // malloc
            u64 size = 1 + rng() % 700;
            Shadow s;
            s.ptr = heap.malloc(size);
            ASSERT_TRUE(s.ptr.cap.tag());
            ASSERT_GE(s.ptr.cap.length(), size);
            s.bytes.resize(size);
            fill(s);
            live.push_back(std::move(s));
            break;
          }
          case 1: { // free a random one
            if (live.empty())
                break;
            size_t i = rng() % live.size();
            ASSERT_TRUE(heap.free(live[i].ptr));
            live.erase(live.begin() + static_cast<long>(i));
            break;
          }
          case 2: { // realloc a random one
            if (live.empty())
                break;
            size_t i = rng() % live.size();
            u64 new_size = 1 + rng() % 900;
            GuestPtr np = heap.realloc(live[i].ptr, new_size);
            ASSERT_TRUE(np.cap.tag());
            live[i].ptr = np;
            size_t keep = std::min<size_t>(live[i].bytes.size(),
                                           new_size);
            live[i].bytes.resize(keep);
            verify(live[i]);
            live[i].bytes.resize(new_size);
            for (size_t j = keep; j < new_size; ++j) {
                live[i].bytes[j] = static_cast<u8>(rng());
                ctx.store<u8>(live[i].ptr, static_cast<s64>(j),
                              live[i].bytes[j]);
            }
            break;
          }
          case 3: { // verify a random survivor
            if (live.empty())
                break;
            verify(live[rng() % live.size()]);
            break;
          }
        }
    }
    // No two live capabilities may overlap, ever.
    for (size_t i = 0; i < live.size(); ++i) {
        for (size_t j = i + 1; j < live.size(); ++j) {
            u64 ai = live[i].ptr.cap.base();
            u64 ti = static_cast<u64>(live[i].ptr.cap.top());
            u64 aj = live[j].ptr.cap.base();
            u64 tj = static_cast<u64>(live[j].ptr.cap.top());
            ASSERT_TRUE(ti <= aj || tj <= ai);
        }
    }
    for (const Shadow &s : live)
        verify(s);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MallocStress,
    ::testing::ValuesIn(test::seedsFromEnv("CHERI_TEST_STRESS_SEEDS", 6)));

// ---------------------------------------------------------------------
// Cross-feature interactions
// ---------------------------------------------------------------------

TEST(Interactions, ForkedChildSurvivesParentSwapAndSignals)
{
    GuestSystem sys(Abi::CheriAbi);
    GuestContext &ctx = *sys.ctx;
    GuestMalloc heap(ctx);
    // Parent builds a pointer-laced structure.
    GuestPtr table = heap.malloc(8 * capSize);
    for (int i = 0; i < 8; ++i) {
        GuestPtr cell = heap.malloc(16);
        ctx.store<u64>(cell, 0, 100 + i);
        ctx.storePtr(table, i * static_cast<s64>(capSize), cell);
    }
    Process *child = sys.kern.fork(*sys.proc);
    GuestContext cctx(sys.kern, *child);

    // Parent: swap out, take a signal, mutate.
    sys.proc->as().swapOutResident(1 << 20);
    u64 hid = sys.proc->registerHandler([](Process &, SigFrame &) {});
    sys.kern.sysSigaction(*sys.proc, SIG_USR1,
                          {SigAction::Kind::Handler, hid});
    sys.kern.sysKill(*sys.proc, sys.proc->pid(), SIG_USR1);
    sys.kern.deliverSignals(*sys.proc);
    GuestPtr p0 = ctx.loadPtr(table, 0);
    ctx.store<u64>(p0, 0, 999);

    // Child still sees the pre-fork world, tags intact.
    for (int i = 0; i < 8; ++i) {
        GuestPtr cell = cctx.loadPtr(table, i * static_cast<s64>(capSize));
        ASSERT_TRUE(cell.cap.tag()) << i;
        EXPECT_EQ(cctx.load<u64>(cell), 100u + i) << i;
    }
    // And the parent sees its own mutation.
    EXPECT_EQ(ctx.load<u64>(ctx.loadPtr(table, 0)), 999u);
}

TEST(Interactions, SwapStormPreservesWholeHeapGraph)
{
    GuestSystem sys(Abi::CheriAbi);
    GuestContext &ctx = *sys.ctx;
    GuestMalloc heap(ctx);
    // A 512-node linked structure with payloads.
    GuestPtr head;
    for (int i = 0; i < 512; ++i) {
        GuestPtr node = heap.malloc(32);
        ctx.storePtr(node, 0, head);
        ctx.store<u64>(node, 16, static_cast<u64>(i));
        head = node;
    }
    // Three full eviction storms with walks in between.
    for (int storm = 0; storm < 3; ++storm) {
        sys.proc->as().swapOutResident(1 << 20);
        u64 sum = 0, count = 0;
        GuestPtr cur = head;
        while (!cur.isNull() && cur.addr() != 0) {
            sum += ctx.load<u64>(cur, 16);
            ++count;
            cur = ctx.loadPtr(cur, 0);
        }
        ASSERT_EQ(count, 512u) << "storm " << storm;
        ASSERT_EQ(sum, 511u * 512 / 2) << "storm " << storm;
    }
    EXPECT_GE(sys.kern.swapDevice().totalTagsPreserved(), 511u);
}

TEST(Interactions, SignalStormDuringPointerWork)
{
    GuestSystem sys(Abi::CheriAbi);
    GuestContext &ctx = *sys.ctx;
    GuestMalloc heap(ctx);
    GuestPtr buf = heap.malloc(64);
    sys.proc->regs().c[4] = buf.cap;
    int handled = 0;
    u64 hid = sys.proc->registerHandler(
        [&](Process &, SigFrame &) { ++handled; });
    sys.kern.sysSigaction(*sys.proc, SIG_USR1,
                          {SigAction::Kind::Handler, hid});
    sys.kern.sysSigaction(*sys.proc, SIG_USR2,
                          {SigAction::Kind::Handler, hid});
    for (int i = 0; i < 64; ++i) {
        sys.kern.sysKill(*sys.proc, sys.proc->pid(),
                         i % 2 ? SIG_USR1 : SIG_USR2);
        sys.kern.deliverSignals(*sys.proc);
        ASSERT_TRUE(sys.proc->regs().c[4].tag()) << i;
        ctx.store<u64>(GuestPtr(sys.proc->regs().c[4]), 0,
                       static_cast<u64>(i));
    }
    EXPECT_EQ(handled, 64);
    EXPECT_EQ(ctx.load<u64>(buf), 63u);
}

} // namespace
} // namespace cheri
// (appended) ---------------------------------------------------------
// Abstract-capability containment and ASLR invariants.

namespace cheri
{
namespace
{

TEST(Containment, HeavyWorkloadNeverEscapesPrincipalRoot)
{
    test::GuestSystem sys(Abi::CheriAbi);
    GuestContext &ctx = *sys.ctx;
    GuestMalloc heap(ctx);
    // Build a dense, pointer-laced heap, churn it, swap some of it.
    std::vector<GuestPtr> live;
    for (int i = 0; i < 200; ++i) {
        GuestPtr p = heap.malloc(48 + (i % 5) * 32);
        if (!live.empty())
            ctx.storePtr(p, 0, live[static_cast<size_t>(i) % live.size()]);
        live.push_back(p);
        if (i % 3 == 0 && live.size() > 4) {
            heap.free(live.front());
            live.erase(live.begin());
        }
    }
    sys.proc->as().swapOutResident(64);
    ctx.load<u64>(live.back(), 0); // force some swap-ins
    EXPECT_EQ(sys.proc->as().verifyCapContainment(), 0u)
        << "every tagged capability must stay within its principal's "
           "root";
    // Spot check the register file under the same rule.
    const Capability &root = sys.proc->as().rederivationRoot();
    for (const Capability &c : sys.proc->regs().c) {
        if (!c.tag())
            continue;
        EXPECT_GE(c.base(), root.base());
        EXPECT_LE(c.top(), root.top());
    }
}

TEST(Containment, VerifierDetectsPlantedViolation)
{
    // Sanity: the checker is not vacuous.  Plant an out-of-authority
    // capability through the physical layer (something no architectural
    // path could do).
    PhysMem phys;
    SwapDevice swap;
    AddressSpace as(phys, swap, 1);
    u64 va = as.map(0, pageSize, PROT_READ | PROT_WRITE,
                    MappingKind::Data);
    Capability evil = Capability::root()
                          .setAddress(AddressSpace::userTop + 0x1000)
                          .setBounds(64)
                          .value();
    ASSERT_FALSE(as.writeCap(va, evil).has_value());
    EXPECT_EQ(as.verifyCapContainment(), 1u);
}

TEST(Aslr, SeedsChangeLayoutButNotResults)
{
    auto layout = [](u64 seed) {
        KernelConfig cfg;
        cfg.aslrSeed = seed;
        test::GuestSystem sys(Abi::CheriAbi, cfg);
        GuestContext ctx(sys.kern, *sys.proc);
        GuestMalloc heap(ctx);
        GuestPtr a = heap.malloc(64);
        ctx.store<u64>(a, 0, 0xABC);
        EXPECT_EQ(ctx.load<u64>(a), 0xABCu);
        EXPECT_EQ(sys.proc->as().verifyCapContainment(), 0u);
        return a.addr();
    };
    u64 a1 = layout(11), a2 = layout(12), a0 = layout(0);
    EXPECT_NE(a1, a2) << "different seeds, different placement";
    (void)a0;
}

} // namespace
} // namespace cheri
