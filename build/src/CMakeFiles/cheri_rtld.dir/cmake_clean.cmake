file(REMOVE_RECURSE
  "CMakeFiles/cheri_rtld.dir/rtld/rtld.cc.o"
  "CMakeFiles/cheri_rtld.dir/rtld/rtld.cc.o.d"
  "libcheri_rtld.a"
  "libcheri_rtld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_rtld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
