file(REMOVE_RECURSE
  "CMakeFiles/cheri_compat.dir/compat/idioms.cc.o"
  "CMakeFiles/cheri_compat.dir/compat/idioms.cc.o.d"
  "libcheri_compat.a"
  "libcheri_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
