file(REMOVE_RECURSE
  "CMakeFiles/test_rtld.dir/test_rtld.cc.o"
  "CMakeFiles/test_rtld.dir/test_rtld.cc.o.d"
  "test_rtld"
  "test_rtld.pdb"
  "test_rtld[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
