/**
 * @file
 * Kernel scheduler tests: preemptive time slices, blocking syscalls,
 * and the unified execution engine's state-preservation guarantees.
 *
 * Four properties from the scheduler's contract:
 *
 *  - preemption is fair: identical CPU-bound guests share the engine
 *    round-robin, one time slice each, never starving;
 *  - wait4 truly blocks: a parent with live children parks off the run
 *    queue and is woken exactly once per child exit;
 *  - context switches preserve capability register files tag-exact —
 *    including while an incremental revocation epoch is open, with the
 *    whole-system invariant oracle consulted at every slice boundary;
 *  - the per-context decode cache survives preemption: each distinct
 *    instruction is decoded once for the life of the thread, however
 *    many slices (and ABIs) interleave.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "check/invariants.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "os/kernel.h"
#include "os/revocation.h"
#include "os/sched/sched.h"

namespace cheri
{
namespace
{

/** Spawn + execve a process of @p abi with a 4-page RWX code mapping
 *  and a data page; returns (proc, codeVa, dataVa). */
struct SchedGuest
{
    Process *proc = nullptr;
    u64 code = 0;
    u64 data = 0;
};

SchedGuest
makeGuest(Kernel &kern, Abi abi, const char *name)
{
    SelfObject prog;
    prog.name = name;
    Process *proc = kern.spawn(abi, name);
    if (kern.execve(*proc, prog, {name}, {}) != E_OK)
        throw std::runtime_error("execve failed");
    u64 code = proc->as().map(0, 4 * pageSize,
                              PROT_READ | PROT_WRITE | PROT_EXEC,
                              MappingKind::Text);
    u64 data = proc->as().map(0, pageSize, PROT_READ | PROT_WRITE,
                              MappingKind::Data);
    return {proc, code, data};
}

/** A pure-ALU loop of @p iters iterations with @p body distinct adds
 *  per iteration. */
isa::Assembler
aluLoop(u64 iters, u64 body = 8)
{
    isa::Assembler a;
    a.li(3, static_cast<s64>(iters)).label("loop");
    for (u64 i = 0; i < body; ++i)
        a.addi(4 + (i % 8), 4 + (i % 8), 1);
    a.addi(3, 3, -1).bne(3, 0, "loop").halt();
    return a;
}

/** Admit @p g running @p prog under @p s (entry derivation per ABI). */
sched::ExecContext &
admitProgram(sched::Scheduler &s, SchedGuest &g, isa::Assembler &prog)
{
    prog.writeTo(g.proc->as(), g.code);
    sched::ExecContext &cx = s.context(*g.proc);
    if (g.proc->abi() == Abi::CheriAbi) {
        cx.interp->setEntry(g.proc->as()
                                .capForRange(g.code, 4 * pageSize,
                                             PROT_READ | PROT_EXEC,
                                             false)
                                .setAddress(g.code));
    } else {
        cx.interp->setEntry(Capability::fromAddress(g.code));
    }
    s.ready(cx);
    return cx;
}

TEST(SchedTest, RoundRobinPreemptionIsFair)
{
    KernelConfig cfg;
    cfg.timeSliceSteps = 64;
    Kernel kern(cfg);
    sched::Scheduler &s = sched::schedulerFor(kern);

    std::vector<u64> pids;
    isa::Assembler prog = aluLoop(200);
    for (int i = 0; i < 3; ++i) {
        SchedGuest g = makeGuest(kern, Abi::Mips64, "rr-guest");
        admitProgram(s, g, prog);
        pids.push_back(g.proc->pid());
    }

    std::vector<u64> sliceOrder;
    s.setSliceHook([&](Process &p) { sliceOrder.push_back(p.pid()); });
    kern.runUntilIdle();
    s.setSliceHook(nullptr);

    // All three ran to completion...
    for (u64 pid : pids) {
        Process *p = kern.findProcess(pid);
        ASSERT_NE(p, nullptr);
        sched::ExecContext &cx = s.context(*p);
        EXPECT_EQ(cx.last.status, isa::InterpResult::Status::Halted);
    }
    // ...and the identical programs interleaved round-robin: while all
    // three are runnable, every window of three slices runs all three
    // pids (no starvation, no double turns).
    ASSERT_GE(sliceOrder.size(), 9u);
    for (size_t w = 0; w + 3 <= 9; w += 3) {
        std::map<u64, int> seen;
        for (size_t i = w; i < w + 3; ++i)
            ++seen[sliceOrder[i]];
        for (u64 pid : pids)
            EXPECT_EQ(seen[pid], 1)
                << "window at " << w << " starved pid " << pid;
    }
    // Identical programs get slice counts within one of each other.
    std::map<u64, u64> counts;
    for (u64 pid : sliceOrder)
        ++counts[pid];
    u64 lo = ~u64(0), hi = 0;
    for (u64 pid : pids) {
        lo = std::min(lo, counts[pid]);
        hi = std::max(hi, counts[pid]);
    }
    EXPECT_LE(hi - lo, 1u);

    const SchedStats &st = s.stats();
    EXPECT_GT(st.preemptions, 0u);
    EXPECT_GT(st.contextSwitches, 0u);
    EXPECT_EQ(st.slices, sliceOrder.size());
}

TEST(SchedTest, BlockingWait4WakesOncePerChildExit)
{
    KernelConfig cfg;
    cfg.timeSliceSteps = 64;
    Kernel kern(cfg);
    sched::Scheduler &s = sched::schedulerFor(kern);
    SchedGuest g = makeGuest(kern, Abi::Mips64, "waiter");

    // fork twice, then reap twice through blocking wait4(0).  The
    // children spin different lengths so their exits stagger; the
    // parent parks on each wait4 and is woken by each exit edge.
    isa::Assembler a;
    a.syscall(static_cast<s64>(SysNum::Fork))
        .bne(3, 0, "parentA")
        // child 1: the long spinner, exit status 7.
        .li(9, 2000)
        .label("spin1")
        .addi(9, 9, -1)
        .bne(9, 0, "spin1")
        .li(4, 7)
        .syscall(static_cast<s64>(SysNum::Exit))
        .label("parentA")
        .move(5, 3) // x5 = child 1 pid
        .syscall(static_cast<s64>(SysNum::Fork))
        .bne(3, 0, "parentB")
        // child 2: the short spinner, exit status 9.
        .li(9, 600)
        .label("spin2")
        .addi(9, 9, -1)
        .bne(9, 0, "spin2")
        .li(4, 9)
        .syscall(static_cast<s64>(SysNum::Exit))
        .label("parentB")
        .move(6, 3) // x6 = child 2 pid
        .li(4, 0)
        .syscall(static_cast<s64>(SysNum::Wait4))
        .move(7, 3) // x7 = first reaped pid
        .li(4, 0)
        .syscall(static_cast<s64>(SysNum::Wait4))
        .move(8, 3) // x8 = second reaped pid
        .halt();

    sched::ExecContext &cx = admitProgram(s, g, a);
    kern.runUntilIdle();

    ASSERT_EQ(cx.last.status, isa::InterpResult::Status::Halted);
    const ThreadRegs &r = cx.interp->regs();
    u64 c1 = r.x[5], c2 = r.x[6];
    ASSERT_NE(c1, 0u);
    ASSERT_NE(c2, 0u);
    ASSERT_NE(c1, c2);
    // The short spinner exits (and is reaped) first; both reaps
    // returned a real child, no E_CHILD polling.
    EXPECT_EQ(r.x[7], c2);
    EXPECT_EQ(r.x[8], c1);
    // Both children are gone from the process table.
    EXPECT_EQ(kern.findProcess(c1), nullptr);
    EXPECT_EQ(kern.findProcess(c2), nullptr);

    // The parent blocked once per outstanding child and was woken
    // exactly once per child exit.
    const SchedStats &st = s.stats();
    EXPECT_EQ(st.blocksWait4, 2u);
    EXPECT_EQ(st.wakes, 2u);
}

TEST(SchedTest, SleepBlocksUntilVirtualDeadline)
{
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    Kernel kern(cfg);
    sched::Scheduler &s = sched::schedulerFor(kern);
    SchedGuest g = makeGuest(kern, Abi::Mips64, "sleeper");

    isa::Assembler a;
    a.li(4, 1000).syscall(static_cast<s64>(SysNum::Sleep)).halt();
    sched::ExecContext &cx = admitProgram(s, g, a);
    kern.runUntilIdle();

    EXPECT_EQ(cx.last.status, isa::InterpResult::Status::Halted);
    const SchedStats &st = s.stats();
    EXPECT_EQ(st.blocksSleep, 1u);
    EXPECT_EQ(st.wakes, 1u);
    // With nothing else runnable the virtual clock jumped to the
    // deadline instead of spinning.
    EXPECT_GE(st.idleAdvances, 1u);
    EXPECT_GE(s.now(), 1000u);
}

TEST(SchedTest, CapRegsSurviveSwitchesTagExactAcrossOpenEpoch)
{
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    cfg.revokeSliceBudget = 2;
    Kernel kern(cfg);
    sched::Scheduler &s = sched::schedulerFor(kern);

    // Guest A (CheriABI) derives capabilities into its register file,
    // cap-dirties its data page, then spins long enough to be
    // preempted dozens of times.
    SchedGuest ga = makeGuest(kern, Abi::CheriAbi, "cap-guest");
    isa::Assembler a;
    a.csetboundsimm(2, 1, 64)    // c2 = c1 bounded to 64 bytes
        .cincoffsetimm(3, 2, 16) // c3 = c2 + 16
        .csc(2, 1, 0)            // store c2 at [c1]: page is cap-dirty
        .li(9, 2000)
        .label("spin")
        .addi(9, 9, -1)
        .bne(9, 0, "spin")
        .halt();
    sched::ExecContext &ca = admitProgram(s, ga, a);
    Capability dataCap =
        ga.proc->as()
            .capForRange(ga.data, pageSize, PROT_READ | PROT_WRITE,
                         false)
            .setAddress(ga.data);
    ca.interp->regs().c[1] = dataCap;

    // Guest B (mips64) forces context switches every slice.
    SchedGuest gb = makeGuest(kern, Abi::Mips64, "spin-guest");
    isa::Assembler b = aluLoop(2000);
    admitProgram(s, gb, b);

    // The revocation victim: a separate mapping in A, cap-dirtied on
    // enough pages that the incremental epoch (2 pages per pump) stays
    // open across many slice boundaries.  Nothing in A's registers
    // points here, so the sweep must not touch them.
    u64 victim = ga.proc->as().map(0, 16 * pageSize,
                                   PROT_READ | PROT_WRITE,
                                   MappingKind::Data);
    Capability vcap = ga.proc->as()
                          .capForRange(victim, 16 * pageSize,
                                       PROT_READ | PROT_WRITE, false)
                          .setAddress(victim);
    for (u64 i = 0; i < 16; ++i)
        ASSERT_FALSE(ga.proc->mem().writeCap(victim + i * pageSize,
                                             vcap.setAddress(victim)));

    // Open the epoch from the third slice boundary, then let the
    // scheduler's background pump drive it; the invariant oracle runs
    // at every boundary (rule 6 covers the scheduler counters too).
    u64 slices = 0;
    u64 violations = 0;
    bool opened = false;
    u64 pidA = ga.proc->pid();
    s.setSliceHook([&](Process &) {
        if (++slices == 3 && !opened) {
            opened = true;
            SysResult r = kern.sysRevoke2(
                *kern.findProcess(pidA),
                {{victim, victim + 16 * pageSize}}, REVOKE_INCREMENTAL);
            ASSERT_FALSE(r.failed());
        }
        violations += check::Invariants::check(kern).violations.size();
    });
    kern.runUntilIdle();
    s.setSliceHook(nullptr);

    EXPECT_EQ(violations, 0u);
    EXPECT_TRUE(opened);
    EXPECT_GT(s.stats().contextSwitches, 10u);
    ASSERT_EQ(ca.last.status, isa::InterpResult::Status::Halted);

    // Drain whatever remains of the epoch, then check the register
    // file: every derived capability is still tagged with its exact
    // bounds — switches round-tripped the caps architecturally, never
    // through untagged storage — while the victim's own caps died.
    ASSERT_FALSE(kern.sysRevoke2(*ga.proc, {}, REVOKE_SYNC).failed());
    const ThreadRegs &r = ca.interp->regs();
    EXPECT_TRUE(r.c[1].tag());
    EXPECT_EQ(r.c[1], dataCap);
    EXPECT_TRUE(r.c[2].tag());
    EXPECT_EQ(r.c[2].base(), ga.data);
    EXPECT_EQ(r.c[2].length(), 64u);
    EXPECT_TRUE(r.c[3].tag());
    EXPECT_EQ(r.c[3].address(), ga.data + 16);
    Result<Capability> stored = ga.proc->mem().readCap(ga.data);
    ASSERT_TRUE(stored.ok());
    EXPECT_TRUE(stored.value().tag()) << "cap outside revoked range";
    Result<Capability> dead = ga.proc->mem().readCap(victim);
    ASSERT_TRUE(dead.ok());
    EXPECT_FALSE(dead.value().tag()) << "victim cap must be revoked";
}

TEST(SchedTest, DecodeCacheSurvivesContextSwitches)
{
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    Kernel kern(cfg);
    sched::Scheduler &s = sched::schedulerFor(kern);

    // Two guests on different ABIs, each a 19-instruction loop run 500
    // times: ~9000 retired steps across ~280 slices each.
    SchedGuest ga = makeGuest(kern, Abi::Mips64, "dc-mips");
    SchedGuest gb = makeGuest(kern, Abi::CheriAbi, "dc-cheri");
    isa::Assembler pa = aluLoop(500, 16);
    isa::Assembler pb = aluLoop(500, 16);
    sched::ExecContext &ca = admitProgram(s, ga, pa);
    sched::ExecContext &cb = admitProgram(s, gb, pb);
    kern.runUntilIdle();

    ASSERT_EQ(ca.last.status, isa::InterpResult::Status::Halted);
    ASSERT_EQ(cb.last.status, isa::InterpResult::Status::Halted);
    EXPECT_GT(s.stats().contextSwitches, 10u);

    // Each distinct instruction is fetched-and-decoded once per
    // context lifetime; every further execution hits the persistent
    // decode cache even though the context was preempted hundreds of
    // times.  (A per-slice interpreter would re-decode the loop body
    // every slice: ~19 misses x ~280 slices.)
    constexpr u64 kDistinct = 16 + 3; // body + li/addi/bne (+halt)
    for (Process *p : {ga.proc, gb.proc}) {
        const MemAccess::Stats &st = p->mem().stats();
        EXPECT_LE(st.fetchMisses, kDistinct + 2)
            << "decode cache was lost across a context switch";
        EXPECT_GT(st.fetchHits, 8000u);
    }
}

} // namespace
} // namespace cheri
