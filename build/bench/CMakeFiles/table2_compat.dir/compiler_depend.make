# Empty compiler generated dependencies file for table2_compat.
# This may be replaced when dependencies are built.
