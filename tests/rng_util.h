/**
 * @file
 * Shared helpers for seeded randomized tests.
 *
 * Every randomized test in the suite draws its std::mt19937_64 seed
 * from a test parameter or the environment — never the clock — so any
 * failure is reproducible from the log.  Two pieces are standardized
 * here:
 *
 *  - seedsFromEnv(): parameterize a test's seed corpus via an env var
 *    holding a comma-separated list, e.g.
 *
 *        CHERI_TEST_STRESS_SEEDS=3,17,9001 ctest -R Stress
 *
 *    Each seed becomes its own ctest case through
 *    INSTANTIATE_TEST_SUITE_P + ValuesIn, so CI can widen or pin the
 *    corpus without a rebuild.  Without the variable the default
 *    corpus is 0..count-1, matching the historical Range() corpora.
 *
 *  - CHERI_TRACE_SEED(): SCOPED_TRACE the seed (and the reproduction
 *    recipe when the corpus is env-driven) so every assertion failure
 *    inside the test body prints how to re-run exactly that case.
 */

#ifndef CHERI_TESTS_RNG_UTIL_H
#define CHERI_TESTS_RNG_UTIL_H

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace cheri::test
{

/** Parse @p var as a comma-separated seed list; empty or unset yields
 *  the default corpus {0, 1, ..., dflt_count-1}. */
inline std::vector<unsigned>
seedsFromEnv(const char *var, unsigned dflt_count)
{
    std::vector<unsigned> seeds;
    if (const char *v = std::getenv(var); v && *v) {
        const char *p = v;
        while (*p) {
            char *end = nullptr;
            unsigned long s = std::strtoul(p, &end, 0);
            if (end == p)
                break; // malformed tail: keep what parsed cleanly
            seeds.push_back(static_cast<unsigned>(s));
            p = *end == ',' ? end + 1 : end;
        }
    }
    if (seeds.empty()) {
        for (unsigned i = 0; i < dflt_count; ++i)
            seeds.push_back(i);
    }
    return seeds;
}

/** Failure annotation: the seed, plus the env-var recipe to re-run
 *  just this case when @p env_var is non-null. */
inline std::string
seedTraceMessage(unsigned long long seed, const char *env_var)
{
    std::string msg = "rng seed " + std::to_string(seed);
    if (env_var && *env_var) {
        msg += " (reproduce: ";
        msg += env_var;
        msg += "=" + std::to_string(seed) + ")";
    }
    return msg;
}

} // namespace cheri::test

/** SCOPED_TRACE the seed for the enclosing scope; @p env_var (nullable)
 *  names the variable that pins the seed corpus. */
#define CHERI_TRACE_SEED(seed, env_var) \
    SCOPED_TRACE(::cheri::test::seedTraceMessage((seed), (env_var)))

#endif // CHERI_TESTS_RNG_UTIL_H
