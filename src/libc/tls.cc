#include "libc/tls.h"

namespace cheri
{

GuestPtr
GuestTls::moduleBlock(u64 module_id, u64 size)
{
    auto it = blocks.find(module_id);
    if (it != blocks.end())
        return it->second;
    u64 padded = ctx.isCheri() ? compress::representableLength(size) : size;
    GuestPtr raw = ctx.mmap(padded, PROT_READ | PROT_WRITE);
    if (raw.isNull() && raw.addr() == 0)
        return raw;
    GuestPtr block = raw;
    if (ctx.isCheri()) {
        // Bound to the module's TLS segment (per-shared-object, not
        // per-variable) and strip vmmap: TLS pointers must not manage
        // mappings.
        auto bounded = raw.cap.setBounds(padded);
        if (bounded.ok()) {
            auto stripped = bounded.value().andPerms(permsData);
            if (stripped.ok())
                block = GuestPtr(stripped.value());
        }
        ctx.cost().capManip(2);
        if (TraceSink *tr = ctx.kernel().trace())
            tr->derive(DeriveSource::Tls, block.cap);
    }
    blocks[module_id] = block;
    sizes[module_id] = size;
    return block;
}

GuestPtr
GuestTls::var(u64 module_id, u64 offset)
{
    auto it = blocks.find(module_id);
    if (it == blocks.end())
        return GuestPtr();
    // One add, no re-bounding: per-shared-object granularity.
    ctx.cost().alu(1);
    return it->second + static_cast<s64>(offset);
}

} // namespace cheri
