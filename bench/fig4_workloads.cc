/**
 * @file
 * Figure 4 reproduction: MiBench and SPEC CPU2006 workload overheads
 * of pure-capability (CheriABI) execution relative to the mips64
 * baseline — instructions, cycles, and L2 misses — plus the
 * initdb-dynamic macro-benchmark.
 *
 * Like the paper, each point is a median over repeated runs with an
 * interquartile range: run-to-run variation comes from ASLR (each run
 * gets a different address-space slide, perturbing cache behaviour).
 */

#include <algorithm>
#include <vector>

#include "apps/minidb.h"
#include "apps/workloads.h"
#include "bench_util.h"

using namespace cheri;
using namespace cheri::apps;

namespace
{

constexpr int numRuns = 5;

struct Series
{
    WorkloadResult median;
    double cycleIqrPct = 0; // IQR of cycles as % of the median
};

Series
runSeries(const Workload &w, Abi abi)
{
    std::vector<WorkloadResult> runs;
    for (int i = 0; i < numRuns; ++i)
        runs.push_back(runWorkload(w, abi, {}, 1000 + i * 7));
    std::sort(runs.begin(), runs.end(),
              [](const WorkloadResult &a, const WorkloadResult &b) {
                  return a.cycles < b.cycles;
              });
    Series s;
    s.median = runs[numRuns / 2];
    u64 q1 = runs[numRuns / 4].cycles;
    u64 q3 = runs[(3 * numRuns) / 4].cycles;
    s.cycleIqrPct = 100.0 * static_cast<double>(q3 - q1) /
                    static_cast<double>(s.median.cycles);
    return s;
}

void
printRow(const std::string &name, const Series &m, const Series &c)
{
    std::printf("%-24s %+8.1f%% %+8.1f%% %+8.1f%%   %6.2f%%\n",
                name.c_str(),
                overheadPct(m.median.instructions,
                            c.median.instructions),
                overheadPct(m.median.cycles, c.median.cycles),
                overheadPct(m.median.l2Misses, c.median.l2Misses),
                std::max(m.cycleIqrPct, c.cycleIqrPct));
}

} // namespace

int
main()
{
    bench::banner("Figure 4: CheriABI overhead vs mips64 baseline "
                  "(median of 5 ASLR seeds; last column = cycle IQR "
                  "as error bar)");
    std::printf("%-24s %9s %9s %9s %9s\n", "benchmark", "instr",
                "cycles", "l2-miss", "IQR");
    for (const Workload &w : figure4Workloads()) {
        Series m = runSeries(w, Abi::Mips64);
        Series c = runSeries(w, Abi::CheriAbi);
        printRow(w.name, m, c);
    }

    // initdb-dynamic: the dynamically linked macro-benchmark.
    InitdbResult im = runInitdb(Abi::Mips64);
    InitdbResult ic = runInitdb(Abi::CheriAbi);
    std::printf("%-24s %+8.1f%% %+8.1f%% %+8.1f%%\n", "initdb-dynamic",
                overheadPct(im.instructions, ic.instructions),
                overheadPct(im.cycles, ic.cycles),
                overheadPct(im.l2Misses, ic.l2Misses));

    bench::note(
        "\nPaper (Figure 4) shape: most benchmarks within noise "
        "(+-10%);\npointer-dense workloads (patricia, astar, "
        "xalancbmk, qsort) pay\ncycles and L2 misses for 128-bit "
        "pointers; security-sha is *faster*\nunder CheriABI (separate "
        "capability register file); initdb-dynamic\n~= +6.8% cycles.");
    return 0;
}
