#include "apps/minidb.h"

#include <sstream>

#include "libc/cstring.h"
#include "libc/tls.h"
#include "sanitizer/asan.h"

namespace cheri::apps
{

namespace
{

/** The dynamically linked MiniPG image: program + two libraries. */
SelfObject
makeLibpq()
{
    SelfObject lib;
    lib.name = "libpq.so";
    lib.textSize = 0x10000;
    lib.data.resize(2048);
    for (int i = 0; i < 24; ++i) {
        lib.symbols.push_back(
            {"pq_global_" + std::to_string(i),
             static_cast<u64>(i * 64), 64, false});
        lib.relocs.push_back(
            {RelocKind::CapGlobal, static_cast<u64>(i), 0,
             "pq_global_" + std::to_string(i)});
    }
    lib.symbols.push_back({"PQconnect", 0x100, 0x200, true});
    lib.relocs.push_back({RelocKind::CapFunction, 24, 0, "PQconnect"});
    return lib;
}

SelfObject
makeLibpgcommon()
{
    SelfObject lib;
    lib.name = "libpgcommon.so";
    lib.textSize = 0x8000;
    lib.data.resize(1024);
    for (int i = 0; i < 16; ++i) {
        lib.symbols.push_back(
            {"pg_common_" + std::to_string(i),
             static_cast<u64>(i * 32), 32, false});
        lib.relocs.push_back(
            {RelocKind::CapGlobal, static_cast<u64>(i), 0,
             "pg_common_" + std::to_string(i)});
    }
    return lib;
}

SelfObject
makeInitdbProgram()
{
    SelfObject prog;
    prog.name = "initdb";
    prog.textSize = 0x20000;
    prog.data.resize(4096);
    prog.needed = {"libpq.so", "libpgcommon.so"};
    for (int i = 0; i < 32; ++i) {
        prog.symbols.push_back(
            {"initdb_global_" + std::to_string(i),
             static_cast<u64>(i * 64), 64, false});
        prog.relocs.push_back(
            {RelocKind::CapGlobal, static_cast<u64>(i), 0,
             "initdb_global_" + std::to_string(i)});
    }
    return prog;
}

/** A running MiniPG instance. */
class MiniPg
{
  public:
    MiniPg(GuestContext &ctx, AsanRuntime *asan = nullptr)
        : ctx(ctx), heap(ctx), tls(ctx), asan(asan)
    {
        const LinkedObject &main_obj = ctx.proc().image.objects.front();
        gotBase = main_obj.gotBase;
        gotSlots = std::max<u64>(main_obj.gotSlots, 1);
    }

    GuestContext &context() { return ctx; }

    /** Global access through the GOT (dynamically linked code). */
    void
    globalRef(u64 which)
    {
        ctx.cost().gotLoad(gotBase + (which % gotSlots) *
                                         ctx.ptrSize());
    }

    GuestPtr
    alloc(u64 size)
    {
        return asan ? asan->malloc(size) : heap.malloc(size);
    }

    /** Row: { next-in-bucket ptr, payload ptr, oid u64 } — pointers
     *  first, so the layout is naturally aligned under both ABIs. */
    u64 rowBytes() const { return 2 * ctx.ptrSize() + 8; }
    s64 payloadOff() const { return static_cast<s64>(ctx.ptrSize()); }
    s64 oidOff() const { return static_cast<s64>(2 * ctx.ptrSize()); }

    /** Build one bootstrap catalog with a chained hash index. */
    GuestPtr
    buildCatalog(const std::string &name, u64 rows, u64 &rows_out)
    {
        const u64 nbuckets = 64;
        GuestPtr buckets = alloc(nbuckets * ctx.ptrSize());
        for (u64 b = 0; b < nbuckets; ++b)
            ctx.storePtr(buckets, static_cast<s64>(b * ctx.ptrSize()),
                         GuestPtr());
        for (u64 i = 0; i < rows; ++i) {
            GuestPtr row = alloc(rowBytes());
            u64 oid = 16384 + i * 7 % (rows * 8);
            ctx.store<u64>(row, oidOff(), oid);
            GuestPtr text = alloc(24);
            std::string val = name + "_" + std::to_string(i);
            ctx.write(text, val.c_str(),
                      std::min<u64>(val.size() + 1, 24));
            ctx.storePtr(row, payloadOff(), text);
            u64 bucket = oid % nbuckets;
            s64 slot = static_cast<s64>(bucket * ctx.ptrSize());
            ctx.storePtr(row, 0, ctx.loadPtr(buckets, slot));
            ctx.storePtr(buckets, slot, row);
            // Catalog caches, error state, encoding tables, memory
            // contexts: each row insert touches many globals through
            // the GOT (initdb is the paper's GOT-bound workload).
            for (u64 g = 0; g < 10; ++g)
                globalRef(i + g);
            globalRef(oid);
            ctx.work(12);
        }
        rows_out += rows;
        return buckets;
    }

    /** Sort a catalog's rows by oid (pg_proc ordering). */
    void
    sortCatalog(const GuestPtr &buckets, u64 nbuckets, u64 expected_rows)
    {
        GuestPtr arr = alloc(expected_rows * ctx.ptrSize());
        u64 n = 0;
        for (u64 b = 0; b < nbuckets && n < expected_rows; ++b) {
            GuestPtr row =
                ctx.loadPtr(buckets, static_cast<s64>(b * ctx.ptrSize()));
            while (!row.isNull() && row.addr() != 0 &&
                   n < expected_rows) {
                ctx.storePtr(arr,
                             static_cast<s64>(n * ctx.ptrSize()), row);
                ++n;
                row = ctx.loadPtr(row, 0);
                globalRef(n);
            }
        }
        s64 oid_off = oidOff();
        gQsort(ctx, arr, n, ctx.ptrSize(),
               [oid_off](GuestContext &c, const GuestPtr &x,
                         const GuestPtr &y) {
                   GuestPtr px = c.isCheri()
                                     ? c.loadPtr(x)
                                     : c.ptrFromInt(c.load<u64>(x));
                   GuestPtr py = c.isCheri()
                                     ? c.loadPtr(y)
                                     : c.ptrFromInt(c.load<u64>(y));
                   u64 a = c.load<u64>(px, oid_off);
                   u64 b = c.load<u64>(py, oid_off);
                   return a < b ? -1 : (a > b ? 1 : 0);
               });
    }

    /** Write a catalog file through the VFS. */
    bool
    writeFile(const std::string &path, u64 bytes)
    {
        s64 fd = ctx.open(path, O_RDWR | O_CREAT | O_TRUNC);
        if (fd < 0)
            return false;
        GuestPtr block = alloc(8192);
        for (u64 i = 0; i < 8192; i += 8)
            ctx.store<u64>(block, static_cast<s64>(i), i * 0x9E37);
        u64 written = 0;
        while (written < bytes) {
            u64 chunk = std::min<u64>(8192, bytes - written);
            if (ctx.write(static_cast<int>(fd), block, chunk) < 0)
                return false;
            written += chunk;
            globalRef(written);
            globalRef(written + 1);
            globalRef(written + 3);
        }
        ctx.close(static_cast<int>(fd));
        return true;
    }

    /** Shared-memory buffer pool + semaphore words. */
    bool
    setupSharedMemory()
    {
        SysResult id = ctx.kernel().sysShmget(ctx.proc(), 0x52, 512 * 1024);
        if (id.failed())
            return false;
        UserPtr seg;
        if (ctx.kernel()
                .sysShmat(ctx.proc(), static_cast<int>(id.value),
                          UserPtr::null(), &seg)
                .failed()) {
            return false;
        }
        GuestPtr shm(seg.isCap ? seg.cap
                               : Capability::fromAddress(seg.addr()));
        // Buffer descriptors hold *offsets*, never pointers: shared
        // memory is visible to other principals.
        for (u64 i = 0; i < 2048; ++i) {
            ctx.store<u64>(shm, static_cast<s64>(i * 16), i * 8192);
            ctx.store<u64>(shm, static_cast<s64>(i * 16 + 8), 0);
            ctx.work(3);
        }
        // Semaphore words at the tail.
        for (u64 s = 0; s < 64; ++s)
            ctx.store<u32>(shm, static_cast<s64>(480 * 1024 + s * 4), 1);
        return true;
    }

    /** Backend-local state lives in TLS. */
    void
    setupBackendTls()
    {
        GuestPtr block = tls.moduleBlock(1, 512);
        (void)block;
        for (u64 i = 0; i < 512; i += 8)
            ctx.store<u64>(tls.var(1, i), 0, 0);
    }

    GuestMalloc &heapRef() { return heap; }

  private:
    GuestContext &ctx;
    GuestMalloc heap;
    GuestTls tls;
    AsanRuntime *asan;
    u64 gotBase = 0;
    u64 gotSlots = 1;
};

/** Shared catalogs written by initdb, with their row counts. */
const std::pair<const char *, u64> catalogFiles[] = {
    {"/pgdata/global/pg_database", 16 * 1024},
    {"/pgdata/global/pg_authid", 8 * 1024},
    {"/pgdata/global/pg_tablespace", 8 * 1024},
    {"/pgdata/base/1/pg_class", 48 * 1024},
    {"/pgdata/base/1/pg_type", 32 * 1024},
    {"/pgdata/base/1/pg_proc", 64 * 1024},
    {"/pgdata/base/1/pg_attribute", 64 * 1024},
    {"/pgdata/base/1/pg_index", 16 * 1024},
    {"/pgdata/base/1/pg_operator", 24 * 1024},
    {"/pgdata/base/1/pg_am", 8 * 1024},
    {"/pgdata/pg_xact/0000", 8 * 1024},
};

} // namespace

InitdbResult
runInitdb(Abi abi, MachineFeatures features, bool asan)
{
    KernelConfig cfg;
    cfg.features = features;
    cfg.features.asanInstrumentation = asan;
    Kernel kern(cfg);
    static const SelfObject libpq = makeLibpq();
    static const SelfObject libpgcommon = makeLibpgcommon();
    kern.rtld().registerLibrary(&libpq);
    kern.rtld().registerLibrary(&libpgcommon);
    static const SelfObject prog = makeInitdbProgram();
    Process *proc = kern.spawn(abi, "initdb");
    if (kern.execve(*proc, prog,
                    {"initdb", "-D", "/pgdata", "--no-sync"},
                    {"LC_ALL=C"}) != E_OK) {
        throw std::runtime_error("initdb: execve failed");
    }
    GuestContext ctx(kern, *proc);
    std::unique_ptr<AsanRuntime> asan_rt;
    if (asan)
        asan_rt = std::make_unique<AsanRuntime>(ctx);
    // Measure the whole initdb run (it *is* the benchmark).
    proc->cost().reset();
    MiniPg pg(ctx, asan_rt.get());

    InitdbResult r;
    kern.vfs().mkdir("/pgdata/base/1");
    kern.vfs().mkdir("/pgdata/global");
    kern.vfs().mkdir("/pgdata/pg_xact");
    kern.vfs().mkdir("/pgdata/pg_wal");

    // Bootstrap catalogs: pointer-dense hash tables, then sorted.
    GuestPtr pg_class = pg.buildCatalog("pg_class", 360, r.catalogRows);
    GuestPtr pg_type = pg.buildCatalog("pg_type", 420, r.catalogRows);
    GuestPtr pg_proc = pg.buildCatalog("pg_proc", 900, r.catalogRows);
    pg.sortCatalog(pg_proc, 64, 900);
    pg.sortCatalog(pg_type, 64, 420);
    (void)pg_class;

    // Catalog relation files + WAL segment.
    for (const auto &[path, bytes] : catalogFiles)
        r.filesCreated += pg.writeFile(path, bytes);
    r.filesCreated += pg.writeFile("/pgdata/pg_wal/000000010000", 256 * 1024);
    r.filesCreated += pg.writeFile("/pgdata/postgresql.conf", 4 * 1024);
    r.filesCreated += pg.writeFile("/pgdata/pg_hba.conf", 2 * 1024);

    pg.setupSharedMemory();
    pg.setupBackendTls();

    r.instructions = proc->cost().instructions();
    r.cycles = proc->cost().cycles();
    r.l2Misses = proc->cost().l2Misses();
    r.codeBytes = proc->cost().codeBytes();
    return r;
}

// ---------------------------------------------------------------------
// pg_regress
// ---------------------------------------------------------------------

namespace
{

/** A tiny relational engine the regression tests drive. */
class Engine
{
  public:
    explicit Engine(GuestContext &ctx) : ctx(ctx), heap(ctx) {}

    GuestContext &context() { return ctx; }
    GuestMalloc &heapRef() { return heap; }

    /** Row layout: { payload ptr | i64 key | i32 val }. */
    u64 rowBytes() const { return ctx.ptrSize() + 12; }

    GuestPtr
    makeTable(u64 nrows, u64 seed)
    {
        GuestPtr dir = heap.malloc(nrows * ctx.ptrSize());
        u64 x = seed;
        for (u64 i = 0; i < nrows; ++i) {
            GuestPtr row = heap.malloc(rowBytes());
            GuestPtr text = heap.malloc(16);
            ctx.store<u64>(text, 0, x);
            ctx.storePtr(row, 0, text);
            x = x * 1103515245 + 12345;
            ctx.store<s64>(row, static_cast<s64>(ctx.ptrSize()),
                           static_cast<s64>(x % 1000));
            ctx.store<u32>(row, static_cast<s64>(ctx.ptrSize()) + 8,
                           static_cast<u32>(i));
            ctx.storePtr(dir, static_cast<s64>(i * ctx.ptrSize()), row);
        }
        return dir;
    }

    GuestPtr
    row(const GuestPtr &dir, u64 i)
    {
        if (ctx.isCheri())
            return ctx.loadPtr(dir, static_cast<s64>(i * ctx.ptrSize()));
        return ctx.ptrFromInt(
            ctx.load<u64>(dir, static_cast<s64>(i * ctx.ptrSize())));
    }

    s64
    key(const GuestPtr &r)
    {
        return ctx.load<s64>(r, static_cast<s64>(ctx.ptrSize()));
    }

  private:
    GuestContext &ctx;
    GuestMalloc heap;
};

using TestFn = std::function<bool(Engine &)>;

struct RegressTest
{
    std::string name;
    TestFn fn;
    /** Test is skipped when the ABI lacks a required feature. */
    bool requiresSbrk = false;
};

std::vector<RegressTest>
buildRegressTests()
{
    std::vector<RegressTest> tests;
    auto add = [&](std::string name, TestFn fn, bool sbrk = false) {
        tests.push_back({std::move(name), std::move(fn), sbrk});
    };

    // --- 130 parameterized clean tests ---------------------------------
    for (int n = 0; n < 40; ++n) {
        add("select_scan_" + std::to_string(n), [n](Engine &e) {
            GuestPtr t = e.makeTable(20 + n, n + 1);
            s64 sum = 0;
            for (u64 i = 0; i < 20u + n; ++i)
                sum += e.key(e.row(t, i));
            return sum >= 0;
        });
    }
    for (int n = 0; n < 30; ++n) {
        add("order_by_" + std::to_string(n), [n](Engine &e) {
            GuestContext &ctx = e.context();
            u64 rows = 16 + n;
            GuestPtr t = e.makeTable(rows, n + 99);
            // ORDER BY key: sort the row directory by the key column.
            s64 key_off = static_cast<s64>(ctx.ptrSize());
            gQsort(ctx, t, rows, ctx.ptrSize(),
                   [key_off](GuestContext &c, const GuestPtr &x,
                             const GuestPtr &y) {
                       s64 a = c.load<s64>(c.loadPtr(x), key_off);
                       s64 b = c.load<s64>(c.loadPtr(y), key_off);
                       return a < b ? -1 : (a > b ? 1 : 0);
                   });
            s64 prev = -1;
            for (u64 i = 0; i < rows; ++i) {
                s64 v = e.key(e.row(t, i));
                if (v < prev)
                    return false;
                prev = v;
            }
            return true;
        });
    }
    for (int n = 0; n < 30; ++n) {
        add("aggregate_" + std::to_string(n), [n](Engine &e) {
            GuestPtr t = e.makeTable(32, n + 7);
            s64 mx = -1;
            for (u64 i = 0; i < 32; ++i)
                mx = std::max(mx, e.key(e.row(t, i)));
            return mx >= 0 && mx < 1000;
        });
    }
    for (int n = 0; n < 30; ++n) {
        add("join_" + std::to_string(n), [n](Engine &e) {
            GuestPtr a = e.makeTable(24, n + 3);
            GuestPtr b = e.makeTable(24, n + 3); // same seed: join hits
            u64 matches = 0;
            for (u64 i = 0; i < 24; ++i) {
                for (u64 j = 0; j < 24; ++j) {
                    matches += e.key(e.row(a, i)) == e.key(e.row(b, j));
                    e.context().work(2);
                }
            }
            return matches >= 24;
        });
    }

    // --- 20 more clean tests: storage layer -----------------------------
    for (int n = 0; n < 20; ++n) {
        add("storage_" + std::to_string(n), [n](Engine &e) {
            GuestContext &ctx = e.context();
            s64 fd = ctx.open("/tmp/regress_" + std::to_string(n),
                              O_RDWR | O_CREAT | O_TRUNC);
            if (fd < 0)
                return false;
            GuestPtr buf = e.heapRef().malloc(256);
            for (u64 i = 0; i < 256; i += 8)
                ctx.store<u64>(buf, static_cast<s64>(i), i * n);
            bool ok =
                ctx.write(static_cast<int>(fd), buf, 256) == 256;
            ctx.close(static_cast<int>(fd));
            return ok;
        });
    }

    // --- 8 failures: pointer-size and output-order assumptions ----------
    // (paper: "outputs are sorted in a different order or the test
    // assumes a pointer size of 4 or 8 bytes")
    for (int n = 0; n < 4; ++n) {
        add("rowsize_assume8_" + std::to_string(n), [](Engine &e) {
            // The expected on-disk row size is computed for 8-byte
            // pointers; the CheriABI row is wider.
            return e.rowBytes() == 8 + 12;
        });
    }
    for (int n = 0; n < 4; ++n) {
        add("copy_binary_" + std::to_string(n), [n](Engine &e) {
            // COPY BINARY serializes raw rows; the golden file was
            // produced with 8-byte pointers, so the byte count is off.
            GuestContext &ctx = e.context();
            GuestPtr dir = e.makeTable(4, n + 11);
            s64 fd = ctx.open("/tmp/copybin_" + std::to_string(n),
                              O_RDWR | O_CREAT | O_TRUNC);
            if (fd < 0)
                return false;
            u64 written = 0;
            for (u64 i = 0; i < 4; ++i) {
                s64 w = ctx.write(static_cast<int>(fd), e.row(dir, i),
                                  e.rowBytes());
                if (w > 0)
                    written += static_cast<u64>(w);
            }
            ctx.close(static_cast<int>(fd));
            const u64 golden = 4 * (8 + 12); // 8-byte-pointer rows
            return written == golden;
        });
    }

    // --- 1 failure: under-aligned pointer (traps on CHERI) --------------
    add("underaligned_tuple_ptr", [](Engine &e) {
        GuestContext &ctx = e.context();
        GuestPtr rec = e.heapRef().malloc(32);
        GuestPtr text = e.heapRef().malloc(8);
        // Tuple header packs a pointer at offset 4.
        ctx.storePtr(rec, 4, text);
        GuestPtr back = ctx.isCheri()
                            ? ctx.loadPtr(rec, 4)
                            : ctx.ptrFromInt(ctx.load<u64>(rec, 4));
        return back.addr() == text.addr();
    });

    // --- 7 failures: "slightly different results" ------------------------
    for (int n = 0; n < 7; ++n) {
        add("legacy_field_offset_" + std::to_string(n), [n](Engine &e) {
            // The test's expected output was computed by reading the
            // key column at its legacy offset (8, after an 8-byte
            // pointer).  Under CheriABI the key lives at offset 16;
            // offset 8 reads the middle of the capability instead —
            // "slightly different results" (paper section 5.1).
            GuestContext &ctx = e.context();
            GuestPtr dir = e.makeTable(16, n + 31);
            s64 sig = 0, golden = 0;
            for (u64 i = 0; i < 16; ++i) {
                GuestPtr r = e.row(dir, i);
                sig += ctx.load<s64>(r, 8); // legacy offset
                golden += e.key(r);         // schema-correct offset
            }
            ctx.work(8);
            return sig == golden;
        });
    }

    // --- 1 skip under CheriABI: sbrk-based memory-context test ----------
    add("memory_context_sbrk", [](Engine &e) {
        SysResult r =
            e.context().kernel().sysSbrk(e.context().proc(), 65536);
        return r.error == E_OK;
    },
        /*requiresSbrk=*/true);

    return tests;
}

} // namespace

RegressTotals
runPgRegress(Abi abi, std::vector<RegressCase> *cases)
{
    Kernel kern;
    SelfObject prog;
    prog.name = "pg_regress";
    Process *proc = kern.spawn(abi, "pg_regress");
    if (kern.execve(*proc, prog, {"pg_regress"}, {}) != E_OK)
        throw std::runtime_error("pg_regress: execve failed");
    GuestContext ctx(kern, *proc);

    RegressTotals totals;
    auto tests = buildRegressTests();
    for (const RegressTest &t : tests) {
        RegressCase rc;
        rc.name = t.name;
        if (t.requiresSbrk && abi == Abi::CheriAbi) {
            rc.outcome = RegressCase::Outcome::Skip;
            rc.detail = "sbrk not supported under CheriABI";
            ++totals.skip;
        } else {
            Engine engine(ctx);
            bool ok;
            try {
                ok = t.fn(engine);
            } catch (const CapTrap &trap) {
                ok = false;
                rc.detail = trap.what();
            }
            rc.outcome = ok ? RegressCase::Outcome::Pass
                            : RegressCase::Outcome::Fail;
            ++(ok ? totals.pass : totals.fail);
        }
        if (cases)
            cases->push_back(rc);
    }
    return totals;
}

} // namespace cheri::apps
