#include "mem/vm.h"

#include <algorithm>

#include "mem/access.h"
#include "os/panic.h"

namespace cheri
{

AddressSpace::AddressSpace(PhysMem &phys, SwapDevice &swap, u64 principal,
                           compress::CapFormat fmt, u64 aslr_seed)
    : phys(phys), swap(swap), _principal(principal), fmt(fmt)
{
    if (aslr_seed != 0) {
        // A page-granular slide applied to non-fixed placements.
        aslrSlide =
            ((aslr_seed * 0x9E3779B97F4A7C15ull) >> 40) % 4096 * pageSize;
    }
    // Mint the principal's root: the kernel-narrowed userspace
    // capability from which all of this process's pointers descend.
    Capability r = Capability::root(fmt).setAddress(userBase);
    Result<Capability> bounded = r.setBounds(userTop - userBase);
    CHERI_KASSERT(bounded.ok(), "user root bounds representable");
    Result<Capability> no_sysregs =
        bounded.value().andPerms(permsAll & ~PERM_ACCESS_SYS_REGS);
    CHERI_KASSERT(no_sysregs.ok(), "user root perms monotone");
    root = no_sysregs.value();
}

AddressSpace::~AddressSpace()
{
    // MemAccess objects may outlive the space (execve swaps spaces
    // under the process); make sure none keeps a dangling pointer.
    for (MemAccess *l : listeners)
        l->detach();
    // Swapped-out pages hold device slots the frame destructors know
    // nothing about; release them or every execve/exit leaks swap.
    for (auto &[va, pte] : pages) {
        if (pte.swapped)
            swap.discard(pte.swapSlot);
    }
}

void
AddressSpace::addTlbListener(MemAccess *l)
{
    listeners.push_back(l);
}

void
AddressSpace::removeTlbListener(MemAccess *l)
{
    listeners.erase(
        std::remove(listeners.begin(), listeners.end(), l),
        listeners.end());
}

void
AddressSpace::notifyInvalidatePage(u64 page_va) const
{
    for (MemAccess *l : listeners)
        l->invalidatePage(page_va);
}

void
AddressSpace::notifyInvalidateRange(u64 start, u64 len) const
{
    for (MemAccess *l : listeners)
        l->invalidateRange(start, len);
}

void
AddressSpace::notifyInvalidateAll() const
{
    for (MemAccess *l : listeners)
        l->invalidateAll();
}

void
AddressSpace::notifyCodeWrite() const
{
    for (MemAccess *l : listeners)
        l->noteCodeWrite();
}

bool
AddressSpace::resolvePage(u64 va, bool for_write, PageView *out,
                          bool cap_store)
{
    Pte *pte = walk(va, for_write);
    if (!pte)
        return false;
    if (cap_store)
        markCapStore(*pte, pageTrunc(va));
    out->frame = pte->frame.get();
    out->prot = pte->prot;
    out->cow = pte->cow;
    out->shared = pte->shared;
    out->capDirty = pte->capDirty;
    out->sweepEpochOpen = activeSweepEpoch != 0;
    return true;
}

void
AddressSpace::markCapStore(Pte &pte, u64 page_va)
{
    pte.capDirty = true;
    if (activeSweepEpoch != 0 && pte.queuedEpoch != activeSweepEpoch) {
        // The open epoch has no pending visit to this page — either it
        // was already scanned (its proof is now stale) or it was mapped
        // after the worklist was built; the scheduler must (re)visit it
        // before closing.
        pte.queuedEpoch = activeSweepEpoch;
        redirtied.push_back(page_va);
    }
}

u64
AddressSpace::findFree(u64 hint, u64 len) const
{
    u64 start = hint ? pageTrunc(hint) + aslrSlide
                     : u64{0x40000000} + aslrSlide;
    if (start < userBase)
        start = userBase;
    while (start + len <= userTop) {
        // Find the first mapping ending after `start`.
        auto it = mappings.upper_bound(start);
        if (it != mappings.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end() > start) {
                start = pageRound(prev->second.end());
                continue;
            }
        }
        if (it == mappings.end() || start + len <= it->second.start)
            return start;
        start = pageRound(it->second.end());
    }
    return 0;
}

u64
AddressSpace::map(u64 addr, u64 len, u32 prot, MappingKind kind, bool fixed,
                  bool shared, const std::string &name, bool force_replace)
{
    if (len == 0)
        return 0;
    len = pageRound(len);
    u64 start;
    if (fixed) {
        start = pageTrunc(addr);
        if (start < userBase || start + len > userTop)
            return 0;
        if (rangeOccupied(start, len)) {
            if (!force_replace)
                return 0;
            unmap(start, len);
        }
    } else {
        // ASLR: a per-mapping jitter gap so *relative* placements (and
        // therefore cache conflict patterns) differ run to run.
        u64 jitter = 0;
        if (aslrSlide != 0) {
            u64 h = (aslrSlide + mappings.size() + 1) *
                    0x9E3779B97F4A7C15ull;
            jitter = ((h >> 33) % 16) * pageSize;
        }
        start = findFree(addr, len + jitter);
        if (start == 0)
            return 0;
        start += jitter;
    }
    Mapping m;
    m.start = start;
    m.len = len;
    m.prot = prot;
    m.kind = kind;
    m.shared = shared;
    m.name = name;
    mappings.emplace(start, m);
    // PTEs are created eagerly (frameless) so protection is recorded per
    // page; the *frames* stay demand-zero, allocated by walk() on first
    // touch.
    for (u64 va = start; va < start + len; va += pageSize) {
        Pte pte;
        pte.prot = prot;
        pte.shared = shared;
        pages[va] = std::move(pte);
    }
    return start;
}

bool
AddressSpace::unmap(u64 start, u64 len)
{
    start = pageTrunc(start);
    len = pageRound(len);
    u64 end = start + len;
    // Shoot down cached translations before the frames are released.
    notifyInvalidateRange(start, len);
    bool any = false;
    // Split or drop overlapping mapping records.
    for (auto it = mappings.begin(); it != mappings.end();) {
        Mapping m = it->second;
        if (m.end() <= start || m.start >= end) {
            ++it;
            continue;
        }
        any = true;
        it = mappings.erase(it);
        if (m.start < start) {
            Mapping left = m;
            left.len = start - m.start;
            mappings.emplace(left.start, left);
        }
        if (m.end() > end) {
            Mapping right = m;
            right.start = end;
            right.len = m.end() - end;
            mappings.emplace(right.start, right);
        }
    }
    for (u64 va = start; va < end; va += pageSize) {
        auto it = pages.find(va);
        if (it == pages.end())
            continue;
        // A swapped-out page owns a device slot; munmap must release
        // it or the slot leaks for the lifetime of the system.
        if (it->second.swapped)
            swap.discard(it->second.swapSlot);
        pages.erase(it);
    }
    return any;
}

bool
AddressSpace::protect(u64 start, u64 len, u32 prot)
{
    start = pageTrunc(start);
    len = pageRound(len);
    // mprotect is atomic: validate the whole range before touching any
    // PTE, so a hole mid-range leaves every page exactly as it was.
    for (u64 va = start; va < start + len; va += pageSize) {
        if (!pages.count(va))
            return false;
    }
    // Cached translations embed the old protection; drop them first.
    notifyInvalidateRange(start, len);
    for (u64 va = start; va < start + len; va += pageSize)
        pages.find(va)->second.prot = prot;
    for (auto &[mstart, m] : mappings) {
        if (m.start >= start && m.end() <= start + len)
            m.prot = prot;
    }
    return true;
}

const Mapping *
AddressSpace::findMapping(u64 va) const
{
    auto it = mappings.upper_bound(va);
    if (it == mappings.begin())
        return nullptr;
    --it;
    if (va >= it->second.start && va < it->second.end())
        return &it->second;
    return nullptr;
}

bool
AddressSpace::rangeOccupied(u64 start, u64 len) const
{
    u64 end = start + len;
    for (const auto &[mstart, m] : mappings) {
        if (m.start < end && m.end() > start)
            return true;
    }
    return false;
}

void
AddressSpace::forEachMapping(
    const std::function<void(const Mapping &)> &fn) const
{
    for (const auto &[start, m] : mappings)
        fn(m);
}

u64
AddressSpace::representablePadding(u64 len) const
{
    return compress::representableLength(pageRound(len), fmt);
}

Capability
AddressSpace::capForRange(u64 start, u64 len, u32 prot,
                          bool with_vmmap) const
{
    u32 perms = PERM_GLOBAL;
    if (prot & PROT_READ)
        perms |= PERM_LOAD | PERM_LOAD_CAP;
    if (prot & PROT_WRITE)
        perms |= PERM_STORE | PERM_STORE_CAP | PERM_STORE_LOCAL_CAP;
    if (prot & PROT_EXEC)
        perms |= PERM_EXECUTE;
    if (with_vmmap)
        perms |= PERM_SW_VMMAP;
    Result<Capability> r =
        root.setAddress(start).setBounds(pageRound(len));
    CHERI_KASSERT(r.ok(), "kernel minted capability outside user root");
    Result<Capability> p = r.value().andPerms(perms);
    CHERI_KASSERT(p.ok(), "kernel-minted perms monotone");
    return p.value();
}

AddressSpace::Pte *
AddressSpace::walk(u64 va, bool for_write)
{
    // Any failure below that doesn't refine the cause is a plain page
    // fault (unmapped / protection).
    walkFault = CapFault::PageFault;
    if (va < userBase || va >= userTop)
        return nullptr;
    auto it = pages.find(pageTrunc(va));
    if (it == pages.end())
        return nullptr;
    Pte &pte = it->second;
    u32 need = for_write ? PROT_WRITE : PROT_READ;
    if (!(pte.prot & need))
        return nullptr;
    // Allocation below may reenter this space through the kernel's
    // reclaim hook.  That is safe: the pages being serviced here are
    // never evictable at hook time (frame still null, or use_count > 1
    // for a COW original), and reclaim only mutates Pte fields — it
    // never inserts or erases page-table nodes.
    if (pte.swapped) {
        // Swap-in: restore bytes and rederive capabilities from this
        // principal's root.
        FrameRef fresh = phys.allocFrame(this);
        if (!fresh) {
            walkFault = CapFault::MemoryExhausted;
            return nullptr;
        }
        CapFault swapFault = CapFault::SwapInFailure;
        if (!swap.swapIn(pte.swapSlot, *fresh, root, &swapFault)) {
            // The slot is retained; the access can be retried (after
            // an injected metadata corruption, minus the granule the
            // machine check consumed).
            walkFault = swapFault;
            return nullptr;
        }
        pte.frame = std::move(fresh);
        pte.swapped = false;
    }
    if (!pte.frame) {
        pte.frame = phys.allocFrame(this);
        if (!pte.frame) {
            walkFault = CapFault::MemoryExhausted;
            return nullptr;
        }
        // File-backed mappings fill from the file; anonymous ones are
        // demand-zero.
        const Mapping *m = findMapping(va);
        if (m && m->backing) {
            std::array<u8, pageSize> buf{};
            u64 file_off =
                m->backingOffset + (pageTrunc(va) - m->start);
            (*m->backing)(file_off, buf.data(), pageSize);
            pte.frame->write(0, buf.data(), pageSize);
        }
    }
    if (for_write && pte.cow) {
        if (pte.frame.use_count() > 1) {
            FrameRef copy = phys.allocFrame(this);
            if (!copy) {
                walkFault = CapFault::MemoryExhausted;
                return nullptr;
            }
            copy->copyFrom(*pte.frame); // tags preserved across COW
            pte.frame = std::move(copy);
            // The page changed frames: cached read translations still
            // point at the sibling's copy.
            notifyInvalidatePage(pageTrunc(va));
        }
        pte.cow = false;
    }
    pte.lastUse = ++useClock;
    return &pte;
}

CapCheck
AddressSpace::readBytes(u64 va, void *buf, u64 len)
{
    u8 *out = static_cast<u8 *>(buf);
    while (len > 0) {
        Pte *pte = walk(va, false);
        if (!pte)
            return walkFault;
        u64 off = va & pageMask;
        u64 chunk = std::min(len, pageSize - off);
        pte->frame->read(off, out, chunk);
        va += chunk;
        out += chunk;
        len -= chunk;
    }
    return std::nullopt;
}

CapCheck
AddressSpace::writeBytes(u64 va, const void *buf, u64 len)
{
    const u8 *in = static_cast<const u8 *>(buf);
    while (len > 0) {
        Pte *pte = walk(va, true);
        if (!pte)
            return walkFault;
        if (pte->prot & PROT_EXEC)
            notifyCodeWrite();
        u64 off = va & pageMask;
        u64 chunk = std::min(len, pageSize - off);
        pte->frame->write(off, in, chunk);
        va += chunk;
        in += chunk;
        len -= chunk;
    }
    return std::nullopt;
}

Result<Capability>
AddressSpace::readCap(u64 va)
{
    if (va % capAlign != 0)
        return CapFault::AlignmentViolation;
    Pte *pte = walk(va, false);
    if (!pte)
        return walkFault;
    u64 off = va & pageMask;
    if (pte->frame->tagAt(off) &&
        phys.injectCapLoadCorruption(*pte->frame, off, va))
        return CapFault::MachineCheck;
    return pte->frame->readCap(off);
}

CapCheck
AddressSpace::writeCap(u64 va, const Capability &cap)
{
    if (va % capAlign != 0)
        return CapFault::AlignmentViolation;
    Pte *pte = walk(va, true);
    if (!pte)
        return walkFault;
    if (pte->prot & PROT_EXEC)
        notifyCodeWrite();
    markCapStore(*pte, pageTrunc(va));
    pte->frame->writeCap(va & pageMask, cap);
    return std::nullopt;
}

void
AddressSpace::clearTagAt(u64 va)
{
    Pte *pte = walk(va, true);
    if (pte)
        pte->frame->clearTagAt(va & pageMask);
}

std::unique_ptr<AddressSpace>
AddressSpace::forkCopy(u64 new_principal) const
{
    auto child =
        std::make_unique<AddressSpace>(phys, swap, new_principal, fmt);
    child->mappings = mappings;
    for (const auto &[va, pte] : pages) {
        Pte cp = pte;
        if (!pte.shared && pte.frame) {
            // Private resident pages become COW in the child; the parent
            // side is marked by the caller via markCowForFork (we mutate
            // through const_cast here because fork logically modifies
            // both spaces).
            cp.cow = true;
            const_cast<Pte &>(pte).cow = true;
        }
        // A swapped-out page's slot is now referenced by both spaces;
        // without the extra reference the first swap-in (or unmap/exit
        // discard) would free the sibling's only copy of the page.
        if (pte.swapped)
            swap.retain(pte.swapSlot);
        child->pages[va] = cp;
    }
    // The parent's private pages just became COW: any cached writable
    // translation would let a store dodge the copy and corrupt the
    // child's view of the shared frame.
    notifyInvalidateAll();
    return child;
}

bool
AddressSpace::setBacking(u64 start, u64 len, BackingReader reader,
                         BackingWriter writer, u64 file_offset)
{
    auto it = mappings.find(pageTrunc(start));
    if (it == mappings.end() || it->second.len < len)
        return false;
    it->second.backing =
        std::make_shared<BackingReader>(std::move(reader));
    if (writer) {
        it->second.backingWriter =
            std::make_shared<BackingWriter>(std::move(writer));
    }
    it->second.backingOffset = file_offset;
    return true;
}

u64
AddressSpace::syncResident(u64 start, u64 len)
{
    const Mapping *m = findMapping(start);
    if (!m || !m->backingWriter)
        return 0;
    u64 synced = 0;
    for (u64 va = pageTrunc(start); va < start + len; va += pageSize) {
        auto it = pages.find(va);
        if (it == pages.end() || !it->second.frame)
            continue;
        u64 file_off = m->backingOffset + (va - m->start);
        (*m->backingWriter)(file_off,
                            it->second.frame->bytes().data(), pageSize);
        ++synced;
    }
    return synced;
}

bool
AddressSpace::installFrame(u64 va, FrameRef frame)
{
    auto it = pages.find(pageTrunc(va));
    if (it == pages.end())
        return false;
    notifyInvalidatePage(pageTrunc(va));
    // The incoming shared frame replaces whatever backed the page; a
    // swapped-out original still owns a device slot that must go too.
    if (it->second.swapped)
        swap.discard(it->second.swapSlot);
    it->second.frame = std::move(frame);
    it->second.shared = true;
    it->second.cow = false;
    it->second.swapped = false;
    // The incoming frame may already carry capabilities stored through
    // another space's mapping, and future sibling stores are invisible
    // to this page table: conservatively (and permanently) cap-dirty.
    // markCapStore also queues the page when an epoch is open — a
    // frame attached mid-epoch must be scanned before the close.
    markCapStore(it->second, pageTrunc(va));
    return true;
}

bool
AddressSpace::swapOutPage(u64 va)
{
    auto it = pages.find(pageTrunc(va));
    if (it == pages.end() || !it->second.frame || it->second.shared)
        return false;
    Pte &pte = it->second;
    if (pte.frame.use_count() > 1)
        return false; // still aliased by a COW sibling; keep resident
    u64 slot = swap.swapOut(*pte.frame);
    if (slot == SwapDevice::invalidSlot)
        return false; // device full or injected failure: stay resident
    // Invalidate before the frame dies: TLBs hold raw Frame pointers
    // without a reference.
    notifyInvalidatePage(pageTrunc(va));
    pte.swapSlot = slot;
    pte.frame.reset();
    pte.swapped = true;
    return true;
}

std::vector<u64>
AddressSpace::evictionOrder(u64 max_pages) const
{
    // Least-recently-used first; the walk clock is deterministic, and
    // VA breaks ties, so the order is reproducible across runs.
    std::vector<std::pair<u64, u64>> victims; // (lastUse, va)
    for (const auto &[va, pte] : pages) {
        if (pte.frame && !pte.shared && pte.frame.use_count() == 1)
            victims.emplace_back(pte.lastUse, va);
    }
    std::sort(victims.begin(), victims.end());
    if (victims.size() > max_pages)
        victims.resize(max_pages);
    std::vector<u64> order;
    order.reserve(victims.size());
    for (const auto &[use, va] : victims)
        order.push_back(va);
    return order;
}

u64
AddressSpace::swapOutResident(u64 max_pages)
{
    u64 evicted = 0;
    for (u64 va : evictionOrder(max_pages)) {
        Pte &pte = pages.find(va)->second;
        u64 slot = swap.swapOut(*pte.frame);
        if (slot == SwapDevice::invalidSlot)
            break; // swap full: the caller escalates (OOM kill)
        notifyInvalidatePage(va);
        pte.swapSlot = slot;
        pte.frame.reset();
        pte.swapped = true;
        ++evicted;
    }
    return evicted;
}

u64
AddressSpace::releaseAll()
{
    notifyInvalidateAll();
    u64 freed = 0;
    for (auto &[va, pte] : pages) {
        if (pte.swapped)
            swap.discard(pte.swapSlot);
        freed += pte.frame != nullptr;
    }
    pages.clear();
    mappings.clear();
    return freed;
}

u64
AddressSpace::swappedPages() const
{
    u64 n = 0;
    for (const auto &[va, pte] : pages)
        n += pte.swapped;
    return n;
}

u64
AddressSpace::revokeCapsMatching(
    const std::function<bool(const Capability &)> &pred)
{
    // Revocation mutates tag state under any cached translation; a TLB
    // must not keep serving pre-sweep capability loads from its frame
    // pointer without re-walking (decode caches also flush).
    notifyInvalidateAll();
    u64 revoked = 0;
    // Direct (non-epoch) sweep: every content page, swap scans not
    // injectable, so this path keeps its historical cannot-fail
    // contract.  Proving pages clean along the way is free.
    for (auto &[va, pte] : pages) {
        (void)pte;
        revoked += sweepPageImpl(va, 0, pred, false).revoked;
    }
    return revoked;
}

u64
AddressSpace::contentPages() const
{
    u64 n = 0;
    for (const auto &[va, pte] : pages)
        n += pte.frame != nullptr || pte.swapped;
    return n;
}

u64
AddressSpace::capDirtyPageCount() const
{
    u64 n = 0;
    for (const auto &[va, pte] : pages)
        n += pte.capDirty;
    return n;
}

std::vector<u64>
AddressSpace::sweepWorklist(bool force_full) const
{
    std::vector<u64> work;
    for (const auto &[va, pte] : pages) {
        if (force_full ? (pte.frame != nullptr || pte.swapped)
                       : pte.capDirty) {
            work.push_back(va);
        }
    }
    return work;
}

AddressSpace::PageSweep
AddressSpace::sweepPageImpl(
    u64 va, u64 epoch_id,
    const std::function<bool(const Capability &)> &pred, bool injectable)
{
    PageSweep r;
    auto it = pages.find(pageTrunc(va));
    if (it == pages.end()) {
        // Unmapped since it was queued: nothing can survive there.
        r.provenClean = true;
        return r;
    }
    Pte &pte = it->second;
    if (pte.swapped) {
        // Swapped pages are scanned through their tag metadata without
        // paging them in; the device read is what can fail.
        u64 remaining = 0;
        if (injectable) {
            if (!swap.sweepSlot(pte.swapSlot, pred, &r.revoked,
                                &remaining)) {
                r.deviceFailed = true;
                return r;
            }
        } else {
            r.revoked = swap.revokeMatchingInSlot(pte.swapSlot, pred);
            remaining = swap.slotTagCount(pte.swapSlot);
        }
        r.granules = granulesPerPage;
        if (remaining == 0 && !pte.shared) {
            pte.capDirty = false;
            r.provenClean = true;
        }
    } else if (pte.frame) {
        // Collect first: clearing mutates the tag bitmap under us.
        std::vector<u64> offs;
        pte.frame->forEachTagged([&](u64 off, const Capability &cap) {
            if (pred(cap))
                offs.push_back(off);
        });
        for (u64 off : offs)
            pte.frame->clearTagAt(off);
        r.revoked = offs.size();
        r.granules = granulesPerPage;
        if (pte.frame->taggedCount() == 0 && !pte.shared) {
            pte.capDirty = false;
            r.provenClean = true;
        }
        // Once proven clean, a cached cap-store-permitted dTLB entry
        // would let the next capability store dodge the dirty bit; and
        // revoked tags must not be served from stale entries either.
        // Inside an epoch the entry goes unconditionally: a cached
        // capWritable for a scanned-but-still-dirty page would let a
        // later cap store bypass the re-queue in markCapStore.
        if (epoch_id != 0 || r.provenClean || r.revoked != 0)
            notifyInvalidatePage(pageTrunc(va));
    } else {
        // Demand-zero page: trivially holds no capabilities.
        if (!pte.shared) {
            pte.capDirty = false;
            r.provenClean = true;
        }
    }
    if (epoch_id != 0 && !r.deviceFailed) {
        pte.sweptEpoch = epoch_id;
        // The queued visit is satisfied; a later cap store in the same
        // epoch re-queues through markCapStore.
        pte.queuedEpoch = 0;
    }
    return r;
}

AddressSpace::PageSweep
AddressSpace::sweepPageForRevocation(
    u64 va, u64 epoch_id,
    const std::function<bool(const Capability &)> &pred)
{
    return sweepPageImpl(va, epoch_id, pred, true);
}

AddressSpace::SharedSweep
AddressSpace::sweepSharedPagesForClose(
    u64 epoch_id, const std::function<bool(const Capability &)> &pred)
{
    SharedSweep total;
    for (auto &[va, pte] : pages) {
        if (!pte.shared || (!pte.frame && !pte.swapped))
            continue;
        // Non-injectable like the direct sweep: the close barrier must
        // not fail (shared pages are never swapped out anyway).
        PageSweep r = sweepPageImpl(va, epoch_id, pred, false);
        ++total.pages;
        total.granules += r.granules;
        total.revoked += r.revoked;
    }
    return total;
}

std::vector<u64>
AddressSpace::beginSweepEpoch(u64 epoch_id, bool force_full)
{
    activeSweepEpoch = epoch_id;
    redirtied.clear();
    // Drop every cached translation: entries installed before the
    // epoch may carry capability-store permission, and the epoch's
    // soundness depends on every cap store taking the walk path (where
    // markCapStore records it) until the epoch closes.  resolvePage
    // reports sweepEpochOpen from here on, so refills stay cap-cold.
    notifyInvalidateAll();
    std::vector<u64> work = sweepWorklist(force_full);
    // Stamp the initial worklist so markCapStore knows these pages
    // already have a pending visit and need not be re-queued.
    for (u64 va : work)
        pages.find(va)->second.queuedEpoch = epoch_id;
    return work;
}

void
AddressSpace::endSweepEpoch()
{
    activeSweepEpoch = 0;
    redirtied.clear();
}

std::vector<u64>
AddressSpace::takeRedirtiedPages()
{
    std::vector<u64> out = std::move(redirtied);
    redirtied.clear();
    return out;
}

u64
AddressSpace::revokeCapsInRange(u64 lo, u64 hi)
{
    return revokeCapsMatching([lo, hi](const Capability &cap) {
        return cap.base() >= lo && cap.base() < hi;
    });
}

u64
AddressSpace::residentPages() const
{
    u64 n = 0;
    for (const auto &[va, pte] : pages)
        n += pte.frame != nullptr;
    return n;
}

void
AddressSpace::forEachPte(
    const std::function<void(const PteView &)> &fn) const
{
    for (const auto &[va, pte] : pages) {
        PteView v;
        v.va = va;
        v.prot = pte.prot;
        v.cow = pte.cow;
        v.shared = pte.shared;
        v.swapped = pte.swapped;
        v.swapSlot = pte.swapped ? pte.swapSlot : 0;
        v.capDirty = pte.capDirty;
        v.sweptEpoch = pte.sweptEpoch;
        v.frame = pte.frame.get();
        v.frameRefs = pte.frame ? pte.frame.use_count() : 0;
        fn(v);
    }
}

void
AddressSpace::forEachTaggedCap(
    const std::function<void(u64, const Capability &)> &fn) const
{
    for (const auto &[va, pte] : pages) {
        if (!pte.frame)
            continue;
        pte.frame->forEachTagged(
            [&](u64 off, const Capability &cap) { fn(va + off, cap); });
    }
}

u64
AddressSpace::verifyCapContainment() const
{
    u64 violations = 0;
    forEachTaggedCap([&](u64, const Capability &cap) {
        bool ok = cap.base() >= root.base() && cap.top() <= root.top() &&
                  (cap.perms() & ~root.perms()) == 0;
        violations += !ok;
    });
    return violations;
}

u64
AddressSpace::taggedGranules() const
{
    u64 n = 0;
    for (const auto &[va, pte] : pages) {
        if (pte.frame)
            n += pte.frame->taggedCount();
    }
    return n;
}

} // namespace cheri
