#include "cap/compression.h"

#include <bit>

namespace cheri::compress
{

namespace
{

/** Number of significant bits in @p v (0 for v == 0). */
unsigned
bitWidth(u64 v)
{
    return 64 - std::countl_zero(v);
}

} // namespace

unsigned
exponentFor(u64 length)
{
    // The mantissa can express lengths up to (1 << (mantissaWidth - 1)) - 1
    // at exponent 0; longer regions shift the representation right.
    const unsigned mantissa_bits = mantissaWidth - 1;
    unsigned width = bitWidth(length);
    if (width <= mantissa_bits)
        return 0;
    return width - mantissa_bits;
}

u64
representableLength(u64 length, CapFormat fmt)
{
    if (fmt == CapFormat::Cap256)
        return length;
    unsigned e = exponentFor(length);
    if (e == 0)
        return length;
    u64 granule = u64{1} << e;
    u64 rounded = (length + granule - 1) & ~(granule - 1);
    // Rounding may push the length across a mantissa boundary, requiring
    // a larger exponent; recompute once (the fixpoint is reached in one
    // step because rounding adds less than one granule).
    unsigned e2 = exponentFor(rounded);
    if (e2 != e) {
        u64 granule2 = u64{1} << e2;
        rounded = (rounded + granule2 - 1) & ~(granule2 - 1);
    }
    return rounded;
}

u64
representableAlignmentMask(u64 length, CapFormat fmt)
{
    if (fmt == CapFormat::Cap256)
        return ~u64{0};
    unsigned e = exponentFor(representableLength(length, fmt));
    if (e == 0)
        return ~u64{0};
    return ~((u64{1} << e) - 1);
}

bool
boundsExactlyRepresentable(u64 base, u64 length, CapFormat fmt)
{
    if (fmt == CapFormat::Cap256)
        return true;
    u64 mask = representableAlignmentMask(length, fmt);
    return (base & ~mask) == 0 && (length & ~mask) == 0;
}

u64
representableSlack(u64 length, CapFormat fmt)
{
    if (fmt == CapFormat::Cap256)
        return ~u64{0};
    unsigned e = exponentFor(length);
    // The representable window is 1 << (e + mantissaWidth) bytes; the
    // object occupies at most half of it, leaving slack either side.
    unsigned window_bits = e + mantissaWidth;
    if (window_bits >= 64)
        return ~u64{0};
    return (u64{1} << window_bits) / 4;
}

bool
addressRepresentable(u64 base, u128 top, u64 addr, CapFormat fmt)
{
    if (fmt == CapFormat::Cap256)
        return true;
    if (addr >= base && u128{addr} <= top)
        return true;
    u64 length = top - base > u128{~u64{0}} ? ~u64{0}
                                            : static_cast<u64>(top - base);
    u64 slack = representableSlack(length, fmt);
    if (slack == ~u64{0})
        return true;
    // Below-base slack (saturating at address 0).
    u64 lo = base > slack ? base - slack : 0;
    // Above-top slack (saturating at the top of the address space).
    u128 hi = top + slack;
    return addr >= lo && u128{addr} < hi;
}

} // namespace cheri::compress
