# Empty compiler generated dependencies file for cheri_machine.
# This may be replaced when dependencies are built.
