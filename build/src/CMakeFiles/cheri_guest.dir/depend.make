# Empty dependencies file for cheri_guest.
# This may be replaced when dependencies are built.
