file(REMOVE_RECURSE
  "libcheri_bodiag.a"
)
