/**
 * @file
 * The unified revocation interface: epoch state machine + kernel scans.
 *
 * Revocation is the "new interface" the paper's temporal-safety future
 * work calls for (section 6), implemented here in the Cornucopia
 * style: the VM layer keeps a sticky cap-dirty bit per page (set at
 * the capability-store choke points, cleared only when a sweep proves
 * the page free of tagged capabilities), and the kernel runs each
 * revocation as an *epoch* —
 *
 *   Idle --open--> Open --[scan cap-dirty pages, re-scan pages
 *                          cap-stored after their scan, then sweep
 *                          every kernel-held capability store]--> Idle
 *
 * — either synchronously inside one syscall (REVOKE_SYNC) or a bounded
 * slice of pages at a time (REVOKE_INCREMENTAL), amortized across
 * subsequent dispatch() calls so guest syscall latency stays flat.
 *
 * Kernel-held capability stores (the paper: user pointers "may be held
 * in kernel structures for extended periods") are reached through the
 * RevocationScan registry below instead of ad-hoc loops: thread
 * register files, startup capabilities, in-flight signal frames, and
 * kevent udata each register a scan, and any future kernel store is
 * one registration away from being swept.
 */

#ifndef CHERI_OS_REVOCATION_H
#define CHERI_OS_REVOCATION_H

#include <deque>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "cap/capability.h"

namespace cheri
{

class Kernel;
class Process;

/** Flags for the unified revocation syscall (revoke2). */
enum RevokeFlags : u32
{
    /**
     * Run the whole epoch inside the call; the result is the number of
     * tags revoked.  With an empty range set, drains any epoch left
     * open by a previous INCREMENTAL call.
     */
    REVOKE_SYNC = 0x1,
    /**
     * Open an epoch and scan one bounded slice; the result is the
     * number of pages still queued (0 = the epoch closed).  With an
     * empty range set, advances the open epoch by one more slice — the
     * poll form an allocator uses to drain its quarantine without ever
     * blocking on a full sweep.
     */
    REVOKE_INCREMENTAL = 0x2,
    /** Scan every content page, ignoring cap-dirty bits (the ablation
     *  baseline, and a paranoia mode). */
    REVOKE_FORCE_FULL = 0x4,
};

/**
 * One kernel subsystem's registration against the revocation sweep.
 * The visitor receives a mutable reference to every kernel- or
 * register-held capability belonging to the process and clears tags in
 * place; scans run when an epoch closes, after every page is proven
 * scanned (a register may hold a capability loaded before its page's
 * scan, so sweeping roots earlier would be unsound).
 */
class RevocationScan
{
  public:
    virtual ~RevocationScan() = default;
    virtual std::string_view name() const = 0;
    virtual void
    forEachCap(Kernel &kern, Process &proc,
               const std::function<void(Capability &)> &fn) = 0;
};

/** Per-process revocation epoch state (Idle <-> Open). */
struct RevocationEpoch
{
    bool open = false;
    /** Kernel-global epoch id; nonzero while open. */
    u64 id = 0;
    /** Sorted, coalesced (disjoint), validated [lo, hi) ranges under
     *  revocation. */
    std::vector<std::pair<u64, u64>> ranges;
    /** Page VAs still to scan (re-dirtied pages re-enter at the back). */
    std::deque<u64> worklist;
    bool forceFull = false;
    bool incremental = false;
    /** Tags revoked so far in this epoch (pages + roots at close). */
    u64 revoked = 0;
    u64 cyclesAtOpen = 0;
    /**
     * The last successfully *closed* epoch, for the oracle's
     * quarantine rule: the ranges it proved dead, and the quiescent
     * clock value at which it closed (the close itself is a tick, so
     * the value is unique to this close regardless of whether the
     * epoch was driven through dispatch() or a direct syscall entry).
     * The rule fires exactly while that value is current — after the
     * close, before any later kernel entry under which the allocator
     * can have reused the quarantine.
     */
    std::vector<std::pair<u64, u64>> closedRanges;
    u64 closeSeq = 0;
};

/** Membership test against a sorted *disjoint* range set (binary
 *  search — the in-kernel equivalent of CHERIvoke's shadow bitmap).
 *  Only the predecessor range is examined, so overlapping or nested
 *  ranges must be coalesced first (coalesceRanges). */
bool capInSortedRanges(const Capability &cap,
                       const std::vector<std::pair<u64, u64>> &sorted);

/** Sort @p ranges and merge overlapping/adjacent entries in place, the
 *  normal form capInSortedRanges requires. */
void coalesceRanges(std::vector<std::pair<u64, u64>> &ranges);

/** Install the default kernel scans (thread register files, startup
 *  capabilities, live signal frames, kevent udata) on @p kern. */
void registerDefaultRevocationScans(Kernel &kern);

} // namespace cheri

#endif // CHERI_OS_REVOCATION_H
