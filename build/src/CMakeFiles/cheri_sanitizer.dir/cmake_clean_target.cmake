file(REMOVE_RECURSE
  "libcheri_sanitizer.a"
)
