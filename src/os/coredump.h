/**
 * @file
 * Core dumps with capability register values.
 *
 * The paper's debugging work (section 4) extends ptrace to read
 * capability registers and "arranged for register values to be stored
 * in core dumps".  MiniBSD writes a core file into the VFS when a
 * process dies on a signal: the death cause, the full capability
 * register file (values *and* tag/bounds/permission metadata — as
 * data, never as live capabilities), and the memory map.
 */

#ifndef CHERI_OS_COREDUMP_H
#define CHERI_OS_COREDUMP_H

#include <optional>
#include <string>
#include <vector>

#include "machine/regs.h"
#include "mem/vm.h"
#include "os/vfs.h"

namespace cheri
{

/** Parsed contents of a core file. */
struct CoreDump
{
    u64 pid = 0;
    std::string name;
    int signal = 0;
    CapFault fault = CapFault::None;
    u64 faultAddr = 0;
    ThreadRegs regs;
    std::vector<Mapping> mappings;
};

class Process;

/** Serialize @p proc's post-mortem state into @p node. */
void writeCoreFile(const Process &proc, VNode &node);

/** Parse a core file; nullopt if malformed. */
std::optional<CoreDump> readCoreFile(const VNode &node);

} // namespace cheri

#endif // CHERI_OS_COREDUMP_H
