/**
 * @file
 * Tests for the unified memory-access path (mem/access.h): software-TLB
 * coherence across every invalidation source, tag preservation through
 * the fast path, decode-generation behavior, the page-chunked string
 * reader, and the kernel-level consumers (copyinstr, fork).
 */

#include <gtest/gtest.h>

#include "mem/access.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

class AccessTest : public ::testing::Test
{
  protected:
    PhysMem phys;
    SwapDevice swap;
    AddressSpace as{phys, swap, 1};
    MemAccess mem{as};

    u64
    mapAnon(u64 len, u32 prot = PROT_READ | PROT_WRITE)
    {
        u64 va = as.map(0, len, prot, MappingKind::Data);
        EXPECT_NE(va, 0u);
        return va;
    }

    /** Prime the dTLB entry for @p va with one read. */
    void
    prime(u64 va)
    {
        u8 b = 0;
        ASSERT_FALSE(mem.read(va, &b, 1).has_value());
    }
};

TEST_F(AccessTest, HitAfterMissMatchesWalkPath)
{
    u64 va = mapAnon(pageSize);
    u64 v = 0x1122334455667788;
    ASSERT_FALSE(mem.write(va + 64, &v, 8).has_value());

    u64 via_tlb = 0, via_walk = 0;
    ASSERT_FALSE(mem.read(va + 64, &via_tlb, 8).has_value());
    ASSERT_FALSE(as.readBytes(va + 64, &via_walk, 8).has_value());
    EXPECT_EQ(via_tlb, v);
    EXPECT_EQ(via_walk, v);

    // The second access to the same page must be a hit.
    u64 misses = mem.stats().dataMisses;
    ASSERT_FALSE(mem.read(va + 128, &via_tlb, 8).has_value());
    EXPECT_EQ(mem.stats().dataMisses, misses);
    EXPECT_GT(mem.stats().dataHits, 0u);
}

TEST_F(AccessTest, UnmapInvalidatesCachedTranslation)
{
    u64 va = mapAnon(pageSize);
    prime(va);
    ASSERT_TRUE(as.unmap(va, pageSize));
    u8 b = 0;
    EXPECT_TRUE(mem.read(va, &b, 1).has_value());
}

TEST_F(AccessTest, RemapAfterUnmapServesTheNewFrame)
{
    u64 va = mapAnon(pageSize);
    u64 marker = 0xDEAD;
    ASSERT_FALSE(mem.write(va, &marker, 8).has_value());
    ASSERT_TRUE(as.unmap(va, pageSize));
    ASSERT_EQ(as.map(va, pageSize, PROT_READ | PROT_WRITE,
                     MappingKind::Data, /*fixed=*/true),
              va);
    // A stale TLB entry would resurrect the old frame's contents; the
    // fresh mapping must read demand-zero.
    u64 got = ~u64{0};
    ASSERT_FALSE(mem.read(va, &got, 8).has_value());
    EXPECT_EQ(got, 0u);
}

TEST_F(AccessTest, MprotectDropsCachedWritePermission)
{
    u64 va = mapAnon(pageSize);
    u64 v = 1;
    ASSERT_FALSE(mem.write(va, &v, 8).has_value()); // cached writable
    ASSERT_TRUE(as.protect(va, pageSize, PROT_READ));
    EXPECT_TRUE(mem.write(va, &v, 8).has_value());
    // Reads still work, and re-enabling write restores the fast path.
    ASSERT_FALSE(mem.read(va, &v, 8).has_value());
    ASSERT_TRUE(as.protect(va, pageSize, PROT_READ | PROT_WRITE));
    EXPECT_FALSE(mem.write(va, &v, 8).has_value());
}

TEST_F(AccessTest, ForkCowNeverWritesTheSharedFrame)
{
    u64 va = mapAnon(pageSize);
    u64 before = 0xAAAA;
    ASSERT_FALSE(mem.write(va, &before, 8).has_value());

    std::unique_ptr<AddressSpace> child = as.forkCopy(2);
    MemAccess child_mem(*child);

    // The parent's cached writable entry was invalidated by forkCopy;
    // this write must COW-copy, not scribble on the shared frame.
    u64 after = 0xBBBB;
    ASSERT_FALSE(mem.write(va, &after, 8).has_value());

    u64 parent_sees = 0, child_sees = 0;
    ASSERT_FALSE(mem.read(va, &parent_sees, 8).has_value());
    ASSERT_FALSE(child_mem.read(va, &child_sees, 8).has_value());
    EXPECT_EQ(parent_sees, after);
    EXPECT_EQ(child_sees, before);
}

TEST_F(AccessTest, SwapOutInvalidatesAndSwapInPreservesData)
{
    u64 va = mapAnon(pageSize);
    u64 v = 0x5A5A5A5A;
    ASSERT_FALSE(mem.write(va, &v, 8).has_value());
    ASSERT_TRUE(as.swapOutPage(va));
    // The TLB held a raw Frame*; the frame is gone.  The next access
    // must miss, swap the page back in, and see the same bytes.
    u64 got = 0;
    ASSERT_FALSE(mem.read(va, &got, 8).has_value());
    EXPECT_EQ(got, v);
}

TEST_F(AccessTest, SwapRoundTripPreservesTagsThroughFastPath)
{
    u64 va = mapAnon(pageSize);
    Capability c = as.capForRange(va, pageSize, PROT_READ | PROT_WRITE);
    ASSERT_TRUE(c.tag());
    ASSERT_FALSE(mem.writeCap(va + capSize, c).has_value());
    ASSERT_TRUE(as.swapOutPage(va));
    Result<Capability> r = mem.readCap(va + capSize);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().tag());
    EXPECT_EQ(r.value(), c);
    EXPECT_EQ(as.verifyCapContainment(), 0u);
}

TEST_F(AccessTest, InstallFrameReplacesCachedTranslation)
{
    u64 va = mapAnon(pageSize);
    u64 old = 0x11;
    ASSERT_FALSE(mem.write(va, &old, 8).has_value());

    FrameRef shared = phys.allocFrame();
    u64 pattern = 0x77;
    shared->write(0, &pattern, 8);
    ASSERT_TRUE(as.installFrame(va, shared));

    u64 got = 0;
    ASSERT_FALSE(mem.read(va, &got, 8).has_value());
    EXPECT_EQ(got, pattern);
}

TEST_F(AccessTest, RevocationSweepIsVisibleThroughTheTlb)
{
    u64 va = mapAnon(pageSize);
    Capability c = as.capForRange(va, 64, PROT_READ | PROT_WRITE);
    ASSERT_FALSE(mem.writeCap(va, c).has_value());
    // Prime the read path so a stale cached view would be tempting.
    ASSERT_TRUE(mem.readCap(va).ok());
    u64 cleared = as.revokeCapsInRange(va, va + 64);
    EXPECT_GE(cleared, 1u);
    Result<Capability> r = mem.readCap(va);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().tag());
}

TEST_F(AccessTest, CapRoundTripIsBitForBitOnTheHitPath)
{
    u64 va = mapAnon(pageSize);
    Capability c = as.capForRange(va + 256, 128, PROT_READ | PROT_WRITE);
    ASSERT_FALSE(mem.writeCap(va + 16, c).has_value());
    // First read may miss; second is guaranteed to hit.
    ASSERT_TRUE(mem.readCap(va + 16).ok());
    Result<Capability> r = mem.readCap(va + 16);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), c);
    EXPECT_TRUE(r.value().tag());
    EXPECT_EQ(r.value().base(), c.base());
    EXPECT_EQ(r.value().length(), c.length());
    EXPECT_EQ(r.value().perms(), c.perms());
    EXPECT_EQ(as.verifyCapContainment(), 0u);
}

TEST_F(AccessTest, ByteWriteThroughFastPathClearsTags)
{
    u64 va = mapAnon(pageSize);
    Capability c = as.capForRange(va, 64, PROT_READ | PROT_WRITE);
    ASSERT_FALSE(mem.writeCap(va, c).has_value());
    u8 junk = 0xFF;
    ASSERT_FALSE(mem.write(va + 3, &junk, 1).has_value());
    Result<Capability> r = mem.readCap(va);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().tag());
}

TEST_F(AccessTest, FetchGenerationBumpsOnWritesToExecutablePages)
{
    u64 text = as.map(0, pageSize, PROT_READ | PROT_WRITE | PROT_EXEC,
                      MappingKind::Text);
    ASSERT_NE(text, 0u);
    u64 insn = 0;
    ASSERT_FALSE(mem.fetch(text, &insn, 8).has_value());
    u64 gen = mem.fetchGen();

    // Store to the executable page through the fast path: generation
    // must advance so decode caches re-fetch.
    u64 patched = 42;
    ASSERT_FALSE(mem.write(text, &patched, 8).has_value());
    EXPECT_GT(mem.fetchGen(), gen);

    // The same must hold for a store issued via the walk path (another
    // actor writing the same address space).
    gen = mem.fetchGen();
    ASSERT_FALSE(as.writeBytes(text, &patched, 8).has_value());
    EXPECT_GT(mem.fetchGen(), gen);

    // Writes to non-executable pages leave the generation alone.
    u64 data = mapAnon(pageSize);
    gen = mem.fetchGen();
    ASSERT_FALSE(mem.write(data, &patched, 8).has_value());
    EXPECT_EQ(mem.fetchGen(), gen);
}

TEST_F(AccessTest, FetchUsesTheInstructionTlb)
{
    u64 text = as.map(0, pageSize, PROT_READ | PROT_EXEC,
                      MappingKind::Text);
    ASSERT_NE(text, 0u);
    u64 insn = 0;
    ASSERT_FALSE(mem.fetch(text, &insn, 8).has_value());
    u64 misses = mem.stats().fetchMisses;
    ASSERT_FALSE(mem.fetch(text + 8, &insn, 8).has_value());
    EXPECT_EQ(mem.stats().fetchMisses, misses);
    EXPECT_GT(mem.stats().fetchHits, 0u);
}

TEST_F(AccessTest, ReadStringWithinAndAcrossPages)
{
    u64 va = mapAnon(2 * pageSize);
    const char short_str[] = "hello";
    ASSERT_FALSE(
        mem.write(va + 10, short_str, sizeof(short_str)).has_value());
    std::string out;
    u64 scanned = 0;
    EXPECT_EQ(mem.readString(va + 10, &out, 256, &scanned),
              MemAccess::StrRead::Ok);
    EXPECT_EQ(out, "hello");
    EXPECT_EQ(scanned, sizeof(short_str));

    // A string straddling the page boundary.
    std::string long_str(100, 'x');
    u64 start = va + pageSize - 50;
    ASSERT_FALSE(
        mem.write(start, long_str.c_str(), long_str.size() + 1)
            .has_value());
    EXPECT_EQ(mem.readString(start, &out, 256, &scanned),
              MemAccess::StrRead::Ok);
    EXPECT_EQ(out, long_str);
    EXPECT_EQ(scanned, long_str.size() + 1);
}

TEST_F(AccessTest, ReadStringReportsTooLongAndFault)
{
    u64 va = mapAnon(pageSize);
    std::string unterminated(64, 'y');
    ASSERT_FALSE(mem.write(va, unterminated.c_str(), unterminated.size())
                     .has_value());
    std::string out;
    EXPECT_EQ(mem.readString(va, &out, 32, nullptr),
              MemAccess::StrRead::TooLong);
    EXPECT_EQ(out, std::string(32, 'y'));

    // Fill the whole page with non-NUL bytes so the scan runs off the
    // end of the mapping mid-string.
    std::string page_fill(pageSize, 'z');
    ASSERT_FALSE(mem.write(va, page_fill.c_str(), pageSize).has_value());
    u64 scanned = 0;
    EXPECT_EQ(mem.readString(va + pageSize - 16, &out, 256, &scanned),
              MemAccess::StrRead::Fault);
    EXPECT_EQ(scanned, 16u);
    EXPECT_EQ(out, std::string(16, 'z'));
}

TEST_F(AccessTest, BindRetargetsAndDestructionDetaches)
{
    u64 va = mapAnon(pageSize);
    u64 v = 0xC0FFEE;
    ASSERT_FALSE(mem.write(va, &v, 8).has_value());

    auto other = std::make_unique<AddressSpace>(phys, swap, 7);
    u64 ova = other->map(0, pageSize, PROT_READ | PROT_WRITE,
                         MappingKind::Data);
    ASSERT_NE(ova, 0u);
    MemAccess roaming(as);
    prime(va);
    roaming.bind(*other);
    // All translations flushed; accesses now resolve in `other`.
    u64 got = 1;
    ASSERT_FALSE(roaming.read(ova, &got, 8).has_value());
    EXPECT_EQ(got, 0u);

    // Destroying the bound space must detach rather than dangle.
    other.reset();
    EXPECT_TRUE(roaming.read(ova, &got, 8).has_value());
    EXPECT_EQ(roaming.space(), nullptr);
}

/** Deterministic LCG so the stress run is reproducible. */
struct Lcg
{
    u64 s;
    u64 next() { return s = s * 6364136223846793005ull + 1442695040888963407ull; }
};

TEST_F(AccessTest, RandomizedStressAgainstWalkGroundTruth)
{
    constexpr u64 kPages = 8;
    u64 va = mapAnon(kPages * pageSize);
    std::vector<u8> shadow(kPages * pageSize, 0);
    Lcg rng{12345};

    for (int iter = 0; iter < 4000; ++iter) {
        u64 off = rng.next() % (kPages * pageSize - 16);
        switch (rng.next() % 8) {
          case 0: { // write through the walk path
            u64 v = rng.next();
            ASSERT_FALSE(as.writeBytes(va + off, &v, 8).has_value());
            std::memcpy(shadow.data() + off, &v, 8);
            break;
          }
          case 1:
          case 2: { // write through the TLB path
            u64 v = rng.next();
            ASSERT_FALSE(mem.write(va + off, &v, 8).has_value());
            std::memcpy(shadow.data() + off, &v, 8);
            break;
          }
          case 3: // evict a page under the TLB's feet
            as.swapOutPage(va + (off & ~pageMask));
            break;
          case 4: { // protection flip round trip
            u64 page = va + (off & ~pageMask);
            ASSERT_TRUE(as.protect(page, pageSize, PROT_READ));
            u64 v = 0;
            EXPECT_TRUE(mem.write(page, &v, 8).has_value());
            ASSERT_TRUE(
                as.protect(page, pageSize, PROT_READ | PROT_WRITE));
            break;
          }
          default: { // read back through both paths and compare
            u64 tlb_v = 0, walk_v = 0;
            ASSERT_FALSE(mem.read(va + off, &tlb_v, 8).has_value());
            ASSERT_FALSE(as.readBytes(va + off, &walk_v, 8).has_value());
            u64 want = 0;
            std::memcpy(&want, shadow.data() + off, 8);
            ASSERT_EQ(tlb_v, want) << "iter " << iter;
            ASSERT_EQ(walk_v, want) << "iter " << iter;
            break;
          }
        }
    }
    // Final sweep: every byte identical via both paths.
    std::vector<u8> got(kPages * pageSize);
    ASSERT_FALSE(mem.read(va, got.data(), got.size()).has_value());
    EXPECT_EQ(got, shadow);
    ASSERT_FALSE(as.readBytes(va, got.data(), got.size()).has_value());
    EXPECT_EQ(got, shadow);
}

class AccessKernelBothAbis : public ::testing::TestWithParam<Abi>
{
  protected:
    GuestSystem sys{GetParam()};
    GuestContext &ctx() { return *sys.ctx; }
    Process &proc() { return *sys.proc; }
    Kernel &kern() { return sys.kern; }
};

TEST_P(AccessKernelBothAbis, CopyinstrAcrossPageBoundary)
{
    GuestPtr buf = ctx().mmap(2 * pageSize);
    std::string s(pageSize / 2 + 300, 'k');
    u64 start_off = pageSize - 100; // straddles the boundary
    ctx().write(buf + static_cast<s64>(start_off), s.c_str(),
                s.size() + 1);
    std::string out;
    UserPtr p = ctx().toUser(buf + static_cast<s64>(start_off));
    ASSERT_EQ(kern().copyinstr(proc(), p, &out, s.size() + 1), E_OK);
    EXPECT_EQ(out, s);
}

TEST_P(AccessKernelBothAbis, CopyinstrRangeExhaustionIsERange)
{
    GuestPtr buf = ctx().mmap(pageSize);
    std::string s(64, 'q');
    ctx().write(buf, s.c_str(), s.size() + 1);
    std::string out;
    EXPECT_EQ(kern().copyinstr(proc(), ctx().toUser(buf), &out, 16),
              E_RANGE);
}

TEST_P(AccessKernelBothAbis, ForkChildIsCowIsolatedThroughMemPath)
{
    GuestPtr buf = ctx().mmap(pageSize);
    u64 before = 0x1234;
    ctx().write(buf, &before, 8);

    Process *child = kern().fork(proc());
    ASSERT_NE(child, nullptr);

    u64 after = 0x5678;
    ctx().write(buf, &after, 8);

    u64 child_sees = 0;
    ASSERT_FALSE(
        child->mem().read(buf.addr(), &child_sees, 8).has_value());
    EXPECT_EQ(child_sees, before);
    u64 parent_sees = 0;
    ASSERT_FALSE(
        proc().mem().read(buf.addr(), &parent_sees, 8).has_value());
    EXPECT_EQ(parent_sees, after);
}

TEST_P(AccessKernelBothAbis, MetricsAccumulatePerAbiTlbCounters)
{
    obs::Metrics mx;
    kern().setMetrics(&mx);
    GuestPtr buf = ctx().mmap(pageSize);
    u64 v = 9;
    ctx().write(buf, &v, 8);
    ctx().read(buf, &v, 8);
    ctx().read(buf, &v, 8);

    Abi abi = GetParam();
    EXPECT_GT(mx.tlbCounter(abi, TlbDataHit) +
                  mx.tlbCounter(abi, TlbDataMiss),
              0u);
    EXPECT_GT(mx.tlbCounter(abi, TlbDataHit), 0u);

    std::string json = mx.toJson();
    EXPECT_NE(json.find("cheri.metrics.v9"), std::string::npos);
    EXPECT_NE(json.find("\"tlb\""), std::string::npos);
    EXPECT_NE(json.find("data_hits"), std::string::npos);
    kern().setMetrics(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Abis, AccessKernelBothAbis,
                         ::testing::Values(Abi::Mips64, Abi::CheriAbi),
                         [](const auto &info) {
                             return info.param == Abi::CheriAbi
                                        ? "cheriabi"
                                        : "mips64";
                         });

} // namespace
} // namespace cheri
