# Empty compiler generated dependencies file for clc_ablation.
# This may be replaced when dependencies are built.
