file(REMOVE_RECURSE
  "CMakeFiles/revocation_bench.dir/revocation_bench.cc.o"
  "CMakeFiles/revocation_bench.dir/revocation_bench.cc.o.d"
  "revocation_bench"
  "revocation_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revocation_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
