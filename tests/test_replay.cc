/**
 * @file
 * Record-replay tests: a seeded fuzzer run — fault injection, forks,
 * open revocation epochs, multi-process scheduling — records its
 * nondeterministic inputs and replays bit-for-bit with zero
 * divergences and identical metrics JSON; a planted perturbation is
 * caught by the divergence oracle and attributed to the right
 * syscall; corrupt logs are rejected cleanly.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diff_fuzzer.h"
#include "check/replay.h"
#include "obs/metrics.h"

namespace cheri
{
namespace
{

using check::DiffFuzzer;
using check::FuzzOptions;
using check::FuzzReport;
using check::ReplaySession;

FuzzOptions
baseOptions()
{
    FuzzOptions opts;
    opts.seed = 11;
    opts.cases = 4;
    opts.opsPerCase = 32;
    opts.checkEvery = 1;
    // Fault injection is one of the two recorded input streams; the
    // generated cases themselves exercise fork (multi-process) and
    // Revoke ops (open incremental epochs).
    opts.inject = true;
    return opts;
}

/** Record @p opts, returning the serialized log. */
std::vector<u8>
recordRun(FuzzOptions opts, u64 *entriesOut = nullptr)
{
    ReplaySession rec(ReplaySession::Mode::Record);
    FuzzOptions run = opts;
    run.replay = &rec;
    DiffFuzzer fuzzer(run);
    FuzzReport rep = fuzzer.run();
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rec.divergenceCount(), 0u);
    EXPECT_GT(rec.entryCount(), 0u);
    if (entriesOut)
        *entriesOut = rec.entryCount();
    return rec.serialize(opts);
}

TEST(ReplayTest, InjectedRunReplaysBitForBit)
{
    u64 recorded = 0;
    std::vector<u8> log = recordRun(baseOptions(), &recorded);

    ReplaySession rp(ReplaySession::Mode::Replay);
    std::string err;
    ASSERT_TRUE(rp.load(log, &err)) << err;
    // The log header is self-contained: the recorded configuration
    // comes back without external arguments.
    FuzzOptions opts = rp.options();
    EXPECT_EQ(opts.seed, 11u);
    EXPECT_EQ(opts.cases, 4u);
    EXPECT_TRUE(opts.inject);

    opts.replay = &rp;
    DiffFuzzer fuzzer(opts);
    FuzzReport rep = fuzzer.run();
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rp.divergenceCount(), 0u) << rp.firstDivergence();
    EXPECT_EQ(rp.entryCount(), recorded);
}

TEST(ReplayTest, MultiProcScheduledRunReplaysBitForBit)
{
    FuzzOptions opts = baseOptions();
    opts.cases = 3;
    opts.multiProc = 3;
    std::vector<u8> log = recordRun(opts);

    ReplaySession rp(ReplaySession::Mode::Replay);
    std::string err;
    ASSERT_TRUE(rp.load(log, &err)) << err;
    FuzzOptions o2 = rp.options();
    EXPECT_EQ(o2.multiProc, 3u);
    o2.replay = &rp;
    DiffFuzzer fuzzer(o2);
    FuzzReport rep = fuzzer.run();
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rp.divergenceCount(), 0u) << rp.firstDivergence();
}

TEST(ReplayTest, MetricsJsonIdenticalAcrossReplay)
{
    FuzzOptions opts = baseOptions();
    opts.cases = 1;
    opts.keepMetricsJson = true;

    ReplaySession rec(ReplaySession::Mode::Record);
    FuzzOptions runOpts = opts;
    runOpts.replay = &rec;
    DiffFuzzer recorder(runOpts);
    check::CaseReport cr1 = recorder.runCase(0);
    EXPECT_FALSE(cr1.failed());
    ASSERT_FALSE(cr1.metricsJson.empty());
    EXPECT_NE(cr1.metricsJson.find("cheri.metrics.v9"),
              std::string::npos);
    std::vector<u8> log = rec.serialize(opts);

    ReplaySession rp(ReplaySession::Mode::Replay);
    std::string err;
    ASSERT_TRUE(rp.load(log, &err)) << err;
    FuzzOptions o2 = rp.options();
    o2.replay = &rp;
    o2.keepMetricsJson = true;
    DiffFuzzer replayer(o2);
    check::CaseReport cr2 = replayer.runCase(0);
    EXPECT_FALSE(cr2.failed());
    EXPECT_EQ(rp.divergenceCount(), 0u) << rp.firstDivergence();
    // Bit-for-bit: the full metrics export of both ABI runs agrees
    // between the recorded and the replayed timeline.
    EXPECT_EQ(cr1.metricsJson, cr2.metricsJson);
}

TEST(ReplayTest, PlantedDivergenceCaughtAndAttributed)
{
    FuzzOptions opts = baseOptions();
    opts.cases = 2;
    std::vector<u8> log = recordRun(opts);

    ReplaySession rp(ReplaySession::Mode::Replay);
    std::string err;
    ASSERT_TRUE(rp.load(log, &err)) << err;
    rp.plantAtQuiesce(7);
    FuzzOptions o2 = rp.options();
    o2.replay = &rp;
    DiffFuzzer fuzzer(o2);
    fuzzer.run();

    // Exactly the planted divergence — nothing cascades, because the
    // logged inputs (not the digests) drive the replayed timeline.
    ASSERT_EQ(rp.divergenceCount(), 1u);
    const check::ReplayDivergence &d = rp.divergences().front();
    EXPECT_EQ(d.field, "regHash");
    EXPECT_EQ(d.seq, 7u);
    EXPECT_FALSE(d.sysName.empty())
        << "divergence not attributed to a syscall";
    std::string first = rp.firstDivergence();
    EXPECT_NE(first.find("regHash"), std::string::npos);
    EXPECT_NE(first.find(d.sysName), std::string::npos);
}

TEST(ReplayTest, CorruptLogRejectedCleanly)
{
    FuzzOptions opts = baseOptions();
    opts.cases = 1;
    std::vector<u8> log = recordRun(opts);

    std::string err;
    ReplaySession bad1(ReplaySession::Mode::Replay);
    std::vector<u8> trunc(log.begin(), log.begin() + log.size() / 2);
    EXPECT_FALSE(bad1.load(trunc, &err));
    EXPECT_FALSE(err.empty());

    ReplaySession bad2(ReplaySession::Mode::Replay);
    std::vector<u8> magic = log;
    magic[0] ^= 0xff;
    EXPECT_FALSE(bad2.load(magic, &err));

    ReplaySession bad3(ReplaySession::Mode::Replay);
    EXPECT_FALSE(bad3.load({}, &err));

    // The pristine log still loads.
    ReplaySession good(ReplaySession::Mode::Replay);
    EXPECT_TRUE(good.load(log, &err)) << err;
}

TEST(ReplayTest, SessionsRecordedInMetrics)
{
    FuzzOptions opts = baseOptions();
    opts.cases = 1;

    obs::Metrics mx;
    ReplaySession rec(ReplaySession::Mode::Record);
    FuzzOptions runOpts = opts;
    runOpts.replay = &rec;
    DiffFuzzer recorder(runOpts);
    recorder.setMetrics(&mx);
    recorder.run();
    EXPECT_EQ(mx.snapshot().records, 1u);
    EXPECT_EQ(mx.snapshot().replays, 0u);
    EXPECT_GT(mx.snapshot().logEntries, 0u);

    obs::Metrics mx2;
    ReplaySession rp(ReplaySession::Mode::Replay);
    std::string err;
    ASSERT_TRUE(rp.load(rec.serialize(opts), &err)) << err;
    FuzzOptions o2 = rp.options();
    o2.replay = &rp;
    DiffFuzzer replayer(o2);
    replayer.setMetrics(&mx2);
    replayer.run();
    EXPECT_EQ(mx2.snapshot().replays, 1u);
    EXPECT_EQ(mx2.snapshot().replayDivergences, 0u);
}

} // namespace
} // namespace cheri
