# Empty dependencies file for cheri_libc.
# This may be replaced when dependencies are built.
