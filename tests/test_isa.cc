/**
 * @file
 * MiniCHERI ISA tests: encoding, assembly, interpretation, and the
 * capability semantics at instruction level — including the paper's
 * architectural headline that a NULL DDC makes every legacy load and
 * store trap in a pure-capability process.
 */

#include <gtest/gtest.h>

#include <random>

#include "isa/assembler.h"
#include "isa/interp.h"
#include "test_util.h"

namespace cheri::isa
{
namespace
{

using test::GuestSystem;

TEST(Insn, EncodeDecodeRoundTrip)
{
    for (Op op : {Op::Halt, Op::Li, Op::Clc, Op::Syscall, Op::CSeal}) {
        Insn i{op, 3, 17, 31, -12345};
        Insn back = Insn::decode(i.encode());
        EXPECT_EQ(back.op, op);
        EXPECT_EQ(back.rd, 3);
        EXPECT_EQ(back.rs, 17);
        EXPECT_EQ(back.rt, 31);
        EXPECT_EQ(back.imm, -12345);
    }
    // Large positive immediates survive too.
    Insn i{Op::Li, 1, 0, 0, 0x7FFFFFFF};
    EXPECT_EQ(Insn::decode(i.encode()).imm, 0x7FFFFFFF);
}

TEST(Assembler, LabelsResolveForwardAndBack)
{
    Assembler a;
    a.li(1, 3)
        .label("loop")
        .addi(2, 2, 1)
        .addi(1, 1, -1)
        .bne(1, 0, "loop")
        .j("end")
        .li(2, 999) // skipped
        .label("end")
        .halt();
    auto image = a.assemble();
    ASSERT_EQ(image.size(), 7u);
    // bne at index 3 targets index 1: offset = 1 - 3 - 1 = -3.
    EXPECT_EQ(Insn::decode(image[3]).imm, -3);
    // j at index 4 targets index 6: offset = 6 - 4 - 1 = 1.
    EXPECT_EQ(Insn::decode(image[4]).imm, 1);
}

TEST(Assembler, UndefinedLabelThrows)
{
    Assembler a;
    a.j("nowhere").halt();
    EXPECT_THROW(a.assemble(), std::runtime_error);
}

/** Fixture: a process with an executable scratch text segment. */
class IsaRun : public ::testing::TestWithParam<Abi>
{
  protected:
    IsaRun() : sys(GetParam())
    {
        // Map a fresh RWX region for test code (the main text mapping
        // is read-only to the process).
        code_va = sys.proc->as().map(0, pageSize,
                                     PROT_READ | PROT_WRITE | PROT_EXEC,
                                     MappingKind::Text, false, false,
                                     "testcode");
        data_va = sys.proc->as().map(0, pageSize,
                                     PROT_READ | PROT_WRITE,
                                     MappingKind::Data);
    }

    /** Install @p a at the code region and point PCC at it. */
    Interpreter
    load(const Assembler &a)
    {
        a.writeTo(sys.proc->as(), code_va);
        Interpreter interp(*sys.proc);
        if (GetParam() == Abi::CheriAbi) {
            Capability pcc =
                sys.proc->as()
                    .capForRange(code_va, pageSize,
                                 PROT_READ | PROT_EXEC, false)
                    .setAddress(code_va);
            interp.setEntry(pcc);
        } else {
            interp.setEntry(Capability::fromAddress(code_va));
        }
        return interp;
    }

    /** A data capability over the scratch data page. */
    Capability
    dataCap()
    {
        return sys.proc->as()
            .capForRange(data_va, pageSize, PROT_READ | PROT_WRITE,
                         false)
            .setAddress(data_va);
    }

    GuestSystem sys;
    u64 code_va = 0;
    u64 data_va = 0;
};

TEST_P(IsaRun, ArithmeticLoop)
{
    // sum = 1 + 2 + ... + 100
    Assembler a;
    a.li(1, 100) // counter
        .li(2, 0) // sum
        .label("loop")
        .add(2, 2, 1)
        .addi(1, 1, -1)
        .bne(1, 0, "loop")
        .halt();
    Interpreter interp = load(a);
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Halted);
    EXPECT_EQ(interp.regs().x[2], 5050u);
    EXPECT_EQ(interp.retired(), 2 + 3 * 100 + 1);
}

TEST_P(IsaRun, CapabilityDerivationAndAccess)
{
    Assembler a;
    // c2 = bounded 16-byte view at data+32; store/load through it.
    a.li(3, 32)
        .cincoffset(2, 1, 3) // c2 = c1 + 32
        .csetboundsimm(2, 2, 16)
        .li(4, 0xABCD)
        .csd(4, 2, 0)
        .cld(5, 2, 0)
        .cgetlen(6, 2)
        .cgettag(7, 2)
        .halt();
    Interpreter interp = load(a);
    interp.regs().c[1] = dataCap();
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Halted);
    EXPECT_EQ(interp.regs().x[5], 0xABCDu);
    EXPECT_EQ(interp.regs().x[6], 16u);
    EXPECT_EQ(interp.regs().x[7], 1u);
    // The stored value is visible to the host side too.
    GuestContext ctx(sys.kern, *sys.proc);
    EXPECT_EQ(ctx.load<u64>(GuestPtr(dataCap()), 32), 0xABCDu);
}

TEST_P(IsaRun, BoundedCapabilityFaultsOutOfBounds)
{
    Assembler a;
    a.csetboundsimm(2, 1, 16)
        .cld(3, 2, 16) // one past the end
        .halt();
    Interpreter interp = load(a);
    interp.regs().c[1] = dataCap();
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Fault);
    EXPECT_EQ(r.fault, CapFault::LengthViolation);
    EXPECT_EQ(r.faultPc, code_va + insnSize)
        << "the fault reports the precise PC";
}

TEST_P(IsaRun, MonotonicityFaultsAtCSetBounds)
{
    Assembler a;
    a.csetboundsimm(2, 1, 16)
        .csetboundsimm(3, 2, 64) // widen: must fault
        .halt();
    Interpreter interp = load(a);
    interp.regs().c[1] = dataCap();
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Fault);
    EXPECT_EQ(r.fault, CapFault::LengthViolation);
}

TEST_P(IsaRun, DataOverwriteKillsStoredCapability)
{
    Assembler a;
    a.csc(1, 1, 0)  // store c1 at [c1]
        .li(2, 0x41)
        .csb(2, 1, 3) // scribble a byte over it
        .clc(3, 1, 0) // load it back
        .cgettag(4, 3)
        .halt();
    Interpreter interp = load(a);
    interp.regs().c[1] = dataCap();
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Halted);
    EXPECT_EQ(interp.regs().x[4], 0u) << "tag must not survive the store";
}

TEST_P(IsaRun, SealUnsealRoundTrip)
{
    Assembler a;
    a.cseal(2, 1, 5)   // seal data cap with otype authority in c5
        .cgettag(3, 2)
        .cunseal(4, 2, 5)
        .cld(6, 4, 0)  // usable again after unseal
        .halt();
    Interpreter interp = load(a);
    interp.regs().c[1] = dataCap();
    Capability sealer =
        Capability::root().setAddress(77).setBounds(1).value();
    interp.regs().c[5] = sealer;
    GuestContext ctx(sys.kern, *sys.proc);
    ctx.store<u64>(GuestPtr(dataCap()), 0, 99);
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Halted);
    EXPECT_EQ(interp.regs().x[3], 1u);
    EXPECT_EQ(interp.regs().x[6], 99u);
}

TEST_P(IsaRun, SealedCapabilityFaultsOnUse)
{
    Assembler a;
    a.cseal(2, 1, 5).cld(3, 2, 0).halt();
    Interpreter interp = load(a);
    interp.regs().c[1] = dataCap();
    interp.regs().c[5] =
        Capability::root().setAddress(12).setBounds(1).value();
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Fault);
    EXPECT_EQ(r.fault, CapFault::SealViolation);
}

TEST_P(IsaRun, SyscallHookFires)
{
    Assembler a;
    a.li(1, 7).syscall(42).halt();
    Interpreter interp = load(a);
    u64 seen = 0;
    interp.setSyscallHook([&](Interpreter &ii, u64 code) {
        seen = code;
        ii.regs().x[2] = ii.regs().x[1] * 2;
    });
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Halted);
    EXPECT_EQ(seen, 42u);
    EXPECT_EQ(interp.regs().x[2], 14u);
}

TEST_P(IsaRun, DefaultSyscallHookDispatches)
{
    // The stock hook routes Op::Syscall through Kernel::dispatch and
    // the numbered ABI's register convention: error flag clear, result
    // in the return-value register.
    Assembler a;
    a.syscall(static_cast<s64>(SysNum::Getpid)).halt();
    Interpreter interp = load(a);
    installDefaultSyscallHook(interp, sys.kern);
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Halted);
    EXPECT_EQ(interp.regs().x[regSysErr], 0u);
    EXPECT_EQ(interp.regs().x[regRetVal], sys.proc->pid());
}

TEST_P(IsaRun, StepLimitStopsRunaway)
{
    Assembler a;
    a.label("spin").j("spin");
    Interpreter interp = load(a);
    InterpResult r = interp.run(1000);
    EXPECT_EQ(r.status, InterpResult::Status::StepLimit);
    EXPECT_EQ(interp.retired(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Abis, IsaRun,
                         ::testing::Values(Abi::Mips64, Abi::CheriAbi),
                         [](const auto &info) {
                             return info.param == Abi::CheriAbi
                                        ? "cheriabi"
                                        : "mips64";
                         });

// --- ABI-specific ISA behaviour ---------------------------------------

TEST(IsaAbi, LegacyLoadsTrapUnderNullDdc)
{
    // The architectural core of CheriABI: with DDC = NULL, legacy
    // integer loads/stores cannot execute at all.
    GuestSystem sys(Abi::CheriAbi);
    u64 code = sys.proc->as().map(0, pageSize,
                                  PROT_READ | PROT_WRITE | PROT_EXEC,
                                  MappingKind::Text);
    u64 data = sys.proc->as().map(0, pageSize, PROT_READ | PROT_WRITE,
                                  MappingKind::Data);
    Assembler a;
    a.li(1, static_cast<s64>(data)).ld(2, 1, 0).halt();
    a.writeTo(sys.proc->as(), code);
    Interpreter interp(*sys.proc);
    interp.setEntry(sys.proc->as()
                        .capForRange(code, pageSize,
                                     PROT_READ | PROT_EXEC, false)
                        .setAddress(code));
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Fault);
    EXPECT_EQ(r.fault, CapFault::TagViolation)
        << "NULL DDC prohibits legacy loads";

    // The same program runs fine under mips64, where DDC spans the
    // address space.
    GuestSystem legacy(Abi::Mips64);
    u64 code2 = legacy.proc->as().map(0, pageSize,
                                      PROT_READ | PROT_WRITE | PROT_EXEC,
                                      MappingKind::Text);
    u64 data2 = legacy.proc->as().map(0, pageSize,
                                      PROT_READ | PROT_WRITE,
                                      MappingKind::Data);
    Assembler b;
    b.li(1, static_cast<s64>(data2)).ld(2, 1, 0).halt();
    b.writeTo(legacy.proc->as(), code2);
    Interpreter li(*legacy.proc);
    li.setEntry(Capability::fromAddress(code2));
    EXPECT_EQ(li.run().status, InterpResult::Status::Halted);
}

TEST(IsaAbi, PccBoundsConfineControlFlow)
{
    GuestSystem sys(Abi::CheriAbi);
    u64 code = sys.proc->as().map(0, pageSize,
                                  PROT_READ | PROT_WRITE | PROT_EXEC,
                                  MappingKind::Text);
    // Jump past the end of the PCC's bounds.
    Assembler a;
    a.j("far");
    for (int i = 0; i < 6; ++i)
        a.nop();
    a.label("far").halt();
    a.writeTo(sys.proc->as(), code);
    Interpreter interp(*sys.proc);
    // PCC bounded to only the first 4 instructions.
    Capability narrow = sys.proc->as()
                            .capForRange(code, pageSize,
                                         PROT_READ | PROT_EXEC, false)
                            .setAddress(code)
                            .setBounds(4 * insnSize)
                            .value();
    interp.setEntry(narrow);
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Fault);
    EXPECT_EQ(r.fault, CapFault::LengthViolation)
        << "fetch outside PCC bounds must fault";
}

TEST(IsaAbi, CjrRequiresExecutableCapability)
{
    GuestSystem sys(Abi::CheriAbi);
    u64 code = sys.proc->as().map(0, pageSize,
                                  PROT_READ | PROT_WRITE | PROT_EXEC,
                                  MappingKind::Text);
    u64 data = sys.proc->as().map(0, pageSize, PROT_READ | PROT_WRITE,
                                  MappingKind::Data);
    Assembler a;
    a.cjr(1).halt();
    a.writeTo(sys.proc->as(), code);
    Interpreter interp(*sys.proc);
    interp.setEntry(sys.proc->as()
                        .capForRange(code, pageSize,
                                     PROT_READ | PROT_EXEC, false)
                        .setAddress(code));
    // c1 is a *data* capability: jumping through it must fault.
    interp.regs().c[1] =
        sys.proc->as()
            .capForRange(data, pageSize, PROT_READ | PROT_WRITE, false)
            .setAddress(data);
    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Fault);
    EXPECT_EQ(r.fault, CapFault::PermitExecuteViolation);
}

TEST(IsaAbi, InterpreterChargesCostModel)
{
    GuestSystem sys(Abi::CheriAbi);
    u64 code = sys.proc->as().map(0, pageSize,
                                  PROT_READ | PROT_WRITE | PROT_EXEC,
                                  MappingKind::Text);
    Assembler a;
    a.li(1, 1000).label("loop").addi(1, 1, -1).bne(1, 0, "loop").halt();
    a.writeTo(sys.proc->as(), code);
    Interpreter interp(*sys.proc);
    interp.setEntry(sys.proc->as()
                        .capForRange(code, pageSize,
                                     PROT_READ | PROT_EXEC, false)
                        .setAddress(code));
    sys.proc->cost().reset();
    ASSERT_EQ(interp.run().status, InterpResult::Status::Halted);
    EXPECT_GE(sys.proc->cost().instructions(), 2001u);
}

} // namespace
} // namespace cheri::isa
// (appended) -----------------------------------------------------------
// Fuzzing: random instruction streams must never escape the sandbox —
// every run ends in Halted/Fault/StepLimit, the host never crashes, and
// all capability registers remain dominated by the process root.

namespace cheri::isa
{
namespace
{

class IsaFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(IsaFuzz, RandomProgramsStayContained)
{
    std::mt19937_64 rng(GetParam());
    test::GuestSystem sys(Abi::CheriAbi);
    u64 code = sys.proc->as().map(0, pageSize,
                                  PROT_READ | PROT_WRITE | PROT_EXEC,
                                  MappingKind::Text);
    u64 data = sys.proc->as().map(0, pageSize, PROT_READ | PROT_WRITE,
                                  MappingKind::Data);
    // Fill the page with random instruction words (random opcodes,
    // registers, immediates — most will be wild).
    std::vector<u64> words(pageSize / insnSize);
    for (u64 &w : words) {
        Insn i;
        i.op = static_cast<Op>(rng() % (static_cast<u64>(Op::Syscall) + 1));
        i.rd = static_cast<u8>(rng() % numCapRegs);
        i.rs = static_cast<u8>(rng() % numCapRegs);
        i.rt = static_cast<u8>(rng() % numCapRegs);
        i.imm = static_cast<s64>(static_cast<std::int32_t>(rng()));
        w = i.encode();
    }
    ASSERT_FALSE(
        sys.proc->as().writeBytes(code, words.data(), pageSize)
            .has_value());

    Interpreter interp(*sys.proc);
    interp.setEntry(sys.proc->as()
                        .capForRange(code, pageSize,
                                     PROT_READ | PROT_EXEC, false)
                        .setAddress(code));
    interp.regs().c[1] =
        sys.proc->as()
            .capForRange(data, pageSize, PROT_READ | PROT_WRITE, false)
            .setAddress(data);
    InterpResult r = interp.run(20'000);
    EXPECT_TRUE(r.status == InterpResult::Status::Halted ||
                r.status == InterpResult::Status::Fault ||
                r.status == InterpResult::Status::StepLimit);
    // Whatever happened, no register escaped the principal's root.
    const Capability &root = sys.proc->as().rederivationRoot();
    for (const Capability &c : interp.regs().c) {
        if (!c.tag())
            continue;
        EXPECT_GE(c.base(), root.base());
        EXPECT_LE(c.top(), root.top());
        EXPECT_EQ(c.perms() & ~root.perms() & permsHardware, 0u);
    }
    // And memory containment held throughout.
    EXPECT_EQ(sys.proc->as().verifyCapContainment(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaFuzz, ::testing::Range(0u, 24u));

} // namespace
} // namespace cheri::isa
