# Empty dependencies file for compartments.
# This may be replaced when dependencies are built.
