/**
 * @file
 * Capability derivation tracing.
 *
 * The paper reconstructs a process's *abstract capability* from an
 * ISA-level trace of capability manipulations (section 5.5, Figure 5).
 * Our equivalent instruments every site where the system mints or
 * narrows a capability — kernel startup, execve, mmap/syscall returns,
 * run-time-linker relocations, stack references, malloc, TLS — and
 * reports each derived capability together with its source.
 */

#ifndef CHERI_TRACE_TRACE_H
#define CHERI_TRACE_TRACE_H

#include <cstdint>
#include <string_view>

#include "cap/capability.h"

namespace cheri
{

/** Where a capability visible in userspace came from (Figure 5 legend). */
enum class DeriveSource : std::uint8_t
{
    /** Bounded reference to an automatic (stack) object. */
    Stack,
    /** Heap allocation returned by malloc/realloc. */
    Malloc,
    /** Installed by execve: argv/envv/auxv, initial registers, stack. */
    Exec,
    /** Global-variable and function capabilities minted by the RTLD. */
    GlobRelocs,
    /** Returned by a system call (mmap, shmat, kevent...). */
    Syscall,
    /** Kernel-internal capabilities used to access user memory. */
    Kern,
    /** Thread-local-storage block capabilities. */
    Tls,
    /** Transient values later narrowed further. */
    Temp,
};

constexpr std::string_view
deriveSourceName(DeriveSource s)
{
    switch (s) {
      case DeriveSource::Stack: return "stack";
      case DeriveSource::Malloc: return "malloc";
      case DeriveSource::Exec: return "exec";
      case DeriveSource::GlobRelocs: return "glob relocs";
      case DeriveSource::Syscall: return "syscall";
      case DeriveSource::Kern: return "kern";
      case DeriveSource::Tls: return "tls";
      case DeriveSource::Temp: return "temp";
    }
    return "?";
}

/** Number of DeriveSource values. */
constexpr unsigned numDeriveSources = 8;

/**
 * Sink for capability derivation events.  Systems code holds a nullable
 * pointer to one of these; tracing costs nothing when disabled.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** A capability was minted or narrowed and became visible. */
    virtual void derive(DeriveSource source, const Capability &cap) = 0;
};

} // namespace cheri

#endif // CHERI_TRACE_TRACE_H
