/**
 * @file
 * User pointers as seen at the system-call boundary.
 *
 * Under CheriABI every pointer argument arrives in a capability register
 * — tagged, bounded, and carrying permissions — and the kernel uses
 * *that* capability when dereferencing (paper Figure 3), never its own
 * elevated authority.  Under the legacy mips64 ABI the same argument is
 * a bare 64-bit integer, and the kernel must construct a capability from
 * the process's address-space authority before any access.
 *
 * UserPtr captures both cases so every syscall has a single signature.
 */

#ifndef CHERI_OS_USER_PTR_H
#define CHERI_OS_USER_PTR_H

#include "cap/capability.h"

namespace cheri
{

struct UserPtr
{
    Capability cap;
    /** True when the caller's ABI delivered a capability register. */
    bool isCap = false;

    static UserPtr
    fromCap(const Capability &c)
    {
        return {c, true};
    }

    static UserPtr
    fromAddr(u64 addr)
    {
        return {Capability::fromAddress(addr), false};
    }

    static UserPtr null() { return {}; }

    u64 addr() const { return cap.address(); }
    bool isNull() const { return !cap.tag() && cap.address() == 0; }

    /** Pointer arithmetic preserving the carrier capability. */
    UserPtr
    offsetBy(s64 delta) const
    {
        return {cap.incAddress(delta), isCap};
    }
};

} // namespace cheri

#endif // CHERI_OS_USER_PTR_H
