# Empty dependencies file for test_coredump.
# This may be replaced when dependencies are built.
