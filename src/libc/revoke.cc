#include "libc/revoke.h"

namespace cheri
{

RevokingMalloc::RevokingMalloc(GuestContext &ctx, u64 quarantine_budget)
    : ctx(ctx), heap(ctx), budget(quarantine_budget)
{
}

GuestPtr
RevokingMalloc::malloc(u64 size)
{
    return heap.malloc(size);
}

bool
RevokingMalloc::free(const GuestPtr &p)
{
    if (p.isNull())
        return true;
    u64 size = heap.allocSize(p);
    if (size == 0)
        return false; // not a live allocation start
    // Quarantine: the storage stays owned (and poisonous) until the
    // next sweep proves no capability to it survives.
    u64 span = ctx.isCheri() ? p.cap.length() : size;
    quarantine.push_back({p.addr(), span});
    quarantineBytes += span;
    if (quarantineBytes > budget)
        forceSweep();
    return true;
}

u64
RevokingMalloc::forceSweep()
{
    if (quarantine.empty())
        return 0;
    ++_sweeps;
    // One pass over the address space for the whole quarantine set —
    // the property that makes quarantine amortization work.
    std::vector<std::pair<u64, u64>> ranges;
    ranges.reserve(quarantine.size());
    for (const Range &r : quarantine)
        ranges.emplace_back(r.base, r.base + r.size);
    SysResult res = ctx.kernel().sysRevokeSet(ctx.proc(), ranges);
    u64 revoked = res.failed() ? 0 : res.value;
    _tagsRevoked += revoked;
    // Only now is the storage safe to reuse.
    for (const Range &r : quarantine)
        heap.free(GuestPtr(Capability::fromAddress(r.base)));
    quarantine.clear();
    quarantineBytes = 0;
    return revoked;
}

} // namespace cheri
