#include "os/panic.h"

#include "obs/json.h"

namespace cheri::panic
{

std::string_view
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Syscall: return "syscall";
      case EventKind::SchedBlock: return "sched-block";
      case EventKind::SchedWake: return "sched-wake";
      case EventKind::WakeEdge: return "wake-edge";
      case EventKind::FaultDecision: return "fault-decision";
      case EventKind::Watchdog: return "watchdog";
      case EventKind::MachineCheck: return "machine-check";
      case EventKind::Panic: return "panic";
    }
    return "unknown";
}

std::string
ringToJson(const FlightRecorder &fr)
{
    obs::JsonWriter w;
    w.beginArray();
    for (const Event &e : fr.entries()) {
        w.beginObject();
        w.key("seq").value(e.seq);
        w.key("kind").value(eventKindName(e.kind));
        w.key("a").value(e.a);
        w.key("b").value(e.b);
        w.key("c").value(e.c);
        w.endObject();
    }
    w.endArray();
    return w.str();
}

} // namespace cheri::panic
