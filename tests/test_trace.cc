/**
 * @file
 * Trace-analysis tests: abstract-capability reconstruction and the
 * granularity CDF machinery behind Figure 5.
 */

#include <gtest/gtest.h>

#include "libc/malloc.h"
#include "libc/tls.h"
#include "test_util.h"
#include "trace/analysis.h"

namespace cheri
{
namespace
{

TEST(TraceAnalysis, CdfCountsBySizeAndSource)
{
    std::vector<CapTraceRecorder::Event> ev = {
        {DeriveSource::Stack, 16, 0},
        {DeriveSource::Stack, 64, 0},
        {DeriveSource::Malloc, 128, 0},
        {DeriveSource::Malloc, 1 << 20, 0},
        {DeriveSource::Kern, 1 << 24, 0},
    };
    GranularityCdf cdf(ev);
    EXPECT_EQ(cdf.totalAll(), 5u);
    EXPECT_EQ(cdf.total(DeriveSource::Stack), 2u);
    EXPECT_EQ(cdf.cumulative(DeriveSource::Stack, 4), 1u);  // <=16
    EXPECT_EQ(cdf.cumulative(DeriveSource::Stack, 6), 2u);  // <=64
    EXPECT_EQ(cdf.cumulative(DeriveSource::Malloc, 10), 1u);
    EXPECT_EQ(cdf.cumulativeAll(26), 5u);
    EXPECT_EQ(cdf.maxLength(DeriveSource::Kern), u64{1} << 24);
    EXPECT_EQ(cdf.maxLengthAll(), u64{1} << 24);
    EXPECT_DOUBLE_EQ(cdf.fractionBelow(1024), 3.0 / 5.0);
    std::string table = cdf.formatTable();
    EXPECT_NE(table.find("stack"), std::string::npos);
    EXPECT_NE(table.find("malloc"), std::string::npos);
}

TEST(TraceAnalysis, RecorderCapturesSystemActivity)
{
    CapTraceRecorder rec;
    KernelConfig cfg;
    Kernel kern(cfg);
    kern.setTrace(&rec);
    SelfObject prog = test::trivialProgram();
    Process *proc = kern.spawn(Abi::CheriAbi, "traced");
    ASSERT_EQ(kern.execve(*proc, prog, {"traced", "x"}, {"E=1"}), E_OK);
    GuestContext ctx(kern, *proc);
    GuestMalloc heap(ctx);
    GuestTls tls(ctx);
    // Generate activity from each source.
    {
        StackFrame frame(ctx, 256, 1);
        frame.alloc(32);
    }
    heap.malloc(100);
    tls.moduleBlock(1, 64);
    GuestPtr mapped = ctx.mmap(pageSize);
    // kevent stores a user capability in a kernel structure: the Kern
    // derivation source.
    int fds[2];
    ASSERT_EQ(kern.sysPipe(*proc, fds).error, E_OK);
    KEvent reg;
    reg.ident = fds[0];
    reg.filter = KFilter::Read;
    reg.udata = mapped.cap;
    ASSERT_EQ(kern.sysKevent(*proc, {reg}, nullptr, 0).error, E_OK);
    kern.setTrace(nullptr);

    GranularityCdf cdf(rec.all());
    EXPECT_GT(cdf.total(DeriveSource::Exec), 0u);
    EXPECT_GT(cdf.total(DeriveSource::GlobRelocs), 0u);
    EXPECT_GT(cdf.total(DeriveSource::Stack), 0u);
    EXPECT_GT(cdf.total(DeriveSource::Malloc), 0u);
    EXPECT_GT(cdf.total(DeriveSource::Tls), 0u);
    EXPECT_GT(cdf.total(DeriveSource::Syscall), 0u);
    EXPECT_GT(cdf.total(DeriveSource::Kern), 0u);
    // Stack and malloc caps are tiny; only kernel-minted ones are big.
    EXPECT_LE(cdf.maxLength(DeriveSource::Stack), u64{1} << 12);
    EXPECT_LE(cdf.maxLength(DeriveSource::Malloc), u64{1} << 12);
    // The kernel-held capability is exactly the (page-sized) user one.
    EXPECT_EQ(cdf.maxLength(DeriveSource::Kern), pageSize);
    // Broad capabilities come only from exec-time mappings.
    EXPECT_GE(cdf.maxLength(DeriveSource::Exec), u64{1} << 20);
}

TEST(TraceAnalysis, GlobRelocCapsBoundedToSymbols)
{
    CapTraceRecorder rec;
    Kernel kern;
    kern.setTrace(&rec);
    SelfObject prog = test::trivialProgram();
    Process *proc = kern.spawn(Abi::CheriAbi, "traced");
    ASSERT_EQ(kern.execve(*proc, prog, {"traced"}, {}), E_OK);
    kern.setTrace(nullptr);
    // global_counter (8 bytes) and global_buf (32 bytes) both get
    // per-variable bounds; the function reloc spans the text object.
    u64 small = 0, object_wide = 0;
    for (const auto &e : rec.all()) {
        if (e.source != DeriveSource::GlobRelocs)
            continue;
        if (e.length <= 32)
            ++small;
        else
            ++object_wide;
    }
    EXPECT_EQ(small, 2u);
    EXPECT_EQ(object_wide, 1u);
}

TEST(TraceAnalysis, EmptyCdfIsSane)
{
    GranularityCdf cdf({});
    EXPECT_EQ(cdf.totalAll(), 0u);
    EXPECT_EQ(cdf.maxLengthAll(), 0u);
    EXPECT_DOUBLE_EQ(cdf.fractionBelow(1024), 0.0);
}

} // namespace
} // namespace cheri
