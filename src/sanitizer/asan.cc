#include "sanitizer/asan.h"

namespace cheri
{

namespace
{

constexpr u64 arenaBytes = 8 * 1024 * 1024;

} // namespace

AsanRuntime::AsanRuntime(GuestContext &ctx) : ctx(ctx) {}

u64
AsanRuntime::redzoneFor(u64 size)
{
    // ASan scales redzones with allocation size, within fixed bounds.
    if (size <= 64)
        return 16;
    if (size <= 512)
        return 64;
    if (size <= 4096)
        return 128;
    return 256;
}

void
AsanRuntime::unpoison(u64 start, u64 end)
{
    if (start >= end)
        return;
    auto it = poisoned.lower_bound(start);
    if (it != poisoned.begin())
        --it;
    while (it != poisoned.end() && it->first < end) {
        u64 s = it->first;
        PoisonRange r = it->second;
        if (r.end <= start) {
            ++it;
            continue;
        }
        it = poisoned.erase(it);
        if (s < start)
            poisoned[s] = {start, r.kind};
        if (r.end > end)
            it = poisoned.insert({end, {r.end, r.kind}}).first;
    }
}

void
AsanRuntime::poison(u64 start, u64 end, AsanReport::Kind kind)
{
    if (start >= end)
        return;
    unpoison(start, end); // keep intervals disjoint
    poisoned[start] = {end, kind};
}

void
AsanRuntime::ensureArena()
{
    if (!arena.isNull() || arenaEnd != 0)
        return;
    arena = ctx.mmap(arenaBytes);
    arenaBump = arena.addr();
    arenaEnd = arena.addr() + arenaBytes;
    // Everything in the heap arena is poisoned until allocated.
    poison(arenaBump, arenaEnd, AsanReport::Kind::HeapBufferOverflow);
}

GuestPtr
AsanRuntime::malloc(u64 size)
{
    ensureArena();
    u64 rz = redzoneFor(size);
    u64 need = rz + ((size + 15) & ~u64{15}) + rz;
    if (arenaBump + need > arenaEnd)
        return GuestPtr();
    u64 payload = arenaBump + rz;
    arenaBump += need;
    unpoison(payload, payload + size);
    liveSizes[payload] = size;
    overheadBytes += need - size;
    // Poisoning/bookkeeping work: shadow bytes written.
    ctx.cost().alu(16 + need / 8);
    // ASan hands out an *unbounded* pointer: protection comes from the
    // shadow, not the pointer.
    if (ctx.isCheri())
        return GuestPtr(arena.cap.setAddress(payload));
    return GuestPtr(Capability::fromAddress(payload));
}

void
AsanRuntime::free(const GuestPtr &p)
{
    auto it = liveSizes.find(p.addr());
    if (it == liveSizes.end())
        return;
    u64 size = it->second;
    // Use-after-free protection: poison and quarantine.  The arena is
    // bump-allocated, so quarantined storage is never reused — a
    // strict over-approximation of ASan's bounded quarantine.
    poison(p.addr(), p.addr() + size, AsanReport::Kind::UseAfterFree);
    quarantine.emplace_back(p.addr(), size);
    overheadBytes += size;
    liveSizes.erase(it);
    ctx.cost().alu(16 + size / 8);
}

GuestPtr
AsanRuntime::stackAlloc(StackFrame &frame, u64 size)
{
    u64 rz = 32; // fixed stack redzones
    GuestPtr raw = frame.alloc(rz + size + rz);
    u64 payload = raw.addr() + rz;
    poison(raw.addr(), payload, AsanReport::Kind::StackBufferOverflow);
    // The rest of the frame region — other slots' redzones plus the
    // not-yet-used stack below the frame — is poisoned shadow too, so
    // far overflows from a stack buffer land in red (stack poisoning).
    poison(payload + size, payload + size + rz + 8192,
           AsanReport::Kind::StackBufferOverflow);
    unpoison(payload, payload + size);
    overheadBytes += 2 * rz;
    ctx.cost().alu(8);
    if (ctx.isCheri())
        return GuestPtr(raw.cap.setAddress(payload));
    return GuestPtr(Capability::fromAddress(payload));
}

void
AsanRuntime::registerGlobal(const GuestPtr &p, u64 size)
{
    u64 rz = redzoneFor(size);
    poison(p.addr() + size, p.addr() + size + rz,
           AsanReport::Kind::GlobalBufferOverflow);
    if (p.addr() >= rz) {
        poison(p.addr() - rz, p.addr(),
               AsanReport::Kind::GlobalBufferOverflow);
    }
    overheadBytes += 2 * rz;
}

void
AsanRuntime::checkAccess(u64 addr, u64 len) const
{
    if (len == 0)
        return;
    auto it = poisoned.upper_bound(addr + len - 1);
    if (it == poisoned.begin())
        return;
    --it;
    if (it->second.end > addr)
        throw AsanReport(it->second.kind, addr);
}

} // namespace cheri
