/**
 * @file
 * ctest wrapper around the differential ABI fuzzer and its invariant
 * oracle (src/check).  The fixed seed corpus keeps a small slice of the
 * fuzzer's search space in every CI run; CHERI_TEST_FUZZ_SEEDS widens
 * or pins it without a rebuild.  The oracle tests prove the checker is
 * not vacuous: a deliberately planted slot-refcount corruption and a
 * hand-built slot leak must both be reported, with seed-reproducible
 * output for the fuzzer-driven one.
 */

#include <gtest/gtest.h>

#include "check/diff_fuzzer.h"
#include "check/invariants.h"
#include "obs/metrics.h"
#include "rng_util.h"
#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

// --- differential corpus -------------------------------------------------

class DiffFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DiffFuzz, SeededCorpusAgreesAcrossAbisWithCleanOracle)
{
    CHERI_TRACE_SEED(GetParam(), "CHERI_TEST_FUZZ_SEEDS");
    check::FuzzOptions opts;
    opts.seed = GetParam();
    opts.cases = 6;
    opts.opsPerCase = 24;
    opts.checkEvery = 1;
    obs::Metrics m;
    check::DiffFuzzer fuzzer(opts);
    fuzzer.setMetrics(&m);
    check::FuzzReport rep = fuzzer.run();
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.casesRun, opts.cases);
    EXPECT_GT(rep.syscalls, 0u);
    EXPECT_GT(rep.oracleRuns, 0u) << "the oracle must actually run";
    EXPECT_EQ(m.check().fuzzCases, opts.cases);
    EXPECT_EQ(m.check().fuzzDivergences, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DiffFuzz,
    ::testing::ValuesIn(test::seedsFromEnv("CHERI_TEST_FUZZ_SEEDS", 3)));

// Fault-injected runs skip the differential comparison by design (the
// two ABIs hit periodic schedules at different points), but the kernel
// invariants must hold on every injected path.
TEST(DiffFuzzInject, InjectedRunsKeepInvariantsClean)
{
    check::FuzzOptions opts;
    opts.seed = 1;
    opts.cases = 6;
    opts.opsPerCase = 24;
    opts.checkEvery = 1;
    opts.inject = true;
    check::FuzzReport rep = check::DiffFuzzer(opts).run();
    EXPECT_EQ(rep.violationCount, 0u) << rep.summary();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

// --- the oracle is not vacuous -------------------------------------------

TEST(DiffFuzzOracle, PlantedSlotRefcountBugIsCaughtAndReproducible)
{
    check::FuzzOptions opts;
    opts.seed = 1;
    opts.cases = 3;
    opts.opsPerCase = 24;
    opts.checkEvery = 1;
    opts.plantSlotBug = true;
    check::FuzzReport rep = check::DiffFuzzer(opts).run();
    EXPECT_FALSE(rep.ok());
    EXPECT_GT(rep.violationCount, 0u);
    bool slot_rule = false;
    for (const check::CaseReport &c : rep.failures)
        for (const check::Violation &v : c.violations)
            slot_rule |= v.rule == "slot-refcount";
    EXPECT_TRUE(slot_rule)
        << "the corruption must be attributed to the slot-refcount "
           "rule:\n"
        << rep.summary();
    EXPECT_NE(rep.summary().find("reproduce: abi_fuzz --seed 1"),
              std::string::npos)
        << "failures must carry a reproduction command";
}

TEST(DiffFuzzOracle, CleanBootedSystemPassesAndRecordsTelemetry)
{
    GuestSystem sys(Abi::CheriAbi);
    obs::Metrics m;
    sys.kern.setMetrics(&m);
    check::Report rep = check::Invariants::check(sys.kern);
    EXPECT_TRUE(rep.ok()) << rep.toString();
    EXPECT_GE(rep.processes, 1u);
    EXPECT_GT(rep.capsChecked, 0u);
    EXPECT_GT(rep.pagesChecked, 0u);
    EXPECT_EQ(m.check().oracleRuns, 1u);
    EXPECT_EQ(m.check().oracleViolations, 0u);
    std::string json = m.toJson();
    EXPECT_NE(json.find("cheri.metrics.v9"), std::string::npos);
    EXPECT_NE(json.find("\"oracle_runs\":1"), std::string::npos);
    sys.kern.setMetrics(nullptr);
}

TEST(DiffFuzzOracle, HandPlantedExtraSlotRefIsReported)
{
    GuestSystem sys(Abi::CheriAbi);
    GuestContext &ctx = *sys.ctx;
    GuestPtr buf = ctx.mmap(pageSize);
    ctx.store<u64>(buf, 0, 1);
    ASSERT_TRUE(
        sys.proc->as().swapOutPage(buf.addr() & ~(pageSize - 1)));
    // Corrupt the accounting below the syscall layer: one extra device
    // reference no PTE will ever drop.
    u64 slot = ~u64{0};
    sys.kern.swapDevice().forEachSlot(
        [&](u64 id, u64) { slot = std::min(slot, id); });
    ASSERT_NE(slot, ~u64{0});
    sys.kern.swapDevice().retain(slot);

    check::Report rep = check::Invariants::check(sys.kern);
    EXPECT_FALSE(rep.ok());
    bool found = false;
    for (const check::Violation &v : rep.violations)
        found |= v.rule == "slot-refcount";
    EXPECT_TRUE(found) << rep.toString();
    // Clean up so teardown's slot accounting stays balanced.
    sys.kern.swapDevice().discard(slot);
}

} // namespace
} // namespace cheri
