/**
 * @file
 * The MiniBSD kernel: a capability-aware UNIX kernel model.
 *
 * Implements the CheriABI process environment from the paper: process
 * creation (execve installing capabilities into registers and memory,
 * Figure 1), fork with COW, context switching that preserves capability
 * state, tag-aware swapping, signal delivery with capability frames
 * (Figure 2), and a system-call layer in which *every* access to user
 * memory for a CheriABI process is mediated by a user-supplied
 * capability (Figure 3) — non-capability copyin/copyout paths return
 * errors for CheriABI processes, tags are stripped on ordinary copies
 * unless a capability-aware interface is used, and address-space
 * management calls demand the vmmap software permission.
 */

#ifndef CHERI_OS_KERNEL_H
#define CHERI_OS_KERNEL_H

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "os/panic.h"
#include "os/process.h"
#include "os/revocation.h"
#include "os/sched_iface.h"
#include "os/sysnum.h"
#include "os/user_ptr.h"
#include "trace/trace.h"

namespace cheri
{

namespace obs
{
class Metrics;
}

namespace snap
{
struct Access;
}

/** mmap(2) flags. */
enum MmapFlags : u32
{
    MAP_SHARED = 0x0001,
    MAP_PRIVATE = 0x0002,
    MAP_FIXED = 0x0010,
    MAP_ANON = 0x1000,
    MAP_GUARD = 0x2000,
};

/** kevent filter kinds (simplified). */
enum class KFilter : s64
{
    Read = -1,
    Write = -2,
    User = -11,
};

/** One kevent registration / report. */
struct KEvent
{
    int ident = -1; // fd
    KFilter filter = KFilter::Read;
    /**
     * Opaque user data.  The kernel stores the full capability in its
     * internal structures so a CheriABI process gets its pointer back
     * with the tag intact (paper section 4, "System calls").
     */
    Capability udata;
};

/** ptrace(2) request codes (subset). */
enum class PtReq
{
    Attach,
    Detach,
    ReadData,
    WriteData,
    ReadCap,
    /** Inject a capability: rederived from the *target's* root. */
    WriteCap,
    GetRegs,
    SetRegs,
};

/** ioctl command codes used by tests and workloads. */
enum IoctlCmd : u64
{
    /** Get terminal attributes into a flat struct (no pointers). */
    TIOCGETA_SIM = 0x402c7413,
    /**
     * Device-name query whose argument struct *contains a pointer*
     * (modeled on FIODGNAME / the DHCP bcast-addr bug): the kernel must
     * follow the interior pointer with the user's capability.
     */
    FIODGNAME_SIM = 0x80106678,
    /** Returns a kernel pointer; kernel exposes only the address. */
    KINFO_ADDR_SIM = 0x40087001,
};

/** Argument block for FIODGNAME_SIM. */
struct FiodgnameArg
{
    u64 len = 0;
    /** Interior pointer: capability under CheriABI (16 bytes in guest
     *  memory), integer address under mips64. */
    UserPtr buf;
};

/**
 * What the scheduler's deadlock watchdog does when an idle pass finds
 * blocked contexts whose wait-for analysis proves no guest or host
 * waker can ever reach them (a true cycle or an orphaned wait).
 */
enum class DeadlockPolicy
{
    /** No idle-time scans at all. */
    Off,
    /** Count and flight-record the stuck set; leave it parked (a host
     *  driver may still intervene).  The default. */
    Report,
    /** OOM-killer style: kill a deterministically chosen victim with
     *  SIG_KILL; its parent's wait4 reports E_DEADLK.  The decision is
     *  routed through the fault-injection tap so record/replay
     *  substitutes it bit-for-bit. */
    Kill,
};

/** Kernel-wide configuration. */
struct KernelConfig
{
    compress::CapFormat capFormat = compress::CapFormat::Cap128;
    SwapPolicy swapPolicy = SwapPolicy::PreserveTags;
    MachineFeatures features = {};
    /** Default stack size for new processes. */
    u64 stackSize = 8 * 1024 * 1024;
    /** Nonzero: randomize mapping placement (per-process slide). */
    u64 aslrSeed = 0;
    /**
     * Max live physical frames (0 = unlimited).  Exceeding it runs a
     * kernel reclaim pass (LRU eviction across processes, then OOM
     * kill); keep it above ~32 so a process image can always load.
     */
    u64 frameCapacity = 0;
    /** Max occupied swap slots (0 = unlimited).  A full device turns
     *  reclaim into OOM kill. */
    u64 swapSlotBudget = 0;
    /** Pages scanned per incremental revocation slice — the bound on
     *  revocation work any single dispatch() absorbs. */
    u64 revokeSliceBudget = 8;
    /** Guest instructions an execution context may retire before the
     *  scheduler preempts it.  Preemption is raised as an interpreter
     *  step-budget expiry, so it lands only at instruction
     *  boundaries — never mid-instruction. */
    u64 timeSliceSteps = 512;
    /** Deadlock watchdog policy for the scheduler's idle scan. */
    DeadlockPolicy deadlockPolicy = DeadlockPolicy::Report;
    /** Flight-recorder ring depth: kernel events retained for the
     *  panic report (0 keeps counting but retains nothing). */
    u64 flightRecorderDepth = 64;
};

class Kernel : private panic::Sink
{
  public:
    explicit Kernel(KernelConfig cfg = {});
    ~Kernel();

    /** Memory-pressure accounting (mirrored into Metrics when one is
     *  attached). */
    struct MemPressureStats
    {
        u64 reclaimPasses = 0;
        u64 pagesReclaimed = 0;
        u64 oomKills = 0;
        /** Syscall-level E_NOMEM failures caused by memory pressure. */
        u64 enomemErrors = 0;
    };

    /** Blocking-FD-I/O accounting (mirrored into Metrics when one is
     *  attached; schema v7 "fd" section). */
    struct FdIoStats
    {
        /** Contexts parked by read/write/select would-block. */
        u64 blocks = 0;
        /** Contexts woken by an FD wake edge (data, space, close). */
        u64 wakes = 0;
        /** Would-block reported to the caller (O_NONBLOCK or no
         *  scheduler context to park). */
        u64 eagainErrors = 0;
        /** Writes failed with EPIPE (reader side gone). */
        u64 epipeErrors = 0;
        /** Channel writes that transferred fewer bytes than asked
         *  (caller loops; the next write blocks or E_AGAINs). */
        u64 partialWrites = 0;
        /** Blocked selects woken by their timeout, not readiness. */
        u64 selectTimeouts = 0;
    };

    /** Revocation accounting (mirrored into Metrics when one is
     *  attached). */
    struct RevocationStats
    {
        u64 epochsOpened = 0;
        u64 epochsClosed = 0;
        /** Epochs torn down without closing (exit/execve/OOM kill). */
        u64 epochsAborted = 0;
        u64 pagesScanned = 0;
        /** Content pages an epoch skipped because cap-clean. */
        u64 pagesSkippedClean = 0;
        u64 granulesVisited = 0;
        u64 tagsRevoked = 0;
        u64 incrementalSlices = 0;
        u64 syncSweeps = 0;
        /** Modelled cycles charged inside epochs (open to close). */
        u64 cyclesInEpochs = 0;
    };

    /** Kernel-hardening accounting (mirrored into Metrics when one is
     *  attached; schema v9 "hardening" section). */
    struct HardeningStats
    {
        /** CHERI_KASSERT failures captured by the structured panic
         *  path (snapshot + report + transactional reset, never a
         *  host abort). */
        u64 panics = 0;
        /** Scheduler idle passes whose watchdog scan found a
         *  non-empty stuck set (wait-for cycle or orphaned wait). */
        u64 deadlocksDetected = 0;
        /** Victims killed under DeadlockPolicy::Kill. */
        u64 deadlocksKilled = 0;
        /** Injected memory corruption events detected and degraded to
         *  a guest-visible CapFault::MachineCheck. */
        u64 machineChecks = 0;
    };

    /** @name Subsystems */
    /// @{
    PhysMem &physMem() { return phys; }
    SwapDevice &swapDevice() { return swap; }
    /** Deterministic failure injection for the frame-allocation,
     *  swap-out, and swap-in choke points. */
    FaultInjector &faultInjector() { return injector; }
    const MemPressureStats &memPressure() const { return pressure; }
    const FdIoStats &fdIoStats() const { return fdStats; }
    const RevocationStats &revocationStats() const { return revStats; }
    const HardeningStats &hardeningStats() const { return hardStats; }
    /** The kernel-event flight recorder (syscalls, sched edges, fault
     *  decisions, watchdog verdicts, machine checks); its ring is
     *  dumped into every panic report. */
    panic::FlightRecorder &flightRecorder() { return recorder; }
    const panic::FlightRecorder &flightRecorder() const { return recorder; }
    Vfs &vfs() { return fs; }
    Rtld &rtld() { return linker; }
    const KernelConfig &config() const { return cfg; }
    void setTrace(TraceSink *sink) { traceSink = sink; }
    TraceSink *trace() const { return traceSink; }
    /** Attach/detach the observability registry (nullable; costs one
     *  branch per syscall/fault when absent).  Also (re)wires every
     *  live process's MemAccess TLB counter block. */
    void setMetrics(obs::Metrics *m);
    obs::Metrics *metrics() const { return mx; }
    /// @}

    /**
     * @name Numbered syscall dispatch (the ABI choke point)
     *
     * dispatch() is the single entry through which guest syscalls flow:
     * it decodes @p code via the SysNum table, marshals arguments from
     * the current thread's register file (integers from x[regArg0+i];
     * pointer arguments from c[regArg0+i] as capabilities under
     * CheriABI, from x[regArg0+i] as bare addresses under mips64), runs
     * the internal sysFoo implementation, and converts the SysResult to
     * the register-level errno convention in one place:
     *
     *   success:  x[regSysErr] = 0, x[regRetVal] = value
     *   failure:  x[regSysErr] = 1, x[regRetVal] = errno
     *
     * Pointer-returning syscalls (mmap, shmat) additionally install the
     * result in c[regRetVal] — a tagged, bounded capability under
     * CheriABI, an untagged address otherwise.  Metrics, tracing, and
     * batching all attach here instead of at N bespoke call sites.
     */
    /// @{
    SysResult dispatch(Process &proc, u64 code);
    /// @}

    /** @name Process lifecycle */
    /// @{
    /** Create an empty process (fresh principal, no image). */
    Process *spawn(Abi abi, const std::string &name);

    /**
     * Replace @p proc's address space with a fresh one and load
     * @p program into it: map segments via the RTLD, build the initial
     * stack with argv/envv/auxv (as bounded capabilities under
     * CheriABI), map the signal trampoline, and install the startup
     * register file (Figure 1).
     */
    int execve(Process &proc, const SelfObject &program,
               const std::vector<std::string> &argv,
               const std::vector<std::string> &envv);

    /** fork(2): COW address space, shared open files, copied regs. */
    Process *fork(Process &parent);

    /** Find a live process by pid. */
    Process *findProcess(u64 pid);

    /** Reap a zombie child; returns its pid or an errno. */
    SysResult wait4(Process &parent, u64 pid);

    /** Terminate with status (exit(2)). */
    void exitProcess(Process &proc, int status);

    /** Kill with a capability fault (SIG_PROT delivery or death). */
    void faultProcess(Process &proc, const DeathInfo &info);

    /** Account a context switch to @p proc (cost model + counters). */
    void contextSwitchTo(Process &proc);

    /** @name Threads (thr_new / thr_switch)
     * Additional kernel-scheduled contexts in one process.  Each gets
     * its own stack mapping with a bounded stack capability; the
     * kernel saves and restores the full capability register file on
     * switch, tags intact (the "capability-register context
     * switching" of the paper's prior CheriBSD work, now per ABI).
     */
    /// @{
    /** Create a thread; returns its tid, or an errno. */
    SysResult sysThrNew(Process &proc, u64 stack_size = 1 << 20);
    /** Switch the running context to @p tid (0 = the initial thread).
     *  Under an active scheduler this is a directed yield: the switch
     *  happens at the next slice boundary, not mid-instruction. */
    SysResult sysThrSwitch(Process &proc, u64 tid);
    /** Mark @p tid exited.  Exiting the running thread is allowed:
     *  teardown defers to the scheduler's next pick (the thread is a
     *  zombie until then); when the last live thread self-exits the
     *  process exits with status 0. */
    SysResult sysThrExit(Process &proc, u64 tid);
    /**
     * Save the running thread's register file into its record and
     * restore @p tid's — the capability-register context switch shared
     * by sysThrSwitch and the scheduler.  Returns an errno (E_SRCH for
     * unknown/dead tids; E_OK when @p tid already runs).
     */
    int switchThreadContext(Process &proc, u64 tid);
    /// @}

    u64 contextSwitches() const { return switches; }
    /// @}

    /** @name Scheduler (src/os/sched)
     * The kernel owns at most one scheduler (the concrete class lives
     * in src/os/sched, above the ISA layer — the core kernel library
     * never links interpreters).  runUntilIdle() is the single
     * execution entry every driver uses: it drains the run queue with
     * round-robin time slices until every context is done or blocked
     * forever.
     */
    /// @{
    /** Install (replacing any previous) and take ownership. */
    void installScheduler(std::unique_ptr<SchedulerIface> s);
    SchedulerIface *scheduler() const { return schedIface; }
    /** Scheduler counters for the oracle's metrics-mirror rule
     *  (nullptr when no scheduler is installed). */
    const SchedStats *schedulerStats() const
    {
        return schedIface ? &schedIface->stats() : nullptr;
    }
    /** Run the scheduler until the run queue is empty and no sleeper
     *  can be woken by advancing the virtual clock.  No-op without a
     *  scheduler installed.  A kernel panic unwinding out of the drain
     *  is absorbed here (panicReset), never propagated to the host. */
    void runUntilIdle();
    /**
     * Slice-boundary background work: pump any open revocation epoch
     * and, when the frame budget is exhausted, run a one-frame reclaim
     * pass on @p proc's behalf — so revocation and reclaim make
     * progress even when no syscall is in flight.
     */
    void backgroundTick(Process &proc);
    /**
     * An FD wake edge: wait-channel @p chan fired (data arrived, space
     * freed, or one end closed).  Wakes every context parked on it and
     * accounts the wakes.  The single funnel for all FD wake paths —
     * sysRead/sysWrite after a successful transfer, and close (both
     * explicit sysClose and the implicit close-all at process exit).
     */
    void fireFdEdge(u64 chan);
    /// @}

    /** @name Structured panic (src/os/panic.h)
     * The kernel registers itself as the innermost panic sink for its
     * lifetime: a CHERI_KASSERT failure anywhere in kernel or memory
     * code lands in onKassert, which captures the flight-recorder ring
     * into a JSON panic report, emits a CHRIIMG1 snapshot through the
     * installed hook, and unwinds to the nearest catch site — the
     * scheduler drain or dispatch() — where panicReset() rebuilds the
     * kernel empty.  The host process never aborts; the snapshot is a
     * postmortem artifact for `cheri_replay restore`.
     */
    /// @{
    /**
     * Transactionally reset the kernel to its just-constructed state:
     * scheduler contexts retired, processes destroyed (frames and swap
     * slots returned), VFS/shm/kqueue/epoch tables rebuilt empty, and
     * injector arms cleared.  Hardening counters and the captured
     * panic report survive; an attached Metrics registry is reset and
     * re-mirrored.
     */
    void panicReset();
    /** True when a panic has been captured (report + image valid). */
    bool panicked() const { return lastPanicValid; }
    const std::string &panicReportJson() const { return lastPanicReport; }
    /** The CHRIIMG1 snapshot captured at panic time (empty when no
     *  snapshot hook was installed or the capture itself failed). */
    const std::vector<u8> &panicImage() const { return lastPanicImage; }
    /** Install the panic-time snapshot capturer (snapshot layering: the
     *  core kernel library cannot link the snapshot writer, so
     *  snap::installPanicSnapshotHook injects it from above). */
    void setPanicSnapshotHook(std::function<std::vector<u8>(Kernel &)> fn)
    {
        panicSnapHook = std::move(fn);
    }
    /** Test seam: the @p nth upcoming dispatch() (1 = the very next)
     *  fails a planted kassert with otherwise-consistent state. */
    void plantPanicAtDispatch(u64 nth) { panicPlant = nth; }
    /// @}

    /** @name Deadlock-watchdog support (called by the scheduler)
     * The watchdog itself lives in the scheduler's idle branch — only
     * it can see the blocked-context census — but victim kill and the
     * wait-for graph's FD edges need kernel state.
     */
    /// @{
    /** Live processes able to fire wait-channel @p chan: holders of
     *  the peer end of the pipe/pty whose read (for writeWait tokens)
     *  or write (for readWait tokens) would wake the parked context.
     *  Closing the peer end fires the same edge, so mere possession
     *  counts. */
    std::vector<u64> fdWakerPids(u64 chan) const;
    /** Record one watchdog detection of @p stuck_contexts stuck
     *  contexts (metrics + flight recorder). */
    void noteDeadlockDetected(u64 stuck_contexts);
    /** Break a deadlock by killing @p victim (SIG_KILL, OOM-kill
     *  teardown); its parent's wait4 reports E_DEADLK.  @p why is the
     *  wait-for attribution recorded in the DeathInfo. */
    void deadlockKill(Process &victim, const std::string &why);
    /// @}

    /** @name User-memory access (Figure 3 semantics)
     * All return an errno (E_OK on success).  For CheriABI processes a
     * non-capability UserPtr is rejected with E_PROT, and capability
     * checks use exactly the user-supplied capability.  Transfers run
     * through the process's MemAccess (software-TLB) path.
     *
     * Like the BSD originals, copyout is not atomic across pages: when
     * E_FAULT is reported mid-range, bytes up to the faulting page
     * boundary have already reached user memory (and copyin has
     * partially filled @p dst).  The capability/DDC check still covers
     * the whole range up front, so partial transfers only arise from
     * translation faults, never from authority violations.
     */
    /// @{
    int copyin(Process &proc, const UserPtr &src, void *dst, u64 len);
    int copyout(Process &proc, const void *src, const UserPtr &dst,
                u64 len);
    /** NUL-terminated string copyin, bounded by @p max (page-chunked;
     *  E_RANGE when @p max bytes pass without a NUL). */
    int copyinstr(Process &proc, const UserPtr &src, std::string *out,
                  u64 max = 1024);
    /** Capability-preserving variants for the few interfaces that
     *  legitimately carry pointers (kevent, signal frames, ioctl). */
    int copyincap(Process &proc, const UserPtr &src, Capability *out);
    int copyoutcap(Process &proc, const Capability &cap,
                   const UserPtr &dst);
    /// @}

    /** @name File system calls */
    /// @{
    SysResult sysOpen(Process &proc, const UserPtr &path, u32 flags);
    SysResult sysClose(Process &proc, int fd);
    SysResult sysRead(Process &proc, int fd, const UserPtr &buf, u64 len);
    SysResult sysWrite(Process &proc, int fd, const UserPtr &buf,
                       u64 len);
    SysResult sysLseek(Process &proc, int fd, s64 off, int whence);
    /** pipe2-style: @p flags may carry O_NONBLOCK for both ends. */
    SysResult sysPipe(Process &proc, int fds_out[2], u32 flags = 0);
    SysResult sysDup(Process &proc, int fd);
    SysResult sysGetcwd(Process &proc, const UserPtr &buf, u64 len);
    /**
     * select(2) over three fd sets passed as u64 bitmasks plus a
     * timeval-sized argument — four pointer arguments, the paper's
     * best-case syscall for CheriABI.
     */
    SysResult sysSelect(Process &proc, int nfds, const UserPtr &readfds,
                        const UserPtr &writefds, const UserPtr &exceptfds,
                        const UserPtr &timeout);
    /// @}

    /** @name Virtual-memory system calls (paper section 4) */
    /// @{
    /**
     * mmap(2).  On success *out_ptr holds the CheriABI result: a
     * capability bounded to the (representability-padded) mapping with
     * permissions derived from @p prot plus vmmap — or, for a hinted
     * request with a tagged hint, a capability derived from the hint,
     * preserving provenance.  mips64 processes get an untagged address.
     */
    SysResult sysMmap(Process &proc, const UserPtr &addr, u64 len,
                      u32 prot, u32 flags, UserPtr *out_ptr);
    SysResult sysMunmap(Process &proc, const UserPtr &addr, u64 len);
    /**
     * File-backed mmap: map @p len bytes of @p fd starting at
     * @p offset.  Pages fill from the file on first touch;
     * MAP_PRIVATE writes stay private; msync writes MAP_SHARED pages
     * back.  Returns the CheriABI capability via @p out_ptr like
     * sysMmap.
     */
    SysResult sysMmapFd(Process &proc, int fd, u64 offset, u64 len,
                        u32 prot, u32 flags, UserPtr *out_ptr);
    /** Write resident MAP_SHARED pages back to the backing file. */
    SysResult sysMsync(Process &proc, const UserPtr &addr, u64 len);
    SysResult sysMprotect(Process &proc, const UserPtr &addr, u64 len,
                          u32 prot);
    /** shmget/shmat/shmdt System V shared memory. */
    SysResult sysShmget(Process &proc, u64 key, u64 size);
    SysResult sysShmat(Process &proc, int shmid, const UserPtr &addr,
                       UserPtr *out_ptr);
    SysResult sysShmdt(Process &proc, const UserPtr &addr);
    /** sbrk is excluded by principle (paper section 4). */
    SysResult sysSbrk(Process &proc, s64 delta);
    /// @}

    /** @name Signals */
    /// @{
    SysResult sysSigaction(Process &proc, int sig, SigAction act);
    SysResult sysKill(Process &proc, u64 pid, int sig);
    SysResult sysSigprocmask(Process &proc, u64 block, u64 unblock);
    /**
     * Deliver pending unblocked signals: spill the capability register
     * file to a stack signal frame, run the handler, restore on return
     * (Figure 2).  Returns the number of handlers run.
     */
    u64 deliverSignals(Process &proc);
    /// @}

    /** @name Event and management interfaces */
    /// @{
    /** Register @p changes and harvest up to @p max_events triggered
     *  events into @p events (kevent(2), simplified level-triggered). */
    SysResult sysKevent(Process &proc, const std::vector<KEvent> &changes,
                        std::vector<KEvent> *events, u64 max_events);
    SysResult sysIoctl(Process &proc, int fd, u64 cmd,
                       const UserPtr &arg);
    /** sysctl-like: kern.pid_addr exposes a virtual address, never a
     *  kernel capability (paper: interfaces altered to expose VAs). */
    SysResult sysSysctl(Process &proc, const std::string &name,
                        const UserPtr &oldp, u64 oldlen);
    /// @}

    /** @name Debugging (ptrace) */
    /// @{
    SysResult sysPtrace(Process &debugger, PtReq req, u64 pid, u64 addr,
                        void *host_buf, u64 len);
    /** Capability read/write variants. */
    SysResult ptraceReadCap(Process &debugger, u64 pid, u64 addr,
                            Capability *out);
    SysResult ptraceWriteCap(Process &debugger, u64 pid, u64 addr,
                             const Capability &cap);
    SysResult ptraceGetRegs(Process &debugger, u64 pid, ThreadRegs *out);
    /// @}

    /** @name Misc */
    /// @{
    SysResult sysGetpid(Process &proc);
    SysResult sysGetppid(Process &proc);
    /** @name Counting events (the blocking-wait primitive)
     * Each process has a saturating event counter.  ev_post increments
     * @p pid's counter (0 = self) and wakes its EventWait contexts;
     * ev_wait consumes one event or blocks until one is posted (E_BUSY
     * when it would block and no scheduler can block the caller).
     * sleep(ticks) blocks until the scheduler's virtual clock — total
     * guest instructions retired — has advanced @p ticks; without a
     * scheduler it completes immediately.
     */
    /// @{
    SysResult sysEvPost(Process &proc, u64 pid);
    SysResult sysEvWait(Process &proc);
    SysResult sysSleep(Process &proc, u64 ticks);
    /// @}
    /**
     * The unified revocation syscall (revoke2): run an epoch-based
     * sweep over a set of [lo, hi) ranges — resident and swapped pages
     * (cap-dirty only, unless REVOKE_FORCE_FULL), then every
     * kernel-held capability store via the RevocationScan registry.
     *
     *   REVOKE_SYNC        whole epoch now; result = tags revoked.
     *                      Empty range set: drain an open epoch.
     *   REVOKE_INCREMENTAL open + one bounded slice; result = pages
     *                      still queued (0 = closed).  Empty range
     *                      set: advance the open epoch one slice.
     *   REVOKE_FORCE_FULL  scan every content page (composable).
     *
     * Exactly one of SYNC/INCREMENTAL must be set.  Opening while an
     * epoch is already open is E_BUSY; a SYNC drive that cannot make
     * progress (persistent swap-device failure) returns E_INTR with
     * the epoch left open for retry.
     */
    SysResult sysRevoke2(Process &proc,
                         const std::vector<std::pair<u64, u64>> &ranges,
                         u32 flags);

    /**
     * Register a kernel capability store with the revocation sweep.
     * The default scans (thread register files, startup capabilities,
     * live signal frames, kevent udata) are installed by the
     * constructor; subsystems added later register here too.
     */
    void registerRevocationScan(std::unique_ptr<RevocationScan> scan);

    /** This process's revocation epoch state (created on demand). */
    RevocationEpoch &revocationEpoch(u64 pid) { return revEpochs[pid]; }

    /** Read-only epoch lookup that never creates state (the oracle). */
    const RevocationEpoch *
    findRevocationEpoch(u64 pid) const
    {
        auto it = revEpochs.find(pid);
        return it == revEpochs.end() ? nullptr : &it->second;
    }

    /** The quiescent-point clock the oracle compares
     *  RevocationEpoch::closeSeq against.  It advances on every
     *  dispatch() entry, on every direct sys* entry (chargeSyscall),
     *  and once at each revocation-epoch close — so a close marks one
     *  unique point regardless of which path drove it, and any later
     *  kernel entry (under which the guest may legitimately re-derive
     *  into the revoked ranges) moves the clock past it. */
    u64 quiescentCount() const { return quiescentSeq; }

    /** Visit every kevent udata capability registered by @p pid —
     *  mutably (the revocation sweep clears tags in place)... */
    void forEachKeventUdata(u64 pid,
                            const std::function<void(Capability &)> &fn);
    /** ...and read-only (the invariant oracle). */
    void forEachKeventUdata(
        u64 pid,
        const std::function<void(const Capability &)> &fn) const;

    /**
     * Allocate a range of @p count object types to the process,
     * returning (via @p out) a sealing authority: a capability with
     * PERM_SEAL|PERM_UNSEAL whose bounds cover exactly that otype
     * range (libcheri's sandbox-type allocator).
     */
    SysResult sysOtypeAlloc(Process &proc, u64 count, Capability *out);
    /// @}

    /** Fresh abstract principal id (never reused). */
    u64 newPrincipal() { return nextPrincipal++; }

    /** @name Checking-layer hooks (src/check)
     * forEachProcess and forEachShmFrame expose the kernel's ownership
     * ground truth — live processes and the frames pinned by System V
     * segments — so the invariant oracle can recompute frame and
     * swap-slot accounting from first principles.  The check hook
     * (nullable) runs at the end of every dispatch(): the syscall
     * boundary, where the system is quiescent and global invariants
     * must hold.
     */
    /// @{
    void forEachProcess(
        const std::function<void(const Process &)> &fn) const;
    void forEachShmFrame(
        const std::function<void(const FrameRef &)> &fn) const;
    using CheckHook = std::function<void(Process &proc, u64 code)>;
    void setCheckHook(CheckHook hook) { checkHook = std::move(hook); }
    /// @}

  private:
    /** Checkpoint/restore reaches every private table. */
    friend struct snap::Access;

    struct ShmSegment
    {
        u64 size = 0;
        std::vector<FrameRef> frames;
    };

    /** Validate a user pointer for an access of @p len bytes requiring
     *  @p perms; returns errno. */
    int checkUserPtr(Process &proc, const UserPtr &ptr, u64 len,
                     u32 perms);

    /** @name Memory-pressure machinery
     * reclaimFrames is PhysMem's reclaim hook: evict LRU pages across
     * all processes; if that cannot free @p wanted frames (swap full or
     * nothing evictable), OOM-kill the largest process other than the
     * requester's.  Returns frames freed.
     */
    /// @{
    u64 reclaimFrames(u64 wanted, const void *requester);
    void oomKill(Process &victim);
    /** Count a pressure-induced E_NOMEM and return it as a SysResult. */
    SysResult failNoMem();
    /// @}

    /** Charge @p n_ptr_args syscall overhead to the process. */
    void chargeSyscall(Process &proc, u64 n_ptr_args);

    /** @name Structured-panic machinery (os/panic.cc call sites)
     * onKassert is the panic::Sink entry: capture, then unwind.
     * dispatchInner is the whole historical dispatch body; dispatch()
     * wraps it in the catch-site that absorbs panics on host-driven
     * (scheduler-idle) paths.
     */
    /// @{
    [[noreturn]] void onKassert(const panic::KassertInfo &info) override;
    SysResult dispatchInner(Process &proc, u64 code);
    std::string buildPanicReport(const panic::KassertInfo &info) const;
    /** PhysMem/SwapDevice corruption-hook target: count the machine
     *  check and feed the flight recorder. */
    void noteMachineCheck(FaultPoint point, u64 addr);
    /** (Re)build the default VFS tree (constructor and panicReset). */
    void initVfs();
    /// @}

    /** @name Revocation epoch machinery (os/revocation.cc)
     * openEpoch validates the range set and builds the worklist;
     * runRevocationSlice scans up to @p max_pages from it (absorbing
     * re-dirtied pages) and closes the epoch when the worklist drains —
     * closing is where kernel-held stores are swept, via the
     * RevocationScan registry.  driveEpochToClose loops slices for the
     * SYNC path; pumpRevocation is the per-dispatch incremental tick;
     * abortRevocationEpoch tears down an open epoch when its process's
     * address space is about to vanish (exit, execve, OOM kill).
     */
    /// @{
    SysResult openEpoch(Process &proc,
                        std::vector<std::pair<u64, u64>> ranges,
                        u32 flags);
    /** Pages scanned this slice (0 = no progress; worklist may still
     *  be nonempty on persistent device failure). */
    u64 runRevocationSlice(Process &proc, RevocationEpoch &ep,
                           u64 max_pages);
    void closeRevocationEpoch(Process &proc, RevocationEpoch &ep);
    SysResult driveEpochToClose(Process &proc, RevocationEpoch &ep);
    void pumpRevocation(Process &proc);
    void abortRevocationEpoch(Process &proc);
    /// @}

    void setupStack(Process &proc, const std::vector<std::string> &argv,
                    const std::vector<std::string> &envv);
    /** Spill/restore the register file to/from a signal frame on the
     *  user stack.  Fallible: the stack page's swap-in or demand-zero
     *  frame allocation can fail under pressure, in which case the
     *  process takes a counted guest fault (never a host abort) and
     *  these return false with the process dead. */
    bool pushSigFrame(Process &proc, SigFrame &frame);
    bool popSigFrame(Process &proc, const SigFrame &frame);

    KernelConfig cfg;
    PhysMem phys;
    SwapDevice swap;
    FaultInjector injector;
    MemPressureStats pressure;
    FdIoStats fdStats;
    HardeningStats hardStats;
    panic::FlightRecorder recorder;
    /** Attribution for panic reports: the (pid, code) of the dispatch
     *  in flight (code ~0 = none). */
    u64 lastDispatchPid = 0;
    u64 lastDispatchCode = ~u64{0};
    /** Nonzero: dispatchInner fails a planted kassert when the counter
     *  reaches zero (test seam; see plantPanicAtDispatch). */
    u64 panicPlant = 0;
    /** A panic capture is running: re-entrant kasserts (a corrupted
     *  kernel failing again under the snapshot walk) skip capture and
     *  unwind immediately. */
    bool panicInProgress = false;
    bool lastPanicValid = false;
    std::string lastPanicReport;
    std::vector<u8> lastPanicImage;
    std::function<std::vector<u8>(Kernel &)> panicSnapHook;
    Vfs fs;
    Rtld linker;
    TraceSink *traceSink = nullptr;
    obs::Metrics *mx = nullptr;
    CheckHook checkHook;
    std::map<u64, std::unique_ptr<Process>> procs;
    std::map<int, ShmSegment> shmSegments;
    std::map<u64, std::vector<KEvent>> kqueues; // by pid
    std::vector<std::pair<u64, u64>> attached; // (debugger, target)
    std::vector<std::unique_ptr<RevocationScan>> revScans;
    std::map<u64, RevocationEpoch> revEpochs; // by pid
    RevocationStats revStats;
    /** Kernel-global epoch id allocator (ids never reused). */
    u64 nextEpochId = 0;
    /** Quiescent-point clock (see quiescentCount()). */
    u64 quiescentSeq = 0;
    u64 nextPid = 1;
    u64 nextPrincipal = 1;
    u64 nextOtype = 1; // otype 0 reserved
    int nextShmId = 1;
    u64 switches = 0;
    /** Per-pid counting-event state (sysEvPost/sysEvWait). */
    std::map<u64, u64> eventCounts;
    SchedulerIface *schedIface = nullptr;
    /** Declared after procs: the scheduler (whose contexts reference
     *  Process objects) is destroyed before the process table. */
    std::unique_ptr<SchedulerIface> ownedSched;
    /**
     * False only while a snapshot restore is rebuilding kernel state.
     * fireFdEdge consults it: teardown paths (closeAllFds) run during
     * restore-abort, and their wake edges must not reach a half-built
     * scheduler or perturb restored wake accounting.
     */
    bool kernelReady = true;
};

/** Map PROT_* bits to the capability permissions mmap grants. */
u32 protToPerms(u32 prot);

} // namespace cheri

#endif // CHERI_OS_KERNEL_H
