/**
 * @file
 * ptrace tests: cross-principal debugging, capability inspection, and
 * injection-by-rederivation (paper section 3, "Debugging").
 */

#include <gtest/gtest.h>

#include "test_util.h"

namespace cheri
{
namespace
{

using test::GuestSystem;

class PtraceTest : public ::testing::Test
{
  protected:
    PtraceTest()
    {
        debugger = sys.kern.spawn(Abi::CheriAbi, "gdb");
        SysResult r = sys.kern.sysPtrace(*debugger, PtReq::Attach,
                                         sys.proc->pid(), 0, nullptr, 0);
        EXPECT_EQ(r.error, E_OK);
    }

    GuestSystem sys{Abi::CheriAbi};
    Process *debugger = nullptr;
    GuestContext &ctx() { return *sys.ctx; }
    Process &target() { return *sys.proc; }
    Kernel &kern() { return sys.kern; }
};

TEST_F(PtraceTest, AttachRequiredForAccess)
{
    Process *stranger = kern().spawn(Abi::CheriAbi, "stranger");
    u8 b;
    EXPECT_EQ(kern()
                  .sysPtrace(*stranger, PtReq::ReadData, target().pid(),
                             target().stackCap.address() - 8, &b, 1)
                  .error,
              E_PERM);
}

TEST_F(PtraceTest, ReadsTargetMemory)
{
    GuestPtr buf = ctx().mmap(pageSize);
    ctx().store<u64>(buf, 0, 0xABCD1234);
    u64 got = 0;
    ASSERT_EQ(kern()
                  .sysPtrace(*debugger, PtReq::ReadData, target().pid(),
                             buf.addr(), &got, 8)
                  .error,
              E_OK);
    EXPECT_EQ(got, 0xABCD1234u);
}

TEST_F(PtraceTest, InspectsTargetCapabilities)
{
    GuestPtr buf = ctx().mmap(pageSize);
    ctx().storePtr(buf, 0, buf);
    Capability seen;
    ASSERT_EQ(kern()
                  .ptraceReadCap(*debugger, target().pid(), buf.addr(),
                                 &seen)
                  .error,
              E_OK);
    EXPECT_TRUE(seen.tag());
    EXPECT_EQ(seen.base(), buf.cap.base());
    EXPECT_EQ(seen.perms(), buf.cap.perms());
}

TEST_F(PtraceTest, RawWriteCannotForgeCapability)
{
    GuestPtr buf = ctx().mmap(pageSize);
    ctx().storePtr(buf, 0, buf);
    // Debugger pokes bytes over the stored capability.
    u64 evil = 0x414141414141;
    ASSERT_EQ(kern()
                  .sysPtrace(*debugger, PtReq::WriteData, target().pid(),
                             buf.addr(), &evil, 8)
                  .error,
              E_OK);
    EXPECT_FALSE(ctx().loadPtr(buf, 0).cap.tag())
        << "byte pokes must strip tags, like any data store";
}

TEST_F(PtraceTest, InjectedCapabilityRederivedFromTargetRoot)
{
    GuestPtr buf = ctx().mmap(pageSize);
    // The debugger asks for a capability over part of the target heap.
    Capability wanted = target()
                            .as()
                            .rederivationRoot()
                            .setAddress(buf.addr())
                            .setBounds(64)
                            .value()
                            .withoutTag();
    ASSERT_EQ(kern()
                  .ptraceWriteCap(*debugger, target().pid(), buf.addr(),
                                  wanted)
                  .error,
              E_OK);
    GuestPtr injected = ctx().loadPtr(buf, 0);
    EXPECT_TRUE(injected.cap.tag());
    EXPECT_EQ(injected.cap.length(), 64u);
    // The target can use it.
    ctx().store<u64>(injected, 0, 1);
}

TEST_F(PtraceTest, InjectionBeyondTargetAuthorityFailsClosed)
{
    GuestPtr buf = ctx().mmap(pageSize);
    // Pattern claiming kernel-range bounds: must be refused.
    Capability evil = Capability::root()
                          .setAddress(AddressSpace::userTop + 0x1000)
                          .setBounds(0x1000)
                          .value()
                          .withoutTag();
    EXPECT_EQ(kern()
                  .ptraceWriteCap(*debugger, target().pid(), buf.addr(),
                                  evil)
                  .error,
              E_PROT);
}

TEST_F(PtraceTest, GetRegsExposesCapabilityState)
{
    GuestPtr buf = ctx().mmap(pageSize);
    target().regs().c[9] = buf.cap;
    ThreadRegs regs;
    ASSERT_EQ(kern().ptraceGetRegs(*debugger, target().pid(), &regs).error,
              E_OK);
    EXPECT_EQ(regs.c[9], buf.cap);
    EXPECT_TRUE(regs.pcc.tag());
}

TEST_F(PtraceTest, DetachRevokesAccess)
{
    ASSERT_EQ(kern()
                  .sysPtrace(*debugger, PtReq::Detach, target().pid(), 0,
                             nullptr, 0)
                  .error,
              E_OK);
    u8 b;
    EXPECT_EQ(kern()
                  .sysPtrace(*debugger, PtReq::ReadData, target().pid(),
                             0x10000, &b, 1)
                  .error,
              E_PERM);
}

TEST_F(PtraceTest, NonexistentTargetIsEsrch)
{
    u8 b;
    EXPECT_EQ(kern()
                  .sysPtrace(*debugger, PtReq::ReadData, 424242, 0, &b, 1)
                  .error,
              E_SRCH);
}

} // namespace
} // namespace cheri
