file(REMOVE_RECURSE
  "CMakeFiles/cheri_isa.dir/isa/assembler.cc.o"
  "CMakeFiles/cheri_isa.dir/isa/assembler.cc.o.d"
  "CMakeFiles/cheri_isa.dir/isa/insn.cc.o"
  "CMakeFiles/cheri_isa.dir/isa/insn.cc.o.d"
  "CMakeFiles/cheri_isa.dir/isa/interp.cc.o"
  "CMakeFiles/cheri_isa.dir/isa/interp.cc.o.d"
  "libcheri_isa.a"
  "libcheri_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
