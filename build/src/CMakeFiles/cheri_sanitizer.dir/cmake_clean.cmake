file(REMOVE_RECURSE
  "CMakeFiles/cheri_sanitizer.dir/sanitizer/asan.cc.o"
  "CMakeFiles/cheri_sanitizer.dir/sanitizer/asan.cc.o.d"
  "libcheri_sanitizer.a"
  "libcheri_sanitizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_sanitizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
