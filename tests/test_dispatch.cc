/**
 * @file
 * The numbered syscall ABI and the observability layer on top of it:
 * Kernel::dispatch argument marshalling and errno conversion for both
 * ABIs, per-syscall metrics (counters + cycle histograms), fault
 * telemetry with DeriveSource provenance, and the JSON/CSV emitters.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/interp.h"
#include "obs/metrics.h"
#include "os/sys_invoke.h"
#include "test_util.h"

namespace cheri
{
namespace
{

using isa::Assembler;
using isa::InterpResult;
using isa::Interpreter;
using test::GuestSystem;

class Dispatch : public ::testing::TestWithParam<Abi>
{
  protected:
    Dispatch() : sys(GetParam()) {}
    GuestSystem sys;
};

TEST_P(Dispatch, UnknownSyscallNumberFailsClosed)
{
    SysResult r = sys.kern.dispatch(*sys.proc, 9999);
    EXPECT_TRUE(r.failed());
    EXPECT_EQ(r.error, E_NOSYS);
    EXPECT_EQ(sys.proc->regs().x[regSysErr], 1u);
    EXPECT_EQ(sys.proc->regs().x[regRetVal],
              static_cast<u64>(E_NOSYS));

    // Number 0 is reserved-invalid, not a real syscall.
    EXPECT_EQ(sys.kern.dispatch(*sys.proc, 0).error, E_NOSYS);
}

TEST_P(Dispatch, ErrnoConventionOnFailure)
{
    // read(2) on a descriptor that was never opened.
    SysInvokeResult r =
        sysInvoke(sys.kern, *sys.proc, SysNum::Read,
                  {SysArg::i(42), SysArg::p(UserPtr::fromAddr(0)),
                   SysArg::i(8)});
    EXPECT_TRUE(r.res.failed());
    EXPECT_EQ(r.res.error, E_BADF);
    EXPECT_EQ(sys.proc->regs().x[regSysErr], 1u);
    EXPECT_EQ(sys.proc->regs().x[regRetVal], static_cast<u64>(E_BADF));
}

TEST_P(Dispatch, ErrnoConventionOnSuccess)
{
    SysInvokeResult r = sysInvoke(sys.kern, *sys.proc, SysNum::Getpid);
    EXPECT_FALSE(r.res.failed());
    EXPECT_EQ(sys.proc->regs().x[regSysErr], 0u);
    EXPECT_EQ(sys.proc->regs().x[regRetVal], sys.proc->pid());
}

TEST_P(Dispatch, MmapReturnsAbiAppropriatePointer)
{
    SysInvokeResult r =
        sysInvoke(sys.kern, *sys.proc, SysNum::Mmap,
                  {SysArg::p(UserPtr::fromAddr(0)),
                   SysArg::i(pageSize),
                   SysArg::i(PROT_READ | PROT_WRITE),
                   SysArg::i(MAP_ANON | MAP_PRIVATE)});
    ASSERT_FALSE(r.res.failed());
    const Capability &c = sys.proc->regs().c[regRetVal];
    if (GetParam() == Abi::CheriAbi) {
        // CheriABI mmap returns a tagged capability bounded to the
        // mapping (paper Figure 1 / section 4.2).
        EXPECT_TRUE(c.tag());
        EXPECT_TRUE(r.out.isCap);
        EXPECT_EQ(c.length(), pageSize);
    } else {
        EXPECT_FALSE(c.tag());
        EXPECT_NE(sys.proc->regs().x[regRetVal], 0u);
    }
    // Failed pointer-returning calls must not leak a stale capability.
    sysInvoke(sys.kern, *sys.proc, SysNum::Mmap,
              {SysArg::p(UserPtr::fromAddr(0)), SysArg::i(0),
               SysArg::i(PROT_READ), SysArg::i(MAP_ANON | MAP_PRIVATE)});
    EXPECT_FALSE(sys.proc->regs().c[regRetVal].tag());
}

TEST_P(Dispatch, MetricsCountScriptedSequence)
{
    obs::Metrics m;
    sys.kern.setMetrics(&m);
    const Abi abi = GetParam();

    for (int i = 0; i < 3; ++i)
        sys.ctx->getpid();
    GuestPtr buf; // null pointer: read fails on the bad fd first
    EXPECT_LT(sys.ctx->read(42, buf, 8), 0);
    EXPECT_LT(sys.ctx->read(43, buf, 8), 0);
    GuestPtr p = sys.ctx->mmap(pageSize);
    EXPECT_EQ(sys.ctx->munmap(p, pageSize), E_OK);

    const u64 getpid_num = static_cast<u64>(SysNum::Getpid);
    const u64 read_num = static_cast<u64>(SysNum::Read);
    const u64 mmap_num = static_cast<u64>(SysNum::Mmap);

    EXPECT_EQ(m.syscall(getpid_num, abi).calls, 3u);
    EXPECT_EQ(m.syscall(getpid_num, abi).errors, 0u);
    EXPECT_EQ(m.syscall(read_num, abi).calls, 2u);
    EXPECT_EQ(m.syscall(read_num, abi).errors, 2u);
    EXPECT_EQ(m.syscall(mmap_num, abi).calls, 1u);

    // Histogram integrity: one sample per call, cycles were charged.
    const obs::Histogram &h = m.syscall(getpid_num, abi).cycles;
    EXPECT_EQ(h.count, 3u);
    EXPECT_GT(h.sum, 0u);
    EXPECT_LE(h.min, h.max);

    // The other ABI's row stays untouched.
    Abi other = abi == Abi::CheriAbi ? Abi::Mips64 : Abi::CheriAbi;
    EXPECT_EQ(m.syscall(getpid_num, other).calls, 0u);

    // Unknown numbers accumulate in the reserved-invalid slot.
    sys.kern.dispatch(*sys.proc, 9999);
    EXPECT_EQ(m.syscall(0, abi).calls, 1u);
    EXPECT_EQ(m.syscall(0, abi).errors, 1u);
}

TEST_P(Dispatch, EmittersProduceStructuredOutput)
{
    obs::Metrics m;
    sys.kern.setMetrics(&m);
    sys.ctx->getpid();

    std::string json = m.toJson();
    EXPECT_NE(json.find("cheri.metrics.v9"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"getpid\""), std::string::npos);
    EXPECT_NE(json.find(obs::abiName(GetParam())), std::string::npos);

    std::string csv = m.toCsv();
    EXPECT_NE(csv.find("num,name,abi,ptr_args,calls,errors"),
              std::string::npos);
    EXPECT_NE(csv.find("getpid"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Abis, Dispatch,
                         ::testing::Values(Abi::Mips64, Abi::CheriAbi),
                         [](const auto &info) {
                             return info.param == Abi::CheriAbi
                                        ? "cheriabi"
                                        : "mips64";
                         });

// --- Histogram bucket math --------------------------------------------

TEST(Histogram, PowerOfTwoBuckets)
{
    using obs::Histogram;
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(~u64{0}), Histogram::numBuckets - 1);
    EXPECT_EQ(Histogram::bucketLo(0), 0u);
    EXPECT_EQ(Histogram::bucketLo(1), 1u);
    EXPECT_EQ(Histogram::bucketLo(11), 1024u);

    Histogram h;
    for (u64 v : {u64{0}, u64{1}, u64{3}, u64{1024}})
        h.record(v);
    EXPECT_EQ(h.count, 4u);
    EXPECT_EQ(h.sum, 1028u);
    EXPECT_EQ(h.min, 0u);
    EXPECT_EQ(h.max, 1024u);
    EXPECT_EQ(h.buckets[2], 1u);
    EXPECT_EQ(h.buckets[11], 1u);
}

// --- Fault telemetry with provenance ----------------------------------

TEST(FaultTelemetry, DirectRecordWithLearnedProvenance)
{
    obs::Metrics m;
    Capability c =
        Capability::root().setAddress(0x1000).setBounds(64).value();
    m.derive(DeriveSource::Stack, c);
    EXPECT_EQ(m.deriveCount(DeriveSource::Stack), 1u);

    m.recordFault(CapFault::LengthViolation, 0x400, 0x1040, &c,
                  Abi::CheriAbi);
    ASSERT_EQ(m.faults().size(), 1u);
    const obs::FaultRecord &f = m.faults()[0];
    EXPECT_EQ(f.cause, CapFault::LengthViolation);
    EXPECT_EQ(f.pc, 0x400u);
    EXPECT_EQ(f.addr, 0x1040u);
    EXPECT_TRUE(f.provenanceKnown);
    EXPECT_EQ(f.provenance, DeriveSource::Stack);
    EXPECT_EQ(m.faultCount(CapFault::LengthViolation), 1u);
}

TEST(FaultTelemetry, InterpreterAttributesSyscallDerivedCapability)
{
    // A CheriABI guest mmaps a page through the numbered ABI, then
    // dereferences one byte past the returned capability's bounds.
    // The fault record must carry the capability's provenance:
    // DeriveSource::Syscall (the paper's Figure 5 legend).
    GuestSystem sys(Abi::CheriAbi);
    obs::Metrics m;
    sys.kern.setMetrics(&m);
    sys.kern.setTrace(&m); // learn provenance from derive events

    u64 code = sys.proc->as().map(0, pageSize,
                                  PROT_READ | PROT_WRITE | PROT_EXEC,
                                  MappingKind::Text, false, false,
                                  "testcode");
    Assembler a;
    a.li(regArg0 + 1, static_cast<s64>(pageSize))
        .li(regArg0 + 2, PROT_READ | PROT_WRITE)
        .li(regArg0 + 3, MAP_ANON | MAP_PRIVATE)
        .syscall(static_cast<s64>(SysNum::Mmap))
        .cld(8, regRetVal, static_cast<s64>(pageSize)) // out of bounds
        .halt();
    a.writeTo(sys.proc->as(), code);

    Interpreter interp(*sys.proc);
    interp.setEntry(sys.proc->as()
                        .capForRange(code, pageSize,
                                     PROT_READ | PROT_EXEC, false)
                        .setAddress(code));
    isa::installDefaultSyscallHook(interp, sys.kern);

    InterpResult r = interp.run();
    ASSERT_EQ(r.status, InterpResult::Status::Fault);
    EXPECT_EQ(r.fault, CapFault::LengthViolation);

    ASSERT_GE(m.faults().size(), 1u);
    const obs::FaultRecord &f = m.faults().back();
    EXPECT_EQ(f.cause, CapFault::LengthViolation);
    EXPECT_EQ(f.abi, Abi::CheriAbi);
    EXPECT_TRUE(f.provenanceKnown);
    EXPECT_EQ(f.provenance, DeriveSource::Syscall);

    // The mmap itself was counted under the CheriABI row.
    EXPECT_EQ(
        m.syscall(static_cast<u64>(SysNum::Mmap), Abi::CheriAbi).calls,
        1u);
    // And the instruction mix saw the guest's instructions.
    EXPECT_GT(m.insnCount(static_cast<unsigned>(isa::Op::Syscall),
                          Abi::CheriAbi),
              0u);
}

} // namespace
} // namespace cheri
