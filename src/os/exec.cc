/**
 * @file
 * execve: image activation and startup-capability installation.
 *
 * Reproduces Figure 1 of the paper: the kernel replaces the address
 * space, maps the program and run-time linker, builds the initial stack
 * holding argv/envv/auxv — every pointer among them a bounded capability
 * under CheriABI — maps the read-only signal-return trampoline, and
 * installs capabilities into the new thread's register file (stack
 * capability, argument capability, PCC).
 */

#include "os/kernel.h"

#include <cstring>

#include "os/auxv.h"

namespace cheri
{

namespace
{

MappingKind
kindForSegment(const std::string &name)
{
    if (name.ends_with(":text"))
        return MappingKind::Text;
    if (name.ends_with(":rodata"))
        return MappingKind::RoData;
    return MappingKind::Data;
}

/** LinkerEnv giving the RTLD access to the process being built. */
class ProcLinkerEnv : public LinkerEnv
{
  public:
    ProcLinkerEnv(Kernel &kern, Process &proc) : kern(kern), proc(proc) {}

    Abi abi() const override { return proc.abi(); }

    Capability
    mapPages(u64 len, u32 prot, const std::string &name) override
    {
        u64 padded = proc.as().representablePadding(len);
        u64 va = proc.as().map(0, padded, prot, kindForSegment(name),
                               false, false, name);
        if (va == 0)
            throw std::runtime_error("execve: out of address space");
        Capability c = proc.as().capForRange(va, padded, prot, false);
        if (kern.trace())
            kern.trace()->derive(DeriveSource::Exec, c);
        if (proc.abi() != Abi::CheriAbi)
            return Capability::fromAddress(va);
        return c;
    }

    void
    storeBytes(u64 va, const void *buf, u64 len) override
    {
        mustSucceed(proc.mem().write(va, buf, len));
        proc.cost().copyLoop(0xC000000000 + va, va, len);
    }

    void
    storePointer(u64 va, const Capability &cap) override
    {
        if (proc.abi() == Abi::CheriAbi) {
            mustSucceed(proc.mem().writeCap(va, cap));
            proc.cost().store(va, capSize);
        } else {
            u64 addr = cap.address();
            mustSucceed(proc.mem().write(va, &addr, 8));
            proc.cost().store(va, 8);
        }
    }

    TraceSink *trace() const override { return kern.trace(); }
    CostModel *cost() const override { return &proc.cost(); }

  private:
    Kernel &kern;
    Process &proc;
};

} // namespace

void
Kernel::setupStack(Process &proc, const std::vector<std::string> &argv,
                   const std::vector<std::string> &envv)
{
    const bool cheri = proc.abi() == Abi::CheriAbi;
    const u64 ptr_size = cheri ? capSize : 8;

    // Map the stack with a guard page below it.
    u64 stack_len = cfg.stackSize;
    u64 stack_va = proc.as().map(0x7F0000000, stack_len,
                                 PROT_READ | PROT_WRITE,
                                 MappingKind::Stack, false, false,
                                 "stack");
    CHERI_KASSERT(stack_va != 0,
                  "exec stack mapping failed in a fresh address space");
    proc.as().map(stack_va - pageSize, pageSize, PROT_NONE,
                  MappingKind::Guard, true, false, "stack-guard");
    u64 stack_top = stack_va + stack_len;

    // --- Strings block (argv then envv), at the very top. ---
    u64 cursor = stack_top;
    std::vector<u64> arg_addrs, env_addrs;
    auto push_string = [&](const std::string &s) {
        cursor -= s.size() + 1;
        mustSucceed(proc.mem().write(cursor, s.c_str(), s.size() + 1));
        return cursor;
    };
    for (auto it = envv.rbegin(); it != envv.rend(); ++it)
        env_addrs.insert(env_addrs.begin(), push_string(*it));
    for (auto it = argv.rbegin(); it != argv.rend(); ++it)
        arg_addrs.insert(arg_addrs.begin(), push_string(*it));
    cursor &= ~u64{15};

    // The capability each array element holds: bounded to its string.
    Capability stack_region =
        proc.as().capForRange(stack_va, stack_len, PROT_READ | PROT_WRITE,
                              false);
    auto string_cap = [&](u64 addr, u64 size) {
        Capability c = stack_region.setAddress(addr);
        auto b = c.setBounds(size);
        CHERI_KASSERT(b.ok(),
                      "exec argv/envv string cap narrowing failed");
        if (traceSink)
            traceSink->derive(DeriveSource::Exec, b.value());
        return b.value();
    };

    auto write_ptr = [&](u64 va, const Capability &cap) {
        if (cheri) {
            mustSucceed(proc.mem().writeCap(va, cap));
        } else {
            u64 a = cap.address();
            mustSucceed(proc.mem().write(va, &a, 8));
        }
    };

    // --- envv[] then argv[] arrays (NULL-terminated). ---
    cursor -= (env_addrs.size() + 1) * ptr_size;
    u64 envv_va = cursor;
    for (size_t i = 0; i < env_addrs.size(); ++i) {
        write_ptr(envv_va + i * ptr_size,
                  string_cap(env_addrs[i], envv[i].size() + 1));
    }
    write_ptr(envv_va + env_addrs.size() * ptr_size, Capability());

    cursor -= (arg_addrs.size() + 1) * ptr_size;
    u64 argv_va = cursor;
    for (size_t i = 0; i < arg_addrs.size(); ++i) {
        write_ptr(argv_va + i * ptr_size,
                  string_cap(arg_addrs[i], argv[i].size() + 1));
    }
    write_ptr(argv_va + arg_addrs.size() * ptr_size, Capability());

    // --- ELF auxiliary vector: (tag, value) pairs. ---
    // The CheriABI C runtime finds argv/envv via these capabilities
    // rather than via knowledge of the stack layout (paper section 4).
    Capability argv_cap = string_cap(argv_va,
                                     (arg_addrs.size() + 1) * ptr_size);
    Capability envv_cap = string_cap(envv_va,
                                     (env_addrs.size() + 1) * ptr_size);
    struct AuxEnt
    {
        u64 tag;
        Capability val;
    };
    const Capability entry_pcc = proc.regs().pcc;
    std::vector<AuxEnt> aux = {
        {AT_ARGC, Capability::fromAddress(argv.size())},
        {AT_ARGV, argv_cap},
        {AT_ENVC, Capability::fromAddress(envv.size())},
        {AT_ENVV, envv_cap},
        {AT_ENTRY, entry_pcc},
        {AT_TRAMP, proc.trampolineCap},
        {AT_STACKBASE, Capability::fromAddress(stack_va)},
        {AT_NULL, Capability()},
    };
    u64 aux_ent_size = auxEntrySize(cheri ? capSize : 8);
    cursor -= aux.size() * aux_ent_size;
    cursor &= ~u64{15};
    u64 auxv_va = cursor;
    for (size_t i = 0; i < aux.size(); ++i) {
        u64 ent = auxv_va + i * aux_ent_size;
        mustSucceed(proc.mem().write(ent, &aux[i].tag, 8));
        write_ptr(ent + 16, aux[i].val);
    }

    // --- Registers (Figure 1): stack, argv, auxv capabilities. ---
    u64 sp = cursor & ~u64{15};
    if (cheri) {
        proc.stackCap = stack_region.setAddress(sp);
        proc.argvCap = argv_cap;
        proc.envvCap = envv_cap;
        proc.auxvCap = string_cap(auxv_va, aux.size() * aux_ent_size);
    } else {
        proc.stackCap = Capability::fromAddress(sp);
        proc.argvCap = Capability::fromAddress(argv_va);
        proc.envvCap = Capability::fromAddress(envv_va);
        proc.auxvCap = Capability::fromAddress(auxv_va);
    }
    proc.argc = static_cast<int>(argv.size());
    proc.envc = static_cast<int>(envv.size());
    proc.regs().stack() = proc.stackCap;
    proc.regs().c[regArgv] = proc.argvCap;
    if (traceSink) {
        traceSink->derive(DeriveSource::Exec, proc.stackCap);
        traceSink->derive(DeriveSource::Exec, proc.auxvCap);
    }
}

int
Kernel::execve(Process &proc, const SelfObject &program,
               const std::vector<std::string> &argv,
               const std::vector<std::string> &envv)
{
    chargeSyscall(proc, 2);
    // Admission check before tearing anything down: loading an image
    // needs frames for text/data/stack, so probe (and if necessary
    // reclaim toward) one free frame while the old address space is
    // still intact.  Failing here leaves the caller runnable with a
    // clean ENOMEM; failing mid-load would not.
    if (!phys.canAlloc(1, &proc.as())) {
        failNoMem();
        return E_NOMEM;
    }
    // An open revocation epoch belongs to the old address space; abort
    // it before that space is replaced (its proofs are meaningless for
    // the fresh principal).
    abortRevocationEpoch(proc);
    // Replace the address space: a fresh abstract principal.
    proc._as = std::make_unique<AddressSpace>(
        phys, swap, newPrincipal(), cfg.capFormat,
        cfg.aslrSeed ? cfg.aslrSeed + proc.pid() : 0);
    // Re-target the process's access path at the fresh space before
    // any image bytes are loaded.
    proc.mem().bind(*proc._as);
    proc._regs = ThreadRegs{};
    proc._name = program.name;
    if (proc.abi() != Abi::CheriAbi) {
        proc._regs.ddc = proc.as().rederivationRoot();
    } // CheriABI: DDC stays NULL — no ambient authority.

    // Load and link the image (program + needed libraries).
    ProcLinkerEnv env(*this, proc);
    proc.image = linker.link(program, env);
    const LinkedObject &main_obj = proc.image.objects.front();

    // PCC: bounded to the main object's text (paper: values installed
    // in PCC are bounded to shared objects).
    if (proc.abi() == Abi::CheriAbi) {
        Capability pcc = main_obj.textCap;
        auto code = pcc.andPerms(permsCode);
        CHERI_KASSERT(code.ok(),
                      "PCC perms mask must be derivable from textCap");
        proc._regs.pcc = code.value();
    } else {
        proc._regs.pcc = Capability::fromAddress(main_obj.textBase);
    }

    // Signal-return trampoline: read-only, execute-only page.
    u64 tramp_va = proc.as().map(0, pageSize, PROT_READ | PROT_EXEC,
                                 MappingKind::Trampoline, false, false,
                                 "sigtramp");
    CHERI_KASSERT(tramp_va != 0,
                  "sigtramp mapping failed in a fresh address space");
    if (proc.abi() == Abi::CheriAbi) {
        Capability t = proc.as().capForRange(tramp_va, pageSize,
                                             PROT_READ | PROT_EXEC,
                                             false);
        proc.trampolineCap = t;
        if (traceSink)
            traceSink->derive(DeriveSource::Exec, t);
    } else {
        proc.trampolineCap = Capability::fromAddress(tramp_va);
    }

    setupStack(proc, argv, envv);
    return E_OK;
}

} // namespace cheri
