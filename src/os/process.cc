#include "os/process.h"

#include "os/kernel.h"

namespace cheri
{

Process::Process(Kernel &kernel, u64 pid, u64 ppid, Abi abi,
                 std::string name, std::unique_ptr<AddressSpace> as,
                 MachineFeatures features)
    : kern(kernel), _pid(pid), _ppid(ppid), _abi(abi),
      _name(std::move(name)), _as(std::move(as)),
      _cost(abi, features, _as->format()), _mem(*_as)
{
    _mem.setCostModel(&_cost);
    // DDC: the legacy and hybrid ABIs retain an address-space-spanning
    // default data capability; CheriABI sets it to NULL so no access
    // can occur without naming an explicit capability.
    if (abi != Abi::CheriAbi)
        _regs.ddc = _as->rederivationRoot();
}

int
Process::allocFd(OpenFileRef file)
{
    for (size_t i = 0; i < fds.size(); ++i) {
        if (!fds[i]) {
            fds[i] = std::move(file);
            return static_cast<int>(i);
        }
    }
    fds.push_back(std::move(file));
    return static_cast<int>(fds.size() - 1);
}

OpenFileRef
Process::fd(int n) const
{
    if (n < 0 || static_cast<size_t>(n) >= fds.size())
        return nullptr;
    return fds[n];
}

int
Process::closeFd(int n)
{
    if (n < 0 || static_cast<size_t>(n) >= fds.size() || !fds[n])
        return E_BADF;
    VNodeRef node = fds[n]->node;
    fds[n].reset();
    // Last close of a channel end (no other open-file description —
    // dup'd or fork-shared — still references this vnode): flip the
    // closed flag and fire the wake edge for the *opposite* side.
    // Write end gone → readers wake to see EOF; read end gone →
    // writers wake to take EPIPE.  A pty end carries both channels.
    if (node && node.use_count() == 1) {
        if (node->writeCh) {
            node->writeCh->writerClosed = true;
            kern.fireFdEdge(node->writeCh->readWait);
        }
        if (node->readCh) {
            node->readCh->readerClosed = true;
            kern.fireFdEdge(node->readCh->writeWait);
        }
    }
    return E_OK;
}

void
Process::closeAllFds()
{
    for (size_t i = 0; i < fds.size(); ++i) {
        if (fds[i])
            closeFd(static_cast<int>(i));
    }
}

u64
Process::fdCount() const
{
    u64 n = 0;
    for (const auto &f : fds)
        n += f != nullptr;
    return n;
}

void
Process::cloneFdsInto(Process &child) const
{
    child.fds = fds; // shared open-file descriptions, copied table
}

u64
Process::threadCount() const
{
    u64 n = 1; // the running thread...
    for (const ThreadRecord &t : threads) {
        if (t.tid == curThread)
            n -= !t.live; // ...unless it self-exited (zombie)
        else
            n += t.live;
    }
    return n;
}

ThreadRecord *
Process::threadById(u64 tid)
{
    for (ThreadRecord &t : threads) {
        if (t.tid == tid && t.live)
            return &t;
    }
    return nullptr;
}

u64
Process::registerHandler(SigHandler fn)
{
    handlers.push_back(std::move(fn));
    return handlers.size() - 1;
}

const SigHandler *
Process::handlerById(u64 id) const
{
    if (id >= handlers.size())
        return nullptr;
    return &handlers[id];
}

void
Process::raiseSignal(int sig)
{
    if (sig > 0 && sig < numSignals)
        sigPending |= u64{1} << sig;
}

void
Process::exit(int status)
{
    _exited = true;
    _exitStatus = status;
}

void
Process::die(const DeathInfo &info)
{
    _exited = true;
    _exitStatus = 128 + info.signal;
    _death = info;
}

} // namespace cheri
