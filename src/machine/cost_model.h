/**
 * @file
 * Per-ABI execution cost model.
 *
 * The paper benchmarks compiled MIPS vs. pure-capability (CheriABI) code
 * on an in-order, single-issue FPGA core.  Our guest workloads execute as
 * C++ against the capability model, so the instruction streams the CHERI
 * compiler would emit are charged here instead.  Every charge is a small,
 * documented count, and the interesting per-ABI differences are exactly
 * the ones the paper discusses (section 5.2):
 *
 *  - pointers are 16 bytes instead of 8, so pointer-dense data costs
 *    more cache traffic (Figure 4's cycle and L2-miss overheads);
 *  - globals are reached through a capability GOT; with the original
 *    short-immediate CLC each access costs 3 instructions, with the new
 *    large-immediate CLC it costs 1 (the paper's CLC extension, cutting
 *    code size >10% and the initdb overhead from 11% to 6.8%);
 *  - taking the address of a stack object emits a CSetBounds;
 *  - malloc/free bound their results (a few capability manipulations);
 *  - context switches save/restore a register file of capabilities,
 *    twice the width of integer registers;
 *  - legacy-ABI system calls must construct capabilities from integer
 *    pointer arguments inside the kernel, while CheriABI passes
 *    capabilities directly (why `select`, with four pointer arguments,
 *    got *faster* under CheriABI);
 *  - CHERI-MIPS's separate capability register file relieves integer
 *    register pressure, removing spills in tight kernels (why
 *    security-sha got faster).
 *
 * Cycles = instructions (1 IPC ideal) + per-level miss penalties, with
 * instruction fetch streamed through the L1I.
 */

#ifndef CHERI_MACHINE_COST_MODEL_H
#define CHERI_MACHINE_COST_MODEL_H

#include "cap/compression.h"
#include "machine/cache.h"

namespace cheri
{

namespace snap
{
struct Access;
}

/** Process ABIs supported by the kernel (paper section 4). */
enum class Abi
{
    /** Legacy SysV mips64: pointers are 64-bit integers via DDC. */
    Mips64,
    /** Pure-capability CheriABI: every pointer is a capability. */
    CheriAbi,
    /**
     * Hybrid mode: only pointers annotated __capability are
     * capabilities; unannotated pointers remain integers checked
     * against DDC (the CHERI C compiler's other mode — the CheriBSD
     * kernel itself is a hybrid program).
     */
    Hybrid,
};

/** Toggleable hardware/compiler features for ablation benches. */
struct MachineFeatures
{
    /** CLC with enlarged immediate (paper's ISA extension, §5.2). */
    bool largeClcImmediate = true;
    /** AddressSanitizer-style instrumentation of loads/stores. */
    bool asanInstrumentation = false;
};

/** Miss penalties for the two-level hierarchy, in cycles. */
struct CyclePenalties
{
    u64 l2Hit = 10;
    u64 memory = 80;
    /** Software-managed TLB refill (trap + walk), per miss. */
    u64 tlbRefill = 30;
};

class CostModel
{
  public:
    /**
     * @param fmt capability format: the 128-bit compressed format is
     *        the paper's benchmarked configuration; the 256-bit
     *        uncompressed alternative doubles pointer footprint again
     *        (footnote 2 — the reason 128-bit is "a more realistic
     *        candidate for commercial adoption").
     */
    CostModel(Abi abi, MachineFeatures features = {},
              compress::CapFormat fmt = compress::CapFormat::Cap128);

    Abi abi() const { return _abi; }
    const MachineFeatures &features() const { return _features; }
    compress::CapFormat capFormat() const { return _format; }

    /** Size of a pointer in guest memory under this ABI and format. */
    u64
    pointerSize() const
    {
        if (_abi != Abi::CheriAbi)
            return 8;
        return _format == compress::CapFormat::Cap256 ? 32 : 16;
    }

    /** Alignment of a pointer in guest memory under this ABI. */
    u64 pointerAlign() const { return pointerSize(); }

    /** @name Charging interface */
    /// @{
    /** @p n ALU/branch instructions with no memory operand. */
    void alu(u64 n = 1) { fetchAndCount(n); }

    /** Capability-manipulation instructions (CSetBounds, CAndPerm...);
     *  free under mips64 where the compiler emits none. */
    void
    capManip(u64 n = 1)
    {
        if (_abi != Abi::Mips64)
            fetchAndCount(n);
    }

    /** A data load of @p size bytes at guest address @p va. */
    void load(u64 va, u64 size);

    /** A data store of @p size bytes at guest address @p va. */
    void store(u64 va, u64 size);

    /**
     * Access to a global through the GOT entry at @p got_va.  mips64:
     * one ld.  CheriABI: one CLC if the large immediate is available,
     * otherwise a 3-instruction address-materialization sequence.
     */
    void gotLoad(u64 got_va);

    /**
     * Function call/return overhead: frame setup, plus one CSetBounds
     * per address-taken local under CheriABI, plus variadic spill
     * (CheriABI always spills variadics to the stack via a capability).
     */
    void call(u64 sp_va, u64 n_bounded_locals, u64 n_args,
              bool variadic = false);

    /**
     * Register spill/fill pressure: mips64 pays @p mips_spills,
     * CheriABI pays @p cheri_spills (the separate capability register
     * file frees integer registers in pointer-heavy kernels).
     */
    void spills(u64 sp_va, u64 mips_spills, u64 cheri_spills);

    /** Trap + syscall dispatch, with @p n_ptr_args pointer arguments.
     *  See the class comment for the per-ABI asymmetry. */
    void syscall(u64 n_ptr_args);

    /**
     * A kernel/libc word-copy loop moving @p len bytes from @p src_va
     * to @p dst_va: two instructions per 8-byte word plus the cache
     * traffic of both streams.
     */
    void copyLoop(u64 src_va, u64 dst_va, u64 len);

    /** Save/restore one thread's register file. */
    void contextSwitch();

    /**
     * One translation through the software TLB (fed by MemAccess with
     * real hit/miss events): hits are free beyond the access charge
     * already made, misses pay the modelled refill trap.  @p instr
     * selects the iTLB, otherwise the dTLB.
     */
    void
    tlbAccess(bool instr, bool hit)
    {
        if (instr) {
            ++_itlbAccesses;
            if (!hit) {
                ++_itlbMisses;
                _cycles += penalties.tlbRefill;
            }
        } else {
            ++_dtlbAccesses;
            if (!hit) {
                ++_dtlbMisses;
                _cycles += penalties.tlbRefill;
            }
        }
    }
    /// @}

    /** @name Results */
    /// @{
    u64 instructions() const { return _instructions; }
    u64 cycles() const { return _cycles; }
    u64 l2Misses() const { return cacheHier.l2Misses(); }
    u64 l1dMisses() const { return cacheHier.l1dMisses(); }
    /** Static code bytes emitted (tracks the CLC code-size effect). */
    u64 codeBytes() const { return _codeBytes; }
    u64 itlbAccesses() const { return _itlbAccesses; }
    u64 itlbMisses() const { return _itlbMisses; }
    u64 dtlbAccesses() const { return _dtlbAccesses; }
    u64 dtlbMisses() const { return _dtlbMisses; }
    /// @}

    void reset();

    CacheHierarchy &cache() { return cacheHier; }

  private:
    /** Checkpoint/restore preserves cost accounting bit-exactly. */
    friend struct snap::Access;

    /** Fetch @p n instructions through the L1I and count them. */
    void fetchAndCount(u64 n);

    /** Charge the cache outcome of a data access. */
    void dataAccess(u64 va, u64 size, Access kind);

    /** ASan shadow check for an access at @p va. */
    void asanCheck(u64 va);

    Abi _abi;
    MachineFeatures _features;
    compress::CapFormat _format;
    CyclePenalties penalties;
    CacheHierarchy cacheHier;
    u64 _instructions = 0;
    u64 _cycles = 0;
    u64 _codeBytes = 0;
    u64 _itlbAccesses = 0;
    u64 _itlbMisses = 0;
    u64 _dtlbAccesses = 0;
    u64 _dtlbMisses = 0;
    u64 pc = 0x120000000;
    /** Hot-loop code footprint the synthetic PC wraps within. */
    u64 codeFootprint = 16 * 1024;
};

} // namespace cheri

#endif // CHERI_MACHINE_COST_MODEL_H
