file(REMOVE_RECURSE
  "CMakeFiles/cheri_libc.dir/libc/crt.cc.o"
  "CMakeFiles/cheri_libc.dir/libc/crt.cc.o.d"
  "CMakeFiles/cheri_libc.dir/libc/cstring.cc.o"
  "CMakeFiles/cheri_libc.dir/libc/cstring.cc.o.d"
  "CMakeFiles/cheri_libc.dir/libc/malloc.cc.o"
  "CMakeFiles/cheri_libc.dir/libc/malloc.cc.o.d"
  "CMakeFiles/cheri_libc.dir/libc/revoke.cc.o"
  "CMakeFiles/cheri_libc.dir/libc/revoke.cc.o.d"
  "CMakeFiles/cheri_libc.dir/libc/sealing.cc.o"
  "CMakeFiles/cheri_libc.dir/libc/sealing.cc.o.d"
  "CMakeFiles/cheri_libc.dir/libc/tls.cc.o"
  "CMakeFiles/cheri_libc.dir/libc/tls.cc.o.d"
  "libcheri_libc.a"
  "libcheri_libc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_libc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
