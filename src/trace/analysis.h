/**
 * @file
 * Abstract-capability reconstruction and granularity analysis.
 *
 * Reproduces the paper's section 5.5: record every capability derived
 * during a run, grouped by source, and build the cumulative
 * distribution of bounds sizes (Figure 5).  The headline observations
 * to check against the paper: no capability grants more than a few MiB,
 * ~90% grant less than 1 KiB, stack and malloc capabilities are tightly
 * bounded, and the few broad capabilities all originate in the kernel
 * (startup mappings and syscall returns).
 */

#ifndef CHERI_TRACE_ANALYSIS_H
#define CHERI_TRACE_ANALYSIS_H

#include <array>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace cheri
{

/** Recording TraceSink: stores (source, bounds-length) pairs. */
class CapTraceRecorder : public TraceSink
{
  public:
    struct Event
    {
        DeriveSource source;
        u64 length;
        u64 base;
    };

    void
    derive(DeriveSource source, const Capability &cap) override
    {
        events.push_back({source, cap.length(), cap.base()});
    }

    const std::vector<Event> &all() const { return events; }
    u64 count() const { return events.size(); }
    void clear() { events.clear(); }

  private:
    std::vector<Event> events;
};

/** Cumulative capability counts by size, per source (Figure 5). */
class GranularityCdf
{
  public:
    /** Size buckets: powers of two from 2^2 to 2^maxShift. */
    static constexpr unsigned minShift = 2;
    static constexpr unsigned maxShift = 26;

    explicit GranularityCdf(const std::vector<CapTraceRecorder::Event> &ev);

    /** Cumulative count of capabilities from @p src with length <=
     *  2^shift. */
    u64 cumulative(DeriveSource src, unsigned shift) const;

    /** Cumulative count over all sources. */
    u64 cumulativeAll(unsigned shift) const;

    /** Total events from @p src. */
    u64 total(DeriveSource src) const;
    u64 totalAll() const;

    /** Largest bounds length seen for @p src (0 if none). */
    u64 maxLength(DeriveSource src) const;
    u64 maxLengthAll() const;

    /** Fraction of all capabilities with length <= @p size. */
    double fractionBelow(u64 size) const;

    /** Render the CDF as an aligned text table (one row per bucket). */
    std::string formatTable() const;

  private:
    std::array<std::vector<u64>, numDeriveSources> lengthsBySource;
};

} // namespace cheri

#endif // CHERI_TRACE_ANALYSIS_H
