#include "mem/phys_mem.h"

#include <cassert>

namespace cheri
{

void
Frame::copyFrom(const Frame &other)
{
    data = other.data;
    tags = other.tags;
    caps = other.caps;
}

void
Frame::read(u64 off, void *buf, u64 len) const
{
    assert(off + len <= pageSize);
    std::memcpy(buf, data.data() + off, len);
}

void
Frame::write(u64 off, const void *buf, u64 len)
{
    assert(off + len <= pageSize);
    std::memcpy(data.data() + off, buf, len);
    // A data store invalidates every capability granule it overlaps.
    u64 first = off / capSize;
    u64 last = (off + len - 1) / capSize;
    for (u64 g = first; g <= last; ++g)
        tags.reset(g);
}

void
Frame::clear()
{
    data.fill(0);
    tags.reset();
}

Capability
Frame::readCap(u64 off) const
{
    assert(off % capSize == 0 && off + capSize <= pageSize);
    u64 g = off / capSize;
    if (tags.test(g))
        return caps[g];
    std::array<u8, capSize> raw;
    std::memcpy(raw.data(), data.data() + off, capSize);
    return Capability::fromBytes(raw);
}

void
Frame::writeCap(u64 off, const Capability &cap)
{
    assert(off % capSize == 0 && off + capSize <= pageSize);
    u64 g = off / capSize;
    auto raw = cap.toBytes();
    std::memcpy(data.data() + off, raw.data(), capSize);
    tags.set(g, cap.tag());
    caps[g] = cap;
}

FrameRef
PhysMem::allocFrame()
{
    ++allocated;
    auto counter = live;
    ++*counter;
    return FrameRef(new Frame(), [counter](Frame *f) {
        --*counter;
        delete f;
    });
}

u64
PhysMem::liveFrames() const
{
    return *live;
}

} // namespace cheri
