/**
 * @file
 * A tiny assembler for the MiniCHERI ISA: builder methods, labels with
 * back-patching, and image emission into guest memory.
 */

#ifndef CHERI_ISA_ASSEMBLER_H
#define CHERI_ISA_ASSEMBLER_H

#include <map>
#include <string>
#include <vector>

#include "isa/insn.h"
#include "mem/vm.h"

namespace cheri::isa
{

class Assembler
{
  public:
    /** @name Instruction builders (appended in order) */
    /// @{
    Assembler &halt() { return emit({Op::Halt}); }
    Assembler &nop() { return emit({Op::Nop}); }
    Assembler &li(u8 rd, s64 imm) { return emit({Op::Li, rd, 0, 0, imm}); }
    Assembler &move(u8 rd, u8 rs) { return emit({Op::Move, rd, rs}); }
    Assembler &add(u8 rd, u8 rs, u8 rt)
    {
        return emit({Op::Add, rd, rs, rt});
    }
    Assembler &addi(u8 rd, u8 rs, s64 imm)
    {
        return emit({Op::Addi, rd, rs, 0, imm});
    }
    Assembler &sub(u8 rd, u8 rs, u8 rt)
    {
        return emit({Op::Sub, rd, rs, rt});
    }
    Assembler &mul(u8 rd, u8 rs, u8 rt)
    {
        return emit({Op::Mul, rd, rs, rt});
    }
    Assembler &and_(u8 rd, u8 rs, u8 rt)
    {
        return emit({Op::And, rd, rs, rt});
    }
    Assembler &or_(u8 rd, u8 rs, u8 rt)
    {
        return emit({Op::Or, rd, rs, rt});
    }
    Assembler &xor_(u8 rd, u8 rs, u8 rt)
    {
        return emit({Op::Xor, rd, rs, rt});
    }
    Assembler &sll(u8 rd, u8 rs, s64 imm)
    {
        return emit({Op::Sll, rd, rs, 0, imm});
    }
    Assembler &srl(u8 rd, u8 rs, s64 imm)
    {
        return emit({Op::Srl, rd, rs, 0, imm});
    }
    Assembler &slt(u8 rd, u8 rs, u8 rt)
    {
        return emit({Op::Slt, rd, rs, rt});
    }

    Assembler &beq(u8 rs, u8 rt, const std::string &label)
    {
        return emitBranch({Op::Beq, 0, rs, rt}, label);
    }
    Assembler &bne(u8 rs, u8 rt, const std::string &label)
    {
        return emitBranch({Op::Bne, 0, rs, rt}, label);
    }
    Assembler &j(const std::string &label)
    {
        return emitBranch({Op::J}, label);
    }

    Assembler &lb(u8 rd, u8 rs, s64 imm)
    {
        return emit({Op::Lb, rd, rs, 0, imm});
    }
    Assembler &ld(u8 rd, u8 rs, s64 imm)
    {
        return emit({Op::Ld, rd, rs, 0, imm});
    }
    Assembler &sb(u8 rd, u8 rs, s64 imm)
    {
        return emit({Op::Sb, rd, rs, 0, imm});
    }
    Assembler &sd(u8 rd, u8 rs, s64 imm)
    {
        return emit({Op::Sd, rd, rs, 0, imm});
    }

    Assembler &cgettag(u8 rd, u8 cb)
    {
        return emit({Op::CGetTag, rd, cb});
    }
    Assembler &cgetlen(u8 rd, u8 cb)
    {
        return emit({Op::CGetLen, rd, cb});
    }
    Assembler &cgetaddr(u8 rd, u8 cb)
    {
        return emit({Op::CGetAddr, rd, cb});
    }
    Assembler &cgetperm(u8 rd, u8 cb)
    {
        return emit({Op::CGetPerm, rd, cb});
    }
    Assembler &cmove(u8 cd, u8 cb) { return emit({Op::CMove, cd, cb}); }
    Assembler &cgetddc(u8 cd) { return emit({Op::CGetDDC, cd}); }
    Assembler &cgetpcc(u8 cd) { return emit({Op::CGetPCC, cd}); }
    Assembler &cincoffset(u8 cd, u8 cb, u8 rt)
    {
        return emit({Op::CIncOffset, cd, cb, rt});
    }
    Assembler &cincoffsetimm(u8 cd, u8 cb, s64 imm)
    {
        return emit({Op::CIncOffsetImm, cd, cb, 0, imm});
    }
    Assembler &csetaddr(u8 cd, u8 cb, u8 rt)
    {
        return emit({Op::CSetAddr, cd, cb, rt});
    }
    Assembler &csetbounds(u8 cd, u8 cb, u8 rt)
    {
        return emit({Op::CSetBounds, cd, cb, rt});
    }
    Assembler &csetboundsimm(u8 cd, u8 cb, s64 imm)
    {
        return emit({Op::CSetBoundsImm, cd, cb, 0, imm});
    }
    Assembler &candperm(u8 cd, u8 cb, u8 rt)
    {
        return emit({Op::CAndPerm, cd, cb, rt});
    }
    Assembler &ccleartag(u8 cd, u8 cb)
    {
        return emit({Op::CClearTag, cd, cb});
    }
    Assembler &cseal(u8 cd, u8 cb, u8 ct)
    {
        return emit({Op::CSeal, cd, cb, ct});
    }
    Assembler &cunseal(u8 cd, u8 cb, u8 ct)
    {
        return emit({Op::CUnseal, cd, cb, ct});
    }

    Assembler &clb(u8 rd, u8 cb, s64 imm)
    {
        return emit({Op::Clb, rd, cb, 0, imm});
    }
    Assembler &cld(u8 rd, u8 cb, s64 imm)
    {
        return emit({Op::Cld, rd, cb, 0, imm});
    }
    Assembler &csb(u8 rd, u8 cb, s64 imm)
    {
        return emit({Op::Csb, rd, cb, 0, imm});
    }
    Assembler &csd(u8 rd, u8 cb, s64 imm)
    {
        return emit({Op::Csd, rd, cb, 0, imm});
    }
    Assembler &clc(u8 cd, u8 cb, s64 imm)
    {
        return emit({Op::Clc, cd, cb, 0, imm});
    }
    Assembler &csc(u8 cd, u8 cb, s64 imm)
    {
        return emit({Op::Csc, cd, cb, 0, imm});
    }
    Assembler &cjr(u8 cb) { return emit({Op::Cjr, 0, cb}); }
    Assembler &syscall(s64 code)
    {
        return emit({Op::Syscall, 0, 0, 0, code});
    }
    /// @}

    /** Bind @p name to the next instruction's position. */
    Assembler &label(const std::string &name);

    /** Number of instructions emitted so far. */
    u64 size() const { return insns.size(); }

    /**
     * Resolve labels and return the encoded image.  Throws
     * std::runtime_error on undefined labels.
     */
    std::vector<u64> assemble() const;

    /**
     * Assemble into guest memory at @p va (must be mapped writable by
     * the kernel-side writer).  Returns the number of bytes written.
     */
    u64 writeTo(AddressSpace &as, u64 va) const;

  private:
    Assembler &
    emit(Insn i)
    {
        insns.push_back(i);
        branchLabels.emplace_back();
        return *this;
    }

    Assembler &
    emitBranch(Insn i, const std::string &target)
    {
        insns.push_back(i);
        branchLabels.push_back(target);
        return *this;
    }

    std::vector<Insn> insns;
    std::vector<std::string> branchLabels; // parallel; "" = none
    std::map<std::string, u64> labels;
};

} // namespace cheri::isa

#endif // CHERI_ISA_ASSEMBLER_H
