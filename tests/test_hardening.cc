/**
 * @file
 * Kernel-hardening tests: structured panic + flight recorder, the
 * deadlock watchdog, and memory-corruption machine-check degradation.
 *
 * The contract under test:
 *
 *  - a CHERI_KASSERT failure never aborts the host: the kernel captures
 *    the flight-recorder ring into a JSON panic report, auto-emits a
 *    CHRIIMG1 snapshot (restorable as a postmortem), and transactionally
 *    resets to an empty, usable baseline;
 *  - the deadlock watchdog classifies true wait-for cycles (pipe FD
 *    edges, wait4 parent->child, ev_wait posters) at scheduler idle,
 *    and under DeadlockPolicy::Kill breaks them by killing one
 *    deterministically chosen victim whose parent's wait4 reap reports
 *    E_DEADLK — while host-wakeable parks never trip it;
 *  - injected memory corruption (tag/data bit flips) is always detected
 *    and degraded to a counted CapFault::MachineCheck, never surfacing
 *    as a forged capability;
 *  - the kill decision routes through the fault-injection tap, so a
 *    recorded deadlock kill replays bit-for-bit.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diff_fuzzer.h"
#include "check/invariants.h"
#include "check/replay.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "obs/metrics.h"
#include "os/kernel.h"
#include "os/sched/sched.h"
#include "os/snapshot/snapshot.h"
#include "os/sys_invoke.h"
#include "test_util.h"

namespace cheri
{
namespace
{

/** Spawn + execve a process with an RWX code page and a data page. */
struct SchedGuest
{
    Process *proc = nullptr;
    u64 code = 0;
    u64 data = 0;
};

SchedGuest
makeGuest(Kernel &kern, Abi abi, const char *name)
{
    SelfObject prog;
    prog.name = name;
    Process *proc = kern.spawn(abi, name);
    if (kern.execve(*proc, prog, {name}, {}) != E_OK)
        throw std::runtime_error("execve failed");
    u64 code = proc->as().map(0, pageSize,
                              PROT_READ | PROT_WRITE | PROT_EXEC,
                              MappingKind::Text);
    u64 data = proc->as().map(0, pageSize, PROT_READ | PROT_WRITE,
                              MappingKind::Data);
    return {proc, code, data};
}

sched::ExecContext &
admitProgram(sched::Scheduler &s, SchedGuest &g, isa::Assembler &prog)
{
    prog.writeTo(g.proc->as(), g.code);
    sched::ExecContext &cx = s.context(*g.proc);
    if (g.proc->abi() == Abi::CheriAbi) {
        cx.interp->setEntry(g.proc->as()
                                .capForRange(g.code, pageSize,
                                             PROT_READ | PROT_EXEC,
                                             false)
                                .setAddress(g.code));
    } else {
        cx.interp->setEntry(Capability::fromAddress(g.code));
    }
    cx.stepLimit = 65536;
    s.ready(cx);
    return cx;
}

/** Point a guest's buffer argument register at its own data page. */
void
presetBufArg(SchedGuest &g, sched::ExecContext &cx)
{
    cx.interp->regs().x[5] = g.data;
    cx.interp->regs().c[5] =
        g.proc->as()
            .capForRange(g.data, pageSize, PROT_READ | PROT_WRITE,
                         false)
            .setAddress(g.data);
}

/** Count flight-recorder events of @p kind. */
u64
countEvents(const Kernel &kern, panic::EventKind kind)
{
    u64 n = 0;
    for (const panic::Event &e : kern.flightRecorder().entries()) {
        if (e.kind == kind)
            ++n;
    }
    return n;
}

/**
 * The planted cross-pipe deadlock: guest A holds pipe1's read end and
 * pipe2's write end, guest B the converse, and both block reading —
 * each waiting on a write only the other (itself stuck) could make.
 * Returns the two read contexts; pids are (A, B) in spawn order.
 */
struct PipeCycle
{
    SchedGuest a, b;
    sched::ExecContext *acx = nullptr;
    sched::ExecContext *bcx = nullptr;
};

PipeCycle
plantPipeCycle(Kernel &kern, sched::Scheduler &s)
{
    PipeCycle pc;
    pc.a = makeGuest(kern, Abi::Mips64, "cycle-a");
    pc.b = makeGuest(kern, Abi::Mips64, "cycle-b");

    auto pipe1 = Vfs::makePipe();
    auto pipe2 = Vfs::makePipe();
    auto openEnd = [](const VNodeRef &node, u32 flags) {
        auto of = std::make_shared<OpenFile>();
        of->node = node;
        of->flags = flags;
        return of;
    };
    // A: read pipe1, hold pipe2's only write end.
    int a_rfd = pc.a.proc->allocFd(openEnd(pipe1.first, O_RDONLY));
    pc.a.proc->allocFd(openEnd(pipe2.second, O_WRONLY));
    // B: read pipe2, hold pipe1's only write end.
    int b_rfd = pc.b.proc->allocFd(openEnd(pipe2.first, O_RDONLY));
    pc.b.proc->allocFd(openEnd(pipe1.second, O_WRONLY));

    auto blockReading = [&](SchedGuest &g, int rfd) {
        isa::Assembler p;
        p.li(4, rfd)
            .li(6, 16)
            .syscall(static_cast<s64>(SysNum::Read))
            .halt();
        sched::ExecContext &cx = admitProgram(s, g, p);
        presetBufArg(g, cx);
        return &cx;
    };
    pc.acx = blockReading(pc.a, a_rfd);
    pc.bcx = blockReading(pc.b, b_rfd);
    return pc;
}

TEST(HardeningWatchdog, PipeCycleDetectedUnderReportPolicy)
{
    obs::Metrics metrics; // must outlive the kernel
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    cfg.deadlockPolicy = DeadlockPolicy::Report;
    Kernel kern(cfg);
    kern.setMetrics(&metrics);
    sched::Scheduler &s = sched::schedulerFor(kern);

    PipeCycle pc = plantPipeCycle(kern, s);
    kern.runUntilIdle();

    // Detected and recorded, but nobody died and nobody ran again.
    EXPECT_EQ(kern.hardeningStats().deadlocksDetected, 1u);
    EXPECT_EQ(kern.hardeningStats().deadlocksKilled, 0u);
    EXPECT_EQ(metrics.hardening().deadlocksDetected, 1u);
    EXPECT_FALSE(pc.a.proc->exited());
    EXPECT_FALSE(pc.b.proc->exited());
    EXPECT_EQ(pc.acx->state, sched::ExecContext::State::Blocked);
    EXPECT_EQ(pc.bcx->state, sched::ExecContext::State::Blocked);
    EXPECT_GE(countEvents(kern, panic::EventKind::Watchdog), 1u);

    check::Report rep = check::Invariants::check(kern);
    EXPECT_TRUE(rep.violations.empty())
        << rep.violations.front().detail;
}

TEST(HardeningWatchdog, PipeCycleKillBreaksTheCycle)
{
    obs::Metrics metrics; // must outlive the kernel
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    cfg.deadlockPolicy = DeadlockPolicy::Kill;
    Kernel kern(cfg);
    kern.setMetrics(&metrics);
    sched::Scheduler &s = sched::schedulerFor(kern);

    PipeCycle pc = plantPipeCycle(kern, s);
    kern.runUntilIdle();

    EXPECT_EQ(kern.hardeningStats().deadlocksDetected, 1u);
    EXPECT_EQ(kern.hardeningStats().deadlocksKilled, 1u);

    // Equal footprints, neither in wait4: the victim tiebreak is the
    // higher pid — B.  Its death closes pipe1's only write end, so A's
    // read wakes with EOF and runs to completion.
    EXPECT_TRUE(pc.b.proc->exited());
    ASSERT_TRUE(pc.b.proc->death().has_value());
    EXPECT_TRUE(pc.b.proc->death()->deadlock);
    EXPECT_EQ(pc.b.proc->death()->signal, SIG_KILL);

    ASSERT_EQ(pc.acx->last.status, isa::InterpResult::Status::Halted);
    EXPECT_EQ(pc.acx->interp->regs().x[regSysErr], 0u);
    EXPECT_EQ(pc.acx->interp->regs().x[regRetVal], 0u) << "EOF read";

    check::Report rep = check::Invariants::check(kern);
    EXPECT_TRUE(rep.violations.empty())
        << rep.violations.front().detail;
}

TEST(HardeningWatchdog, Wait4EvWaitCycleKillSurfacesEdeadlk)
{
    obs::Metrics metrics; // must outlive the kernel
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    cfg.deadlockPolicy = DeadlockPolicy::Kill;
    Kernel kern(cfg);
    kern.setMetrics(&metrics);
    sched::Scheduler &s = sched::schedulerFor(kern);
    SchedGuest g = makeGuest(kern, Abi::Mips64, "wait4-dl");

    // Parent wait4()s its forked child; the child ev_wait()s for a
    // post that no capable process will ever make.  The watchdog must
    // pick the child (the wait-for leaf), letting the parent reap it —
    // as E_DEADLK, not a normal exit.
    isa::Assembler a;
    a.syscall(static_cast<s64>(SysNum::Fork))
        .bne(3, 0, "parent")
        .syscall(static_cast<s64>(SysNum::EvWait))
        .halt()
        .label("parent")
        .move(4, 3) // wait4 pid filter = the child
        .move(9, 3) // keep the child pid for the assertions
        .syscall(static_cast<s64>(SysNum::Wait4))
        .halt();
    sched::ExecContext &cx = admitProgram(s, g, a);
    kern.runUntilIdle();

    ASSERT_EQ(cx.last.status, isa::InterpResult::Status::Halted);
    const ThreadRegs &r = cx.interp->regs();
    u64 child = r.x[9];
    ASSERT_NE(child, 0u);
    // The reap surfaced the watchdog kill as E_DEADLK...
    EXPECT_EQ(r.x[regSysErr], 1u);
    EXPECT_EQ(r.x[regRetVal], static_cast<u64>(E_DEADLK));
    // ...and the child is gone (reaped), not a lingering zombie.
    EXPECT_EQ(kern.findProcess(child), nullptr);
    EXPECT_FALSE(g.proc->exited());
    EXPECT_EQ(kern.hardeningStats().deadlocksKilled, 1u);

    check::Report rep = check::Invariants::check(kern);
    EXPECT_TRUE(rep.violations.empty())
        << rep.violations.front().detail;
}

TEST(HardeningWatchdog, HostWakeableParkDoesNotTrip)
{
    obs::Metrics metrics; // must outlive the kernel
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    cfg.deadlockPolicy = DeadlockPolicy::Kill;
    Kernel kern(cfg);
    kern.setMetrics(&metrics);
    sched::Scheduler &s = sched::schedulerFor(kern);

    // One guest parks in ev_wait — but a host-driven process (no
    // scheduler context at all) is alive and could ev_post at any
    // time, so this is a wakeable park, not a deadlock.
    SchedGuest waiter = makeGuest(kern, Abi::Mips64, "ev-waiter");
    Process *poster = kern.spawn(Abi::Mips64, "host-poster");
    SelfObject prog;
    prog.name = "host-poster";
    ASSERT_EQ(kern.execve(*poster, prog, {"host-poster"}, {}), E_OK);

    isa::Assembler a;
    a.syscall(static_cast<s64>(SysNum::EvWait)).halt();
    sched::ExecContext &cx = admitProgram(s, waiter, a);
    kern.runUntilIdle();

    // Watchdog stayed quiet; the waiter is still parked.
    EXPECT_EQ(kern.hardeningStats().deadlocksDetected, 0u);
    EXPECT_EQ(kern.hardeningStats().deadlocksKilled, 0u);
    EXPECT_EQ(cx.state, sched::ExecContext::State::Blocked);
    EXPECT_FALSE(waiter.proc->exited());

    // The host-driven post wakes it and it runs to completion.
    auto rr = sysInvoke(kern, *poster, SysNum::EvPost,
                        {SysArg::i(waiter.proc->pid())});
    ASSERT_FALSE(rr.res.failed());
    kern.runUntilIdle();
    EXPECT_EQ(cx.last.status, isa::InterpResult::Status::Halted);
    EXPECT_EQ(kern.hardeningStats().deadlocksDetected, 0u);
}

TEST(HardeningWatchdog, KillDecisionReplaysBitForBit)
{
    // The kill decision flows through the FaultPoint::DeadlockKill
    // tap: record one planted-cycle run, then replay it — the same
    // victim must die from the substituted decision, zero divergences.
    auto runCycle = [](check::ReplaySession *session) {
        KernelConfig cfg;
        cfg.timeSliceSteps = 32;
        cfg.deadlockPolicy = DeadlockPolicy::Kill;
        Kernel kern(cfg);
        kern.faultInjector().setTap(session);
        sched::Scheduler &s = sched::schedulerFor(kern);
        PipeCycle pc = plantPipeCycle(kern, s);
        kern.runUntilIdle();
        u64 victim = pc.b.proc->exited() ? pc.b.proc->pid()
                                         : (pc.a.proc->exited()
                                                ? pc.a.proc->pid()
                                                : 0);
        kern.faultInjector().setTap(nullptr);
        return victim;
    };

    check::ReplaySession rec(check::ReplaySession::Mode::Record);
    u64 victim1 = runCycle(&rec);
    ASSERT_NE(victim1, 0u);
    rec.finish();
    std::vector<u8> log = rec.serialize(check::FuzzOptions{});

    check::ReplaySession rep(check::ReplaySession::Mode::Replay);
    ASSERT_TRUE(rep.load(log));
    u64 victim2 = runCycle(&rep);
    rep.finish();
    EXPECT_EQ(victim1, victim2);
    EXPECT_EQ(rep.divergenceCount(), 0u) << rep.firstDivergence();
}

TEST(HardeningCorruption, TagFlipMachineChecksAndNeverForgesACap)
{
    obs::Metrics metrics; // must outlive the kernel
    Kernel kern{KernelConfig{}};
    kern.setMetrics(&metrics);
    SchedGuest g = makeGuest(kern, Abi::CheriAbi, "tagflip");
    Process &proc = *g.proc;

    Capability c = proc.as().capForRange(g.data, pageSize,
                                         PROT_READ | PROT_WRITE, false);
    ASSERT_TRUE(c.tag());
    ASSERT_FALSE(proc.mem().writeCap(g.data, c).has_value());

    // The very next tagged capability load is corrupted: detection
    // machine-checks the load instead of handing out a flipped cap.
    kern.faultInjector().failAfter(FaultPoint::TagBitFlip, 1);
    Result<Capability> r = proc.mem().readCap(g.data);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.fault(), CapFault::MachineCheck);
    EXPECT_EQ(kern.hardeningStats().machineChecks, 1u);
    EXPECT_EQ(metrics.hardening().machineChecks, 1u);
    EXPECT_GE(countEvents(kern, panic::EventKind::MachineCheck), 1u);

    // The corrupted granule's tag is gone for good: re-reading yields
    // an untagged pattern, never a usable (forged) capability.
    Result<Capability> r2 = proc.mem().readCap(g.data);
    ASSERT_TRUE(r2.ok());
    EXPECT_FALSE(r2.value().tag());

    // Data-line flips degrade the same way on plain loads.
    kern.faultInjector().failAfter(FaultPoint::DataBitFlip, 1);
    u64 word = 0;
    CapCheck cc = proc.mem().read(g.data + 64, &word, 8);
    ASSERT_TRUE(cc.has_value());
    EXPECT_EQ(*cc, CapFault::MachineCheck);
    EXPECT_EQ(kern.hardeningStats().machineChecks, 2u);

    // The oracle's containment rule agrees: every injected corruption
    // is accounted for by a machine check.
    check::Report rep = check::Invariants::check(kern);
    EXPECT_TRUE(rep.violations.empty())
        << rep.violations.front().detail;
}

TEST(HardeningCorruption, SwappedTagMetadataFlipMachineChecks)
{
    obs::Metrics metrics; // must outlive the kernel
    Kernel kern{KernelConfig{}};
    kern.setMetrics(&metrics);
    SchedGuest g = makeGuest(kern, Abi::CheriAbi, "swapflip");
    Process &proc = *g.proc;

    Capability c = proc.as().capForRange(g.data, pageSize,
                                         PROT_READ | PROT_WRITE, false);
    ASSERT_FALSE(proc.mem().writeCap(g.data, c).has_value());
    ASSERT_TRUE(proc.as().swapOutPage(g.data));

    // Corrupt the slot's tag metadata under the swap-in: the load that
    // faulted the page back machine-checks instead of reviving a
    // corrupted capability.
    kern.faultInjector().failAfter(FaultPoint::TagBitFlip, 1);
    Result<Capability> r = proc.mem().readCap(g.data);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.fault(), CapFault::MachineCheck);
    EXPECT_GE(kern.hardeningStats().machineChecks, 1u);

    check::Report rep = check::Invariants::check(kern);
    EXPECT_TRUE(rep.violations.empty())
        << rep.violations.front().detail;
}

TEST(HardeningPanic, KassertCapturesReportImageAndResets)
{
    obs::Metrics metrics; // must outlive the kernels
    test::GuestSystem sys(Abi::CheriAbi);
    Kernel &kern = sys.kern;
    kern.setMetrics(&metrics);
    snap::installPanicSnapshotHook(kern);

    // Drive a few real syscalls so the flight recorder has a trail.
    // Capture the pid now: panicReset destroys the process table, so
    // sys.proc dangles once the planted panic fires.
    const u64 oldPid = sys.proc->pid();
    EXPECT_EQ(sys.ctx->getpid(), static_cast<s64>(oldPid));
    GuestPtr buf = sys.ctx->mmap(pageSize);
    ASSERT_NE(buf.addr(), 0u);

    kern.plantPanicAtDispatch(1);
    auto rr = sysInvoke(kern, *sys.proc, SysNum::Getpid, {});
    // The panic unwound to dispatch's catch site: the syscall failed
    // cleanly (E_FAULT), the host did not abort.
    ASSERT_TRUE(rr.res.failed());
    EXPECT_EQ(rr.res.error, E_FAULT);

    // Captured artifacts: structured report + restorable image.
    ASSERT_TRUE(kern.panicked());
    const std::string &report = kern.panicReportJson();
    EXPECT_NE(report.find("cheri.panic.v1"), std::string::npos);
    EXPECT_NE(report.find("planted dispatch panic"), std::string::npos);
    EXPECT_NE(report.find("\"ring\""), std::string::npos);
    EXPECT_NE(report.find("\"syscall\""), std::string::npos);
    ASSERT_FALSE(kern.panicImage().empty());
    EXPECT_EQ(kern.hardeningStats().panics, 1u);
    EXPECT_EQ(metrics.hardening().panics, 1u);

    // The reset kernel is empty but fully usable: fresh processes
    // spawn, dispatch, and satisfy the whole-system oracle.
    EXPECT_EQ(kern.findProcess(oldPid), nullptr);
    Process *fresh = kern.spawn(Abi::CheriAbi, "after-panic");
    ASSERT_NE(fresh, nullptr);
    SelfObject prog = test::trivialProgram();
    ASSERT_EQ(kern.execve(*fresh, prog, {"after"}, {}), E_OK);
    auto pid = sysInvoke(kern, *fresh, SysNum::Getpid, {});
    EXPECT_FALSE(pid.res.failed());
    check::Report rep = check::Invariants::check(kern);
    EXPECT_TRUE(rep.violations.empty())
        << rep.violations.front().detail;

    // Postmortem: the panic image restores into a second kernel that
    // holds the pre-panic state and passes the invariant oracle.
    obs::Metrics m2;
    Kernel k2{KernelConfig{}};
    k2.setMetrics(&m2);
    std::string err;
    ASSERT_TRUE(snap::restore(k2, kern.panicImage(), &err)) << err;
    Process *restored = k2.findProcess(1);
    ASSERT_NE(restored, nullptr);
    EXPECT_FALSE(restored->exited());
    check::Report rep2 = check::Invariants::check(k2);
    EXPECT_TRUE(rep2.violations.empty())
        << rep2.violations.front().detail;
}

TEST(HardeningPanic, SchedulerDrainAbsorbsPanicAndStaysUsable)
{
    obs::Metrics metrics; // must outlive the kernel
    KernelConfig cfg;
    cfg.timeSliceSteps = 32;
    Kernel kern(cfg);
    kern.setMetrics(&metrics);
    snap::installPanicSnapshotHook(kern);
    sched::Scheduler &s = sched::schedulerFor(kern);

    // Two CPU-bound guests with syscalls; the 3rd dispatch panics
    // mid-drain.  The scheduler's catch site must absorb it.
    for (int i = 0; i < 2; ++i) {
        SchedGuest g = makeGuest(kern, Abi::Mips64, "drain-guest");
        isa::Assembler a;
        a.syscall(static_cast<s64>(SysNum::Getpid))
            .syscall(static_cast<s64>(SysNum::Getpid))
            .halt();
        admitProgram(s, g, a);
    }
    kern.plantPanicAtDispatch(3);
    kern.runUntilIdle();

    EXPECT_TRUE(kern.panicked());
    EXPECT_EQ(kern.hardeningStats().panics, 1u);
    ASSERT_FALSE(kern.panicImage().empty());

    // The drained-and-reset system schedules fresh work normally.
    SchedGuest fresh = makeGuest(kern, Abi::Mips64, "after");
    isa::Assembler a;
    a.syscall(static_cast<s64>(SysNum::Getpid)).halt();
    sched::ExecContext &cx = admitProgram(s, fresh, a);
    kern.runUntilIdle();
    EXPECT_EQ(cx.last.status, isa::InterpResult::Status::Halted);
    check::Report rep = check::Invariants::check(kern);
    EXPECT_TRUE(rep.violations.empty())
        << rep.violations.front().detail;
}

TEST(HardeningRecorder, RingKeepsLastEventsInOrder)
{
    KernelConfig cfg;
    cfg.flightRecorderDepth = 8;
    test::GuestSystem sys(Abi::Mips64, cfg);

    for (int i = 0; i < 20; ++i)
        sys.ctx->getpid();

    const panic::FlightRecorder &fr = sys.kern.flightRecorder();
    EXPECT_GE(fr.eventsRecorded(), 20u);
    ASSERT_EQ(fr.size(), 8u);
    std::vector<panic::Event> evs = fr.entries();
    // Oldest-first, strictly ordered, and all of them syscalls from
    // the recent window.
    for (size_t i = 1; i < evs.size(); ++i)
        EXPECT_LT(evs[i - 1].seq, evs[i].seq);
    for (const panic::Event &e : evs)
        EXPECT_EQ(e.kind, panic::EventKind::Syscall);

    // Depth 0 degrades to count-only (no storage, no recording cost).
    KernelConfig off;
    off.flightRecorderDepth = 0;
    test::GuestSystem quiet(Abi::Mips64, off);
    quiet.ctx->getpid();
    EXPECT_EQ(quiet.kern.flightRecorder().size(), 0u);
    EXPECT_GE(quiet.kern.flightRecorder().eventsRecorded(), 1u);
}

} // namespace
} // namespace cheri
