/**
 * @file
 * Whole-system invariant oracle.
 *
 * Invariants::check recomputes, from first principles, the global
 * properties the kernel is supposed to maintain across any interleaving
 * of syscalls, faults, COW traffic, and paging, and reports every
 * discrepancy.  It is designed to be invoked at any syscall or trap
 * boundary (see Kernel::setCheckHook) — the points where the system is
 * quiescent — and is read-only: it never walks page tables (which would
 * service faults and perturb LRU state), only inspects them.
 *
 * The invariant list (also documented in DESIGN.md, "Checking layer"):
 *
 *  1. Capability representability: every tagged capability — in
 *     registers, thread contexts, startup slots, and tagged memory —
 *     has bounds that CHERI-Concentrate re-decompression reproduces
 *     exactly for its format.
 *  2. Capability containment: every tagged data capability lies within
 *     its process's rederivation root in bounds and (for memory caps)
 *     permissions.  Sealing authorities (PERM_SEAL/PERM_UNSEAL) are
 *     exempt: they cover otype space, not the address space.
 *  3. Monotonic derivation: every tagged, unsealed memory capability
 *     can be rebuilt verbatim from the process root via CBuildCap —
 *     i.e. it could have been legitimately derived.
 *  4. Frame ownership: a frame referenced by more than one holder
 *     (PTE or SysV segment) is so only via COW or deliberate sharing;
 *     shared_ptr use counts equal the holders the oracle can see; the
 *     set of distinct frames equals PhysMem's live-frame count; no PTE
 *     is simultaneously resident and swapped.
 *  5. Swap accounting: each occupied slot's refcount equals the number
 *     of PTEs naming it (no leaks, no dangling slot references), so
 *     device occupancy equals the page tables' swapped-page footprint.
 *  6. Metrics mirror: when a Metrics registry is attached, its
 *     memory-pressure and revocation counters equal the kernel's own,
 *     and per-cause fault counters are consistent with the recorded
 *     fault log.
 *  7. Revocation completeness: when a revocation epoch closed at this
 *     exact quiescent point (closeSeq equals the quiescent clock), no
 *     tagged capability into its revoked ranges survives anywhere the
 *     kernel can see — tagged memory, swapped-out tag metadata, the
 *     register file, saved thread contexts, live signal frames,
 *     startup capability slots, or kevent udata.
 *
 * Documented deviation: a tagged capability may refer to a range that
 * is no longer *mapped* — CheriABI provides spatial, not temporal,
 * safety (revocation is an explicit sweep), so dangling capabilities
 * are legal and the oracle checks root dominance, not liveness.
 * Rule 7 is the temporal-safety counterpart: only a *closed* epoch
 * promises absence, and only at the dispatch boundary where it closed
 * (afterwards the guest may legitimately re-derive into freed ranges).
 */

#ifndef CHERI_CHECK_INVARIANTS_H
#define CHERI_CHECK_INVARIANTS_H

#include <string>
#include <vector>

#include "cap/types.h"

namespace cheri
{
class Kernel;
}

namespace cheri::check
{

/** One invariant breach: which rule, and the evidence. */
struct Violation
{
    /** Stable rule identifier, e.g. "cap-containment". */
    std::string rule;
    /** Human-readable evidence (process, address, counts). */
    std::string detail;
};

/** Outcome of one oracle pass. */
struct Report
{
    std::vector<Violation> violations;

    /** @name Coverage counters (what the pass actually examined) */
    /// @{
    u64 processes = 0;
    u64 capsChecked = 0;
    u64 pagesChecked = 0;
    u64 framesChecked = 0;
    u64 slotsChecked = 0;
    /// @}

    bool ok() const { return violations.empty(); }

    /** Multi-line rendering: one "rule: detail" line per violation. */
    std::string toString() const;
};

class Invariants
{
  public:
    /**
     * Run every check against @p kern's current state.  Records one
     * oracle run (with the violation count) in the kernel's Metrics
     * registry when one is attached.
     */
    static Report check(Kernel &kern);
};

} // namespace cheri::check

#endif // CHERI_CHECK_INVARIANTS_H
