/**
 * @file
 * Table 3 reproduction: BOdiagsuite detection results.
 *
 * Runs all 291 overflow cases at the three magnitudes under the three
 * protection regimes and prints the detection matrix next to the
 * paper's values, plus the real-bug gallery (section 5.4 bug classes).
 */

#include "bench_util.h"
#include "bodiag/suite.h"

using namespace cheri;
using namespace cheri::bodiag;

int
main()
{
    auto suite = generateSuite();
    bench::banner("Table 3: BOdiagsuite detections (measured, " +
                  std::to_string(suite.size()) + " cases)");
    std::printf("%-10s %6s %6s %6s %12s\n", "", "min", "med", "large",
                "ok-failures");
    for (Mode mode : {Mode::Mips64, Mode::CheriAbi, Mode::Asan}) {
        ModeSummary s = runAll(suite, mode);
        std::printf("%-10s %6lu %6lu %6lu %12lu\n", modeName(mode),
                    static_cast<unsigned long>(s.min),
                    static_cast<unsigned long>(s.med),
                    static_cast<unsigned long>(s.large),
                    static_cast<unsigned long>(s.okFailures));
    }

    bench::banner("Table 3 (paper, for reference)");
    std::printf("%-10s %6s %6s %6s\n", "", "min", "med", "large");
    std::printf("%-10s %6d %6d %6d\n", "mips64", 4, 8, 175);
    std::printf("%-10s %6d %6d %6d\n", "cheriabi", 279, 289, 291);
    std::printf("%-10s %6d %6d %6d\n", "asan", 276, 286, 286);

    bench::banner("Real-bug gallery (paper section 5.4 bug classes)");
    struct GalleryEntry
    {
        const char *bug;
        BodiagCase c;
        Magnitude mag;
    };
    const GalleryEntry gallery[] = {
        {"tcsh history-expansion underrun read",
         {0, Region::Heap, AccessKind::Read, Technique::PtrArith, 16},
         Magnitude::Min},
        {"DHCP client under-allocated ioctl buffer",
         {0, Region::Heap, AccessKind::Write, Technique::PosixGetcwd,
          12},
         Magnitude::Med},
        {"ttyname small buffer overflow",
         {0, Region::Global, AccessKind::Write, Technique::LibcStrcpy,
          32},
         Magnitude::Min},
        {"humanize_number overflow",
         {0, Region::Stack, AccessKind::Write, Technique::LibcMemcpy,
          16},
         Magnitude::Min},
        {"strvis test-case overflow",
         {0, Region::Stack, AccessKind::Write, Technique::LoopIndex,
          64},
         Magnitude::Min},
    };
    std::printf("%-44s %10s %10s %10s\n", "bug", "mips64", "cheriabi",
                "asan");
    for (const GalleryEntry &g : gallery) {
        auto outcome = [&](Mode m) {
            return runCase(g.c, g.mag, m).detected ? "CAUGHT" : "silent";
        };
        std::printf("%-44s %10s %10s %10s\n", g.bug, outcome(Mode::Mips64),
                    outcome(Mode::CheriAbi), outcome(Mode::Asan));
    }
    return 0;
}
