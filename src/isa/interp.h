/**
 * @file
 * The MiniCHERI interpreter: ISA-level execution against a process.
 *
 * Executes encoded MiniCHERI instructions fetched *through PCC* from
 * the process's own memory, with full capability semantics:
 *
 *  - instruction fetch requires a tagged, unsealed, executable PCC
 *    covering the instruction (control flow cannot leave the object
 *    PCC is bounded to);
 *  - legacy loads/stores are indirected through DDC — under CheriABI
 *    DDC is NULL, so every legacy access traps, exactly the paper's
 *    "prohibit legacy loads and stores by installing a NULL capability
 *    in DDC";
 *  - capability-relative accesses check the named capability register;
 *  - derivation instructions are monotonic and raise the architectural
 *    fault on violation;
 *  - every instruction is charged to the process's cost model, and
 *    capability derivations are reported to the trace sink — the same
 *    ISA-level trace pipeline the paper's Figure 5 uses via QEMU.
 *
 * Faults do not unwind the host: run() returns a Fault result with the
 * precise PC and cause, like a stopped debuggee.
 */

#ifndef CHERI_ISA_INTERP_H
#define CHERI_ISA_INTERP_H

#include <array>
#include <functional>

#include "isa/insn.h"
#include "os/process.h"
#include "trace/trace.h"

namespace cheri::obs
{
class Metrics;
}

namespace cheri::snap
{
struct Access;
}

namespace cheri::isa
{

/** Why execution stopped. */
struct InterpResult
{
    enum class Status
    {
        Running,
        Halted,
        Fault,
        StepLimit,
        /** A runSlice() budget expired or a yield was requested: the
         *  context is still runnable and resumes at the saved PCC.
         *  Raised only between instructions, never mid-instruction. */
        Preempted,
    };
    Status status = Status::Halted;
    u64 steps = 0;
    CapFault fault = CapFault::None;
    /** PC of the faulting instruction. */
    u64 faultPc = 0;
    /** Effective address of the faulting access (0 when the fault did
     *  not involve one, e.g. a derivation failure). */
    u64 faultAddr = 0;
    Op faultOp = Op::Halt;
};

class Interpreter
{
  public:
    /** Executes with @p proc's register file, memory, and cost model. */
    explicit Interpreter(Process &proc, TraceSink *trace = nullptr)
        : proc(proc), traceSink(trace)
    {
    }

    /** Syscall hook: called for Op::Syscall with the immediate code. */
    using SyscallHook = std::function<void(Interpreter &, u64 code)>;
    void setSyscallHook(SyscallHook hook) { sysHook = std::move(hook); }

    /**
     * Attach the observability registry: every decoded instruction
     * feeds the per-ABI instruction-mix profiler and every fault is
     * recorded with its cause, PC, and offending capability (for
     * provenance attribution).  Nullable; one branch when absent.
     */
    void setMetrics(obs::Metrics *m);

    /** The live register file (the process's current thread). */
    ThreadRegs &regs() { return proc.regs(); }
    Process &process() { return proc; }

    /** Set PCC to @p entry (must already be an executable capability
     *  under CheriABI; an untagged address under mips64). */
    void
    setEntry(const Capability &entry)
    {
        proc.regs().pcc = entry;
    }

    /** Execute until halt, fault, or @p max_steps. */
    InterpResult run(u64 max_steps = 1'000'000);

    /**
     * Execute one scheduler time slice: like run() but a spent budget
     * yields Status::Preempted (the context is runnable, not out of
     * steps).  Also returns Preempted as soon as a requestYield() is
     * observed — checked after each retired instruction, so preemption
     * lands only at instruction boundaries.
     */
    InterpResult runSlice(u64 budget);

    /**
     * Ask the run loop to stop at the next instruction boundary
     * (Preempted).  Safe to call from inside a syscall hook: the
     * in-flight instruction completes first, including its PC
     * writeback.  Cleared when honored.
     */
    void requestYield() { yieldPending = true; }

    /** Execute one instruction. */
    InterpResult step();

    /** Instructions retired over this interpreter's lifetime. */
    u64 retired() const { return _retired; }

  private:
    /** Checkpoint/restore carries the retired-step counter across (the
     *  decode cache deliberately restarts cold — it is pure cache). */
    friend struct snap::Access;

    /** Fetch+decode at PCC; may fault. */
    Insn fetch();

    /**
     * Decoded-instruction micro-cache, keyed on (va, MemAccess fetch
     * generation): a hit skips both the memory read and the decode.
     * The generation increments on every TLB invalidation and on any
     * write to an executable page, so self-modifying code always
     * re-fetches.  The PCC check still runs on every fetch — the cache
     * only elides the MMU/decode work, never the capability check.
     */
    struct DecodeEntry
    {
        u64 va = ~u64{0};
        u64 gen = 0;
        Insn insn;
    };
    static constexpr u64 decodeCacheSize = 256;

    Process &proc;
    TraceSink *traceSink;
    SyscallHook sysHook;
    obs::Metrics *mx = nullptr;
    u64 _retired = 0;
    bool yieldPending = false;
    std::array<DecodeEntry, decodeCacheSize> dcache{};
};

/**
 * The default syscall hook: route Op::Syscall through the kernel's
 * numbered dispatcher (Kernel::dispatch), which marshals arguments from
 * the register file and applies the errno register convention.  Also
 * wires the kernel's Metrics registry (if any) into the interpreter so
 * instruction-mix and fault telemetry accumulate in the same place.
 */
void installDefaultSyscallHook(Interpreter &interp, Kernel &kern);

} // namespace cheri::isa

#endif // CHERI_ISA_INTERP_H
